package rota

// Facade-level tests: the public API exercised exactly as the README and
// examples present it.

import (
	"errors"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	theta := NewSet(
		NewTerm(UnitsRate(2), CPUAt("l1"), NewInterval(0, 20)),
		NewTerm(UnitsRate(1), Link("l1", "l2"), NewInterval(4, 12)),
	)
	comp, err := Realize(PaperCost(), "a1",
		Evaluate("a1", "l1", 1),
		Send("a1", "l1", "a2", "l2", 1),
		Evaluate("a1", "l1", 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := MeetDeadline(theta, comp, 0, 20)
	if err != nil {
		t.Fatalf("quickstart computation should be feasible: %v", err)
	}
	if plan.Finish != 12 {
		t.Errorf("Finish = %d, want 12", plan.Finish)
	}
	if got := plan.Breaks["a1"]; len(got) != 3 || got[0] != 4 || got[1] != 8 || got[2] != 12 {
		t.Errorf("breaks = %v, want [4 8 12]", got)
	}
	if _, err := MeetDeadline(theta, comp, 0, 8); !errors.Is(err, ErrInfeasible) {
		t.Errorf("deadline 8 should be infeasible, got %v", err)
	}

	dist, err := NewDistributed("job", 0, 20, comp)
	if err != nil {
		t.Fatal(err)
	}
	state := NewState(theta, 0)
	state, _, err = Admit(state, dist)
	if err != nil {
		t.Fatal(err)
	}
	res := RunState(state, 20, 1)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Completed["job"] != 12 {
		t.Errorf("completed at %d, want 12", res.Completed["job"])
	}

	f := SatisfySimple{Req: Simple{
		Amounts: Amounts{CPUAt("l1"): UnitsQty(8)},
		Window:  NewInterval(0, 20),
	}}
	ok, err := Eval(res.Path, 0, f)
	if err != nil || !ok {
		t.Errorf("free capacity query = %v, %v", ok, err)
	}
}

func TestFacadeIntervalAlgebra(t *testing.T) {
	a, b := NewInterval(0, 4), NewInterval(2, 6)
	if RelationBetween(a, b).String() != "overlaps" {
		t.Errorf("relation = %v", RelationBetween(a, b))
	}
	set := ComposeRelations(RelationBetween(a, b), RelationBetween(b, NewInterval(8, 9)))
	if set.IsEmpty() {
		t.Error("composition empty")
	}
	nw := NewNetwork("x", "y")
	if err := nw.Constrain(0, 1, set); err != nil {
		t.Fatal(err)
	}
	if err := nw.Propagate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeParseSet(t *testing.T) {
	s, err := ParseSet("5:cpu@l1:(0,3),2:network@l1>l2:(1,4)")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTerms() != 2 {
		t.Errorf("terms = %d", s.NumTerms())
	}
	if !strings.Contains(s.String(), "⟨cpu,l1⟩") {
		t.Errorf("String = %q", s.String())
	}
	if _, err := ParseSet("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFacadeSimulationPipeline(t *testing.T) {
	jobs, err := GenerateWorkload(WorkloadConfig{
		Seed: 3, Locations: []Location{"l1", "l2"},
		NumJobs: 20, MeanInterarrival: 5,
		ActorsMin: 1, ActorsMax: 2, StepsMin: 1, StepsMax: 3,
		SendProb: 0.2, EvalWeightMax: 2, SlackFactor: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateChurn(ChurnConfig{
		Seed: 4, Locations: []Location{"l1", "l2"},
		Horizon: 200, MeanInterarrival: 5,
		LeaseMin: 10, LeaseMax: 40, RateMin: 1, RateMax: 3,
		LinkProb: 0.3, Base: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{Policy: RotaPolicy(), Executor: ExecPlanned}, jobs, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 0 || res.Violations != 0 {
		t.Errorf("rota assurance broken: %+v", res)
	}
	for _, mk := range []func() Policy{NaiveTotalPolicy, AlwaysAdmitPolicy, EDFFeasiblePolicy, RotaExhaustivePolicy} {
		p := mk()
		if p.Name() == "" {
			t.Error("unnamed policy")
		}
	}
	// Baseline runs under the greedy executor.
	res2, err := Simulate(SimConfig{Policy: AlwaysAdmitPolicy(), Executor: ExecGreedyEDF}, jobs, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Admitted != res2.Offered {
		t.Errorf("always-admit rejected something: %+v", res2)
	}
}

func TestFacadeStateRules(t *testing.T) {
	theta := NewSet(NewTerm(UnitsRate(2), CPUAt("l1"), NewInterval(0, 10)))
	s := NewState(theta, 0)
	// Acquisition.
	s2, tr := Acquire(s, NewSet(NewTerm(UnitsRate(1), CPUAt("l1"), NewInterval(0, 10))))
	if tr.Kind.String() != "acquire" {
		t.Errorf("kind = %v", tr.Kind)
	}
	if got := s2.Theta.RateAt(CPUAt("l1"), 5); got != UnitsRate(3) {
		t.Errorf("rate after acquire = %d", got)
	}
	// Accommodation and leave.
	comp, err := Realize(PaperCost(), "a1", Evaluate("a1", "l1", 1))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := NewDistributed("later", 5, 10, comp)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := AccommodateAdditional(s2, dist)
	if err != nil {
		t.Fatal(err)
	}
	s3, _, err := Accommodate(s2, ConcurrentOf(dist), plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPlan(s2.Theta, ConcurrentOf(dist), plan); err != nil {
		t.Errorf("VerifyPlan: %v", err)
	}
	if _, _, err := Leave(s3, "later"); err != nil {
		t.Errorf("Leave before start: %v", err)
	}
	// Tick classification via facade.
	_, trTick, viols := Tick(s3, 1)
	if len(viols) != 0 {
		t.Errorf("violations: %v", viols)
	}
	if trTick.Kind.String() == "" {
		t.Error("unnamed transition kind")
	}
	// FeasibleConcurrent direct search.
	if _, err := FeasibleConcurrent(s.Theta, ConcurrentOf(dist)); err != nil {
		t.Errorf("FeasibleConcurrent: %v", err)
	}
	// Theorem 1 helper.
	step := comp.Steps[0]
	if !CanCompleteAction(s.Theta, step, NewInterval(0, 10)) {
		t.Error("Theorem 1 check failed")
	}
	if CanCompleteAction(s.Theta, step, NewInterval(0, 1)) {
		t.Error("8 units cannot fit in one rate-2 tick")
	}
}

func TestFacadeWorkflowAndCostSurface(t *testing.T) {
	// Cover the facade surface for workflows, cost models, explorer and
	// repair — each exactly as a downstream user would compose them.
	theta := NewSet(
		NewTerm(UnitsRate(2), CPUAt("l1"), NewInterval(0, 30)),
		NewTerm(UnitsRate(2), ResourceAt("gpu", "l1"), NewInterval(0, 30)),
	)
	if theta.RateAt(ResourceAt("gpu", "l1"), 5) != UnitsRate(2) {
		t.Error("custom-kind resource lost")
	}

	// Hand-built computation from pre-costed steps.
	step := Step{
		Action:  Evaluate("w", "l1", 1),
		Amounts: Amounts{CPUAt("l1"): UnitsQty(6)},
	}
	comp, err := NewComputation("w", step)
	if err != nil {
		t.Fatal(err)
	}
	req := ComplexOf(comp, NewInterval(0, 30))
	if req.Empty() {
		t.Error("requirement should not be empty")
	}

	// Action constructors.
	for _, a := range []Action{
		Create("w", "l1", "kid"),
		Ready("w", "l1"),
		Migrate("w", "l1", "l2", 4),
	} {
		if err := a.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", a, err)
		}
	}

	// Cost models.
	tbl := TableCost(CostParams{EvalCPUBase: 3, SendNetBase: 1, CreateCPU: 1, ReadyCPU: 1, MigrateCPU: 1, MigrateNetPerKB: 1})
	amounts, err := tbl.Amounts(Evaluate("w", "l1", 1))
	if err != nil || amounts[CPUAt("l1")] != UnitsQty(3) {
		t.Errorf("TableCost = %v, %v", amounts, err)
	}
	noisy := NoisyCost(PaperCost(), 0.2, 5, true)
	na, err := noisy.Amounts(Evaluate("w", "l1", 1))
	if err != nil || na[CPUAt("l1")] < UnitsQty(8) {
		t.Errorf("NoisyCost pessimistic = %v, %v", na, err)
	}

	// Workflows.
	seg2, err := NewComputation("v", Step{
		Action:  Evaluate("v", "l1", 1),
		Amounts: Amounts{CPUAt("l1"): UnitsQty(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkflow("wf", 0, 30,
		[]Segmented{
			{Actor: "w", Segments: []Computation{comp}},
			{Actor: "v", Segments: []Computation{seg2}},
		},
		[]WaitEdge{{
			From: SegmentRef{Actor: "w", Segment: 0},
			To:   SegmentRef{Actor: "v", Segment: 0},
		}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := FeasibleWorkflow(theta, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyWorkflowPlan(theta, w, plan); err != nil {
		t.Errorf("VerifyWorkflowPlan: %v", err)
	}
	vStart := plan.StartAt[SegmentRef{Actor: "v", Segment: 0}]
	wDone := plan.DoneAt[SegmentRef{Actor: "w", Segment: 0}]
	if vStart < wDone {
		t.Errorf("wait edge violated: v starts %d before w done %d", vStart, wDone)
	}

	// Independent lifting.
	dist, err := NewDistributed("flat", 0, 30, comp)
	if err != nil {
		t.Fatal(err)
	}
	if IndependentWorkflow(dist).NumSegments() != 1 {
		t.Error("IndependentWorkflow shape wrong")
	}
}

func TestFacadeExplorerAndRepair(t *testing.T) {
	theta := NewSet(NewTerm(UnitsRate(2), CPUAt("l1"), NewInterval(0, 8)))
	comp, err := Realize(PaperCost(), "a1", Evaluate("a1", "l1", 1))
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewDistributed("j", 0, 8, comp)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Explorer{Pending: []Distributed{job}, Horizon: 8}
	ok, witness, err := ex.ExistsPath(NewState(theta, 0), True{})
	if err != nil || !ok || witness == nil {
		t.Fatalf("ExistsPath: %v %v", ok, err)
	}

	// Repair through the facade: admit, renege everything, repair fails
	// (no capacity), succeeds when capacity is restored.
	s := NewState(theta, 0)
	s, _, err = Admit(s, job)
	if err != nil {
		t.Fatal(err)
	}
	s.Theta = NewSet() // total renege
	s, _, viols := Tick(s, 1)
	if len(viols) == 0 {
		t.Fatal("expected violations")
	}
	if _, err := Repair(s, "j", viols); err == nil {
		t.Error("repair without capacity should fail")
	}
	s2, _ := Acquire(s, NewSet(NewTerm(UnitsRate(2), CPUAt("l1"), NewInterval(1, 8))))
	repaired, err := Repair(s2, "j", viols)
	if err != nil {
		t.Fatalf("repair with restored capacity: %v", err)
	}
	res := RunState(repaired, 0, 1)
	if len(res.Violations) != 0 || res.Completed["j"] > 8 {
		t.Errorf("repaired run: %v, done %d", res.Violations, res.Completed["j"])
	}

	// EvalNow through the facade.
	if _, err := EvalNow(res.Path, 0, True{}); err != nil {
		t.Errorf("EvalNow: %v", err)
	}

	// AmountOf helper.
	if AmountOf(3, CPUAt("l1")).Qty != UnitsQty(3) {
		t.Error("AmountOf wrong")
	}
}
