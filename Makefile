GO ?= go

# Packages whose concurrency matters enough to pay for -race on every run:
# the daemon (sharded ledger + HTTP server, including the admit-timeout
# rollback regression), the cluster federation layer (two-phase
# coordination + gossip, including the injected-crash and drain
# integration tests), the observability layer (shared Observer +
# per-endpoint stats), the span store (lock-free-looking ring buffer fed
# by every request), the metrics histogram, and the core decision path
# they drive.
RACE_PKGS = ./internal/server/ ./internal/cluster/ ./internal/obs/ ./internal/obs/span/ ./internal/metrics/ ./internal/admission/ ./internal/core/ ./internal/schedule/ ./cmd/rotad/

.PHONY: ci fmt vet build test race metrics-lint selftest cluster-selftest trace-selftest bench clean

ci: fmt vet build test race metrics-lint trace-selftest

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Fails when a stat field surfaced by /v1/stats has no counterpart
# family in the Prometheus exposition (see internal/obs/lint_test.go).
metrics-lint:
	$(GO) test -run 'TestMetricsLint' -count=1 ./internal/obs/

# End-to-end: daemon + ≥1000 requests through the HTTP API.
selftest:
	$(GO) run ./cmd/rotad -selftest -requests 1000 -clients 8

# End-to-end: 3-node loopback cluster + coordinator-crash injection +
# ≥1000 mixed admits + lease-sweep and per-node audit verification.
cluster-selftest:
	$(GO) run ./cmd/rotad -selftest -cluster 3 -requests 1000 -clients 8 -locations 6

# End-to-end tracing check: a small 3-node cluster run whose span probe
# must reconstruct a connected cross-node span tree, print its critical
# path, and leave every reject carrying decision provenance.
trace-selftest:
	$(GO) run ./cmd/rotad -selftest -cluster 3 -requests 300 -clients 6 -locations 6

bench:
	$(GO) test -bench=. -benchtime=1x ./...

clean:
	$(GO) clean ./...
