GO ?= go

# Packages whose concurrency matters enough to pay for -race on every run:
# the daemon (sharded ledger + HTTP server, including the admit-timeout
# rollback regression), the cluster federation layer (two-phase
# coordination + gossip, including the injected-crash and drain
# integration tests), the observability layer (shared Observer +
# per-endpoint stats), the span store (lock-free-looking ring buffer fed
# by every request), the metrics histogram, the core decision path they
# drive, and the self-healing layer (φ-accrual detector fed from every
# gossip receipt, fault-injection transport under concurrent RPCs).
RACE_PKGS = ./internal/server/ ./internal/cluster/ ./internal/membership/ ./internal/query/ ./internal/obs/ ./internal/obs/span/ ./internal/metrics/ ./internal/admission/ ./internal/core/ ./internal/schedule/ ./internal/health/ ./internal/fault/ ./cmd/rotad/

.PHONY: ci fmt vet build test race metrics-lint bench-gate selftest cluster-selftest trace-selftest query-selftest chaos-selftest assure-selftest bench clean

ci: fmt vet build test race metrics-lint bench-gate trace-selftest query-selftest chaos-selftest assure-selftest

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Fails when a stat field surfaced by /v1/stats has no counterpart
# family in the Prometheus exposition (see internal/obs/lint_test.go).
metrics-lint:
	$(GO) test -run 'TestMetricsLint' -count=1 ./internal/obs/

# Perf-regression gate: the committed per-PR benchmark ledgers must not
# drift more than the tolerance between consecutive PRs (same-machine
# runs; see EXPERIMENTS.md E15).
bench-gate:
	$(GO) run ./cmd/benchjson -compare BENCH_PR9.json BENCH_PR10.json -tolerance 15%

# End-to-end: daemon + ≥1000 requests through the HTTP API.
selftest:
	$(GO) run ./cmd/rotad -selftest -requests 1000 -clients 8

# End-to-end: 3-node loopback cluster + coordinator-crash injection +
# ≥1000 mixed admits + lease-sweep and per-node audit verification.
cluster-selftest:
	$(GO) run ./cmd/rotad -selftest -cluster 3 -requests 1000 -clients 8 -locations 6

# End-to-end tracing check: a small 3-node cluster run whose span probe
# must reconstruct a connected cross-node span tree, print its critical
# path, and leave every reject carrying decision provenance. The same
# run exercises the cross-node query probes (fan-out equivalence, watch
# flipped by a coordinated admission).
trace-selftest:
	$(GO) run ./cmd/rotad -selftest -cluster 3 -requests 300 -clients 6 -locations 6

# End-to-end query check: the single-daemon selftest's query probe must
# see one-shot GET/POST agreement and /v1/watch verdict flips for a
# reservation landing, its release, a leased hold, and a lease expiring.
query-selftest:
	$(GO) run ./cmd/rotad -selftest -requests 300 -clients 4

# End-to-end self-healing check: a 3-node loopback cluster wired through
# the fault-injection transport runs a seeded kill/partition/heal
# schedule under live load with no operator — every eviction must come
# from the φ-accrual detector + quorum rule, the healed partition must
# fence-and-rejoin on its own, no committed reservation may be lost, and
# every audit must stay clean (EXPERIMENTS.md E16).
chaos-selftest:
	$(GO) run ./cmd/rotad -selftest -chaos -cluster 3 -requests 150 -clients 4 -locations 6

# End-to-end deadline-assurance check: the cluster selftest's assure
# probes must see zero violated promises cluster-wide, promise
# continuity for every pinned seed job across the mid-run failover
# (kept or active on the promoted owner, never orphaned), and the
# /v1/assure fan-out totals agreeing with the per-node ledgers. The
# chaos variant additionally requires ≥1 flight-recorder snapshot whose
# merged spans form a connected cross-node timeline (EXPERIMENTS.md E18).
assure-selftest:
	$(GO) run ./cmd/rotad -selftest -cluster 3 -requests 400 -clients 4 -locations 6
	$(GO) run ./cmd/rotad -selftest -chaos -cluster 3 -requests 150 -clients 4 -locations 6

# Regenerates BENCH_PR10.json at the repo root: every benchmark's
# ops/sec, ns/op and allocs/op, including the loaded-ledger query
# benchmarks (E14), the handoff-under-load benchmark (E15), the admit
# hot-path matrix — now with the promise ledger attached — the assure
# on/off overhead matrix (E18) and the rotaload saturation p50/p99 rows
# (E17). Three runs per benchmark; benchjson keeps each one's fastest
# (noise only slows a run down), so the ledger is stable enough for
# bench-gate. Five runs (up from three): this container's run-to-run
# jitter on a fixed binary exceeds the gate's 15% tolerance at
# min-of-3. When re-baselining the *previous* PR's ledger for a
# comparison, interleave full-suite passes of the two trees (benchjson
# keeps the per-benchmark min of everything on its stdin, so
# concatenated passes compose) — back-to-back suite runs drift enough
# thermally to produce phantom regressions in untouched packages.
bench:
	$(GO) test -bench=. -benchmem -benchtime=200ms -count=5 -run '^$$' ./... | $(GO) run ./cmd/benchjson > BENCH_PR10.json
	@cat BENCH_PR10.json | head -c 400; echo

clean:
	$(GO) clean ./...
