package rota_test

import (
	"fmt"

	rota "repro"
)

// The paper's central question, answered constructively: can this
// computation meet its deadline with these resources?
func ExampleMeetDeadline() {
	theta := rota.NewSet(
		rota.NewTerm(rota.UnitsRate(2), rota.CPUAt("l1"), rota.NewInterval(0, 20)),
		rota.NewTerm(rota.UnitsRate(1), rota.Link("l1", "l2"), rota.NewInterval(4, 12)),
	)
	comp, _ := rota.Realize(rota.PaperCost(), "a1",
		rota.Evaluate("a1", "l1", 1),
		rota.Send("a1", "l1", "a2", "l2", 1),
		rota.Evaluate("a1", "l1", 1),
	)
	plan, err := rota.MeetDeadline(theta, comp, 0, 20)
	if err != nil {
		fmt.Println("refused:", err)
		return
	}
	fmt.Println("assured, finish by", plan.Finish)
	fmt.Println("break points:", plan.Breaks["a1"])
	// Output:
	// assured, finish by 12
	// break points: [4 8 12]
}

// The §III worked example: overlapping identical located types simplify
// by adding rates.
func ExampleSet_union() {
	a := rota.NewSet(rota.NewTerm(rota.UnitsRate(5), rota.CPUAt("l1"), rota.NewInterval(0, 3)))
	b := rota.NewSet(rota.NewTerm(rota.UnitsRate(5), rota.CPUAt("l1"), rota.NewInterval(0, 5)))
	fmt.Println(a.Union(b))
	// Output:
	// {[10]⟨cpu,l1⟩(0,3), [5]⟨cpu,l1⟩(3,5)}
}

// Theorem 4 in two calls: the second computation is admitted into
// exactly the capacity the first leaves expiring.
func ExampleAdmit() {
	theta := rota.NewSet(rota.NewTerm(rota.UnitsRate(2), rota.CPUAt("l1"), rota.NewInterval(0, 8)))
	state := rota.NewState(theta, 0)

	mk := func(name string, actor rota.ActorName) rota.Distributed {
		c, _ := rota.Realize(rota.PaperCost(), actor, rota.Evaluate(actor, "l1", 1)) // 8 cpu
		d, _ := rota.NewDistributed(name, 0, 8, c)
		return d
	}
	state, _, err := rota.Admit(state, mk("first", "a1"))
	fmt.Println("first:", err)
	state, _, err = rota.Admit(state, mk("second", "a2"))
	fmt.Println("second:", err)
	_, _, err = rota.Admit(state, mk("third", "a3"))
	fmt.Println("third admitted:", err == nil)
	// Output:
	// first: <nil>
	// second: <nil>
	// third admitted: false
}

// Allen's interval algebra (the paper's Table I).
func ExampleRelationBetween() {
	a := rota.NewInterval(0, 4)
	b := rota.NewInterval(2, 6)
	c := rota.NewInterval(6, 9)
	fmt.Println(rota.RelationBetween(a, b))
	fmt.Println(rota.RelationBetween(b, c))
	fmt.Println(rota.ComposeRelations(rota.RelationBetween(a, b), rota.RelationBetween(b, c)))
	// Output:
	// overlaps
	// meets
	// {before}
}

// Figure 1's satisfaction semantics on an executed path: what could the
// expiring resources still absorb?
func ExampleEval() {
	theta := rota.NewSet(rota.NewTerm(rota.UnitsRate(2), rota.CPUAt("l1"), rota.NewInterval(0, 10)))
	res := rota.RunState(rota.NewState(theta, 0), 10, 1)

	fits := rota.SatisfySimple{Req: rota.Simple{
		Amounts: rota.Amounts{rota.CPUAt("l1"): rota.UnitsQty(20)},
		Window:  rota.NewInterval(0, 10),
	}}
	ok, _ := rota.Eval(res.Path, 0, fits)
	fmt.Println("at t=0:", ok)
	ok, _ = rota.Eval(res.Path, 1, fits)
	fmt.Println("at t=1:", ok)
	// Output:
	// at t=0: true
	// at t=1: false
}
