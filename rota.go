// Package rota is a Go implementation of ROTA — the Resource-Oriented
// Temporal logic introduced in "Temporal Reasoning about Resources for
// Deadline Assurance in Distributed Systems" (Zhao & Jamali, ICDCS 2010).
//
// ROTA reifies computational resources over time and space as resource
// terms [r]_ξ^τ (rate, located type, interval), represents distributed
// actor computations purely by the resources they require, and provides a
// temporal logic whose decision procedures answer the paper's central
// question: "Can we know at time T whether a distributed multi-agent
// computation A can complete its execution by deadline D?"
//
// # Layers
//
// The package is a facade over focused internal packages:
//
//   - Time and Allen's interval algebra (the paper's Table I), including
//     relation composition and qualitative constraint networks.
//   - Resource terms and normalized resource sets with the union,
//     simplification and relative-complement algebra of §III.
//   - Computation representation: actor actions, the Φ cost function,
//     sequential computations Γ and distributed computations (Λ, s, d)
//     with their simple/complex resource requirements (§IV).
//   - The logic: system states S = (Θ, ρ, t), the seven labeled
//     transition rules, computation paths, well-formed formulas and the
//     satisfaction semantics of Figure 1 (§V).
//   - Constructive decision procedures for Theorems 1–4, returning
//     witness schedules that an independent verifier and a discrete-event
//     simulator can check.
//   - An open-system simulation harness: workload and churn generators,
//     admission-control policies (ROTA and baselines), and two execution
//     models (plan-following and uncoordinated EDF).
//
// # Quickstart
//
//	theta := rota.NewSet(
//	    rota.NewTerm(rota.UnitsRate(2), rota.CPUAt("l1"), rota.NewInterval(0, 20)),
//	    rota.NewTerm(rota.UnitsRate(1), rota.Link("l1", "l2"), rota.NewInterval(4, 12)),
//	)
//	comp, _ := rota.Realize(rota.PaperCost(), "a1",
//	    rota.Evaluate("a1", "l1", 1),          // 8 cpu
//	    rota.Send("a1", "l1", "a2", "l2", 1),  // 4 network l1→l2
//	    rota.Evaluate("a1", "l1", 1),          // 8 cpu
//	)
//	plan, err := rota.MeetDeadline(theta, comp, 0, 20)
//	if err != nil {
//	    // infeasible: the deadline cannot be assured
//	} else {
//	    fmt.Println("feasible, finishing by", plan.Finish)
//	}
//
// All time is discrete (int64 ticks of the paper's Δt); all rates are
// fixed-point milli-units per tick.
package rota

import (
	"repro/internal/admission"
	"repro/internal/churn"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ---- Time and intervals ----

// Time is a discrete point in time measured in ticks of Δt.
type Time = interval.Time

// Interval is a half-open time interval [Start, End).
type Interval = interval.Interval

// Relation is one of the thirteen Allen interval-algebra relations
// (Table I).
type Relation = interval.Relation

// RelSet is a set of Allen relations (a constraint-network label).
type RelSet = interval.RelSet

// Network is a qualitative interval constraint network with
// path-consistency propagation.
type Network = interval.Network

// NewInterval returns the interval [start, end).
func NewInterval(start, end Time) Interval {
	return interval.New(start, end)
}

// RelationBetween classifies two non-empty intervals per Table I.
func RelationBetween(a, b Interval) Relation {
	return interval.RelationBetween(a, b)
}

// ComposeRelations returns the possible relations between A and C given
// rel(A,B) and rel(B,C).
func ComposeRelations(r1, r2 Relation) RelSet {
	return interval.Compose(r1, r2)
}

// NewNetwork creates an interval constraint network over named variables.
func NewNetwork(names ...string) *Network {
	return interval.NewNetwork(names...)
}

// ---- Resources (§III) ----

// Rate is a resource rate in milli-units per tick.
type Rate = resource.Rate

// Quantity is an amount of resource (rate integrated over ticks).
type Quantity = resource.Quantity

// Location names a node.
type Location = resource.Location

// LocatedType is the paper's ξ: a resource kind plus spatial information.
type LocatedType = resource.LocatedType

// Term is a resource term [r]_ξ^τ.
type Term = resource.Term

// Set is a resource set Θ kept in simplified normal form.
type Set = resource.Set

// Amount is a required quantity [q]_ξ of a located type.
type Amount = resource.Amount

// Amounts maps located types to required quantities.
type Amounts = resource.Amounts

// ErrInsufficient is returned when a relative complement is undefined.
var ErrInsufficient = resource.ErrInsufficient

// UnitsRate converts whole units per tick to a Rate.
func UnitsRate(u int64) Rate {
	return resource.FromUnits(u)
}

// UnitsQty converts whole units to a Quantity.
func UnitsQty(u int64) Quantity {
	return resource.QuantityFromUnits(u)
}

// CPUAt returns ⟨cpu, loc⟩.
func CPUAt(loc Location) LocatedType {
	return resource.CPUAt(loc)
}

// Link returns ⟨network, src → dst⟩.
func Link(src, dst Location) LocatedType {
	return resource.Link(src, dst)
}

// ResourceAt returns an arbitrary-kind node-local located type.
func ResourceAt(kind string, loc Location) LocatedType {
	return resource.At(resource.Kind(kind), loc)
}

// NewTerm builds a resource term.
func NewTerm(rate Rate, lt LocatedType, span Interval) Term {
	return resource.NewTerm(rate, lt, span)
}

// NewSet builds a normalized resource set.
func NewSet(terms ...Term) Set {
	return resource.NewSet(terms...)
}

// ParseSet parses the compact "rate:kind@loc:(s,e),..." syntax.
func ParseSet(s string) (Set, error) {
	return resource.ParseSet(s)
}

// AmountOf builds an Amount from whole units.
func AmountOf(units int64, lt LocatedType) Amount {
	return resource.AmountOf(units, lt)
}

// ---- Computations (§IV) ----

// ActorName uniquely identifies an actor.
type ActorName = compute.ActorName

// Action is a single actor action γ.
type Action = compute.Action

// Step is an action with its required resource amounts.
type Step = compute.Step

// Computation is a sequential actor computation Γ.
type Computation = compute.Computation

// Distributed is the computation triple (Λ, s, d).
type Distributed = compute.Distributed

// Simple is a simple resource requirement ρ(γ, s, d).
type Simple = compute.Simple

// Complex is a complex resource requirement ρ(Γ, s, d).
type Complex = compute.Complex

// Concurrent is the requirement ρ(Λ, s, d) of a distributed computation.
type Concurrent = compute.Concurrent

// Send builds a send action.
func Send(a ActorName, loc Location, target ActorName, dest Location, size int64) Action {
	return compute.Send(a, loc, target, dest, size)
}

// Evaluate builds an evaluate action.
func Evaluate(a ActorName, loc Location, weight int64) Action {
	return compute.Evaluate(a, loc, weight)
}

// Create builds a create action.
func Create(a ActorName, loc Location, child ActorName) Action {
	return compute.Create(a, loc, child)
}

// Ready builds a ready action.
func Ready(a ActorName, loc Location) Action {
	return compute.Ready(a, loc)
}

// Migrate builds a migrate action.
func Migrate(a ActorName, loc, dest Location, size int64) Action {
	return compute.Migrate(a, loc, dest, size)
}

// NewComputation builds a sequential computation from pre-costed steps.
func NewComputation(actor ActorName, steps ...Step) (Computation, error) {
	return compute.NewComputation(actor, steps...)
}

// NewDistributed builds a distributed computation (Λ, s, d).
func NewDistributed(name string, start, deadline Time, actors ...Computation) (Distributed, error) {
	return compute.NewDistributed(name, start, deadline, actors...)
}

// ComplexOf derives an actor's complex requirement over a window.
func ComplexOf(c Computation, window Interval) Complex {
	return compute.ComplexOf(c, window)
}

// ConcurrentOf derives a distributed computation's requirement.
func ConcurrentOf(d Distributed) Concurrent {
	return compute.ConcurrentOf(d)
}

// ---- Interacting actors (§VI extension) ----

// Workflow is a computation whose actors interact: each actor's
// computation is segmented at its blocking waits, and wait edges couple
// segments across actors (the paper's §VI sketch, implemented).
type Workflow = compute.Workflow

// Segmented is one actor's computation split into ordered segments.
type Segmented = compute.Segmented

// SegmentRef identifies a segment of an actor.
type SegmentRef = compute.SegmentRef

// WaitEdge says the To segment waits for the From segment to complete.
type WaitEdge = compute.WaitEdge

// WorkflowPlan is a witness schedule for a workflow.
type WorkflowPlan = schedule.WorkflowPlan

// NewWorkflow validates and builds a workflow.
func NewWorkflow(name string, start, deadline Time, actors []Segmented, edges []WaitEdge) (Workflow, error) {
	return compute.NewWorkflow(name, start, deadline, actors, edges)
}

// IndependentWorkflow lifts a plain distributed computation into the
// degenerate no-waits workflow.
func IndependentWorkflow(d Distributed) Workflow {
	return compute.Independent(d)
}

// FeasibleWorkflow searches for a witness schedule for a workflow.
func FeasibleWorkflow(theta Set, w Workflow) (WorkflowPlan, error) {
	return schedule.FeasibleWorkflow(theta, w)
}

// VerifyWorkflowPlan independently checks a workflow plan.
func VerifyWorkflowPlan(theta Set, w Workflow, plan WorkflowPlan) error {
	return schedule.VerifyWorkflow(theta, w, plan)
}

// ---- Cost model Φ ----

// CostModel is the paper's Φ: action → required resource amounts.
type CostModel = cost.Model

// CostParams configures a tabular Φ.
type CostParams = cost.Params

// PaperCost returns Φ with the paper's worked constants (§IV-A).
func PaperCost() CostModel {
	return cost.Paper()
}

// TableCost returns a tabular Φ with custom parameters.
func TableCost(p CostParams) CostModel {
	return cost.NewTable(p)
}

// NoisyCost wraps a model with bounded relative estimation error.
func NoisyCost(inner CostModel, relErr float64, seed int64, pessimistic bool) CostModel {
	return cost.NewNoisy(inner, relErr, seed, pessimistic)
}

// Realize costs a list of actions into a sequential computation.
func Realize(m CostModel, actor ActorName, actions ...Action) (Computation, error) {
	return cost.Realize(m, actor, actions...)
}

// ---- The logic (§V) ----

// State is the system state S = (Θ, ρ, t).
type State = core.State

// Commitment is an accommodated computation with its witness plan.
type Commitment = core.Commitment

// Transition is a labeled transition between states.
type Transition = core.Transition

// TransitionKind names the applied transition rule.
type TransitionKind = core.TransitionKind

// Violation records a broken commitment (possible only under reneging
// resources).
type Violation = core.Violation

// Path is a computation path σ.
type Path = core.Path

// RunResult is a materialized path with completion and violation info.
type RunResult = core.RunResult

// Formula is a ROTA well-formed formula ψ.
type Formula = core.Formula

// The formula constructors of the grammar (§V-B). And/Or are extensions.
type (
	True              = core.True
	False             = core.False
	SatisfySimple     = core.SatisfySimple
	SatisfyComplex    = core.SatisfyComplex
	SatisfyConcurrent = core.SatisfyConcurrent
	Not               = core.Not
	Eventually        = core.Eventually
	Always            = core.Always
	And               = core.And
	Or                = core.Or
)

// NewState builds an initial state (Θ, ∅, t).
func NewState(theta Set, t Time) State {
	return core.NewState(theta, t)
}

// Acquire applies the resource acquisition rule.
func Acquire(s State, join Set) (State, Transition) {
	return core.Acquire(s, join)
}

// Accommodate applies the computation accommodation rule, verifying the
// witness plan against the state's free resources.
func Accommodate(s State, req Concurrent, plan Plan) (State, Transition, error) {
	return core.Accommodate(s, req, plan)
}

// Leave applies the computation leave rule (only before the computation
// starts).
func Leave(s State, name string) (State, Transition, error) {
	return core.Leave(s, name)
}

// Tick applies the general transition rule over (t, t+dt).
func Tick(s State, dt Time) (State, Transition, []Violation) {
	return core.Tick(s, dt)
}

// RunState evolves a state to the horizon (or to completion when horizon
// ≤ start), materializing the committed computation path.
func RunState(initial State, horizon, dt Time) RunResult {
	return core.Run(initial, horizon, dt)
}

// Eval implements M, σ, t ⊨ ψ at path position i (Figure 1).
func Eval(p *Path, i int, f Formula) (bool, error) {
	return core.Eval(p, i, f)
}

// EvalNow evaluates ψ at the path position for time t.
func EvalNow(p *Path, t Time, f Formula) (bool, error) {
	return core.EvalNow(p, t, f)
}

// ---- Decision procedures (Theorems 1–4) ----

// Plan is a witness schedule: per-phase resource allocations and the
// break points t1 … t_m of Theorem 2.
type Plan = schedule.Plan

// Allocation is one planned consumption within a Plan.
type Allocation = schedule.Allocation

// ErrInfeasible is returned when no witness schedule exists.
var ErrInfeasible = schedule.ErrInfeasible

// ErrDeadlinePassed is returned when accommodation is requested after d.
var ErrDeadlinePassed = core.ErrDeadlinePassed

// CanCompleteAction decides Theorem 1 for a single action.
func CanCompleteAction(theta Set, step Step, window Interval) bool {
	return core.CanCompleteAction(theta, step, window)
}

// MeetDeadline decides Theorems 2–3 for a sequential computation,
// returning the witness plan on success.
func MeetDeadline(theta Set, comp Computation, start, deadline Time) (Plan, error) {
	return core.MeetDeadline(theta, comp, start, deadline)
}

// AccommodateAdditional decides Theorem 4 against a state's free
// (expiring) resources.
func AccommodateAdditional(s State, dist Distributed) (Plan, error) {
	return core.AccommodateAdditional(s, dist)
}

// Admit runs the full Theorem-4 pipeline: decide, then accommodate.
func Admit(s State, dist Distributed) (State, Plan, error) {
	return core.Admit(s, dist)
}

// Repair re-plans a commitment broken by reneging resources against the
// remaining free capacity, within its original deadline (the Φ
// footnote's "revised as necessary").
func Repair(s State, name string, missed []Violation) (State, error) {
	return core.Repair(s, name, missed)
}

// VerifyPlan independently checks a plan against resources and a
// requirement.
func VerifyPlan(theta Set, req Concurrent, plan Plan) error {
	return schedule.Verify(theta, req, plan)
}

// FeasibleConcurrent searches for a witness schedule for a multi-actor
// requirement directly against a resource set.
func FeasibleConcurrent(theta Set, req Concurrent) (Plan, error) {
	return schedule.Concurrent(theta, req)
}

// ---- Tree exploration (Definition 2) ----

// Explorer materializes the tree of possible system evolutions and
// answers path-quantified queries ("is there an evolution on which ψ
// holds?") by bounded depth-first search over admit/defer choices.
type Explorer = core.Explorer

// ErrExploreBudget is returned when the exploration budget is exhausted
// without a definitive answer.
var ErrExploreBudget = core.ErrBudget

// ---- Simulation harness ----

// Policy is an admission-control policy.
type Policy = admission.Policy

// PolicyDecision is a policy verdict.
type PolicyDecision = admission.Decision

// SimConfig parameterizes a simulation run.
type SimConfig = sim.Config

// SimResult aggregates a simulation run.
type SimResult = sim.Result

// SimExecutor selects the execution model.
type SimExecutor = sim.Executor

// The execution models.
const (
	ExecPlanned   = sim.Planned
	ExecGreedyEDF = sim.GreedyEDF
)

// WorkloadConfig parameterizes the synthetic job generator.
type WorkloadConfig = workload.Config

// Job is a generated computation with its arrival time.
type Job = workload.Job

// ChurnConfig parameterizes the resource churn generator.
type ChurnConfig = churn.Config

// ChurnTrace is a generated join/renege trace.
type ChurnTrace = churn.Trace

// RotaPolicy returns the paper's Theorem-4 admission control.
func RotaPolicy() Policy {
	return &admission.Rota{}
}

// RotaExhaustivePolicy returns ROTA admission with exhaustive
// actor-ordering search.
func RotaExhaustivePolicy() Policy {
	return &admission.Rota{Exhaustive: true}
}

// NaiveTotalPolicy returns the aggregate-quantity baseline.
func NaiveTotalPolicy() Policy {
	return admission.NewNaiveTotal()
}

// AlwaysAdmitPolicy returns the no-reasoning baseline.
func AlwaysAdmitPolicy() Policy {
	return admission.AlwaysAdmit{}
}

// EDFFeasiblePolicy returns the EDF forward-simulation baseline.
func EDFFeasiblePolicy() Policy {
	return admission.NewEDFFeasible()
}

// GenerateWorkload produces a reproducible job sequence.
func GenerateWorkload(cfg WorkloadConfig) ([]Job, error) {
	return workload.Generate(cfg)
}

// GenerateChurn produces a reproducible churn trace.
func GenerateChurn(cfg ChurnConfig) (ChurnTrace, error) {
	return churn.Generate(cfg)
}

// Simulate executes one open-system simulation run.
func Simulate(cfg SimConfig, jobs []Job, trace ChurnTrace) (SimResult, error) {
	return sim.Run(cfg, jobs, trace)
}
