package workload

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	jobs, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJSON(jobs, &sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(back), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], back[i]
		if a.Arrival != b.Arrival || a.Dist.Name != b.Dist.Name ||
			a.Dist.Start != b.Dist.Start || a.Dist.Deadline != b.Dist.Deadline {
			t.Fatalf("job %d header differs: %+v vs %+v", i, a, b)
		}
		if a.Dist.NumSteps() != b.Dist.NumSteps() {
			t.Fatalf("job %d steps differ", i)
		}
		if a.Dist.TotalAmounts().Total() != b.Dist.TotalAmounts().Total() {
			t.Fatalf("job %d amounts differ", i)
		}
	}
}

func TestReadJSONValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", "zzz"},
		{"nameless", `[{"Dist":{"Name":"","Start":0,"Deadline":5},"Arrival":0}]`},
		{"empty window", `[{"Dist":{"Name":"j","Start":5,"Deadline":5},"Arrival":0}]`},
		{"deadline before release", `[{"Dist":{"Name":"j","Start":7,"Deadline":3},"Arrival":0}]`},
		{"arrival past deadline", `[{"Dist":{"Name":"j","Start":0,"Deadline":5},"Arrival":9}]`},
		{"negative arrival", `[{"Dist":{"Name":"j","Start":0,"Deadline":5},"Arrival":-1}]`},
		{
			"negative rate",
			`[{"Dist":{"Name":"j","Start":0,"Deadline":5,"Actors":[
				{"Actor":"a","Steps":[{"Action":{"Op":2,"Actor":"a","Loc":"l1","Size":1},"Amounts":{"cpu@l1":-8000}}]}
			]},"Arrival":0}]`,
		},
		{
			"invalid action",
			`[{"Dist":{"Name":"j","Start":0,"Deadline":5,"Actors":[
				{"Actor":"a","Steps":[{"Action":{"Op":2,"Actor":"a","Loc":""},"Amounts":{}}]}
			]},"Arrival":0}]`,
		},
		{
			"foreign step",
			`[{"Dist":{"Name":"j","Start":0,"Deadline":5,"Actors":[
				{"Actor":"a","Steps":[{"Action":{"Op":2,"Actor":"zz","Loc":"l1","Size":1},"Amounts":{}}]}
			]},"Arrival":0}]`,
		},
		{
			"duplicate actor",
			`[{"Dist":{"Name":"j","Start":0,"Deadline":5,"Actors":[
				{"Actor":"a"},{"Actor":"a"}
			]},"Arrival":0}]`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tc.in)); err == nil {
				t.Errorf("accepted %s", tc.in)
			}
		})
	}
	// Empty list is fine.
	jobs, err := ReadJSON(strings.NewReader("[]"))
	if err != nil || len(jobs) != 0 {
		t.Errorf("empty list: %v, %v", jobs, err)
	}
}

func TestReadJSONErrorsAreDescriptive(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`[{"Dist":{"Name":"j","Start":7,"Deadline":3},"Arrival":0}]`, "deadline 3 at or before its release 7"},
		{`[{"Dist":{"Name":"j","Start":0,"Deadline":5},"Arrival":-1}]`, "negative arrival"},
		{
			`[{"Dist":{"Name":"j","Start":0,"Deadline":5,"Actors":[
				{"Actor":"a","Steps":[{"Action":{"Op":2,"Actor":"a","Loc":"l1","Size":1},"Amounts":{"cpu@l1":-1}}]}
			]},"Arrival":0}]`,
			"negative rate",
		},
	}
	for _, tc := range cases {
		_, err := ReadJSON(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("accepted %s", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %q does not mention %q", err, tc.want)
		}
	}
}
