package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes a job list as indented JSON. Resource amounts use
// their compact text forms, so workload files are hand-editable.
func WriteJSON(jobs []Job, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jobs); err != nil {
		return fmt.Errorf("workload: write: %w", err)
	}
	return nil
}

// ReadJSON parses a job list written by WriteJSON (or by hand),
// validating every job so a malformed file fails loudly instead of
// producing a silently-broken job list: names must be present, windows
// non-empty with the deadline strictly after the release (earliest
// start), arrivals non-negative and no later than the deadline, every
// step's required amounts non-negative, and every action well-formed and
// owned by its actor.
func ReadJSON(r io.Reader) ([]Job, error) {
	var jobs []Job
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jobs); err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	for i, j := range jobs {
		if err := ValidateJob(j); err != nil {
			return nil, fmt.Errorf("workload: job %d: %w", i, err)
		}
	}
	return jobs, nil
}

// ValidateJob checks one job the way ReadJSON does. It is exported so
// servers accepting jobs over the wire can apply the identical rules to
// a single decoded job.
func ValidateJob(j Job) error {
	if j.Dist.Name == "" {
		return fmt.Errorf("job has no name")
	}
	if j.Arrival < 0 {
		return fmt.Errorf("job %q has negative arrival time %d", j.Dist.Name, j.Arrival)
	}
	if j.Dist.Deadline <= j.Dist.Start {
		return fmt.Errorf("job %q has deadline %d at or before its release %d (empty window)",
			j.Dist.Name, j.Dist.Deadline, j.Dist.Start)
	}
	if j.Arrival > j.Dist.Deadline {
		return fmt.Errorf("job %q arrives at %d, after its deadline %d", j.Dist.Name, j.Arrival, j.Dist.Deadline)
	}
	seen := make(map[string]bool, len(j.Dist.Actors))
	for _, a := range j.Dist.Actors {
		if seen[string(a.Actor)] {
			return fmt.Errorf("job %q has duplicate actor %s", j.Dist.Name, a.Actor)
		}
		seen[string(a.Actor)] = true
		for si, st := range a.Steps {
			if err := st.Action.Validate(); err != nil {
				return fmt.Errorf("job %q actor %s step %d: %w", j.Dist.Name, a.Actor, si, err)
			}
			if st.Action.Actor != a.Actor {
				return fmt.Errorf("job %q actor %s step %d belongs to %s",
					j.Dist.Name, a.Actor, si, st.Action.Actor)
			}
			for lt, q := range st.Amounts {
				if q < 0 {
					return fmt.Errorf("job %q actor %s step %d requires a negative rate of %v (%v)",
						j.Dist.Name, a.Actor, si, lt, q)
				}
			}
		}
	}
	return nil
}
