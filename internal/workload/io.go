package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes a job list as indented JSON. Resource amounts use
// their compact text forms, so workload files are hand-editable.
func WriteJSON(jobs []Job, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jobs); err != nil {
		return fmt.Errorf("workload: write: %w", err)
	}
	return nil
}

// ReadJSON parses a job list written by WriteJSON (or by hand),
// validating every job: windows must be non-empty, arrivals must not
// follow deadlines, and every action must be well-formed and owned by its
// actor.
func ReadJSON(r io.Reader) ([]Job, error) {
	var jobs []Job
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jobs); err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	for i, j := range jobs {
		if j.Dist.Name == "" {
			return nil, fmt.Errorf("workload: job %d has no name", i)
		}
		if j.Dist.Deadline <= j.Dist.Start {
			return nil, fmt.Errorf("workload: job %q has empty window", j.Dist.Name)
		}
		if j.Arrival > j.Dist.Deadline {
			return nil, fmt.Errorf("workload: job %q arrives after its deadline", j.Dist.Name)
		}
		seen := make(map[string]bool, len(j.Dist.Actors))
		for _, a := range j.Dist.Actors {
			if seen[string(a.Actor)] {
				return nil, fmt.Errorf("workload: job %q has duplicate actor %s", j.Dist.Name, a.Actor)
			}
			seen[string(a.Actor)] = true
			for si, st := range a.Steps {
				if err := st.Action.Validate(); err != nil {
					return nil, fmt.Errorf("workload: job %q actor %s step %d: %w",
						j.Dist.Name, a.Actor, si, err)
				}
				if st.Action.Actor != a.Actor {
					return nil, fmt.Errorf("workload: job %q actor %s step %d belongs to %s",
						j.Dist.Name, a.Actor, si, st.Action.Actor)
				}
			}
		}
	}
	return jobs, nil
}
