package workload

import (
	"testing"

	"repro/internal/compute"
	"repro/internal/resource"
)

func baseConfig() Config {
	return Config{
		Seed:             1,
		Locations:        []resource.Location{"l1", "l2", "l3"},
		NumJobs:          50,
		MeanInterarrival: 3,
		ActorsMin:        1,
		ActorsMax:        3,
		StepsMin:         1,
		StepsMax:         5,
		SendProb:         0.2,
		MigrateProb:      0.1,
		EvalWeightMax:    3,
		SlackFactor:      2,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 50 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival {
			t.Fatalf("job %d arrival differs", i)
		}
		if a[i].Dist.String() != b[i].Dist.String() {
			t.Fatalf("job %d differs", i)
		}
		if a[i].Dist.TotalAmounts().Total() != b[i].Dist.TotalAmounts().Total() {
			t.Fatalf("job %d work differs", i)
		}
	}
	// Different seed differs somewhere.
	cfg := baseConfig()
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival || a[i].Dist.String() != c[i].Dist.String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateShape(t *testing.T) {
	jobs, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for i, j := range jobs {
		if int64(j.Arrival) < prev {
			t.Fatalf("job %d arrives before its predecessor", i)
		}
		prev = int64(j.Arrival)
		if j.Dist.Start != j.Arrival {
			t.Errorf("job %d window starts at %d, arrival %d", i, j.Dist.Start, j.Arrival)
		}
		if j.Dist.Deadline <= j.Dist.Start {
			t.Errorf("job %d has empty window", i)
		}
		n := len(j.Dist.Actors)
		if n < 1 || n > 3 {
			t.Errorf("job %d has %d actors", i, n)
		}
		for _, a := range j.Dist.Actors {
			if len(a.Steps) < 1 || len(a.Steps) > 5 {
				t.Errorf("job %d actor %s has %d steps", i, a.Actor, len(a.Steps))
			}
			for _, st := range a.Steps {
				if err := st.Action.Validate(); err != nil {
					t.Errorf("job %d: invalid action: %v", i, err)
				}
			}
		}
	}
	if TotalWork(jobs) <= 0 {
		t.Error("workload has no work")
	}
}

func TestGenerateSlackBoundsDeadline(t *testing.T) {
	cfg := baseConfig()
	cfg.SlackFactor = 4
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		var critical resource.Quantity
		for _, a := range j.Dist.Actors {
			if w := a.TotalAmounts().Total(); w > critical {
				critical = w
			}
		}
		window := int64(j.Dist.Deadline - j.Dist.Start)
		if window < 4*critical.Units() {
			t.Errorf("job %d: window %d shorter than slack×critical %d", i, window, 4*critical.Units())
		}
	}
}

func TestMigrationChangesSubsequentLocations(t *testing.T) {
	cfg := baseConfig()
	cfg.MigrateProb = 1 // every step migrates when possible
	cfg.SendProb = 0
	cfg.StepsMin, cfg.StepsMax = 3, 3
	cfg.NumJobs = 10
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		for _, a := range j.Dist.Actors {
			loc := a.Steps[0].Action.Loc
			for si, st := range a.Steps {
				if st.Action.Loc != loc {
					t.Fatalf("step %d costed at %s but actor is at %s", si, st.Action.Loc, loc)
				}
				if st.Action.Op == compute.OpMigrate {
					loc = st.Action.Dest
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Locations = nil },
		func(c *Config) { c.NumJobs = -1 },
		func(c *Config) { c.ActorsMin = 0 },
		func(c *Config) { c.ActorsMax = 0 },
		func(c *Config) { c.StepsMin = 0 },
		func(c *Config) { c.StepsMax = 0 },
		func(c *Config) { c.SendProb = -0.1 },
		func(c *Config) { c.SendProb, c.MigrateProb = 0.7, 0.7 },
		func(c *Config) { c.SlackFactor = 0 },
	}
	for i, mutate := range bad {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestZeroInterarrivalAllArriveAtZero(t *testing.T) {
	cfg := baseConfig()
	cfg.MeanInterarrival = 0
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Arrival != 0 {
			t.Fatalf("arrival %d != 0", j.Arrival)
		}
	}
}
