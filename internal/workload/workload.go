// Package workload generates synthetic deadline-constrained distributed
// computations for the evaluation harness. The paper evaluates nothing
// empirically; these generators produce the open-system workloads its
// motivation describes — multi-actor computations arriving over time,
// each a sequence of send/evaluate/create/ready/migrate actions with an
// earliest start and a deadline.
//
// All randomness is drawn from a seeded source, so every generated
// workload is reproducible from its Config.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

// Config parameterizes a workload.
type Config struct {
	// Seed fixes the random stream.
	Seed int64
	// Locations are the nodes actors may run on. At least one required.
	Locations []resource.Location
	// NumJobs is the number of distributed computations to generate.
	NumJobs int
	// MeanInterarrival is the mean gap between job arrivals in ticks
	// (exponential); 0 means all jobs arrive at t=0.
	MeanInterarrival float64
	// ActorsMin/Max bound the number of actors per job.
	ActorsMin, ActorsMax int
	// StepsMin/Max bound the number of actions per actor.
	StepsMin, StepsMax int
	// SendProb is the probability a step is a send (needs ≥ 2 locations);
	// MigrateProb the probability it is a migrate. The remainder are
	// evaluate/create/ready.
	SendProb, MigrateProb float64
	// EvalWeightMax bounds the weight of evaluate actions (≥ 1).
	EvalWeightMax int64
	// SlackFactor sets deadlines: the window length is SlackFactor times
	// a lower bound on the job's critical work. Must be ≥ 1 for feasible
	// jobs; < 1 generates overloaded jobs on purpose.
	SlackFactor float64
	// Model is the Φ used to cost actions; cost.Paper() if nil.
	Model cost.Model
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Locations) == 0 {
		return fmt.Errorf("workload: no locations")
	}
	if c.NumJobs < 0 {
		return fmt.Errorf("workload: negative NumJobs")
	}
	if c.ActorsMin < 1 || c.ActorsMax < c.ActorsMin {
		return fmt.Errorf("workload: bad actor bounds [%d,%d]", c.ActorsMin, c.ActorsMax)
	}
	if c.StepsMin < 1 || c.StepsMax < c.StepsMin {
		return fmt.Errorf("workload: bad step bounds [%d,%d]", c.StepsMin, c.StepsMax)
	}
	if c.SendProb < 0 || c.MigrateProb < 0 || c.SendProb+c.MigrateProb > 1 {
		return fmt.Errorf("workload: bad action probabilities %f/%f", c.SendProb, c.MigrateProb)
	}
	if c.SlackFactor <= 0 {
		return fmt.Errorf("workload: SlackFactor must be positive")
	}
	return nil
}

// Job is one generated computation and its arrival time. The computation
// window opens at arrival.
type Job struct {
	Dist    compute.Distributed
	Arrival interval.Time
}

// Generate produces a reproducible job sequence.
func Generate(cfg Config) ([]Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model := cfg.Model
	if model == nil {
		model = cost.Paper()
	}
	if cfg.EvalWeightMax < 1 {
		cfg.EvalWeightMax = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]Job, 0, cfg.NumJobs)
	clock := 0.0
	for j := 0; j < cfg.NumJobs; j++ {
		if cfg.MeanInterarrival > 0 {
			clock += rng.ExpFloat64() * cfg.MeanInterarrival
		}
		arrival := interval.Time(clock)
		job, err := generateJob(rng, cfg, model, j, arrival)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Job{Dist: job, Arrival: arrival})
	}
	return jobs, nil
}

func generateJob(rng *rand.Rand, cfg Config, model cost.Model, idx int, arrival interval.Time) (compute.Distributed, error) {
	nActors := cfg.ActorsMin + rng.Intn(cfg.ActorsMax-cfg.ActorsMin+1)
	var actors []compute.Computation
	var critical resource.Quantity // max per-actor total work, a bound on serial work
	for ai := 0; ai < nActors; ai++ {
		name := compute.ActorName(fmt.Sprintf("j%d.a%d", idx, ai))
		loc := cfg.Locations[rng.Intn(len(cfg.Locations))]
		nSteps := cfg.StepsMin + rng.Intn(cfg.StepsMax-cfg.StepsMin+1)
		actions := make([]compute.Action, 0, nSteps)
		for si := 0; si < nSteps; si++ {
			actions = append(actions, randomAction(rng, cfg, name, &loc, si))
		}
		comp, err := cost.Realize(model, name, actions...)
		if err != nil {
			return compute.Distributed{}, fmt.Errorf("workload: job %d actor %d: %w", idx, ai, err)
		}
		if w := comp.TotalAmounts().Total(); w > critical {
			critical = w
		}
		actors = append(actors, comp)
	}
	// Deadline: window long enough for SlackFactor × the critical actor's
	// work delivered at one unit per tick.
	length := interval.Time(cfg.SlackFactor*float64(critical.Units())) + 1
	return compute.NewDistributed(fmt.Sprintf("job-%d", idx), arrival, arrival+length, actors...)
}

// randomAction picks an action type; loc is updated by migrations so
// later actions are costed at the new location.
func randomAction(rng *rand.Rand, cfg Config, name compute.ActorName, loc *resource.Location, step int) compute.Action {
	p := rng.Float64()
	switch {
	case p < cfg.SendProb && len(cfg.Locations) > 1:
		dest := *loc
		for dest == *loc {
			dest = cfg.Locations[rng.Intn(len(cfg.Locations))]
		}
		return compute.Send(name, *loc, compute.ActorName(fmt.Sprintf("%s.peer%d", name, step)), dest, 1+rng.Int63n(4))
	case p < cfg.SendProb+cfg.MigrateProb && len(cfg.Locations) > 1:
		dest := *loc
		for dest == *loc {
			dest = cfg.Locations[rng.Intn(len(cfg.Locations))]
		}
		a := compute.Migrate(name, *loc, dest, 1+rng.Int63n(8))
		*loc = dest
		return a
	default:
		switch rng.Intn(3) {
		case 0:
			return compute.Create(name, *loc, compute.ActorName(fmt.Sprintf("%s.c%d", name, step)))
		case 1:
			return compute.Ready(name, *loc)
		default:
			return compute.Evaluate(name, *loc, 1+rng.Int63n(cfg.EvalWeightMax))
		}
	}
}

// TotalWork sums the required quantity across a job list (for offered
// load accounting).
func TotalWork(jobs []Job) resource.Quantity {
	var total resource.Quantity
	for _, j := range jobs {
		total += j.Dist.TotalAmounts().Total()
	}
	return total
}
