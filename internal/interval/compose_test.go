package interval

import (
	"math/rand"
	"testing"
)

func TestComposeKnownEntries(t *testing.T) {
	// Spot-check classic entries of Allen's composition table.
	tests := []struct {
		r1, r2 Relation
		want   RelSet
	}{
		// before ∘ before = {before}
		{Before, Before, NewRelSet(Before)},
		// after ∘ after = {after}
		{After, After, NewRelSet(After)},
		// meets ∘ meets = {before}
		{Meets, Meets, NewRelSet(Before)},
		// equal is the identity of composition.
		{Equal, During, NewRelSet(During)},
		{OverlapsWith, Equal, NewRelSet(OverlapsWith)},
		// during ∘ during = {during}
		{During, During, NewRelSet(During)},
		// starts ∘ during = {during}
		{Starts, During, NewRelSet(During)},
		// before ∘ during = {before, overlaps, meets, during, starts}
		{Before, During, NewRelSet(Before, OverlapsWith, Meets, During, Starts)},
		// during ∘ before = {before}
		{During, Before, NewRelSet(Before)},
		// meets ∘ during = {overlaps, during, starts}
		{Meets, During, NewRelSet(OverlapsWith, During, Starts)},
		// overlaps ∘ overlaps = {before, overlaps, meets}
		{OverlapsWith, OverlapsWith, NewRelSet(Before, OverlapsWith, Meets)},
		// during ∘ contains = full set (the famous "anything" entry:
		// both A and C lie inside B, so any relation is possible)
		{During, Contains, FullRelSet},
		// contains ∘ during: A and C both contain B, so they must share
		// B's ticks — only the nine overlapping relations survive.
		{Contains, During, NewRelSet(OverlapsWith, OverlappedBy, Starts, StartedBy,
			During, Contains, Finishes, FinishedBy, Equal)},
	}
	for _, tt := range tests {
		if got := Compose(tt.r1, tt.r2); got != tt.want {
			t.Errorf("Compose(%v, %v) = %v, want %v", tt.r1, tt.r2, got, tt.want)
		}
	}
}

func TestComposeInvalid(t *testing.T) {
	if got := Compose(Relation(0), Before); !got.IsEmpty() {
		t.Errorf("Compose with invalid r1 = %v", got)
	}
	if got := Compose(Before, Relation(99)); !got.IsEmpty() {
		t.Errorf("Compose with invalid r2 = %v", got)
	}
}

func TestPropertyCompositionSound(t *testing.T) {
	// For random triples A, B, C: rel(A,C) must be a member of
	// Compose(rel(A,B), rel(B,C)).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b, c := randInterval(rng), randInterval(rng), randInterval(rng)
		rab := RelationBetween(a, b)
		rbc := RelationBetween(b, c)
		rac := RelationBetween(a, c)
		if !Compose(rab, rbc).Has(rac) {
			t.Fatalf("composition unsound: rel(%v,%v)=%v rel(%v,%v)=%v but rel(a,c)=%v ∉ %v",
				a, b, rab, b, c, rbc, rac, Compose(rab, rbc))
		}
	}
}

func TestPropertyCompositionConverse(t *testing.T) {
	// (r1 ∘ r2)⁻¹ = r2⁻¹ ∘ r1⁻¹ for every pair.
	for _, r1 := range AllRelations {
		for _, r2 := range AllRelations {
			left := Compose(r1, r2).Converse()
			right := Compose(r2.Converse(), r1.Converse())
			if left != right {
				t.Errorf("converse law fails for (%v, %v): %v vs %v", r1, r2, left, right)
			}
		}
	}
}

func TestCompositionTableNeverEmpty(t *testing.T) {
	for _, r1 := range AllRelations {
		for _, r2 := range AllRelations {
			if Compose(r1, r2).IsEmpty() {
				t.Errorf("Compose(%v, %v) is empty", r1, r2)
			}
		}
	}
}

func TestComposeSets(t *testing.T) {
	got := ComposeSets(NewRelSet(Before, Meets), NewRelSet(Before))
	if got != NewRelSet(Before) {
		t.Errorf("ComposeSets = %v, want {before}", got)
	}
	if got := ComposeSets(EmptyRelSet, FullRelSet); !got.IsEmpty() {
		t.Errorf("ComposeSets with empty = %v", got)
	}
	// Identity: {Equal} ∘ S = S.
	for _, r := range AllRelations {
		s := NewRelSet(r)
		if got := ComposeSets(NewRelSet(Equal), s); got != s {
			t.Errorf("equal ∘ {%v} = %v", r, got)
		}
	}
}

func BenchmarkCompose(b *testing.B) {
	Compose(Before, Before) // force table build outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compose(AllRelations[i%13], AllRelations[(i/13)%13])
	}
}

func BenchmarkRelationBetween(b *testing.B) {
	ivs := make([]Interval, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range ivs {
		ivs[i] = randInterval(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RelationBetween(ivs[i%64], ivs[(i+7)%64])
	}
}
