package interval

import "fmt"

// Relation is one of the thirteen qualitative relations of Allen's
// interval algebra, reproduced as Table I in the ROTA paper (seven base
// relations plus their inverses; Equal is its own inverse).
//
// The paper's notation maps as follows:
//
//	τ1 <  τ2   Before       (τ1 >  τ2   After)
//	τ1 =  τ2   Equal
//	τ1 ∈  τ2   During       (inverse: Contains)
//	τ1 ∩→ τ2   Meets        (inverse: MetBy)
//	τ1 ∪  τ2   OverlapsWith (inverse: OverlappedBy)
//	τ1 ⊏  τ2   Starts       (inverse: StartedBy)
//	τ1 ⊐  τ2   Finishes     (inverse: FinishedBy)
type Relation uint8

// The thirteen Allen relations. Values start at one so the zero value is
// detectably invalid.
const (
	Before       Relation = iota + 1 // A ends strictly before B starts
	After                            // converse of Before
	Meets                            // A's end coincides with B's start
	MetBy                            // converse of Meets
	OverlapsWith                     // A starts first, they overlap, B ends last
	OverlappedBy                     // converse of OverlapsWith
	Starts                           // same start, A ends first
	StartedBy                        // converse of Starts
	During                           // A strictly inside B
	Contains                         // converse of During
	Finishes                         // same end, A starts later
	FinishedBy                       // converse of Finishes
	Equal                            // identical endpoints

	numRelations = 13
)

// AllRelations lists every relation in declaration order.
var AllRelations = [numRelations]Relation{
	Before, After, Meets, MetBy, OverlapsWith, OverlappedBy,
	Starts, StartedBy, During, Contains, Finishes, FinishedBy, Equal,
}

var relationNames = map[Relation]string{
	Before:       "before",
	After:        "after",
	Meets:        "meets",
	MetBy:        "met-by",
	OverlapsWith: "overlaps",
	OverlappedBy: "overlapped-by",
	Starts:       "starts",
	StartedBy:    "started-by",
	During:       "during",
	Contains:     "contains",
	Finishes:     "finishes",
	FinishedBy:   "finished-by",
	Equal:        "equal",
}

// relationSymbols uses the paper's Table I notation where one exists.
var relationSymbols = map[Relation]string{
	Before:       "<",
	After:        ">",
	Meets:        "∩→",
	MetBy:        "←∩",
	OverlapsWith: "∪",
	OverlappedBy: "∪⁻",
	Starts:       "⊏s",
	StartedBy:    "⊐s",
	During:       "∈",
	Contains:     "∋",
	Finishes:     "⊐f",
	FinishedBy:   "⊏f",
	Equal:        "=",
}

// String returns the lowercase English name of the relation.
func (r Relation) String() string {
	if s, ok := relationNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Relation(%d)", uint8(r))
}

// Symbol returns the paper's symbolic notation for the relation.
func (r Relation) Symbol() string {
	if s, ok := relationSymbols[r]; ok {
		return s
	}
	return "?"
}

// Valid reports whether r is one of the thirteen Allen relations.
func (r Relation) Valid() bool {
	return r >= Before && r <= Equal
}

// Converse returns the inverse relation: if RelationBetween(a, b) == r then
// RelationBetween(b, a) == r.Converse().
func (r Relation) Converse() Relation {
	switch r {
	case Before:
		return After
	case After:
		return Before
	case Meets:
		return MetBy
	case MetBy:
		return Meets
	case OverlapsWith:
		return OverlappedBy
	case OverlappedBy:
		return OverlapsWith
	case Starts:
		return StartedBy
	case StartedBy:
		return Starts
	case During:
		return Contains
	case Contains:
		return During
	case Finishes:
		return FinishedBy
	case FinishedBy:
		return Finishes
	case Equal:
		return Equal
	}
	return 0
}

// RelationBetween classifies the qualitative relation between two
// non-empty intervals. It panics if either interval is empty: the algebra
// is defined only for proper intervals (the paper defines resources only
// over non-empty intervals).
func RelationBetween(a, b Interval) Relation {
	if a.Empty() || b.Empty() {
		panic("interval: RelationBetween on empty interval")
	}
	switch {
	case a.End < b.Start:
		return Before
	case b.End < a.Start:
		return After
	case a.End == b.Start:
		return Meets
	case b.End == a.Start:
		return MetBy
	}
	// The intervals overlap in at least one tick.
	switch {
	case a.Start == b.Start && a.End == b.End:
		return Equal
	case a.Start == b.Start:
		if a.End < b.End {
			return Starts
		}
		return StartedBy
	case a.End == b.End:
		if a.Start > b.Start {
			return Finishes
		}
		return FinishedBy
	case a.Start > b.Start && a.End < b.End:
		return During
	case a.Start < b.Start && a.End > b.End:
		return Contains
	case a.Start < b.Start:
		return OverlapsWith
	default:
		return OverlappedBy
	}
}

// RelSet is a set of Allen relations, represented as a bitmask. It is the
// constraint label used in qualitative constraint networks: an edge labeled
// {Before, Meets} says the first interval ends no later than the second
// starts.
type RelSet uint16

// Common relation sets.
const (
	// EmptyRelSet is the inconsistent (unsatisfiable) constraint.
	EmptyRelSet RelSet = 0
	// FullRelSet permits any of the thirteen relations.
	FullRelSet RelSet = (1 << numRelations) - 1
)

// NewRelSet builds a set from individual relations.
func NewRelSet(rs ...Relation) RelSet {
	var s RelSet
	for _, r := range rs {
		s = s.Add(r)
	}
	return s
}

func (s RelSet) bit(r Relation) RelSet {
	return 1 << (uint(r) - 1)
}

// Add returns s with r included.
func (s RelSet) Add(r Relation) RelSet {
	if !r.Valid() {
		return s
	}
	return s | s.bit(r)
}

// Has reports whether r is in the set.
func (s RelSet) Has(r Relation) bool {
	return r.Valid() && s&s.bit(r) != 0
}

// Intersect returns the relations common to both sets.
func (s RelSet) Intersect(other RelSet) RelSet {
	return s & other
}

// Union returns relations present in either set.
func (s RelSet) Union(other RelSet) RelSet {
	return s | other
}

// IsEmpty reports whether the set contains no relation (an inconsistent
// constraint).
func (s RelSet) IsEmpty() bool {
	return s&FullRelSet == 0
}

// Singleton reports whether the set contains exactly one relation, and if
// so returns it.
func (s RelSet) Singleton() (Relation, bool) {
	var found Relation
	n := 0
	for _, r := range AllRelations {
		if s.Has(r) {
			found = r
			n++
			if n > 1 {
				return 0, false
			}
		}
	}
	if n == 1 {
		return found, true
	}
	return 0, false
}

// Count returns the number of relations in the set.
func (s RelSet) Count() int {
	n := 0
	for _, r := range AllRelations {
		if s.Has(r) {
			n++
		}
	}
	return n
}

// Relations returns the members in declaration order.
func (s RelSet) Relations() []Relation {
	out := make([]Relation, 0, s.Count())
	for _, r := range AllRelations {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// Converse returns the set of converses of the members.
func (s RelSet) Converse() RelSet {
	var out RelSet
	for _, r := range AllRelations {
		if s.Has(r) {
			out = out.Add(r.Converse())
		}
	}
	return out
}

// String renders the set as "{before,meets}".
func (s RelSet) String() string {
	out := "{"
	first := true
	for _, r := range AllRelations {
		if s.Has(r) {
			if !first {
				out += ","
			}
			out += r.String()
			first = false
		}
	}
	return out + "}"
}
