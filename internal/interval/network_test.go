package interval

import (
	"errors"
	"math/rand"
	"testing"
)

func TestNetworkBasics(t *testing.T) {
	nw := NewNetwork("a", "b")
	if nw.Size() != 2 {
		t.Fatalf("Size = %d", nw.Size())
	}
	if nw.Name(0) != "a" || nw.Name(1) != "b" {
		t.Error("names wrong")
	}
	if i, ok := nw.Index("b"); !ok || i != 1 {
		t.Error("Index lookup failed")
	}
	if _, ok := nw.Index("zzz"); ok {
		t.Error("Index should miss unknown name")
	}
	// Duplicate add returns existing index.
	if got := nw.AddVariable("a"); got != 0 {
		t.Errorf("duplicate AddVariable = %d", got)
	}
	// Self edge is {Equal}.
	if got := nw.Constraint(0, 0); got != NewRelSet(Equal) {
		t.Errorf("self constraint = %v", got)
	}
	// New edges start unconstrained.
	if got := nw.Constraint(0, 1); got != FullRelSet {
		t.Errorf("initial constraint = %v", got)
	}
}

func TestNetworkConstrainSymmetry(t *testing.T) {
	nw := NewNetwork("a", "b")
	if err := nw.Constrain(0, 1, NewRelSet(Before, Meets)); err != nil {
		t.Fatal(err)
	}
	if got := nw.Constraint(1, 0); got != NewRelSet(After, MetBy) {
		t.Errorf("converse edge = %v", got)
	}
	// Conflicting constraint yields inconsistency.
	if err := nw.Constrain(0, 1, NewRelSet(After)); !errors.Is(err, ErrInconsistent) {
		t.Errorf("expected ErrInconsistent, got %v", err)
	}
	// Out-of-range index errors.
	if err := nw.Constrain(0, 9, FullRelSet); err == nil {
		t.Error("expected range error")
	}
	// Self edge must keep Equal.
	if err := nw.Constrain(0, 0, NewRelSet(Before)); !errors.Is(err, ErrInconsistent) {
		t.Errorf("self constraint without Equal should be inconsistent, got %v", err)
	}
	if err := nw.Constrain(0, 0, FullRelSet); err != nil {
		t.Errorf("self constraint with Equal should be fine, got %v", err)
	}
}

func TestPropagateDetectsInconsistency(t *testing.T) {
	// a before b, b before c, c before a is unsatisfiable.
	nw := NewNetwork("a", "b", "c")
	mustConstrain(t, nw, 0, 1, NewRelSet(Before))
	mustConstrain(t, nw, 1, 2, NewRelSet(Before))
	mustConstrain(t, nw, 2, 0, NewRelSet(Before))
	if err := nw.Propagate(); !errors.Is(err, ErrInconsistent) {
		t.Errorf("expected inconsistency, got %v", err)
	}
}

func TestPropagateTightens(t *testing.T) {
	// a before b, b before c ⇒ a before c.
	nw := NewNetwork("a", "b", "c")
	mustConstrain(t, nw, 0, 1, NewRelSet(Before))
	mustConstrain(t, nw, 1, 2, NewRelSet(Before))
	if err := nw.Propagate(); err != nil {
		t.Fatal(err)
	}
	if got := nw.Constraint(0, 2); got != NewRelSet(Before) {
		t.Errorf("a-c constraint = %v, want {before}", got)
	}
}

func TestConsistentScenarioSimple(t *testing.T) {
	nw := NewNetwork("x", "y", "z")
	mustConstrain(t, nw, 0, 1, NewRelSet(During))
	mustConstrain(t, nw, 1, 2, NewRelSet(Meets))
	ivs, err := nw.ConsistentScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	if got := RelationBetween(ivs[0], ivs[1]); got != During {
		t.Errorf("x-y realized as %v, want during (x=%v y=%v)", got, ivs[0], ivs[1])
	}
	if got := RelationBetween(ivs[1], ivs[2]); got != Meets {
		t.Errorf("y-z realized as %v, want meets", got)
	}
}

func TestConsistentScenarioDisjunctive(t *testing.T) {
	// Disjunctive labels: solver must pick a consistent combination.
	nw := NewNetwork("a", "b", "c")
	mustConstrain(t, nw, 0, 1, NewRelSet(Before, Meets))
	mustConstrain(t, nw, 1, 2, NewRelSet(Before, Meets, OverlapsWith))
	mustConstrain(t, nw, 0, 2, NewRelSet(Before))
	ivs, err := nw.ConsistentScenario()
	if err != nil {
		t.Fatal(err)
	}
	checkRealization := func(i, j int, allowed RelSet) {
		if got := RelationBetween(ivs[i], ivs[j]); !allowed.Has(got) {
			t.Errorf("edge (%d,%d) realized as %v not in %v", i, j, got, allowed)
		}
	}
	checkRealization(0, 1, NewRelSet(Before, Meets))
	checkRealization(1, 2, NewRelSet(Before, Meets, OverlapsWith))
	checkRealization(0, 2, NewRelSet(Before))
}

func TestConsistentScenarioInconsistent(t *testing.T) {
	nw := NewNetwork("a", "b")
	mustConstrain(t, nw, 0, 1, NewRelSet(Before))
	// Force the converse direction too — direct contradiction via a third
	// variable chain.
	nw.AddVariable("c")
	mustConstrain(t, nw, 1, 2, NewRelSet(Before))
	mustConstrain(t, nw, 2, 0, NewRelSet(Before, Meets))
	if _, err := nw.ConsistentScenario(); !errors.Is(err, ErrInconsistent) {
		t.Errorf("expected ErrInconsistent, got %v", err)
	}
}

func TestPropertyScenarioRealizesAtomicNetworks(t *testing.T) {
	// Build random concrete intervals, extract their exact relations as an
	// atomic network, and confirm the solver reconstructs intervals with
	// the same qualitative pattern.
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		truth := make([]Interval, n)
		nw := NewNetwork()
		for i := 0; i < n; i++ {
			truth[i] = randInterval(rng)
			nw.AddVariable(string(rune('a' + i)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				mustConstrain(t, nw, i, j, NewRelSet(RelationBetween(truth[i], truth[j])))
			}
		}
		got, err := nw.ConsistentScenario()
		if err != nil {
			t.Fatalf("iter %d: %v (truth %v)", iter, err, truth)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := RelationBetween(truth[i], truth[j])
				if have := RelationBetween(got[i], got[j]); have != want {
					t.Fatalf("iter %d: edge (%d,%d) = %v, want %v", iter, i, j, have, want)
				}
			}
		}
	}
}

func TestPropertyPropagationPreservesSolutions(t *testing.T) {
	// Any concrete solution of the original constraints must survive
	// propagation (propagation only removes impossible relations).
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(3)
		truth := make([]Interval, n)
		nw := NewNetwork()
		for i := 0; i < n; i++ {
			truth[i] = randInterval(rng)
			nw.AddVariable(string(rune('a' + i)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				// A disjunction that includes the truth plus random noise.
				label := NewRelSet(RelationBetween(truth[i], truth[j]))
				for k := 0; k < rng.Intn(4); k++ {
					label = label.Add(AllRelations[rng.Intn(13)])
				}
				mustConstrain(t, nw, i, j, label)
			}
		}
		if err := nw.Propagate(); err != nil {
			t.Fatalf("iter %d: propagation rejected satisfiable network: %v", iter, err)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := RelationBetween(truth[i], truth[j])
				if !nw.Constraint(i, j).Has(want) {
					t.Fatalf("iter %d: propagation dropped true relation %v on (%d,%d)", iter, want, i, j)
				}
			}
		}
	}
}

func mustConstrain(t *testing.T, nw *Network, i, j int, rels RelSet) {
	t.Helper()
	if err := nw.Constrain(i, j, rels); err != nil {
		t.Fatalf("Constrain(%d, %d, %v): %v", i, j, rels, err)
	}
}

func BenchmarkPropagate(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < b.N; i++ {
		n := 8
		truth := make([]Interval, n)
		nw := NewNetwork()
		for v := 0; v < n; v++ {
			truth[v] = randInterval(rng)
			nw.AddVariable(string(rune('a' + v)))
		}
		for v := 0; v < n; v++ {
			for w := v + 1; w < n; w++ {
				_ = nw.Constrain(v, w, NewRelSet(RelationBetween(truth[v], truth[w])))
			}
		}
		if err := nw.Propagate(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMinimizeDropsUnrealizableRelations(t *testing.T) {
	// a before b, b before c: the a-c edge starts full; minimization must
	// shrink it to exactly {before}.
	nw := NewNetwork("a", "b", "c")
	mustConstrain(t, nw, 0, 1, NewRelSet(Before))
	mustConstrain(t, nw, 1, 2, NewRelSet(Before))
	if err := nw.Minimize(); err != nil {
		t.Fatal(err)
	}
	if got := nw.Constraint(0, 2); got != NewRelSet(Before) {
		t.Errorf("minimal a-c label = %v", got)
	}
	// Converse edge kept in sync.
	if got := nw.Constraint(2, 0); got != NewRelSet(After) {
		t.Errorf("converse label = %v", got)
	}
}

func TestMinimizeInconsistentNetwork(t *testing.T) {
	nw := NewNetwork("a", "b", "c")
	mustConstrain(t, nw, 0, 1, NewRelSet(Before))
	mustConstrain(t, nw, 1, 2, NewRelSet(Before))
	mustConstrain(t, nw, 2, 0, NewRelSet(Before))
	if err := nw.Minimize(); !errors.Is(err, ErrInconsistent) {
		t.Errorf("want ErrInconsistent, got %v", err)
	}
}

func TestPropertyMinimizeExact(t *testing.T) {
	// Cross-validate minimal labels against brute force: a relation
	// survives minimization iff some concrete realization exhibits it.
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.Intn(2)
		// Random satisfiable base: derive labels from concrete intervals,
		// then widen with noise.
		truth := make([]Interval, n)
		nw := NewNetwork()
		for i := 0; i < n; i++ {
			truth[i] = randInterval(rng)
			nw.AddVariable(string(rune('a' + i)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				label := NewRelSet(RelationBetween(truth[i], truth[j]))
				for k := 0; k < rng.Intn(3); k++ {
					label = label.Add(AllRelations[rng.Intn(13)])
				}
				mustConstrain(t, nw, i, j, label)
			}
		}
		pre := nw.Clone()
		if err := nw.Minimize(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// Brute force: enumerate all interval assignments over a small
		// grid, collect realized relations per edge subject to the
		// original labels.
		realized := make(map[[2]int]RelSet)
		var assign func(idx int, ivs []Interval)
		assign = func(idx int, ivs []Interval) {
			if idx == n {
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						realized[[2]int{i, j}] = realized[[2]int{i, j}].Add(RelationBetween(ivs[i], ivs[j]))
					}
				}
				return
			}
			for s := Time(0); s < 4; s++ {
				for e := s + 1; e <= 4; e++ {
					iv := New(s, e)
					okHere := true
					for p := 0; p < idx; p++ {
						if !pre.Constraint(p, idx).Has(RelationBetween(ivs[p], iv)) {
							okHere = false
							break
						}
					}
					if okHere {
						ivs[idx] = iv
						assign(idx+1, ivs)
					}
				}
			}
		}
		assign(0, make([]Interval, n))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				brute := realized[[2]int{i, j}]
				minimal := nw.Constraint(i, j)
				// Brute force uses a coordinate grid of 0..4 — every
				// qualitative configuration of ≤4 intervals fits in it? Not
				// quite: n intervals need up to 2n distinct coordinates. Use
				// the subset relation that is guaranteed: brute ⊆ minimal,
				// and for n where the grid suffices (2n ≤ 5), equality.
				if brute.Union(minimal) != minimal {
					t.Fatalf("iter %d edge (%d,%d): brute %v ⊄ minimal %v",
						iter, i, j, brute, minimal)
				}
			}
		}
	}
}
