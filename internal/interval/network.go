package interval

import (
	"errors"
	"fmt"
)

// Network is a qualitative constraint network over interval variables:
// nodes are intervals, and each directed edge (i, j) carries a RelSet of
// Allen relations that may hold between variable i and variable j.
//
// Networks answer the questions ROTA's scheduling layer asks of Interval
// Algebra: "is this collection of qualitative temporal statements
// consistent, and if so give me concrete intervals realizing it".
type Network struct {
	names []string
	index map[string]int
	cons  [][]RelSet
}

// ErrInconsistent is returned when constraints admit no solution.
var ErrInconsistent = errors.New("interval: constraint network is inconsistent")

// NewNetwork creates a network with the given named variables.
func NewNetwork(names ...string) *Network {
	nw := &Network{index: make(map[string]int, len(names))}
	for _, name := range names {
		nw.AddVariable(name)
	}
	return nw
}

// AddVariable adds a variable and returns its index. Adding a duplicate
// name returns the existing index.
func (nw *Network) AddVariable(name string) int {
	if i, ok := nw.index[name]; ok {
		return i
	}
	i := len(nw.names)
	nw.names = append(nw.names, name)
	nw.index[name] = i
	for r := range nw.cons {
		nw.cons[r] = append(nw.cons[r], FullRelSet)
	}
	row := make([]RelSet, i+1)
	for c := range row {
		row[c] = FullRelSet
	}
	row[i] = NewRelSet(Equal)
	nw.cons = append(nw.cons, row)
	return i
}

// Size returns the number of variables.
func (nw *Network) Size() int {
	return len(nw.names)
}

// Name returns the name of variable i.
func (nw *Network) Name(i int) string {
	return nw.names[i]
}

// Index returns the index of a named variable.
func (nw *Network) Index(name string) (int, bool) {
	i, ok := nw.index[name]
	return i, ok
}

// Constrain intersects the edge (i, j) with rels, keeping the network
// symmetric by applying the converse to (j, i). It returns
// ErrInconsistent if the edge becomes empty.
func (nw *Network) Constrain(i, j int, rels RelSet) error {
	if i < 0 || j < 0 || i >= len(nw.names) || j >= len(nw.names) {
		return fmt.Errorf("interval: variable index out of range (%d, %d)", i, j)
	}
	if i == j {
		if !rels.Has(Equal) {
			return ErrInconsistent
		}
		return nil
	}
	nw.cons[i][j] = nw.cons[i][j].Intersect(rels)
	nw.cons[j][i] = nw.cons[j][i].Intersect(rels.Converse())
	if nw.cons[i][j].IsEmpty() {
		return ErrInconsistent
	}
	return nil
}

// Constraint returns the current label on edge (i, j).
func (nw *Network) Constraint(i, j int) RelSet {
	return nw.cons[i][j]
}

// Clone returns a deep copy of the network.
func (nw *Network) Clone() *Network {
	out := &Network{
		names: append([]string(nil), nw.names...),
		index: make(map[string]int, len(nw.index)),
		cons:  make([][]RelSet, len(nw.cons)),
	}
	for name, i := range nw.index {
		out.index[name] = i
	}
	for r := range nw.cons {
		out.cons[r] = append([]RelSet(nil), nw.cons[r]...)
	}
	return out
}

// Propagate enforces path consistency (Allen's propagation algorithm): for
// every triple (i, k, j) the label on (i, j) is intersected with the
// composition of (i, k) and (k, j), to a fixed point. It returns
// ErrInconsistent if any label becomes empty.
//
// Path consistency is complete for deciding consistency of networks whose
// labels lie in tractable subclasses (e.g. pointisable relations) and is a
// sound filter in general; ConsistentScenario performs the full
// backtracking search when a concrete witness is needed.
func (nw *Network) Propagate() error {
	n := len(nw.names)
	type edge struct{ i, j int }
	queue := make([]edge, 0, n*n)
	inQueue := make(map[edge]bool, n*n)
	push := func(i, j int) {
		e := edge{i, j}
		if i != j && !inQueue[e] {
			inQueue[e] = true
			queue = append(queue, e)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			push(i, j)
		}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		inQueue[e] = false
		for k := 0; k < n; k++ {
			if k == e.i || k == e.j {
				continue
			}
			// Tighten (i, k) using (i, j) ∘ (j, k).
			viaJ := nw.cons[e.i][k].Intersect(ComposeSets(nw.cons[e.i][e.j], nw.cons[e.j][k]))
			if viaJ != nw.cons[e.i][k] {
				if viaJ.IsEmpty() {
					return ErrInconsistent
				}
				nw.cons[e.i][k] = viaJ
				nw.cons[k][e.i] = viaJ.Converse()
				push(e.i, k)
			}
			// Tighten (k, j) using (k, i) ∘ (i, j).
			viaI := nw.cons[k][e.j].Intersect(ComposeSets(nw.cons[k][e.i], nw.cons[e.i][e.j]))
			if viaI != nw.cons[k][e.j] {
				if viaI.IsEmpty() {
					return ErrInconsistent
				}
				nw.cons[k][e.j] = viaI
				nw.cons[e.j][k] = viaI.Converse()
				push(k, e.j)
			}
		}
	}
	return nil
}

// Minimize computes the minimal labels of the network: for every edge,
// exactly the relations that appear in at least one globally consistent
// scenario. Path consistency alone over-approximates minimal labels
// (famously, for some networks it leaves relations no scenario realizes);
// Minimize decides each candidate relation by backtracking search, so the
// result is exact. Cost is exponential in the worst case — intended for
// the moderate network sizes the scheduling layer produces.
//
// The network is modified in place. ErrInconsistent means no scenario
// exists at all.
func (nw *Network) Minimize() error {
	if err := nw.Propagate(); err != nil {
		return err
	}
	n := len(nw.names)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			label := nw.cons[i][j]
			var minimal RelSet
			for _, r := range label.Relations() {
				trial := nw.Clone()
				if err := trial.Constrain(i, j, NewRelSet(r)); err != nil {
					continue
				}
				if err := trial.Propagate(); err != nil {
					continue
				}
				if trial.searchScenario(0, 1) {
					minimal = minimal.Add(r)
				}
			}
			if minimal.IsEmpty() {
				return ErrInconsistent
			}
			nw.cons[i][j] = minimal
			nw.cons[j][i] = minimal.Converse()
		}
	}
	return nil
}

// ConsistentScenario searches for an atomic refinement of the network (a
// single relation per edge) that is globally consistent, and returns
// concrete integer intervals realizing it, indexed like the variables.
// It returns ErrInconsistent if no scenario exists.
func (nw *Network) ConsistentScenario() ([]Interval, error) {
	work := nw.Clone()
	if err := work.Propagate(); err != nil {
		return nil, err
	}
	if !work.searchScenario(0, 1) {
		return nil, ErrInconsistent
	}
	return work.realize()
}

// searchScenario backtracks over edges in row-major order starting at
// (i, j), refining each to a single relation and re-propagating.
func (nw *Network) searchScenario(i, j int) bool {
	n := len(nw.names)
	for ; i < n; i++ {
		for ; j < n; j++ {
			if _, single := nw.cons[i][j].Singleton(); !single {
				goto refine
			}
		}
		j = i + 2
	}
	return true
refine:
	for _, r := range nw.cons[i][j].Relations() {
		trial := nw.Clone()
		if err := trial.Constrain(i, j, NewRelSet(r)); err != nil {
			continue
		}
		if err := trial.Propagate(); err != nil {
			continue
		}
		if trial.searchScenario(i, j) {
			*nw = *trial
			return true
		}
	}
	return false
}

// realize converts an atomic, path-consistent network into concrete
// intervals by ordering the 2n endpoints. Each atomic Allen relation
// induces equality/strict-order constraints on endpoints; a topological
// ordering of the endpoint graph yields integer coordinates.
func (nw *Network) realize() ([]Interval, error) {
	n := len(nw.names)
	// Endpoint p: 2*v is start of variable v, 2*v+1 is its end.
	numPts := 2 * n
	parent := make([]int, numPts)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	type lt struct{ a, b int } // endpoint a strictly before endpoint b
	var strict []lt
	addRel := func(v, w int, r Relation) {
		sv, ev, sw, ew := 2*v, 2*v+1, 2*w, 2*w+1
		switch r {
		case Before:
			strict = append(strict, lt{ev, sw})
		case After:
			strict = append(strict, lt{ew, sv})
		case Meets:
			union(ev, sw)
		case MetBy:
			union(ew, sv)
		case OverlapsWith:
			strict = append(strict, lt{sv, sw}, lt{sw, ev}, lt{ev, ew})
		case OverlappedBy:
			strict = append(strict, lt{sw, sv}, lt{sv, ew}, lt{ew, ev})
		case Starts:
			union(sv, sw)
			strict = append(strict, lt{ev, ew})
		case StartedBy:
			union(sv, sw)
			strict = append(strict, lt{ew, ev})
		case During:
			strict = append(strict, lt{sw, sv}, lt{ev, ew})
		case Contains:
			strict = append(strict, lt{sv, sw}, lt{ew, ev})
		case Finishes:
			union(ev, ew)
			strict = append(strict, lt{sw, sv})
		case FinishedBy:
			union(ev, ew)
			strict = append(strict, lt{sv, sw})
		case Equal:
			union(sv, sw)
			union(ev, ew)
		}
	}
	for v := 0; v < n; v++ {
		strict = append(strict, lt{2 * v, 2*v + 1}) // start < end
		for w := v + 1; w < n; w++ {
			r, ok := nw.cons[v][w].Singleton()
			if !ok {
				return nil, fmt.Errorf("interval: realize on non-atomic network edge (%d,%d)", v, w)
			}
			addRel(v, w, r)
		}
	}
	// Topological sort of equivalence-class representatives.
	adj := make(map[int][]int)
	indeg := make(map[int]int)
	nodes := make(map[int]bool)
	for p := 0; p < numPts; p++ {
		nodes[find(p)] = true
	}
	for _, e := range strict {
		a, b := find(e.a), find(e.b)
		if a == b {
			return nil, ErrInconsistent
		}
		adj[a] = append(adj[a], b)
		indeg[b]++
	}
	var ready []int
	for node := range nodes {
		if indeg[node] == 0 {
			ready = append(ready, node)
		}
	}
	coord := make(map[int]Time, len(nodes))
	processed := 0
	for len(ready) > 0 {
		node := ready[0]
		ready = ready[1:]
		processed++
		for _, next := range adj[node] {
			if c := coord[node] + 1; c > coord[next] {
				coord[next] = c
			}
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	if processed != len(nodes) {
		return nil, ErrInconsistent // cycle through a strict edge
	}
	out := make([]Interval, n)
	for v := 0; v < n; v++ {
		out[v] = Interval{Start: coord[find(2*v)], End: coord[find(2*v+1)]}
	}
	return out, nil
}
