package interval

import "sync"

// Composition of Allen relations: given r1 = rel(A,B) and r2 = rel(B,C),
// Compose(r1, r2) is the set of relations possible between A and C.
//
// Rather than transcribing the classic 13×13 composition table by hand
// (and risking transcription errors in 169 entries), the table is derived
// once, exactly, by exhaustive enumeration. The qualitative relation
// pattern among three intervals is fully determined by the ordering of
// their six endpoints, and every ordering of six endpoints is realizable
// with integer coordinates in [0, 5]. Enumerating all 6^6 coordinate
// assignments therefore visits every qualitative configuration of
// (A, B, C), making the derived table provably identical to Allen's.
var (
	composeOnce  sync.Once
	composeTable [numRelations + 1][numRelations + 1]RelSet
)

func buildComposeTable() {
	const lo, hi = 0, 5
	for as := Time(lo); as <= hi; as++ {
		for ae := as + 1; ae <= hi+1; ae++ {
			a := Interval{Start: as, End: ae}
			for bs := Time(lo); bs <= hi; bs++ {
				for be := bs + 1; be <= hi+1; be++ {
					b := Interval{Start: bs, End: be}
					rab := RelationBetween(a, b)
					for cs := Time(lo); cs <= hi; cs++ {
						for ce := cs + 1; ce <= hi+1; ce++ {
							c := Interval{Start: cs, End: ce}
							rbc := RelationBetween(b, c)
							rac := RelationBetween(a, c)
							composeTable[rab][rbc] = composeTable[rab][rbc].Add(rac)
						}
					}
				}
			}
		}
	}
}

// Compose returns the set of relations possible between A and C given
// rel(A,B) = r1 and rel(B,C) = r2. It returns the empty set if either
// argument is invalid.
func Compose(r1, r2 Relation) RelSet {
	if !r1.Valid() || !r2.Valid() {
		return EmptyRelSet
	}
	composeOnce.Do(buildComposeTable)
	return composeTable[r1][r2]
}

// ComposeSets lifts Compose to relation sets: the union of compositions of
// all member pairs. This is the propagation step of path consistency.
func ComposeSets(s1, s2 RelSet) RelSet {
	var out RelSet
	for _, r1 := range AllRelations {
		if !s1.Has(r1) {
			continue
		}
		for _, r2 := range AllRelations {
			if s2.Has(r2) {
				out = out.Union(Compose(r1, r2))
			}
		}
	}
	return out
}
