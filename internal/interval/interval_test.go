package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndEmpty(t *testing.T) {
	tests := []struct {
		name      string
		iv        Interval
		wantEmpty bool
		wantLen   Time
	}{
		{"proper", New(0, 3), false, 3},
		{"unit", Point(5), false, 1},
		{"zero value", Interval{}, true, 0},
		{"inverted", New(3, 0), true, 0},
		{"degenerate", New(2, 2), true, 0},
		{"span", Span(10, 4), false, 4},
		{"negative start", New(-5, -2), false, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.iv.Empty(); got != tt.wantEmpty {
				t.Errorf("Empty() = %v, want %v", got, tt.wantEmpty)
			}
			if got := tt.iv.Len(); got != tt.wantLen {
				t.Errorf("Len() = %d, want %d", got, tt.wantLen)
			}
		})
	}
}

func TestContains(t *testing.T) {
	iv := New(2, 5)
	for _, tc := range []struct {
		t    Time
		want bool
	}{{1, false}, {2, true}, {4, true}, {5, false}, {6, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestContainsInterval(t *testing.T) {
	iv := New(2, 8)
	tests := []struct {
		other Interval
		want  bool
	}{
		{New(2, 8), true},
		{New(3, 7), true},
		{New(2, 3), true},
		{New(1, 3), false},
		{New(7, 9), false},
		{Interval{}, true}, // empty contained in everything
		{New(9, 9), true},
	}
	for _, tc := range tests {
		if got := iv.ContainsInterval(tc.other); got != tc.want {
			t.Errorf("ContainsInterval(%v) = %v, want %v", tc.other, got, tc.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		a, b, want Interval
	}{
		{New(0, 5), New(3, 8), New(3, 5)},
		{New(0, 5), New(5, 8), Interval{}},
		{New(0, 5), New(6, 8), Interval{}},
		{New(0, 10), New(2, 4), New(2, 4)},
		{New(3, 3), New(0, 10), Interval{}},
	}
	for _, tc := range tests {
		got := tc.a.Intersect(tc.b)
		if !got.Equal(tc.want) {
			t.Errorf("%v ∩ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		// Intersection is commutative.
		if rev := tc.b.Intersect(tc.a); !rev.Equal(got) {
			t.Errorf("intersect not commutative: %v vs %v", got, rev)
		}
	}
}

func TestSubtract(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want []Interval
	}{
		{"no overlap", New(0, 3), New(5, 8), []Interval{New(0, 3)}},
		{"hole in middle", New(0, 10), New(3, 6), []Interval{New(0, 3), New(6, 10)}},
		{"cut left", New(0, 10), New(-2, 4), []Interval{New(4, 10)}},
		{"cut right", New(0, 10), New(7, 12), []Interval{New(0, 7)}},
		{"swallowed", New(3, 6), New(0, 10), nil},
		{"empty minuend", Interval{}, New(0, 10), nil},
		{"empty subtrahend", New(0, 3), Interval{}, []Interval{New(0, 3)}},
		{"exact", New(2, 5), New(2, 5), nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.a.Subtract(tc.b)
			if len(got) != len(tc.want) {
				t.Fatalf("Subtract = %v, want %v", got, tc.want)
			}
			for i := range got {
				if !got[i].Equal(tc.want[i]) {
					t.Errorf("piece %d = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestHullShiftClamp(t *testing.T) {
	if got := New(0, 3).Hull(New(7, 9)); !got.Equal(New(0, 9)) {
		t.Errorf("Hull = %v, want (0,9)", got)
	}
	if got := (Interval{}).Hull(New(7, 9)); !got.Equal(New(7, 9)) {
		t.Errorf("Hull with empty = %v, want (7,9)", got)
	}
	if got := New(1, 4).Shift(10); !got.Equal(New(11, 14)) {
		t.Errorf("Shift = %v, want (11,14)", got)
	}
	if got := New(0, 10).ClampStart(4); !got.Equal(New(4, 10)) {
		t.Errorf("ClampStart = %v, want (4,10)", got)
	}
	if got := New(0, 10).ClampEnd(4); !got.Equal(New(0, 4)) {
		t.Errorf("ClampEnd = %v, want (0,4)", got)
	}
	if got := New(0, 10).ClampStart(12); !got.Empty() {
		t.Errorf("ClampStart past end should be empty, got %v", got)
	}
}

func TestAdjacent(t *testing.T) {
	if !New(0, 3).Adjacent(New(3, 5)) {
		t.Error("(0,3) should be adjacent to (3,5)")
	}
	if !New(3, 5).Adjacent(New(0, 3)) {
		t.Error("adjacency should be symmetric")
	}
	if New(0, 3).Adjacent(New(4, 5)) {
		t.Error("(0,3) should not be adjacent to (4,5)")
	}
	if New(0, 3).Adjacent(New(2, 5)) {
		t.Error("overlapping intervals are not adjacent")
	}
	if (Interval{}).Adjacent(New(0, 3)) {
		t.Error("empty interval is never adjacent")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	cases := []Interval{New(0, 3), New(-5, 7), {}, New(3, Infinity)}
	for _, iv := range cases {
		got, err := Parse(iv.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", iv.String(), err)
		}
		if !got.Equal(iv) {
			t.Errorf("round trip %v -> %q -> %v", iv, iv.String(), got)
		}
	}
	for _, bad := range []string{"", "(", "(1)", "(a,b)", "1,2", "(1,2", "(,)"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// randInterval yields a non-empty interval with small coordinates so that
// every qualitative configuration is exercised.
func randInterval(rng *rand.Rand) Interval {
	start := Time(rng.Intn(12))
	return Interval{Start: start, End: start + 1 + Time(rng.Intn(6))}
}

func TestPropertyIntersectSubtractPartition(t *testing.T) {
	// For all a, b: a = (a ∩ b) ⊎ (a \ b) as a partition of ticks.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randInterval(rng), randInterval(rng)
		ov := a.Intersect(b)
		rest := a.Subtract(b)
		var total Time = ov.Len()
		for _, r := range rest {
			total += r.Len()
			if r.Overlaps(b) {
				t.Fatalf("a=%v b=%v: piece %v overlaps b", a, b, r)
			}
			if !a.ContainsInterval(r) {
				t.Fatalf("a=%v b=%v: piece %v escapes a", a, b, r)
			}
		}
		if total != a.Len() {
			t.Fatalf("a=%v b=%v: partition lengths %d != %d", a, b, total, a.Len())
		}
	}
}

func TestQuickIntersectCommutes(t *testing.T) {
	f := func(as, al, bs, bl uint8) bool {
		a := New(Time(as), Time(as)+Time(al%16))
		b := New(Time(bs), Time(bs)+Time(bl%16))
		return a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHullContainsBoth(t *testing.T) {
	f := func(as, al, bs, bl uint8) bool {
		a := New(Time(as), Time(as)+1+Time(al%16))
		b := New(Time(bs), Time(bs)+1+Time(bl%16))
		h := a.Hull(b)
		return h.ContainsInterval(a) && h.ContainsInterval(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
