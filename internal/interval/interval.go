// Package interval implements the time model underlying ROTA: discrete
// time points, half-open time intervals, Allen's interval algebra (the
// thirteen qualitative relations of Table I in the paper), relation
// composition, interval sets, and qualitative constraint networks with
// path-consistency propagation.
//
// Time is modeled as int64 ticks. The tick length corresponds to the
// paper's Δt — the smallest time slice the system can account for — and is
// chosen by the embedding system ("control granularity"). All intervals are
// half-open [Start, End): a resource term defined on (0,3) in the paper's
// notation covers ticks 0, 1 and 2. An interval with End <= Start is empty;
// per §III of the paper, resources over empty intervals are null.
package interval

import (
	"fmt"
	"strconv"
)

// Time is a discrete point in time, measured in ticks of Δt.
type Time = int64

// Infinity is a sentinel end-time for unbounded horizons. It is far enough
// from any realistic tick count that arithmetic on bounded intervals cannot
// reach it.
const Infinity Time = 1<<62 - 1

// NegInfinity is the corresponding sentinel start-time.
const NegInfinity Time = -(1<<62 - 1)

// Interval is a half-open span of time [Start, End).
//
// The zero value is the empty interval [0, 0).
type Interval struct {
	Start Time
	End   Time
}

// New returns the interval [start, end). It does not normalize: an
// interval with end <= start is a valid (empty) interval.
func New(start, end Time) Interval {
	return Interval{Start: start, End: end}
}

// Point returns the unit interval [t, t+1) covering exactly tick t.
func Point(t Time) Interval {
	return Interval{Start: t, End: t + 1}
}

// Span returns the interval [start, start+length).
func Span(start Time, length Time) Interval {
	return Interval{Start: start, End: start + length}
}

// Empty reports whether the interval contains no ticks.
func (iv Interval) Empty() bool {
	return iv.End <= iv.Start
}

// Len returns the number of ticks in the interval, zero if empty.
func (iv Interval) Len() Time {
	if iv.Empty() {
		return 0
	}
	return iv.End - iv.Start
}

// Contains reports whether tick t lies inside the interval.
func (iv Interval) Contains(t Time) bool {
	return iv.Start <= t && t < iv.End
}

// ContainsInterval reports whether other is fully inside iv. The empty
// interval is contained in everything.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	return iv.Start <= other.Start && other.End <= iv.End
}

// Equal reports whether two intervals cover the same ticks. All empty
// intervals are equal to each other.
func (iv Interval) Equal(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return iv.Empty() && other.Empty()
	}
	return iv.Start == other.Start && iv.End == other.End
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	out := Interval{Start: max64(iv.Start, other.Start), End: min64(iv.End, other.End)}
	if out.Empty() {
		return Interval{}
	}
	return out
}

// Overlaps reports whether the two intervals share at least one tick.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Intersect(other).Empty()
}

// Adjacent reports whether the intervals are disjoint but share an
// endpoint, i.e. one meets the other (in either direction).
func (iv Interval) Adjacent(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.End == other.Start || other.End == iv.Start
}

// Hull returns the smallest interval containing both inputs. The hull of
// an empty interval with x is x.
func (iv Interval) Hull(other Interval) Interval {
	switch {
	case iv.Empty():
		return other
	case other.Empty():
		return iv
	}
	return Interval{Start: min64(iv.Start, other.Start), End: max64(iv.End, other.End)}
}

// Subtract returns iv \ other as up to two disjoint intervals, in
// ascending order. Empty pieces are omitted.
func (iv Interval) Subtract(other Interval) []Interval {
	if iv.Empty() {
		return nil
	}
	ov := iv.Intersect(other)
	if ov.Empty() {
		return []Interval{iv}
	}
	var out []Interval
	if left := (Interval{Start: iv.Start, End: ov.Start}); !left.Empty() {
		out = append(out, left)
	}
	if right := (Interval{Start: ov.End, End: iv.End}); !right.Empty() {
		out = append(out, right)
	}
	return out
}

// Shift returns the interval translated by delta ticks.
func (iv Interval) Shift(delta Time) Interval {
	if iv.Empty() {
		return Interval{}
	}
	return Interval{Start: iv.Start + delta, End: iv.End + delta}
}

// ClampStart returns the portion of iv at or after t.
func (iv Interval) ClampStart(t Time) Interval {
	return iv.Intersect(Interval{Start: t, End: Infinity})
}

// ClampEnd returns the portion of iv strictly before t.
func (iv Interval) ClampEnd(t Time) Interval {
	return iv.Intersect(Interval{Start: NegInfinity, End: t})
}

// String renders the interval in the paper's (start, end) notation.
func (iv Interval) String() string {
	if iv.Empty() {
		return "(∅)"
	}
	return "(" + formatTime(iv.Start) + "," + formatTime(iv.End) + ")"
}

func formatTime(t Time) string {
	switch t {
	case Infinity:
		return "+inf"
	case NegInfinity:
		return "-inf"
	}
	return strconv.FormatInt(t, 10)
}

// Parse parses the "(start,end)" notation produced by String.
func Parse(s string) (Interval, error) {
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return Interval{}, fmt.Errorf("interval: malformed %q", s)
	}
	body := s[1 : len(s)-1]
	if body == "∅" {
		return Interval{}, nil
	}
	comma := -1
	for i := 1; i < len(body); i++ { // skip index 0 so a leading '-' is fine
		if body[i] == ',' {
			comma = i
			break
		}
	}
	if comma < 0 {
		return Interval{}, fmt.Errorf("interval: malformed %q", s)
	}
	start, err := parseTime(body[:comma])
	if err != nil {
		return Interval{}, fmt.Errorf("interval: bad start in %q: %w", s, err)
	}
	end, err := parseTime(body[comma+1:])
	if err != nil {
		return Interval{}, fmt.Errorf("interval: bad end in %q: %w", s, err)
	}
	return Interval{Start: start, End: end}, nil
}

func parseTime(s string) (Time, error) {
	switch s {
	case "+inf", "inf":
		return Infinity, nil
	case "-inf":
		return NegInfinity, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

func min64(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

func max64(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
