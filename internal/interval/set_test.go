package interval

import (
	"math/rand"
	"testing"
)

func TestNewSetNormalizes(t *testing.T) {
	tests := []struct {
		name string
		in   []Interval
		want []Interval
	}{
		{"empty", nil, nil},
		{"drops empties", []Interval{{}, New(3, 3)}, nil},
		{"sorts", []Interval{New(5, 7), New(0, 2)}, []Interval{New(0, 2), New(5, 7)}},
		{"merges overlap", []Interval{New(0, 4), New(2, 6)}, []Interval{New(0, 6)}},
		{"merges adjacency", []Interval{New(0, 3), New(3, 6)}, []Interval{New(0, 6)}},
		{"keeps gaps", []Interval{New(0, 2), New(4, 6)}, []Interval{New(0, 2), New(4, 6)}},
		{"swallows nested", []Interval{New(0, 10), New(3, 5)}, []Interval{New(0, 10)}},
		{
			"chain",
			[]Interval{New(8, 9), New(0, 2), New(1, 4), New(4, 5), New(7, 8)},
			[]Interval{New(0, 5), New(7, 9)},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewSet(tt.in...).Intervals()
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("piece %d: got %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestSetQueries(t *testing.T) {
	s := NewSet(New(0, 3), New(5, 9))
	if s.Empty() {
		t.Error("set should not be empty")
	}
	if got := s.Len(); got != 7 {
		t.Errorf("Len = %d, want 7", got)
	}
	if got := s.Pieces(); got != 2 {
		t.Errorf("Pieces = %d, want 2", got)
	}
	if !s.Contains(0) || !s.Contains(2) || s.Contains(3) || s.Contains(4) || !s.Contains(8) || s.Contains(9) {
		t.Error("Contains misclassifies ticks")
	}
	if !s.ContainsInterval(New(5, 9)) || !s.ContainsInterval(New(6, 8)) {
		t.Error("ContainsInterval should accept covered intervals")
	}
	if s.ContainsInterval(New(2, 6)) {
		t.Error("ContainsInterval must reject gap-spanning interval")
	}
	if !s.ContainsInterval(Interval{}) {
		t.Error("empty interval is always contained")
	}
	if got := s.Hull(); !got.Equal(New(0, 9)) {
		t.Errorf("Hull = %v", got)
	}
	if got := (Set{}).Hull(); !got.Empty() {
		t.Errorf("empty set hull = %v", got)
	}
}

func TestSetUnionIntersectSubtract(t *testing.T) {
	a := NewSet(New(0, 4), New(6, 10))
	b := NewSet(New(3, 7), New(9, 12))
	if got, want := a.Union(b), NewSet(New(0, 12)); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), NewSet(New(3, 4), New(6, 7), New(9, 10)); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Subtract(b), NewSet(New(0, 3), New(7, 9)); !got.Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if got := a.Subtract(a); !got.Empty() {
		t.Errorf("a \\ a = %v, want empty", got)
	}
	if got := a.Clamp(New(2, 8)); !got.Equal(NewSet(New(2, 4), New(6, 8))) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestSetString(t *testing.T) {
	if got := (Set{}).String(); got != "(∅)" {
		t.Errorf("empty set String = %q", got)
	}
	if got := NewSet(New(0, 2), New(4, 6)).String(); got != "(0,2)∪(4,6)" {
		t.Errorf("String = %q", got)
	}
}

func randSet(rng *rand.Rand) Set {
	n := rng.Intn(5)
	ivs := make([]Interval, n)
	for i := range ivs {
		ivs[i] = randInterval(rng)
	}
	return NewSet(ivs...)
}

func TestPropertySetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const horizon = 24
	covered := func(s Set, t Time) bool { return s.Contains(t) }
	for i := 0; i < 1500; i++ {
		a, b := randSet(rng), randSet(rng)
		u := a.Union(b)
		x := a.Intersect(b)
		d := a.Subtract(b)
		for tick := Time(0); tick < horizon; tick++ {
			inA, inB := covered(a, tick), covered(b, tick)
			if got := covered(u, tick); got != (inA || inB) {
				t.Fatalf("union wrong at %d: a=%v b=%v", tick, a, b)
			}
			if got := covered(x, tick); got != (inA && inB) {
				t.Fatalf("intersect wrong at %d: a=%v b=%v", tick, a, b)
			}
			if got := covered(d, tick); got != (inA && !inB) {
				t.Fatalf("subtract wrong at %d: a=%v b=%v", tick, a, b)
			}
		}
		// Normalization invariants: sorted, disjoint, non-adjacent.
		for _, s := range []Set{u, x, d} {
			ivs := s.Intervals()
			for k := 1; k < len(ivs); k++ {
				if ivs[k].Start <= ivs[k-1].End {
					t.Fatalf("set not normalized: %v", s)
				}
			}
		}
		// Union is commutative; subtract then union restores a.
		if !u.Equal(b.Union(a)) {
			t.Fatalf("union not commutative: %v vs %v", u, b.Union(a))
		}
		if !d.Union(x).Equal(a.Intersect(a)) && !d.Union(x).Equal(a) {
			t.Fatalf("(a\\b) ∪ (a∩b) != a for a=%v b=%v", a, b)
		}
	}
}

func BenchmarkSetUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	sets := make([]Set, 32)
	for i := range sets {
		sets[i] = randSet(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sets[i%32].Union(sets[(i+1)%32])
	}
}
