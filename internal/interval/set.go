package interval

import (
	"sort"
	"strings"
)

// Set is a normalized union of disjoint, non-adjacent, non-empty intervals
// kept in ascending order. It supports the set operations the paper uses
// on time intervals: union (∪), intersection (∩) and relative complement
// (\).
//
// The zero value is the empty set, ready for use. Set values are treated
// as immutable: operations return new sets.
type Set struct {
	ivs []Interval
}

// NewSet builds a normalized set from arbitrary intervals (they may be
// empty, unordered or overlapping).
func NewSet(ivs ...Interval) Set {
	work := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			work = append(work, iv)
		}
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Start != work[j].Start {
			return work[i].Start < work[j].Start
		}
		return work[i].End < work[j].End
	})
	var out []Interval
	for _, iv := range work {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return Set{ivs: out}
}

// Intervals returns a copy of the member intervals in ascending order.
func (s Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Empty reports whether the set covers no ticks.
func (s Set) Empty() bool {
	return len(s.ivs) == 0
}

// Len returns the total number of ticks covered.
func (s Set) Len() Time {
	var total Time
	for _, iv := range s.ivs {
		total += iv.Len()
	}
	return total
}

// Pieces returns the number of maximal intervals in the set.
func (s Set) Pieces() int {
	return len(s.ivs)
}

// Contains reports whether tick t is covered.
func (s Set) Contains(t Time) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// ContainsInterval reports whether every tick of iv is covered. Because
// members are non-adjacent, iv must fit inside a single member.
func (s Set) ContainsInterval(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > iv.Start })
	return i < len(s.ivs) && s.ivs[i].ContainsInterval(iv)
}

// Hull returns the smallest single interval covering the set.
func (s Set) Hull() Interval {
	if len(s.ivs) == 0 {
		return Interval{}
	}
	return Interval{Start: s.ivs[0].Start, End: s.ivs[len(s.ivs)-1].End}
}

// Union returns s ∪ other.
func (s Set) Union(other Set) Set {
	return NewSet(append(s.Intervals(), other.ivs...)...)
}

// Intersect returns s ∩ other by sweeping both ordered lists.
func (s Set) Intersect(other Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		ov := s.ivs[i].Intersect(other.ivs[j])
		if !ov.Empty() {
			out = append(out, ov)
		}
		if s.ivs[i].End < other.ivs[j].End {
			i++
		} else {
			j++
		}
	}
	return Set{ivs: out}
}

// Subtract returns s \ other.
func (s Set) Subtract(other Set) Set {
	var out []Interval
	for _, iv := range s.ivs {
		rest := []Interval{iv}
		for _, sub := range other.ivs {
			if sub.Start >= iv.End {
				break
			}
			var next []Interval
			for _, piece := range rest {
				next = append(next, piece.Subtract(sub)...)
			}
			rest = next
		}
		out = append(out, rest...)
	}
	return Set{ivs: out}
}

// Equal reports whether both sets cover exactly the same ticks.
func (s Set) Equal(other Set) bool {
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != other.ivs[i] {
			return false
		}
	}
	return true
}

// Clamp returns the subset of s lying within window.
func (s Set) Clamp(window Interval) Set {
	return s.Intersect(NewSet(window))
}

// String renders the set as "(a,b)∪(c,d)"; the empty set renders as "(∅)".
func (s Set) String() string {
	if len(s.ivs) == 0 {
		return "(∅)"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, "∪")
}
