package interval

import (
	"math/rand"
	"testing"
)

func TestRelationBetweenTableI(t *testing.T) {
	// One concrete witness per row of the paper's Table I.
	tests := []struct {
		name string
		a, b Interval
		want Relation
	}{
		{"before", New(0, 2), New(4, 6), Before},
		{"after", New(4, 6), New(0, 2), After},
		{"equal", New(1, 5), New(1, 5), Equal},
		{"during", New(2, 4), New(0, 6), During},
		{"contains", New(0, 6), New(2, 4), Contains},
		{"meets", New(0, 3), New(3, 6), Meets},
		{"met-by", New(3, 6), New(0, 3), MetBy},
		{"overlaps", New(0, 4), New(2, 6), OverlapsWith},
		{"overlapped-by", New(2, 6), New(0, 4), OverlappedBy},
		{"starts", New(0, 3), New(0, 6), Starts},
		{"started-by", New(0, 6), New(0, 3), StartedBy},
		{"finishes", New(3, 6), New(0, 6), Finishes},
		{"finished-by", New(0, 6), New(3, 6), FinishedBy},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RelationBetween(tt.a, tt.b); got != tt.want {
				t.Errorf("RelationBetween(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestRelationBetweenPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty interval")
		}
	}()
	RelationBetween(Interval{}, New(0, 3))
}

func TestConverseInvolution(t *testing.T) {
	for _, r := range AllRelations {
		if got := r.Converse().Converse(); got != r {
			t.Errorf("%v.Converse().Converse() = %v", r, got)
		}
	}
	if Equal.Converse() != Equal {
		t.Error("Equal must be its own converse")
	}
}

func TestPropertyExactlyOneRelation(t *testing.T) {
	// JEPD: the thirteen relations are jointly exhaustive and pairwise
	// disjoint — exactly one holds for any pair of proper intervals, and
	// the converse relation holds in the reverse direction.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		a, b := randInterval(rng), randInterval(rng)
		r := RelationBetween(a, b)
		if !r.Valid() {
			t.Fatalf("invalid relation for %v, %v", a, b)
		}
		if back := RelationBetween(b, a); back != r.Converse() {
			t.Fatalf("converse violated: rel(%v,%v)=%v but rel(%v,%v)=%v",
				a, b, r, b, a, back)
		}
	}
}

func TestRelationStringAndSymbol(t *testing.T) {
	for _, r := range AllRelations {
		if r.String() == "" || r.Symbol() == "?" {
			t.Errorf("relation %d missing name or symbol", r)
		}
	}
	if Relation(0).Valid() {
		t.Error("zero relation must be invalid")
	}
	if Relation(0).String() != "Relation(0)" {
		t.Errorf("zero relation String = %q", Relation(0).String())
	}
	if Relation(99).Symbol() != "?" {
		t.Error("invalid relation should render ? symbol")
	}
}

func TestRelSetBasics(t *testing.T) {
	s := NewRelSet(Before, Meets)
	if !s.Has(Before) || !s.Has(Meets) || s.Has(After) {
		t.Errorf("membership wrong in %v", s)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	if _, ok := s.Singleton(); ok {
		t.Error("two-element set reported as singleton")
	}
	if r, ok := NewRelSet(During).Singleton(); !ok || r != During {
		t.Errorf("Singleton = %v, %v", r, ok)
	}
	if !EmptyRelSet.IsEmpty() {
		t.Error("EmptyRelSet should be empty")
	}
	if FullRelSet.Count() != 13 {
		t.Errorf("FullRelSet has %d members, want 13", FullRelSet.Count())
	}
	if got := s.String(); got != "{before,meets}" {
		t.Errorf("String = %q", got)
	}
	// Add of invalid relation is a no-op.
	if s.Add(Relation(0)) != s || s.Add(Relation(99)) != s {
		t.Error("adding invalid relation should not change the set")
	}
}

func TestRelSetOps(t *testing.T) {
	a := NewRelSet(Before, Meets, During)
	b := NewRelSet(Meets, During, After)
	if got := a.Intersect(b); got != NewRelSet(Meets, During) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != NewRelSet(Before, Meets, During, After) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Converse(); got != NewRelSet(After, MetBy, Contains) {
		t.Errorf("Converse = %v", got)
	}
	if got := FullRelSet.Converse(); got != FullRelSet {
		t.Errorf("FullRelSet converse = %v", got)
	}
	rels := a.Relations()
	if len(rels) != 3 {
		t.Fatalf("Relations() = %v", rels)
	}
}
