package actor

import (
	"testing"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

var (
	cpuL1  = resource.CPUAt("l1")
	cpuL2  = resource.CPUAt("l2")
	netL12 = resource.Link("l1", "l2")
)

func u(n int64) resource.Rate { return resource.FromUnits(n) }

func mustRealize(t testing.TB, name compute.ActorName, actions ...compute.Action) compute.Computation {
	t.Helper()
	c, err := cost.Realize(cost.Paper(), name, actions...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTaskLifecycle(t *testing.T) {
	comp := mustRealize(t, "a1", compute.Evaluate("a1", "l1", 1)) // 8 cpu
	task := NewTask("job", comp, 10)
	if task.Done() {
		t.Fatal("fresh task done")
	}
	if task.DoneAt() != -1 {
		t.Fatal("DoneAt before completion")
	}
	if got := task.RemainingWork(); got != resource.QuantityFromUnits(8) {
		t.Fatalf("RemainingWork = %d", got)
	}
	step, ok := task.Step()
	if !ok || step.Action.Op != compute.OpEvaluate {
		t.Fatalf("Step = %+v, %v", step, ok)
	}

	rt := NewRuntime(0)
	if err := rt.Spawn(task); err != nil {
		t.Fatal(err)
	}
	// Partial feed.
	if used := task.Feed(rt, cpuL1, resource.QuantityFromUnits(3), 0); used != resource.QuantityFromUnits(3) {
		t.Fatalf("Feed used %d", used)
	}
	if task.Done() {
		t.Fatal("done too early")
	}
	// Over-feed absorbs only the remainder.
	if used := task.Feed(rt, cpuL1, resource.QuantityFromUnits(100), 2); used != resource.QuantityFromUnits(5) {
		t.Fatalf("final Feed used %d", used)
	}
	if !task.Done() {
		t.Fatal("task should be done")
	}
	if task.DoneAt() != 3 {
		t.Fatalf("DoneAt = %d, want 3 (end of tick 2)", task.DoneAt())
	}
	// Feeding a done task absorbs nothing.
	if used := task.Feed(rt, cpuL1, resource.QuantityFromUnits(1), 4); used != 0 {
		t.Fatal("done task absorbed resources")
	}
	// Wrong type absorbs nothing.
	task2 := NewTask("job", mustRealize(t, "a2", compute.Evaluate("a2", "l1", 1)), 10)
	if used := task2.Feed(rt, netL12, resource.QuantityFromUnits(1), 0); used != 0 {
		t.Fatal("wrong-type feed absorbed")
	}
}

func TestTaskSkipsFreeSteps(t *testing.T) {
	free := compute.Step{Action: compute.Ready("a1", "l1"), Amounts: resource.NewAmounts()}
	paid := compute.Step{
		Action:  compute.Evaluate("a1", "l1", 1),
		Amounts: resource.NewAmounts(resource.AmountOf(2, cpuL1)),
	}
	comp, err := compute.NewComputation("a1", free, paid, free)
	if err != nil {
		t.Fatal(err)
	}
	task := NewTask("job", comp, 10)
	step, ok := task.Step()
	if !ok || step.Amounts.Empty() {
		t.Fatalf("current step should be the paid one: %+v", step)
	}
	rt := NewRuntime(0)
	task.Feed(rt, cpuL1, resource.QuantityFromUnits(2), 0)
	if !task.Done() {
		t.Error("trailing free step should not block completion")
	}
}

func TestSideEffects(t *testing.T) {
	comp := mustRealize(t, "a1",
		compute.Send("a1", "l1", "b", "l2", 2),
		compute.Create("a1", "l1", "kid"),
		compute.Migrate("a1", "l1", "l2", 4),
	)
	task := NewTask("job", comp, 50)
	rt := NewRuntime(0)
	if err := rt.Spawn(task); err != nil {
		t.Fatal(err)
	}
	rt.OnCreate = func(parent *Task, child compute.ActorName) *compute.Computation {
		c := mustRealize(t, child, compute.Evaluate(child, "l1", 1))
		return &c
	}
	if task.Location() != "l1" {
		t.Fatalf("initial location %s", task.Location())
	}
	// Complete the send (4 net).
	task.Feed(rt, netL12, resource.QuantityFromUnits(4), 1)
	if len(rt.Messages) != 1 || rt.Messages[0].To != "b" || rt.Messages[0].At != 1 {
		t.Fatalf("Messages = %+v", rt.Messages)
	}
	// Complete the create (5 cpu): child spawns with inherited deadline.
	task.Feed(rt, cpuL1, resource.QuantityFromUnits(5), 2)
	if len(rt.Creations) != 1 || rt.Creations[0].Child != "kid" {
		t.Fatalf("Creations = %+v", rt.Creations)
	}
	kid, ok := rt.Task("kid")
	if !ok {
		t.Fatal("child not spawned")
	}
	if kid.Deadline != 50 || kid.Job != "job" {
		t.Errorf("child inherits job/deadline: %+v", kid)
	}
	// Complete the migrate (3 cpu@l1 + 4 net + 3 cpu@l2).
	task.Feed(rt, cpuL1, resource.QuantityFromUnits(3), 3)
	task.Feed(rt, netL12, resource.QuantityFromUnits(4), 3)
	task.Feed(rt, cpuL2, resource.QuantityFromUnits(3), 4)
	if len(rt.Migrations) != 1 {
		t.Fatalf("Migrations = %+v", rt.Migrations)
	}
	if task.Location() != "l2" {
		t.Errorf("location after migrate = %s", task.Location())
	}
	if !task.Done() {
		t.Error("task should be done after all steps")
	}
}

func TestSpawnDuplicateRejected(t *testing.T) {
	rt := NewRuntime(0)
	c := mustRealize(t, "a1", compute.Ready("a1", "l1"))
	if err := rt.Spawn(NewTask("j", c, 5)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Spawn(NewTask("j", c, 5)); err == nil {
		t.Error("duplicate spawn accepted")
	}
}

func TestSpawnAllFreeScriptCompletesImmediately(t *testing.T) {
	rt := NewRuntime(7)
	free := compute.Step{Action: compute.Ready("a1", "l1"), Amounts: resource.NewAmounts()}
	comp, err := compute.NewComputation("a1", free, free)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Spawn(NewTask("j", comp, 20)); err != nil {
		t.Fatal(err)
	}
	task, _ := rt.Task("a1")
	if !task.Done() || task.DoneAt() != 7 {
		t.Errorf("free script: done=%v at %d, want done at 7", task.Done(), task.DoneAt())
	}
}

func TestTickEDFPriorityAndWorkConservation(t *testing.T) {
	rt := NewRuntime(0)
	urgent := NewTask("u", mustRealize(t, "u1", compute.Evaluate("u1", "l1", 1)), 5) // 8 cpu, deadline 5
	lax := NewTask("l", mustRealize(t, "l1", compute.Evaluate("l1", "l1", 1)), 50)   // 8 cpu, deadline 50
	if err := rt.Spawn(lax); err != nil {
		t.Fatal(err)
	}
	if err := rt.Spawn(urgent); err != nil {
		t.Fatal(err)
	}
	// Rate 10: urgent absorbs its full 8, lax gets the remaining 2.
	avail := resource.NewSet(resource.NewTerm(u(10), cpuL1, interval.New(0, 10)))
	consumed := rt.TickEDF(&avail)
	if len(consumed) != 2 {
		t.Fatalf("consumptions = %+v", consumed)
	}
	if consumed[0].Task != "u1" || consumed[0].Qty != resource.QuantityFromUnits(8) {
		t.Errorf("EDF order violated: %+v", consumed)
	}
	if consumed[1].Task != "l1" || consumed[1].Qty != resource.QuantityFromUnits(2) {
		t.Errorf("work conservation violated: %+v", consumed)
	}
	if !urgent.Done() || lax.Done() {
		t.Error("completion states wrong")
	}
	if rt.Now() != 1 {
		t.Errorf("clock = %d", rt.Now())
	}
	// Tick availability expired.
	if got := avail.RateAt(cpuL1, 0); got != 0 {
		t.Errorf("tick-0 availability survived: %d", got)
	}
	if got := avail.RateAt(cpuL1, 5); got != u(10) {
		t.Errorf("future availability lost: %d", got)
	}
}

func TestTickEDFMultiTickCompletion(t *testing.T) {
	rt := NewRuntime(0)
	task := NewTask("j", mustRealize(t, "a1", compute.Evaluate("a1", "l1", 1)), 10) // 8 cpu
	if err := rt.Spawn(task); err != nil {
		t.Fatal(err)
	}
	avail := resource.NewSet(resource.NewTerm(u(3), cpuL1, interval.New(0, 10)))
	for i := 0; i < 3 && !task.Done(); i++ {
		rt.TickEDF(&avail)
	}
	if !task.Done() {
		t.Fatal("8 units at rate 3 should finish within 3 ticks")
	}
	if task.DoneAt() != 3 {
		t.Errorf("DoneAt = %d, want 3", task.DoneAt())
	}
	// Total consumed should be exactly 8 units: 3+3+2.
	if got := avail.QuantityWithin(cpuL1, interval.New(3, 10)); got != resource.QuantityFromUnits(21) {
		t.Errorf("remaining = %d, want 21 units", got)
	}
}

func TestTickEDFStarvationUnderScarcity(t *testing.T) {
	// Two tasks need the same cpu; supply covers only one by its deadline.
	rt := NewRuntime(0)
	t1 := NewTask("j1", mustRealize(t, "a1", compute.Evaluate("a1", "l1", 1)), 4)
	t2 := NewTask("j2", mustRealize(t, "a2", compute.Evaluate("a2", "l1", 1)), 4)
	if err := rt.Spawn(t1); err != nil {
		t.Fatal(err)
	}
	if err := rt.Spawn(t2); err != nil {
		t.Fatal(err)
	}
	avail := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8)))
	for i := 0; i < 8; i++ {
		rt.TickEDF(&avail)
	}
	doneOnTime := 0
	for _, task := range rt.Tasks() {
		if task.Done() && task.DoneAt() <= 4 {
			doneOnTime++
		}
	}
	if doneOnTime != 1 {
		t.Errorf("%d tasks met deadline, want exactly 1 (capacity for one)", doneOnTime)
	}
	if len(rt.Live()) != 0 {
		t.Errorf("both should eventually finish, live = %d", len(rt.Live()))
	}
}

func BenchmarkTickEDF(b *testing.B) {
	// 16 live tasks sharing one cpu pool.
	rt := NewRuntime(0)
	avail := resource.NewSet(resource.NewTerm(u(32), cpuL1, interval.New(0, 1<<40)))
	for i := 0; i < 16; i++ {
		name := compute.ActorName(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		comp, err := cost.Realize(cost.Paper(), name, compute.Evaluate(name, "l1", 1))
		if err != nil {
			b.Fatal(err)
		}
		comp.Steps[0].Amounts = resource.NewAmounts(resource.Amount{
			Qty: resource.QuantityFromUnits(1 << 40), Type: cpuL1,
		})
		if err := rt.Spawn(NewTask("bench", comp, 1<<40)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.TickEDF(&avail)
	}
}
