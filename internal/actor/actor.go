// Package actor is the operational substrate: a discrete-time actor
// runtime executing the five actor primitives of §IV-A (send, evaluate,
// create, ready, migrate) by consuming located resources each tick.
//
// The runtime provides the uncoordinated, work-conserving execution model
// the admission baselines are measured under: each tick, available rate
// of every located type is divided among the actors whose current step
// needs it, earliest-deadline-first. This contrasts with the plan-
// following execution of core.Run, where consumption follows the
// admission witness exactly.
package actor

import (
	"fmt"
	"sort"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
)

// Task is one actor's in-flight computation: its remaining steps and the
// progress of the current one. A Task belongs to a job and inherits its
// deadline for scheduling priority.
type Task struct {
	Name     compute.ActorName
	Job      string
	Deadline interval.Time

	steps     []compute.Step
	stepIdx   int
	remaining resource.Amounts
	loc       resource.Location
	doneAt    interval.Time
}

// NewTask builds a task from a costed computation.
func NewTask(job string, comp compute.Computation, deadline interval.Time) *Task {
	t := &Task{
		Name:     comp.Actor,
		Job:      job,
		Deadline: deadline,
		steps:    comp.Steps,
		doneAt:   -1,
	}
	if len(comp.Steps) > 0 {
		t.loc = comp.Steps[0].Action.Loc
	}
	t.loadStep()
	return t
}

// loadStep initializes progress for the current step, skipping free steps
// (they complete instantly, which matches the requirement derivation
// dropping them).
func (t *Task) loadStep() {
	for t.stepIdx < len(t.steps) {
		step := t.steps[t.stepIdx]
		if !step.Amounts.Empty() {
			t.remaining = step.Amounts.Clone()
			return
		}
		t.stepIdx++
	}
	t.remaining = nil
}

// Done reports whether every step has completed.
func (t *Task) Done() bool {
	return t.stepIdx >= len(t.steps)
}

// DoneAt returns the completion tick, or -1 while running.
func (t *Task) DoneAt() interval.Time {
	return t.doneAt
}

// Location returns the actor's current location (updated by completed
// migrations).
func (t *Task) Location() resource.Location {
	return t.loc
}

// Step returns the current step, if any.
func (t *Task) Step() (compute.Step, bool) {
	if t.Done() {
		return compute.Step{}, false
	}
	return t.steps[t.stepIdx], true
}

// Needs returns the amounts still required to finish the current step.
func (t *Task) Needs() resource.Amounts {
	if t.Done() {
		return nil
	}
	return t.remaining
}

// RemainingWork sums the quantity still needed across all steps.
func (t *Task) RemainingWork() resource.Quantity {
	if t.Done() {
		return 0
	}
	var total resource.Quantity
	total += t.remaining.Total()
	for i := t.stepIdx + 1; i < len(t.steps); i++ {
		total += t.steps[i].Amounts.Total()
	}
	return total
}

// Feed delivers qty of lt to the current step at time now, returning the
// quantity actually absorbed (zero if the step does not need lt). When
// the step's needs reach zero the step completes, its side effect fires,
// and the next step loads.
func (t *Task) Feed(rt *Runtime, lt resource.LocatedType, qty resource.Quantity, now interval.Time) resource.Quantity {
	if t.Done() || qty <= 0 {
		return 0
	}
	need, ok := t.remaining[lt]
	if !ok || need <= 0 {
		return 0
	}
	used := qty
	if used > need {
		used = need
	}
	t.remaining[lt] = need - used
	if t.remaining[lt] <= 0 {
		delete(t.remaining, lt)
	}
	if len(t.remaining) == 0 {
		t.completeStep(rt, now)
	}
	return used
}

// completeStep fires the completed step's side effect and advances.
func (t *Task) completeStep(rt *Runtime, now interval.Time) {
	step := t.steps[t.stepIdx]
	if rt != nil {
		rt.onStepComplete(t, step, now)
	}
	if step.Action.Op == compute.OpMigrate {
		t.loc = step.Action.Dest
	}
	t.stepIdx++
	t.loadStep()
	if t.Done() && t.doneAt < 0 {
		t.doneAt = now + 1 // completes at the end of the current tick
	}
}

// Message records a completed send: From's message to To became visible
// at tick At.
type Message struct {
	From, To compute.ActorName
	At       interval.Time
	Size     int64
}

// Creation records a completed create.
type Creation struct {
	Parent, Child compute.ActorName
	At            interval.Time
	Loc           resource.Location
}

// Migration records a completed migrate.
type Migration struct {
	Actor    compute.ActorName
	From, To resource.Location
	At       interval.Time
}

// Runtime hosts tasks and executes them tick by tick.
type Runtime struct {
	now   interval.Time
	tasks []*Task
	index map[compute.ActorName]*Task

	// Event logs, exported for inspection.
	Messages   []Message
	Creations  []Creation
	Migrations []Migration

	// OnCreate, if set, returns the computation a newly created actor
	// should run (nil to create an inert actor). It enables dynamic actor
	// topologies beyond pre-declared scripts.
	OnCreate func(parent *Task, child compute.ActorName) *compute.Computation
}

// NewRuntime creates an empty runtime starting at time now.
func NewRuntime(now interval.Time) *Runtime {
	return &Runtime{now: now, index: make(map[compute.ActorName]*Task)}
}

// Now returns the runtime clock.
func (rt *Runtime) Now() interval.Time {
	return rt.now
}

// Spawn adds a task. Actor names must be unique.
func (rt *Runtime) Spawn(t *Task) error {
	if _, dup := rt.index[t.Name]; dup {
		return fmt.Errorf("actor: duplicate actor %s", t.Name)
	}
	rt.tasks = append(rt.tasks, t)
	rt.index[t.Name] = t
	if t.Done() && t.doneAt < 0 {
		t.doneAt = rt.now // all-free script completes immediately
	}
	return nil
}

// Task returns the named task.
func (rt *Runtime) Task(name compute.ActorName) (*Task, bool) {
	t, ok := rt.index[name]
	return t, ok
}

// Tasks returns all tasks (live and done).
func (rt *Runtime) Tasks() []*Task {
	return rt.tasks
}

// Live returns the tasks still running.
func (rt *Runtime) Live() []*Task {
	var out []*Task
	for _, t := range rt.tasks {
		if !t.Done() {
			out = append(out, t)
		}
	}
	return out
}

// onStepComplete records side effects of finished steps.
func (rt *Runtime) onStepComplete(t *Task, step compute.Step, now interval.Time) {
	switch step.Action.Op {
	case compute.OpSend:
		rt.Messages = append(rt.Messages, Message{
			From: t.Name, To: step.Action.Target, At: now, Size: step.Action.Size,
		})
	case compute.OpCreate:
		child := step.Action.Target
		rt.Creations = append(rt.Creations, Creation{
			Parent: t.Name, Child: child, At: now, Loc: step.Action.Loc,
		})
		if rt.OnCreate != nil {
			if comp := rt.OnCreate(t, child); comp != nil {
				// Child inherits the parent's job and deadline.
				_ = rt.Spawn(NewTask(t.Job, *comp, t.Deadline))
			}
		}
	case compute.OpMigrate:
		rt.Migrations = append(rt.Migrations, Migration{
			Actor: t.Name, From: step.Action.Loc, To: step.Action.Dest, At: now,
		})
	}
}

// Consumption records one task's resource intake during a tick.
type Consumption struct {
	Task compute.ActorName
	Type resource.LocatedType
	Qty  resource.Quantity
}

// TickEDF advances the runtime one tick, dividing the availability in
// avail among live tasks earliest-deadline-first, work-conserving: a task
// takes as much of its current step's needs as the remaining rate allows,
// then the next task takes what is left. Consumed availability is removed
// from avail in place; availability for the elapsed tick then expires.
func (rt *Runtime) TickEDF(avail *resource.Set) []Consumption {
	span := interval.New(rt.now, rt.now+1)
	live := rt.Live()
	sort.SliceStable(live, func(i, j int) bool {
		if live[i].Deadline != live[j].Deadline {
			return live[i].Deadline < live[j].Deadline
		}
		return live[i].Name < live[j].Name
	})
	var consumed []Consumption
	for _, task := range live {
		// Copy the needed types first: Feed mutates the map.
		needs := task.Needs()
		types := needs.Types()
		for _, lt := range types {
			rate := avail.MinRate(lt, span)
			if rate <= 0 {
				continue
			}
			offer := resource.Quantity(rate) // rate × 1 tick
			used := task.Feed(rt, lt, offer, rt.now)
			if used <= 0 {
				continue
			}
			if err := avail.Consume(lt, span, resource.Rate(used)); err != nil {
				// MinRate guaranteed coverage; this is unreachable.
				panic("actor: consume after MinRate check failed: " + err.Error())
			}
			consumed = append(consumed, Consumption{Task: task.Name, Type: lt, Qty: used})
		}
	}
	avail.TrimBefore(rt.now + 1)
	rt.now++
	return consumed
}
