package query

import (
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/resource"
)

// freeSet builds a free view of rate units of cpu at l1 over [0, 100).
func freeSet(units int64) resource.Set {
	var s resource.Set
	s.Add(resource.NewTerm(resource.FromUnits(units),
		resource.At("cpu", "l1"), interval.New(0, 100)))
	return s
}

func snapshot(units int64) Snapshot {
	return Snapshot{Now: 0, Epoch: 1, Free: freeSet(units),
		Commitments: map[string]Commitment{}}
}

func mustParse(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := ParseText(src)
	if err != nil {
		t.Fatalf("ParseText(%q): %v", src, err)
	}
	return c
}

func evalText(t *testing.T, src string, snap Snapshot) bool {
	t.Helper()
	res, err := mustParse(t, src).Evaluate(snap)
	if err != nil {
		t.Fatalf("Evaluate(%q): %v", src, err)
	}
	return res.Holds
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"true",
		"false",
		"holds(l1, cpu>=5, always, next 30)",
		"holds(l1>l2, link>=2.5, eventually, from 10 to 40)",
		"holds(l1, cpu>=1)",
		"feasible(job-1)",
		"feasible(job-1, before 90)",
		"before(j1, window(10, 20))",
		"during(j1, j2)",
		"not holds(l1, cpu>=5) and (feasible(j1) or true)",
	}
	for _, src := range cases {
		c := mustParse(t, src)
		again := mustParse(t, c.Source())
		if c.Source() != again.Source() {
			t.Errorf("round trip drift: %q -> %q -> %q", src, c.Source(), again.Source())
		}
	}
}

func TestParseAliases(t *testing.T) {
	a := mustParse(t, "!holds(l1, cpu>=5) & true | false")
	b := mustParse(t, "not holds(l1, cpu>=5) and true or false")
	if a.Source() != b.Source() {
		t.Fatalf("aliases diverge: %q vs %q", a.Source(), b.Source())
	}
	// '_' in relation names normalizes to '-'.
	c := mustParse(t, "met_by(window(5, 10), window(0, 5))")
	if !strings.Contains(c.Source(), "met-by") {
		t.Fatalf("met_by not normalized: %q", c.Source())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"holds(l1)",
		"holds(l1, cpu>=0)",
		"holds(l1, cpu>=5, sometimes)",
		"holds(l1, cpu>=5, next -3)",
		"holds(l1, cpu>=5, from 9 to 3)",
		"feasible()",
		"nonsense(l1)",
		"overlapping(j1, j2)", // not an Allen name
		"before(j1)",
		"holds(l1, cpu>=5) and",
		"(holds(l1, cpu>=5)",
		"true true",
		"window(1, 2)", // a ref is not a formula
		strings.Repeat("(", 100) + "true" + strings.Repeat(")", 100), // too deep
	}
	for _, src := range bad {
		if _, err := ParseText(src); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", src)
		}
	}
}

func TestCompileJSONMatchesText(t *testing.T) {
	text := mustParse(t, "holds(l1, cpu>=40, next 10) and feasible(j1)")
	ast, err := ParseJSON([]byte(`{"op":"and","args":[
		{"op":"holds","loc":"l1","kind":"cpu","min":40,"next":10},
		{"op":"feasible","job":"j1"}]}`))
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if text.Source() != ast.Source() {
		t.Fatalf("text %q != ast %q", text.Source(), ast.Source())
	}
	snap := snapshot(4)
	r1, err1 := text.Evaluate(snap)
	r2, err2 := ast.Evaluate(snap)
	if err1 != nil || err2 != nil {
		t.Fatalf("evaluate: %v / %v", err1, err2)
	}
	if r1.Holds != r2.Holds {
		t.Fatalf("text and AST verdicts differ: %v vs %v", r1.Holds, r2.Holds)
	}
}

func TestHoldsQuantitySemantics(t *testing.T) {
	// 4 units/tick over [0,100): the window (0,10) provides 40 units.
	snap := snapshot(4)
	if !evalText(t, "holds(l1, cpu>=40, next 10)", snap) {
		t.Error("40 units should fit in a 40-unit window")
	}
	if evalText(t, "holds(l1, cpu>=41, next 10)", snap) {
		t.Error("41 units should not fit in a 40-unit window")
	}
	// Unbounded window: the whole 400-unit horizon counts.
	if !evalText(t, "holds(l1, cpu>=400)", snap) {
		t.Error("400 units should fit in the whole horizon")
	}
	if evalText(t, "holds(l1, cpu>=401)", snap) {
		t.Error("401 units should not fit in the whole horizon")
	}
}

func TestHoldsModalities(t *testing.T) {
	snap := snapshot(4)
	// □: at the last in-window position t=9 the remaining window (9,10)
	// provides 4 units.
	if !evalText(t, "holds(l1, cpu>=4, always, next 10)", snap) {
		t.Error("always cpu>=4 should hold to the end of the window")
	}
	if evalText(t, "holds(l1, cpu>=5, always, next 10)", snap) {
		t.Error("always cpu>=5 must fail at the window's last tick")
	}
	// ◇: the full window seen from position 0 decides it.
	if !evalText(t, "holds(l1, cpu>=40, eventually, next 10)", snap) {
		t.Error("eventually cpu>=40 should hold at position 0")
	}
	// Huge relative windows must neither overflow nor materialize huge
	// paths; beyond the availability horizon nothing more accrues.
	if !evalText(t, "holds(l1, cpu>=400, eventually, next 4611686018427387000)", snap) {
		t.Error("huge window should still see the 400-unit horizon")
	}
	if evalText(t, "holds(l1, cpu>=401, always, next 4611686018427387000)", snap) {
		t.Error("huge always-window cannot provide more than the horizon")
	}
}

func TestFeasible(t *testing.T) {
	snap := snapshot(4)
	var demand resource.Set
	demand.Add(resource.NewTerm(resource.FromUnits(2), resource.At("cpu", "l1"), interval.New(5, 10)))
	snap.Commitments["j1"] = Commitment{
		Name: "j1", Admitted: 0, Finish: 10, Deadline: 20,
		Locations: []resource.Location{"l1"}, Demand: demand,
	}
	if !evalText(t, "feasible(j1)", snap) {
		t.Error("10 remaining units should re-fit in an 80-unit window")
	}
	if !evalText(t, "feasible(j1, before 10)", snap) {
		t.Error("10 remaining units should re-fit before t=10")
	}
	if evalText(t, "feasible(j1, before 2)", snap) {
		t.Error("10 units cannot fit in an 8-unit window")
	}
	if evalText(t, "feasible(ghost)", snap) {
		t.Error("an unknown job is not feasible")
	}
	// A drained commitment is trivially feasible.
	snap.Commitments["done"] = Commitment{Name: "done", Admitted: 0, Finish: 10, Deadline: 20}
	if !evalText(t, "feasible(done)", snap) {
		t.Error("an empty remaining demand is trivially feasible")
	}
}

func TestAllenPredicates(t *testing.T) {
	snap := snapshot(4)
	snap.Commitments["j1"] = Commitment{Name: "j1", Admitted: 5, Finish: 10, Deadline: 20}
	snap.Commitments["j2"] = Commitment{Name: "j2", Admitted: 10, Finish: 30, Deadline: 40}
	cases := map[string]bool{
		"during(j1, window(0, 50))":  true,
		"before(j1, window(20, 25))": true,
		"meets(j1, j2)":              true,
		"met-by(j2, j1)":             true,
		"before(j2, j1)":             false,
		"equal(j1, window(5, 10))":   true,
		"before(ghost, j1)":          false, // unresolvable ref
	}
	for src, want := range cases {
		if got := evalText(t, src, snap); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	snap := snapshot(4)
	cases := map[string]bool{
		"true and false":                       false,
		"true or false":                        true,
		"not false":                            true,
		"holds(l1, cpu>=40, next 10) or false": true,
		"not holds(l1, cpu>=41, next 10)":      true,
		// 'and' binds tighter than 'or'.
		"false and false or true":   true,
		"false and (false or true)": false,
	}
	for src, want := range cases {
		if got := evalText(t, src, snap); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestFootprintAndNames(t *testing.T) {
	c := mustParse(t, "holds(l1>l2, link>=1) and feasible(j1) and before(j2, window(0, 5))")
	if got, want := strings.Join(c.Names(), ","), "j1,j2"; got != want {
		t.Fatalf("Names() = %q, want %q", got, want)
	}
	comms := map[string]Commitment{
		"j1": {Name: "j1", Locations: []resource.Location{"l3"}},
	}
	fp := c.Footprint(comms)
	var got []string
	for _, loc := range fp {
		got = append(got, string(loc))
	}
	if want := "l1,l2,l3"; strings.Join(got, ",") != want {
		t.Fatalf("Footprint() = %q, want %q", strings.Join(got, ","), want)
	}
}

func TestSpeculativePathBounded(t *testing.T) {
	p := speculativePath(freeSet(4), 0, interval.Infinity-1)
	if p.Len() > maxPathStates {
		t.Fatalf("path has %d states, bound is %d", p.Len(), maxPathStates)
	}
	if p.Last().Now != interval.Infinity-1 {
		t.Fatalf("path ends at %d, want horizon", p.Last().Now)
	}
}
