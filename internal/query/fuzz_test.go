package query

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/resource"
)

// fuzzSnapshot is a small but non-trivial ledger view: enough structure
// that parsed queries exercise every build path during fuzzing.
func fuzzSnapshot() Snapshot {
	var free resource.Set
	free.Add(resource.NewTerm(resource.FromUnits(4), resource.At("cpu", "l1"), interval.New(0, 100)))
	free.Add(resource.NewTerm(resource.FromUnits(2), resource.At("mem", "l2"), interval.New(10, 50)))
	var demand resource.Set
	demand.Add(resource.NewTerm(resource.FromUnits(1), resource.At("cpu", "l1"), interval.New(5, 15)))
	return Snapshot{
		Now:   3,
		Epoch: 7,
		Free:  free,
		Commitments: map[string]Commitment{
			"j1": {Name: "j1", Admitted: 0, Finish: 15, Deadline: 30,
				Locations: []resource.Location{"l1"}, Demand: demand},
			"j2": {Name: "j2", Admitted: 15, Finish: 40, Deadline: 60,
				Locations: []resource.Location{"l2"}},
		},
	}
}

// FuzzParseText asserts the text parser never panics, and that whatever
// it accepts evaluates cleanly and round-trips through its canonical
// rendering — malformed operators, huge windows, and bad Allen
// predicate names must all fail as errors, not crashes.
func FuzzParseText(f *testing.F) {
	seeds := []string{
		"true",
		"holds(l1, cpu>=5, always, next 30)",
		"holds(l1>l2, link>=2.5, eventually, from 10 to 40)",
		"feasible(j1, before 90)",
		"feasible(j1, before deadline)",
		"before(j1, window(10, 20))",
		"met_by(j2, j1)",
		"not holds(l1, cpu>=5) and (feasible(j1) or true)",
		"!holds(l1,cpu>=1)&true|false",
		"holds(l1, cpu>=99999999999999, next 9223372036854775807)",
		"holds(l1, cpu>=5, next 30, always",
		"during(window(0,0), j1)",
		"overlapped-by(window(1,9), window(2,3))",
		"equal(, )",
		"holds(l1, cpu>=-5)",
		"((((((true))))))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	snap := fuzzSnapshot()
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseText(src)
		if err != nil {
			return
		}
		res, err := c.Evaluate(snap)
		if err != nil {
			// Evaluation of a valid parse may still reject (e.g. a
			// threshold that rounds to nothing) but must not panic.
			return
		}
		again, err := ParseText(c.Source())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", c.Source(), err)
		}
		res2, err := again.Evaluate(snap)
		if err != nil {
			t.Fatalf("canonical form %q does not re-evaluate: %v", c.Source(), err)
		}
		if res.Holds != res2.Holds {
			t.Fatalf("verdict drift through canonical form %q: %v vs %v", c.Source(), res.Holds, res2.Holds)
		}
	})
}

// FuzzParseJSON asserts the JSON AST wire path never panics and agrees
// with the canonical text form when it accepts.
func FuzzParseJSON(f *testing.F) {
	seeds := []string{
		`{"op":"true"}`,
		`{"op":"holds","loc":"l1","kind":"cpu","min":5,"mode":"always","next":30}`,
		`{"op":"holds","loc":"l1","dst":"l2","kind":"link","min":2.5,"from":10,"to":40}`,
		`{"op":"feasible","job":"j1","before":90}`,
		`{"op":"allen","rel":"during","a":{"job":"j1"},"b":{"from":0,"to":50}}`,
		`{"op":"and","args":[{"op":"true"},{"op":"not","args":[{"op":"false"}]}]}`,
		`{"op":"holds","loc":"l1","kind":"cpu","min":1e300,"next":-1}`,
		`{"op":"allen","rel":"sideways","a":{"job":"j1"},"b":{"job":"j2"}}`,
		`{"op":"and","args":[]}`,
		`{"op":"not","args":[{"op":"not","args":[{"op":"not","args":[{"op":"true"}]}]}]}`,
		`[1,2,3]`,
		`{"op":"holds","loc":"l1","kind":"cpu","min":5,"next":30,"from":1,"to":2}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	snap := fuzzSnapshot()
	f.Fuzz(func(t *testing.T, data string) {
		c, err := ParseJSON([]byte(data))
		if err != nil {
			return
		}
		if _, err := c.Evaluate(snap); err != nil {
			return
		}
		if _, err := ParseText(c.Source()); err != nil {
			t.Fatalf("AST canonical form %q does not re-parse: %v", c.Source(), err)
		}
	})
}
