// Package query turns the ◇/□ formula checker into a queryable service
// over the live ledger: a small temporal query language (a compact text
// form and a JSON AST) compiles to internal/core formulas and is
// evaluated against a free-view snapshot (Θ − reserved − leased). The
// same compiled query powers one-shot evaluation (GET/POST /v1/query)
// and continuous subscriptions (/v1/watch), whose verdicts are
// re-checked whenever the ledger epoch advances.
//
// Text grammar (all keywords lowercase; '|' and '&' are accepted as
// aliases for 'or' and 'and', '!' for 'not'):
//
//	expr    := term { ("or" | "|") term }
//	term    := factor { ("and" | "&") factor }
//	factor  := ("not" | "!") factor | primary
//	primary := "true" | "false" | "(" expr ")" | atom
//	atom    := "holds" "(" loc [">" dst] "," kind ">=" qty { "," opt } ")"
//	         | "feasible" "(" name [ "," "before" (tick | "deadline") ] ")"
//	         | rel "(" ref "," ref ")"
//	opt     := "always" | "eventually" | "next" n | "within" n
//	         | "from" tick "to" tick
//	ref     := name | "window" "(" tick "," tick ")"
//	rel     := one of the thirteen Allen relation names (before, after,
//	           meets, met-by, overlaps, overlapped-by, starts,
//	           started-by, during, contains, finishes, finished-by,
//	           equal; '_' may be written for '-')
//
// 'holds' asks whether the free view can still absorb qty units of
// kind at loc within the window ("next n" is relative to the ledger
// clock at evaluation time, "from a to b" absolute; omitted means an
// unbounded horizon). 'feasible' asks whether a live commitment's
// remaining demand would still fit the free view before its deadline —
// the speculative re-admission probe. Allen atoms relate reservation
// windows ([admitted, finish)) of live commitments, or literal windows.
package query

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/interval"
	"repro/internal/resource"
)

// Wire and validation bounds. A query is a small formula, not a data
// upload: the caps keep hostile inputs from ballooning parse or eval
// cost, and the fuzz harness leans on them.
const (
	// MaxQueryBytes bounds the text form and the JSON AST wire size.
	MaxQueryBytes = 4096
	// maxDepth bounds formula nesting (parser recursion and compile).
	maxDepth = 64
	// maxNodes bounds the total AST size.
	maxNodes = 256
	// maxQuantity bounds a holds threshold, in whole resource units.
	maxQuantity = 1e12
)

// Node is the JSON AST of a query: a recursive operator tree. Op selects
// the shape; unrelated fields must be left zero.
//
//	{"op":"and","args":[...]}                  — also "or", "not" (1 arg)
//	{"op":"true"} / {"op":"false"}
//	{"op":"holds","loc":"l1","kind":"cpu","min":5,
//	 "mode":"always","next":30}                — or "from"/"to" absolute
//	{"op":"feasible","job":"j1","before":90}   — before 0 = job deadline
//	{"op":"allen","rel":"during",
//	 "a":{"job":"j1"},"b":{"from":0,"to":50}}
type Node struct {
	Op   string  `json:"op"`
	Args []*Node `json:"args,omitempty"`

	// holds fields.
	Loc  string  `json:"loc,omitempty"`
	Dst  string  `json:"dst,omitempty"`
	Kind string  `json:"kind,omitempty"`
	Min  float64 `json:"min,omitempty"`
	Mode string  `json:"mode,omitempty"`
	Next int64   `json:"next,omitempty"`
	From int64   `json:"from,omitempty"`
	To   int64   `json:"to,omitempty"`

	// feasible fields.
	Job    string        `json:"job,omitempty"`
	Before interval.Time `json:"before,omitempty"`

	// allen fields.
	Rel string `json:"rel,omitempty"`
	A   *Ref   `json:"a,omitempty"`
	B   *Ref   `json:"b,omitempty"`
}

// Ref is one operand of an Allen atom: a live commitment's reservation
// window (Job) or a literal window [From, To).
type Ref struct {
	Job  string        `json:"job,omitempty"`
	From interval.Time `json:"from,omitempty"`
	To   interval.Time `json:"to,omitempty"`
}

// Compiled is a validated query ready for evaluation. It is immutable
// after Compile and safe for concurrent use, so a subscription can hold
// one across many re-evaluations.
type Compiled struct {
	root   *Node
	source string
	names  []string            // referenced commitment names, sorted
	locs   []resource.Location // static holds footprint, sorted
}

// Source returns the canonical text rendering of the query.
func (c *Compiled) Source() string { return c.source }

// Names returns the commitment names the query references (feasible
// atoms and Allen job refs), sorted. The evaluator must resolve these
// into the snapshot before calling Evaluate.
func (c *Compiled) Names() []string { return c.names }

// Footprint returns the locations the query's verdict depends on: the
// holds atoms' static locations plus the footprints of the referenced
// commitments that resolved. The free view backing a snapshot must
// cover at least these locations.
func (c *Compiled) Footprint(comms map[string]Commitment) []resource.Location {
	seen := make(map[resource.Location]bool, len(c.locs))
	for _, loc := range c.locs {
		seen[loc] = true
	}
	for _, name := range c.names {
		if cm, ok := comms[name]; ok {
			for _, loc := range cm.Locations {
				seen[loc] = true
			}
		}
	}
	out := make([]resource.Location, 0, len(seen))
	for loc := range seen {
		out = append(out, loc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// allenRelations maps the thirteen lowercase Allen relation names (the
// rendering interval.Relation.String uses) to their relations.
var allenRelations = func() map[string]interval.Relation {
	m := make(map[string]interval.Relation, len(interval.AllRelations))
	for _, r := range interval.AllRelations {
		m[r.String()] = r
	}
	return m
}()

// ParseText compiles the compact text form of a query.
func ParseText(src string) (*Compiled, error) {
	if len(src) > MaxQueryBytes {
		return nil, fmt.Errorf("query: text exceeds %d bytes", MaxQueryBytes)
	}
	p := &parser{toks: tokenize(src)}
	node, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("query: trailing input at %q", p.peek())
	}
	return Compile(node)
}

// ParseJSON compiles the JSON AST wire form of a query.
func ParseJSON(data []byte) (*Compiled, error) {
	if len(data) > MaxQueryBytes {
		return nil, fmt.Errorf("query: AST exceeds %d bytes", MaxQueryBytes)
	}
	var node Node
	if err := json.Unmarshal(data, &node); err != nil {
		return nil, fmt.Errorf("query: bad AST: %w", err)
	}
	return Compile(&node)
}

// Compile validates an AST and returns the evaluable query.
func Compile(root *Node) (*Compiled, error) {
	if root == nil {
		return nil, fmt.Errorf("query: empty query")
	}
	c := &Compiled{root: root}
	count := 0
	seenNames := make(map[string]bool)
	seenLocs := make(map[resource.Location]bool)
	if err := c.check(root, 0, &count, seenNames, seenLocs); err != nil {
		return nil, err
	}
	for name := range seenNames {
		c.names = append(c.names, name)
	}
	sort.Strings(c.names)
	for loc := range seenLocs {
		c.locs = append(c.locs, loc)
	}
	sort.Slice(c.locs, func(i, j int) bool { return c.locs[i] < c.locs[j] })
	c.source = render(root)
	return c, nil
}

func (c *Compiled) check(n *Node, depth int, count *int, names map[string]bool, locs map[resource.Location]bool) error {
	if n == nil {
		return fmt.Errorf("query: nil node")
	}
	if depth > maxDepth {
		return fmt.Errorf("query: nesting exceeds %d levels", maxDepth)
	}
	*count++
	if *count > maxNodes {
		return fmt.Errorf("query: more than %d nodes", maxNodes)
	}
	switch n.Op {
	case "true", "false":
		return nil
	case "not":
		if len(n.Args) != 1 {
			return fmt.Errorf("query: not takes exactly one argument")
		}
		return c.check(n.Args[0], depth+1, count, names, locs)
	case "and", "or":
		if len(n.Args) < 2 {
			return fmt.Errorf("query: %s takes at least two arguments", n.Op)
		}
		for _, a := range n.Args {
			if err := c.check(a, depth+1, count, names, locs); err != nil {
				return err
			}
		}
		return nil
	case "holds":
		if err := checkName("location", n.Loc); err != nil {
			return err
		}
		if n.Dst != "" {
			if err := checkName("destination", n.Dst); err != nil {
				return err
			}
		}
		if err := checkName("kind", n.Kind); err != nil {
			return err
		}
		if n.Min <= 0 || n.Min != n.Min || n.Min > maxQuantity {
			return fmt.Errorf("query: holds threshold must be in (0, %g], got %v", float64(maxQuantity), n.Min)
		}
		switch n.Mode {
		case "", "always", "eventually":
		default:
			return fmt.Errorf("query: holds mode must be always or eventually, got %q", n.Mode)
		}
		switch {
		case n.Next != 0 && (n.From != 0 || n.To != 0):
			return fmt.Errorf("query: holds window is either next N or from A to B, not both")
		case n.Next < 0:
			return fmt.Errorf("query: holds next must be positive, got %d", n.Next)
		case n.From < 0 || n.To < 0 || (n.To != 0 && n.To <= n.From) || (n.From != 0 && n.To == 0):
			return fmt.Errorf("query: holds window [%d,%d) is not a valid interval", n.From, n.To)
		}
		locs[resource.Location(n.Loc)] = true
		if n.Dst != "" {
			locs[resource.Location(n.Dst)] = true
		}
		return nil
	case "feasible":
		if err := checkName("job", n.Job); err != nil {
			return err
		}
		if n.Before < 0 {
			return fmt.Errorf("query: feasible deadline must be positive, got %d", n.Before)
		}
		names[n.Job] = true
		return nil
	case "allen":
		if _, ok := allenRelations[n.Rel]; !ok {
			return fmt.Errorf("query: unknown Allen relation %q", n.Rel)
		}
		for _, ref := range []*Ref{n.A, n.B} {
			if ref == nil {
				return fmt.Errorf("query: %s needs two interval refs", n.Rel)
			}
			if ref.Job != "" {
				if ref.From != 0 || ref.To != 0 {
					return fmt.Errorf("query: ref is either a job or a window, not both")
				}
				if err := checkName("job", ref.Job); err != nil {
					return err
				}
				names[ref.Job] = true
			} else if ref.From < 0 || ref.To <= ref.From {
				return fmt.Errorf("query: window [%d,%d) is not a valid interval", ref.From, ref.To)
			}
		}
		return nil
	default:
		return fmt.Errorf("query: unknown operator %q", n.Op)
	}
}

// checkName bounds identifier fields: job names, locations and kinds all
// travel inside resource-set literals elsewhere, so keep them to the
// same safe charset.
func checkName(what, s string) error {
	if s == "" || len(s) > 256 {
		return fmt.Errorf("query: %s must be 1..256 bytes", what)
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_' || r == '-' || r == '.' || r == '#':
		default:
			return fmt.Errorf("query: %s %q contains %q", what, s, r)
		}
	}
	return nil
}

// render produces the canonical text form; it is the inverse of
// ParseText up to formatting.
func render(n *Node) string {
	switch n.Op {
	case "true", "false":
		return n.Op
	case "not":
		return "not " + renderChild(n.Args[0])
	case "and", "or":
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = renderChild(a)
		}
		return strings.Join(parts, " "+n.Op+" ")
	case "holds":
		var b strings.Builder
		b.WriteString("holds(")
		b.WriteString(n.Loc)
		if n.Dst != "" {
			b.WriteString(">")
			b.WriteString(n.Dst)
		}
		fmt.Fprintf(&b, ", %s>=%s", n.Kind, strconv.FormatFloat(n.Min, 'f', -1, 64))
		if n.Mode != "" {
			b.WriteString(", ")
			b.WriteString(n.Mode)
		}
		switch {
		case n.Next > 0:
			fmt.Fprintf(&b, ", next %d", n.Next)
		case n.To > 0:
			fmt.Fprintf(&b, ", from %d to %d", n.From, n.To)
		}
		b.WriteString(")")
		return b.String()
	case "feasible":
		if n.Before > 0 {
			return fmt.Sprintf("feasible(%s, before %d)", n.Job, n.Before)
		}
		return fmt.Sprintf("feasible(%s)", n.Job)
	case "allen":
		return fmt.Sprintf("%s(%s, %s)", n.Rel, renderRef(n.A), renderRef(n.B))
	default:
		return "?"
	}
}

// renderChild parenthesizes composite children so the rendering
// round-trips without relying on precedence.
func renderChild(n *Node) string {
	switch n.Op {
	case "and", "or":
		return "(" + render(n) + ")"
	default:
		return render(n)
	}
}

func renderRef(r *Ref) string {
	if r.Job != "" {
		return r.Job
	}
	return fmt.Sprintf("window(%d, %d)", r.From, r.To)
}

// Tokenizer. Identifiers take letters, digits, '_', '-', '.', '#';
// numbers are unsigned integers or decimals; everything else is a
// single- or two-byte symbol.
type token struct {
	kind byte // 'i' ident, 'n' number, 's' symbol, 'e' error
	text string
}

func tokenize(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch >= '0' && ch <= '9':
			j := i
			dots := 0
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] == '.' {
					dots++
				}
				j++
			}
			if dots > 1 {
				toks = append(toks, token{kind: 'e', text: src[i:j]})
			} else {
				toks = append(toks, token{kind: 'n', text: src[i:j]})
			}
			i = j
		case isIdentByte(ch):
			j := i
			for j < len(src) && (isIdentByte(src[j]) || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, token{kind: 'i', text: src[i:j]})
			i = j
		case ch == '>' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{kind: 's', text: ">="})
			i += 2
		case ch == '(' || ch == ')' || ch == ',' || ch == '>' || ch == '!' || ch == '&' || ch == '|':
			toks = append(toks, token{kind: 's', text: string(ch)})
			i++
		default:
			toks = append(toks, token{kind: 'e', text: string(ch)})
			i++
		}
	}
	return toks
}

func isIdentByte(ch byte) bool {
	return ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' ||
		ch == '_' || ch == '-' || ch == '.' || ch == '#'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return "<end>"
	}
	return p.toks[p.pos].text
}

func (p *parser) accept(kind byte, text string) bool {
	if p.eof() || p.toks[p.pos].kind != kind || p.toks[p.pos].text != text {
		return false
	}
	p.pos++
	return true
}

func (p *parser) expect(kind byte, text string) error {
	if !p.accept(kind, text) {
		return fmt.Errorf("query: expected %q, got %q", text, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.eof() || p.toks[p.pos].kind != 'i' {
		return "", fmt.Errorf("query: expected a name, got %q", p.peek())
	}
	s := p.toks[p.pos].text
	p.pos++
	return s, nil
}

func (p *parser) number() (int64, error) {
	if p.eof() || p.toks[p.pos].kind != 'n' {
		return 0, fmt.Errorf("query: expected a number, got %q", p.peek())
	}
	n, err := strconv.ParseInt(p.toks[p.pos].text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad number %q: %w", p.toks[p.pos].text, err)
	}
	p.pos++
	return n, nil
}

func (p *parser) parseExpr(depth int) (*Node, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("query: nesting exceeds %d levels", maxDepth)
	}
	left, err := p.parseTerm(depth + 1)
	if err != nil {
		return nil, err
	}
	args := []*Node{left}
	for p.accept('i', "or") || p.accept('s', "|") {
		right, err := p.parseTerm(depth + 1)
		if err != nil {
			return nil, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return &Node{Op: "or", Args: args}, nil
}

func (p *parser) parseTerm(depth int) (*Node, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("query: nesting exceeds %d levels", maxDepth)
	}
	left, err := p.parseFactor(depth + 1)
	if err != nil {
		return nil, err
	}
	args := []*Node{left}
	for p.accept('i', "and") || p.accept('s', "&") {
		right, err := p.parseFactor(depth + 1)
		if err != nil {
			return nil, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return &Node{Op: "and", Args: args}, nil
}

func (p *parser) parseFactor(depth int) (*Node, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("query: nesting exceeds %d levels", maxDepth)
	}
	if p.accept('i', "not") || p.accept('s', "!") {
		inner, err := p.parseFactor(depth + 1)
		if err != nil {
			return nil, err
		}
		return &Node{Op: "not", Args: []*Node{inner}}, nil
	}
	return p.parsePrimary(depth + 1)
}

func (p *parser) parsePrimary(depth int) (*Node, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("query: nesting exceeds %d levels", maxDepth)
	}
	switch {
	case p.accept('i', "true"):
		return &Node{Op: "true"}, nil
	case p.accept('i', "false"):
		return &Node{Op: "false"}, nil
	case p.accept('s', "("):
		inner, err := p.parseExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect('s', ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.accept('i', "holds"):
		return p.parseHolds()
	case p.accept('i', "feasible"):
		return p.parseFeasible()
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	rel := strings.ReplaceAll(name, "_", "-")
	if _, ok := allenRelations[rel]; !ok {
		return nil, fmt.Errorf("query: unknown atom or Allen relation %q", name)
	}
	return p.parseAllen(rel)
}

func (p *parser) parseHolds() (*Node, error) {
	n := &Node{Op: "holds"}
	if err := p.expect('s', "("); err != nil {
		return nil, err
	}
	loc, err := p.ident()
	if err != nil {
		return nil, err
	}
	n.Loc = loc
	if p.accept('s', ">") {
		dst, err := p.ident()
		if err != nil {
			return nil, err
		}
		n.Dst = dst
	}
	if err := p.expect('s', ","); err != nil {
		return nil, err
	}
	kind, err := p.ident()
	if err != nil {
		return nil, err
	}
	n.Kind = kind
	if err := p.expect('s', ">="); err != nil {
		return nil, err
	}
	if p.eof() || p.toks[p.pos].kind != 'n' {
		return nil, fmt.Errorf("query: expected a quantity, got %q", p.peek())
	}
	qty, err := strconv.ParseFloat(p.toks[p.pos].text, 64)
	if err != nil {
		return nil, fmt.Errorf("query: bad quantity %q: %w", p.toks[p.pos].text, err)
	}
	p.pos++
	n.Min = qty
	for p.accept('s', ",") {
		switch {
		case p.accept('i', "always"):
			n.Mode = "always"
		case p.accept('i', "eventually"):
			n.Mode = "eventually"
		case p.accept('i', "next"), p.accept('i', "within"):
			ticks, err := p.number()
			if err != nil {
				return nil, err
			}
			n.Next = ticks
		case p.accept('i', "from"):
			from, err := p.number()
			if err != nil {
				return nil, err
			}
			if err := p.expect('i', "to"); err != nil {
				return nil, err
			}
			to, err := p.number()
			if err != nil {
				return nil, err
			}
			n.From, n.To = from, to
		default:
			return nil, fmt.Errorf("query: unknown holds option %q", p.peek())
		}
	}
	if err := p.expect('s', ")"); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) parseFeasible() (*Node, error) {
	n := &Node{Op: "feasible"}
	if err := p.expect('s', "("); err != nil {
		return nil, err
	}
	job, err := p.ident()
	if err != nil {
		return nil, err
	}
	n.Job = job
	if p.accept('s', ",") {
		if err := p.expect('i', "before"); err != nil {
			return nil, err
		}
		if !p.accept('i', "deadline") {
			tick, err := p.number()
			if err != nil {
				return nil, err
			}
			n.Before = tick
		}
	}
	if err := p.expect('s', ")"); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) parseAllen(rel string) (*Node, error) {
	n := &Node{Op: "allen", Rel: rel}
	if err := p.expect('s', "("); err != nil {
		return nil, err
	}
	a, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	if err := p.expect('s', ","); err != nil {
		return nil, err
	}
	b, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	if err := p.expect('s', ")"); err != nil {
		return nil, err
	}
	n.A, n.B = a, b
	return n, nil
}

func (p *parser) parseRef() (*Ref, error) {
	if p.accept('i', "window") {
		if err := p.expect('s', "("); err != nil {
			return nil, err
		}
		from, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect('s', ","); err != nil {
			return nil, err
		}
		to, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect('s', ")"); err != nil {
			return nil, err
		}
		return &Ref{From: from, To: to}, nil
	}
	job, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &Ref{Job: job}, nil
}
