package query

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// toggleEval is a synthetic evaluator whose verdict is an atomic bool:
// tests flip it and bump the manager to provoke verdict flips without a
// ledger.
type toggleEval struct {
	holds atomic.Bool
	epoch atomic.Uint64
}

func (e *toggleEval) eval(c *Compiled) (Verdict, error) {
	return Verdict{Holds: e.holds.Load(), Epoch: e.epoch.Load(), Now: 0}, nil
}

func (e *toggleEval) set(holds bool) uint64 {
	e.holds.Store(holds)
	return e.epoch.Add(1)
}

func waitEvent(t *testing.T, sub *Subscription) Event {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatal("event channel closed while waiting for an event")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for an event")
	}
	panic("unreachable")
}

func TestSubscribeInitialVerdictAndFlip(t *testing.T) {
	eval := &toggleEval{}
	eval.set(true)
	m := NewManager(eval.eval, nil)
	defer m.Close()

	c := mustParse(t, "holds(l1, cpu>=1)")
	sub, err := m.Subscribe(c, 16)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	first := waitEvent(t, sub)
	if !first.Holds || first.Prev != nil || first.Seq != 1 {
		t.Fatalf("initial event = %+v, want holds=true prev=nil seq=1", first)
	}

	epoch := eval.set(false)
	m.Bump(epoch, "release")
	flip := waitEvent(t, sub)
	if flip.Holds || flip.Prev == nil || !*flip.Prev {
		t.Fatalf("flip event = %+v, want holds=false prev=true", flip)
	}
	if flip.Reason != "release" {
		t.Fatalf("flip reason = %q, want release", flip.Reason)
	}

	// Same verdict again: no event.
	m.Bump(eval.epoch.Add(1), "advance")
	select {
	case ev := <-sub.Events():
		t.Fatalf("unexpected event without a flip: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	st := m.Stats()
	if st.Active != 1 || st.Flips != 1 || st.Delivered != 2 {
		t.Fatalf("stats = %+v, want active=1 flips=1 delivered=2", st)
	}
	sub.Close()
	if _, ok := <-sub.Events(); ok {
		t.Fatal("events channel still open after Close")
	}
	if m.Stats().Active != 0 {
		t.Fatal("subscription still active after Close")
	}
}

func TestBoundedQueueDrops(t *testing.T) {
	eval := &toggleEval{}
	m := NewManager(eval.eval, nil)
	defer m.Close()

	sub, err := m.Subscribe(mustParse(t, "true"), 1)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// The initial event fills the queue of one; flips must drop, not
	// block the sweep loop.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; m.Stats().Drops == 0; i++ {
		m.Bump(eval.set(i%2 == 0), "reserve")
		if time.Now().After(deadline) {
			t.Fatal("no drop recorded despite a full queue")
		}
		time.Sleep(time.Millisecond)
	}
	_ = sub
}

// TestConcurrentSubscribeUnsubscribeBump is the -race exercise: many
// goroutines subscribe, close, and bump epochs while the sweep loop
// re-evaluates, and a watched subscription must still observe a clean
// verdict flip.
func TestConcurrentSubscribeUnsubscribeBump(t *testing.T) {
	eval := &toggleEval{}
	eval.set(true)
	m := NewManager(eval.eval, nil)
	defer m.Close()

	c := mustParse(t, "holds(l1, cpu>=1, always, next 10)")
	watched, err := m.Subscribe(c, 64)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if ev := waitEvent(t, watched); !ev.Holds {
		t.Fatalf("initial verdict = %v, want true", ev.Holds)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := m.Subscribe(c, 4)
				if err != nil {
					return // manager closed under us
				}
				m.Bump(eval.epoch.Add(1), "reserve")
				sub.Close()
			}
		}()
	}

	// Flip the verdict mid-churn; the watched subscription must see it.
	time.Sleep(10 * time.Millisecond)
	m.Bump(eval.set(false), "release")
	var flipped bool
	deadline := time.After(5 * time.Second)
	for !flipped {
		select {
		case ev, ok := <-watched.Events():
			if !ok {
				t.Fatal("watched channel closed before the flip")
			}
			if !ev.Holds {
				flipped = true
			}
		case <-deadline:
			t.Fatal("verdict flip never delivered under churn")
		}
	}
	close(stop)
	wg.Wait()
}
