package query

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/resource"
)

// Commitment is the slice of a live commitment a query evaluation needs:
// its reservation window, deadline, footprint and remaining demand. The
// server builds these from the ledger; the cluster layer also builds
// them from peers' commitment lookups.
type Commitment struct {
	Name      string
	Admitted  interval.Time
	Finish    interval.Time
	Deadline  interval.Time
	Locations []resource.Location
	Demand    resource.Set
}

// Snapshot is one consistent view of the ledger for a query evaluation:
// the clock, the epoch the view was taken at, the merged free
// availability of the query's footprint (Θ − reserved − leased), and
// the referenced commitments that resolved. Missing names are simply
// absent: feasible/Allen atoms over them evaluate to false rather than
// erroring, so a standing query may outlive the jobs it watches.
type Snapshot struct {
	Now         interval.Time
	Epoch       uint64
	Free        resource.Set
	Commitments map[string]Commitment
}

// Result is a query verdict with the core formula it was decided by.
type Result struct {
	Holds   bool
	Formula string
}

// maxPathStates bounds the speculative path a modal query is evaluated
// on: windows of any size are sampled at at most this many positions, so
// a "next 10^9" query costs the same as a "next 30" one. Satisfy atoms
// are monotone over the suffix windows clampWindow produces, so
// coarsening positions never flips a verdict that a finer sampling of
// the same horizon would give between sampled points.
const maxPathStates = 64

// Evaluate compiles the query against the snapshot and decides it at
// the snapshot's clock (path position 0).
func (c *Compiled) Evaluate(snap Snapshot) (Result, error) {
	f, horizon, err := c.build(c.root, snap)
	if err != nil {
		return Result{}, err
	}
	p := speculativePath(snap.Free, snap.Now, horizon)
	holds, err := core.Eval(p, 0, f)
	if err != nil {
		return Result{}, fmt.Errorf("query: evaluating %s: %w", c.source, err)
	}
	return Result{Holds: holds, Formula: f.String()}, nil
}

// speculativePath materializes the committed path the query is judged
// on: the free view held constant while the clock advances to the
// horizon. Each step carries no expirations, so FreeWithin reduces to
// the free set clamped to the (position-clamped) window — exactly the
// paper's "resources that will expire unused unless something new
// consumes them" for a ledger whose reservations are already
// subtracted out.
func speculativePath(free resource.Set, now, horizon interval.Time) *core.Path {
	if horizon <= now {
		return core.NewPath(core.State{Theta: free, Now: now})
	}
	span := horizon - now
	steps := span
	if steps > maxPathStates-1 {
		steps = maxPathStates - 1
	}
	dt := (span + steps - 1) / steps
	p := &core.Path{States: make([]core.State, 0, steps+1)}
	t := now
	for {
		p.States = append(p.States, core.State{Theta: free, Now: t})
		if t >= horizon {
			break
		}
		next := satAdd(t, dt)
		if next > horizon {
			next = horizon
		}
		p.Steps = append(p.Steps, core.Transition{Kind: core.KindIdle, From: t, To: next})
		t = next
	}
	return p
}

// satAdd adds two non-negative times, saturating at Infinity so huge
// relative windows cannot overflow.
func satAdd(a, b interval.Time) interval.Time {
	if a > interval.Infinity-b {
		return interval.Infinity
	}
	return a + b
}

// build compiles one AST node into a core formula, returning the
// furthest horizon any modal atom needs the path to reach.
func (c *Compiled) build(n *Node, snap Snapshot) (core.Formula, interval.Time, error) {
	switch n.Op {
	case "true":
		return core.True{}, snap.Now, nil
	case "false":
		return core.False{}, snap.Now, nil
	case "not":
		inner, h, err := c.build(n.Args[0], snap)
		return core.Not{F: inner}, h, err
	case "and", "or":
		var out core.Formula
		horizon := snap.Now
		for _, a := range n.Args {
			inner, h, err := c.build(a, snap)
			if err != nil {
				return nil, 0, err
			}
			if h > horizon {
				horizon = h
			}
			switch {
			case out == nil:
				out = inner
			case n.Op == "and":
				out = core.And{L: out, R: inner}
			default:
				out = core.Or{L: out, R: inner}
			}
		}
		return out, horizon, nil
	case "holds":
		return c.buildHolds(n, snap)
	case "feasible":
		return c.buildFeasible(n, snap), snap.Now, nil
	case "allen":
		return c.buildAllen(n, snap), snap.Now, nil
	default:
		return nil, 0, fmt.Errorf("query: unknown operator %q", n.Op)
	}
}

// buildHolds compiles holds(loc[>dst], kind>=qty, mode, window) into a
// (possibly modal) satisfy atom over the free view.
func (c *Compiled) buildHolds(n *Node, snap Snapshot) (core.Formula, interval.Time, error) {
	window := interval.New(snap.Now, interval.Infinity)
	switch {
	case n.Next > 0:
		window = interval.New(snap.Now, satAdd(snap.Now, n.Next))
	case n.To > 0:
		window = interval.New(n.From, n.To)
	}
	lt := resource.At(resource.Kind(n.Kind), resource.Location(n.Loc))
	if n.Dst != "" {
		lt = resource.LocatedType{Kind: resource.Kind(n.Kind),
			Loc: resource.Location(n.Loc), Dst: resource.Location(n.Dst)}
	}
	need := resource.Quantity(n.Min * float64(resource.Unit))
	if need <= 0 {
		return nil, 0, fmt.Errorf("query: holds threshold %v rounds to nothing", n.Min)
	}
	var f core.Formula = core.SatisfySimple{Req: compute.Simple{
		Amounts: resource.Amounts{lt: need},
		Window:  window,
	}}
	horizon := snap.Now
	switch n.Mode {
	case "always":
		f = core.Always{F: f}
		horizon = window.End - 1
	case "eventually":
		f = core.Eventually{F: f}
		horizon = window.End - 1
	}
	if horizon >= interval.Infinity-1 {
		// An unbounded modal window: sample out to the end of the known
		// availability — beyond it nothing changes, so the last position
		// decides the tail.
		if hull := snap.Free.Hull(); !hull.Empty() && hull.End > snap.Now {
			horizon = hull.End - 1
		} else {
			horizon = snap.Now
		}
	}
	// The path's final position is the last tick at which the window is
	// still open (clampWindow empties at End), so □ quantifies over
	// exactly the window's ticks instead of vacuously failing at End.
	if horizon < snap.Now {
		horizon = snap.Now
	}
	return f, horizon, nil
}

// buildFeasible compiles feasible(job[, before d]) into the speculative
// re-admission atom: would the job's remaining demand, re-planned from
// scratch, still fit the free view before the deadline? An unknown job
// is false — the standing form of "is there headroom to re-home this".
func (c *Compiled) buildFeasible(n *Node, snap Snapshot) core.Formula {
	cm, ok := snap.Commitments[n.Job]
	if !ok {
		return core.False{}
	}
	deadline := cm.Deadline
	if n.Before > 0 {
		deadline = n.Before
	}
	amounts := make(resource.Amounts)
	for lt, qty := range cm.Demand.TotalQuantity(cm.Demand.Hull()) {
		if qty > 0 {
			amounts[lt] = qty
		}
	}
	if len(amounts) == 0 {
		// Nothing left to do: trivially feasible.
		return core.True{}
	}
	return core.SatisfySimple{Req: compute.Simple{
		Amounts: amounts,
		Window:  interval.New(snap.Now, deadline),
	}}
}

// buildAllen resolves both refs against the snapshot and decides the
// relation at compile time: reservation windows are fixed once
// admitted, so the atom is a constant within one epoch. Unresolvable or
// empty operands are false (the algebra is defined only on proper
// intervals).
func (c *Compiled) buildAllen(n *Node, snap Snapshot) core.Formula {
	a, okA := resolveRef(n.A, snap)
	b, okB := resolveRef(n.B, snap)
	if !okA || !okB || a.Empty() || b.Empty() {
		return core.False{}
	}
	if interval.RelationBetween(a, b) == allenRelations[n.Rel] {
		return core.True{}
	}
	return core.False{}
}

func resolveRef(r *Ref, snap Snapshot) (interval.Interval, bool) {
	if r.Job == "" {
		return interval.New(r.From, r.To), true
	}
	cm, ok := snap.Commitments[r.Job]
	if !ok {
		return interval.Interval{}, false
	}
	return interval.New(cm.Admitted, cm.Finish), true
}
