package query

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/interval"
)

// Evaluator decides a compiled query against the current ledger state.
// The server injects one that snapshots the free view; the manager
// never touches the ledger directly.
type Evaluator func(c *Compiled) (Verdict, error)

// Verdict is one evaluation outcome with the state it was taken
// against.
type Verdict struct {
	Holds bool
	Epoch uint64
	Now   interval.Time
}

// Event is one delivery to a subscriber: the initial verdict when the
// subscription is created (Prev == nil), then one event per verdict
// flip. Seq increases per subscription; gaps mean the bounded queue
// dropped flips (Dropped is the cumulative count, so a consumer can
// tell how many).
type Event struct {
	Sub     uint64        `json:"sub"`
	Seq     uint64        `json:"seq"`
	Query   string        `json:"query"`
	Holds   bool          `json:"holds"`
	Prev    *bool         `json:"prev,omitempty"`
	Epoch   uint64        `json:"epoch"`
	Now     interval.Time `json:"now"`
	Reason  string        `json:"reason,omitempty"`
	Dropped uint64        `json:"dropped,omitempty"`
}

// Subscription is one standing query. Read verdicts from Events; the
// channel closes when the subscription is removed (Close, manager
// shutdown). All methods are safe for concurrent use.
type Subscription struct {
	id     uint64
	c      *Compiled
	events chan Event

	m *Manager
	// verdict/seq are guarded by m.mu.
	verdict bool
	seq     uint64
	dropped atomic.Uint64
	removed bool // guarded by m.mu; true once events is closed
}

// ID returns the subscription's identifier.
func (s *Subscription) ID() uint64 { return s.id }

// Query returns the canonical text of the standing query.
func (s *Subscription) Query() string { return s.c.Source() }

// Events returns the verdict stream.
func (s *Subscription) Events() <-chan Event { return s.events }

// Close removes the subscription and closes its event channel.
func (s *Subscription) Close() { s.m.unsubscribe(s.id) }

// ManagerStats digests the subscription manager for /v1/stats.
type ManagerStats struct {
	Active        int    `json:"active_subscriptions"`
	Evals         uint64 `json:"evals"`
	EvalErrors    uint64 `json:"eval_errors"`
	Flips         uint64 `json:"flips"`
	Delivered     uint64 `json:"delivered"`
	Drops         uint64 `json:"drops"`
	WebhookErrors uint64 `json:"webhook_errors"`
}

// Manager re-evaluates standing queries when the ledger epoch advances
// and delivers verdict flips to bounded per-subscriber queues. A single
// re-evaluation goroutine coalesces bursts of epoch bumps: while one
// sweep runs, any number of further bumps collapse into one pending
// wake, so subscription cost stays O(subs) per quiet period rather than
// per ledger write.
type Manager struct {
	eval Evaluator
	log  func(event string, kv ...any)

	mu     sync.Mutex
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool

	wake       chan struct{}
	done       chan struct{}
	loopExited chan struct{}

	lastEpoch  atomic.Uint64
	lastReason atomic.Value // string

	evals       atomic.Uint64
	evalErrors  atomic.Uint64
	flips       atomic.Uint64
	delivered   atomic.Uint64
	drops       atomic.Uint64
	webhookErrs atomic.Uint64
	webhookWg   sync.WaitGroup
}

// NewManager starts a subscription manager. log receives structured
// query.* events and may be nil.
func NewManager(eval Evaluator, log func(event string, kv ...any)) *Manager {
	m := &Manager{
		eval:       eval,
		log:        log,
		subs:       make(map[uint64]*Subscription),
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		loopExited: make(chan struct{}),
	}
	if m.log == nil {
		m.log = func(string, ...any) {}
	}
	go m.loop()
	return m
}

// Bump notifies the manager that the ledger moved to the given epoch
// for the given reason (reserve, release, acquire, advance, prepare,
// commit, abort). Never blocks: wakes coalesce.
func (m *Manager) Bump(epoch uint64, reason string) {
	m.lastEpoch.Store(epoch)
	m.lastReason.Store(reason)
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// Subscribe registers a standing query. queueLen bounds the
// subscriber's event queue (clamped to [1, 256]); the initial verdict
// is evaluated synchronously and delivered as the first event.
func (m *Manager) Subscribe(c *Compiled, queueLen int) (*Subscription, error) {
	if queueLen < 1 {
		queueLen = 16
	}
	if queueLen > 256 {
		queueLen = 256
	}
	v, err := m.eval(c)
	m.evals.Add(1)
	if err != nil {
		m.evalErrors.Add(1)
		return nil, fmt.Errorf("query: initial evaluation: %w", err)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("query: subscription manager closed")
	}
	m.nextID++
	sub := &Subscription{
		id:      m.nextID,
		c:       c,
		events:  make(chan Event, queueLen),
		m:       m,
		verdict: v.Holds,
	}
	m.subs[sub.id] = sub
	m.deliverLocked(sub, v, nil, "subscribe")
	m.mu.Unlock()
	// The ledger may have moved between the evaluation and the
	// registration; a self-wake closes the gap.
	select {
	case m.wake <- struct{}{}:
	default:
	}
	m.log("query.subscribe", "sub", sub.id, "query", c.Source(), "holds", v.Holds, "epoch", v.Epoch)
	return sub, nil
}

// unsubscribe removes a subscription and closes its channel. Idempotent.
func (m *Manager) unsubscribe(id uint64) {
	m.mu.Lock()
	sub, ok := m.subs[id]
	if ok {
		delete(m.subs, id)
		sub.removed = true
		close(sub.events)
	}
	m.mu.Unlock()
	if ok {
		m.log("query.unsubscribe", "sub", id, "query", sub.c.Source())
	}
}

// Close shuts the manager down: the re-evaluation loop exits, every
// subscription's channel closes, and in-flight webhook deliveries are
// waited out.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for id, sub := range m.subs {
		delete(m.subs, id)
		sub.removed = true
		close(sub.events)
	}
	m.mu.Unlock()
	close(m.done)
	<-m.loopExited
	m.webhookWg.Wait()
}

// Stats digests the manager's counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	active := len(m.subs)
	m.mu.Unlock()
	return ManagerStats{
		Active:        active,
		Evals:         m.evals.Load(),
		EvalErrors:    m.evalErrors.Load(),
		Flips:         m.flips.Load(),
		Delivered:     m.delivered.Load(),
		Drops:         m.drops.Load(),
		WebhookErrors: m.webhookErrs.Load(),
	}
}

// loop is the single re-evaluation goroutine.
func (m *Manager) loop() {
	defer close(m.loopExited)
	for {
		select {
		case <-m.done:
			return
		case <-m.wake:
			m.sweep()
		}
	}
}

// sweep re-evaluates every standing query once and delivers flips.
func (m *Manager) sweep() {
	reason, _ := m.lastReason.Load().(string)
	m.mu.Lock()
	pending := make([]*Subscription, 0, len(m.subs))
	for _, sub := range m.subs {
		pending = append(pending, sub)
	}
	m.mu.Unlock()

	for _, sub := range pending {
		v, err := m.eval(sub.c)
		m.evals.Add(1)
		if err != nil {
			// Keep the last verdict: a transient evaluation failure is
			// not a flip.
			m.evalErrors.Add(1)
			m.log("query.eval_error", "sub", sub.id, "query", sub.c.Source(), "error", err)
			continue
		}
		m.mu.Lock()
		if sub.removed || sub.verdict == v.Holds {
			m.mu.Unlock()
			continue
		}
		prev := sub.verdict
		sub.verdict = v.Holds
		m.flips.Add(1)
		m.deliverLocked(sub, v, &prev, reason)
		m.mu.Unlock()
		m.log("query.flip", "sub", sub.id, "query", sub.c.Source(),
			"holds", v.Holds, "epoch", v.Epoch, "reason", reason)
	}
}

// deliverLocked enqueues one event, dropping (and counting) when the
// subscriber's bounded queue is full. Callers hold m.mu, which is what
// makes the send race-free against unsubscribe's close.
func (m *Manager) deliverLocked(sub *Subscription, v Verdict, prev *bool, reason string) {
	sub.seq++
	ev := Event{
		Sub:     sub.id,
		Seq:     sub.seq,
		Query:   sub.c.Source(),
		Holds:   v.Holds,
		Prev:    prev,
		Epoch:   v.Epoch,
		Now:     v.Now,
		Reason:  reason,
		Dropped: sub.dropped.Load(),
	}
	select {
	case sub.events <- ev:
		m.delivered.Add(1)
	default:
		sub.dropped.Add(1)
		m.drops.Add(1)
		m.log("query.drop", "sub", sub.id, "query", sub.c.Source(),
			"seq", sub.seq, "dropped", sub.dropped.Load())
	}
}

// SubscribeWebhook registers a standing query whose events are POSTed
// as JSON to url instead of read from a channel. Delivery is
// best-effort: failures count in WebhookErrors and the subscription
// stays live. The returned subscription's Close stops deliveries.
func (m *Manager) SubscribeWebhook(c *Compiled, url string, client *http.Client, queueLen int) (*Subscription, error) {
	sub, err := m.Subscribe(c, queueLen)
	if err != nil {
		return nil, err
	}
	if client == nil {
		client = http.DefaultClient
	}
	m.webhookWg.Add(1)
	go func() {
		defer m.webhookWg.Done()
		for ev := range sub.events {
			body, err := json.Marshal(ev)
			if err != nil {
				m.webhookErrs.Add(1)
				continue
			}
			req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				m.webhookErrs.Add(1)
				continue
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				m.webhookErrs.Add(1)
				m.log("query.webhook_error", "sub", sub.id, "url", url, "error", err)
				continue
			}
			resp.Body.Close()
			if resp.StatusCode >= 300 {
				m.webhookErrs.Add(1)
				m.log("query.webhook_error", "sub", sub.id, "url", url, "status", resp.StatusCode)
			}
		}
	}()
	return sub, nil
}
