package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/schedule"
)

// E9Config parameterizes the interacting-actors extension study.
type E9Config struct {
	Seed int64
	// FanOuts sweeps the number of mappers in the scatter-gather
	// workflows.
	FanOuts []int
	// Trials per fan-out.
	Trials int
}

// DefaultE9 returns the harness parameters.
func DefaultE9() E9Config {
	return E9Config{Seed: 131, FanOuts: []int{1, 2, 4, 8}, Trials: 60}
}

// E9Workflows evaluates the §VI extension (interacting actors as
// segmented workflows with wait edges) against the §IV approximation that
// treats the same actors as independent. For random scatter-gather
// workflows it measures how often the independent model over-promises —
// declares a deadline feasible that the waits make unachievable — and by
// how much it underestimates the finish time when both are feasible.
//
// Expected shape: the optimism gap grows with fan-out (the gather step
// serializes behind the slowest mapper), and a fixed slack that is
// generous for the flat model becomes insufficient once waits are
// modeled.
func E9Workflows(cfg E9Config) *metrics.Table {
	t := metrics.NewTable("E9: interacting actors (§VI) vs the independent approximation (§IV)",
		"fan-out", "trials", "both-feasible", "flat-overpromise", "both-infeasible", "mean-finish-gap")
	rng := rand.New(rand.NewSource(cfg.Seed))

	for _, fan := range cfg.FanOuts {
		bothFeasible, overPromise, bothInfeasible := 0, 0, 0
		var gaps []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			w, theta, err := randomScatterGather(rng, fan, trial)
			if err != nil {
				t.AddNote("fan %d trial %d: %v", fan, trial, err)
				continue
			}
			flat := compute.Workflow{
				Name: w.Name, Start: w.Start, Deadline: w.Deadline, Actors: w.Actors,
			}
			wfPlan, wfErr := schedule.FeasibleWorkflow(theta, w)
			flatPlan, flatErr := schedule.FeasibleWorkflow(theta, flat)
			switch {
			case wfErr == nil && flatErr == nil:
				bothFeasible++
				gaps = append(gaps, float64(wfPlan.Finish-flatPlan.Finish))
			case wfErr != nil && flatErr == nil:
				overPromise++
			case wfErr != nil && flatErr != nil:
				bothInfeasible++
			default:
				// Workflow feasible but flat not: cannot happen (waits only
				// constrain further); record loudly if it ever does.
				t.AddNote("fan %d trial %d: waits relaxed the problem (bug?)", fan, trial)
			}
		}
		t.AddRow(fan, cfg.Trials, bothFeasible, overPromise, bothInfeasible, metrics.Mean(gaps))
	}
	t.AddNote("flat-overpromise: deadlines the §IV model accepts that the waits make unachievable")
	t.AddNote("mean-finish-gap: extra ticks the true (wait-respecting) schedule needs when both are feasible")
	return t
}

// randomScatterGather builds a coordinator + fan mappers workflow with
// random work sizes, plus matching resources sized so feasibility is
// borderline (interesting both ways).
func randomScatterGather(rng *rand.Rand, fan, trial int) (compute.Workflow, resource.Set, error) {
	model := cost.Paper()
	coordLoc := resource.Location("coord")
	name := func(i int) compute.ActorName {
		return compute.ActorName(fmt.Sprintf("m%d.%d", trial, i))
	}

	var theta resource.Set
	horizon := interval.Time(40 + rng.Intn(30))
	theta.Add(resource.NewTerm(resource.FromUnits(2), resource.CPUAt(coordLoc), interval.New(0, horizon)))

	// Coordinator scatter segment: one send per mapper.
	var scatterActions []compute.Action
	for i := 0; i < fan; i++ {
		loc := resource.Location(fmt.Sprintf("w%d", i))
		theta.Add(resource.NewTerm(resource.FromUnits(int64(1+rng.Intn(3))), resource.CPUAt(loc), interval.New(0, horizon)))
		theta.Add(resource.NewTerm(resource.FromUnits(2), resource.Link(coordLoc, loc), interval.New(0, horizon)))
		theta.Add(resource.NewTerm(resource.FromUnits(2), resource.Link(loc, coordLoc), interval.New(0, horizon)))
		scatterActions = append(scatterActions, compute.Send("coord"+name(99), coordLoc, name(i), loc, 1))
	}
	coordName := "coord" + name(99)
	scatter, err := cost.Realize(model, coordName, scatterActions...)
	if err != nil {
		return compute.Workflow{}, resource.Set{}, err
	}
	reduce, err := cost.Realize(model, coordName, compute.Evaluate(coordName, coordLoc, int64(1+rng.Intn(3))))
	if err != nil {
		return compute.Workflow{}, resource.Set{}, err
	}

	actors := []compute.Segmented{{Actor: coordName, Segments: []compute.Computation{scatter, reduce}}}
	edges := []compute.WaitEdge{}
	coord0 := compute.SegmentRef{Actor: coordName, Segment: 0}
	coord1 := compute.SegmentRef{Actor: coordName, Segment: 1}
	for i := 0; i < fan; i++ {
		loc := resource.Location(fmt.Sprintf("w%d", i))
		mapper, err := cost.Realize(model, name(i),
			compute.Evaluate(name(i), loc, int64(1+rng.Intn(4))),
			compute.Send(name(i), loc, coordName, coordLoc, 1),
		)
		if err != nil {
			return compute.Workflow{}, resource.Set{}, err
		}
		actors = append(actors, compute.Segmented{Actor: name(i), Segments: []compute.Computation{mapper}})
		ref := compute.SegmentRef{Actor: name(i), Segment: 0}
		edges = append(edges,
			compute.WaitEdge{From: coord0, To: ref},
			compute.WaitEdge{From: ref, To: coord1},
		)
	}
	// Deadline: tight-ish relative to the flat critical path so the
	// serialized chain sometimes misses it.
	deadline := interval.Time(10 + rng.Intn(18))
	w, err := compute.NewWorkflow(fmt.Sprintf("sg%d.%d", trial, fan), 0, deadline, actors, edges)
	if err != nil {
		return compute.Workflow{}, resource.Set{}, err
	}
	return w, theta, nil
}
