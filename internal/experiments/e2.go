package experiments

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
)

// E2Semantics reproduces the paper's worked formal examples: the three
// §III resource-set calculations, the §IV-A Φ constants, and a
// satisfaction check of Figure 1's semantics on a concrete computation
// path (the Theorem 3/4 pipeline in miniature).
func E2Semantics() *metrics.Table {
	t := metrics.NewTable("E2 (paper §III/§IV/Fig.1): worked examples",
		"artifact", "expected", "got", "ok")
	u := resource.FromUnits
	cpu := resource.CPUAt("l1")
	net := resource.Link("l1", "l2")

	addCheck := func(name, expected, got string) {
		t.AddRow(name, expected, got, expected == got)
	}

	// §III example 1: union across distinct located types.
	ex1 := resource.NewSet(
		resource.NewTerm(u(5), cpu, interval.New(0, 3)),
		resource.NewTerm(u(5), net, interval.New(0, 5)),
	)
	addCheck("§III ex1 union (distinct types)",
		"{[5]⟨cpu,l1⟩(0,3), [5]⟨network,l1→l2⟩(0,5)}", ex1.String())

	// §III example 2: overlap simplification.
	ex2 := resource.NewSet(
		resource.NewTerm(u(5), cpu, interval.New(0, 3)),
		resource.NewTerm(u(5), cpu, interval.New(0, 5)),
	)
	addCheck("§III ex2 simplification",
		"{[10]⟨cpu,l1⟩(0,3), [5]⟨cpu,l1⟩(3,5)}", ex2.String())

	// §III example 3: relative complement.
	base := resource.NewSet(resource.NewTerm(u(5), cpu, interval.New(0, 3)))
	req := resource.NewSet(resource.NewTerm(u(3), cpu, interval.New(1, 2)))
	ex3, err := base.Subtract(req)
	got3 := "error: " + fmt.Sprint(err)
	if err == nil {
		got3 = ex3.String()
	}
	addCheck("§III ex3 relative complement",
		"{[5]⟨cpu,l1⟩(0,1), [2]⟨cpu,l1⟩(1,2), [5]⟨cpu,l1⟩(2,3)}", got3)

	// §IV-A Φ constants.
	model := cost.Paper()
	phi := func(a compute.Action) string {
		amounts, err := model.Amounts(a)
		if err != nil {
			return "error"
		}
		return amounts.String()
	}
	addCheck("Φ(a1, send(a2,m))", "{[4]⟨network,l1→l2⟩}",
		phi(compute.Send("a1", "l1", "a2", "l2", 1)))
	addCheck("Φ(a1, evaluate(e))", "{[8]⟨cpu,l1⟩}",
		phi(compute.Evaluate("a1", "l1", 1)))
	addCheck("Φ(a1, create(b))", "{[5]⟨cpu,l1⟩}",
		phi(compute.Create("a1", "l1", "b")))
	addCheck("Φ(a1, ready(b))", "{[1]⟨cpu,l1⟩}",
		phi(compute.Ready("a1", "l1")))
	addCheck("Φ(a1, migrate(l2))", "{[3]⟨cpu,l1⟩, [3]⟨cpu,l2⟩, [6]⟨network,l1→l2⟩}",
		phi(compute.Migrate("a1", "l1", "l2", 6)))

	// Figure 1 semantics on a concrete path: an idle system's expiring
	// resources satisfy exactly the requirements that fit in them.
	theta := resource.NewSet(resource.NewTerm(u(2), cpu, interval.New(0, 10)))
	state := core.NewState(theta, 0)
	res := core.Run(state, 10, 1)
	evalStr := func(f core.Formula, i int) string {
		ok, err := core.Eval(res.Path, i, f)
		if err != nil {
			return "error"
		}
		return fmt.Sprint(ok)
	}
	fits := core.SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(20, cpu)),
		Window:  interval.New(0, 10),
	}}
	addCheck("σ,0 ⊨ satisfy(ρ[20cpu](0,10))", "true", evalStr(fits, 0))
	addCheck("σ,1 ⊨ satisfy(ρ[20cpu](0,10))", "false", evalStr(fits, 1))
	addCheck("σ,0 ⊨ ◇¬satisfy(...)", "true", evalStr(core.Eventually{F: core.Not{F: fits}}, 0))
	small := core.SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(2, cpu)),
		Window:  interval.New(0, 10),
	}}
	addCheck("σ,0 ⊨ satisfy(ρ[2cpu](0,10))", "true", evalStr(small, 0))

	// Theorem 3 witness: cpu→net→cpu with exactly-ordered availability.
	comp, err := cost.Realize(cost.Paper(), "a1",
		compute.Evaluate("a1", "l1", 1),
		compute.Send("a1", "l1", "a2", "l2", 1),
		compute.Evaluate("a1", "l1", 1),
	)
	if err == nil {
		ordered := resource.NewSet(
			resource.NewTerm(u(4), cpu, interval.New(0, 2)),
			resource.NewTerm(u(2), net, interval.New(2, 4)),
			resource.NewTerm(u(4), cpu, interval.New(4, 6)),
		)
		plan, err := core.MeetDeadline(ordered, comp, 0, 6)
		got := "infeasible"
		if err == nil {
			got = fmt.Sprintf("breaks %v", plan.Breaks["a1"])
		}
		addCheck("Theorem 3 witness (ordered supply)", "breaks [2 4 6]", got)

		inverted := resource.NewSet(
			resource.NewTerm(u(2), net, interval.New(0, 2)),
			resource.NewTerm(u(4), cpu, interval.New(2, 6)),
		)
		_, err = core.MeetDeadline(inverted, comp, 0, 6)
		got = "infeasible"
		if err == nil {
			got = "feasible"
		}
		addCheck("Theorem 3 negative (inverted supply)", "infeasible", got)
	}
	return t
}
