package experiments

import (
	"repro/internal/admission"
	"repro/internal/churn"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E5Config parameterizes the open-system churn experiment.
type E5Config struct {
	Seed    int64
	Horizon int64
	// ChurnInterarrivals sweeps how often resources join (smaller = more
	// churn); every joining resource leaves again after its lease.
	ChurnInterarrivals []float64
	// RenegeProbs sweeps failure injection: the fraction of joins that
	// withdraw before their advertised departure.
	RenegeProbs []float64
	Locations   []resource.Location
}

// DefaultE5 returns the harness parameters.
func DefaultE5() E5Config {
	return E5Config{
		Seed:               31337,
		Horizon:            600,
		ChurnInterarrivals: []float64{2, 4, 8, 16},
		RenegeProbs:        []float64{0, 0.1, 0.3},
		Locations:          []resource.Location{"l1", "l2", "l3"},
	}
}

// E5Churn studies ROTA admission in a fully dynamic open system: all
// capacity arrives via churn (no static base), resources carry departure
// times per the acquisition rule, and an adjustable fraction renege.
//
// Expected shape: with honest churn (renege 0), rota still never misses a
// deadline — Theorem 4 reasons over exactly the advertised expiry
// structure; utilization falls as churn slows (fewer, larger grants are
// easier to use). Reneging introduces violations roughly proportional to
// the renege rate — quantifying how much the paper's join-with-departure
// assumption is doing.
func E5Churn(cfg E5Config) *metrics.Table {
	t := metrics.NewTable("E5: open-system churn and reneging",
		"join-gap", "renege-p", "joins", "offered", "admitted", "miss", "violations", "util", "miss+repair", "repaired")

	wcfg := workload.Config{
		Seed:             cfg.Seed,
		Locations:        cfg.Locations,
		NumJobs:          120,
		MeanInterarrival: float64(cfg.Horizon) / 120,
		ActorsMin:        1,
		ActorsMax:        2,
		StepsMin:         1,
		StepsMax:         3,
		SendProb:         0.15,
		MigrateProb:      0,
		EvalWeightMax:    2,
		SlackFactor:      3,
	}
	jobs, err := workload.Generate(wcfg)
	if err != nil {
		t.AddNote("workload error: %v", err)
		return t
	}

	for _, gap := range cfg.ChurnInterarrivals {
		for _, rp := range cfg.RenegeProbs {
			ccfg := churn.Config{
				Seed:             cfg.Seed + int64(gap*100) + int64(rp*1000),
				Locations:        cfg.Locations,
				Horizon:          interval.Time(cfg.Horizon),
				MeanInterarrival: gap,
				LeaseMin:         8,
				LeaseMax:         64,
				RateMin:          1,
				RateMax:          4,
				LinkProb:         0.35,
				RenegeProb:       rp,
			}
			trace, err := churn.Generate(ccfg)
			if err != nil {
				t.AddNote("churn error: %v", err)
				continue
			}
			res, err := sim.Run(sim.Config{Policy: &admission.Rota{}, Executor: sim.Planned}, jobs, trace)
			if err != nil {
				t.AddNote("sim error: %v", err)
				continue
			}
			withRepair, err := sim.Run(sim.Config{Policy: &admission.Rota{}, Executor: sim.Planned, Repair: true}, jobs, trace)
			if err != nil {
				t.AddNote("repair sim error: %v", err)
				continue
			}
			t.AddRow(gap, rp, len(trace.Joins), res.Offered, res.Admitted,
				res.Missed, res.Violations, res.Utilization(),
				withRepair.Missed, withRepair.Repaired)
		}
	}
	t.AddNote("renege-p=0 rows must show 0 miss / 0 violations (honest churn keeps the assurance)")
	t.AddNote("miss+repair / repaired: the same run with plan revision after damage (Φ footnote)")
	return t
}
