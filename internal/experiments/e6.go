package experiments

import (
	"math/rand"
	"time"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
)

// E6Config parameterizes the reasoning-cost scalability study.
type E6Config struct {
	Seed int64
	// TermCounts sweeps the number of resource terms in Θ.
	TermCounts []int
	// ActorCounts sweeps the number of actors in the candidate
	// computation.
	ActorCounts []int
	// Horizon is the availability horizon in ticks.
	Horizon interval.Time
	// Reps is how many decisions are timed per point.
	Reps int
}

// DefaultE6 returns the harness parameters.
func DefaultE6() E6Config {
	return E6Config{
		Seed:        77,
		TermCounts:  []int{8, 32, 128, 512},
		ActorCounts: []int{1, 2, 4, 8},
		Horizon:     512,
		Reps:        20,
	}
}

// E6Scalability measures the cost of the Theorem-4 decision procedure as
// the resource state fragments and the candidate computation grows — the
// paper concedes "algorithmic complexity of the reasoning enabled by ROTA
// is obviously high", and this experiment characterizes it: decision
// latency grows with both the number of availability segments and the
// number of actors to schedule.
func E6Scalability(cfg E6Config) *metrics.Table {
	t := metrics.NewTable("E6: reasoning cost vs state size",
		"terms", "actors", "decisions", "mean-us", "p95-us", "admit-rate")
	rng := rand.New(rand.NewSource(cfg.Seed))

	for _, terms := range cfg.TermCounts {
		theta := fragmentedTheta(rng, terms, cfg.Horizon)
		for _, actors := range cfg.ActorCounts {
			var lat []float64
			admitted := 0
			for rep := 0; rep < cfg.Reps; rep++ {
				job, err := uniformJob(rng, rep, actors, cfg.Horizon)
				if err != nil {
					continue
				}
				state := core.NewState(theta, 0)
				start := time.Now()
				_, err = core.AccommodateAdditional(state, job)
				lat = append(lat, float64(time.Since(start).Microseconds()))
				if err == nil {
					admitted++
				}
			}
			t.AddRow(terms, actors, len(lat),
				metrics.Mean(lat), metrics.Percentile(lat, 95),
				float64(admitted)/float64(max(1, len(lat))))
		}
	}
	t.AddNote("theta fragments into ~terms availability segments; jobs are identical across term counts")
	return t
}

// fragmentedTheta builds availability split into approximately n
// segments: alternating rates over consecutive spans at a single
// location, plus a network link.
func fragmentedTheta(rng *rand.Rand, n int, horizon interval.Time) resource.Set {
	var theta resource.Set
	segLen := horizon / interval.Time(max(1, n/2))
	if segLen < 1 {
		segLen = 1
	}
	var t interval.Time
	for i := 0; t < horizon && i < n; i++ {
		end := t + segLen
		if end > horizon {
			end = horizon
		}
		theta.Add(resource.NewTerm(
			resource.FromUnits(int64(2+rng.Intn(4))),
			resource.CPUAt("l1"),
			interval.New(t, end)))
		t = end
	}
	theta.Add(resource.NewTerm(resource.FromUnits(2), resource.Link("l1", "l2"), interval.New(0, horizon)))
	return theta
}

// uniformJob builds an actors-wide computation of fixed per-actor shape.
func uniformJob(rng *rand.Rand, rep, actors int, horizon interval.Time) (compute.Distributed, error) {
	var comps []compute.Computation
	for ai := 0; ai < actors; ai++ {
		name := compute.ActorName(randName(rep, ai, actors))
		comp, err := cost.Realize(cost.Paper(), name,
			compute.Evaluate(name, "l1", 1),
			compute.Send(name, "l1", "peer", "l2", 1),
			compute.Evaluate(name, "l1", 1),
		)
		if err != nil {
			return compute.Distributed{}, err
		}
		comps = append(comps, comp)
	}
	deadline := horizon/2 + interval.Time(rng.Intn(int(horizon/4)))
	return compute.NewDistributed(randName(rep, 98, actors), 0, deadline, comps...)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
