package experiments

import (
	"repro/internal/admission"
	"repro/internal/churn"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E4Config parameterizes the admission-quality sweep.
type E4Config struct {
	Seed    int64
	Horizon int64
	// BaseRate is the static per-location CPU capacity in units/tick.
	BaseRate int64
	// Loads are the offered-load factors swept (offered work / capacity).
	Loads []float64
	// Locations in the system.
	Locations []resource.Location
}

// DefaultE4 returns the harness parameters.
func DefaultE4() E4Config {
	return E4Config{
		Seed:      2027,
		Horizon:   600,
		BaseRate:  3,
		Loads:     []float64{0.2, 0.5, 0.8, 1.1, 1.5, 2.0},
		Locations: []resource.Location{"l1", "l2", "l3"},
	}
}

// E4AdmissionSweep compares admission policies across offered load. For
// every load factor it runs four policies on the identical workload and
// capacity:
//
//   - rota (planned execution): Theorem-4 admission with witness plans —
//     the paper's proposal. Expected: zero deadline misses at any load,
//     admission rate tracking true capacity.
//   - naive-total (EDF execution): aggregate-quantity reasoning — the
//     strawman §III warns about. Expected: over-admission of
//     order-sensitive jobs ⇒ misses even below saturation.
//   - edf-feasible (EDF execution): classical forward-simulation test.
//   - always-admit (EDF execution): the floor. Expected: misses grow
//     sharply past load 1.
func E4AdmissionSweep(cfg E4Config) *metrics.Table {
	t := metrics.NewTable("E4: admission quality vs offered load",
		"load", "policy", "offered", "admitted", "miss", "miss-rate", "goodput", "util")

	wbase := workload.Config{
		Seed:          cfg.Seed,
		Locations:     cfg.Locations,
		ActorsMin:     1,
		ActorsMax:     2,
		StepsMin:      1,
		StepsMax:      4,
		SendProb:      0.25,
		MigrateProb:   0.05,
		EvalWeightMax: 3,
		SlackFactor:   2.5,
	}
	// Static capacity: BaseRate cpu at every location for the horizon,
	// plus a modest static network mesh so send/migrate steps are
	// schedulable.
	var base resource.Set
	capacity := resource.Quantity(0)
	for _, loc := range cfg.Locations {
		term := resource.NewTerm(resource.FromUnits(cfg.BaseRate), resource.CPUAt(loc), interval.New(0, interval.Time(cfg.Horizon)))
		base.Add(term)
		capacity += term.Quantity()
		for _, dst := range cfg.Locations {
			if dst != loc {
				base.Add(resource.NewTerm(resource.FromUnits(1), resource.Link(loc, dst), interval.New(0, interval.Time(cfg.Horizon))))
			}
		}
	}
	trace := churn.Trace{Base: base}

	type policyRun struct {
		policy   admission.Policy
		executor sim.Executor
	}
	for _, load := range cfg.Loads {
		jobs, err := calibrateWorkload(wbase, load, capacity, cfg.Horizon)
		if err != nil {
			t.AddNote("load %.1f: workload error: %v", load, err)
			continue
		}
		runs := []policyRun{
			{&admission.Rota{}, sim.Planned},
			{admission.NewNaiveTotal(), sim.GreedyEDF},
			{admission.NewEDFFeasible(), sim.GreedyEDF},
			{admission.AlwaysAdmit{}, sim.GreedyEDF},
		}
		for _, pr := range runs {
			res, err := sim.Run(sim.Config{Policy: pr.policy, Executor: pr.executor}, jobs, trace)
			if err != nil {
				t.AddNote("load %.1f %s: %v", load, pr.policy.Name(), err)
				continue
			}
			t.AddRow(load, res.Policy, res.Offered, res.Admitted,
				res.Missed, res.MissRate(), res.GoodputRatio(), res.Utilization())
		}
	}
	t.AddNote("rota executes admission plans; baselines execute EDF work-conserving (their only execution model)")
	return t
}
