package experiments

import (
	"math/rand"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/schedule"
)

// E10Config parameterizes the Φ-estimation-error study.
type E10Config struct {
	Seed int64
	// RelErrs sweeps the relative estimation error (±fraction).
	RelErrs []float64
	// Trials per (error, bias) cell.
	Trials int
}

// DefaultE10 returns the harness parameters.
func DefaultE10() E10Config {
	return E10Config{Seed: 173, RelErrs: []float64{0, 0.1, 0.25, 0.5}, Trials: 150}
}

// E10Estimation quantifies the paper's footnote that Φ need not be exact:
// "at the cost of some inefficiency, estimates could be used and revised
// as necessary." Admission decides using a *noisy estimate* of each
// job's requirements; the reservation (the witness plan's demand) is then
// checked against the job's *actual* requirements.
//
//   - Unbiased noise: underestimates slip through admission but the
//     reservation cannot feed the real work — broken assurances grow
//     with the error.
//   - Pessimistic (over-estimating) noise: assurance is preserved by
//     construction; the cost is the inefficiency the footnote predicts —
//     lower admission and over-reservation that grow with the error.
func E10Estimation(cfg E10Config) *metrics.Table {
	t := metrics.NewTable("E10: Φ estimation error vs assurance",
		"rel-err", "bias", "attempted", "admitted", "broken-assurance", "revision-saves", "over-reserve")

	for _, relErr := range cfg.RelErrs {
		for _, pessimistic := range []bool{false, true} {
			bias := "unbiased"
			if pessimistic {
				bias = "pessimistic"
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			exact := cost.Paper()
			noisy := cost.NewNoisy(exact, relErr, cfg.Seed+int64(relErr*1000), pessimistic)

			attempted, admitted, broken, saved := 0, 0, 0, 0
			var reserveRatios []float64
			for trial := 0; trial < cfg.Trials; trial++ {
				theta := randSupplyE10(rng)
				actions := randActionsE10(rng, trial)
				estComp, err := cost.Realize(noisy, actions[0].Actor, actions...)
				if err != nil {
					continue
				}
				actComp, err := cost.Realize(exact, actions[0].Actor, actions...)
				if err != nil {
					continue
				}
				attempted++
				deadline := interval.Time(8 + rng.Intn(16))
				estReq := compute.ComplexOf(estComp, interval.New(0, deadline))
				plan, err := schedule.Single(theta, estReq)
				if err != nil {
					continue // refused on the estimate
				}
				admitted++
				// Ground truth: can the actual requirements be met from
				// exactly what was reserved?
				reserved := plan.Demand()
				actReq := compute.ComplexOf(actComp, interval.New(0, deadline))
				if _, err := schedule.Single(reserved, actReq); err != nil {
					broken++
					// The footnote's remedy: revise the estimate against
					// the full supply. (In a loaded system only the free
					// portion would be available; this bounds the best
					// case.)
					if _, err := schedule.Single(theta, actReq); err == nil {
						saved++
					}
				}
				estTotal := estComp.TotalAmounts().Total()
				actTotal := actComp.TotalAmounts().Total()
				if actTotal > 0 {
					reserveRatios = append(reserveRatios, float64(estTotal)/float64(actTotal))
				}
			}
			t.AddRow(relErr, bias, attempted, admitted, broken, saved, metrics.Mean(reserveRatios))
		}
	}
	t.AddNote("broken-assurance: admitted on the estimate, but the reservation cannot feed the actual work")
	t.AddNote("over-reserve: mean estimated/actual total quantity among admitted jobs")
	t.AddNote("pessimistic rows must show 0 broken assurances at any error level")
	return t
}

func randSupplyE10(rng *rand.Rand) resource.Set {
	var theta resource.Set
	theta.Add(resource.NewTerm(
		resource.FromUnits(int64(2+rng.Intn(3))),
		resource.CPUAt("l1"),
		interval.New(0, interval.Time(16+rng.Intn(16)))))
	theta.Add(resource.NewTerm(
		resource.FromUnits(int64(1+rng.Intn(2))),
		resource.Link("l1", "l2"),
		interval.New(0, interval.Time(16+rng.Intn(16)))))
	return theta
}

func randActionsE10(rng *rand.Rand, trial int) []compute.Action {
	name := compute.ActorName(randName(trial, 0, 0))
	n := 1 + rng.Intn(3)
	actions := make([]compute.Action, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			actions = append(actions, compute.Send(name, "l1", "peer", "l2", 1+rng.Int63n(3)))
		} else {
			actions = append(actions, compute.Evaluate(name, "l1", 1+rng.Int63n(3)))
		}
	}
	return actions
}
