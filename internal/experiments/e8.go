package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/workload"
)

// E8Config parameterizes the encapsulation ablation.
type E8Config struct {
	Seed int64
	// TotalLocations is the number of nodes in the system.
	TotalLocations int
	// Encapsulations sweeps how many CyberOrgs-style encapsulations the
	// system is partitioned into (must divide TotalLocations).
	Encapsulations []int
	// Horizon in ticks.
	Horizon int64
	// JobsPerLocation controls total offered work.
	JobsPerLocation int
}

// DefaultE8 returns the harness parameters.
func DefaultE8() E8Config {
	return E8Config{
		Seed:            97,
		TotalLocations:  8,
		Encapsulations:  []int{1, 2, 4, 8},
		Horizon:         300,
		JobsPerLocation: 12,
	}
}

// E8Encapsulation explores the paper's closing direction: "the context in
// which we hope to use ROTA is that of resource encapsulations of the
// type defined by the CyberOrgs model, where the reasoning only needs to
// concern itself with resources available inside the encapsulation."
//
// The same system — locations, capacity, jobs pinned to their home
// location groups — is partitioned into 1, 2, 4, … encapsulations, each
// with its own ROTA state over only its own resources. Total reasoning
// cost should fall sharply with encapsulation count (each decision scans
// a fraction of the terms) while admission quality is unchanged for
// location-local workloads.
func E8Encapsulation(cfg E8Config) *metrics.Table {
	t := metrics.NewTable("E8: CyberOrgs-style encapsulation ablation",
		"encaps", "locs/encap", "offered", "admitted", "total-decision-ms", "mean-decision-us")

	locs := make([]resource.Location, cfg.TotalLocations)
	for i := range locs {
		locs[i] = resource.Location(fmt.Sprintf("n%d", i))
	}

	// One location-local workload per node, fixed across partitionings.
	jobsByLoc := make([][]workload.Job, cfg.TotalLocations)
	for i, loc := range locs {
		wcfg := workload.Config{
			Seed:             cfg.Seed + int64(i),
			Locations:        []resource.Location{loc},
			NumJobs:          cfg.JobsPerLocation,
			MeanInterarrival: float64(cfg.Horizon) / float64(cfg.JobsPerLocation),
			ActorsMin:        1,
			ActorsMax:        2,
			StepsMin:         1,
			StepsMax:         3,
			SendProb:         0, // single-location jobs: encapsulation-local
			MigrateProb:      0,
			EvalWeightMax:    2,
			SlackFactor:      2.5,
		}
		jobs, err := workload.Generate(wcfg)
		if err != nil {
			t.AddNote("workload error at %s: %v", loc, err)
			return t
		}
		// Per-location generators reuse job names; disambiguate so a
		// shared state does not reject later locations as duplicates.
		for j := range jobs {
			jobs[j].Dist.Name = fmt.Sprintf("%s-%s", loc, jobs[j].Dist.Name)
		}
		jobsByLoc[i] = jobs
	}

	for _, encaps := range cfg.Encapsulations {
		if cfg.TotalLocations%encaps != 0 {
			t.AddNote("skipping %d encapsulations (does not divide %d)", encaps, cfg.TotalLocations)
			continue
		}
		perEncap := cfg.TotalLocations / encaps
		states := make([]core.State, encaps)
		for e := 0; e < encaps; e++ {
			var theta resource.Set
			for j := 0; j < perEncap; j++ {
				theta.Add(resource.NewTerm(
					resource.FromUnits(2),
					resource.CPUAt(locs[e*perEncap+j]),
					interval.New(0, interval.Time(cfg.Horizon))))
			}
			states[e] = core.NewState(theta, 0)
		}
		offered, admitted := 0, 0
		var total time.Duration
		var lat []float64
		for li := 0; li < cfg.TotalLocations; li++ {
			e := li / perEncap
			for _, job := range jobsByLoc[li] {
				offered++
				start := time.Now()
				next, _, err := core.Admit(states[e], job.Dist)
				d := time.Since(start)
				total += d
				lat = append(lat, float64(d.Microseconds()))
				if err != nil {
					continue
				}
				states[e] = next
				admitted++
			}
		}
		t.AddRow(encaps, perEncap, offered, admitted,
			float64(total.Milliseconds()), metrics.Mean(lat))
	}
	t.AddNote("same capacity and jobs at every row; only the reasoning scope changes")
	return t
}
