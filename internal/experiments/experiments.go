// Package experiments implements the evaluation suite E1–E8 described in
// DESIGN.md. The ROTA paper is a formal-logic paper with no empirical
// evaluation; E1 and E2 reproduce its two formal artifacts (Table I and
// the §III/§V worked examples and semantics), while E3–E8 are the
// constructed evaluation validating the logic end-to-end and
// characterizing its cost. Every experiment returns a metrics.Table so
// the same code serves the CLI harness and the benchmark suite.
package experiments

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/metrics"
)

// ByID runs the experiment with the given id ("e1" … "e10") using default
// parameters.
func ByID(id string) (*metrics.Table, error) {
	switch id {
	case "e1":
		return E1AllenRelations(), nil
	case "e2":
		return E2Semantics(), nil
	case "e3":
		return E3CheckerSoundness(DefaultE3()), nil
	case "e4":
		return E4AdmissionSweep(DefaultE4()), nil
	case "e5":
		return E5Churn(DefaultE5()), nil
	case "e6":
		return E6Scalability(DefaultE6()), nil
	case "e7":
		return E7DeltaT(DefaultE7()), nil
	case "e8":
		return E8Encapsulation(DefaultE8()), nil
	case "e9":
		return E9Workflows(DefaultE9()), nil
	case "e10":
		return E10Estimation(DefaultE10()), nil
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (want e1..e10)", id)
	}
}

// IDs lists the experiment identifiers in order.
func IDs() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"}
}

// E1AllenRelations regenerates the paper's Table I: the thirteen
// qualitative relations between time intervals, each with a concrete
// witness pair, plus machine-checked algebra properties (converse
// involution, JEPD on a sample grid, composition-table soundness).
func E1AllenRelations() *metrics.Table {
	t := metrics.NewTable("E1 (paper Table I): Allen interval relations",
		"relation", "symbol", "witness A", "witness B", "converse")
	witnesses := map[interval.Relation][2]interval.Interval{
		interval.Before:       {interval.New(0, 2), interval.New(4, 6)},
		interval.After:        {interval.New(4, 6), interval.New(0, 2)},
		interval.Meets:        {interval.New(0, 3), interval.New(3, 6)},
		interval.MetBy:        {interval.New(3, 6), interval.New(0, 3)},
		interval.OverlapsWith: {interval.New(0, 4), interval.New(2, 6)},
		interval.OverlappedBy: {interval.New(2, 6), interval.New(0, 4)},
		interval.Starts:       {interval.New(0, 3), interval.New(0, 6)},
		interval.StartedBy:    {interval.New(0, 6), interval.New(0, 3)},
		interval.During:       {interval.New(2, 4), interval.New(0, 6)},
		interval.Contains:     {interval.New(0, 6), interval.New(2, 4)},
		interval.Finishes:     {interval.New(3, 6), interval.New(0, 6)},
		interval.FinishedBy:   {interval.New(0, 6), interval.New(3, 6)},
		interval.Equal:        {interval.New(1, 5), interval.New(1, 5)},
	}
	for _, r := range interval.AllRelations {
		w := witnesses[r]
		got := interval.RelationBetween(w[0], w[1])
		status := r.String()
		if got != r {
			status = fmt.Sprintf("MISMATCH(%v)", got)
		}
		t.AddRow(status, r.Symbol(), w[0].String(), w[1].String(), r.Converse().String())
	}

	// Algebra checks over an exhaustive small grid.
	jepd, conv, comp := 0, 0, 0
	total := 0
	for as := interval.Time(0); as < 5; as++ {
		for ae := as + 1; ae <= 5; ae++ {
			for bs := interval.Time(0); bs < 5; bs++ {
				for be := bs + 1; be <= 5; be++ {
					a, b := interval.New(as, ae), interval.New(bs, be)
					total++
					r := interval.RelationBetween(a, b)
					if r.Valid() {
						jepd++
					}
					if interval.RelationBetween(b, a) == r.Converse() {
						conv++
					}
					for cs := interval.Time(0); cs < 5; cs++ {
						c := interval.New(cs, cs+2)
						if interval.Compose(r, interval.RelationBetween(b, c)).Has(interval.RelationBetween(a, c)) {
							comp++
						}
					}
				}
			}
		}
	}
	t.AddNote("grid checks: JEPD %d/%d, converse %d/%d, composition soundness %d/%d",
		jepd, total, conv, total, comp, total*5)
	return t
}
