package experiments

import (
	"repro/internal/compute"
	"repro/internal/resource"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// scheduleExhaustive runs the witness search with actor-permutation
// backtracking enabled.
func scheduleExhaustive(theta resource.Set, req compute.Concurrent) (schedule.Plan, error) {
	return schedule.Concurrent(theta, req, schedule.WithExhaustive())
}

// calibrateWorkload generates a job sequence whose total offered work is
// approximately load × capacity, spread over the horizon. It probes the
// generator once to estimate mean job work, then sizes the job count and
// interarrival accordingly — keeping workload shape constant while the
// offered load varies.
func calibrateWorkload(base workload.Config, load float64, capacity resource.Quantity, horizon int64) ([]workload.Job, error) {
	probe := base
	probe.NumJobs = 40
	probe.MeanInterarrival = 1
	probeJobs, err := workload.Generate(probe)
	if err != nil {
		return nil, err
	}
	meanWork := float64(workload.TotalWork(probeJobs)) / float64(len(probeJobs))
	if meanWork <= 0 {
		meanWork = 1
	}
	target := load * float64(capacity)
	numJobs := int(target/meanWork + 0.5)
	if numJobs < 1 {
		numJobs = 1
	}
	cfg := base
	cfg.NumJobs = numJobs
	cfg.MeanInterarrival = float64(horizon) / float64(numJobs+1)
	return workload.Generate(cfg)
}
