package experiments

import (
	"math/rand"

	"repro/internal/admission"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
)

// E3Config parameterizes the checker-soundness experiment.
type E3Config struct {
	Seed   int64
	Trials int
	// JobsPerTrial is how many admissions are attempted per random
	// scenario.
	JobsPerTrial int
}

// DefaultE3 returns the parameters used by the harness.
func DefaultE3() E3Config {
	return E3Config{Seed: 1009, Trials: 300, JobsPerTrial: 5}
}

// E3CheckerSoundness validates the paper's central claim end-to-end:
// every computation the Theorem-4 checker admits completes by its
// deadline when the committed path is executed (soundness must be exact —
// zero violations, zero late completions). It also estimates the greedy
// checker's conservatism: how many of its rejections a slower exhaustive
// search or the EDF trial would have accepted.
func E3CheckerSoundness(cfg E3Config) *metrics.Table {
	rng := rand.New(rand.NewSource(cfg.Seed))
	locs := []resource.Location{"l1", "l2", "l3"}

	var (
		attempted, admitted, rejected         int
		violations, late, completions         int
		rejectedButExhaustive, rejectedButEDF int
	)

	for trial := 0; trial < cfg.Trials; trial++ {
		var theta resource.Set
		for i := 0; i < 2+rng.Intn(5); i++ {
			loc := locs[rng.Intn(len(locs))]
			start := interval.Time(rng.Intn(12))
			theta.Add(resource.NewTerm(
				resource.FromUnits(int64(1+rng.Intn(5))),
				resource.CPUAt(loc),
				interval.New(start, start+2+interval.Time(rng.Intn(14)))))
			if rng.Intn(2) == 0 {
				theta.Add(resource.NewTerm(
					resource.FromUnits(int64(1+rng.Intn(3))),
					resource.Link(locs[rng.Intn(len(locs))], locs[rng.Intn(len(locs))]),
					interval.New(start, start+2+interval.Time(rng.Intn(14)))))
			}
		}
		state := core.NewState(theta, 0)
		var thisAdmitted []string
		deadlines := make(map[string]interval.Time)

		for j := 0; j < cfg.JobsPerTrial; j++ {
			job, err := randomJob(rng, trial, j, locs)
			if err != nil {
				continue
			}
			attempted++
			next, _, err := core.Admit(state, job)
			if err != nil {
				rejected++
				// Conservatism probes.
				free, ferr := state.FreeResources()
				if ferr == nil {
					req := core.ConcurrentAt(job, state.Now)
					if _, xerr := scheduleExhaustive(free, req); xerr == nil {
						rejectedButExhaustive++
					}
					edf := admission.NewEDFFeasible()
					if dec := edf.Decide(admission.View{Now: state.Now, Theta: free}, job); dec.Admit {
						rejectedButEDF++
					}
				}
				continue
			}
			state = next
			admitted++
			thisAdmitted = append(thisAdmitted, job.Name)
			deadlines[job.Name] = job.Deadline
		}
		res := core.Run(state, 0, 1)
		violations += len(res.Violations)
		for _, name := range thisAdmitted {
			doneAt, done := res.Completed[name]
			switch {
			case !done:
				late++
			case doneAt > deadlines[name]:
				late++
			default:
				completions++
			}
		}
	}

	t := metrics.NewTable("E3: checker soundness vs executed ground truth",
		"metric", "value")
	t.AddRow("scenarios", cfg.Trials)
	t.AddRow("admission attempts", attempted)
	t.AddRow("admitted", admitted)
	t.AddRow("rejected", rejected)
	t.AddRow("admitted & completed on time", completions)
	t.AddRow("admitted but late/incomplete (MUST be 0)", late)
	t.AddRow("plan violations (MUST be 0)", violations)
	t.AddRow("rejections overturned by exhaustive search", rejectedButExhaustive)
	t.AddRow("rejections overturned by EDF trial", rejectedButEDF)
	t.AddNote("soundness holds iff rows marked MUST are zero; overturned rejections measure greedy conservatism")
	return t
}

// randomJob builds a random 1–3 actor computation with a feasible-looking
// deadline.
func randomJob(rng *rand.Rand, trial, idx int, locs []resource.Location) (compute.Distributed, error) {
	nActors := 1 + rng.Intn(3)
	var comps []compute.Computation
	var critical resource.Quantity
	for ai := 0; ai < nActors; ai++ {
		name := compute.ActorName(randName(trial, idx, ai))
		loc := locs[rng.Intn(len(locs))]
		var actions []compute.Action
		for k := 0; k < 1+rng.Intn(3); k++ {
			switch rng.Intn(4) {
			case 0:
				actions = append(actions, compute.Send(name, "l1", "peer", "l2", 1))
			case 1:
				actions = append(actions, compute.Create(name, loc, compute.ActorName(randName(trial, idx, ai)+"c")))
			default:
				actions = append(actions, compute.Evaluate(name, loc, int64(1+rng.Intn(2))))
			}
		}
		comp, err := cost.Realize(cost.Paper(), name, actions...)
		if err != nil {
			return compute.Distributed{}, err
		}
		if w := comp.TotalAmounts().Total(); w > critical {
			critical = w
		}
		comps = append(comps, comp)
	}
	deadline := interval.Time(6 + rng.Intn(20))
	return compute.NewDistributed(randName(trial, idx, 99), 0, deadline, comps...)
}

func randName(trial, idx, ai int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return string(letters[trial%26]) + string(letters[idx%26]) + string(letters[ai%26]) +
		string(rune('0'+trial/26%10)) + string(rune('0'+ai/26%10))
}
