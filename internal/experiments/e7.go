package experiments

import (
	"time"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/workload"
)

// E7Config parameterizes the Δt granularity ablation.
type E7Config struct {
	Seed int64
	// Scales are the time-refinement factors: a scale k stretches every
	// interval by k and divides every rate by k, so the continuous-time
	// scenario is identical but the tick is k× finer.
	Scales []int64
	// NumJobs per scenario.
	NumJobs int
	// BaseHorizon is the horizon at scale 1.
	BaseHorizon int64
}

// DefaultE7 returns the harness parameters.
func DefaultE7() E7Config {
	return E7Config{Seed: 5150, Scales: []int64{1, 2, 4, 8}, NumJobs: 60, BaseHorizon: 400}
}

// E7DeltaT studies the paper's footnote that "Δt can be defined according
// to the desired control granularity": the same continuous scenario is
// expressed at finer and finer ticks (scale k multiplies intervals by k
// and divides rates by k). Finer granularity can only help admission —
// quantization loss shrinks — at the price of more availability segments
// and slower decisions.
func E7DeltaT(cfg E7Config) *metrics.Table {
	t := metrics.NewTable("E7: Δt granularity ablation",
		"scale", "offered", "admitted", "admit-rate", "mean-decision-us")

	wcfg := workload.Config{
		Seed:             cfg.Seed,
		Locations:        []resource.Location{"l1", "l2"},
		NumJobs:          cfg.NumJobs,
		MeanInterarrival: float64(cfg.BaseHorizon) / float64(cfg.NumJobs),
		ActorsMin:        1,
		ActorsMax:        2,
		StepsMin:         1,
		StepsMax:         3,
		SendProb:         0.2,
		MigrateProb:      0,
		EvalWeightMax:    2,
		SlackFactor:      1.4, // tight deadlines so quantization matters
	}
	jobs, err := workload.Generate(wcfg)
	if err != nil {
		t.AddNote("workload error: %v", err)
		return t
	}

	base := resource.NewSet(
		resource.NewTerm(resource.FromUnits(2), resource.CPUAt("l1"), interval.New(0, interval.Time(cfg.BaseHorizon))),
		resource.NewTerm(resource.FromUnits(2), resource.CPUAt("l2"), interval.New(0, interval.Time(cfg.BaseHorizon))),
		resource.NewTerm(resource.FromUnits(1), resource.Link("l1", "l2"), interval.New(0, interval.Time(cfg.BaseHorizon))),
		resource.NewTerm(resource.FromUnits(1), resource.Link("l2", "l1"), interval.New(0, interval.Time(cfg.BaseHorizon))),
	)

	for _, scale := range cfg.Scales {
		theta := scaleSet(base, scale)
		state := core.NewState(theta, 0)
		admitted := 0
		var lat []float64
		for _, job := range jobs {
			scaled := scaleJob(job.Dist, scale)
			start := time.Now()
			next, _, err := core.Admit(state, scaled)
			lat = append(lat, float64(time.Since(start).Microseconds()))
			if err != nil {
				continue
			}
			state = next
			admitted++
		}
		t.AddRow(scale, len(jobs), admitted,
			float64(admitted)/float64(len(jobs)), metrics.Mean(lat))
	}
	t.AddNote("scale k: intervals ×k, rates ÷k — same continuous scenario, finer control granularity")
	return t
}

// scaleSet stretches intervals by k and divides rates by k.
func scaleSet(s resource.Set, k int64) resource.Set {
	var out resource.Set
	for _, term := range s.Terms() {
		rate := term.Rate / resource.Rate(k)
		if rate < 1 {
			rate = 1
		}
		out.Add(resource.NewTerm(rate, term.Type,
			interval.New(term.Span.Start*interval.Time(k), term.Span.End*interval.Time(k))))
	}
	return out
}

// scaleJob stretches a job's window by k (amounts are unchanged: the same
// work fits into the same continuous time).
func scaleJob(d compute.Distributed, k int64) compute.Distributed {
	out := d
	out.Start = d.Start * interval.Time(k)
	out.Deadline = d.Deadline * interval.Time(k)
	return out
}
