package experiments

import (
	"strings"
	"testing"
)

func TestByIDKnownAndUnknown(t *testing.T) {
	for _, id := range []string{"e1", "e2"} {
		tb, err := ByID(id)
		if err != nil {
			t.Fatalf("ByID(%s): %v", id, err)
		}
		if tb.NumRows() == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
	if _, err := ByID("e99"); err == nil {
		t.Error("unknown id accepted")
	}
	if len(IDs()) != 10 {
		t.Errorf("IDs = %v", IDs())
	}
}

func TestE1AllWitnessesMatch(t *testing.T) {
	tb := E1AllenRelations()
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("E1 has mismatching witnesses:\n%s", out)
	}
	if tb.NumRows() != 13 {
		t.Errorf("E1 rows = %d, want 13", tb.NumRows())
	}
	// The grid notes must report full success: "x/x" everywhere.
	if !strings.Contains(out, "JEPD 225/225") {
		t.Errorf("JEPD note unexpected:\n%s", out)
	}
}

func TestE2AllChecksPass(t *testing.T) {
	tb := E2Semantics()
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if strings.Contains(out, "false\n") || strings.Contains(out, "| false") {
		// the "ok" column renders true/false; any false is a failure,
		// except rows whose *expected value* is the string "false".
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && strings.HasSuffix(strings.TrimSpace(line), "| false") {
			t.Errorf("E2 check failed: %s", line)
		}
	}
	if tb.NumRows() < 12 {
		t.Errorf("E2 rows = %d", tb.NumRows())
	}
}

func TestE3SoundnessHolds(t *testing.T) {
	cfg := DefaultE3()
	cfg.Trials = 60 // keep the test fast; the harness runs the full size
	tb := E3CheckerSoundness(cfg)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "MUST be 0") {
			fields := strings.Split(line, "|")
			val := strings.TrimSpace(fields[len(fields)-1])
			if val != "0" {
				t.Errorf("soundness violated: %s", line)
			}
		}
	}
	if !strings.Contains(out, "admitted") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestE4SmallSweepShapes(t *testing.T) {
	cfg := DefaultE4()
	cfg.Horizon = 150
	cfg.Loads = []float64{0.4, 1.6}
	tb := E4AdmissionSweep(cfg)
	if tb.NumRows() != 8 { // 2 loads × 4 policies
		var sb strings.Builder
		tb.Render(&sb)
		t.Fatalf("rows = %d:\n%s", tb.NumRows(), sb.String())
	}
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	// rota rows must show 0 misses.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "| rota ") {
			cols := strings.Split(line, "|")
			miss := strings.TrimSpace(cols[4])
			if miss != "0" {
				t.Errorf("rota missed deadlines: %s", line)
			}
		}
	}
}

func TestE5SmallRun(t *testing.T) {
	cfg := DefaultE5()
	cfg.Horizon = 150
	cfg.ChurnInterarrivals = []float64{4}
	cfg.RenegeProbs = []float64{0, 0.3}
	tb := E5Churn(cfg)
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	// The renege-0 row must report zero misses and violations.
	for _, line := range strings.Split(out, "\n") {
		cols := strings.Split(line, "|")
		if len(cols) < 8 || strings.TrimSpace(cols[1]) != "0" {
			continue
		}
		if miss := strings.TrimSpace(cols[5]); miss != "0" {
			t.Errorf("honest churn missed deadlines: %s", line)
		}
		if v := strings.TrimSpace(cols[6]); v != "0" {
			t.Errorf("honest churn had violations: %s", line)
		}
	}
}

func TestE6SmallRun(t *testing.T) {
	cfg := DefaultE6()
	cfg.TermCounts = []int{8, 64}
	cfg.ActorCounts = []int{1, 4}
	cfg.Reps = 5
	tb := E6Scalability(cfg)
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
}

func TestE7SmallRun(t *testing.T) {
	cfg := DefaultE7()
	cfg.Scales = []int64{1, 4}
	cfg.NumJobs = 20
	cfg.BaseHorizon = 120
	tb := E7DeltaT(cfg)
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
}

func TestE8SmallRun(t *testing.T) {
	cfg := DefaultE8()
	cfg.TotalLocations = 4
	cfg.Encapsulations = []int{1, 2, 4, 3} // 3 does not divide 4: skipped
	cfg.Horizon = 100
	cfg.JobsPerLocation = 4
	tb := E8Encapsulation(cfg)
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d (the non-dividing partition must be skipped)", tb.NumRows())
	}
	// Admission counts must be identical across partitionings for
	// location-local jobs.
	var sb strings.Builder
	tb.RenderCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var admitted string
	for i, line := range lines {
		if i == 0 {
			continue
		}
		cols := strings.Split(line, ",")
		if admitted == "" {
			admitted = cols[3]
		} else if cols[3] != admitted {
			t.Errorf("admission varies with encapsulation: %v", lines)
		}
	}
}

func TestE9SmallRun(t *testing.T) {
	cfg := DefaultE9()
	cfg.FanOuts = []int{1, 4}
	cfg.Trials = 15
	tb := E9Workflows(cfg)
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// The waits can never relax feasibility: the "bug?" note must not
	// appear.
	var sb strings.Builder
	tb.Render(&sb)
	if strings.Contains(sb.String(), "bug?") {
		t.Errorf("waits relaxed feasibility:\n%s", sb.String())
	}
}

func TestE10PessimisticNeverBreaksAssurance(t *testing.T) {
	cfg := DefaultE10()
	cfg.Trials = 60
	tb := E10Estimation(cfg)
	if tb.NumRows() != 8 { // 4 errors × 2 biases
		t.Fatalf("rows = %d", tb.NumRows())
	}
	var sb strings.Builder
	tb.RenderCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		relErr, bias, broken := cols[0], cols[1], cols[4]
		if bias == "pessimistic" && broken != "0" {
			t.Errorf("pessimistic estimates broke assurance at err=%s: %s", relErr, line)
		}
		if relErr == "0" && broken != "0" {
			t.Errorf("zero error broke assurance: %s", line)
		}
	}
}
