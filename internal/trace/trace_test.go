package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestLogBasics(t *testing.T) {
	l := NewLog()
	if l.Len() != 0 {
		t.Fatal("fresh log not empty")
	}
	l.Add(Event{At: 1, Kind: KindArrival, Job: "j1", Quantity: 10})
	l.Add(Event{At: 2, Kind: KindAdmit, Job: "j1"})
	l.Add(Event{At: 5, Kind: KindComplete, Job: "j1"})
	l.Add(Event{At: 3, Kind: KindArrival, Job: "j2"})
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	events := l.Events()
	if len(events) != 4 || events[0].Job != "j1" || events[0].At != 1 {
		t.Errorf("Events = %+v", events)
	}
	// Returned slice is a copy.
	events[0].Job = "mutated"
	if l.Events()[0].Job != "j1" {
		t.Error("Events exposes internal storage")
	}
	arrivals := l.Filter(KindArrival)
	if len(arrivals) != 2 || arrivals[1].Job != "j2" {
		t.Errorf("Filter = %+v", arrivals)
	}
	if got := l.Filter(KindMiss); len(got) != 0 {
		t.Errorf("Filter(miss) = %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := NewLog()
	l.Add(Event{At: 0, Kind: KindJoin, Detail: "{[2]⟨cpu,l1⟩(0,10)}", Quantity: 20})
	l.Add(Event{At: 4, Kind: KindViolation, Job: "doomed", Detail: "⟨cpu,l1⟩"})
	l.Add(Event{At: 9, Kind: KindMiss, Job: "doomed"})

	var sb strings.Builder
	if err := l.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("want 3 lines, got %q", out)
	}

	back, err := ReadJSONL(strings.NewReader(out + "\n\n")) // blank lines ok
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("round trip lost events: %d", back.Len())
	}
	got := back.Events()
	want := l.Events()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	l, err := ReadJSONL(strings.NewReader(""))
	if err != nil || l.Len() != 0 {
		t.Errorf("empty stream: %v, %d", err, l.Len())
	}
}

func TestLogConcurrentSafety(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(Event{At: int64(i), Kind: KindArrival})
				_ = l.Len()
				_ = l.Filter(KindArrival)
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d, want 800", l.Len())
	}
}
