// Package trace records structured simulation events and serializes them
// as JSON Lines, one event per line — the format replay tooling and
// external analysis notebooks consume.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/interval"
)

// Kind classifies an event.
type Kind string

// The event kinds a simulation emits.
const (
	KindJoin      Kind = "join"      // resources joined
	KindRenege    Kind = "renege"    // resources withdrew early
	KindArrival   Kind = "arrival"   // a job was offered
	KindAdmit     Kind = "admit"     // a job was admitted
	KindReject    Kind = "reject"    // a job was refused
	KindComplete  Kind = "complete"  // a job finished on time
	KindMiss      Kind = "miss"      // a job missed its deadline
	KindViolation Kind = "violation" // a commitment's plan was broken
)

// Event is one timestamped simulation event.
type Event struct {
	At   interval.Time `json:"t"`
	Kind Kind          `json:"kind"`
	// Job names the computation for job-related events.
	Job string `json:"job,omitempty"`
	// Detail carries free-form context (policy reason, resource text).
	Detail string `json:"detail,omitempty"`
	// Quantity carries a magnitude where meaningful (work units,
	// withdrawn units).
	Quantity int64 `json:"qty,omitempty"`
}

// Log accumulates events in memory; it is safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog creates an empty log.
func NewLog() *Log {
	return &Log{}
}

// Add appends an event.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the recorded events in order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Filter returns the events of one kind.
func (l *Log) Filter(kind Kind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL serializes the log as JSON Lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines stream back into a log. Blank lines are
// skipped; a malformed line is an error.
func ReadJSONL(r io.Reader) (*Log, error) {
	l := NewLog()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		l.Add(e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return l, nil
}
