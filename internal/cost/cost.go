// Package cost implements the paper's function Φ, which maps an actor's
// action to the set of resource amounts required to complete it (§IV-A).
//
// The paper treats Φ as a given: "this device … does not imply need for
// existence of such a function. … at the cost of some inefficiency,
// estimates could be used and revised as necessary." Accordingly this
// package provides an exact tabular model preloaded with the paper's
// illustrative constants, a configurable model, and a noisy estimator
// wrapper for studying the effect of estimation error.
package cost

import (
	"fmt"
	"math/rand"

	"repro/internal/compute"
	"repro/internal/resource"
)

// Model is Φ: it converts an action γ of an actor into the resource
// amounts required to complete it.
type Model interface {
	// Amounts returns the resources required for the action. The returned
	// amounts are owned by the caller.
	Amounts(a compute.Action) (resource.Amounts, error)
}

// Params configures a tabular Φ. Each action costs Base + PerUnit×Size of
// its primary resource; migrate additionally costs serialization and
// deserialization CPU on the two nodes plus network for the state.
type Params struct {
	SendNetBase     int64 // network units per send
	SendNetPerUnit  int64 // additional network units per message-size unit beyond the first
	EvalCPUBase     int64 // cpu units per unit-weight evaluate
	EvalCPUPerUnit  int64 // additional cpu units per weight unit beyond the first
	CreateCPU       int64 // cpu units per create
	ReadyCPU        int64 // cpu units per ready
	MigrateCPU      int64 // cpu units to (de)serialize, charged at both ends
	MigrateNetPerKB int64 // network units per state-size unit migrated
}

// PaperParams reproduces the worked constants of §IV-A: Φ(send)=4 network,
// Φ(evaluate)=8 cpu, Φ(create)=5 cpu, Φ(ready)=1 cpu, Φ(migrate)=3 cpu at
// the source + state-size network + 3 cpu at the destination (the paper
// shows [0] network for an idealized zero-size state; state size scales
// it here).
func PaperParams() Params {
	return Params{
		SendNetBase:     4,
		SendNetPerUnit:  0,
		EvalCPUBase:     8,
		EvalCPUPerUnit:  0,
		CreateCPU:       5,
		ReadyCPU:        1,
		MigrateCPU:      3,
		MigrateNetPerKB: 1,
	}
}

// Table is a deterministic tabular Φ.
type Table struct {
	p Params
}

var _ Model = (*Table)(nil)

// NewTable builds a tabular model from params.
func NewTable(p Params) *Table {
	return &Table{p: p}
}

// Paper returns the paper-constant model.
func Paper() *Table {
	return NewTable(PaperParams())
}

// Amounts implements Model.
func (t *Table) Amounts(a compute.Action) (resource.Amounts, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	scale := a.Size
	if scale < 1 {
		scale = 1
	}
	out := make(resource.Amounts)
	switch a.Op {
	case compute.OpSend:
		qty := t.p.SendNetBase + t.p.SendNetPerUnit*(scale-1)
		out.Add(resource.AmountOf(qty, resource.Link(a.Loc, a.Dest)))
	case compute.OpEvaluate:
		qty := t.p.EvalCPUBase + t.p.EvalCPUPerUnit*(scale-1)
		out.Add(resource.AmountOf(qty, resource.CPUAt(a.Loc)))
	case compute.OpCreate:
		out.Add(resource.AmountOf(t.p.CreateCPU, resource.CPUAt(a.Loc)))
	case compute.OpReady:
		out.Add(resource.AmountOf(t.p.ReadyCPU, resource.CPUAt(a.Loc)))
	case compute.OpMigrate:
		out.Add(resource.AmountOf(t.p.MigrateCPU, resource.CPUAt(a.Loc)))
		out.Add(resource.AmountOf(t.p.MigrateNetPerKB*a.Size, resource.Link(a.Loc, a.Dest)))
		out.Add(resource.AmountOf(t.p.MigrateCPU, resource.CPUAt(a.Dest)))
	default:
		return nil, fmt.Errorf("cost: unknown op %v", a.Op)
	}
	return out, nil
}

// Noisy wraps a Model and perturbs every quantity by a bounded relative
// error, modeling the paper's "estimates could be used and revised"
// remark. The perturbation is deterministic given the seed. Estimates
// never fall below one milli-unit, and with Pessimistic set they only
// over-estimate (safe for admission).
type Noisy struct {
	inner       Model
	rng         *rand.Rand
	relErr      float64
	pessimistic bool
}

var _ Model = (*Noisy)(nil)

// NewNoisy wraps inner with ±relErr relative noise (e.g. 0.2 for ±20%).
func NewNoisy(inner Model, relErr float64, seed int64, pessimistic bool) *Noisy {
	return &Noisy{
		inner:       inner,
		rng:         rand.New(rand.NewSource(seed)),
		relErr:      relErr,
		pessimistic: pessimistic,
	}
}

// Amounts implements Model.
func (n *Noisy) Amounts(a compute.Action) (resource.Amounts, error) {
	exact, err := n.inner.Amounts(a)
	if err != nil {
		return nil, err
	}
	out := make(resource.Amounts, len(exact))
	for lt, q := range exact {
		eps := n.relErr * (2*n.rng.Float64() - 1)
		if n.pessimistic && eps < 0 {
			eps = -eps
		}
		perturbed := resource.Quantity(float64(q) * (1 + eps))
		if perturbed < 1 {
			perturbed = 1
		}
		out[lt] = perturbed
	}
	return out, nil
}

// Realize converts a list of actions into a sequential actor computation
// Γ by costing every action with the model.
func Realize(m Model, actor compute.ActorName, actions ...compute.Action) (compute.Computation, error) {
	steps := make([]compute.Step, 0, len(actions))
	for i, a := range actions {
		amounts, err := m.Amounts(a)
		if err != nil {
			return compute.Computation{}, fmt.Errorf("cost: action %d: %w", i, err)
		}
		steps = append(steps, compute.Step{Action: a, Amounts: amounts})
	}
	return compute.NewComputation(actor, steps...)
}
