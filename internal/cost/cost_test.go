package cost

import (
	"testing"

	"repro/internal/compute"
	"repro/internal/resource"
)

func TestPaperConstants(t *testing.T) {
	// §IV-A worked examples:
	//   Φ(a1, send(a2,m))    = [4]⟨network,l1→l2⟩
	//   Φ(a1, evaluate(e))   = [8]⟨cpu,l1⟩
	//   Φ(a1, create(b))     = [5]⟨cpu,l1⟩
	//   Φ(a1, ready(b))      = [1]⟨cpu,l1⟩
	//   Φ(a1, migrate(l2))   = {[3]⟨cpu,l1⟩, [k]⟨network,l1→l2⟩, [3]⟨cpu,l2⟩}
	m := Paper()
	check := func(a compute.Action, want map[resource.LocatedType]int64) {
		t.Helper()
		got, err := m.Amounts(a)
		if err != nil {
			t.Fatalf("Amounts(%v): %v", a, err)
		}
		if len(got) != len(want) {
			t.Fatalf("Amounts(%v) = %v, want %d entries", a, got, len(want))
		}
		for lt, units := range want {
			if got[lt] != resource.QuantityFromUnits(units) {
				t.Errorf("Amounts(%v)[%v] = %d, want %d units", a, lt, got[lt], units)
			}
		}
	}
	check(compute.Send("a1", "l1", "a2", "l2", 1),
		map[resource.LocatedType]int64{resource.Link("l1", "l2"): 4})
	check(compute.Evaluate("a1", "l1", 1),
		map[resource.LocatedType]int64{resource.CPUAt("l1"): 8})
	check(compute.Create("a1", "l1", "b"),
		map[resource.LocatedType]int64{resource.CPUAt("l1"): 5})
	check(compute.Ready("a1", "l1"),
		map[resource.LocatedType]int64{resource.CPUAt("l1"): 1})
	check(compute.Migrate("a1", "l1", "l2", 6), map[resource.LocatedType]int64{
		resource.CPUAt("l1"):      3,
		resource.Link("l1", "l2"): 6,
		resource.CPUAt("l2"):      3,
	})
}

func TestTableScalesWithSize(t *testing.T) {
	m := NewTable(Params{
		SendNetBase: 4, SendNetPerUnit: 2,
		EvalCPUBase: 8, EvalCPUPerUnit: 3,
		CreateCPU: 5, ReadyCPU: 1, MigrateCPU: 3, MigrateNetPerKB: 1,
	})
	got, err := m.Amounts(compute.Send("a1", "l1", "a2", "l2", 5))
	if err != nil {
		t.Fatal(err)
	}
	if got[resource.Link("l1", "l2")] != resource.QuantityFromUnits(4+2*4) {
		t.Errorf("scaled send = %v", got)
	}
	got, err = m.Amounts(compute.Evaluate("a1", "l1", 3))
	if err != nil {
		t.Fatal(err)
	}
	if got[resource.CPUAt("l1")] != resource.QuantityFromUnits(8+3*2) {
		t.Errorf("scaled evaluate = %v", got)
	}
	// Size 0 clamps to 1.
	got, err = m.Amounts(compute.Action{Op: compute.OpEvaluate, Actor: "a1", Loc: "l1", Size: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got[resource.CPUAt("l1")] != resource.QuantityFromUnits(8) {
		t.Errorf("zero-size evaluate = %v", got)
	}
}

func TestTableRejectsInvalidAction(t *testing.T) {
	if _, err := Paper().Amounts(compute.Action{}); err == nil {
		t.Error("invalid action should fail")
	}
}

func TestNoisyDeterministicAndBounded(t *testing.T) {
	base := Paper()
	a := compute.Evaluate("a1", "l1", 1)
	exact, _ := base.Amounts(a)
	want := exact[resource.CPUAt("l1")]

	n1 := NewNoisy(base, 0.25, 99, false)
	n2 := NewNoisy(base, 0.25, 99, false)
	for i := 0; i < 50; i++ {
		g1, err1 := n1.Amounts(a)
		g2, err2 := n2.Amounts(a)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		q1 := g1[resource.CPUAt("l1")]
		if q1 != g2[resource.CPUAt("l1")] {
			t.Fatal("same seed must give same noise")
		}
		lo := float64(want) * 0.75
		hi := float64(want) * 1.25
		if float64(q1) < lo-1 || float64(q1) > hi+1 {
			t.Fatalf("noise out of bounds: %d not in [%f, %f]", q1, lo, hi)
		}
	}
}

func TestNoisyPessimisticNeverUnderestimates(t *testing.T) {
	base := Paper()
	n := NewNoisy(base, 0.5, 7, true)
	a := compute.Send("a1", "l1", "a2", "l2", 1)
	exact, _ := base.Amounts(a)
	want := exact[resource.Link("l1", "l2")]
	for i := 0; i < 100; i++ {
		got, err := n.Amounts(a)
		if err != nil {
			t.Fatal(err)
		}
		if got[resource.Link("l1", "l2")] < want {
			t.Fatalf("pessimistic estimate %d below exact %d", got[resource.Link("l1", "l2")], want)
		}
	}
}

func TestNoisyPropagatesErrors(t *testing.T) {
	n := NewNoisy(Paper(), 0.1, 1, false)
	if _, err := n.Amounts(compute.Action{}); err == nil {
		t.Error("error should propagate through Noisy")
	}
}

func TestRealize(t *testing.T) {
	c, err := Realize(Paper(), "a1",
		compute.Evaluate("a1", "l1", 1),
		compute.Send("a1", "l1", "a2", "l2", 1),
		compute.Ready("a1", "l1"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Steps) != 3 {
		t.Fatalf("steps = %d", len(c.Steps))
	}
	total := c.TotalAmounts()
	if total[resource.CPUAt("l1")] != resource.QuantityFromUnits(9) {
		t.Errorf("cpu total = %d", total[resource.CPUAt("l1")])
	}
	if total[resource.Link("l1", "l2")] != resource.QuantityFromUnits(4) {
		t.Errorf("net total = %d", total[resource.Link("l1", "l2")])
	}
	// Realize surfaces cost errors with the failing index.
	if _, err := Realize(Paper(), "a1", compute.Action{}); err == nil {
		t.Error("Realize should fail on invalid action")
	}
	// Realize surfaces ownership errors from NewComputation.
	if _, err := Realize(Paper(), "a1", compute.Evaluate("zz", "l1", 1)); err == nil {
		t.Error("Realize should fail on foreign actor")
	}
}
