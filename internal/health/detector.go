// Package health is a heartbeat-based φ-accrual failure detector
// (Hayashibara et al., "The φ Accrual Failure Detector", SRDS 2004) for
// the cluster's peers. Instead of a boolean alive/dead verdict from a
// fixed timeout, each peer accrues a continuous suspicion level
//
//	φ(t) = -log10( P(X > t_since_last_heartbeat) )
//
// where X is modelled as a normal distribution fitted to the recent
// inter-arrival history of that peer's heartbeats. φ = 1 means a ~10%
// chance the peer is still alive and merely slow; φ = 8 means ~10⁻⁸.
// Because φ scales with the *observed* heartbeat jitter, the same
// threshold is conservative on a jittery WAN and aggressive on a quiet
// loopback — exactly the adaptivity a deadline-assurance cluster needs:
// the checker's promises (Theorem 4 feasibility) only hold while the
// roster is honest about who is actually serving.
//
// The detector is passive and allocation-free on the hot path: callers
// feed it heartbeat observations (gossip receipts) and periodically ask
// for per-peer assessments. Hysteresis between the suspect and reinstate
// thresholds stops a peer that hovers near the boundary from flapping.
package health

import (
	"math"
	"sort"
	"sync"
	"time"
)

// State is the detector's view of one peer.
type State int

const (
	// Alive: φ below the suspect threshold (or not enough samples yet).
	Alive State = iota
	// Suspect: φ crossed SuspectPhi and has not yet fallen back below
	// the reinstate level (SuspectPhi/2 — hysteresis).
	Suspect
	// Dead: φ crossed EvictPhi against a real inter-arrival baseline
	// (≥ MinSamples observations — bootstrap suspicion caps at
	// Suspect); the peer is a candidate for quorum eviction. Only a
	// fresh heartbeat revives it.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// Options tunes the detector. The zero value is unusable; use Defaults()
// or fill every field.
type Options struct {
	// SuspectPhi is the φ level at which a peer becomes Suspect.
	// Suspects are excluded from steward election and reported in
	// gossip, but not yet acted on.
	SuspectPhi float64
	// EvictPhi is the φ level at which a peer is locally declared Dead
	// and becomes a candidate for quorum-agreed eviction. Must be
	// ≥ SuspectPhi.
	EvictPhi float64
	// WindowSize bounds the per-peer inter-arrival history (ring
	// buffer). Hayashibara used 1000; 64 is plenty at gossip cadence.
	WindowSize int
	// MinSamples gates the fitted distribution: until a peer has this
	// many inter-arrival samples its φ is computed against the wide
	// BootstrapInterval estimate instead of the (still meaningless)
	// fitted one, so a freshly joined peer is shielded from
	// hair-trigger suspicion without being unjudgeable.
	MinSamples int
	// BootstrapInterval is the synthetic inter-arrival estimate (with
	// standard deviation BootstrapInterval/4, floored by MinStdDev)
	// used while a peer has fewer than MinSamples real observations —
	// Akka's "first heartbeat estimate". Without it a roster member
	// that never produced a single heartbeat (a joiner announced by a
	// steward that died immediately, say) would hold φ = 0 forever and
	// could never be suspected, wedging quorum eviction. Default 1s.
	BootstrapInterval time.Duration
	// MinStdDev floors the fitted standard deviation so a perfectly
	// regular heartbeat stream (σ→0 on loopback) does not make φ
	// explode at the first microsecond of delay.
	MinStdDev time.Duration
}

// Defaults returns production-shaped options: suspect at φ=8 (~10⁻⁸
// chance of a false positive per evaluation), evict at φ=12, matching
// the Akka/Cassandra convention of 8–12 for LAN deployments.
func Defaults() Options {
	return Options{
		SuspectPhi:        8,
		EvictPhi:          12,
		WindowSize:        64,
		MinSamples:        3,
		MinStdDev:         10 * time.Millisecond,
		BootstrapInterval: time.Second,
	}
}

func (o Options) withFloors() Options {
	if o.WindowSize <= 0 {
		o.WindowSize = 64
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 3
	}
	if o.MinSamples > o.WindowSize {
		o.MinSamples = o.WindowSize
	}
	if o.MinStdDev <= 0 {
		o.MinStdDev = 10 * time.Millisecond
	}
	if o.BootstrapInterval <= 0 {
		o.BootstrapInterval = time.Second
	}
	if o.EvictPhi < o.SuspectPhi {
		o.EvictPhi = o.SuspectPhi
	}
	return o
}

// history is one peer's bounded inter-arrival record plus running sums,
// so mean and variance are O(1) per observation.
type history struct {
	last    time.Time // most recent heartbeat
	samples []float64 // inter-arrival times, seconds; ring buffer
	next    int       // ring cursor
	sum     float64
	sumSq   float64
	state   State
	// sinceSuspect marks when the peer entered Suspect/Dead, for
	// detection-latency accounting.
	sinceSuspect time.Time
}

func (h *history) count() int { return len(h.samples) }

func (h *history) push(dt float64, window int) {
	if len(h.samples) < window {
		h.samples = append(h.samples, dt)
	} else {
		old := h.samples[h.next]
		h.sum -= old
		h.sumSq -= old * old
		h.samples[h.next] = dt
		h.next = (h.next + 1) % window
	}
	h.sum += dt
	h.sumSq += dt * dt
}

func (h *history) meanStdDev(minStd float64) (mean, std float64) {
	n := float64(len(h.samples))
	if n == 0 {
		return 0, minStd
	}
	mean = h.sum / n
	variance := h.sumSq/n - mean*mean
	if variance > 0 {
		std = math.Sqrt(variance)
	}
	if std < minStd {
		std = minStd
	}
	return mean, std
}

// Assessment is one peer's verdict at evaluation time.
type Assessment struct {
	Peer  string
	Phi   float64
	State State
	// Samples is how many inter-arrival observations back the verdict.
	Samples int
	// SuspectFor is how long the peer has been continuously at
	// Suspect or worse (zero when Alive).
	SuspectFor time.Duration
}

// Detector tracks heartbeat inter-arrival distributions per peer and
// turns elapsed silence into suspicion levels. Safe for concurrent use.
type Detector struct {
	mu    sync.Mutex
	opts  Options
	peers map[string]*history
}

// NewDetector builds a detector with floored options.
func NewDetector(opts Options) *Detector {
	return &Detector{opts: opts.withFloors(), peers: make(map[string]*history)}
}

// Options returns the (floored) options in effect.
func (d *Detector) Options() Options { return d.opts }

// Observe records a heartbeat from peer at time at. Out-of-order or
// duplicate observations (at ≤ last) only refresh liveness, they do not
// poison the inter-arrival history with zero/negative samples.
func (d *Detector) Observe(peer string, at time.Time) {
	d.mu.Lock()
	h, ok := d.peers[peer]
	if !ok {
		h = &history{}
		d.peers[peer] = h
	}
	if !h.last.IsZero() {
		if dt := at.Sub(h.last).Seconds(); dt > 0 {
			h.push(dt, d.opts.WindowSize)
		}
	}
	if at.After(h.last) {
		h.last = at
	}
	// A real heartbeat always reinstates: φ is recomputed from `last`,
	// so the state machine can simply reset here.
	if h.state != Alive {
		h.state = Alive
		h.sinceSuspect = time.Time{}
	}
	d.mu.Unlock()
}

// Expect registers peer as a roster member that ought to be
// heartbeating, without recording a heartbeat. A peer first seen here
// starts its silence clock at `at` and is judged against the
// BootstrapInterval estimate until real inter-arrivals accumulate, so a
// member that never speaks at all still becomes suspectable. Peers the
// detector already tracks are untouched.
func (d *Detector) Expect(peer string, at time.Time) {
	d.mu.Lock()
	if _, ok := d.peers[peer]; !ok {
		d.peers[peer] = &history{last: at}
	}
	d.mu.Unlock()
}

// Phi returns the current suspicion level for peer at time now, without
// mutating state. Unknown peers report 0.
func (d *Detector) Phi(peer string, now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.peers[peer]
	if !ok {
		return 0
	}
	return d.phiLocked(h, now)
}

func (d *Detector) phiLocked(h *history, now time.Time) float64 {
	if h.last.IsZero() {
		return 0
	}
	elapsed := now.Sub(h.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	mean, std := h.meanStdDev(d.opts.MinStdDev.Seconds())
	if h.count() < d.opts.MinSamples {
		// Bootstrap: too little real history for the fit to mean
		// anything. Judge silence against the deliberately wide
		// first-heartbeat estimate instead — suspicion still accrues,
		// just slowly, so a peer that never heartbeats at all cannot
		// hide at φ = 0 forever.
		mean = d.opts.BootstrapInterval.Seconds()
		if std = mean / 4; std < d.opts.MinStdDev.Seconds() {
			std = d.opts.MinStdDev.Seconds()
		}
	}
	// P(X > elapsed) for X ~ N(mean, std²), via the complementary
	// error function; φ = -log10 of that tail probability.
	p := 0.5 * math.Erfc((elapsed-mean)/(std*math.Sqrt2))
	if p < 1e-300 { // erfc underflow: cap φ rather than return +Inf
		return 300
	}
	return -math.Log10(p)
}

// Evaluate advances every peer's state machine to time now and returns
// the assessments, sorted by peer ID for deterministic iteration.
// Transitions: Alive→Suspect at SuspectPhi, anything→Dead at EvictPhi
// once a real baseline exists (below MinSamples the bootstrap estimate
// caps the verdict at Suspect), Suspect→Alive only below SuspectPhi/2
// (hysteresis); Dead→Alive only via a fresh Observe.
func (d *Detector) Evaluate(now time.Time) []Assessment {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Assessment, 0, len(d.peers))
	for peer, h := range d.peers {
		phi := d.phiLocked(h, now)
		switch {
		case phi >= d.opts.EvictPhi && h.count() >= d.opts.MinSamples:
			// Dead needs a real inter-arrival baseline: suspicion
			// accrued against the synthetic bootstrap estimate caps at
			// Suspect. A bootstrapped peer can therefore be *accused*
			// (its silence counts toward someone else's quorum) but
			// never locally declared dead — so a freshly (re)joined
			// member that is merely slow to gossip is not evicted, with
			// its standbys still cold, on synthetic evidence alone.
			if h.state != Dead {
				if h.sinceSuspect.IsZero() {
					h.sinceSuspect = now
				}
				h.state = Dead
			}
		case phi >= d.opts.SuspectPhi:
			if h.state == Alive {
				h.state = Suspect
				h.sinceSuspect = now
			}
		case phi < d.opts.SuspectPhi/2:
			// Hysteresis: only a clear recovery reinstates a
			// Suspect. Dead stays Dead until a real heartbeat.
			if h.state == Suspect {
				h.state = Alive
				h.sinceSuspect = time.Time{}
			}
		}
		a := Assessment{Peer: peer, Phi: phi, State: h.state, Samples: h.count()}
		if !h.sinceSuspect.IsZero() {
			a.SuspectFor = now.Sub(h.sinceSuspect)
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Forget drops all state for peer — call after an eviction commits so a
// rejoining node starts with a clean history (its old cadence is
// meaningless after a restart).
func (d *Detector) Forget(peer string) {
	d.mu.Lock()
	delete(d.peers, peer)
	d.mu.Unlock()
}

// Peers returns the tracked peer IDs, sorted.
func (d *Detector) Peers() []string {
	d.mu.Lock()
	ids := make([]string, 0, len(d.peers))
	for id := range d.peers {
		ids = append(ids, id)
	}
	d.mu.Unlock()
	sort.Strings(ids)
	return ids
}
