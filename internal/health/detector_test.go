package health

import (
	"math"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// feed delivers n heartbeats at a fixed interval and returns the time of
// the last one.
func feed(d *Detector, peer string, n int, every time.Duration) time.Time {
	at := t0
	for i := 0; i < n; i++ {
		d.Observe(peer, at)
		at = at.Add(every)
	}
	return at.Add(-every)
}

func TestPhiGrowsWithSilence(t *testing.T) {
	d := NewDetector(Options{SuspectPhi: 4, EvictPhi: 8, MinStdDev: 50 * time.Millisecond})
	last := feed(d, "n2", 20, 100*time.Millisecond)

	if phi := d.Phi("n2", last.Add(50*time.Millisecond)); phi > 1 {
		t.Fatalf("φ=%.2f half an interval after a heartbeat, want ~0", phi)
	}
	mid := d.Phi("n2", last.Add(300*time.Millisecond))
	late := d.Phi("n2", last.Add(1*time.Second))
	if !(mid > 1) || !(late > mid) {
		t.Fatalf("φ not monotone in silence: mid=%.2f late=%.2f", mid, late)
	}
	if math.IsInf(late, 0) || math.IsNaN(late) {
		t.Fatalf("φ overflowed: %v", late)
	}
	// Very long silence is capped, not +Inf.
	if phi := d.Phi("n2", last.Add(time.Hour)); phi > 300 || math.IsInf(phi, 0) {
		t.Fatalf("φ after an hour = %v, want capped ≤ 300", phi)
	}
}

func TestBootstrapBelowMinSamples(t *testing.T) {
	d := NewDetector(Options{SuspectPhi: 4, EvictPhi: 8, MinSamples: 3,
		BootstrapInterval: time.Second})
	// Two heartbeats → one inter-arrival sample: below the gate, so φ
	// is judged against the wide bootstrap estimate, not the 50ms fit.
	d.Observe("new", t0)
	d.Observe("new", t0.Add(50*time.Millisecond))
	if phi := d.Phi("new", t0.Add(350*time.Millisecond)); phi >= 4 {
		t.Fatalf("under-sampled peer suspect after 300ms of silence (φ=%.2f); bootstrap must be forgiving", phi)
	}
	// ...but prolonged silence still accrues: an under-sampled peer is
	// judgeable, not invisible (a never-gossiping roster member must be
	// accusable, or it wedges the full-roster quorum).
	if phi := d.Phi("new", t0.Add(time.Hour)); phi < 8 {
		t.Fatalf("under-sampled peer φ=%.2f after an hour of silence, want ≥ 8 (bootstrap estimate must accrue)", phi)
	}
	// Bootstrap suspicion caps at Suspect: Dead — the verdict that can
	// trigger an eviction — needs MinSamples of real history, so a
	// rejoined member slow to ship its first gossips cannot be evicted
	// on the synthetic curve.
	for _, a := range d.Evaluate(t0.Add(time.Hour)) {
		if a.Peer == "new" && a.State != Suspect {
			t.Fatalf("under-sampled silent peer is %v, want Suspect (bootstrap must not reach Dead)", a.State)
		}
	}
	// Expect starts the silence clock without a heartbeat: same curve.
	d.Expect("announced", t0)
	if phi := d.Phi("announced", t0.Add(350*time.Millisecond)); phi >= 4 {
		t.Fatalf("expected peer suspect after 350ms (φ=%.2f), too eager", phi)
	}
	if phi := d.Phi("announced", t0.Add(time.Hour)); phi < 8 {
		t.Fatalf("expected-but-silent peer φ=%.2f after an hour, want ≥ 8", phi)
	}
	// Expect never clobbers a live history: `new`'s last heartbeat
	// stays where Observe put it.
	d.Expect("new", t0.Add(2*time.Hour))
	if phi := d.Phi("new", t0.Add(time.Hour)); phi < 8 {
		t.Fatalf("Expect reset a tracked peer's history (φ=%.2f)", phi)
	}
	// Unknown peer is not suspected.
	if phi := d.Phi("ghost", t0.Add(time.Hour)); phi != 0 {
		t.Fatalf("unknown peer φ=%.2f, want 0", phi)
	}
}

func TestStateTransitionsAndHysteresis(t *testing.T) {
	d := NewDetector(Options{SuspectPhi: 4, EvictPhi: 10, MinStdDev: 5 * time.Millisecond})
	last := feed(d, "n2", 20, 100*time.Millisecond)

	// Find the first instants where φ crosses each threshold.
	var suspectAt, deadAt time.Time
	for dt := 100 * time.Millisecond; dt < 10*time.Second; dt += 10 * time.Millisecond {
		phi := d.Phi("n2", last.Add(dt))
		if suspectAt.IsZero() && phi >= 4 {
			suspectAt = last.Add(dt)
		}
		if phi >= 10 {
			deadAt = last.Add(dt)
			break
		}
	}
	if suspectAt.IsZero() || deadAt.IsZero() {
		t.Fatal("φ never crossed the thresholds")
	}

	as := d.Evaluate(suspectAt)
	if as[0].State != Suspect {
		t.Fatalf("at φ≥suspect: state %v, want suspect", as[0].State)
	}
	as = d.Evaluate(deadAt)
	if as[0].State != Dead {
		t.Fatalf("at φ≥evict: state %v, want dead", as[0].State)
	}
	if as[0].SuspectFor <= 0 {
		t.Fatal("SuspectFor not tracked through suspect→dead")
	}
	// Dead does not self-heal by re-evaluating at a quiet moment…
	if as := d.Evaluate(deadAt.Add(time.Millisecond)); as[0].State != Dead {
		t.Fatalf("dead peer re-evaluated to %v without a heartbeat", as[0].State)
	}
	// …but a real heartbeat reinstates it.
	d.Observe("n2", deadAt.Add(time.Second))
	if as := d.Evaluate(deadAt.Add(time.Second)); as[0].State != Alive {
		t.Fatalf("heartbeat did not reinstate: %v", as[0].State)
	}
}

func TestHysteresisHoldsSuspectNearBoundary(t *testing.T) {
	d := NewDetector(Options{SuspectPhi: 4, EvictPhi: 100, MinStdDev: 5 * time.Millisecond})
	last := feed(d, "n2", 20, 100*time.Millisecond)

	// Walk forward to a Suspect verdict.
	var at time.Time
	for dt := 100 * time.Millisecond; dt < 10*time.Second; dt += 10 * time.Millisecond {
		if d.Phi("n2", last.Add(dt)) >= 4 {
			at = last.Add(dt)
			break
		}
	}
	if as := d.Evaluate(at); as[0].State != Suspect {
		t.Fatalf("state %v, want suspect", as[0].State)
	}
	// Evaluating at a moment where φ has dipped just below SuspectPhi
	// (but above SuspectPhi/2) must keep the peer Suspect.
	var dip time.Time
	for dt := time.Duration(0); dt < 10*time.Second; dt += time.Millisecond {
		phi := d.Phi("n2", last.Add(dt))
		if phi >= 2 && phi < 4 {
			dip = last.Add(dt)
			break
		}
	}
	if dip.IsZero() {
		t.Fatal("no φ dip window found")
	}
	if as := d.Evaluate(dip); as[0].State != Suspect {
		t.Fatalf("peer flapped to %v inside the hysteresis band", as[0].State)
	}
}

func TestAdaptsToJitter(t *testing.T) {
	// Same silence, two cadence histories: the jittery peer should be
	// suspected later (lower φ) than the metronomic one.
	steady := NewDetector(Options{SuspectPhi: 4, EvictPhi: 8, MinStdDev: time.Millisecond})
	jitter := NewDetector(Options{SuspectPhi: 4, EvictPhi: 8, MinStdDev: time.Millisecond})
	feed(steady, "p", 30, 100*time.Millisecond)
	at := t0
	for i := 0; i < 30; i++ {
		jitter.Observe("p", at)
		if i%2 == 0 {
			at = at.Add(40 * time.Millisecond)
		} else {
			at = at.Add(160 * time.Millisecond)
		}
	}
	lastSteady := t0.Add(29 * 100 * time.Millisecond)
	lastJitter := at.Add(-40 * time.Millisecond)
	probe := 400 * time.Millisecond
	ps := steady.Phi("p", lastSteady.Add(probe))
	pj := jitter.Phi("p", lastJitter.Add(probe))
	if ps <= pj {
		t.Fatalf("steady φ=%.2f ≤ jittery φ=%.2f at the same silence — detector not adaptive", ps, pj)
	}
}

func TestOutOfOrderObservationsAreHarmless(t *testing.T) {
	d := NewDetector(Defaults())
	last := feed(d, "n2", 10, 100*time.Millisecond)
	before := d.Phi("n2", last.Add(200*time.Millisecond))
	// Duplicate and stale observations must not add ≤0 samples.
	d.Observe("n2", last)
	d.Observe("n2", last.Add(-time.Second))
	after := d.Phi("n2", last.Add(200*time.Millisecond))
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("stale observations changed φ: %.4f → %.4f", before, after)
	}
}

func TestForget(t *testing.T) {
	d := NewDetector(Defaults())
	feed(d, "n2", 10, 100*time.Millisecond)
	d.Forget("n2")
	if got := d.Peers(); len(got) != 0 {
		t.Fatalf("peers after Forget: %v", got)
	}
	if phi := d.Phi("n2", t0.Add(time.Hour)); phi != 0 {
		t.Fatalf("forgotten peer φ=%.2f", phi)
	}
}

func TestWindowBoundsMemoryAndTracksRegimeChange(t *testing.T) {
	d := NewDetector(Options{SuspectPhi: 4, EvictPhi: 8, WindowSize: 16, MinStdDev: time.Millisecond})
	// Old slow regime, then a new fast regime long enough to flush the
	// window: suspicion timing must follow the new cadence.
	at := t0
	for i := 0; i < 16; i++ {
		d.Observe("p", at)
		at = at.Add(time.Second)
	}
	for i := 0; i < 32; i++ {
		d.Observe("p", at)
		at = at.Add(20 * time.Millisecond)
	}
	last := at.Add(-20 * time.Millisecond)
	if phi := d.Phi("p", last.Add(500*time.Millisecond)); phi < 4 {
		t.Fatalf("φ=%.2f after 25 missed fast-regime beats — window still dominated by stale samples", phi)
	}
}

func TestEvaluateDeterministicOrder(t *testing.T) {
	d := NewDetector(Defaults())
	for _, p := range []string{"n3", "n1", "n2"} {
		feed(d, p, 5, 50*time.Millisecond)
	}
	as := d.Evaluate(t0.Add(time.Second))
	for i := 1; i < len(as); i++ {
		if as[i-1].Peer >= as[i].Peer {
			t.Fatalf("assessments not sorted: %v", as)
		}
	}
}

func TestConcurrentObserveEvaluate(t *testing.T) {
	d := NewDetector(Defaults())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			peer := []string{"a", "b", "c", "d"}[g]
			at := t0
			for i := 0; i < 500; i++ {
				d.Observe(peer, at)
				at = at.Add(time.Millisecond)
				if i%50 == 0 {
					d.Evaluate(at)
					d.Phi(peer, at)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(d.Peers()); got != 4 {
		t.Fatalf("tracked %d peers, want 4", got)
	}
}

// BenchmarkDetectorObserve measures the per-heartbeat overhead the
// detector adds to gossip receipt — the E16 "heartbeat overhead" number.
func BenchmarkDetectorObserve(b *testing.B) {
	d := NewDetector(Defaults())
	at := t0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = at.Add(time.Millisecond)
		d.Observe("peer", at)
	}
}

// BenchmarkDetectorEvaluate measures a full-roster evaluation sweep (16
// peers), the work done once per gossip tick.
func BenchmarkDetectorEvaluate(b *testing.B) {
	d := NewDetector(Defaults())
	for p := 0; p < 16; p++ {
		feed(d, string(rune('a'+p)), 64, 100*time.Millisecond)
	}
	now := t0.Add(time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Evaluate(now)
	}
}
