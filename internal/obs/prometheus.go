package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Prometheus text-format exposition, hand-rolled over the repo's own
// metrics primitives — no external client library. An Exposition is
// built per scrape: collectors append families and samples, Render
// writes the canonical text format. HELP/TYPE lines are emitted once
// per family however many label sets sample it, which is what lets the
// server and cluster layers contribute samples to shared families.

// Labels is an ordered set of label pairs. Order is preserved in the
// rendered sample so golden tests are byte-stable.
type Labels []Label

// Label is one name="value" pair.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a single-label Labels.
func L(name, value string) Labels { return Labels{{Name: name, Value: value}} }

// With appends a label pair, returning a new Labels (the receiver is
// not mutated, so a base label set can be shared).
func (ls Labels) With(name, value string) Labels {
	out := make(Labels, 0, len(ls)+1)
	out = append(out, ls...)
	return append(out, Label{Name: name, Value: value})
}

func (ls Labels) render(b *strings.Builder) {
	if len(ls) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// family is one metric family: HELP/TYPE plus its samples in append
// order.
type family struct {
	name    string
	help    string
	typ     string
	samples []sample
}

type sample struct {
	suffix string // "", "_sum", "_count", ...
	labels Labels
	value  float64
}

// Exposition accumulates metric families for one scrape.
type Exposition struct {
	families []*family
	byName   map[string]*family
}

// NewExposition builds an empty exposition.
func NewExposition() *Exposition {
	return &Exposition{byName: make(map[string]*family)}
}

func (e *Exposition) fam(name, typ, help string) *family {
	if f, ok := e.byName[name]; ok {
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	e.byName[name] = f
	e.families = append(e.families, f)
	return f
}

// Counter appends one counter sample. The family's HELP/TYPE are taken
// from the first call naming it.
func (e *Exposition) Counter(name, help string, labels Labels, v float64) {
	f := e.fam(name, "counter", help)
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// Gauge appends one gauge sample.
func (e *Exposition) Gauge(name, help string, labels Labels, v float64) {
	f := e.fam(name, "gauge", help)
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// Summary appends a full summary family entry (quantiles + _sum +
// _count) from a histogram digest.
func (e *Exposition) Summary(name, help string, labels Labels, s metrics.HistogramSummary) {
	f := e.fam(name, "summary", help)
	for _, q := range []struct {
		q string
		v float64
	}{{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}} {
		f.samples = append(f.samples, sample{labels: labels.With("quantile", q.q), value: q.v})
	}
	f.samples = append(f.samples,
		sample{suffix: "_sum", labels: labels, value: s.Mean * float64(s.Count)},
		sample{suffix: "_count", labels: labels, value: float64(s.Count)})
}

// HasFamily reports whether a family was registered (metrics-lint).
func (e *Exposition) HasFamily(name string) bool {
	_, ok := e.byName[name]
	return ok
}

// Render writes the exposition in Prometheus text format.
func (e *Exposition) Render(w io.Writer) error {
	var b strings.Builder
	for _, f := range e.families {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			s.labels.render(&b)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders a sample value: integral values without an
// exponent, everything else via %g (matching common client output).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Collector fills an exposition; server and cluster nodes implement it.
type Collector interface {
	CollectMetrics(e *Exposition)
}

// Handler serves GET /metrics for a Collector.
func Handler(c Collector) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e := NewExposition()
		c.CollectMetrics(e)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = e.Render(w)
	}
}

// ParseMetrics reads a Prometheus text-format stream into a flat map
// keyed by "name{label="v",...}" exactly as rendered. The load
// generator uses it to scrape a live node's /metrics; tests use it to
// assert on exposition contents.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: unparsable metrics line %q", line)
		}
		key := strings.TrimSpace(line[:sp])
		v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("obs: unparsable value in %q: %w", line, err)
		}
		out[key] = v
	}
	return out, sc.Err()
}

// MetricValue looks up a parsed sample by family name and optional
// rendered label block (pass "" for an unlabelled sample).
func MetricValue(m map[string]float64, name, labelBlock string) (float64, bool) {
	v, ok := m[name+labelBlock]
	return v, ok
}

// EndpointStats instruments one HTTP endpoint: request counts by status
// class plus a latency histogram. Safe for concurrent use.
type EndpointStats struct {
	endpoint  string
	classes   [6]atomic.Uint64 // index = status/100, 0 unused
	latencyUS *metrics.Histogram
}

// NewEndpointStats builds a recorder for the named endpoint.
func NewEndpointStats(endpoint string) *EndpointStats {
	return &EndpointStats{endpoint: endpoint, latencyUS: metrics.NewHistogram()}
}

// Observe records one served request.
func (es *EndpointStats) Observe(status int, d time.Duration) {
	cls := status / 100
	if cls < 1 || cls > 5 {
		cls = 5
	}
	es.classes[cls].Add(1)
	es.latencyUS.Observe(float64(d.Microseconds()))
}

// Collect appends this endpoint's families to the exposition. base is
// prepended to the endpoint label (layer tagging in cluster mode).
func (es *EndpointStats) Collect(e *Exposition, base Labels) {
	labels := base.With("endpoint", es.endpoint)
	for cls := 1; cls <= 5; cls++ {
		if n := es.classes[cls].Load(); n > 0 {
			e.Counter("rota_http_requests_total", "HTTP requests served, by endpoint and status class.",
				labels.With("class", fmt.Sprintf("%dxx", cls)), float64(n))
		}
	}
	e.Summary("rota_http_request_latency_us", "HTTP request service latency in microseconds, by endpoint.",
		labels, es.latencyUS.Summary())
}

// statusWriter captures the response status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	sw.status = status
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Flush delegates to the underlying writer so streaming handlers (the
// /v1/watch SSE stream) keep working through the instrumentation wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Instrument wraps a handler with per-endpoint stats and trace
// correlation: the request's trace ID (minted when absent) is placed in
// the context and echoed in the response header before next runs.
func Instrument(es *EndpointStats, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// An outer layer (the cluster mux delegating to the embedded
		// server) may already have resolved this request's trace; reuse
		// it rather than minting a second ID for the same request.
		trace := Trace(r.Context())
		if trace == "" {
			trace = TraceFromRequest(r)
		}
		w.Header().Set(HeaderTraceID, trace)
		ctx := WithTrace(r.Context(), trace)
		// Lift the caller's span ID (if any) into the context so the
		// first span this handler starts parents onto the calling side.
		if SpanParent(ctx) == "" {
			if parent := SpanParentFromRequest(r); parent != "" {
				ctx = WithSpanParent(ctx, parent)
			}
		}
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		es.Observe(sw.status, time.Since(start))
	}
}

// SortedEndpoints renders a deterministic collection order for a map of
// endpoint recorders.
func SortedEndpoints(m map[string]*EndpointStats) []*EndpointStats {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*EndpointStats, len(names))
	for i, name := range names {
		out[i] = m[name]
	}
	return out
}
