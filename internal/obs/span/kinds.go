package span

import "sort"

// KindSchema documents one span kind: what phase of the pipeline it
// covers and which attributes it may carry. Kinds are registered at
// package init via defineKind, so every kind in the codebase has a
// documented schema by construction — the metrics-lint test in
// internal/obs enforces that the registry stays complete and that live
// spans only use registered kinds and attributes.
type KindSchema struct {
	Name  string
	Doc   string
	Attrs map[string]string // attribute key -> meaning
}

var kindRegistry = map[string]KindSchema{}

// defineKind registers a span kind with its documentation and attribute
// schema (alternating key, meaning pairs) and returns the kind name.
func defineKind(name, doc string, attrs ...string) string {
	if len(attrs)%2 != 0 {
		panic("span: defineKind attrs must be key/doc pairs: " + name)
	}
	m := make(map[string]string, len(attrs)/2)
	for i := 0; i < len(attrs); i += 2 {
		m[attrs[i]] = attrs[i+1]
	}
	if _, dup := kindRegistry[name]; dup {
		panic("span: duplicate kind " + name)
	}
	kindRegistry[name] = KindSchema{Name: name, Doc: doc, Attrs: m}
	return name
}

// Span kinds, one per phase of the admission pipeline. The terminal
// span of a request is the admit/coordinate/forward/migrate span; the
// rest nest underneath it.
var (
	KindAdmit = defineKind("admit",
		"one /v1/admit request decided locally: validate, plan, reserve",
		"job", "job name",
		"admit", "decision verdict (true/false)",
		"queue_wait_us", "time the task waited for a worker",
		"deadline", "job deadline tick",
		"finish", "planned finish tick when admitted",
		"error", "fault that ended the request without a verdict")

	KindValidate = defineKind("validate",
		"request decode + workload validation + deadline-vs-now check",
		"job", "job name",
		"error", "validation failure, when rejected here")

	KindPlan = defineKind("plan",
		"witness-plan search (schedule.Concurrent) over the free view",
		"job", "job name",
		"actors", "number of actors whose phases were searched",
		"batch", "admission batch size, when decided in a batch of >1",
		"attempt", "optimistic replan attempt, when >0 (snapshot conflicted)",
		"error", "infeasibility reason when no witness exists")

	KindReserve = defineKind("reserve",
		"ledger shard locking + commitment write for an admitted plan",
		"job", "job name",
		"shards", "number of location shards touched",
		"attempt", "optimistic validate attempt, when >0 (status reject = conflict, retried)")

	KindCoordinate = defineKind("coordinate",
		"cross-node admission: merged free view, split demand, 2PC",
		"job", "job name",
		"admit", "decision verdict (true/false)",
		"participants", "number of peer nodes holding demand",
		"outcome", "committed / rejected / aborted / failed")

	KindFreeView = defineKind("freeview",
		"fetch of one participant's free resource view",
		"peer", "peer node ID")

	KindPrepare = defineKind("prepare",
		"two-phase prepare: participant-side hold under a TTL lease",
		"job", "job name",
		"key", "two-phase idempotency key",
		"peer", "peer node ID (coordinator side)",
		"held", "whether the hold was granted")

	KindCommit = defineKind("commit",
		"two-phase commit: promote a held prepare into the ledger",
		"job", "job name",
		"key", "two-phase idempotency key",
		"peer", "peer node ID (coordinator side)")

	KindAbort = defineKind("abort",
		"two-phase abort: release a hold (or roll back a commit)",
		"job", "job name",
		"key", "two-phase idempotency key",
		"peer", "peer node ID (coordinator side)",
		"detached", "true when issued from a detached (post-request) context")

	KindForward = defineKind("forward",
		"proxy of a single-location admit to its owning node",
		"job", "job name",
		"peer", "owning node the request was proxied to")

	KindMigrate = defineKind("migrate",
		"make-before-break migration of a commitment to another node",
		"job", "job name",
		"from", "node releasing the commitment",
		"to", "node receiving the demand",
		"outcome", "migrated / rejected / failed")

	KindRPC = defineKind("rpc",
		"one attempt of a peer RPC (retries are separate spans)",
		"peer", "peer node ID",
		"path", "RPC route",
		"attempt", "attempt index, 0-based",
		"error", "attempt failure, when it failed")

	KindQuery = defineKind("query",
		"one-shot temporal query evaluated against the ledger free view",
		"query", "canonical query text",
		"holds", "verdict (true/false)",
		"epoch", "ledger epoch the verdict was taken against",
		"error", "compile or evaluation failure")

	KindWatch = defineKind("watch",
		"standing-query subscription lifetime (SSE stream)",
		"query", "canonical query text",
		"sub", "subscription ID",
		"events", "verdict events delivered over the stream",
		"error", "subscribe failure")

	// Dynamic-membership kinds (internal/cluster/membership.go).
	KindJoin = defineKind("join",
		"steward-side admission of a new member: plan moves, hand off, publish table",
		"member", "joining node ID",
		"epoch", "table epoch the join published",
		"moves", "ownership moves executed",
		"error", "failure that aborted the join")

	KindLeave = defineKind("leave",
		"steward-side removal of a member: hand off (graceful) or promote standbys (forced)",
		"member", "leaving node ID",
		"force", "true when the member is presumed dead",
		"epoch", "table epoch the leave published",
		"error", "failure that aborted the leave")

	KindHandoff = defineKind("handoff",
		"one make-before-break ownership handoff: freeze, export, install on the new owner, drop",
		"to", "node receiving the locations",
		"locations", "number of locations moved",
		"epoch", "table epoch the handoff belongs to",
		"moved_keys", "mid-2PC holds whose keys now forward to the new owner",
		"error", "failure that left the locations with the old owner")

	KindPromote = defineKind("promote",
		"standby promotion: adopt locations from gossip-fed shadow exports",
		"locations", "number of locations adopted",
		"epoch", "table epoch the promotion belongs to",
		"shadow_misses", "locations adopted empty because no shadow had arrived",
		"error", "import failure during promotion")

	// Self-healing kinds (internal/cluster/health.go).
	KindRepair = defineKind("repair",
		"journal repair of a dead steward's partially applied membership plan",
		"steward", "dead steward whose intent is being repaired",
		"member", "node the interrupted plan was admitting or removing",
		"kind", "intent kind (join/leave)",
		"stage", "stage the intent had reached when the steward died",
		"epoch", "table epoch the repair published",
		"moves", "ownership moves confirmed complete and kept in the table",
		"error", "failure that aborted the repair")

	KindRejoin = defineKind("rejoin",
		"fenced node dropping its stale state and rejoining the cluster fresh",
		"via", "member the rejoin request goes through",
		"dropped", "owned locations demoted before rejoining",
		"error", "rejoin failure (retried on the next fence)")

	// Sim-bridge kinds: synthetic spans reconstructed from internal/sim
	// JSONL traces so rotatrace -spans analyses simulator runs too.
	KindSimJob = defineKind("sim.job",
		"one simulated job's lifetime from arrival to terminal event",
		"job", "job name",
		"outcome", "terminal event kind (admit/reject/complete/miss/renege)")

	KindSimEvent = defineKind("sim.event",
		"one simulator trace event within a job's lifetime",
		"event", "trace event kind",
		"detail", "event detail string",
		"qty", "resource quantity, when the event carries one")

	// Deadline-assurance kinds (internal/obs/assure, internal/obs/flightrec).
	KindAssure = defineKind("assure",
		"promise-ledger sweep that resolved anomalous terminal outcomes",
		"violated", "promises whose deadline passed while the job was live",
		"orphaned", "promises whose deadline passed with nobody holding the job",
		"job", "job name, when a single promise resolved anomalously")

	KindFlightRec = defineKind("flightrec",
		"anomaly flight-recorder snapshot frozen by a trigger",
		"trigger", "trigger kind that froze the snapshot",
		"snapshot", "snapshot ID serving it at /debug/rota/flightrec/{id}",
		"detail", "trigger detail (job name, audit error, evicted member)")
)

// Kinds returns every registered kind schema, sorted by name.
func Kinds() []KindSchema {
	out := make([]KindSchema, 0, len(kindRegistry))
	for _, ks := range kindRegistry {
		out = append(out, ks)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupKind returns the schema for a kind name.
func LookupKind(name string) (KindSchema, bool) {
	ks, ok := kindRegistry[name]
	return ks, ok
}
