// Package span is rotad's hierarchical tracing layer, built on top of
// the flat trace IDs internal/obs established: every phase of an
// admission — validation, witness-plan search, ledger reservation,
// two-phase coordination, each peer-RPC attempt — runs inside a Span
// with a parent, per-span attributes and a monotonic duration. Finished
// spans land in a bounded in-memory ring buffer (the Store) that
// GET /debug/rota/trace/{id} serves and rotatrace -spans analyses.
//
// Span context crosses process boundaries in the X-Rota-Span header
// (the parent span ID; the trace ID rides the existing X-Rota-Trace-Id
// header), so one federated admission yields a single connected span
// tree across coordinator and participants.
//
// All Span and Store methods are safe for concurrent use and safe on a
// nil receiver — a nil *Store is the "tracing off" object, and the nil
// *Span values it hands out make every call site unconditional.
package span

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Statuses a finished span may carry. The zero value renders as "ok".
const (
	StatusOK     = "ok"
	StatusReject = "reject" // a well-formed capacity/deadline rejection
	StatusError  = "error"  // a fault: transport, protocol, validation
)

// Record is the serialized form of a finished span — the shape the
// /debug/rota/trace endpoint returns, rotatrace consumes, and the
// ring buffer stores.
type Record struct {
	Trace  string `json:"trace"`
	ID     string `json:"span"`
	Parent string `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Node   string `json:"node,omitempty"`
	// StartUnixNS is the wall-clock start; ordering within one node is
	// trustworthy (durations are monotonic), across nodes it is only as
	// good as the clocks.
	StartUnixNS int64             `json:"start_unix_ns"`
	DurationUS  int64             `json:"duration_us"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Status      string            `json:"status,omitempty"`
	// Provenance explains a terminal reject: which constraint, resource
	// term or node free-view made the checker say no.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// End returns the record's wall-clock end time in ns.
func (r Record) End() int64 { return r.StartUnixNS + r.DurationUS*1000 }

// Dump is the JSON body of GET /debug/rota/trace/{id}.
type Dump struct {
	Trace string   `json:"trace"`
	Spans []Record `json:"spans"`
}

// Span is one in-flight operation. Created by Store.Start, finished by
// End; mutators are no-ops after End and on a nil receiver.
type Span struct {
	store *Store

	mu    sync.Mutex
	rec   Record
	begun time.Time // monotonic
	ended bool
}

// DefaultCapacity is the span store's bound when none is configured.
const DefaultCapacity = 4096

// Store is a bounded in-memory ring buffer of finished spans. When the
// buffer is full the oldest record is overwritten and the eviction
// counter incremented, so the store's footprint is fixed however much
// traffic the daemon serves.
type Store struct {
	node string
	cap  int

	mu       sync.Mutex
	buf      []Record
	next     int // next write slot
	filled   int // records currently held (≤ cap)
	recorded uint64
	evicted  uint64
}

// NewStore builds a span store bounded to capacity records (≤ 0 means
// DefaultCapacity), tagging every record with the given node ID.
func NewStore(capacity int, node string) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{node: node, cap: capacity, buf: make([]Record, capacity)}
}

// ctxKey carries the current *Span in a context.
type ctxKey struct{}

// FromContext returns the context's live span, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// NewContext returns ctx tagged with the span.
func NewContext(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// MintID returns a fresh 16-hex-character span ID.
func MintID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return fmt.Sprintf("s%015x", time.Now().UnixNano()&0xFFFFFFFFFFFFFFF)
	}
	return hex.EncodeToString(buf[:])
}

// Start opens a span of the given kind as a child of the context's live
// span — or, absent one, of the remote parent the X-Rota-Span header
// propagated (obs.SpanParent). The returned context carries the new
// span so nested phases and outgoing RPCs parent onto it. A nil store
// returns the context unchanged and a nil span.
func (st *Store) Start(ctx context.Context, kind string) (context.Context, *Span) {
	if st == nil {
		return ctx, nil
	}
	var trace, parent string
	if p := FromContext(ctx); p != nil {
		p.mu.Lock()
		trace, parent = p.rec.Trace, p.rec.ID
		p.mu.Unlock()
	} else {
		trace = obs.Trace(ctx)
		parent = obs.SpanParent(ctx)
	}
	if trace == "" {
		trace = obs.MintTraceID()
	}
	sp := &Span{
		store: st,
		begun: time.Now(),
		rec: Record{
			Trace:       trace,
			ID:          MintID(),
			Parent:      parent,
			Kind:        kind,
			Node:        st.node,
			StartUnixNS: time.Now().UnixNano(),
		},
	}
	return NewContext(ctx, sp), sp
}

// ID returns the span's ID ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.ID
}

// TraceID returns the span's trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Trace
}

// Attr sets one span attribute; the value is rendered with %v.
func (s *Span) Attr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[key] = fmt.Sprintf("%v", value)
}

// SetStatus marks the span's terminal status (ok, reject, error).
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.rec.Status = status
	}
}

// SetProvenance attaches the decision provenance explaining a reject.
func (s *Span) SetProvenance(p *Provenance) {
	if s == nil || p == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.rec.Provenance = p
	}
}

// End finishes the span and commits it to the store. Idempotent; only
// the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.DurationUS = time.Since(s.begun).Microseconds()
	if s.rec.Status == "" {
		s.rec.Status = StatusOK
	}
	rec := s.rec
	s.mu.Unlock()
	s.store.add(rec)
}

func (st *Store) add(rec Record) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.filled == st.cap {
		st.evicted++
	} else {
		st.filled++
	}
	st.buf[st.next] = rec
	st.next = (st.next + 1) % st.cap
	st.recorded++
}

// Trace returns every stored record with the given trace ID, ordered by
// start time. Nil-safe (returns nil).
func (st *Store) Trace(id string) []Record {
	if st == nil || id == "" {
		return nil
	}
	st.mu.Lock()
	var out []Record
	for i := 0; i < st.filled; i++ {
		idx := (st.next - st.filled + i + st.cap) % st.cap
		if st.buf[idx].Trace == id {
			out = append(out, st.buf[idx])
		}
	}
	st.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUnixNS < out[j].StartUnixNS })
	return out
}

// Snapshot returns every stored record, oldest first (span dumps).
func (st *Store) Snapshot() []Record {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Record, 0, st.filled)
	for i := 0; i < st.filled; i++ {
		out = append(out, st.buf[(st.next-st.filled+i+st.cap)%st.cap])
	}
	return out
}

// Stats is the store's accounting digest, surfaced in /v1/stats and the
// Prometheus exposition.
type Stats struct {
	Capacity int    `json:"capacity"`
	Live     int    `json:"live"`
	Recorded uint64 `json:"recorded"`
	Evicted  uint64 `json:"evicted"`
}

// Stats returns the store's accounting. Nil-safe (all zeros).
func (st *Store) Stats() Stats {
	if st == nil {
		return Stats{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{Capacity: st.cap, Live: st.filled, Recorded: st.recorded, Evicted: st.evicted}
}

// Inject sets the outgoing span-parent header from the context's live
// span (or its propagated remote parent), so the receiving node's spans
// parent onto this side of the call.
func Inject(ctx context.Context, h http.Header) {
	if sp := FromContext(ctx); sp != nil {
		h.Set(obs.HeaderSpanParent, sp.ID())
		return
	}
	if p := obs.SpanParent(ctx); p != "" {
		h.Set(obs.HeaderSpanParent, p)
	}
}

// Detach returns a fresh context carrying only the parent's trace and
// span identity — none of its deadline or cancellation. Fire-and-forget
// work (the cluster's detached aborts) runs under a Detach'd context so
// it survives the triggering request's cancellation yet still parents
// correctly in the span tree. This is the fix for the PR 3 abort paths,
// which detached with the trace ID alone and orphaned their spans.
func Detach(parent context.Context) context.Context {
	ctx := context.Background()
	if id := obs.Trace(parent); id != "" {
		ctx = obs.WithTrace(ctx, id)
	}
	if sp := FromContext(parent); sp != nil {
		ctx = NewContext(ctx, sp)
	} else if p := obs.SpanParent(parent); p != "" {
		ctx = obs.WithSpanParent(ctx, p)
	}
	return ctx
}
