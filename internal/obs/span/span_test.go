package span_test

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/trace"
)

func TestStartParentsOnContextSpan(t *testing.T) {
	st := span.NewStore(16, "n1")
	ctx := obs.WithTrace(context.Background(), "trace-1")
	ctx, root := st.Start(ctx, span.KindAdmit)
	root.Attr("job", "j1")
	ctx2, child := st.Start(ctx, span.KindPlan)
	_ = ctx2
	child.End()
	root.SetStatus(span.StatusReject)
	root.End()

	recs := st.Trace("trace-1")
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	byKind := map[string]span.Record{}
	for _, r := range recs {
		byKind[r.Kind] = r
	}
	if byKind[span.KindPlan].Parent != byKind[span.KindAdmit].ID {
		t.Errorf("plan span parent = %q, want admit span ID %q", byKind[span.KindPlan].Parent, byKind[span.KindAdmit].ID)
	}
	if byKind[span.KindAdmit].Parent != "" {
		t.Errorf("root span has parent %q", byKind[span.KindAdmit].Parent)
	}
	if byKind[span.KindAdmit].Attrs["job"] != "j1" {
		t.Errorf("attrs = %v", byKind[span.KindAdmit].Attrs)
	}
	if byKind[span.KindAdmit].Status != span.StatusReject {
		t.Errorf("status = %q", byKind[span.KindAdmit].Status)
	}
	if byKind[span.KindAdmit].Node != "n1" {
		t.Errorf("node = %q", byKind[span.KindAdmit].Node)
	}
}

func TestStartUsesRemoteParent(t *testing.T) {
	st := span.NewStore(16, "n2")
	ctx := obs.WithTrace(context.Background(), "trace-2")
	ctx = obs.WithSpanParent(ctx, "remote-span-id")
	_, sp := st.Start(ctx, span.KindPrepare)
	sp.End()
	recs := st.Trace("trace-2")
	if len(recs) != 1 || recs[0].Parent != "remote-span-id" {
		t.Fatalf("records = %+v, want single span with remote parent", recs)
	}
}

func TestStartMintsTraceWhenAbsent(t *testing.T) {
	st := span.NewStore(16, "n1")
	_, sp := st.Start(context.Background(), span.KindAdmit)
	if sp.TraceID() == "" {
		t.Fatal("span has no trace ID")
	}
	sp.End()
	if got := len(st.Trace(sp.TraceID())); got != 1 {
		t.Fatalf("got %d records", got)
	}
}

func TestNilStoreAndNilSpanAreSafe(t *testing.T) {
	var st *span.Store
	ctx, sp := st.Start(context.Background(), span.KindAdmit)
	if ctx == nil || sp != nil {
		t.Fatal("nil store must return unchanged ctx and nil span")
	}
	sp.Attr("k", "v")
	sp.SetStatus(span.StatusError)
	sp.SetProvenance(&span.Provenance{Stage: "x"})
	sp.End()
	if sp.ID() != "" || sp.TraceID() != "" {
		t.Fatal("nil span must return empty IDs")
	}
	if st.Trace("x") != nil || st.Snapshot() != nil {
		t.Fatal("nil store must return nil slices")
	}
	if st.Stats() != (span.Stats{}) {
		t.Fatal("nil store stats must be zero")
	}
	span.Inject(ctx, http.Header{}) // must not panic
}

func TestEndIsIdempotentAndSealsSpan(t *testing.T) {
	st := span.NewStore(16, "n1")
	ctx := obs.WithTrace(context.Background(), "t")
	_, sp := st.Start(ctx, span.KindAdmit)
	sp.End()
	sp.Attr("late", "x")
	sp.SetStatus(span.StatusError)
	sp.End()
	recs := st.Trace("t")
	if len(recs) != 1 {
		t.Fatalf("double End recorded %d spans", len(recs))
	}
	if recs[0].Attrs["late"] != "" || recs[0].Status != span.StatusOK {
		t.Errorf("mutation after End leaked into record: %+v", recs[0])
	}
}

func TestRingBufferEviction(t *testing.T) {
	st := span.NewStore(4, "n1")
	for i := 0; i < 10; i++ {
		ctx := obs.WithTrace(context.Background(), fmt.Sprintf("t%d", i))
		_, sp := st.Start(ctx, span.KindAdmit)
		sp.End()
	}
	stats := st.Stats()
	if stats.Capacity != 4 || stats.Live != 4 {
		t.Fatalf("stats = %+v, want capacity=4 live=4", stats)
	}
	if stats.Recorded != 10 || stats.Evicted != 6 {
		t.Fatalf("stats = %+v, want recorded=10 evicted=6", stats)
	}
	// Oldest six evicted: only t6..t9 remain.
	if st.Trace("t5") != nil {
		t.Error("evicted trace t5 still present")
	}
	if len(st.Trace("t9")) != 1 {
		t.Error("latest trace t9 missing")
	}
	if got := len(st.Snapshot()); got != 4 {
		t.Errorf("snapshot has %d records", got)
	}
}

func TestInjectSetsHeaderFromLiveSpan(t *testing.T) {
	st := span.NewStore(16, "n1")
	ctx, sp := st.Start(obs.WithTrace(context.Background(), "t"), span.KindRPC)
	h := http.Header{}
	span.Inject(ctx, h)
	if h.Get(obs.HeaderSpanParent) != sp.ID() {
		t.Fatalf("header = %q, want %q", h.Get(obs.HeaderSpanParent), sp.ID())
	}
	// With no live span but a propagated remote parent, forward that.
	h2 := http.Header{}
	span.Inject(obs.WithSpanParent(context.Background(), "upstream"), h2)
	if h2.Get(obs.HeaderSpanParent) != "upstream" {
		t.Fatalf("header = %q, want upstream", h2.Get(obs.HeaderSpanParent))
	}
}

func TestDetachCarriesTraceAndSpan(t *testing.T) {
	st := span.NewStore(16, "n1")
	base, cancel := context.WithCancel(obs.WithTrace(context.Background(), "t-detach"))
	ctx, sp := st.Start(base, span.KindMigrate)
	det := span.Detach(ctx)
	cancel()
	if det.Err() != nil {
		t.Fatal("detached context inherited cancellation")
	}
	if obs.Trace(det) != "t-detach" {
		t.Fatalf("detached trace = %q", obs.Trace(det))
	}
	_, child := st.Start(det, span.KindAbort)
	child.End()
	sp.End()
	byKind := map[string]span.Record{}
	for _, r := range st.Trace("t-detach") {
		byKind[r.Kind] = r
	}
	if byKind[span.KindAbort].Parent != byKind[span.KindMigrate].ID {
		t.Fatalf("abort span parent = %q, want migrate span ID %q",
			byKind[span.KindAbort].Parent, byKind[span.KindMigrate].ID)
	}

	// Remote-parent-only contexts must keep the parent too.
	det2 := span.Detach(obs.WithSpanParent(obs.WithTrace(context.Background(), "t2"), "up"))
	if obs.SpanParent(det2) != "up" {
		t.Fatalf("detached remote parent = %q", obs.SpanParent(det2))
	}
}

// TestStoreConcurrency is the -race coverage the satellite asks for:
// parallel writers pushing through eviction while readers pull trace
// queries, snapshots and stats.
func TestStoreConcurrency(t *testing.T) {
	st := span.NewStore(64, "n1")
	const writers, perWriter, readers = 8, 200, 4
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				ctx := obs.WithTrace(context.Background(), fmt.Sprintf("t%d", w))
				ctx, root := st.Start(ctx, span.KindAdmit)
				root.Attr("job", fmt.Sprintf("j%d-%d", w, i))
				_, child := st.Start(ctx, span.KindPlan)
				child.SetStatus(span.StatusReject)
				child.SetProvenance(span.Classify("deadline 5 already passed at t=9"))
				child.End()
				root.End()
			}
		}(w)
	}
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = st.Trace(fmt.Sprintf("t%d", r%writers))
				_ = st.Snapshot()
				_ = st.Stats()
			}
		}(r)
	}
	writerWG.Wait()
	close(done)
	readerWG.Wait()

	stats := st.Stats()
	want := uint64(writers * perWriter * 2)
	if stats.Recorded != want {
		t.Fatalf("recorded %d spans, want %d", stats.Recorded, want)
	}
	if stats.Live != 64 || stats.Evicted != want-64 {
		t.Fatalf("stats = %+v, want live=64 evicted=%d", stats, want-64)
	}
}

func TestClassifyProvenance(t *testing.T) {
	cases := []struct {
		reason                          string
		stage, constraint, term, window string
	}{
		{"deadline 40 already passed at t=55", "validate", "deadline", "", ""},
		{"no witness schedule: schedule: infeasible: actor a1 phase 0 needs 2000 of cpu@l3 in (12,40)", "plan", "witness", "cpu@l3", "(12,40)"},
		{"no witness schedule: schedule: infeasible: no actor ordering of 24 tried succeeded", "plan", "ordering", "", ""},
		{"server: demand exceeds free availability: shard l2 cannot hold prepare p1 for j1", "capacity", "free-view", "l2", ""},
		{"server: location not owned by this node: l9", "validate", "ownership", "l9", ""},
		{"something novel", "other", "other", "", ""},
	}
	for _, c := range cases {
		p := span.Classify(c.reason)
		if p == nil {
			t.Fatalf("Classify(%q) = nil", c.reason)
		}
		if p.Stage != c.stage || p.Constraint != c.constraint || p.Term != c.term || p.Window != c.window {
			t.Errorf("Classify(%q) = %+v, want stage=%s constraint=%s term=%s window=%s",
				c.reason, p, c.stage, c.constraint, c.term, c.window)
		}
		if p.Detail != c.reason {
			t.Errorf("Classify(%q).Detail = %q", c.reason, p.Detail)
		}
	}
	if span.Classify("") != nil {
		t.Error("Classify(\"\") must be nil")
	}
}

func TestKindRegistryComplete(t *testing.T) {
	kinds := span.Kinds()
	if len(kinds) == 0 {
		t.Fatal("no kinds registered")
	}
	for _, ks := range kinds {
		if ks.Doc == "" {
			t.Errorf("kind %q has no documentation", ks.Name)
		}
		for attr, doc := range ks.Attrs {
			if doc == "" {
				t.Errorf("kind %q attr %q has no documentation", ks.Name, attr)
			}
		}
	}
	if _, ok := span.LookupKind(span.KindAdmit); !ok {
		t.Error("admit kind not registered")
	}
	if _, ok := span.LookupKind("bogus"); ok {
		t.Error("bogus kind registered")
	}
}

func TestBuildTreeAndCriticalPath(t *testing.T) {
	// admit(0-100us) -> plan(10-40), reserve(50-95 -> the critical child)
	rs := []span.Record{
		{Trace: "t", ID: "a", Kind: span.KindAdmit, StartUnixNS: 0, DurationUS: 100},
		{Trace: "t", ID: "b", Parent: "a", Kind: span.KindPlan, StartUnixNS: 10_000, DurationUS: 30},
		{Trace: "t", ID: "c", Parent: "a", Kind: span.KindReserve, StartUnixNS: 50_000, DurationUS: 45},
		{Trace: "t", ID: "d", Parent: "c", Kind: span.KindRPC, StartUnixNS: 60_000, DurationUS: 20},
	}
	tree := span.BuildTree("t", rs)
	if !tree.Connected() {
		t.Fatalf("tree not connected: %d roots, %d orphans", len(tree.Roots), tree.Orphans)
	}
	path := tree.CriticalPath()
	var kinds []string
	for _, n := range path {
		kinds = append(kinds, n.Kind)
	}
	want := []string{span.KindAdmit, span.KindReserve, span.KindRPC}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("critical path = %v, want %v", kinds, want)
	}
	breakdown := tree.PhaseBreakdown()
	if breakdown[span.KindAdmit] != 100 || breakdown[span.KindPlan] != 30 {
		t.Fatalf("breakdown = %v", breakdown)
	}

	var b strings.Builder
	tree.WriteFolded(&b)
	folded := b.String()
	// admit self = 100 - 30 - 45 = 25; reserve self = 45 - 20 = 25.
	if !strings.Contains(folded, "admit 25") {
		t.Errorf("folded output missing admit self time:\n%s", folded)
	}
	if !strings.Contains(folded, "admit;reserve;rpc 20") {
		t.Errorf("folded output missing nested stack:\n%s", folded)
	}
}

func TestBuildTreeDisconnected(t *testing.T) {
	rs := []span.Record{
		{Trace: "t", ID: "a", Kind: span.KindAdmit},
		{Trace: "t", ID: "b", Parent: "missing", Kind: span.KindAbort},
	}
	tree := span.BuildTree("t", rs)
	if tree.Connected() {
		t.Fatal("tree with a missing parent must not be connected")
	}
	if tree.Orphans != 1 || len(tree.Roots) != 2 {
		t.Fatalf("roots=%d orphans=%d", len(tree.Roots), tree.Orphans)
	}
}

func TestBridgeSimTrace(t *testing.T) {
	log := trace.NewLog()
	log.Add(trace.Event{At: 0, Kind: trace.KindArrival, Job: "j1"})
	log.Add(trace.Event{At: 2, Kind: trace.KindAdmit, Job: "j1"})
	log.Add(trace.Event{At: 9, Kind: trace.KindComplete, Job: "j1"})
	log.Add(trace.Event{At: 1, Kind: trace.KindArrival, Job: "j2"})
	log.Add(trace.Event{At: 1, Kind: trace.KindReject, Job: "j2", Detail: "deadline 3 already passed at t=4"})
	log.Add(trace.Event{At: 5, Kind: trace.KindRenege, Quantity: 2})

	recs := span.Bridge(log)
	trees := span.BuildTrees(recs)
	byTrace := map[string]*span.Tree{}
	for _, tr := range trees {
		byTrace[tr.Trace] = tr
	}
	j1 := byTrace["sim-j1"]
	if j1 == nil || !j1.Connected() || j1.Spans != 4 {
		t.Fatalf("sim-j1 tree = %+v", j1)
	}
	if j1.Roots[0].Kind != span.KindSimJob || j1.Roots[0].Attrs["outcome"] != string(trace.KindComplete) {
		t.Fatalf("sim-j1 root = %+v", j1.Roots[0].Record)
	}
	j2 := byTrace["sim-j2"]
	if j2 == nil || j2.Roots[0].Provenance == nil {
		t.Fatal("rejected sim job lost its provenance")
	}
	if j2.Roots[0].Provenance.Constraint != "deadline" {
		t.Fatalf("sim reject provenance = %+v", j2.Roots[0].Provenance)
	}
}
