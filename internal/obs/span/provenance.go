package span

import "regexp"

// Provenance is the structured explanation of a rejection: which stage
// of the admission pipeline said no, which constraint it applied, and —
// when the reason names one — the resource term and interval window
// that failed. It is attached to the terminal span of a rejected
// request and surfaced verbatim in the /v1/admit JSON response, so a
// caller never has to parse prose to learn why a job was refused.
type Provenance struct {
	// Stage is the pipeline phase that produced the rejection:
	// validate, plan, capacity, or other.
	Stage string `json:"stage"`
	// Constraint names the violated rule within the stage: deadline,
	// witness (no feasible schedule), ordering (permutation budget
	// exhausted), ownership, or capacity.
	Constraint string `json:"constraint"`
	// Term is the resource term that could not be satisfied, rendered
	// as the ledger renders it (e.g. "cpu@l3"), when the reason names one.
	Term string `json:"term,omitempty"`
	// Window is the interval the term was needed in, e.g. "(12,40)".
	Window string `json:"window,omitempty"`
	// Node is the cluster node whose free view failed the request —
	// filled by the coordinator when a participant rejects.
	Node string `json:"node,omitempty"`
	// Detail is the original human-readable reason.
	Detail string `json:"detail"`
}

// The reject-reason shapes the pipeline produces today. Classify keys
// on these; an unrecognized reason still yields a non-empty Provenance
// with Stage "other" so rejects are never unexplained.
var (
	// server/ledger.go: "deadline %d already passed at t=%d"
	reDeadline = regexp.MustCompile(`deadline (-?\d+) already passed at t=(-?\d+)`)
	// schedule.go via admission: "... infeasible: actor %s phase %d needs %v of %v in (a,b)"
	reWitness = regexp.MustCompile(`infeasible: actor (\S+) phase (\d+) needs (\S+) of (\S+) in (\([^)]*\))`)
	// schedule.go: "... infeasible: no actor ordering of %d tried succeeded"
	reOrdering = regexp.MustCompile(`infeasible: no actor ordering of \d+ tried succeeded`)
	// twophase.go: ErrOvercommit wrapped as "...: shard %s cannot hold prepare %s for %s"
	reOvercommit = regexp.MustCompile(`demand exceeds free availability(?:: shard (\S+) cannot hold prepare \S+ for \S+)?`)
	// ledger.go: ErrNotOwned wrapped as "server: location not owned by this node: %s"
	reNotOwned = regexp.MustCompile(`location not owned by this node(?:: (\S+))?`)
)

// Classify parses a reject reason string into structured provenance.
// Returns nil only for an empty reason.
func Classify(reason string) *Provenance {
	if reason == "" {
		return nil
	}
	p := &Provenance{Detail: reason}
	switch {
	case reDeadline.MatchString(reason):
		p.Stage, p.Constraint = "validate", "deadline"
	case reWitness.MatchString(reason):
		m := reWitness.FindStringSubmatch(reason)
		p.Stage, p.Constraint = "plan", "witness"
		p.Term = m[4]
		p.Window = m[5]
	case reOrdering.MatchString(reason):
		p.Stage, p.Constraint = "plan", "ordering"
	case reOvercommit.MatchString(reason):
		m := reOvercommit.FindStringSubmatch(reason)
		p.Stage, p.Constraint = "capacity", "free-view"
		p.Term = m[1] // the shard location, when named
	case reNotOwned.MatchString(reason):
		m := reNotOwned.FindStringSubmatch(reason)
		p.Stage, p.Constraint = "validate", "ownership"
		p.Term = m[1]
	default:
		p.Stage, p.Constraint = "other", "other"
	}
	return p
}
