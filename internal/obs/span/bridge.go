package span

import (
	"fmt"

	"repro/internal/trace"
)

// Bridge converts a simulator JSONL trace into span records so one tool
// (rotatrace -spans) analyses simulator runs and live-daemon runs with
// the same tree / critical-path / folded-stack machinery.
//
// Each job becomes one synthetic trace "sim-<job>" rooted at a sim.job
// span covering arrival through its terminal event; every event the job
// produced becomes a zero-parent-overlap sim.event child. Simulated
// ticks are mapped to a synthetic wall clock at 1ms per tick, so
// relative durations in the rendered tree mirror simulated time.
// Reject details run through Classify, so simulated rejections carry
// the same structured provenance live ones do.
func Bridge(log *trace.Log) []Record {
	const tickNS = int64(1_000_000) // 1 simulated tick -> 1ms synthetic wall time
	if log == nil {
		return nil
	}
	events := log.Events()

	type jobAgg struct {
		first, last trace.Event
		events      []trace.Event
		outcome     trace.Kind
	}
	jobs := map[string]*jobAgg{}
	order := []string{}
	var out []Record

	solo := 0
	for _, e := range events {
		if e.Job == "" {
			// Resource join/renege events have no job; emit them as
			// standalone single-span traces so they still show up. The
			// counter keeps same-tick events in distinct traces.
			id := fmt.Sprintf("sim-%s-%d-%d", e.Kind, e.At, solo)
			solo++
			out = append(out, Record{
				Trace:       id,
				ID:          MintID(),
				Kind:        KindSimEvent,
				Node:        "sim",
				StartUnixNS: int64(e.At) * tickNS,
				Attrs:       eventAttrs(e),
				Status:      StatusOK,
			})
			continue
		}
		agg, ok := jobs[e.Job]
		if !ok {
			agg = &jobAgg{first: e}
			jobs[e.Job] = agg
			order = append(order, e.Job)
		}
		agg.last = e
		agg.events = append(agg.events, e)
		switch e.Kind {
		case trace.KindAdmit, trace.KindReject, trace.KindComplete, trace.KindMiss, trace.KindRenege:
			agg.outcome = e.Kind
		}
	}

	for _, job := range order {
		agg := jobs[job]
		traceID := "sim-" + job
		rootID := MintID()
		span := int64(agg.last.At-agg.first.At) * tickNS
		root := Record{
			Trace:       traceID,
			ID:          rootID,
			Kind:        KindSimJob,
			Node:        "sim",
			StartUnixNS: int64(agg.first.At) * tickNS,
			DurationUS:  span / 1000,
			Attrs:       map[string]string{"job": job, "outcome": string(agg.outcome)},
			Status:      StatusOK,
		}
		for _, e := range agg.events {
			rec := Record{
				Trace:       traceID,
				ID:          MintID(),
				Parent:      rootID,
				Kind:        KindSimEvent,
				Node:        "sim",
				StartUnixNS: int64(e.At) * tickNS,
				Attrs:       eventAttrs(e),
				Status:      StatusOK,
			}
			switch e.Kind {
			case trace.KindReject:
				rec.Status = StatusReject
				rec.Provenance = Classify(e.Detail)
			case trace.KindMiss, trace.KindViolation:
				rec.Status = StatusError
			}
			if rec.Provenance != nil {
				root.Status = StatusReject
				root.Provenance = rec.Provenance
			}
			out = append(out, rec)
		}
		out = append(out, root)
	}
	return out
}

func eventAttrs(e trace.Event) map[string]string {
	attrs := map[string]string{"event": string(e.Kind)}
	if e.Detail != "" {
		attrs["detail"] = e.Detail
	}
	if e.Quantity != 0 {
		attrs["qty"] = fmt.Sprintf("%d", e.Quantity)
	}
	return attrs
}
