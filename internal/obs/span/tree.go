package span

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TreeNode is one span in a reconstructed trace tree.
type TreeNode struct {
	Record
	Children []*TreeNode
}

// Tree is the reconstruction of one trace from its (possibly
// multi-node) span records.
type Tree struct {
	Trace string
	// Roots are the spans with no parent present in the record set. A
	// fully propagated trace has exactly one; more than one means the
	// trace is disconnected (a propagation bug, or records evicted).
	Roots []*TreeNode
	// Orphans are non-root spans whose parent ID is set but missing
	// from the record set; they are grafted under Roots for rendering
	// but counted separately so connectivity checks can fail loudly.
	Orphans int
	Spans   int
}

// BuildTrees groups records by trace ID and reconstructs each tree,
// merging records collected from any number of nodes. Trees are
// returned sorted by earliest start.
func BuildTrees(records []Record) []*Tree {
	byTrace := map[string][]Record{}
	for _, r := range records {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	out := make([]*Tree, 0, len(byTrace))
	for id, recs := range byTrace {
		out = append(out, buildOne(id, recs))
	}
	sort.Slice(out, func(i, j int) bool {
		return earliest(out[i]) < earliest(out[j])
	})
	return out
}

// BuildTree reconstructs a single trace's tree from its records.
func BuildTree(trace string, records []Record) *Tree {
	recs := records[:0:0]
	for _, r := range records {
		if r.Trace == trace {
			recs = append(recs, r)
		}
	}
	return buildOne(trace, recs)
}

func buildOne(trace string, recs []Record) *Tree {
	nodes := make(map[string]*TreeNode, len(recs))
	for _, r := range recs {
		// Duplicate IDs (a re-fetched dump merged twice) keep the first.
		if _, dup := nodes[r.ID]; !dup {
			nodes[r.ID] = &TreeNode{Record: r}
		}
	}
	t := &Tree{Trace: trace, Spans: len(nodes)}
	for _, n := range nodes {
		if n.Parent == "" {
			t.Roots = append(t.Roots, n)
			continue
		}
		if p, ok := nodes[n.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			t.Orphans++
			t.Roots = append(t.Roots, n)
		}
	}
	var sortKids func(n *TreeNode)
	sortKids = func(n *TreeNode) {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].StartUnixNS < n.Children[j].StartUnixNS
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sort.Slice(t.Roots, func(i, j int) bool { return t.Roots[i].StartUnixNS < t.Roots[j].StartUnixNS })
	for _, r := range t.Roots {
		sortKids(r)
	}
	return t
}

// Connected reports whether the tree is one fully connected span tree:
// a single root and no orphaned parents.
func (t *Tree) Connected() bool { return len(t.Roots) == 1 && t.Orphans == 0 }

func earliest(t *Tree) int64 {
	if len(t.Roots) == 0 {
		return 0
	}
	return t.Roots[0].StartUnixNS
}

// CriticalPath walks from the root into the child that finishes last at
// each level — the chain of spans that bounded the request's latency.
// Returns the path root-first.
func (t *Tree) CriticalPath() []*TreeNode {
	if len(t.Roots) == 0 {
		return nil
	}
	// Start from the latest-finishing root (the terminal span when the
	// tree is connected).
	cur := t.Roots[0]
	for _, r := range t.Roots[1:] {
		if r.End() > cur.End() {
			cur = r
		}
	}
	path := []*TreeNode{cur}
	for len(cur.Children) > 0 {
		next := cur.Children[0]
		for _, c := range cur.Children[1:] {
			if c.End() > next.End() {
				next = c
			}
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// SelfUS returns the span's self time: its duration minus the sum of
// its children's durations, clamped at zero (children of a span that
// ran them concurrently can sum past the parent).
func (n *TreeNode) SelfUS() int64 {
	self := n.DurationUS
	for _, c := range n.Children {
		self -= c.DurationUS
	}
	if self < 0 {
		self = 0
	}
	return self
}

// PhaseBreakdown sums span durations by kind across the whole tree —
// the per-phase latency decomposition rotatrace prints.
func (t *Tree) PhaseBreakdown() map[string]int64 {
	out := map[string]int64{}
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		out[n.Kind] += n.DurationUS
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

func frame(n *TreeNode) string {
	if n.Node != "" {
		return n.Node + ":" + n.Kind
	}
	return n.Kind
}

// WriteTree renders the tree as an indented text outline with per-span
// durations, statuses and key attributes.
func (t *Tree) WriteTree(w io.Writer) {
	fmt.Fprintf(w, "trace %s  (%d spans", t.Trace, t.Spans)
	if !t.Connected() {
		fmt.Fprintf(w, ", %d roots, %d orphans — DISCONNECTED", len(t.Roots), t.Orphans)
	}
	fmt.Fprintln(w, ")")
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		fmt.Fprintf(w, "%s%-12s %8dus  %s", strings.Repeat("  ", depth+1), frame(n), n.DurationUS, n.Status)
		if job := n.Attrs["job"]; job != "" {
			fmt.Fprintf(w, "  job=%s", job)
		}
		if n.Provenance != nil {
			fmt.Fprintf(w, "  [%s/%s", n.Provenance.Stage, n.Provenance.Constraint)
			if n.Provenance.Term != "" {
				fmt.Fprintf(w, " term=%s", n.Provenance.Term)
			}
			if n.Provenance.Window != "" {
				fmt.Fprintf(w, " window=%s", n.Provenance.Window)
			}
			fmt.Fprint(w, "]")
		}
		fmt.Fprintln(w)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
}

// WriteFolded emits the tree as flamegraph folded stacks: one line per
// span, semicolon-joined ancestry, self time (µs) as the sample value.
// Feed the output straight to flamegraph.pl.
func (t *Tree) WriteFolded(w io.Writer) {
	var walk func(n *TreeNode, stack []string)
	walk = func(n *TreeNode, stack []string) {
		stack = append(stack, frame(n))
		if self := n.SelfUS(); self > 0 {
			fmt.Fprintf(w, "%s %d\n", strings.Join(stack, ";"), self)
		}
		for _, c := range n.Children {
			walk(c, stack)
		}
	}
	for _, r := range t.Roots {
		walk(r, nil)
	}
}
