// Package assure closes the loop on deadline assurance: it records,
// per admitted job, the promise the admission controller made (the
// witness plan finishes by Finish, Finish ≤ Deadline) and tracks that
// promise through the job's whole lifecycle — reserve, 2PC commit,
// migration, handoff, standby promotion — until a terminal outcome is
// known. Every promise ends in exactly one of:
//
//	kept              the work completed (or was released) inside its window
//	violated          the deadline passed while the job was still live here
//	orphaned          the deadline passed with nobody holding the job
//	evicted-with-job  this node was fenced out of the cluster while holding it
//
// plus the non-terminal disposition `transferred` (the promise moved to
// another node, which now reports it). Transferred promises are excluded
// from attainment denominators so cluster-wide totals are a plain sum of
// per-node reports.
//
// In the paper's temporal terms: admission proves ◇(done ∧ now ≤ d)
// under the witness plan; the ledger here checks, after the fact, that
// □(admitted → ◇≤d done) actually held for every admitted job. Healthy
// code paths cannot produce `violated` — Advance completes every
// commitment at its plan finish, which admission bounded by the
// deadline — so a nonzero violation count always indicates a bug or an
// unmodeled failure, which is exactly what makes it worth alerting on.
package assure

import (
	"sort"
	"sync"
	"time"

	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
)

// Promise states. Terminal states are counted toward attainment;
// StateTransferred is a disposition (another node now owns the
// promise); StateActive means the window is still open here.
const (
	StateActive      = "active"
	StateKept        = "kept"
	StateViolated    = "violated"
	StateOrphaned    = "orphaned"
	StateEvicted     = "evicted-with-job"
	StateTransferred = "transferred"
)

// Promise is one deadline-assurance record: what was promised at
// admission and, once known, how it turned out.
type Promise struct {
	Job      string        `json:"job"`
	Node     string        `json:"node,omitempty"`
	Admitted interval.Time `json:"admitted"`
	// Finish is the witness plan's completion time at admission (or the
	// latest finish merged in across adoptions).
	Finish   interval.Time `json:"finish"`
	Deadline interval.Time `json:"deadline"`
	// SlackAtAdmit = Deadline - Finish: how much margin the admission
	// proof left. Zero-slack admits are the first to go wrong.
	SlackAtAdmit interval.Time       `json:"slack_at_admit"`
	Epoch        uint64              `json:"epoch"`
	Locations    []resource.Location `json:"locations,omitempty"`
	State        string              `json:"state"`
	// ResolvedAt and SlackAtCompletion are set on terminal outcomes:
	// SlackAtCompletion = Deadline - completion time (negative when
	// violated).
	ResolvedAt        interval.Time `json:"resolved_at,omitempty"`
	SlackAtCompletion interval.Time `json:"slack_at_completion,omitempty"`
	// Adopted marks promises that arrived via 2PC commit, handoff import
	// or standby promotion rather than local admission.
	Adopted bool `json:"adopted,omitempty"`
}

// SlackDigest is the JSON shape of a slack histogram on /v1/stats.
type SlackDigest struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func digest(s metrics.HistogramSummary) SlackDigest {
	return SlackDigest{Count: s.Count, Mean: s.Mean, Min: s.Min, Max: s.Max,
		P50: s.P50, P90: s.P90, P99: s.P99}
}

// Stats is the counter block surfaced under /v1/stats "assure".
type Stats struct {
	Active         uint64 `json:"promises_active"`
	Kept           uint64 `json:"promises_kept"`
	Violated       uint64 `json:"promises_violated"`
	Orphaned       uint64 `json:"promises_orphaned"`
	EvictedWithJob uint64 `json:"promises_evicted_with_job"`
	Transferred    uint64 `json:"promises_transferred"`
	// Attainment = kept / terminal outcomes (1.0 while nothing terminal
	// has happened). Transferred promises are someone else's to report.
	Attainment float64 `json:"slo_attainment"`
	// BurnRate is violations per minute over the trailing 60 seconds of
	// wall time.
	BurnRate        float64     `json:"violation_burn_rate"`
	SlackAdmit      SlackDigest `json:"slack_at_admit_ticks"`
	SlackCompletion SlackDigest `json:"slack_at_completion_ticks"`
}

// LocationOutcomes is per-location SLO attainment: a promise whose
// footprint touched a location counts its outcome there.
type LocationOutcomes struct {
	Kept       uint64  `json:"kept"`
	Violated   uint64  `json:"violated"`
	Other      uint64  `json:"other"`
	Attainment float64 `json:"attainment"`
}

// Report is the GET /v1/assure payload for one node.
type Report struct {
	Node      string                      `json:"node,omitempty"`
	Stats     Stats                       `json:"stats"`
	Locations map[string]LocationOutcomes `json:"locations,omitempty"`
	// Recent holds the newest resolved promises, newest first.
	Recent []Promise `json:"recent,omitempty"`
	// Anomalies holds recent violated/orphaned promises, newest first.
	Anomalies []Promise `json:"anomalies,omitempty"`
}

const (
	recentCap    = 256
	burnBuckets  = 60
	reportRecent = 32
)

type locCounts struct {
	kept, violated, other uint64
}

// activeEntry is the in-ledger form of an open promise. It deliberately
// drops every field derivable from context — Job (the map key), Node
// (the ledger's own), State (open promises are active by definition),
// SlackAtAdmit (Deadline − Finish) — so the only pointer the GC has to
// trace per live promise is the footprint slice. A loaded node holds
// one of these per live commitment; see the comment on Ledger.active.
type activeEntry struct {
	Admitted, Finish, Deadline interval.Time
	Epoch                      uint64
	Locations                  []resource.Location
	Adopted                    bool
}

// Ledger is the promise ledger. All methods are safe on a nil receiver
// (tracking disabled) and safe for concurrent use.
type Ledger struct {
	node  string
	nowFn func() time.Time

	slackAdmit *metrics.Histogram
	slackDone  *metrics.Histogram

	mu sync.Mutex
	// active stores compact entries by value: a loaded node carries one
	// live promise per live commitment, and individually boxed promises
	// would make the GC chase that many extra objects on every mark
	// cycle — measurably slowing the admit hot path, whose allocation
	// rate keeps the collector busy. As inline values they cost one
	// bucket scan, and the key strings share their backing arrays with
	// the commitment names the server ledger already keeps live.
	active map[string]activeEntry
	recent []Promise // ring, newest at (head-1+cap)%cap
	head   int
	full   bool

	kept, violated, orphaned, evicted, transferred uint64

	perLoc map[resource.Location]*locCounts

	// burn[i] counts violations during unix second burnAt[i].
	burn   [burnBuckets]uint64
	burnAt [burnBuckets]int64
}

// New builds a promise ledger reporting as node.
func New(node string) *Ledger {
	return &Ledger{
		node:       node,
		nowFn:      time.Now,
		slackAdmit: metrics.NewHistogram(),
		slackDone:  metrics.NewHistogram(),
		active:     make(map[string]activeEntry),
		recent:     make([]Promise, recentCap),
		perLoc:     make(map[resource.Location]*locCounts),
	}
}

// SetNow overrides the wall clock used for the violation burn rate
// (tests only).
func (l *Ledger) SetNow(now func() time.Time) {
	if l == nil {
		return
	}
	l.nowFn = now
}

// Reserve records the promise made by a local admission: the witness
// plan finishes at finish ≤ deadline, reserved at ledger epoch `epoch`
// across locs. Overwrites any stale active promise for the same job.
func (l *Ledger) Reserve(job string, admitted, finish, deadline interval.Time, epoch uint64, locs []resource.Location) {
	if l == nil {
		return
	}
	l.slackAdmit.Observe(float64(deadline - finish))
	e := activeEntry{
		Admitted: admitted, Finish: finish, Deadline: deadline,
		Epoch: epoch, Locations: locs,
	}
	l.mu.Lock()
	l.active[job] = e
	l.mu.Unlock()
}

// Adopt records a promise that arrived from elsewhere: a 2PC commit on
// a participant, a handoff import, or a standby promotion. The promise
// must survive the job changing owners, so adopting an already-active
// job merges footprints and keeps the wider window instead of
// double-counting. Adoption does not re-observe slack-at-admit — the
// promise was made once, where the job was admitted.
func (l *Ledger) Adopt(job string, admitted, finish, deadline interval.Time, epoch uint64, locs []resource.Location) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.active[job]; ok {
		if finish > e.Finish {
			e.Finish = finish
		}
		if deadline > e.Deadline {
			e.Deadline = deadline
		}
		e.Locations = mergeLocs(e.Locations, locs)
		l.active[job] = e
		return
	}
	l.active[job] = activeEntry{
		Admitted: admitted, Finish: finish, Deadline: deadline,
		Epoch: epoch, Locations: locs, Adopted: true,
	}
}

// promiseOf materializes the full Promise record for an open entry.
func (l *Ledger) promiseOf(job string, e activeEntry) Promise {
	return Promise{
		Job: job, Node: l.node,
		Admitted: e.Admitted, Finish: e.Finish, Deadline: e.Deadline,
		SlackAtAdmit: e.Deadline - e.Finish,
		Epoch:        e.Epoch, Locations: e.Locations, State: StateActive,
		Adopted: e.Adopted,
	}
}

func mergeLocs(a, b []resource.Location) []resource.Location {
	out := append([]resource.Location(nil), a...)
	for _, loc := range b {
		seen := false
		for _, have := range out {
			if have == loc {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, loc)
		}
	}
	return out
}

// Release resolves a promise because the job was explicitly released at
// tick now: kept when the deadline had not yet passed, violated when it
// had. Returns the terminal state, or "" when no promise was active.
func (l *Ledger) Release(job string, now interval.Time) string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	e, ok := l.active[job]
	if !ok {
		l.mu.Unlock()
		return ""
	}
	state := StateKept
	if now > e.Deadline {
		state = StateViolated
	}
	l.resolveLocked(job, e, state, now)
	l.mu.Unlock()
	l.slackDone.Observe(float64(e.Deadline - now))
	return state
}

// Complete resolves a promise kept because the ledger clock advanced
// past the plan's finish — the reservation ran its promised course.
// Slack at completion is measured at the plan finish, not the sweep
// tick, so a late Advance doesn't understate margins.
func (l *Ledger) Complete(job string, now interval.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	e, ok := l.active[job]
	if !ok {
		l.mu.Unlock()
		return
	}
	done := e.Finish
	if now < done {
		done = now
	}
	l.resolveLocked(job, e, StateKept, done)
	l.mu.Unlock()
	l.slackDone.Observe(float64(e.Deadline - done))
}

// Transfer marks a promise as handed to another node (migration or
// handoff drained this node's share of the footprint). The receiving
// node Adopts it; this node stops counting it toward attainment.
func (l *Ledger) Transfer(job string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.active[job]
	if !ok {
		return
	}
	l.resolveLocked(job, e, StateTransferred, e.Deadline)
}

// Drop forgets an active promise without classifying it — for rollback
// paths (a late decision undone, a 2PC abort of a just-committed key)
// where the admission itself is being unwound.
func (l *Ledger) Drop(job string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	delete(l.active, job)
	l.mu.Unlock()
}

// Sweep resolves every active promise whose deadline has passed at tick
// now: violated when the job is still live (the system failed the
// window while holding the work), orphaned when nobody holds it any
// more. Returns the violated and orphaned job names for alerting.
func (l *Ledger) Sweep(now interval.Time, live func(job string) bool) (violated, orphaned []string) {
	if l == nil {
		return nil, nil
	}
	l.mu.Lock()
	for job, e := range l.active {
		if e.Deadline >= now {
			continue
		}
		if live != nil && live(job) {
			l.resolveLocked(job, e, StateViolated, now)
			violated = append(violated, job)
		} else {
			l.resolveLocked(job, e, StateOrphaned, now)
			orphaned = append(orphaned, job)
		}
	}
	l.mu.Unlock()
	sort.Strings(violated)
	sort.Strings(orphaned)
	return violated, orphaned
}

// EvictAll resolves every active promise as evicted-with-job — this
// node was fenced out of the cluster while holding work. The standbys'
// shadow copies become the authoritative promises via Adopt.
func (l *Ledger) EvictAll(now interval.Time) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.active)
	for job, e := range l.active {
		l.resolveLocked(job, e, StateEvicted, now)
	}
	return n
}

// resolveLocked moves job's entry out of active into the resolved ring
// and bumps the outcome counters. Caller holds l.mu.
func (l *Ledger) resolveLocked(job string, e activeEntry, state string, at interval.Time) {
	delete(l.active, job)
	p := l.promiseOf(job, e)
	p.State = state
	p.ResolvedAt = at
	p.SlackAtCompletion = p.Deadline - at
	switch state {
	case StateKept:
		l.kept++
	case StateViolated:
		l.violated++
		l.burnLocked()
	case StateOrphaned:
		l.orphaned++
	case StateEvicted:
		l.evicted++
	case StateTransferred:
		l.transferred++
	}
	if state != StateTransferred {
		for _, loc := range p.Locations {
			lc := l.perLoc[loc]
			if lc == nil {
				lc = &locCounts{}
				l.perLoc[loc] = lc
			}
			switch state {
			case StateKept:
				lc.kept++
			case StateViolated:
				lc.violated++
			default:
				lc.other++
			}
		}
	}
	l.recent[l.head] = p
	l.head = (l.head + 1) % recentCap
	if l.head == 0 {
		l.full = true
	}
}

func (l *Ledger) burnLocked() {
	sec := l.nowFn().Unix()
	i := int(sec % burnBuckets)
	if l.burnAt[i] != sec {
		l.burnAt[i] = sec
		l.burn[i] = 0
	}
	l.burn[i]++
}

func (l *Ledger) burnRateLocked() float64 {
	sec := l.nowFn().Unix()
	var total uint64
	for i := range l.burn {
		if sec-l.burnAt[i] < burnBuckets {
			total += l.burn[i]
		}
	}
	return float64(total)
}

// Lookup returns the current view of one job's promise: the active one
// if the window is still open, else the newest resolved record.
func (l *Ledger) Lookup(job string) (Promise, bool) {
	if l == nil {
		return Promise{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.active[job]; ok {
		return l.promiseOf(job, e), true
	}
	n := recentCap
	if !l.full {
		n = l.head
	}
	for k := 1; k <= n; k++ {
		i := (l.head - k + recentCap) % recentCap
		if l.recent[i].Job == job {
			return l.recent[i], true
		}
	}
	return Promise{}, false
}

// Stats digests the counters.
func (l *Ledger) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	st := Stats{
		Active:         uint64(len(l.active)),
		Kept:           l.kept,
		Violated:       l.violated,
		Orphaned:       l.orphaned,
		EvictedWithJob: l.evicted,
		Transferred:    l.transferred,
		BurnRate:       l.burnRateLocked(),
	}
	l.mu.Unlock()
	st.Attainment = attainment(st)
	st.SlackAdmit = digest(l.slackAdmit.Summary())
	st.SlackCompletion = digest(l.slackDone.Summary())
	return st
}

func attainment(st Stats) float64 {
	terminal := st.Kept + st.Violated + st.Orphaned + st.EvictedWithJob
	if terminal == 0 {
		return 1
	}
	return float64(st.Kept) / float64(terminal)
}

// SlackAtAdmit returns the raw slack-at-admit histogram digest (for
// the Prometheus summary family).
func (l *Ledger) SlackAtAdmit() metrics.HistogramSummary {
	if l == nil {
		return metrics.HistogramSummary{}
	}
	return l.slackAdmit.Summary()
}

// SlackAtCompletion returns the raw slack-at-completion histogram
// digest.
func (l *Ledger) SlackAtCompletion() metrics.HistogramSummary {
	if l == nil {
		return metrics.HistogramSummary{}
	}
	return l.slackDone.Summary()
}

// MergeStats sums per-node stats into a cluster total. Slack digests
// are not mergeable and stay zero; attainment and burn rate are
// recomputed over the summed counts.
func MergeStats(parts []Stats) Stats {
	var out Stats
	for _, st := range parts {
		out.Active += st.Active
		out.Kept += st.Kept
		out.Violated += st.Violated
		out.Orphaned += st.Orphaned
		out.EvictedWithJob += st.EvictedWithJob
		out.Transferred += st.Transferred
		out.BurnRate += st.BurnRate
	}
	out.Attainment = attainment(out)
	return out
}

// stateRank orders per-job views across nodes: the most authoritative
// account of a promise wins. A violation anywhere is the headline; a
// kept outcome beats the stale transferred/orphaned records left on
// previous owners; an open window beats a node that gave the job away.
var stateRank = map[string]int{
	StateViolated:    5,
	StateKept:        4,
	StateEvicted:     3,
	StateActive:      2,
	StateOrphaned:    1,
	StateTransferred: 0,
}

// Merge picks the authoritative view of one job from several nodes'
// records (cluster fan-out of GET /v1/assure?job=...).
func Merge(views []Promise) (Promise, bool) {
	best := -1
	for i, v := range views {
		if best < 0 || stateRank[v.State] > stateRank[views[best].State] {
			best = i
		}
	}
	if best < 0 {
		return Promise{}, false
	}
	return views[best], true
}

// Locations returns the per-location outcome table.
func (l *Ledger) Locations() map[string]LocationOutcomes {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.perLoc) == 0 {
		return nil
	}
	out := make(map[string]LocationOutcomes, len(l.perLoc))
	for loc, lc := range l.perLoc {
		lo := LocationOutcomes{Kept: lc.kept, Violated: lc.violated, Other: lc.other}
		if total := lc.kept + lc.violated + lc.other; total > 0 {
			lo.Attainment = float64(lc.kept) / float64(total)
		}
		out[string(loc)] = lo
	}
	return out
}

// Report assembles the GET /v1/assure payload.
func (l *Ledger) Report() Report {
	if l == nil {
		return Report{}
	}
	rep := Report{Node: l.node, Stats: l.Stats(), Locations: l.Locations()}
	l.mu.Lock()
	n := recentCap
	if !l.full {
		n = l.head
	}
	for k := 1; k <= n; k++ {
		p := l.recent[(l.head-k+recentCap)%recentCap]
		if len(rep.Recent) < reportRecent {
			rep.Recent = append(rep.Recent, p)
		}
		if (p.State == StateViolated || p.State == StateOrphaned) && len(rep.Anomalies) < reportRecent {
			rep.Anomalies = append(rep.Anomalies, p)
		}
		if len(rep.Recent) == reportRecent && len(rep.Anomalies) == reportRecent {
			break
		}
	}
	l.mu.Unlock()
	return rep
}
