package assure

import (
	"testing"
	"time"

	"repro/internal/resource"
)

func locs(names ...string) []resource.Location {
	out := make([]resource.Location, len(names))
	for i, n := range names {
		out[i] = resource.Location(n)
	}
	return out
}

func TestReserveReleaseKept(t *testing.T) {
	l := New("n1")
	l.Reserve("j1", 0, 80, 100, 7, locs("l1", "l2"))

	st := l.Stats()
	if st.Active != 1 || st.Kept != 0 {
		t.Fatalf("after reserve: active=%d kept=%d, want 1/0", st.Active, st.Kept)
	}
	p, ok := l.Lookup("j1")
	if !ok || p.State != StateActive || p.SlackAtAdmit != 20 || p.Epoch != 7 {
		t.Fatalf("active lookup = %+v ok=%v", p, ok)
	}

	if got := l.Release("j1", 90); got != StateKept {
		t.Fatalf("release at 90 = %q, want kept", got)
	}
	st = l.Stats()
	if st.Active != 0 || st.Kept != 1 || st.Attainment != 1 {
		t.Fatalf("after release: %+v", st)
	}
	p, ok = l.Lookup("j1")
	if !ok || p.State != StateKept || p.ResolvedAt != 90 || p.SlackAtCompletion != 10 {
		t.Fatalf("resolved lookup = %+v ok=%v", p, ok)
	}
	if st.SlackAdmit.Count != 1 || st.SlackAdmit.Mean != 20 {
		t.Fatalf("slack-at-admit digest = %+v", st.SlackAdmit)
	}
	if st.SlackCompletion.Count != 1 || st.SlackCompletion.Mean != 10 {
		t.Fatalf("slack-at-completion digest = %+v", st.SlackCompletion)
	}
}

func TestReleaseAfterDeadlineViolates(t *testing.T) {
	l := New("n1")
	l.Reserve("late", 0, 50, 60, 1, locs("l1"))
	if got := l.Release("late", 61); got != StateViolated {
		t.Fatalf("release past deadline = %q, want violated", got)
	}
	st := l.Stats()
	if st.Violated != 1 || st.Attainment != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if p, _ := l.Lookup("late"); p.SlackAtCompletion != -1 {
		t.Fatalf("slack at completion = %d, want -1", p.SlackAtCompletion)
	}
}

func TestReleaseUnknownJob(t *testing.T) {
	l := New("n1")
	if got := l.Release("ghost", 10); got != "" {
		t.Fatalf("release of unknown job = %q, want empty", got)
	}
}

func TestCompleteCapsAtFinish(t *testing.T) {
	l := New("n1")
	l.Reserve("j", 0, 40, 100, 1, locs("l1"))
	// Sweep-driven completion at tick 90: the job ran its plan, which
	// finished at 40, so slack is measured there (60), not at the sweep.
	l.Complete("j", 90)
	p, ok := l.Lookup("j")
	if !ok || p.State != StateKept || p.ResolvedAt != 40 || p.SlackAtCompletion != 60 {
		t.Fatalf("completed promise = %+v ok=%v", p, ok)
	}
}

func TestAdoptMergesActivePromise(t *testing.T) {
	l := New("n1")
	l.Reserve("j", 0, 40, 100, 1, locs("l1"))
	// A second owner's share arrives: wider finish, same job. The promise
	// must merge, not double-count.
	l.Adopt("j", 0, 55, 100, 2, locs("l2", "l1"))
	if st := l.Stats(); st.Active != 1 {
		t.Fatalf("active = %d after adopt-merge, want 1", st.Active)
	}
	p, _ := l.Lookup("j")
	if p.Finish != 55 || p.SlackAtAdmit != 45 || len(p.Locations) != 2 {
		t.Fatalf("merged promise = %+v", p)
	}
	if p.Adopted {
		t.Fatal("locally admitted promise flipped to adopted")
	}
	// Adoption of an unknown job creates a fresh adopted promise and does
	// not touch the slack-at-admit histogram.
	l.Adopt("incoming", 10, 70, 90, 3, locs("l3"))
	p, ok := l.Lookup("incoming")
	if !ok || !p.Adopted || p.State != StateActive {
		t.Fatalf("adopted promise = %+v ok=%v", p, ok)
	}
	if c := l.SlackAtAdmit().Count; c != 1 {
		t.Fatalf("slack-at-admit count = %d after adoptions, want 1 (local reserve only)", c)
	}
}

func TestSweepViolatedVersusOrphaned(t *testing.T) {
	l := New("n1")
	l.Reserve("held", 0, 50, 60, 1, locs("l1"))
	l.Reserve("lost", 0, 50, 60, 1, locs("l2"))
	l.Reserve("open", 0, 80, 200, 1, locs("l1"))

	violated, orphaned := l.Sweep(100, func(job string) bool { return job == "held" })
	if len(violated) != 1 || violated[0] != "held" {
		t.Fatalf("violated = %v", violated)
	}
	if len(orphaned) != 1 || orphaned[0] != "lost" {
		t.Fatalf("orphaned = %v", orphaned)
	}
	st := l.Stats()
	if st.Violated != 1 || st.Orphaned != 1 || st.Active != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// kept=0 of 2 terminal outcomes.
	if st.Attainment != 0 {
		t.Fatalf("attainment = %v, want 0", st.Attainment)
	}
	// A second sweep at the same tick finds nothing new.
	if v, o := l.Sweep(100, nil); len(v) != 0 || len(o) != 0 {
		t.Fatalf("second sweep resolved %v/%v", v, o)
	}
}

func TestTransferExcludedFromAttainment(t *testing.T) {
	l := New("n1")
	l.Reserve("stay", 0, 10, 100, 1, locs("l1"))
	l.Reserve("move", 0, 10, 100, 1, locs("l1"))
	l.Transfer("move")
	l.Release("stay", 50)
	st := l.Stats()
	if st.Transferred != 1 || st.Kept != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Attainment != 1 {
		t.Fatalf("attainment = %v, want 1 (transferred is not terminal)", st.Attainment)
	}
	// Transferred outcomes don't pollute the per-location table either.
	if lo := l.Locations()["l1"]; lo.Kept != 1 || lo.Other != 0 {
		t.Fatalf("l1 outcomes = %+v", lo)
	}
}

func TestDropForgetsWithoutClassifying(t *testing.T) {
	l := New("n1")
	l.Reserve("rollback", 0, 10, 100, 1, locs("l1"))
	l.Drop("rollback")
	st := l.Stats()
	if st.Active != 0 || st.Kept+st.Violated+st.Orphaned+st.EvictedWithJob+st.Transferred != 0 {
		t.Fatalf("drop left counters %+v", st)
	}
	if _, ok := l.Lookup("rollback"); ok {
		t.Fatal("dropped promise still findable")
	}
}

func TestEvictAll(t *testing.T) {
	l := New("n1")
	l.Reserve("a", 0, 10, 100, 1, locs("l1"))
	l.Reserve("b", 0, 10, 100, 1, locs("l2"))
	if n := l.EvictAll(42); n != 2 {
		t.Fatalf("EvictAll = %d, want 2", n)
	}
	st := l.Stats()
	if st.EvictedWithJob != 2 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if p, _ := l.Lookup("a"); p.State != StateEvicted || p.ResolvedAt != 42 {
		t.Fatalf("evicted promise = %+v", p)
	}
}

func TestBurnRateWindow(t *testing.T) {
	l := New("n1")
	clock := time.Unix(1000, 0)
	l.SetNow(func() time.Time { return clock })
	for i := 0; i < 3; i++ {
		job := string(rune('a' + i))
		l.Reserve(job, 0, 10, 20, 1, nil)
	}
	l.Sweep(50, func(string) bool { return true }) // all three violate now
	if got := l.Stats().BurnRate; got != 3 {
		t.Fatalf("burn rate = %v, want 3", got)
	}
	clock = clock.Add(30 * time.Second)
	l.Reserve("d", 0, 10, 20, 1, nil)
	l.Sweep(60, func(string) bool { return true })
	if got := l.Stats().BurnRate; got != 4 {
		t.Fatalf("burn rate after 30s = %v, want 4", got)
	}
	// 70s later the first burst has aged out of the 60s window.
	clock = clock.Add(40 * time.Second)
	if got := l.Stats().BurnRate; got != 1 {
		t.Fatalf("burn rate after 70s = %v, want 1", got)
	}
	clock = clock.Add(2 * time.Minute)
	if got := l.Stats().BurnRate; got != 0 {
		t.Fatalf("burn rate after everything aged = %v, want 0", got)
	}
}

func TestLookupRingWrapAround(t *testing.T) {
	l := New("n1")
	for i := 0; i < recentCap+10; i++ {
		job := "j" + string(rune('0'+i%10)) + "-" + itoa(i)
		l.Reserve(job, 0, 10, 100, 1, nil)
		l.Release(job, 50)
	}
	// The newest resolved promise is findable; one evicted from the ring
	// is not.
	newest := "j" + string(rune('0'+(recentCap+9)%10)) + "-" + itoa(recentCap+9)
	if _, ok := l.Lookup(newest); !ok {
		t.Fatalf("newest resolved promise %s not found", newest)
	}
	oldest := "j0-" + itoa(0)
	if _, ok := l.Lookup(oldest); ok {
		t.Fatalf("promise %s should have been evicted from the ring", oldest)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestMergePrecedence(t *testing.T) {
	views := []Promise{
		{Job: "j", Node: "n1", State: StateTransferred},
		{Job: "j", Node: "n2", State: StateKept},
		{Job: "j", Node: "n3", State: StateOrphaned},
	}
	p, ok := Merge(views)
	if !ok || p.Node != "n2" || p.State != StateKept {
		t.Fatalf("merge = %+v ok=%v, want n2 kept", p, ok)
	}
	// A violation anywhere is the headline.
	views = append(views, Promise{Job: "j", Node: "n4", State: StateViolated})
	if p, _ = Merge(views); p.State != StateViolated {
		t.Fatalf("merge with violation = %+v", p)
	}
	if _, ok := Merge(nil); ok {
		t.Fatal("merge of no views reported found")
	}
}

func TestMergeStatsSums(t *testing.T) {
	a := Stats{Kept: 3, Violated: 1, Transferred: 2, Active: 1, BurnRate: 0.5}
	b := Stats{Kept: 5, Orphaned: 1, BurnRate: 1.5}
	got := MergeStats([]Stats{a, b})
	if got.Kept != 8 || got.Violated != 1 || got.Orphaned != 1 || got.Transferred != 2 || got.Active != 1 {
		t.Fatalf("merged = %+v", got)
	}
	if got.BurnRate != 2 {
		t.Fatalf("burn rate = %v, want 2", got.BurnRate)
	}
	// 8 kept of 10 terminal.
	if got.Attainment != 0.8 {
		t.Fatalf("attainment = %v, want 0.8", got.Attainment)
	}
}

func TestReportRecentAndAnomalies(t *testing.T) {
	l := New("n1")
	for i := 0; i < 5; i++ {
		job := "ok-" + itoa(i)
		l.Reserve(job, 0, 10, 100, 1, locs("l1"))
		l.Release(job, 50)
	}
	l.Reserve("bad", 0, 10, 20, 1, locs("l1"))
	l.Sweep(30, func(string) bool { return true })

	rep := l.Report()
	if rep.Node != "n1" {
		t.Fatalf("node = %q", rep.Node)
	}
	if len(rep.Recent) != 6 || rep.Recent[0].Job != "bad" {
		t.Fatalf("recent = %d entries, first %q", len(rep.Recent), rep.Recent[0].Job)
	}
	if len(rep.Anomalies) != 1 || rep.Anomalies[0].State != StateViolated {
		t.Fatalf("anomalies = %+v", rep.Anomalies)
	}
	lo := rep.Locations["l1"]
	if lo.Kept != 5 || lo.Violated != 1 {
		t.Fatalf("l1 outcomes = %+v", lo)
	}
	if want := 5.0 / 6.0; lo.Attainment != want {
		t.Fatalf("l1 attainment = %v, want %v", lo.Attainment, want)
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.Reserve("j", 0, 1, 2, 1, nil)
	l.Adopt("j", 0, 1, 2, 1, nil)
	if got := l.Release("j", 1); got != "" {
		t.Fatalf("nil release = %q", got)
	}
	l.Complete("j", 1)
	l.Transfer("j")
	l.Drop("j")
	l.Sweep(1, nil)
	l.EvictAll(1)
	l.SetNow(nil)
	if st := l.Stats(); st.Active != 0 {
		t.Fatalf("nil stats = %+v", st)
	}
	if _, ok := l.Lookup("j"); ok {
		t.Fatal("nil lookup found something")
	}
	if rep := l.Report(); rep.Node != "" {
		t.Fatalf("nil report = %+v", rep)
	}
	if l.Locations() != nil {
		t.Fatal("nil locations non-nil")
	}
}
