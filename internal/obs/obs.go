// Package obs is rotad's observability layer: structured (key=value or
// JSON) event logging with per-request trace correlation, a hand-rolled
// Prometheus text-format exposition builder, and per-endpoint HTTP
// instrumentation. The runtime packages (internal/server,
// internal/cluster) thread one Observer through every decision,
// reservation, lease expiry and peer RPC, so a running node's resource
// events are first-class, scrapeable, correlatable signals rather than
// ad-hoc JSON digests.
//
// The paper treats resource consumption as observable behaviour over
// time; this package is that stance applied to the daemon itself — every
// Theorem-4 check, every committed-path reservation and every open-system
// churn event leaves a timestamped, trace-correlated record.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// HeaderTraceID is the HTTP header carrying a request's trace ID across
// forwarding, two-phase coordination, gossip and migration. A request
// arriving without one is minted a fresh ID; the header is echoed on
// every response so clients can correlate too.
const HeaderTraceID = "X-Rota-Trace-Id"

// HeaderSpanParent is the HTTP header carrying the caller's span ID
// across peer RPCs, so the receiving node's spans parent onto the
// calling side and one federated admission yields a single connected
// span tree. It lives here (not in internal/obs/span) so Instrument can
// lift it into the context without importing the span package.
const HeaderSpanParent = "X-Rota-Span"

// LogFormat selects the wire shape of emitted event lines.
type LogFormat int

const (
	// FormatKV renders logfmt-style lines: ts=... event=... k=v ...
	FormatKV LogFormat = iota
	// FormatJSON renders one JSON object per line.
	FormatJSON
)

// ParseFormat maps a flag value ("kv", "json") to a LogFormat.
func ParseFormat(s string) (LogFormat, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "kv", "logfmt", "text":
		return FormatKV, nil
	case "json":
		return FormatJSON, nil
	default:
		return FormatKV, fmt.Errorf("obs: unknown log format %q (want kv or json)", s)
	}
}

// Options parameterizes an Observer.
type Options struct {
	// Log receives one event per line; nil disables event logging (the
	// metrics side of the Observer still works).
	Log io.Writer
	// Format selects kv (default) or JSON lines.
	Format LogFormat
	// Node tags every line with the emitting node's ID (cluster mode).
	Node string
	// SlowDecision is the slow-decision tracer threshold: admission
	// decisions slower than this log their job, footprint and per-phase
	// timings. Zero disables the tracer.
	SlowDecision time.Duration
	// NowFn overrides the timestamp source (tests); nil means time.Now.
	NowFn func() time.Time
}

// Observer is the shared observability sink. All methods are safe for
// concurrent use and safe on a nil receiver (a nil *Observer is the
// "observability off" object), so call sites never need nil checks.
type Observer struct {
	mu    sync.Mutex
	w     io.Writer
	fmt   LogFormat
	node  string
	slow  time.Duration
	nowFn func() time.Time
}

// New builds an Observer from Options.
func New(opts Options) *Observer {
	o := &Observer{w: opts.Log, fmt: opts.Format, node: opts.Node, slow: opts.SlowDecision, nowFn: opts.NowFn}
	if o.nowFn == nil {
		o.nowFn = time.Now
	}
	return o
}

// SlowThreshold returns the slow-decision tracer threshold (0 when
// disabled or the observer is nil).
func (o *Observer) SlowThreshold() time.Duration {
	if o == nil {
		return 0
	}
	return o.slow
}

// Log emits one structured event line. kv is alternating key, value
// pairs; values are rendered with %v (or JSON-encoded in JSON mode). A
// nil observer, a nil writer, or an odd trailing key are all tolerated.
func (o *Observer) Log(event string, kv ...any) {
	if o == nil || o.w == nil {
		return
	}
	ts := o.nowFn().UTC()
	var line []byte
	if o.fmt == FormatJSON {
		obj := make(map[string]any, len(kv)/2+3)
		obj["ts"] = ts.Format(time.RFC3339Nano)
		obj["event"] = event
		if o.node != "" {
			obj["node"] = o.node
		}
		for i := 0; i+1 < len(kv); i += 2 {
			obj[fmt.Sprintf("%v", kv[i])] = jsonValue(kv[i+1])
		}
		line, _ = json.Marshal(obj)
		line = append(line, '\n')
	} else {
		var b strings.Builder
		b.WriteString("ts=")
		b.WriteString(ts.Format(time.RFC3339Nano))
		b.WriteString(" event=")
		b.WriteString(kvValue(event))
		if o.node != "" {
			b.WriteString(" node=")
			b.WriteString(kvValue(o.node))
		}
		for i := 0; i+1 < len(kv); i += 2 {
			b.WriteByte(' ')
			b.WriteString(fmt.Sprintf("%v", kv[i]))
			b.WriteByte('=')
			b.WriteString(kvValue(fmt.Sprintf("%v", kv[i+1])))
		}
		b.WriteByte('\n')
		line = []byte(b.String())
	}
	o.mu.Lock()
	_, _ = o.w.Write(line)
	o.mu.Unlock()
}

// jsonValue keeps JSON-native types as-is and stringifies the rest, so
// numbers and booleans survive into the JSON line unquoted.
func jsonValue(v any) any {
	switch v.(type) {
	case nil, bool, string,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, json.Number:
		return v
	default:
		if _, ok := v.(fmt.Stringer); ok {
			return fmt.Sprintf("%v", v)
		}
		if _, ok := v.(error); ok {
			return fmt.Sprintf("%v", v)
		}
		return v
	}
}

// kvValue quotes a logfmt value when it contains spaces, quotes or
// equals signs.
func kvValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// MintTraceID returns a fresh 16-hex-character trace ID.
func MintTraceID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a clock-derived ID rather than an empty one.
		return fmt.Sprintf("t%015x", time.Now().UnixNano()&0xFFFFFFFFFFFFFFF)
	}
	return hex.EncodeToString(buf[:])
}

// traceKey is the context key carrying a request's trace ID.
type traceKey struct{}

// WithTrace returns ctx tagged with the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// Trace extracts the trace ID from ctx ("" when absent).
func Trace(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// TraceFromRequest reads the request's trace header, minting a fresh ID
// when absent or oversized (a peer cannot make us log unbounded bytes).
func TraceFromRequest(r *http.Request) string {
	id := r.Header.Get(HeaderTraceID)
	if id == "" || len(id) > 128 {
		return MintTraceID()
	}
	return id
}

// spanParentKey is the context key carrying the remote parent span ID a
// peer propagated in HeaderSpanParent. The span package consumes it
// when it starts the first span of a handled request.
type spanParentKey struct{}

// WithSpanParent returns ctx tagged with a remote parent span ID.
func WithSpanParent(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, spanParentKey{}, id)
}

// SpanParent extracts the remote parent span ID from ctx ("" when absent).
func SpanParent(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(spanParentKey{}).(string)
	return id
}

// SpanParentFromRequest reads the request's span-parent header,
// discarding oversized values (same bound as trace IDs).
func SpanParentFromRequest(r *http.Request) string {
	id := r.Header.Get(HeaderSpanParent)
	if len(id) > 128 {
		return ""
	}
	return id
}
