package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func fixedNow() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }

func TestLogKVFormat(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{Log: &buf, Node: "n1", NowFn: fixedNow})
	o.Log("admit.decision", "trace", "abc123", "job", "j1", "admit", true, "reason", "no free slot")
	got := buf.String()
	want := `ts=2026-01-02T03:04:05Z event=admit.decision node=n1 trace=abc123 job=j1 admit=true reason="no free slot"` + "\n"
	if got != want {
		t.Fatalf("kv line:\n got %q\nwant %q", got, want)
	}
}

func TestLogJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{Log: &buf, Format: FormatJSON, Node: "n2", NowFn: fixedNow})
	o.Log("ledger.reserve", "trace", "t1", "finish", int64(42), "admit", true)
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("line is not JSON: %v (%q)", err, buf.String())
	}
	if obj["event"] != "ledger.reserve" || obj["node"] != "n2" || obj["trace"] != "t1" {
		t.Fatalf("JSON fields = %v", obj)
	}
	if v, ok := obj["finish"].(float64); !ok || v != 42 {
		t.Fatalf("finish survived as %T %v, want number 42", obj["finish"], obj["finish"])
	}
	if v, ok := obj["admit"].(bool); !ok || !v {
		t.Fatalf("admit survived as %T %v, want bool true", obj["admit"], obj["admit"])
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.Log("anything", "k", "v") // must not panic
	if o.SlowThreshold() != 0 {
		t.Fatal("nil observer slow threshold != 0")
	}
	// A non-nil observer without a writer is equally inert.
	New(Options{}).Log("anything")
}

func TestParseFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want LogFormat
		ok   bool
	}{{"", FormatKV, true}, {"kv", FormatKV, true}, {"JSON", FormatJSON, true}, {"xml", FormatKV, false}} {
		got, err := ParseFormat(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFormat(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestTracePropagation(t *testing.T) {
	ctx := WithTrace(context.Background(), "abc")
	if got := Trace(ctx); got != "abc" {
		t.Fatalf("Trace = %q", got)
	}
	if got := Trace(context.Background()); got != "" {
		t.Fatalf("Trace on untagged ctx = %q", got)
	}
	if id := MintTraceID(); len(id) != 16 {
		t.Fatalf("MintTraceID length = %d (%q)", len(id), id)
	}

	r := httptest.NewRequest(http.MethodGet, "/", nil)
	r.Header.Set(HeaderTraceID, "inbound-1")
	if got := TraceFromRequest(r); got != "inbound-1" {
		t.Fatalf("TraceFromRequest = %q", got)
	}
	r.Header.Set(HeaderTraceID, strings.Repeat("x", 200))
	if got := TraceFromRequest(r); len(got) != 16 {
		t.Fatalf("oversized inbound trace not re-minted: %q", got)
	}
}

func TestInstrument(t *testing.T) {
	es := NewEndpointStats("admit")
	var seen string
	h := Instrument(es, func(w http.ResponseWriter, r *http.Request) {
		seen = Trace(r.Context())
		w.WriteHeader(http.StatusConflict)
	})

	r := httptest.NewRequest(http.MethodPost, "/v1/admit", nil)
	r.Header.Set(HeaderTraceID, "corr-1")
	w := httptest.NewRecorder()
	h(w, r)
	if seen != "corr-1" {
		t.Fatalf("handler saw trace %q, want corr-1", seen)
	}
	if got := w.Header().Get(HeaderTraceID); got != "corr-1" {
		t.Fatalf("response trace header = %q", got)
	}

	// An outer layer's context trace wins over re-minting.
	r = httptest.NewRequest(http.MethodPost, "/v1/admit", nil)
	r = r.WithContext(WithTrace(r.Context(), "outer-1"))
	h(httptest.NewRecorder(), r)
	if seen != "outer-1" {
		t.Fatalf("nested handler saw trace %q, want outer-1", seen)
	}

	e := NewExposition()
	es.Collect(e, nil)
	var out bytes.Buffer
	if err := e.Render(&out); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(&out)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := MetricValue(m, "rota_http_requests_total", `{endpoint="admit",class="4xx"}`); !ok || v != 2 {
		t.Fatalf("4xx counter = %v, %v (metrics %v)", v, ok, m)
	}
	if _, ok := MetricValue(m, "rota_http_requests_total", `{endpoint="admit",class="2xx"}`); ok {
		t.Fatal("2xx class emitted with zero count")
	}
	if v, ok := MetricValue(m, "rota_http_request_latency_us_count", `{endpoint="admit"}`); !ok || v != 2 {
		t.Fatalf("latency count = %v, %v", v, ok)
	}
}
