package obs_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/workload"
)

// The metrics lint: every exported stat field the JSON API surfaces must
// have a counterpart family in the live Prometheus exposition. Adding a
// field to StatsResponse / TwoPhaseCounters / ClusterCounters without
// teaching CollectMetrics (and this mapping) about it fails here — which
// is the point: /v1/stats and /metrics may never drift apart.

// recurse marks a nested struct whose fields are linted individually.
const recurse = "<recurse>"

// statFamilies maps each stat's JSON tag to its exposition family. A
// summary family covers all the scalar digests derived from the same
// histogram.
var statFamilies = map[string]string{
	// server.StatsResponse
	"uptime_seconds":      "rota_uptime_seconds",
	"build":               recurse,
	"now":                 "rota_ledger_now",
	"ledger_epoch":        "rota_ledger_epoch",
	"shards":              "rota_ledger_shards",
	"commitments":         "rota_ledger_commitments",
	"decisions":           "rota_decisions_total",
	"admitted":            "rota_admitted_total",
	"rejected":            "rota_rejected_total",
	"released":            "rota_released_total",
	"errors":              "rota_errors_total",
	"timed_out":           "rota_timeouts_total",
	"late_decisions":      "rota_late_decisions_total",
	"queue_depth":         "rota_queue_depth",
	"in_flight":           "rota_inflight_decisions",
	"holds":               "rota_ledger_holds",
	"two_phase":           recurse,
	"admit_hot":           recurse,
	"decision_latency_us": "rota_decision_latency_us",
	"spans":               recurse,
	"query":               recurse,
	"assure":              recurse,
	"flightrec":           recurse,
	// server.BuildInfo
	"go_version":     "rota_build_info",
	"module_path":    "rota_build_info",
	"module_version": "rota_build_info",
	// assure.Stats
	"promises_active":           "rota_assure_active_promises",
	"promises_kept":             "rota_assure_promises_total",
	"promises_violated":         "rota_assure_promises_total",
	"promises_orphaned":         "rota_assure_promises_total",
	"promises_evicted_with_job": "rota_assure_promises_total",
	"promises_transferred":      "rota_assure_promises_total",
	"slo_attainment":            "rota_assure_attainment",
	"violation_burn_rate":       "rota_assure_burn_rate",
	"slack_at_admit_ticks":      "rota_assure_slack_at_admit_ticks",
	"slack_at_completion_ticks": "rota_assure_slack_at_completion_ticks",
	// flightrec.Stats
	"flight_snapshots":         "rota_flightrec_snapshots",
	"flight_snapshot_capacity": "rota_flightrec_snapshot_capacity",
	"flight_triggers":          "rota_flightrec_triggers_total",
	"flight_triggers_deduped":  "rota_flightrec_triggers_deduped_total",
	"flight_snapshots_evicted": "rota_flightrec_snapshots_evicted_total",
	"flight_events_buffered":   "rota_flightrec_events_buffered",
	"flight_event_capacity":    "rota_flightrec_event_capacity",
	// server.AdmitHotCounters
	"batches":         "rota_admit_batches_total",
	"batched_jobs":    "rota_admit_batched_jobs_total",
	"plan_retries":    "rota_admit_plan_retries_total",
	"plan_fallbacks":  "rota_admit_plan_fallbacks_total",
	"free_patches":    "rota_free_view_patches_total",
	"free_recomputes": "rota_free_view_recomputes_total",
	// server.QueryStats
	"queries":          "rota_queries_total",
	"epoch":            "rota_ledger_epoch",
	"subscriptions":    recurse,
	"query_latency_us": "rota_query_latency_us",
	// query.ManagerStats
	"active_subscriptions": "rota_query_subscriptions",
	"evals":                "rota_query_evals_total",
	"eval_errors":          "rota_query_eval_errors_total",
	"flips":                "rota_query_flips_total",
	"delivered":            "rota_query_events_delivered_total",
	"drops":                "rota_query_drops_total",
	"webhook_errors":       "rota_query_webhook_errors_total",
	// span.Stats
	"capacity": "rota_span_store_capacity",
	"live":     "rota_spans_live",
	"recorded": "rota_spans_recorded_total",
	"evicted":  "rota_spans_evicted_total",
	// server.TwoPhaseCounters
	"prepares":          "rota_twophase_total",
	"commits":           "rota_twophase_total",
	"aborts":            "rota_twophase_total",
	"leases_expired":    "rota_leases_expired_total",
	"not_owned_rejects": "rota_not_owned_rejects_total",
	// cluster.ClusterCounters
	"forwarded":             "rota_cluster_forwarded_total",
	"misrouted":             "rota_cluster_misrouted_total",
	"coordinations":         "rota_cluster_coordinations_total",
	"coord_admitted":        "rota_cluster_coord_admitted_total",
	"coord_rejected":        "rota_cluster_coord_rejected_total",
	"coord_failed":          "rota_cluster_coord_failed_total",
	"injected_crashes":      "rota_cluster_injected_crashes_total",
	"migrations":            "rota_cluster_migrations_total",
	"releases":              "rota_cluster_releases_total",
	"fanout_queries":        "rota_cluster_fanout_queries_total",
	"membership_epoch":      "rota_cluster_membership_epoch",
	"joins":                 "rota_cluster_joins_total",
	"leaves":                "rota_cluster_leaves_total",
	"handoffs":              "rota_cluster_handoffs_total",
	"promotions":            "rota_cluster_promotions_total",
	"redirects_served":      "rota_cluster_redirects_served_total",
	"redirects_followed":    "rota_cluster_redirects_followed_total",
	"table_applies":         "rota_cluster_table_applies_total",
	"shadow_ships":          "rota_cluster_shadow_ships_total",
	"shadow_misses":         "rota_cluster_shadow_misses_total",
	"auto_evictions":        "rota_cluster_auto_evictions_total",
	"rejoins":               "rota_cluster_rejoins_total",
	"intent_repairs":        "rota_cluster_intent_repairs_total",
	"fenced_gossip":         "rota_cluster_fenced_gossip_total",
	"suspected_peers":       "rota_cluster_suspected_peers",
	"coord_latency_mean_us": "rota_cluster_coordination_latency_us",
	"coord_latency_p50_us":  "rota_cluster_coordination_latency_us",
	"coord_latency_p99_us":  "rota_cluster_coordination_latency_us",
}

// lintStruct walks a stats struct's exported fields and checks each
// mapped family exists in the exposition.
func lintStruct(t *testing.T, e *obs.Exposition, typ reflect.Type, owner string) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		family, ok := statFamilies[tag]
		if !ok {
			t.Errorf("%s.%s (json %q) has no exposition family: add one in CollectMetrics and map it in statFamilies", owner, f.Name, tag)
			continue
		}
		if family == recurse {
			lintStruct(t, e, f.Type, owner+"."+f.Name)
			continue
		}
		if !e.HasFamily(family) {
			t.Errorf("%s.%s maps to family %q, which the live exposition does not emit", owner, f.Name, family)
		}
	}
}

func lintTheta() resource.Set {
	var s resource.Set
	s.Add(resource.NewTerm(resource.FromUnits(2), resource.CPUAt("l1"), interval.New(0, 100)))
	return s
}

func TestMetricsLintServer(t *testing.T) {
	srv, err := server.New(server.Config{Theta: lintTheta()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })

	e := obs.NewExposition()
	srv.CollectMetrics(e)
	lintStruct(t, e, reflect.TypeOf(server.StatsResponse{}), "server.StatsResponse")
}

func TestMetricsLintCluster(t *testing.T) {
	nd, err := cluster.New(cluster.Config{
		Self:           "n1",
		Peers:          []cluster.Peer{{ID: "n1", URL: "http://127.0.0.1:1", Locations: []resource.Location{"l1"}}},
		Server:         server.Config{Theta: lintTheta()},
		GossipInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = nd.Shutdown(ctx)
	})

	e := obs.NewExposition()
	nd.CollectMetrics(e)
	// One cluster scrape must satisfy both layers' stat structs.
	lintStruct(t, e, reflect.TypeOf(server.StatsResponse{}), "server.StatsResponse")
	lintStruct(t, e, reflect.TypeOf(cluster.ClusterCounters{}), "cluster.ClusterCounters")
}

// The span lint, same spirit as the metrics lint: every span kind must
// carry a documented attribute schema, and live spans may only use
// registered kinds and schema'd attribute keys. Adding a span.Attr call
// with a new key without documenting it in defineKind fails here.

func lintJob(t *testing.T, name string, deadline interval.Time) string {
	t.Helper()
	actor := compute.ActorName(name + ".a")
	c, err := cost.Realize(cost.Paper(), actor, compute.Evaluate(actor, "l1", 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := compute.NewDistributed(name, 0, deadline, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(workload.Job{Dist: d, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMetricsLintSpanKinds(t *testing.T) {
	// Static half: every registered kind documents itself and each of
	// its attributes (defineKind enforces the pairing; this enforces
	// that the doc strings are not empty placeholders).
	for _, ks := range span.Kinds() {
		if ks.Doc == "" {
			t.Errorf("span kind %q has no doc string", ks.Name)
		}
		for attr, doc := range ks.Attrs {
			if doc == "" {
				t.Errorf("span kind %q attribute %q has no doc string", ks.Name, attr)
			}
		}
	}

	// Live half: drive one admitted and one rejected request through a
	// real server and check every span it recorded against the registry.
	store := span.NewStore(span.DefaultCapacity, "lint")
	var theta resource.Set
	theta.Add(resource.NewTerm(resource.FromUnits(16), resource.CPUAt("l1"), interval.New(0, 100)))
	srv, err := server.New(server.Config{Theta: theta, Spans: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	for _, body := range []string{
		lintJob(t, "lint-ok", 64), // feasible: admit + validate/plan/reserve children
		lintJob(t, "lint-no", 1),  // hopeless deadline: rejected with provenance
	} {
		resp, err := http.Post(ts.URL+"/v1/admit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Terminal spans end via defer after the response is written; give
	// the store a moment to see them.
	var recs []span.Record
	for deadline := time.Now().Add(2 * time.Second); ; {
		recs = store.Snapshot()
		if len(recs) >= 6 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(recs) == 0 {
		t.Fatal("no spans recorded by a live admit")
	}
	for _, rec := range recs {
		ks, ok := span.LookupKind(rec.Kind)
		if !ok {
			t.Errorf("live span uses unregistered kind %q: define it via defineKind", rec.Kind)
			continue
		}
		for key := range rec.Attrs {
			if _, ok := ks.Attrs[key]; !ok {
				t.Errorf("span kind %q carries undocumented attribute %q: document it in defineKind", rec.Kind, key)
			}
		}
		if rec.Status == span.StatusReject && rec.Provenance == nil && rec.Kind == span.KindAdmit {
			t.Errorf("terminal reject span for trace %s has no provenance", rec.Trace)
		}
	}
}
