package obs_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/server"
)

// The metrics lint: every exported stat field the JSON API surfaces must
// have a counterpart family in the live Prometheus exposition. Adding a
// field to StatsResponse / TwoPhaseCounters / ClusterCounters without
// teaching CollectMetrics (and this mapping) about it fails here — which
// is the point: /v1/stats and /metrics may never drift apart.

// recurse marks a nested struct whose fields are linted individually.
const recurse = "<recurse>"

// statFamilies maps each stat's JSON tag to its exposition family. A
// summary family covers all the scalar digests derived from the same
// histogram.
var statFamilies = map[string]string{
	// server.StatsResponse
	"uptime_seconds":      "rota_uptime_seconds",
	"now":                 "rota_ledger_now",
	"shards":              "rota_ledger_shards",
	"commitments":         "rota_ledger_commitments",
	"decisions":           "rota_decisions_total",
	"admitted":            "rota_admitted_total",
	"rejected":            "rota_rejected_total",
	"released":            "rota_released_total",
	"errors":              "rota_errors_total",
	"timed_out":           "rota_timeouts_total",
	"late_decisions":      "rota_late_decisions_total",
	"queue_depth":         "rota_queue_depth",
	"in_flight":           "rota_inflight_decisions",
	"holds":               "rota_ledger_holds",
	"two_phase":           recurse,
	"decision_latency_us": "rota_decision_latency_us",
	// server.TwoPhaseCounters
	"prepares":          "rota_twophase_total",
	"commits":           "rota_twophase_total",
	"aborts":            "rota_twophase_total",
	"leases_expired":    "rota_leases_expired_total",
	"not_owned_rejects": "rota_not_owned_rejects_total",
	// cluster.ClusterCounters
	"forwarded":             "rota_cluster_forwarded_total",
	"misrouted":             "rota_cluster_misrouted_total",
	"coordinations":         "rota_cluster_coordinations_total",
	"coord_admitted":        "rota_cluster_coord_admitted_total",
	"coord_rejected":        "rota_cluster_coord_rejected_total",
	"coord_failed":          "rota_cluster_coord_failed_total",
	"injected_crashes":      "rota_cluster_injected_crashes_total",
	"migrations":            "rota_cluster_migrations_total",
	"releases":              "rota_cluster_releases_total",
	"coord_latency_mean_us": "rota_cluster_coordination_latency_us",
	"coord_latency_p50_us":  "rota_cluster_coordination_latency_us",
	"coord_latency_p99_us":  "rota_cluster_coordination_latency_us",
}

// lintStruct walks a stats struct's exported fields and checks each
// mapped family exists in the exposition.
func lintStruct(t *testing.T, e *obs.Exposition, typ reflect.Type, owner string) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		family, ok := statFamilies[tag]
		if !ok {
			t.Errorf("%s.%s (json %q) has no exposition family: add one in CollectMetrics and map it in statFamilies", owner, f.Name, tag)
			continue
		}
		if family == recurse {
			lintStruct(t, e, f.Type, owner+"."+f.Name)
			continue
		}
		if !e.HasFamily(family) {
			t.Errorf("%s.%s maps to family %q, which the live exposition does not emit", owner, f.Name, family)
		}
	}
}

func lintTheta() resource.Set {
	var s resource.Set
	s.Add(resource.NewTerm(resource.FromUnits(2), resource.CPUAt("l1"), interval.New(0, 100)))
	return s
}

func TestMetricsLintServer(t *testing.T) {
	srv, err := server.New(server.Config{Theta: lintTheta()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })

	e := obs.NewExposition()
	srv.CollectMetrics(e)
	lintStruct(t, e, reflect.TypeOf(server.StatsResponse{}), "server.StatsResponse")
}

func TestMetricsLintCluster(t *testing.T) {
	nd, err := cluster.New(cluster.Config{
		Self:           "n1",
		Peers:          []cluster.Peer{{ID: "n1", URL: "http://127.0.0.1:1", Locations: []resource.Location{"l1"}}},
		Server:         server.Config{Theta: lintTheta()},
		GossipInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = nd.Shutdown(ctx)
	})

	e := obs.NewExposition()
	nd.CollectMetrics(e)
	// One cluster scrape must satisfy both layers' stat structs.
	lintStruct(t, e, reflect.TypeOf(server.StatsResponse{}), "server.StatsResponse")
	lintStruct(t, e, reflect.TypeOf(cluster.ClusterCounters{}), "cluster.ClusterCounters")
}
