package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestExpositionGolden pins the exact rendered text format: HELP/TYPE
// once per family, samples in append order, label escaping, integral
// values without exponents, summaries as quantiles + _sum + _count.
func TestExpositionGolden(t *testing.T) {
	e := NewExposition()
	e.Counter("rota_test_total", "Things counted.", L("op", "a"), 1)
	e.Counter("rota_test_total", "ignored duplicate help", L("op", "b"), 2)
	e.Gauge("rota_depth", "Depth.", nil, 3)
	e.Gauge("rota_frac", "Fraction.", nil, 0.25)
	e.Counter("rota_escaped_total", "Escaping.", L("msg", "say \"hi\"\nback\\slash"), 7)
	e.Summary("rota_lat_us", "Latency.", nil,
		metrics.HistogramSummary{Count: 4, Mean: 2.5, P50: 2, P90: 4, P99: 4})

	var buf bytes.Buffer
	if err := e.Render(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP rota_test_total Things counted.`,
		`# TYPE rota_test_total counter`,
		`rota_test_total{op="a"} 1`,
		`rota_test_total{op="b"} 2`,
		`# HELP rota_depth Depth.`,
		`# TYPE rota_depth gauge`,
		`rota_depth 3`,
		`# HELP rota_frac Fraction.`,
		`# TYPE rota_frac gauge`,
		`rota_frac 0.25`,
		`# HELP rota_escaped_total Escaping.`,
		`# TYPE rota_escaped_total counter`,
		`rota_escaped_total{msg="say \"hi\"\nback\\slash"} 7`,
		`# HELP rota_lat_us Latency.`,
		`# TYPE rota_lat_us summary`,
		`rota_lat_us{quantile="0.5"} 2`,
		`rota_lat_us{quantile="0.9"} 4`,
		`rota_lat_us{quantile="0.99"} 4`,
		`rota_lat_us_sum 10`,
		`rota_lat_us_count 4`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if !e.HasFamily("rota_test_total") || e.HasFamily("rota_missing") {
		t.Fatal("HasFamily misreports")
	}
}

func TestParseMetricsRoundTrip(t *testing.T) {
	e := NewExposition()
	e.Counter("rota_a_total", "A.", nil, 5)
	e.Gauge("rota_b", "B.", L("x", "y"), 1.5)
	e.Summary("rota_c_us", "C.", nil, metrics.HistogramSummary{Count: 2, Mean: 3, P50: 3, P90: 3, P99: 3})
	var buf bytes.Buffer
	if err := e.Render(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		`rota_a_total`:              5,
		`rota_b{x="y"}`:             1.5,
		`rota_c_us{quantile="0.5"}`: 3,
		`rota_c_us_sum`:             6,
		`rota_c_us_count`:           2,
	} {
		if got, ok := m[key]; !ok || got != want {
			t.Errorf("parsed[%q] = %v, %v; want %v", key, got, ok, want)
		}
	}

	if _, err := ParseMetrics(strings.NewReader("not a metric line\n")); err == nil {
		t.Fatal("unparsable line accepted")
	}
	if _, err := ParseMetrics(strings.NewReader("rota_x notanumber\n")); err == nil {
		t.Fatal("unparsable value accepted")
	}
}

type fixedCollector struct{}

func (fixedCollector) CollectMetrics(e *Exposition) {
	e.Gauge("rota_fixed", "Fixed.", nil, 9)
}

func TestHandlerServesTextFormat(t *testing.T) {
	srv := httptest.NewServer(Handler(fixedCollector{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	m, err := ParseMetrics(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := MetricValue(m, "rota_fixed", ""); !ok || v != 9 {
		t.Fatalf("scraped rota_fixed = %v, %v", v, ok)
	}
}
