package flightrec

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs/span"
)

// TimelineEntry is one merged log line with its origin node attached.
type TimelineEntry struct {
	Node string `json:"node"`
	Event
}

// Incident is several nodes' snapshots merged into one causal picture:
// a wall-clock-ordered event timeline and span trees rebuilt across
// node boundaries. Cross-node ordering is only as good as the clocks —
// the span trees, whose parent links don't depend on clocks, are the
// trustworthy causal skeleton.
type Incident struct {
	Snapshots []Snapshot      `json:"snapshots"`
	Nodes     []string        `json:"nodes"`
	Timeline  []TimelineEntry `json:"timeline,omitempty"`
	// Trees are all reconstructed traces; CrossNode the connected ones
	// whose spans live on two or more nodes — the causal chains that
	// crossed the wire around the anomaly.
	Trees     []*span.Tree `json:"-"`
	CrossNode []*span.Tree `json:"-"`
}

// Merge combines snapshots (typically one or more per node) into an
// incident. Spans appearing in several snapshots are deduplicated by
// (trace, span) identity; events are deduplicated per node by sequence
// number.
func Merge(snaps []Snapshot) *Incident {
	inc := &Incident{Snapshots: snaps}
	nodes := map[string]bool{}
	type evKey struct {
		node string
		seq  uint64
	}
	seenEv := map[evKey]bool{}
	type spKey struct{ trace, id string }
	seenSp := map[spKey]bool{}
	var spans []span.Record
	for _, s := range snaps {
		nodes[s.Node] = true
		for _, e := range s.Events {
			k := evKey{s.Node, e.Seq}
			if seenEv[k] {
				continue
			}
			seenEv[k] = true
			inc.Timeline = append(inc.Timeline, TimelineEntry{Node: s.Node, Event: e})
		}
		for _, r := range s.Spans {
			k := spKey{r.Trace, r.ID}
			if seenSp[k] {
				continue
			}
			seenSp[k] = true
			spans = append(spans, r)
		}
	}
	for n := range nodes {
		inc.Nodes = append(inc.Nodes, n)
	}
	sort.Strings(inc.Nodes)
	sort.Slice(inc.Timeline, func(i, j int) bool {
		a, b := inc.Timeline[i], inc.Timeline[j]
		if !a.Wall.Equal(b.Wall) {
			return a.Wall.Before(b.Wall)
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	inc.Trees = span.BuildTrees(spans)
	for _, t := range inc.Trees {
		if t.Connected() && spanNodes(t) >= 2 {
			inc.CrossNode = append(inc.CrossNode, t)
		}
	}
	return inc
}

func spanNodes(t *span.Tree) int {
	nodes := map[string]bool{}
	var walk func(n *span.TreeNode)
	walk = func(n *span.TreeNode) {
		if n.Node != "" {
			nodes[n.Node] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return len(nodes)
}

// WriteReport prints a human-readable incident report: what triggered
// where, the merged timeline around the anomaly, and the cross-node
// causal chains.
func (inc *Incident) WriteReport(w io.Writer, maxTimeline int) {
	fmt.Fprintf(w, "incident: %d snapshot(s) from %d node(s) %v\n",
		len(inc.Snapshots), len(inc.Nodes), inc.Nodes)
	for _, s := range inc.Snapshots {
		fmt.Fprintf(w, "  [%s] %s trigger=%s", s.Wall.Format("15:04:05.000"), s.ID, s.Trigger)
		if s.Detail != "" {
			fmt.Fprintf(w, " detail=%q", s.Detail)
		}
		fmt.Fprintf(w, " events=%d spans=%d\n", len(s.Events), len(s.Spans))
		if s.State != nil {
			fmt.Fprintf(w, "      state: %v\n", s.State)
		}
	}
	if n := len(inc.Timeline); n > 0 {
		fmt.Fprintf(w, "timeline (%d events", n)
		entries := inc.Timeline
		if maxTimeline > 0 && n > maxTimeline {
			entries = entries[n-maxTimeline:]
			fmt.Fprintf(w, ", last %d shown", maxTimeline)
		}
		fmt.Fprintln(w, "):")
		for _, e := range entries {
			fmt.Fprintf(w, "  %s %-8s %s\n", e.Wall.Format("15:04:05.000"), e.Node, e.Line)
		}
	}
	fmt.Fprintf(w, "traces: %d total, %d connected cross-node\n",
		len(inc.Trees), len(inc.CrossNode))
	for i, t := range inc.CrossNode {
		if i >= 4 {
			fmt.Fprintf(w, "  ... %d more cross-node traces\n", len(inc.CrossNode)-i)
			break
		}
		t.WriteTree(w)
		if cp := t.CriticalPath(); len(cp) > 0 {
			fmt.Fprintf(w, "  critical path: ")
			for j, n := range cp {
				if j > 0 {
					fmt.Fprintf(w, " -> ")
				}
				fmt.Fprintf(w, "%s@%s", n.Kind, n.Node)
			}
			fmt.Fprintln(w)
		}
	}
}
