package flightrec

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/span"
)

func TestEventRingEviction(t *testing.T) {
	r := New("n1", 4, 8, nil)
	for i := 0; i < 6; i++ {
		r.Record(fmt.Sprintf("line-%d", i))
	}
	id, ok := r.Trigger("test", "")
	if !ok || id == "" {
		t.Fatalf("trigger = %q, %v", id, ok)
	}
	snap, ok := r.Get(id)
	if !ok {
		t.Fatal("snapshot not retrievable by ID")
	}
	if len(snap.Events) != 4 {
		t.Fatalf("snapshot holds %d events, ring cap is 4", len(snap.Events))
	}
	// Oldest first, and the first two lines were overwritten.
	if snap.Events[0].Line != "line-2" || snap.Events[3].Line != "line-5" {
		t.Fatalf("ring window = %q .. %q, want line-2 .. line-5", snap.Events[0].Line, snap.Events[3].Line)
	}
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].Seq != snap.Events[i-1].Seq+1 {
			t.Fatalf("event seqs not consecutive: %d then %d", snap.Events[i-1].Seq, snap.Events[i].Seq)
		}
	}
	if st := r.Stats(); st.Events != 4 || st.EventCapacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotRingEviction(t *testing.T) {
	r := New("n1", 8, 2, nil)
	clock := time.Unix(0, 0)
	r.SetNow(func() time.Time { return clock })
	var ids []string
	for i := 0; i < 3; i++ {
		clock = clock.Add(2 * time.Second) // outside the dedup window
		id, ok := r.Trigger("kind", fmt.Sprintf("round-%d", i))
		if !ok {
			t.Fatalf("trigger %d deduped unexpectedly", i)
		}
		ids = append(ids, id)
	}
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots held, cap is 2", len(snaps))
	}
	if snaps[0].ID != ids[1] || snaps[1].ID != ids[2] {
		t.Fatalf("held %s,%s; want the newest two %s,%s", snaps[0].ID, snaps[1].ID, ids[1], ids[2])
	}
	if _, ok := r.Get(ids[0]); ok {
		t.Fatal("evicted snapshot still retrievable")
	}
	if st := r.Stats(); st.Evicted != 1 || st.Triggers != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentTriggerDedup(t *testing.T) {
	r := New("n1", 8, 16, nil)
	var wg sync.WaitGroup
	taken := make([]bool, 32)
	for i := range taken {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, taken[i] = r.Trigger("storm", "")
		}(i)
	}
	wg.Wait()
	got := 0
	for _, ok := range taken {
		if ok {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("%d snapshots from a 32-goroutine trigger storm, want exactly 1", got)
	}
	st := r.Stats()
	if st.Snapshots != 1 || st.Deduped != 31 || st.Triggers != 32 {
		t.Fatalf("stats = %+v", st)
	}
	// A different kind is not suppressed by the storm's window.
	if _, ok := r.Trigger("other", ""); !ok {
		t.Fatal("distinct trigger kind was deduped")
	}
}

func TestWriterSplitsLines(t *testing.T) {
	r := New("n1", 8, 4, nil)
	w := r.Writer()
	if _, err := fmt.Fprintf(w, "first\nsecond\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("third")); err != nil {
		t.Fatal(err)
	}
	id, _ := r.Trigger("t", "")
	snap, _ := r.Get(id)
	if len(snap.Events) != 3 {
		t.Fatalf("%d events recorded, want 3", len(snap.Events))
	}
	for i, want := range []string{"first", "second", "third"} {
		if snap.Events[i].Line != want {
			t.Fatalf("event %d = %q, want %q", i, snap.Events[i].Line, want)
		}
	}
}

func TestTriggerSamplesSpansAndState(t *testing.T) {
	st := span.NewStore(16, "n1")
	_, sp := st.Start(t.Context(), span.KindAdmit)
	sp.End()
	r := New("n1", 8, 4, st)
	r.SetState(func() any { return map[string]any{"epoch": 7} })
	id, _ := r.Trigger("t", "why")
	snap, _ := r.Get(id)
	if len(snap.Spans) == 0 {
		t.Fatal("snapshot carries no spans")
	}
	if snap.State == nil {
		t.Fatal("snapshot carries no state")
	}
	if snap.Detail != "why" {
		t.Fatalf("detail = %q", snap.Detail)
	}
	// The freeze itself leaves a flightrec span (recorded after the
	// snapshot, so it is not self-captured).
	found := false
	for _, rec := range st.Snapshot() {
		if rec.Kind == string(span.KindFlightRec) && rec.Attrs["snapshot"] == id {
			found = true
		}
	}
	if !found {
		t.Fatal("no flightrec span recorded for the freeze")
	}
	for _, rec := range snap.Spans {
		if rec.Kind == string(span.KindFlightRec) && rec.Attrs["snapshot"] == id {
			t.Fatal("snapshot captured its own freeze span")
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record("x")
	r.SetNow(nil)
	r.SetState(nil)
	if _, ok := r.Trigger("t", ""); ok {
		t.Fatal("nil recorder took a snapshot")
	}
	if _, err := r.Writer().Write([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if r.Snapshots() != nil {
		t.Fatal("nil recorder returned snapshots")
	}
	if _, ok := r.Get("id"); ok {
		t.Fatal("nil recorder found a snapshot")
	}
	if st := r.Stats(); st.Snapshots != 0 {
		t.Fatalf("nil stats = %+v", st)
	}
}

// rec builds a span record for merge tests.
func rec(trace, id, parent, node, kind string, startNS int64) span.Record {
	return span.Record{Trace: trace, ID: id, Parent: parent, Node: node, Kind: kind, StartUnixNS: startNS}
}

func TestMergeCrossNodeTimeline(t *testing.T) {
	base := time.Unix(100, 0)
	snapA := Snapshot{
		ID: "n1-1", Node: "n1", Trigger: TriggerEviction, Wall: base,
		Events: []Event{
			{Seq: 1, Wall: base.Add(-2 * time.Second), Line: "event=a"},
			{Seq: 2, Wall: base.Add(-1 * time.Second), Line: "event=b"},
		},
		Spans: []span.Record{
			rec("tr1", "s1", "", "n1", "forward", 1),
			rec("tr1", "s2", "s1", "n1", "rpc", 2),
		},
	}
	snapB := Snapshot{
		ID: "n2-1", Node: "n2", Trigger: TriggerEviction, Wall: base.Add(50 * time.Millisecond),
		Events: []Event{
			{Seq: 9, Wall: base.Add(-1500 * time.Millisecond), Line: "event=c"},
		},
		Spans: []span.Record{
			rec("tr1", "s2", "s1", "n1", "rpc", 2), // duplicate across snapshots
			rec("tr1", "s3", "s2", "n2", "admit", 3),
			rec("tr2", "x1", "missing", "n2", "plan", 4), // disconnected trace
		},
	}
	inc := Merge([]Snapshot{snapA, snapB})
	if len(inc.Snapshots) != 2 {
		t.Fatalf("%d snapshots merged", len(inc.Snapshots))
	}
	if len(inc.Nodes) != 2 || inc.Nodes[0] != "n1" || inc.Nodes[1] != "n2" {
		t.Fatalf("nodes = %v", inc.Nodes)
	}
	// Timeline interleaves both nodes' events by wall time.
	if len(inc.Timeline) != 3 {
		t.Fatalf("timeline has %d entries, want 3", len(inc.Timeline))
	}
	wantOrder := []string{"event=a", "event=c", "event=b"}
	for i, want := range wantOrder {
		if inc.Timeline[i].Line != want {
			t.Fatalf("timeline[%d] = %q, want %q", i, inc.Timeline[i].Line, want)
		}
	}
	// tr1 is connected (s1 <- s2 <- s3, dup removed) and spans two nodes;
	// tr2 is disconnected and must not count.
	if len(inc.CrossNode) != 1 || inc.CrossNode[0].Trace != "tr1" {
		t.Fatalf("cross-node traces = %d", len(inc.CrossNode))
	}
	if inc.CrossNode[0].Spans != 3 {
		t.Fatalf("tr1 merged to %d spans, want 3 (duplicate collapsed)", inc.CrossNode[0].Spans)
	}

	var buf bytes.Buffer
	inc.WriteReport(&buf, 0)
	out := buf.String()
	for _, want := range []string{"n1-1", "n2-1", TriggerEviction, "tr1", "event=c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMergeDedupsEventsBySeq(t *testing.T) {
	base := time.Unix(100, 0)
	ev := Event{Seq: 5, Wall: base, Line: "shared"}
	// The same node's event appears in two snapshots (two triggers close
	// together); the timeline must carry it once.
	inc := Merge([]Snapshot{
		{ID: "n1-1", Node: "n1", Wall: base, Events: []Event{ev}},
		{ID: "n1-2", Node: "n1", Wall: base.Add(time.Second), Events: []Event{ev}},
	})
	if len(inc.Timeline) != 1 {
		t.Fatalf("timeline has %d entries, want 1 after dedup", len(inc.Timeline))
	}
}
