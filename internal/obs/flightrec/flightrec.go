// Package flightrec is the anomaly flight recorder: a bounded per-node
// ring of recent structured log events, spans and health/membership
// state that is frozen into an immutable snapshot the moment a trigger
// fires — promise violation, audit mismatch, quorum eviction, replan
// exhaustion, watch-queue overflow. The point is forensic: by the time
// a human looks at an anomaly the evidence has scrolled away, so the
// recorder keeps the last few seconds of everything and photographs it
// at the instant something went wrong. Snapshots from several nodes
// merge into one causal timeline (see merge.go / cmd/rotadoctor).
package flightrec

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs/span"
)

// Trigger kinds. Anything may be passed to Trigger; these are the ones
// the daemon wires up.
const (
	TriggerViolation = "promise_violation"
	TriggerAudit     = "audit_mismatch"
	TriggerEviction  = "quorum_eviction"
	TriggerReplan    = "replan_exhausted"
	TriggerWatchDrop = "watch_overflow"
)

// Event is one captured log line.
type Event struct {
	Seq  uint64    `json:"seq"`
	Wall time.Time `json:"ts"`
	Line string    `json:"line"`
}

// Snapshot is the frozen state at the instant a trigger fired.
type Snapshot struct {
	ID      string    `json:"id"`
	Node    string    `json:"node"`
	Trigger string    `json:"trigger"`
	Detail  string    `json:"detail,omitempty"`
	Wall    time.Time `json:"ts"`
	Seq     uint64    `json:"seq"`
	// Events is the log ring at freeze time, oldest first.
	Events []Event `json:"events,omitempty"`
	// Spans is the recent span window at freeze time, oldest first.
	Spans []span.Record `json:"spans,omitempty"`
	// State is whatever the state callback reported (health digest,
	// membership epoch, member list...). Opaque to the recorder.
	State any `json:"state,omitempty"`
}

// Stats is the counter block surfaced under /v1/stats "flightrec".
type Stats struct {
	Snapshots        int    `json:"flight_snapshots"`
	SnapshotCapacity int    `json:"flight_snapshot_capacity"`
	Triggers         uint64 `json:"flight_triggers"`
	Deduped          uint64 `json:"flight_triggers_deduped"`
	Evicted          uint64 `json:"flight_snapshots_evicted"`
	Events           int    `json:"flight_events_buffered"`
	EventCapacity    int    `json:"flight_event_capacity"`
}

const (
	// DefaultEventCap bounds the log-line ring.
	DefaultEventCap = 1024
	// DefaultSnapshotCap bounds how many frozen snapshots are kept;
	// beyond it the oldest is evicted.
	DefaultSnapshotCap = 16
	// dedupWindow collapses repeated triggers of the same kind: an
	// eviction storm should yield one snapshot, not a hundred identical
	// ones crowding everything else out of the ring.
	dedupWindow = time.Second
	// spanWindow bounds how many recent spans each snapshot carries.
	spanWindow = 1024
)

// Recorder is the per-node flight recorder. All methods are safe on a
// nil receiver (recording disabled) and safe for concurrent use.
type Recorder struct {
	node  string
	spans *span.Store
	nowFn func() time.Time

	mu       sync.Mutex
	events   []Event
	evHead   int
	evFull   bool
	seq      uint64
	stateFn  func() any
	snaps    []Snapshot
	snapCap  int
	last     map[string]time.Time
	idSeq    uint64
	triggers uint64
	deduped  uint64
	evicted  uint64
}

// New builds a recorder for node with an event ring of eventCap lines
// and a snapshot ring of snapCap, sampling spans from spans (may be
// nil).
func New(node string, eventCap, snapCap int, spans *span.Store) *Recorder {
	if eventCap <= 0 {
		eventCap = DefaultEventCap
	}
	if snapCap <= 0 {
		snapCap = DefaultSnapshotCap
	}
	return &Recorder{
		node:    node,
		spans:   spans,
		nowFn:   time.Now,
		events:  make([]Event, eventCap),
		snapCap: snapCap,
		last:    make(map[string]time.Time),
	}
}

// SetNow overrides the wall clock (tests only).
func (r *Recorder) SetNow(now func() time.Time) {
	if r == nil {
		return
	}
	r.nowFn = now
}

// SetState installs the callback sampled into each snapshot — a
// health/membership digest. Called once at wiring time.
func (r *Recorder) SetState(fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stateFn = fn
	r.mu.Unlock()
}

// Record appends one log line to the event ring.
func (r *Recorder) Record(line string) {
	if r == nil || line == "" {
		return
	}
	r.mu.Lock()
	r.seq++
	r.events[r.evHead] = Event{Seq: r.seq, Wall: r.nowFn(), Line: line}
	r.evHead = (r.evHead + 1) % len(r.events)
	if r.evHead == 0 {
		r.evFull = true
	}
	r.mu.Unlock()
}

// writer adapts Record to io.Writer so the recorder can tee the
// Observer's structured log stream.
type writer struct{ r *Recorder }

func (w writer) Write(p []byte) (int, error) {
	for _, line := range bytes.Split(bytes.TrimRight(p, "\n"), []byte("\n")) {
		if len(line) > 0 {
			w.r.Record(string(line))
		}
	}
	return len(p), nil
}

// Writer returns an io.Writer that records every line written to it.
// Tee the daemon's log stream through it (io.MultiWriter).
func (r *Recorder) Writer() io.Writer {
	if r == nil {
		return io.Discard
	}
	return writer{r}
}

// Trigger freezes a snapshot unless the same trigger kind fired within
// the dedup window. Returns the snapshot ID and whether one was taken.
func (r *Recorder) Trigger(kind, detail string) (string, bool) {
	if r == nil {
		return "", false
	}
	now := r.nowFn()
	r.mu.Lock()
	r.triggers++
	if at, ok := r.last[kind]; ok && now.Sub(at) < dedupWindow {
		r.deduped++
		r.mu.Unlock()
		return "", false
	}
	r.last[kind] = now
	r.idSeq++
	snap := Snapshot{
		ID:      fmt.Sprintf("%s-%d", r.node, r.idSeq),
		Node:    r.node,
		Trigger: kind,
		Detail:  detail,
		Wall:    now,
		Seq:     r.seq,
		Events:  r.eventsLocked(),
	}
	stateFn := r.stateFn
	r.mu.Unlock()

	// Sample spans and state outside r.mu: both take their own locks
	// and the state callback may reach into health/membership layers.
	if r.spans != nil {
		recs := r.spans.Snapshot()
		if len(recs) > spanWindow {
			recs = recs[len(recs)-spanWindow:]
		}
		snap.Spans = recs
	}
	if stateFn != nil {
		snap.State = stateFn()
	}

	r.mu.Lock()
	r.snaps = append(r.snaps, snap)
	if len(r.snaps) > r.snapCap {
		drop := len(r.snaps) - r.snapCap
		r.snaps = append(r.snaps[:0], r.snaps[drop:]...)
		r.evicted += uint64(drop)
	}
	r.mu.Unlock()

	// Leave a span so the freeze itself shows up on the timeline.
	if r.spans != nil {
		_, sp := r.spans.Start(context.Background(), span.KindFlightRec)
		sp.Attr("trigger", kind)
		sp.Attr("snapshot", snap.ID)
		if detail != "" {
			sp.Attr("detail", detail)
		}
		sp.End()
	}
	return snap.ID, true
}

// eventsLocked copies the ring oldest-first. Caller holds r.mu.
func (r *Recorder) eventsLocked() []Event {
	n := r.evHead
	if r.evFull {
		n = len(r.events)
	}
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := 0
	if r.evFull {
		start = r.evHead
	}
	for k := 0; k < n; k++ {
		out = append(out, r.events[(start+k)%len(r.events)])
	}
	return out
}

// Get returns the snapshot with the given ID.
func (r *Recorder) Get(id string) (Snapshot, bool) {
	if r == nil {
		return Snapshot{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.snaps {
		if r.snaps[i].ID == id {
			return r.snaps[i], true
		}
	}
	return Snapshot{}, false
}

// Snapshots returns all held snapshots, oldest first.
func (r *Recorder) Snapshots() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Snapshot(nil), r.snaps...)
}

// Stats digests the counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev := r.evHead
	if r.evFull {
		ev = len(r.events)
	}
	return Stats{
		Snapshots:        len(r.snaps),
		SnapshotCapacity: r.snapCap,
		Triggers:         r.triggers,
		Deduped:          r.deduped,
		Evicted:          r.evicted,
		Events:           ev,
		EventCapacity:    len(r.events),
	}
}
