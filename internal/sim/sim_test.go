package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/admission"
	"repro/internal/churn"
	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/trace"
	"repro/internal/workload"
)

var cpuL1 = resource.CPUAt("l1")

func u(n int64) resource.Rate { return resource.FromUnits(n) }

func staticTrace(units int64, horizon interval.Time, locs ...resource.Location) churn.Trace {
	var tr churn.Trace
	for _, loc := range locs {
		tr.Base.Add(resource.NewTerm(resource.FromUnits(units), resource.CPUAt(loc), interval.New(0, horizon)))
	}
	return tr
}

func mkJob(t testing.TB, name string, a compute.ActorName, loc resource.Location, start, deadline interval.Time) workload.Job {
	t.Helper()
	c, err := cost.Realize(cost.Paper(), a, compute.Evaluate(a, loc, 1)) // 8 cpu
	if err != nil {
		t.Fatal(err)
	}
	d, err := compute.NewDistributed(name, start, deadline, c)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Job{Dist: d, Arrival: start}
}

func TestPlannedRotaCompletesEverythingItAdmits(t *testing.T) {
	trace := staticTrace(2, 40, "l1")
	jobs := []workload.Job{
		mkJob(t, "j1", "a1", "l1", 0, 10),
		mkJob(t, "j2", "a2", "l1", 0, 10),
		mkJob(t, "j3", "a3", "l1", 2, 12),  // arrives when capacity is committed
		mkJob(t, "j4", "a4", "l1", 12, 20), // fits after the first wave
	}
	res, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned}, jobs, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 4 {
		t.Errorf("Offered = %d", res.Offered)
	}
	if res.Admitted+res.Rejected != res.Offered {
		t.Errorf("admitted %d + rejected %d != offered %d", res.Admitted, res.Rejected, res.Offered)
	}
	// The assurance property: zero misses, zero violations.
	if res.Missed != 0 || res.Violations != 0 {
		t.Errorf("missed=%d violations=%d, want 0/0", res.Missed, res.Violations)
	}
	if res.CompletedOnTime != res.Admitted {
		t.Errorf("completed %d != admitted %d", res.CompletedOnTime, res.Admitted)
	}
	if res.Admitted < 3 {
		t.Errorf("admitted only %d of 4; capacity fits at least 3", res.Admitted)
	}
	if res.GoodWork != res.AdmittedWork {
		t.Errorf("goodput %d != admitted work %d", res.GoodWork, res.AdmittedWork)
	}
	if res.Utilization() <= 0 || res.Utilization() > 1 {
		t.Errorf("utilization = %f", res.Utilization())
	}
}

func TestPlannedRequiresPlans(t *testing.T) {
	trace := staticTrace(2, 20, "l1")
	jobs := []workload.Job{mkJob(t, "j1", "a1", "l1", 0, 10)}
	_, err := Run(Config{Policy: admission.AlwaysAdmit{}, Executor: Planned}, jobs, trace)
	if !errors.Is(err, ErrPlanlessAdmission) {
		t.Fatalf("want ErrPlanlessAdmission, got %v", err)
	}
}

func TestGreedyAlwaysAdmitOverloads(t *testing.T) {
	// Capacity for one job per 4 ticks; offer 4 jobs with deadline 8.
	trace := staticTrace(2, 20, "l1")
	var jobs []workload.Job
	for i, a := range []compute.ActorName{"a1", "a2", "a3", "a4"} {
		jobs = append(jobs, mkJob(t, "j"+string(rune('1'+i)), a, "l1", 0, 8))
	}
	res, err := Run(Config{Policy: admission.AlwaysAdmit{}, Executor: GreedyEDF}, jobs, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 4 {
		t.Fatalf("Admitted = %d", res.Admitted)
	}
	// 16 units by t=8 at rate 2; 4 jobs need 32: at most 2 finish on time.
	if res.CompletedOnTime > 2 {
		t.Errorf("CompletedOnTime = %d, capacity supports at most 2", res.CompletedOnTime)
	}
	if res.Missed < 2 {
		t.Errorf("Missed = %d, want ≥ 2", res.Missed)
	}
	if res.MissRate() <= 0 {
		t.Error("MissRate should be positive under overload")
	}
}

func TestGreedyEDFFeasibleAvoidsOverload(t *testing.T) {
	trace := staticTrace(2, 20, "l1")
	var jobs []workload.Job
	for i, a := range []compute.ActorName{"a1", "a2", "a3", "a4"} {
		jobs = append(jobs, mkJob(t, "j"+string(rune('1'+i)), a, "l1", 0, 8))
	}
	res, err := Run(Config{Policy: admission.NewEDFFeasible(), Executor: GreedyEDF}, jobs, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 0 {
		t.Errorf("edf-feasible missed %d", res.Missed)
	}
	if res.Admitted < 2 {
		t.Errorf("admitted %d, capacity supports 2", res.Admitted)
	}
}

func TestChurnJoinExpandsCapacity(t *testing.T) {
	// No base; a join at t=0 carries all capacity.
	tr := churn.Trace{Joins: []churn.Join{{
		At:    0,
		Terms: resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 10))),
	}}}
	jobs := []workload.Job{mkJob(t, "j1", "a1", "l1", 0, 10)}
	res, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned}, jobs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 1 || res.CompletedOnTime != 1 {
		t.Errorf("join-supplied job: admitted=%d completed=%d", res.Admitted, res.CompletedOnTime)
	}
}

func TestRenegeCausesViolation(t *testing.T) {
	// Resource joins, job admitted against it, resource withdraws at t=2.
	tr := churn.Trace{Joins: []churn.Join{{
		At:        0,
		Terms:     resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 10))),
		RenegeAt:  2,
		Withdrawn: resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(2, 10))),
	}}}
	jobs := []workload.Job{mkJob(t, "doomed", "a1", "l1", 0, 10)}
	res, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned}, jobs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 1 {
		t.Fatalf("Admitted = %d", res.Admitted)
	}
	if res.Violations == 0 {
		t.Error("renege should cause violations")
	}
	if res.Missed != 1 || res.CompletedOnTime != 0 {
		t.Errorf("missed=%d completed=%d, want 1/0", res.Missed, res.CompletedOnTime)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	wcfg := workload.Config{
		Seed: 9, Locations: []resource.Location{"l1", "l2"},
		NumJobs: 30, MeanInterarrival: 4,
		ActorsMin: 1, ActorsMax: 2, StepsMin: 1, StepsMax: 3,
		SendProb: 0.2, MigrateProb: 0.05, EvalWeightMax: 2, SlackFactor: 3,
	}
	ccfg := churn.Config{
		Seed: 10, Locations: []resource.Location{"l1", "l2"},
		Horizon: 400, MeanInterarrival: 6,
		LeaseMin: 10, LeaseMax: 60, RateMin: 1, RateMax: 3,
		LinkProb: 0.3, Base: 2,
	}
	jobs, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := churn.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		res, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned}, jobs, trace)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	a.DecisionTime, b.DecisionTime = 0, 0 // wall clock is not deterministic
	if a != b {
		t.Errorf("identical runs diverge:\n%+v\n%+v", a, b)
	}
	if a.Missed != 0 || a.Violations != 0 {
		t.Errorf("rota planned run missed=%d violations=%d", a.Missed, a.Violations)
	}
}

func TestGreedyRequiresUnitDT(t *testing.T) {
	trace := staticTrace(1, 10, "l1")
	_, err := Run(Config{Policy: admission.AlwaysAdmit{}, Executor: GreedyEDF, DT: 2}, nil, trace)
	if err == nil {
		t.Fatal("DT=2 greedy accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil, churn.Trace{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := Run(Config{Policy: admission.AlwaysAdmit{}, Executor: Executor(9)}, nil, churn.Trace{}); err == nil {
		t.Error("unknown executor accepted")
	}
	if Executor(9).String() == "" || Planned.String() != "planned" || GreedyEDF.String() != "greedy-edf" {
		t.Error("executor names wrong")
	}
}

func TestMaxDeadline(t *testing.T) {
	jobs := []workload.Job{
		mkJob(t, "a", "a1", "l1", 0, 7),
		mkJob(t, "b", "b1", "l1", 0, 19),
	}
	if got := MaxDeadline(jobs); got != 19 {
		t.Errorf("MaxDeadline = %d", got)
	}
	if got := MaxDeadline(nil); got != 0 {
		t.Errorf("MaxDeadline(nil) = %d", got)
	}
}

func TestTraceIntegration(t *testing.T) {
	tr := churn.Trace{Joins: []churn.Join{{
		At:        0,
		Terms:     resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 10))),
		RenegeAt:  2,
		Withdrawn: resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(2, 10))),
	}}}
	jobs := []workload.Job{mkJob(t, "doomed", "a1", "l1", 0, 10)}
	log := trace.NewLog()
	res, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned, Trace: log}, jobs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("scenario should produce violations")
	}
	for _, kind := range []trace.Kind{
		trace.KindJoin, trace.KindRenege, trace.KindArrival,
		trace.KindAdmit, trace.KindViolation, trace.KindMiss,
	} {
		if len(log.Filter(kind)) == 0 {
			t.Errorf("no %s events recorded", kind)
		}
	}
	// The JSONL stream round-trips.
	var sb strings.Builder
	if err := log.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != log.Len() {
		t.Errorf("round trip %d != %d", back.Len(), log.Len())
	}
}

func TestTraceGreedyIntegration(t *testing.T) {
	log := trace.NewLog()
	tr := staticTrace(2, 20, "l1")
	var jobs []workload.Job
	for i, a := range []compute.ActorName{"a1", "a2", "a3", "a4"} {
		jobs = append(jobs, mkJob(t, "j"+string(rune('1'+i)), a, "l1", 0, 8))
	}
	if _, err := Run(Config{Policy: admission.AlwaysAdmit{}, Executor: GreedyEDF, Trace: log}, jobs, tr); err != nil {
		t.Fatal(err)
	}
	if len(log.Filter(trace.KindAdmit)) != 4 {
		t.Errorf("admit events = %d", len(log.Filter(trace.KindAdmit)))
	}
	if len(log.Filter(trace.KindMiss)) == 0 {
		t.Error("overload should record misses")
	}
	if len(log.Filter(trace.KindComplete)) == 0 {
		t.Error("some jobs should complete")
	}
}

func TestRepairRecoversRenegedCommitments(t *testing.T) {
	// rate-3 provider joins and reneges at t=2; a rate-1 base survives.
	// Without repair the 16-unit job is lost; with repair it completes by
	// its deadline on the survivor.
	tr := churn.Trace{Joins: []churn.Join{{
		At:        0,
		Terms:     resource.NewSet(resource.NewTerm(u(3), cpuL1, interval.New(0, 12))),
		RenegeAt:  2,
		Withdrawn: resource.NewSet(resource.NewTerm(u(3), cpuL1, interval.New(2, 12))),
	}}}
	tr.Base.Add(resource.NewTerm(u(1), cpuL1, interval.New(0, 12)))

	job := mkJob(t, "patient", "a1", "l1", 0, 12)
	job.Dist.Actors[0].Steps[0].Amounts = resource.NewAmounts(resource.AmountOf(16, cpuL1))

	without, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned},
		[]workload.Job{job}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if without.Missed != 1 || without.CompletedOnTime != 0 {
		t.Fatalf("without repair: %+v", without)
	}

	with, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned, Repair: true},
		[]workload.Job{job}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if with.Repaired != 1 {
		t.Errorf("Repaired = %d, want 1", with.Repaired)
	}
	if with.CompletedOnTime != 1 || with.Missed != 0 {
		t.Errorf("with repair: completed=%d missed=%d, want 1/0",
			with.CompletedOnTime, with.Missed)
	}
}

func TestRepairIrreparableCountsMissImmediately(t *testing.T) {
	// No survivor at all: repair must fail and the job counts as missed.
	tr := churn.Trace{Joins: []churn.Join{{
		At:        0,
		Terms:     resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 10))),
		RenegeAt:  2,
		Withdrawn: resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(2, 10))),
	}}}
	jobs := []workload.Job{mkJob(t, "doomed", "a1", "l1", 0, 10)}
	res, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned, Repair: true}, jobs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired != 0 || res.Missed != 1 {
		t.Errorf("repaired=%d missed=%d, want 0/1", res.Repaired, res.Missed)
	}
}

func TestPlannedCoarseDT(t *testing.T) {
	// DT=2 batches two ticks per transition but must preserve outcomes:
	// same admissions and completions as DT=1 for a deterministic load.
	trace := staticTrace(2, 40, "l1")
	jobs := []workload.Job{
		mkJob(t, "j1", "a1", "l1", 0, 12),
		mkJob(t, "j2", "a2", "l1", 4, 20),
	}
	fine, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned, DT: 1}, jobs, trace)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned, DT: 2}, jobs, trace)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Admitted != coarse.Admitted ||
		fine.CompletedOnTime != coarse.CompletedOnTime ||
		fine.Missed != coarse.Missed ||
		fine.ConsumedQty != coarse.ConsumedQty {
		t.Errorf("DT=1 %+v vs DT=2 %+v", fine, coarse)
	}
}

func TestSoakLargeOpenSystem(t *testing.T) {
	// A large end-to-end soak: 600 jobs, heavy churn with reneging, plan
	// repair enabled — the assurance invariants must hold at scale and
	// every statistic must stay internally consistent.
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	jobs, err := workload.Generate(workload.Config{
		Seed:             12021,
		Locations:        []resource.Location{"l1", "l2", "l3", "l4"},
		NumJobs:          600,
		MeanInterarrival: 5,
		ActorsMin:        1,
		ActorsMax:        3,
		StepsMin:         1,
		StepsMax:         5,
		SendProb:         0.25,
		MigrateProb:      0.05,
		EvalWeightMax:    3,
		SlackFactor:      2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := churn.Generate(churn.Config{
		Seed:             12022,
		Locations:        []resource.Location{"l1", "l2", "l3", "l4"},
		Horizon:          3200,
		MeanInterarrival: 3,
		LeaseMin:         10,
		LeaseMax:         120,
		RateMin:          1,
		RateMax:          4,
		LinkProb:         0.35,
		RenegeProb:       0.15,
		Base:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Policy: &admission.Rota{}, Executor: Planned, Repair: true}, jobs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 600 {
		t.Fatalf("Offered = %d", res.Offered)
	}
	if res.Admitted+res.Rejected != res.Offered {
		t.Errorf("conservation broken: %d + %d != %d", res.Admitted, res.Rejected, res.Offered)
	}
	if res.CompletedOnTime+res.Missed != res.Admitted {
		t.Errorf("outcome conservation broken: %d + %d != %d",
			res.CompletedOnTime, res.Missed, res.Admitted)
	}
	if res.Admitted < 100 {
		t.Errorf("suspiciously few admissions: %d", res.Admitted)
	}
	// With 15% reneging some misses are legitimate, but misses must not
	// exceed the commitments that were actually damaged or irreparable.
	if res.Missed > res.Violations+res.Repaired {
		t.Errorf("more misses (%d) than damage events (%d violations, %d repairs)",
			res.Missed, res.Violations, res.Repaired)
	}
	if res.GoodWork > res.AdmittedWork || res.AdmittedWork > res.OfferedWork {
		t.Errorf("work accounting broken: %d / %d / %d",
			res.GoodWork, res.AdmittedWork, res.OfferedWork)
	}
	if u := res.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization out of range: %f", u)
	}
}
