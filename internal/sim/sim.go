// Package sim is the discrete-event simulator that closes the loop
// between ROTA's reasoning and ground truth. It drives an open system —
// resources joining and (possibly dishonestly) leaving, deadline-
// constrained jobs arriving — through one of two executors:
//
//   - Planned: the system maintains a ROTA state; admitted computations
//     carry witness plans and consumption follows them exactly (the
//     committed path of Theorems 3–4). This is the execution model under
//     which the paper's assurances are stated.
//
//   - GreedyEDF: no coordination; admitted jobs' actors share whatever is
//     available each tick, earliest deadline first. This is the execution
//     model available to admission baselines that produce no plan.
//
// The simulator reports admission, completion, deadline-miss and
// utilization statistics, making checker-vs-reality experiments (E3) and
// policy comparisons (E4, E5) one function call.
package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/actor"
	"repro/internal/admission"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Executor selects the execution model.
type Executor uint8

// The execution models.
const (
	// Planned follows admission witness plans (requires a plan-producing
	// policy such as admission.Rota).
	Planned Executor = iota + 1
	// GreedyEDF shares resources among admitted actors tick by tick,
	// earliest deadline first.
	GreedyEDF
)

// String names the executor.
func (e Executor) String() string {
	switch e {
	case Planned:
		return "planned"
	case GreedyEDF:
		return "greedy-edf"
	default:
		return fmt.Sprintf("Executor(%d)", uint8(e))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	Policy   admission.Policy
	Executor Executor
	// DT is the paper's Δt; defaults to 1.
	DT interval.Time
	// Horizon overrides the automatic end time (max deadline / churn
	// horizon) when positive.
	Horizon interval.Time
	// Trace, when non-nil, receives structured events for every join,
	// renege, arrival, admission, rejection, completion, miss and
	// violation.
	Trace *trace.Log
	// Repair, in planned execution, re-plans commitments broken by
	// reneging resources against the remaining free capacity (the Φ
	// footnote's "revised as necessary"). Irreparable commitments are
	// dropped and counted as missed at the point of damage.
	Repair bool
}

// emit records an event when tracing is enabled.
func (c Config) emit(e trace.Event) {
	if c.Trace != nil {
		c.Trace.Add(e)
	}
}

// Result aggregates one run.
type Result struct {
	Policy   string
	Executor string

	Offered  int
	Admitted int
	Rejected int
	// CompletedOnTime admitted jobs finished all work by their deadline
	// without violations.
	CompletedOnTime int
	// Missed admitted jobs either violated, finished late, or never
	// finished.
	Missed int

	// Violations counts per-tick plan violations (planned mode, under
	// reneging only).
	Violations int
	// Repaired counts commitments successfully re-planned after damage
	// (planned mode with Repair enabled).
	Repaired int

	// OfferedWork is the total work of all offered jobs; AdmittedWork of
	// admitted ones; GoodWork of jobs that completed on time (goodput).
	OfferedWork  resource.Quantity
	AdmittedWork resource.Quantity
	GoodWork     resource.Quantity

	// ConsumedQty and ExpiredQty partition the availability that passed
	// through the system; utilization = consumed / (consumed + expired).
	ConsumedQty resource.Quantity
	ExpiredQty  resource.Quantity

	// DecisionTime is the total wall-clock time spent in policy
	// decisions; Decisions the number made.
	DecisionTime time.Duration
	Decisions    int
}

// Utilization returns consumed / (consumed + expired), or 0.
func (r Result) Utilization() float64 {
	total := r.ConsumedQty + r.ExpiredQty
	if total == 0 {
		return 0
	}
	return float64(r.ConsumedQty) / float64(total)
}

// MissRate returns missed / admitted, or 0.
func (r Result) MissRate() float64 {
	if r.Admitted == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.Admitted)
}

// AdmitRate returns admitted / offered, or 0.
func (r Result) AdmitRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Admitted) / float64(r.Offered)
}

// GoodputRatio returns on-time completed work / offered work, or 0.
func (r Result) GoodputRatio() float64 {
	if r.OfferedWork == 0 {
		return 0
	}
	return float64(r.GoodWork) / float64(r.OfferedWork)
}

// ErrPlanlessAdmission is returned when a planned-execution run admits a
// job without a witness plan.
var ErrPlanlessAdmission = errors.New("sim: planned executor needs a plan-producing policy")

// Run executes one simulation.
func Run(cfg Config, jobs []workload.Job, churnTrace churn.Trace) (Result, error) {
	if cfg.Policy == nil {
		return Result{}, errors.New("sim: no policy")
	}
	if cfg.DT <= 0 {
		cfg.DT = 1
	}
	cfg.Policy.Reset()
	horizon := cfg.Horizon
	if horizon <= 0 {
		for _, j := range jobs {
			if j.Dist.Deadline > horizon {
				horizon = j.Dist.Deadline
			}
		}
		for _, j := range churnTrace.Joins {
			if hull := j.Terms.Hull(); hull.End > horizon {
				horizon = hull.End
			}
		}
		if hull := churnTrace.Base.Hull(); hull.End > horizon {
			horizon = hull.End
		}
		horizon++
	}
	switch cfg.Executor {
	case GreedyEDF:
		return runGreedy(cfg, jobs, churnTrace, horizon)
	case Planned, 0:
		return runPlanned(cfg, jobs, churnTrace, horizon)
	default:
		return Result{}, fmt.Errorf("sim: unknown executor %v", cfg.Executor)
	}
}

// eventIndex buckets workload and churn events by tick.
type eventIndex struct {
	arrivals map[interval.Time][]workload.Job
	joins    map[interval.Time][]churn.Join
	reneges  map[interval.Time][]resource.Set
}

func indexEvents(jobs []workload.Job, churnTrace churn.Trace) eventIndex {
	idx := eventIndex{
		arrivals: make(map[interval.Time][]workload.Job),
		joins:    make(map[interval.Time][]churn.Join),
		reneges:  make(map[interval.Time][]resource.Set),
	}
	for _, j := range jobs {
		idx.arrivals[j.Arrival] = append(idx.arrivals[j.Arrival], j)
	}
	for _, j := range churnTrace.Joins {
		idx.joins[j.At] = append(idx.joins[j.At], j)
		if j.Reneges() {
			idx.reneges[j.RenegeAt] = append(idx.reneges[j.RenegeAt], j.Withdrawn)
		}
	}
	return idx
}

func runPlanned(cfg Config, jobs []workload.Job, churnTrace churn.Trace, horizon interval.Time) (Result, error) {
	res := Result{Policy: cfg.Policy.Name(), Executor: Planned.String()}
	idx := indexEvents(jobs, churnTrace)
	state := core.NewState(churnTrace.Base, 0)

	jobWork := make(map[string]resource.Quantity)
	violated := make(map[string]bool)
	deadlines := make(map[string]interval.Time)

	for now := interval.Time(0); now < horizon; now += cfg.DT {
		// Events fire on every tick of the step window (DT may skip some
		// when > 1; events are indexed per tick, so scan the window).
		for t := now; t < now+cfg.DT && t < horizon; t++ {
			for _, join := range idx.joins[t] {
				state, _ = core.Acquire(state, join.Terms)
				cfg.emit(trace.Event{At: t, Kind: trace.KindJoin, Detail: join.Terms.String()})
			}
			for _, withdrawn := range idx.reneges[t] {
				state.Theta = state.Theta.SubtractSaturating(withdrawn)
				cfg.emit(trace.Event{At: t, Kind: trace.KindRenege, Detail: withdrawn.String()})
			}
			for _, job := range idx.arrivals[t] {
				res.Offered++
				work := job.Dist.TotalAmounts().Total()
				res.OfferedWork += work
				cfg.emit(trace.Event{At: t, Kind: trace.KindArrival, Job: job.Dist.Name, Quantity: work.Units()})
				view := admission.View{Now: state.Now, Theta: state.Theta, State: &state}
				dec := admission.Decide(cfg.Policy, view, job.Dist)
				res.Decisions++
				res.DecisionTime += dec.Elapsed
				if !dec.Admit {
					res.Rejected++
					cfg.emit(trace.Event{At: t, Kind: trace.KindReject, Job: job.Dist.Name, Detail: dec.Reason})
					continue
				}
				if dec.Plan == nil {
					return Result{}, ErrPlanlessAdmission
				}
				next, _, err := core.Accommodate(state, core.ConcurrentAt(job.Dist, state.Now), *dec.Plan)
				if err != nil {
					// The policy admitted but the state rejected the plan
					// (e.g. a renege raced the decision): count as reject.
					res.Rejected++
					continue
				}
				state = next
				res.Admitted++
				res.AdmittedWork += work
				jobWork[job.Dist.Name] = work
				deadlines[job.Dist.Name] = job.Dist.Deadline
				cfg.emit(trace.Event{At: t, Kind: trace.KindAdmit, Job: job.Dist.Name, Quantity: work.Units()})
			}
		}

		next, tr, viols := core.Tick(state, cfg.DT)
		res.Violations += len(viols)
		for _, v := range viols {
			violated[v.Computation] = true
			cfg.emit(trace.Event{At: v.At, Kind: trace.KindViolation, Job: v.Computation, Detail: v.Type.String()})
		}
		if cfg.Repair && len(viols) > 0 {
			victims := make(map[string]bool)
			for _, v := range viols {
				victims[v.Computation] = true
			}
			// A commitment that reached its plan finish this same tick has
			// already been accounted through tr.Completed (as a miss,
			// since it is violated); repairing or re-counting it would
			// double-book the job.
			for _, name := range tr.Completed {
				delete(victims, name)
			}
			for name := range victims {
				fixed, err := core.Repair(next, name, viols)
				if err != nil {
					// Irreparable: drop it now and count the miss.
					dropped, _, derr := core.Leave(fixed, name)
					if derr != nil {
						// Leave refuses started computations; excise directly.
						dropped = next.Clone()
						for i, c := range dropped.Commitments {
							if c.Name() == name {
								dropped.Commitments = append(dropped.Commitments[:i], dropped.Commitments[i+1:]...)
								break
							}
						}
					}
					next = dropped
					res.Missed++
					cfg.Policy.OnComplete(name)
					cfg.emit(trace.Event{At: next.Now, Kind: trace.KindMiss, Job: name, Detail: "irreparable"})
					continue
				}
				next = fixed
				res.Repaired++
				delete(violated, name) // the revised plan restores the assurance
			}
		}
		for _, c := range tr.Consumptions {
			res.ConsumedQty += resource.Quantity(c.Rate) * resource.Quantity(cfg.DT)
		}
		for _, q := range tr.Expired.TotalQuantity(interval.New(tr.From, tr.To)) {
			res.ExpiredQty += q
		}
		for _, name := range tr.Completed {
			cfg.Policy.OnComplete(name)
			if violated[name] || next.Now > deadlines[name] {
				res.Missed++
				cfg.emit(trace.Event{At: next.Now, Kind: trace.KindMiss, Job: name})
			} else {
				res.CompletedOnTime++
				res.GoodWork += jobWork[name]
				cfg.emit(trace.Event{At: next.Now, Kind: trace.KindComplete, Job: name})
			}
		}
		state = next
	}
	// Whatever is still committed at the horizon never completed.
	res.Missed += len(state.Commitments)
	return res, nil
}

func runGreedy(cfg Config, jobs []workload.Job, churnTrace churn.Trace, horizon interval.Time) (Result, error) {
	if cfg.DT != 1 {
		return Result{}, errors.New("sim: greedy executor requires DT=1")
	}
	res := Result{Policy: cfg.Policy.Name(), Executor: GreedyEDF.String()}
	idx := indexEvents(jobs, churnTrace)

	rt := actor.NewRuntime(0)
	avail := churnTrace.Base.Clone()

	type jobState struct {
		tasks    []*actor.Task
		deadline interval.Time
		work     resource.Quantity
		finished bool
	}
	admitted := make(map[string]*jobState)

	for now := interval.Time(0); now < horizon; now++ {
		for _, join := range idx.joins[now] {
			avail = avail.Union(join.Terms)
			cfg.emit(trace.Event{At: now, Kind: trace.KindJoin, Detail: join.Terms.String()})
		}
		for _, withdrawn := range idx.reneges[now] {
			avail = avail.SubtractSaturating(withdrawn)
			cfg.emit(trace.Event{At: now, Kind: trace.KindRenege, Detail: withdrawn.String()})
		}
		for _, job := range idx.arrivals[now] {
			res.Offered++
			work := job.Dist.TotalAmounts().Total()
			res.OfferedWork += work
			cfg.emit(trace.Event{At: now, Kind: trace.KindArrival, Job: job.Dist.Name, Quantity: work.Units()})
			view := admission.View{Now: now, Theta: avail}
			dec := admission.Decide(cfg.Policy, view, job.Dist)
			res.Decisions++
			res.DecisionTime += dec.Elapsed
			if !dec.Admit {
				res.Rejected++
				cfg.emit(trace.Event{At: now, Kind: trace.KindReject, Job: job.Dist.Name, Detail: dec.Reason})
				continue
			}
			js := &jobState{deadline: job.Dist.Deadline, work: work}
			spawnFailed := false
			for _, comp := range job.Dist.Actors {
				task := actor.NewTask(job.Dist.Name, comp, job.Dist.Deadline)
				if err := rt.Spawn(task); err != nil {
					spawnFailed = true
					break
				}
				js.tasks = append(js.tasks, task)
			}
			if spawnFailed {
				res.Rejected++
				continue
			}
			res.Admitted++
			res.AdmittedWork += work
			admitted[job.Dist.Name] = js
			cfg.emit(trace.Event{At: now, Kind: trace.KindAdmit, Job: job.Dist.Name, Quantity: work.Units()})
		}

		// Account expiry: availability for this tick that survives the
		// EDF pass is lost.
		tick := interval.New(now, now+1)
		var before resource.Quantity
		for _, q := range avail.TotalQuantity(tick) {
			before += q
		}
		consumed := rt.TickEDF(&avail)
		var used resource.Quantity
		for _, c := range consumed {
			used += c.Qty
		}
		res.ConsumedQty += used
		res.ExpiredQty += before - used

		// Detect job completions.
		for name, js := range admitted {
			if js.finished {
				continue
			}
			done := true
			late := false
			for _, t := range js.tasks {
				if !t.Done() {
					done = false
					break
				}
				if t.DoneAt() > js.deadline {
					late = true
				}
			}
			switch {
			case done && !late:
				js.finished = true
				res.CompletedOnTime++
				res.GoodWork += js.work
				cfg.Policy.OnComplete(name)
				cfg.emit(trace.Event{At: rt.Now(), Kind: trace.KindComplete, Job: name})
			case done && late:
				js.finished = true
				res.Missed++
				cfg.Policy.OnComplete(name)
				cfg.emit(trace.Event{At: rt.Now(), Kind: trace.KindMiss, Job: name})
			case rt.Now() > js.deadline:
				// Past deadline with work outstanding: a definitive miss.
				js.finished = true
				res.Missed++
				cfg.Policy.OnComplete(name)
				cfg.emit(trace.Event{At: rt.Now(), Kind: trace.KindMiss, Job: name})
			}
		}
	}
	for _, js := range admitted {
		if !js.finished {
			res.Missed++
		}
	}
	return res, nil
}

// MaxDeadline returns the latest deadline in a job list (handy for
// choosing horizons).
func MaxDeadline(jobs []workload.Job) interval.Time {
	var max interval.Time
	for _, j := range jobs {
		if j.Dist.Deadline > max {
			max = j.Dist.Deadline
		}
	}
	return max
}
