package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

func freshIdleState(units int64, span interval.Interval) State {
	return NewState(resource.NewSet(resource.NewTerm(u(units), cpuL1, span)), span.Start)
}

func TestPathBasics(t *testing.T) {
	s := freshIdleState(2, interval.New(0, 5))
	res := Run(s, 5, 1)
	p := res.Path
	if p.Len() != 6 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.At(0).Now != 0 || p.Last().Now != 5 {
		t.Errorf("endpoints: %d..%d", p.At(0).Now, p.Last().Now)
	}
	if got := p.IndexAt(3); got != 3 {
		t.Errorf("IndexAt(3) = %d", got)
	}
	if got := p.IndexAt(99); got != p.Len()-1 {
		t.Errorf("IndexAt(99) = %d", got)
	}
	if !strings.Contains(p.String(), "expire") {
		t.Errorf("path String = %q", p.String())
	}
}

func TestFreeWithinCollectsExpiredResources(t *testing.T) {
	// An idle system expires everything; all of it should be visible as
	// free capacity from position 0.
	s := freshIdleState(2, interval.New(0, 5))
	res := Run(s, 5, 1)
	free := res.Path.FreeWithin(0, interval.New(0, 5))
	want := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 5)))
	if !free.Equal(want) {
		t.Errorf("free = %v, want %v", free, want)
	}
	// From position 3, only ticks 3 and 4 remain free.
	free = res.Path.FreeWithin(3, interval.New(0, 5))
	want = resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(3, 5)))
	if !free.Equal(want) {
		t.Errorf("free from 3 = %v, want %v", free, want)
	}
}

func TestFreeWithinExcludesCommittedConsumption(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8))) // 16 units
	s := NewState(theta, 0)
	s2, _, err := Admit(s, evalJob(t, "busy", "a1", 0, 8)) // consumes ticks 0..3
	if err != nil {
		t.Fatal(err)
	}
	res := Run(s2, 8, 1)
	free := res.Path.FreeWithin(0, interval.New(0, 8))
	want := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(4, 8)))
	if !free.Equal(want) {
		t.Errorf("free = %v, want %v", free, want)
	}
}

func TestFreeWithinIncludesUnmaterializedFuture(t *testing.T) {
	// Availability beyond the run horizon still counts as free.
	s := freshIdleState(2, interval.New(0, 10))
	res := Run(s, 3, 1)
	free := res.Path.FreeWithin(0, interval.New(0, 10))
	want := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 10)))
	if !free.Equal(want) {
		t.Errorf("free = %v, want %v", free, want)
	}
}

func TestEvalAtomsAndConnectives(t *testing.T) {
	s := freshIdleState(2, interval.New(0, 10)) // 20 free units
	res := Run(s, 10, 1)
	p := res.Path

	fits := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(20, cpuL1)),
		Window:  interval.New(0, 10),
	}}
	tooBig := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(21, cpuL1)),
		Window:  interval.New(0, 10),
	}}

	check := func(f Formula, i int, want bool) {
		t.Helper()
		got, err := Eval(p, i, f)
		if err != nil {
			t.Fatalf("Eval(%v): %v", f, err)
		}
		if got != want {
			t.Errorf("Eval(%v) at %d = %v, want %v", f, i, got, want)
		}
	}

	check(True{}, 0, true)
	check(False{}, 0, false)
	check(fits, 0, true)
	check(tooBig, 0, false)
	check(Not{F: tooBig}, 0, true)
	check(And{L: fits, R: Not{F: tooBig}}, 0, true)
	check(And{L: fits, R: tooBig}, 0, false)
	check(Or{L: tooBig, R: fits}, 0, true)
	check(Or{L: tooBig, R: False{}}, 0, false)

	// By position 1, one tick (2 units) has passed: 20 no longer fits.
	check(fits, 1, false)
	// ◇ is monotone backwards: satisfiable now, so eventually too.
	check(Eventually{F: fits}, 0, true)
	// fits holds only at position 0, so □fits is false but ◇fits true.
	check(Always{F: fits}, 0, false)
	smaller := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(2, cpuL1)),
		Window:  interval.New(0, 10),
	}}
	// 2 units fit at every position while the window is open, but at the
	// final position (t=10) the window has closed and a non-empty
	// requirement is unsatisfiable — so □ fails over the full path yet
	// holds on every earlier position.
	check(Always{F: smaller}, 0, false)
	for i := 0; i < p.Len()-1; i++ {
		check(smaller, i, true)
	}
	check(smaller, p.Len()-1, false)

	// Out-of-range position errors.
	if _, err := Eval(p, -1, True{}); err == nil {
		t.Error("negative position accepted")
	}
	if _, err := Eval(p, p.Len(), True{}); err == nil {
		t.Error("overflow position accepted")
	}
}

func TestEvalComplexAtomRespectsOrdering(t *testing.T) {
	// Free resources: cpu then net then cpu — a seq job fits; the
	// inverted job (net before cpu available) does not.
	theta := resource.NewSet(
		resource.NewTerm(u(4), cpuL1, interval.New(0, 2)),
		resource.NewTerm(u(2), netL12, interval.New(2, 4)),
		resource.NewTerm(u(4), cpuL1, interval.New(4, 6)),
	)
	s := NewState(theta, 0)
	res := Run(s, 6, 1)
	p := res.Path

	comp, err := cost.Realize(cost.Paper(), "a1",
		compute.Evaluate("a1", "l1", 1),
		compute.Send("a1", "l1", "x", "l2", 1),
		compute.Evaluate("a1", "l1", 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	good := SatisfyComplex{Req: compute.ComplexOf(comp, interval.New(0, 6))}
	if ok, err := Eval(p, 0, good); err != nil || !ok {
		t.Errorf("orderable computation rejected: %v %v", ok, err)
	}

	// Same computation but the window starts after the first cpu block
	// has expired: phase 1 can no longer be fed.
	late := SatisfyComplex{Req: compute.ComplexOf(comp, interval.New(2, 6))}
	if ok, _ := Eval(p, 0, late); ok {
		t.Error("late window should be unsatisfiable (first cpu block inside window is after net)")
	}
}

func TestEvalConcurrentAtom(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(4), cpuL1, interval.New(0, 8)))
	s := NewState(theta, 0)
	res := Run(s, 8, 1)
	p := res.Path

	d := evalJob(t, "jj", "a1", 0, 8)
	f := SatisfyConcurrent{Req: compute.ConcurrentOf(d)}
	if ok, err := Eval(p, 0, f); err != nil || !ok {
		t.Errorf("concurrent atom = %v, %v", ok, err)
	}
	// At a position past the job's deadline, a non-empty requirement is
	// unsatisfiable.
	shortDeadline := evalJob(t, "kk", "a1", 0, 2)
	fLate := SatisfyConcurrent{Req: compute.ConcurrentOf(shortDeadline)}
	if ok, _ := Eval(p, p.IndexAt(4), fLate); ok {
		t.Error("deadline-passed atom satisfied")
	}
}

func TestEvalNowMatchesIndexAt(t *testing.T) {
	s := freshIdleState(2, interval.New(0, 6))
	res := Run(s, 6, 1)
	f := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(4, cpuL1)),
		Window:  interval.New(0, 6),
	}}
	a, err := EvalNow(res.Path, 3, f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Eval(res.Path, res.Path.IndexAt(3), f)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("EvalNow disagrees with Eval at IndexAt")
	}
}

func TestFormulaStrings(t *testing.T) {
	f := Always{F: Not{F: Or{
		L: And{L: True{}, R: False{}},
		R: Eventually{F: SatisfySimple{Req: compute.Simple{
			Amounts: resource.NewAmounts(resource.AmountOf(1, cpuL1)),
			Window:  interval.New(0, 5),
		}}},
	}}}
	got := f.String()
	for _, want := range []string{"□", "¬", "∧", "∨", "◇", "satisfy", "true", "false"} {
		if !strings.Contains(got, want) {
			t.Errorf("String %q missing %q", got, want)
		}
	}
}

// TestPropertyCheckerSoundOnPaths is the heart of E3 in miniature: any
// computation the checker admits completes by its deadline when the
// committed path is actually executed.
func TestPropertyCheckerSoundOnPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	locs := []resource.Location{"l1", "l2"}
	for iter := 0; iter < 120; iter++ {
		// Random supply.
		var theta resource.Set
		for i := 0; i < 2+rng.Intn(4); i++ {
			loc := locs[rng.Intn(len(locs))]
			start := interval.Time(rng.Intn(10))
			theta.Add(resource.NewTerm(
				resource.FromUnits(int64(1+rng.Intn(5))),
				resource.CPUAt(loc),
				interval.New(start, start+2+interval.Time(rng.Intn(12)))))
			if rng.Intn(2) == 0 {
				theta.Add(resource.NewTerm(
					resource.FromUnits(int64(1+rng.Intn(3))),
					resource.Link("l1", "l2"),
					interval.New(start, start+2+interval.Time(rng.Intn(12)))))
			}
		}
		st := NewState(theta, 0)

		// Randomly try to admit a handful of jobs.
		admitted := 0
		for j := 0; j < 4; j++ {
			name := compute.ActorName(string(rune('a' + j)))
			loc := locs[rng.Intn(len(locs))]
			var actions []compute.Action
			for k := 0; k < 1+rng.Intn(3); k++ {
				switch rng.Intn(3) {
				case 0:
					actions = append(actions, compute.Evaluate(name, loc, int64(1+rng.Intn(2))))
				case 1:
					actions = append(actions, compute.Send(name, "l1", "peer", "l2", 1))
				default:
					actions = append(actions, compute.Ready(name, loc))
				}
			}
			comp, err := cost.Realize(cost.Paper(), name, actions...)
			if err != nil {
				t.Fatal(err)
			}
			deadline := interval.Time(8 + rng.Intn(16))
			dist, err := compute.NewDistributed(string(name)+"-job", 0, deadline, comp)
			if err != nil {
				t.Fatal(err)
			}
			next, _, err := Admit(st, dist)
			if err != nil {
				continue
			}
			st = next
			admitted++
		}
		if admitted == 0 {
			continue
		}
		res := Run(st, 0, 1)
		if len(res.Violations) != 0 {
			t.Fatalf("iter %d: admitted set violated: %v", iter, res.Violations)
		}
		if len(res.Completed) != admitted {
			t.Fatalf("iter %d: %d admitted but %d completed", iter, admitted, len(res.Completed))
		}
	}
}
