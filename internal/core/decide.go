package core

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/schedule"
)

// This file packages the paper's four theorems as decision procedures.
// Each procedure is constructive where the theorem is existential: a
// positive answer comes with a witness (break points and a consumption
// plan) that schedule.Verify and the simulator can check independently.

// CanCompleteAction decides Theorem 1 (Single Action Accommodation): a
// computation (γ, s, d) containing a single action can be accommodated
// iff the system satisfies its simple resource requirement,
// f(Θ, ρ(γ, s, d)) = true.
func CanCompleteAction(theta resource.Set, step compute.Step, window interval.Interval) bool {
	return compute.SimpleOf(step, window).Satisfied(theta)
}

// MeetDeadline decides Theorems 2 and 3 (Sequential Computation
// Accommodation / Meet Deadline): the sequential computation Γ completes
// by deadline d iff break points t1 … t_{m-1} exist partitioning (s, d)
// so each subcomputation's simple requirement is satisfied on its
// subinterval — equivalently, iff a computation path exists from
// (Θ, ρ(Γ,t,d), t) reaching a final state before d. On success the
// returned plan's Breaks are those break points and the plan is the
// witness path's consumption schedule.
func MeetDeadline(theta resource.Set, comp compute.Computation, start, deadline interval.Time) (schedule.Plan, error) {
	if deadline <= start {
		return schedule.Plan{}, fmt.Errorf("core: empty window (%d,%d)", start, deadline)
	}
	req := compute.ComplexOf(comp, interval.New(start, deadline))
	return schedule.Single(theta, req)
}

// AccommodateAdditional decides Theorem 4 (Accommodate Additional
// Computation): a new computation (Λ, s, d) can be accommodated without
// affecting the computations already executing iff the resources expiring
// on the committed path during (s, d) — the state's free resources —
// satisfy its requirement. On success the caller passes the plan to
// Accommodate, which composes the witness path with the committed one
// (the theorem's path-combination step).
func AccommodateAdditional(s State, dist compute.Distributed) (schedule.Plan, error) {
	if s.Now >= dist.Deadline {
		return schedule.Plan{}, ErrDeadlinePassed
	}
	free, err := s.FreeResources()
	if err != nil {
		return schedule.Plan{}, err
	}
	req := ConcurrentAt(dist, s.Now)
	return schedule.Concurrent(free, req)
}

// Admit runs the full Theorem-4 pipeline: decide, then apply the
// accommodation rule. It returns the new state and the admission plan.
func Admit(s State, dist compute.Distributed) (State, schedule.Plan, error) {
	plan, err := AccommodateAdditional(s, dist)
	if err != nil {
		return State{}, schedule.Plan{}, err
	}
	req := ConcurrentAt(dist, s.Now)
	next, _, err := Accommodate(s, req, plan)
	if err != nil {
		return State{}, schedule.Plan{}, err
	}
	return next, plan, nil
}

// ConcurrentAt derives the concurrent requirement of a distributed
// computation as seen at time now: the window's start is pushed to now if
// the computation's earliest start has already passed (it cannot consume
// the past).
func ConcurrentAt(dist compute.Distributed, now interval.Time) compute.Concurrent {
	req := compute.ConcurrentOf(dist)
	if now > req.Window.Start && now < req.Window.End {
		window := interval.New(now, req.Window.End)
		req = clampConcurrent(req, window)
	}
	return req
}
