package core

import (
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/resource"
)

func TestSnapshotRoundTripTrajectory(t *testing.T) {
	// Build a state with availability and two commitments, snapshot it,
	// restore it, and confirm both copies evolve identically.
	theta := resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 20)),
		resource.NewTerm(u(1), netL12, interval.New(0, 20)),
	)
	s := NewState(theta, 0)
	s, _, err := Admit(s, seqJob(t, "alpha", "a1", 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	s, _, err = Admit(s, evalJob(t, "beta", "b1", 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	// Advance a couple of ticks so the snapshot captures mid-flight state.
	for i := 0; i < 2; i++ {
		s, _, _ = Tick(s, 1)
	}

	var sb strings.Builder
	if err := Snapshot(s, &sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	// The compact forms should appear in the JSON.
	for _, want := range []string{`"theta"`, `cpu@l1`, `"alpha"`, `"beta"`, `"now": 2`} {
		if !strings.Contains(strings.ToLower(text), strings.ToLower(want)) {
			t.Errorf("snapshot missing %q:\n%s", want, text)
		}
	}

	restored, err := RestoreState(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Now != s.Now {
		t.Fatalf("Now = %d, want %d", restored.Now, s.Now)
	}
	if !restored.Theta.Equal(s.Theta) {
		t.Fatalf("Theta differs:\n%v\n%v", restored.Theta, s.Theta)
	}
	if len(restored.Commitments) != len(s.Commitments) {
		t.Fatalf("commitments = %d, want %d", len(restored.Commitments), len(s.Commitments))
	}

	resA := Run(s, 0, 1)
	resB := Run(restored, 0, 1)
	if len(resA.Violations) != 0 || len(resB.Violations) != 0 {
		t.Fatalf("violations: %v / %v", resA.Violations, resB.Violations)
	}
	if len(resA.Completed) != len(resB.Completed) {
		t.Fatalf("completions differ: %v vs %v", resA.Completed, resB.Completed)
	}
	for name, at := range resA.Completed {
		if resB.Completed[name] != at {
			t.Errorf("%s completes at %d vs %d", name, at, resB.Completed[name])
		}
	}
	// The materialized paths agree transition by transition.
	if resA.Path.Len() != resB.Path.Len() {
		t.Fatalf("path lengths %d vs %d", resA.Path.Len(), resB.Path.Len())
	}
	for i := range resA.Path.Steps {
		if resA.Path.Steps[i].Label() != resB.Path.Steps[i].Label() {
			t.Errorf("step %d: %q vs %q", i,
				resA.Path.Steps[i].Label(), resB.Path.Steps[i].Label())
		}
	}
}

func TestRestoreStateErrorsAndTrims(t *testing.T) {
	if _, err := RestoreState(strings.NewReader("not json")); err == nil {
		t.Error("malformed snapshot accepted")
	}
	// Hand-edited snapshot with stale availability: trimmed on restore.
	text := `{"Theta":"2:cpu@l1:(0,20)","Commitments":null,"Now":5}`
	s, err := RestoreState(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Theta.RateAt(cpuL1, 3); got != 0 {
		t.Errorf("stale availability survived restore: %d", got)
	}
	if got := s.Theta.RateAt(cpuL1, 10); got != u(2) {
		t.Errorf("future availability lost: %d", got)
	}
}
