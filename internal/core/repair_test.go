package core

import (
	"errors"
	"testing"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

// repairScenario: supply rate 4 until a rate-3 provider reneges at t=2,
// leaving rate 1; the admitted job's plan (consume rate 4, ticks 0–3)
// breaks at t=2 but 8 units remain doable at rate 1 before the deadline.
func repairScenario(t *testing.T) (State, []Violation) {
	t.Helper()
	theta := resource.NewSet(
		resource.NewTerm(u(3), cpuL1, interval.New(0, 12)), // the reneging provider
		resource.NewTerm(u(1), cpuL1, interval.New(0, 12)), // the survivor
	)
	s := NewState(theta, 0)

	// 16-unit job, deadline 12: the plan takes rate 4 over ticks 0..3
	// and finishes at t=4; after the renege the survivor alone must
	// carry the remainder.
	big := evalJob(t, "patient", "a1", 0, 12)
	big.Actors[0].Steps[0].Amounts = resource.NewAmounts(resource.AmountOf(16, cpuL1))
	s3, plan, err := Admit(s, big)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Finish != 4 {
		t.Fatalf("big Finish = %d", plan.Finish)
	}
	// Run two clean ticks (8 units consumed), then renege the rate-3
	// provider's remaining lease.
	cur := s3
	for i := 0; i < 2; i++ {
		next, _, viols := Tick(cur, 1)
		if len(viols) != 0 {
			t.Fatalf("early violation: %v", viols)
		}
		cur = next
	}
	cur.Theta = cur.Theta.SubtractSaturating(resource.NewSet(
		resource.NewTerm(u(3), cpuL1, interval.New(2, 12))))
	// The next tick breaks the plan.
	next, _, viols := Tick(cur, 1)
	if len(viols) == 0 {
		t.Fatal("expected a violation after the renege")
	}
	return next, viols
}

func TestRepairRecoversFromRenege(t *testing.T) {
	damaged, viols := repairScenario(t)
	if viols[0].Missed != resource.QuantityFromUnits(4) {
		t.Errorf("Missed = %d, want 4 units", viols[0].Missed)
	}
	repaired, err := Repair(damaged, "patient", viols)
	if err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	// 8 units were consumed in ticks 0–1; tick 2 violated (4 missed);
	// the revised plan must deliver the remaining 8 units at rate 1
	// within (3,12). Check the verdict by running to completion.
	res := Run(repaired, 0, 1)
	if len(res.Violations) != 0 {
		t.Fatalf("repaired plan violated again: %v", res.Violations)
	}
	done, ok := res.Completed["patient"]
	if !ok {
		t.Fatal("repaired job never completed")
	}
	if done > 12 {
		t.Errorf("repaired job finished at %d, after deadline 12", done)
	}
	// The revised plan reserves exactly the 8 missing units.
	var planned resource.Quantity
	for _, c := range repaired.Commitments {
		for _, q := range c.Plan.Demand().TotalQuantity(interval.New(0, 12)) {
			planned += q
		}
	}
	if planned != resource.QuantityFromUnits(8) {
		t.Errorf("revised plan reserves %d, want exactly the 8 missing units", planned)
	}
}

func TestRepairFailsWhenNoCapacity(t *testing.T) {
	damaged, viols := repairScenario(t)
	// Remove the survivor too: nothing left to repair with.
	damaged.Theta = resource.Set{}
	if _, err := Repair(damaged, "patient", viols); err == nil {
		t.Fatal("repair without capacity should fail")
	}
	// Unknown commitment.
	if _, err := Repair(damaged, "ghost", nil); !errors.Is(err, ErrUnknownComputation) {
		t.Errorf("want ErrUnknownComputation, got %v", err)
	}
}

func TestRepairAfterDeadline(t *testing.T) {
	damaged, viols := repairScenario(t)
	cur := damaged
	for cur.Now < 10 {
		cur, _, _ = Tick(cur, 1)
	}
	// The commitment has "completed" by plan time, so it is gone; rebuild
	// an artificial late state to exercise the deadline guard.
	late := damaged.Clone()
	late.Now = 12
	if _, err := Repair(late, "patient", viols); !errors.Is(err, ErrDeadlinePassed) {
		t.Errorf("want ErrDeadlinePassed, got %v", err)
	}
}

func TestRepairCompletedCommitmentDropsIt(t *testing.T) {
	// A commitment whose plan has no remaining allocations and no missed
	// work is simply removed.
	theta := resource.NewSet(resource.NewTerm(u(8), cpuL1, interval.New(0, 10)))
	s := NewState(theta, 0)
	s2, plan, err := Admit(s, evalJob(t, "quick", "a1", 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Finish != 1 {
		t.Fatalf("Finish = %d", plan.Finish)
	}
	// Advance time past the plan without ticking the commitment away
	// (simulate by hand-editing Now — Repair must handle it gracefully).
	s2.Now = 5
	s2.Theta.TrimBefore(5)
	repaired, err := Repair(s2, "quick", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired.Commitments) != 0 {
		t.Error("completed commitment should be dropped by repair")
	}
}

func TestRepairPreservesOtherCommitments(t *testing.T) {
	// Two commitments on disjoint located types; a renege damages only
	// the first. Repairing it must leave the second commitment's plan
	// untouched and draw only on free capacity.
	cpuL2 := resource.CPUAt("l2")
	theta := resource.NewSet(
		resource.NewTerm(u(3), cpuL1, interval.New(0, 12)), // reneges at t=1
		resource.NewTerm(u(2), cpuL1, interval.New(0, 12)), // survivor
		resource.NewTerm(u(2), cpuL2, interval.New(0, 12)), // b's supply
	)
	s := NewState(theta, 0)
	a := evalJob(t, "a-job", "a1", 0, 12)
	a.Actors[0].Steps[0].Amounts = resource.NewAmounts(resource.AmountOf(15, cpuL1))
	s, _, err := Admit(s, a)
	if err != nil {
		t.Fatal(err)
	}
	bComp, err := cost.Realize(cost.Paper(), "b1", compute.Evaluate("b1", "l2", 1))
	if err != nil {
		t.Fatal(err)
	}
	bComp.Steps[0].Amounts = resource.NewAmounts(resource.AmountOf(10, cpuL2))
	b, err := compute.NewDistributed("b-job", 0, 12, bComp)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err = Admit(s, b)
	if err != nil {
		t.Fatal(err)
	}
	bBefore, _ := s.Commitment("b-job")

	// One clean tick, then the renege.
	s, _, viols := Tick(s, 1)
	if len(viols) != 0 {
		t.Fatalf("early violations: %v", viols)
	}
	s.Theta = s.Theta.SubtractSaturating(resource.NewSet(
		resource.NewTerm(u(3), cpuL1, interval.New(1, 12))))
	s, _, viols = Tick(s, 1)
	if len(viols) == 0 {
		t.Fatal("expected a-job to violate")
	}
	for _, v := range viols {
		if v.Computation != "a-job" {
			t.Fatalf("unexpected victim %s", v.Computation)
		}
	}
	repaired, err := Repair(s, "a-job", viols)
	if err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	// b's commitment is byte-for-byte untouched.
	bAfter, ok := repaired.Commitment("b-job")
	if !ok {
		t.Fatal("b-job lost during repair")
	}
	if !bAfter.Plan.Demand().Equal(bBefore.Plan.Demand()) {
		t.Error("repair disturbed the other commitment's plan")
	}
	// The whole system now runs to completion without violations.
	res := Run(repaired, 0, 1)
	if len(res.Violations) != 0 {
		t.Fatalf("post-repair violations: %v", res.Violations)
	}
	for _, name := range []string{"a-job", "b-job"} {
		done, ok := res.Completed[name]
		if !ok || done > 12 {
			t.Errorf("%s: done=%v at %d", name, ok, done)
		}
	}
}
