package core

import (
	"fmt"
	"strings"

	"repro/internal/interval"
	"repro/internal/resource"
)

// Path is a computation path σ (Definition 2): one branch of the tree of
// possible system evolutions, materialized as the sequence of states
// visited and the labeled transitions between them. States[i+1] is the
// result of Steps[i] applied to States[i].
type Path struct {
	States []State
	Steps  []Transition
}

// NewPath starts a path at the initial state.
func NewPath(initial State) *Path {
	return &Path{States: []State{initial}}
}

// Len returns the number of states on the path.
func (p *Path) Len() int {
	return len(p.States)
}

// Last returns the final state.
func (p *Path) Last() State {
	return p.States[len(p.States)-1]
}

// At returns the i-th state.
func (p *Path) At(i int) State {
	return p.States[i]
}

// append records a transition and its resulting state.
func (p *Path) append(tr Transition, next State) {
	p.Steps = append(p.Steps, tr)
	p.States = append(p.States, next)
}

// IndexAt returns the position of the first state whose time is ≥ t, or
// the last position if the path ends earlier.
func (p *Path) IndexAt(t interval.Time) int {
	for i, s := range p.States {
		if s.Now >= t {
			return i
		}
	}
	return len(p.States) - 1
}

// FreeWithin returns ⋃ Θ_expire: the resources that expire unused along
// the path from position i onward, restricted to the window — plus the
// final state's still-unclaimed future availability (resources that will
// expire after the materialized horizon unless something new consumes
// them). This is the resource pool Figure 1's satisfy semantics evaluates
// requirements against: capacity the committed path does not need.
func (p *Path) FreeWithin(i int, window interval.Interval) resource.Set {
	var free resource.Set
	for j := i; j < len(p.Steps); j++ {
		free = free.Union(p.Steps[j].Expired.Clamp(window))
	}
	last := p.Last()
	leftover, err := last.FreeResources()
	if err == nil {
		free = free.Union(leftover.Clamp(window))
	}
	return free
}

// Violations returned by Run are tagged with their path position.
type RunResult struct {
	Path       *Path
	Violations []Violation
	// Completed maps computation name to completion time.
	Completed map[string]interval.Time
}

// Run evolves the state by repeated application of the general transition
// rule with step dt until the clock reaches horizon or (if horizon is
// ≤ the current time) until all commitments complete. It materializes the
// canonical committed path: every commitment follows its admission plan.
func Run(initial State, horizon interval.Time, dt interval.Time) RunResult {
	if dt <= 0 {
		dt = 1
	}
	p := NewPath(initial)
	res := RunResult{Path: p, Completed: make(map[string]interval.Time)}
	cur := initial
	for {
		if horizon > initial.Now {
			if cur.Now >= horizon {
				break
			}
		} else if len(cur.Commitments) == 0 {
			// Horizon at or before the start means "run to completion".
			break
		}
		next, tr, viols := Tick(cur, dt)
		p.append(tr, next)
		res.Violations = append(res.Violations, viols...)
		for _, name := range tr.Completed {
			res.Completed[name] = next.Now
		}
		cur = next
	}
	return res
}

// String renders the path as a transition chain.
func (p *Path) String() string {
	var b strings.Builder
	for i, s := range p.States {
		if i > 0 {
			fmt.Fprintf(&b, " —[%s]→ ", p.Steps[i-1].Label())
		}
		b.WriteString(s.String())
	}
	return b.String()
}
