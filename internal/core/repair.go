package core

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/schedule"
)

// Repair implements the revision half of the paper's Φ footnote
// ("estimates could be used and revised as necessary") for broken
// commitments: when reneging resources invalidate a plan, the
// commitment's outstanding work — the un-consumed suffix of its plan plus
// whatever the reported violations say went undone — is re-planned
// against the resources still free, within the original deadline.
//
// On success the commitment is replaced by one carrying the revised
// requirement and plan; the rest of ρ is untouched (the repair consumes
// only free resources, preserving Theorem 4's non-interference). On
// failure the state is returned unchanged with an error: the commitment
// is genuinely lost.
func Repair(s State, name string, missed []Violation) (State, error) {
	idx := -1
	for i, c := range s.Commitments {
		if c.Name() == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return s, fmt.Errorf("%w: %s", ErrUnknownComputation, name)
	}
	victim := s.Commitments[idx]
	deadline := victim.Req.Window.End
	if s.Now >= deadline {
		return s, ErrDeadlinePassed
	}

	remaining := remainingRequirement(victim, s.Now, missed)
	if remaining.Empty() {
		// Nothing left to do: the commitment is effectively complete.
		next := s.Clone()
		next.Commitments = append(next.Commitments[:idx], next.Commitments[idx+1:]...)
		return next, nil
	}

	// Free resources, excluding the victim's own (now moot) plan.
	others := s.Clone()
	others.Commitments = append(others.Commitments[:idx], others.Commitments[idx+1:]...)
	free, err := others.FreeResources()
	if err != nil {
		return s, fmt.Errorf("core: repair of %s: %w", name, err)
	}
	plan, err := schedule.Concurrent(free, remaining)
	if err != nil {
		return s, fmt.Errorf("core: repair of %s: %w", name, err)
	}
	next := s.Clone()
	next.Commitments[idx] = Commitment{Req: remaining, Plan: plan}
	return next, nil
}

// remainingRequirement reconstructs what a damaged commitment still
// needs: for every actor, per plan phase, the quantity of each located
// type scheduled at or after now, plus the quantities the violations
// report as missed before now. Phases keep their relative order so the
// revised requirement preserves the original sequencing constraints.
func remainingRequirement(c Commitment, now interval.Time, missed []Violation) compute.Concurrent {
	type phaseKey struct {
		actor compute.ActorName
		phase int
	}
	needs := make(map[phaseKey]resource.Amounts)
	addNeed := func(actor compute.ActorName, phase int, lt resource.LocatedType, qty resource.Quantity) {
		if qty <= 0 {
			return
		}
		k := phaseKey{actor: actor, phase: phase}
		if needs[k] == nil {
			needs[k] = make(resource.Amounts)
		}
		needs[k].Add(resource.Amount{Qty: qty, Type: lt})
	}
	for _, alloc := range c.Plan.Allocs {
		future := alloc.Term.Span.ClampStart(now)
		addNeed(alloc.Actor, alloc.Phase, alloc.Term.Type,
			resource.Quantity(alloc.Term.Rate)*resource.Quantity(future.Len()))
	}
	for _, v := range missed {
		if v.Computation == c.Name() {
			addNeed(v.Actor, v.Phase, v.Type, v.Missed)
		}
	}

	window := interval.New(now, c.Req.Window.End)
	out := compute.Concurrent{Name: c.Req.Name, Window: window}
	for _, actor := range c.Req.Actors {
		var phases []compute.Phase
		maxPhase := -1
		for k := range needs {
			if k.actor == actor.Actor && k.phase > maxPhase {
				maxPhase = k.phase
			}
		}
		for p := 0; p <= maxPhase; p++ {
			amounts := needs[phaseKey{actor: actor.Actor, phase: p}]
			if amounts.Empty() {
				continue
			}
			phases = append(phases, compute.Phase{Amounts: amounts})
		}
		if len(phases) > 0 {
			out.Actors = append(out.Actors, compute.Complex{
				Actor:  actor.Actor,
				Phases: phases,
				Window: window,
			})
		}
	}
	return out
}
