package core

import (
	"errors"
	"testing"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
)

// completedAtom is satisfied when the named computation's requirement
// can no longer be satisfied — used indirectly below via satisfy atoms.

func TestExistsPathFindsAdmission(t *testing.T) {
	// One job, capacity for it: some branch admits it, consuming the cpu,
	// so on that branch satisfy(another 16 cpu) is false.
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8)))
	job := evalJob(t, "j1", "a1", 0, 8) // 8 cpu

	bigAsk := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(16, cpuL1)),
		Window:  interval.New(0, 8),
	}}
	ex := &Explorer{
		Pending: []compute.Distributed{job},
		Horizon: 8,
	}
	// On the all-defer branch the full 16 units expire unused ⇒ bigAsk
	// holds; on an admitting branch only 8 remain ⇒ ¬bigAsk holds.
	ok, witness, err := ex.ExistsPath(NewState(theta, 0), bigAsk)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || witness == nil {
		t.Fatal("defer branch should satisfy the big ask")
	}
	ok, witness, err = ex.ExistsPath(NewState(theta, 0), Not{F: bigAsk})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("an admitting branch should refute the big ask")
	}
	// The witness must actually contain an accommodate transition.
	foundAdmit := false
	for _, tr := range witness.Steps {
		if tr.Kind == KindAccommodate {
			foundAdmit = true
		}
	}
	if !foundAdmit {
		t.Error("witness path has no accommodation")
	}
}

func TestForAllPathsInvariant(t *testing.T) {
	// Whatever choices are made, a requirement bigger than total capacity
	// can never be satisfied: AG ¬satisfy(17 cpu).
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8)))
	job := evalJob(t, "j1", "a1", 0, 8)
	tooBig := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(17, cpuL1)),
		Window:  interval.New(0, 8),
	}}
	ex := &Explorer{Pending: []compute.Distributed{job}, Horizon: 8}
	holds, counter, err := ex.ForAllPaths(NewState(theta, 0), Not{F: tooBig})
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Fatalf("invariant refuted by %v", counter)
	}
	// And the negation yields a counterexample.
	holds, counter, err = ex.ForAllPaths(NewState(theta, 0), tooBig)
	if err != nil {
		t.Fatal(err)
	}
	if holds || counter == nil {
		t.Fatal("expected a counterexample")
	}
}

func TestExplorerJoins(t *testing.T) {
	// Capacity arrives only via a join at t=3; a path exists satisfying
	// an 8-cpu requirement within (3,8).
	join := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(3, 8)))
	ask := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(8, cpuL1)),
		Window:  interval.New(0, 8),
	}}
	ex := &Explorer{
		Joins:   map[interval.Time]resource.Set{3: join},
		Horizon: 8,
	}
	ok, _, err := ex.ExistsPath(NewState(resource.Set{}, 0), ask)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("join-supplied capacity not found")
	}
	// Without the join no path satisfies it.
	ex2 := &Explorer{Horizon: 8}
	ok, _, err = ex2.ExistsPath(NewState(resource.Set{}, 0), ask)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("satisfied without any resources")
	}
}

func TestExplorerDeferredAdmissionBranch(t *testing.T) {
	// A job whose window opens later than t=0 can only be admitted on a
	// branch that defers to its start; the explorer must find it.
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 12)))
	job := evalJob(t, "late", "a1", 4, 12)
	// On admitting branches the job's consumption shrinks expiring
	// capacity below 16 within (4,12).
	probe := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(16, cpuL1)),
		Window:  interval.New(4, 12),
	}}
	ex := &Explorer{Pending: []compute.Distributed{job}, Horizon: 12}
	ok, witness, err := ex.ExistsPath(NewState(theta, 0), Not{F: probe})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no branch admitted the late job")
	}
	sawAdmit := false
	for _, tr := range witness.Steps {
		if tr.Kind == KindAccommodate {
			sawAdmit = true
			if tr.From < 4 {
				t.Errorf("admitted at %d, before the window opens", tr.From)
			}
		}
	}
	if !sawAdmit {
		t.Error("witness lacks an accommodation")
	}
}

func TestExplorerBudget(t *testing.T) {
	// Many pending jobs over a long horizon explode the tree; the budget
	// must trip rather than hang.
	theta := resource.NewSet(resource.NewTerm(u(8), cpuL1, interval.New(0, 40)))
	var pending []compute.Distributed
	for i := 0; i < 6; i++ {
		job := evalJob(t, string(rune('a'+i)), compute.ActorName(string(rune('a'+i))), 0, 40)
		pending = append(pending, job)
	}
	ex := &Explorer{Pending: pending, Horizon: 40, MaxPaths: 50}
	_, _, err := ex.ForAllPaths(NewState(theta, 0), True{})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestExplorerValidation(t *testing.T) {
	ex := &Explorer{Horizon: 0}
	if _, _, err := ex.ExistsPath(NewState(resource.Set{}, 0), True{}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestExplorerJoinsApplyOncePerTick(t *testing.T) {
	// Regression: an instantaneous accommodation at the join's tick used
	// to re-apply the acquisition, doubling capacity. Total capacity here
	// is 2×10 + 4×4 = 36 units; 37 must be unreachable on EVERY branch,
	// including those admitting the job at t=4.
	base := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 10)))
	burst := resource.NewSet(resource.NewTerm(u(4), cpuL1, interval.New(4, 8)))
	job := evalJob(t, "batch", "a1", 0, 10)
	job.Actors[0].Steps[0].Amounts = resource.NewAmounts(resource.AmountOf(12, cpuL1))

	tooBig := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(37, cpuL1)),
		Window:  interval.New(0, 10),
	}}
	ex := &Explorer{
		Joins:   map[interval.Time]resource.Set{4: burst},
		Pending: []compute.Distributed{job},
		Horizon: 10,
	}
	holds, counter, err := ex.ForAllPaths(NewState(base, 0), Not{F: tooBig})
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Fatalf("37 units materialized out of nothing:\n%v", counter)
	}
	// 36 units are genuinely reachable (the admit-nothing branch).
	exactly := SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(36, cpuL1)),
		Window:  interval.New(0, 10),
	}}
	ok, _, err := ex.ExistsPath(NewState(base, 0), exactly)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("the full 36 units should be reachable on the idle branch")
	}
}
