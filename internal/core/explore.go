package core

import (
	"errors"
	"fmt"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
)

// Definition 2 describes a *tree*: the relation χ over states generated
// by all applicable transition rules, of which a computation path is one
// branch. Run materializes the single committed branch; Explorer
// materializes the tree itself, bounded, so path-quantified questions —
// "is there an evolution of the system on which ψ holds?" — can be
// answered by search rather than by a single canonical trace.
//
// Nondeterminism comes from the accommodation rule: a pending computation
// may be admitted at any tick within its window (if a witness schedule
// exists then) or never. Resource acquisition and tick evolution are
// deterministic. The explorer enumerates admit/defer choices tick by
// tick, depth-first, under a path budget.
type Explorer struct {
	// Joins maps ticks to resource sets acquired at that tick.
	Joins map[interval.Time]resource.Set
	// Pending are computations that may (but need not) be accommodated.
	Pending []compute.Distributed
	// Horizon bounds every explored path.
	Horizon interval.Time
	// DT is the tick size (default 1).
	DT interval.Time
	// MaxPaths bounds the number of complete paths materialized
	// (default 4096). Exceeding it returns ErrBudget.
	MaxPaths int
}

// ErrBudget is returned when the search exhausts its path budget without
// a definitive answer.
var ErrBudget = errors.New("core: exploration budget exhausted")

// ExistsPath reports whether some branch of the tree satisfies ψ at its
// initial position, returning a witness path when one exists.
func (ex *Explorer) ExistsPath(initial State, f Formula) (bool, *Path, error) {
	found := false
	var witness *Path
	err := ex.visit(initial, func(p *Path) (bool, error) {
		ok, err := Eval(p, 0, f)
		if err != nil {
			return false, err
		}
		if ok {
			found = true
			witness = p
			return false, nil // stop the search
		}
		return true, nil
	})
	if err != nil {
		return false, nil, err
	}
	return found, witness, nil
}

// ForAllPaths reports whether every branch satisfies ψ at its initial
// position, returning a counterexample path when one does not.
func (ex *Explorer) ForAllPaths(initial State, f Formula) (bool, *Path, error) {
	holds := true
	var counter *Path
	err := ex.visit(initial, func(p *Path) (bool, error) {
		ok, err := Eval(p, 0, f)
		if err != nil {
			return false, err
		}
		if !ok {
			holds = false
			counter = p
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return false, nil, err
	}
	return holds, counter, nil
}

// visit enumerates complete paths depth-first, invoking leaf on each.
// leaf returns false to stop the search early.
func (ex *Explorer) visit(initial State, leaf func(*Path) (bool, error)) error {
	dt := ex.DT
	if dt <= 0 {
		dt = 1
	}
	budget := ex.MaxPaths
	if budget <= 0 {
		budget = 4096
	}
	if ex.Horizon <= initial.Now {
		return fmt.Errorf("core: explorer horizon %d not after initial time %d", ex.Horizon, initial.Now)
	}
	paths := 0
	admitted := make(map[string]bool, len(ex.Pending))

	// rec explores from the given state with the prefix path p. The
	// joined flag records whether this tick's resource acquisition has
	// already been applied — instantaneous accommodation transitions
	// re-enter rec at the same tick and must not re-acquire. rec returns
	// false to stop the entire search.
	var rec func(s State, p *Path, joined bool) (bool, error)
	rec = func(s State, p *Path, joined bool) (bool, error) {
		if s.Now >= ex.Horizon {
			paths++
			if paths > budget {
				return false, ErrBudget
			}
			// Copy the path: the prefix is shared with siblings.
			leafPath := &Path{
				States: append([]State(nil), p.States...),
				Steps:  append([]Transition(nil), p.Steps...),
			}
			return leaf(leafPath)
		}
		// Deterministic joins, once per tick.
		if join, ok := ex.Joins[s.Now]; ok && !join.Empty() && !joined {
			next, tr := Acquire(s, join)
			p.append(tr, next)
			defer p.truncate(1)
			s = next
		}
		// Choice point: each eligible pending job may be admitted now.
		// Branch order tries admissions first (they tend to satisfy
		// satisfy-atoms sooner), then the defer-everything branch.
		for _, job := range ex.Pending {
			if admitted[job.Name] || s.Now < job.Start || s.Now >= job.Deadline {
				continue
			}
			plan, err := AccommodateAdditional(s, job)
			if err != nil {
				continue // not feasible now; the defer branch covers later
			}
			next, tr, err := Accommodate(s, ConcurrentAt(job, s.Now), plan)
			if err != nil {
				continue
			}
			admitted[job.Name] = true
			p.append(tr, next)
			cont, err := rec(next, p, true)
			p.truncate(1)
			admitted[job.Name] = false
			if err != nil || !cont {
				return cont, err
			}
		}
		// Defer branch: just let time pass.
		next, tr, _ := Tick(s, dt)
		p.append(tr, next)
		cont, err := rec(next, p, false)
		p.truncate(1)
		return cont, err
	}

	p := NewPath(initial)
	_, err := rec(initial, p, false)
	return err
}

// truncate removes the last n steps (and their states) from the path.
func (p *Path) truncate(n int) {
	p.Steps = p.Steps[:len(p.Steps)-n]
	p.States = p.States[:len(p.States)-n]
}
