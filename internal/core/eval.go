package core

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/schedule"
)

// Eval implements the satisfaction relation M, σ, t ⊨ ψ of Figure 1 on a
// materialized computation path, at path position i (so t = σ.At(i).Now).
//
// Requirement atoms are evaluated against the resources that expire
// unused along σ within the requirement's window — "unwanted resources
// which will expire unless new computations requiring them enter the
// system" — clamped so no resource before max(s, t) counts:
//
//	satisfy(ρ(γ,s,d))  ⇔ f(⋃ Θ_expire, ρ) = true
//	satisfy(ρ(Γ,s,d))  ⇔ ∃ t1…t_{m-1} splitting (s,d) feasibly in Θ_expire
//	satisfy(ρ(Λ,s,d))  ⇔ a combined witness path exists in Θ_expire
//
// The existential searches are delegated to the schedule package, whose
// results are constructive witnesses.
func Eval(p *Path, i int, f Formula) (bool, error) {
	if i < 0 || i >= p.Len() {
		return false, fmt.Errorf("core: path position %d out of range [0,%d)", i, p.Len())
	}
	switch f := f.(type) {
	case True:
		return true, nil
	case False:
		return false, nil
	case SatisfySimple:
		window, ok := clampWindow(f.Req.Window, p.At(i).Now)
		if !ok {
			return f.Req.Empty(), nil
		}
		free := p.FreeWithin(i, window)
		req := compute.Simple{Amounts: f.Req.Amounts, Window: window}
		return req.Satisfied(free), nil
	case SatisfyComplex:
		window, ok := clampWindow(f.Req.Window, p.At(i).Now)
		if !ok {
			return f.Req.Empty(), nil
		}
		free := p.FreeWithin(i, window)
		req := compute.Complex{Actor: f.Req.Actor, Phases: f.Req.Phases, Window: window}
		_, err := schedule.Single(free, req)
		return err == nil, nil
	case SatisfyConcurrent:
		window, ok := clampWindow(f.Req.Window, p.At(i).Now)
		if !ok {
			return f.Req.Empty(), nil
		}
		free := p.FreeWithin(i, window)
		req := clampConcurrent(f.Req, window)
		_, err := schedule.Concurrent(free, req, schedule.WithExhaustive())
		return err == nil, nil
	case Not:
		inner, err := Eval(p, i, f.F)
		return !inner, err
	case Eventually:
		for j := i; j < p.Len(); j++ {
			ok, err := Eval(p, j, f.F)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case Always:
		for j := i; j < p.Len(); j++ {
			ok, err := Eval(p, j, f.F)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	case And:
		l, err := Eval(p, i, f.L)
		if err != nil || !l {
			return false, err
		}
		return Eval(p, i, f.R)
	case Or:
		l, err := Eval(p, i, f.L)
		if err != nil || l {
			return l, err
		}
		return Eval(p, i, f.R)
	default:
		return false, fmt.Errorf("core: unknown formula %T", f)
	}
}

// EvalNow evaluates ψ at the position of time t on the path.
func EvalNow(p *Path, t interval.Time, f Formula) (bool, error) {
	return Eval(p, p.IndexAt(t), f)
}

// clampWindow restricts a requirement window to start no earlier than
// now; ok is false when the deadline has already passed.
func clampWindow(w interval.Interval, now interval.Time) (interval.Interval, bool) {
	if now >= w.End {
		return interval.Interval{}, false
	}
	if now > w.Start {
		return interval.New(now, w.End), true
	}
	return w, true
}

// clampConcurrent rebuilds a concurrent requirement over a clamped
// window.
func clampConcurrent(req compute.Concurrent, window interval.Interval) compute.Concurrent {
	out := compute.Concurrent{Name: req.Name, Window: window}
	out.Actors = make([]compute.Complex, len(req.Actors))
	for i, a := range req.Actors {
		out.Actors[i] = compute.Complex{Actor: a.Actor, Phases: a.Phases, Window: window}
	}
	return out
}
