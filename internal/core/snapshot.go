package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot serializes a state — availability, commitments with their
// requirements and plans, and the clock — as JSON. Resource sets and
// terms use their compact text forms (see resource package marshaling),
// so snapshots are both diff-friendly and hand-editable.
//
// A snapshot taken at time t restores to an equivalent state: RunState on
// the restored state produces the identical trajectory, which is what
// TestSnapshotRoundTripTrajectory asserts.
func Snapshot(s State, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	return nil
}

// RestoreState parses a snapshot produced by Snapshot.
func RestoreState(r io.Reader) (State, error) {
	var s State
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return State{}, fmt.Errorf("core: restore: %w", err)
	}
	// Defensive normalization: availability strictly before Now can never
	// be used and should not survive a hand-edited snapshot.
	s.Theta.TrimBefore(s.Now)
	return s, nil
}
