package core

import (
	"fmt"
	"testing"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

func benchState(b *testing.B, nCommitments int) State {
	b.Helper()
	theta := resource.NewSet(
		resource.NewTerm(u(64), cpuL1, interval.New(0, 4096)),
		resource.NewTerm(u(16), netL12, interval.New(0, 4096)),
	)
	s := NewState(theta, 0)
	for i := 0; i < nCommitments; i++ {
		name := compute.ActorName(fmt.Sprintf("a%d", i))
		comp, err := cost.Realize(cost.Paper(), name,
			compute.Evaluate(name, "l1", 1),
			compute.Send(name, "l1", "peer", "l2", 1),
		)
		if err != nil {
			b.Fatal(err)
		}
		dist, err := compute.NewDistributed(fmt.Sprintf("job%d", i), 0, 4096, comp)
		if err != nil {
			b.Fatal(err)
		}
		next, _, err := Admit(s, dist)
		if err != nil {
			b.Fatal(err)
		}
		s = next
	}
	return s
}

func BenchmarkFreeResources(b *testing.B) {
	for _, n := range []int{1, 8, 32} {
		s := benchState(b, n)
		b.Run(fmt.Sprintf("%dcommitments", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.FreeResources(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAccommodateAdditional(b *testing.B) {
	s := benchState(b, 16)
	comp, err := cost.Realize(cost.Paper(), "probe", compute.Evaluate("probe", "l1", 1))
	if err != nil {
		b.Fatal(err)
	}
	dist, err := compute.NewDistributed("probe-job", 0, 4096, comp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AccommodateAdditional(s, dist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalFormulaOnPath(b *testing.B) {
	s := benchState(b, 8)
	res := Run(s, 128, 1)
	f := Eventually{F: SatisfySimple{Req: compute.Simple{
		Amounts: resource.NewAmounts(resource.AmountOf(100, cpuL1)),
		Window:  interval.New(0, 128),
	}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(res.Path, 0, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunToCompletion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchState(b, 8)
		b.StartTimer()
		res := Run(s, 0, 1)
		if len(res.Violations) != 0 {
			b.Fatal("violations")
		}
	}
}
