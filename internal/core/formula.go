package core

import (
	"fmt"

	"repro/internal/compute"
)

// Formula is a ROTA well-formed formula ψ (§V-B):
//
//	ψ ::= true | false
//	    | satisfy(ρ(γ, s, d))   — simple requirement atom
//	    | satisfy(ρ(Γ, s, d))   — complex (sequential) requirement atom
//	    | satisfy(ρ(Λ, s, d))   — concurrent requirement atom
//	    | ¬ψ | ◇ψ | □ψ
//
// And/Or are provided as conveniences beyond the paper's minimal grammar.
type Formula interface {
	fmt.Stringer
	formula()
}

// True is the always-satisfied formula.
type True struct{}

// False is the never-satisfied formula.
type False struct{}

// SatisfySimple is the atom satisfy(ρ(γ, s, d)): the resources expiring
// on the path can absorb the simple requirement.
type SatisfySimple struct {
	Req compute.Simple
}

// SatisfyComplex is the atom satisfy(ρ(Γ, s, d)): break points exist
// within the path's expiring resources for the sequential requirement.
type SatisfyComplex struct {
	Req compute.Complex
}

// SatisfyConcurrent is the atom satisfy(ρ(Λ, s, d)) for a distributed
// computation.
type SatisfyConcurrent struct {
	Req compute.Concurrent
}

// Not is ¬ψ.
type Not struct {
	F Formula
}

// Eventually is ◇ψ: ψ holds at some position at or after the current
// one on the path.
type Eventually struct {
	F Formula
}

// Always is □ψ: ψ holds at every position at or after the current one on
// the path.
type Always struct {
	F Formula
}

// And is ψ1 ∧ ψ2 (extension).
type And struct {
	L, R Formula
}

// Or is ψ1 ∨ ψ2 (extension).
type Or struct {
	L, R Formula
}

func (True) formula()              {}
func (False) formula()             {}
func (SatisfySimple) formula()     {}
func (SatisfyComplex) formula()    {}
func (SatisfyConcurrent) formula() {}
func (Not) formula()               {}
func (Eventually) formula()        {}
func (Always) formula()            {}
func (And) formula()               {}
func (Or) formula()                {}

func (True) String() string  { return "true" }
func (False) String() string { return "false" }

func (f SatisfySimple) String() string {
	return "satisfy(" + f.Req.String() + ")"
}

func (f SatisfyComplex) String() string {
	return "satisfy(" + f.Req.String() + ")"
}

func (f SatisfyConcurrent) String() string {
	return "satisfy(" + f.Req.String() + ")"
}

func (f Not) String() string        { return "¬" + f.F.String() }
func (f Eventually) String() string { return "◇" + f.F.String() }
func (f Always) String() string     { return "□" + f.F.String() }
func (f And) String() string        { return "(" + f.L.String() + " ∧ " + f.R.String() + ")" }
func (f Or) String() string         { return "(" + f.L.String() + " ∨ " + f.R.String() + ")" }
