package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/schedule"
)

var (
	cpuL1  = resource.CPUAt("l1")
	netL12 = resource.Link("l1", "l2")
)

func u(n int64) resource.Rate { return resource.FromUnits(n) }

// evalJob builds a one-actor distributed computation doing a single
// evaluate (8 cpu at l1) in (start, deadline).
func evalJob(t testing.TB, name string, actor compute.ActorName, start, deadline interval.Time) compute.Distributed {
	t.Helper()
	c, err := cost.Realize(cost.Paper(), actor, compute.Evaluate(actor, "l1", 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := compute.NewDistributed(name, start, deadline, c)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// seqJob builds a one-actor evaluate→send→evaluate job (8 cpu, 4 net,
// 8 cpu).
func seqJob(t testing.TB, name string, actor compute.ActorName, start, deadline interval.Time) compute.Distributed {
	t.Helper()
	c, err := cost.Realize(cost.Paper(), actor,
		compute.Evaluate(actor, "l1", 1),
		compute.Send(actor, "l1", "peer", "l2", 1),
		compute.Evaluate(actor, "l1", 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	d, err := compute.NewDistributed(name, start, deadline, c)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewStateTrimsPast(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(5), cpuL1, interval.New(0, 10)))
	s := NewState(theta, 4)
	if got := s.Theta.RateAt(cpuL1, 2); got != 0 {
		t.Errorf("pre-now availability survived: %d", got)
	}
	if got := s.Theta.RateAt(cpuL1, 6); got != u(5) {
		t.Errorf("future availability lost: %d", got)
	}
	if !strings.Contains(s.String(), "t=4") {
		t.Errorf("String = %q", s.String())
	}
}

func TestAcquireRule(t *testing.T) {
	s := NewState(resource.Set{}, 5)
	join := resource.NewSet(
		resource.NewTerm(u(3), cpuL1, interval.New(0, 20)), // partly in the past
	)
	next, tr := Acquire(s, join)
	if tr.Kind != KindAcquire || tr.From != 5 || tr.To != 5 {
		t.Errorf("transition = %+v", tr)
	}
	if got := next.Theta.RateAt(cpuL1, 10); got != u(3) {
		t.Errorf("joined rate = %d", got)
	}
	if got := next.Theta.RateAt(cpuL1, 3); got != 0 {
		t.Errorf("past availability of joined resource survived")
	}
	// Original state untouched.
	if !s.Theta.Empty() {
		t.Error("Acquire mutated the source state")
	}
	if !strings.Contains(tr.Label(), "acquire") {
		t.Errorf("Label = %q", tr.Label())
	}
}

func TestAdmitAndAccommodateRule(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 10)))
	s := NewState(theta, 0)
	job := evalJob(t, "j1", "a1", 0, 10)

	next, plan, err := Admit(s, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Commitments) != 1 {
		t.Fatalf("commitments = %d", len(next.Commitments))
	}
	if plan.Finish != 4 { // 8 cpu at rate 2
		t.Errorf("Finish = %d", plan.Finish)
	}
	if _, ok := next.Commitment("j1"); !ok {
		t.Error("commitment j1 missing")
	}
	// Duplicate admission must fail.
	if _, _, err := Accommodate(next, ConcurrentAt(job, 0), plan); err == nil {
		t.Error("duplicate accommodation accepted")
	}
}

func TestAccommodateRejectsPastDeadline(t *testing.T) {
	s := NewState(resource.Set{}, 20)
	job := evalJob(t, "late", "a1", 0, 10)
	if _, err := AccommodateAdditional(s, job); !errors.Is(err, ErrDeadlinePassed) {
		t.Errorf("want ErrDeadlinePassed, got %v", err)
	}
	if _, _, err := Accommodate(s, ConcurrentAt(job, 20), schedule.Plan{}); !errors.Is(err, ErrDeadlinePassed) {
		t.Errorf("want ErrDeadlinePassed, got %v", err)
	}
}

func TestAccommodateRejectsBogusPlan(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(1), cpuL1, interval.New(0, 4))) // 4 units only
	s := NewState(theta, 0)
	job := evalJob(t, "j1", "a1", 0, 4) // needs 8
	// Hand-forge a plan claiming more than available.
	forged := schedule.Plan{
		Breaks: map[compute.ActorName][]interval.Time{"a1": {4}},
		Allocs: []schedule.Allocation{{
			Actor: "a1", Phase: 0,
			Term: resource.NewTerm(u(2), cpuL1, interval.New(0, 4)),
		}},
		Finish: 4,
	}
	if _, _, err := Accommodate(s, ConcurrentAt(job, 0), forged); err == nil {
		t.Error("forged plan accepted")
	}
}

func TestLeaveRule(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 20)))
	s := NewState(theta, 0)
	// Job starting in the future can leave before it starts.
	job := evalJob(t, "future", "a1", 10, 20)
	s2, _, err := Admit(s, job)
	if err != nil {
		t.Fatal(err)
	}
	s3, tr, err := Leave(s2, "future")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != KindLeave || len(s3.Commitments) != 0 {
		t.Errorf("leave failed: %+v, %d commitments", tr, len(s3.Commitments))
	}
	// Unknown computation.
	if _, _, err := Leave(s2, "ghost"); !errors.Is(err, ErrUnknownComputation) {
		t.Errorf("want ErrUnknownComputation, got %v", err)
	}
	// A computation that has started cannot leave: advance past its start.
	cur := s2
	for cur.Now < 11 {
		cur, _, _ = Tick(cur, 1)
	}
	if _, _, err := Leave(cur, "future"); !errors.Is(err, ErrAlreadyStarted) {
		t.Errorf("want ErrAlreadyStarted, got %v", err)
	}
}

func TestTickClassification(t *testing.T) {
	// Idle: nothing available, nothing committed.
	s := NewState(resource.Set{}, 0)
	next, tr, viols := Tick(s, 1)
	if tr.Kind != KindIdle || len(viols) != 0 || next.Now != 1 {
		t.Errorf("idle tick: %+v", tr)
	}

	// Expire: resources but no commitments.
	s = NewState(resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 5))), 0)
	_, tr, _ = Tick(s, 1)
	if tr.Kind != KindExpire {
		t.Errorf("kind = %v, want expire", tr.Kind)
	}
	wantExp := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 1)))
	if !tr.Expired.Equal(wantExp) {
		t.Errorf("Expired = %v, want %v", tr.Expired, wantExp)
	}

	// Sequential: exactly one consumption, nothing expires.
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 4)))
	st := NewState(theta, 0)
	st2, _, err := Admit(st, evalJob(t, "j", "a1", 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, tr, viols = Tick(st2, 1)
	if tr.Kind != KindSequential {
		t.Errorf("kind = %v, want sequential (%s)", tr.Kind, tr.Label())
	}
	if len(viols) != 0 {
		t.Errorf("violations: %v", viols)
	}
	if len(tr.Consumptions) != 1 || tr.Consumptions[0].Actor != "a1" || tr.Consumptions[0].Rate != u(2) {
		t.Errorf("consumptions = %+v", tr.Consumptions)
	}

	// General: consumption plus expiration.
	theta = resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 4)),
		resource.NewTerm(u(9), netL12, interval.New(0, 9)), // nobody wants it
	)
	st = NewState(theta, 0)
	st2, _, err = Admit(st, evalJob(t, "j", "a1", 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, tr, _ = Tick(st2, 1)
	if tr.Kind != KindGeneral {
		t.Errorf("kind = %v, want general", tr.Kind)
	}

	// Concurrent: two actors at different locations consume in the same
	// tick, everything consumed.
	theta = resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 4)),
		resource.NewTerm(u(2), resource.CPUAt("l2"), interval.New(0, 4)),
	)
	st = NewState(theta, 0)
	c1, err := cost.Realize(cost.Paper(), "a1", compute.Evaluate("a1", "l1", 1))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cost.Realize(cost.Paper(), "a2", compute.Evaluate("a2", "l2", 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := compute.NewDistributed("pair", 0, 4, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	st2, _, err = Admit(st, d)
	if err != nil {
		t.Fatal(err)
	}
	_, tr, _ = Tick(st2, 1)
	if tr.Kind != KindConcurrent {
		t.Errorf("kind = %v, want concurrent (%s)", tr.Kind, tr.Label())
	}
	if len(tr.Consumptions) != 2 {
		t.Errorf("consumptions = %+v", tr.Consumptions)
	}
}

func TestTickCompletesCommitments(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(8), cpuL1, interval.New(0, 4)))
	s := NewState(theta, 0)
	s2, plan, err := Admit(s, evalJob(t, "quick", "a1", 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Finish != 1 {
		t.Fatalf("Finish = %d", plan.Finish)
	}
	s3, tr, _ := Tick(s2, 1)
	if len(tr.Completed) != 1 || tr.Completed[0] != "quick" {
		t.Errorf("Completed = %v", tr.Completed)
	}
	if len(s3.Commitments) != 0 {
		t.Error("completed commitment not removed")
	}
}

func TestRunMeetsDeadlinesWithoutViolations(t *testing.T) {
	theta := resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 20)),
		resource.NewTerm(u(1), netL12, interval.New(0, 20)),
	)
	s := NewState(theta, 0)
	job := seqJob(t, "seq", "a1", 0, 20)
	s2, plan, err := Admit(s, job)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(s2, 0, 1)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	done, ok := res.Completed["seq"]
	if !ok {
		t.Fatal("seq never completed")
	}
	if done > job.Deadline {
		t.Errorf("completed at %d, after deadline %d", done, job.Deadline)
	}
	if done != plan.Finish {
		t.Errorf("completed at %d, plan promised %d", done, plan.Finish)
	}
}

func TestRunHorizonBound(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(1), cpuL1, interval.New(0, 100)))
	s := NewState(theta, 0)
	res := Run(s, 10, 1)
	if got := res.Path.Last().Now; got != 10 {
		t.Errorf("final time = %d, want 10", got)
	}
	if res.Path.Len() != 11 {
		t.Errorf("path length = %d, want 11", res.Path.Len())
	}
}

func TestViolationOnRenegedResources(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 10)))
	s := NewState(theta, 0)
	s2, _, err := Admit(s, evalJob(t, "doomed", "a1", 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Renege: strip all cpu after admission (simulates a peer leaving
	// without notice — violating the paper's join-with-departure-time
	// assumption, which is exactly what failure injection studies).
	s2.Theta = resource.Set{}
	_, tr, viols := Tick(s2, 1)
	if len(viols) == 0 {
		t.Fatal("reneged resources produced no violation")
	}
	v := viols[0]
	if v.Computation != "doomed" || v.Actor != "a1" || v.Type != cpuL1 || v.At != 0 {
		t.Errorf("violation = %+v", v)
	}
	if v.Error() == "" {
		t.Error("violation message empty")
	}
	if tr.Kind != KindIdle {
		t.Errorf("kind = %v (nothing consumed, nothing to expire)", tr.Kind)
	}
}

func TestTheorem4SecondComputationUsesOnlyFreeResources(t *testing.T) {
	// Capacity for exactly one job at a time: rate 2 cpu over (0,8) = 16
	// units; each job needs 8.
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8)))
	s := NewState(theta, 0)

	s2, _, err := Admit(s, evalJob(t, "first", "a1", 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Second identical job fits in the expiring half.
	s3, _, err := Admit(s2, evalJob(t, "second", "a2", 0, 8))
	if err != nil {
		t.Fatalf("second job should fit in expiring resources: %v", err)
	}
	// Third cannot.
	if _, _, err := Admit(s3, evalJob(t, "third", "a3", 0, 8)); err == nil {
		t.Error("third job admitted beyond capacity")
	}
	// And the committed pair executes cleanly — Theorem 4's "without
	// affecting the existing computations".
	res := Run(s3, 0, 1)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if len(res.Completed) != 2 {
		t.Errorf("completed = %v", res.Completed)
	}
}

func TestTransitionKindStrings(t *testing.T) {
	for k := KindSequential; k <= KindIdle; k++ {
		if strings.HasPrefix(k.String(), "TransitionKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if TransitionKind(99).String() != "TransitionKind(99)" {
		t.Error("unknown kind should render numerically")
	}
}
