// Package core implements ROTA itself (§V of the paper): system states
// S = (Θ, ρ, t), the labeled transition rules that evolve them
// (sequential/concurrent consumption, resource expiration, the general
// rule, resource acquisition, computation accommodation and leave),
// computation paths, the well-formed-formula syntax, the satisfaction
// semantics of Figure 1, and decision procedures for Theorems 1–4.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/schedule"
)

// Commitment is one accommodated computation: its requirement ρ(Λ, s, d)
// together with the witness plan produced at admission. The remaining
// requirement at any time is derivable from the plan and the clock — the
// paper's per-Δt decrement [q − r×Δt] corresponds to the consumed prefix
// of the plan's allocations.
type Commitment struct {
	Req  compute.Concurrent
	Plan schedule.Plan
}

// Name returns the committed computation's name.
func (c Commitment) Name() string {
	return c.Req.Name
}

// Done reports whether the computation has completed by time now.
func (c Commitment) Done(now interval.Time) bool {
	return now >= c.Plan.Finish
}

// RemainingDemand returns the portion of the plan not yet consumed at
// time now.
func (c Commitment) RemainingDemand(now interval.Time) resource.Set {
	return c.Plan.Demand().Clamp(interval.New(now, interval.Infinity))
}

// State is the ROTA system state S = (Θ, ρ, t): future available
// resources, accommodated computations, and the current time.
type State struct {
	// Theta is the future available resource set Θ, starting from Now.
	Theta resource.Set
	// Commitments is ρ: the computations the system has committed to.
	Commitments []Commitment
	// Now is the current time t.
	Now interval.Time
}

// NewState builds an initial state. Availability before t is trimmed
// immediately (it could never be used).
func NewState(theta resource.Set, t interval.Time) State {
	th := theta.Clone()
	th.TrimBefore(t)
	return State{Theta: th, Now: t}
}

// Clone returns a deep copy of the state.
func (s State) Clone() State {
	out := State{Theta: s.Theta.Clone(), Now: s.Now}
	out.Commitments = append([]Commitment(nil), s.Commitments...)
	return out
}

// Commitment returns the named commitment, if present.
func (s State) Commitment(name string) (Commitment, bool) {
	for _, c := range s.Commitments {
		if c.Name() == name {
			return c, true
		}
	}
	return Commitment{}, false
}

// CommittedDemand returns the union of all commitments' remaining
// demands: the resources already spoken for.
func (s State) CommittedDemand() resource.Set {
	var out resource.Set
	for _, c := range s.Commitments {
		out = out.Union(c.RemainingDemand(s.Now))
	}
	return out
}

// FreeResources returns Θ_free: resources that will expire unused on the
// committed path — Θ minus the committed demand. These are the paper's
// "unwanted resources which will expire unless new computations requiring
// them enter the system", the raw material of Theorem 4.
func (s State) FreeResources() (resource.Set, error) {
	free, err := s.Theta.Subtract(s.CommittedDemand())
	if err != nil {
		// Committed demand exceeding availability means an earlier churn
		// event invalidated a plan; callers decide how to handle it.
		return resource.Set{}, fmt.Errorf("core: committed demand exceeds availability: %w", err)
	}
	return free, nil
}

// String renders "(Θ: 3 terms, ρ: 2 computations, t=7)".
func (s State) String() string {
	return fmt.Sprintf("(Θ: %d terms, ρ: %d computations, t=%d)",
		s.Theta.NumTerms(), len(s.Commitments), s.Now)
}

// TransitionKind classifies a transition with the paper's rule names.
type TransitionKind uint8

// The transition rules of §V-A.
const (
	// KindSequential is the sequential transition rule: exactly one actor
	// consumes one resource over Δt.
	KindSequential TransitionKind = iota + 1
	// KindConcurrent is the concurrent transition rule: several actors
	// consume resources over Δt and nothing expires unused.
	KindConcurrent
	// KindExpire covers the (sequential and concurrent) resource
	// expiration rules: time advances and resources expire unused.
	KindExpire
	// KindGeneral is the general transition rule: some resources are
	// consumed while others expire.
	KindGeneral
	// KindAcquire is the resource acquisition rule (instantaneous).
	KindAcquire
	// KindAccommodate is the computation accommodation rule
	// (instantaneous, requires t < d).
	KindAccommodate
	// KindLeave is the computation leave rule (instantaneous, requires
	// t < s).
	KindLeave
	// KindIdle is a time step in which nothing was available, consumed or
	// expired.
	KindIdle
)

var kindNames = map[TransitionKind]string{
	KindSequential:  "sequential",
	KindConcurrent:  "concurrent",
	KindExpire:      "expire",
	KindGeneral:     "general",
	KindAcquire:     "acquire",
	KindAccommodate: "accommodate",
	KindLeave:       "leave",
	KindIdle:        "idle",
}

// String returns the rule name.
func (k TransitionKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TransitionKind(%d)", uint8(k))
}

// Consumption is one ξ→a element of a transition label: actor a consumed
// rate×Δt of located type ξ.
type Consumption struct {
	Actor compute.ActorName
	Type  resource.LocatedType
	Rate  resource.Rate
}

// Transition is a labeled transition between states.
type Transition struct {
	Kind         TransitionKind
	From, To     interval.Time
	Consumptions []Consumption
	// Expired is the availability that lapsed unused during (From, To).
	Expired resource.Set
	// Joined is the resource set added by an acquisition.
	Joined resource.Set
	// Computation names the computation of an accommodate/leave.
	Computation string
	// Completed names the computations that finished during this step.
	Completed []string
}

// Label renders the transition label, e.g. "⟨cpu,l1⟩→a1, ⟨network,l1→l2⟩→a2".
func (tr Transition) Label() string {
	switch tr.Kind {
	case KindAcquire:
		return "acquire " + tr.Joined.String()
	case KindAccommodate:
		return "ρ(" + tr.Computation + ")"
	case KindLeave:
		return "¬ρ(" + tr.Computation + ")"
	}
	if len(tr.Consumptions) == 0 {
		if tr.Expired.Empty() {
			return "idle"
		}
		return "expire " + tr.Expired.String()
	}
	out := ""
	for i, c := range tr.Consumptions {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s→%s", c.Type, c.Actor)
	}
	return out
}

// Violation records a commitment whose planned consumption could not be
// honored (possible only when resources renege after admission). Phase
// and Missed identify exactly what work went undone, so Repair can fold
// it back into a revised plan.
type Violation struct {
	Computation string
	Actor       compute.ActorName
	Type        resource.LocatedType
	At          interval.Time
	// Phase is the plan phase the missed allocation fed.
	Phase int
	// Missed is the quantity that should have been consumed this step.
	Missed resource.Quantity
}

// Error renders the violation as a message.
func (v Violation) Error() string {
	return fmt.Sprintf("core: commitment %s actor %s missed %v at t=%d",
		v.Computation, v.Actor, v.Type, v.At)
}

// ErrDeadlinePassed is returned by Accommodate when t ≥ d.
var ErrDeadlinePassed = errors.New("core: cannot accommodate a computation whose deadline has passed")

// ErrAlreadyStarted is returned by Leave when t ≥ s.
var ErrAlreadyStarted = errors.New("core: a computation which has already started cannot leave")

// ErrUnknownComputation is returned by Leave for a name not in ρ.
var ErrUnknownComputation = errors.New("core: unknown computation")

// Acquire applies the resource acquisition rule: (Θ, ρ, t) → (Θ ∪ Θjoin,
// ρ, t). Joining resources must carry their departure time in their
// intervals — "if a resource is going to leave the system in the future,
// the time of leaving must be explicitly specified at the time of
// joining". Availability before Now is trimmed since it can never be
// used.
func Acquire(s State, join resource.Set) (State, Transition) {
	next := s.Clone()
	usable := join.Clone()
	usable.TrimBefore(s.Now)
	next.Theta = next.Theta.Union(usable)
	return next, Transition{Kind: KindAcquire, From: s.Now, To: s.Now, Joined: usable}
}

// Accommodate applies the computation accommodation rule: (Θ, ρ, t) →
// (Θ, ρ ∪ ρ(Λ,s,d), t), defined only while t < d. The caller provides
// the witness plan (from schedule.Concurrent against the state's free
// resources); Accommodate re-verifies it against the free resources so an
// invalid plan cannot corrupt ρ.
func Accommodate(s State, req compute.Concurrent, plan schedule.Plan) (State, Transition, error) {
	if s.Now >= req.Window.End {
		return State{}, Transition{}, ErrDeadlinePassed
	}
	if _, exists := s.Commitment(req.Name); exists {
		return State{}, Transition{}, fmt.Errorf("core: computation %s already accommodated", req.Name)
	}
	free, err := s.FreeResources()
	if err != nil {
		return State{}, Transition{}, err
	}
	if err := schedule.Verify(free, req, plan); err != nil {
		return State{}, Transition{}, fmt.Errorf("core: plan rejected: %w", err)
	}
	next := s.Clone()
	next.Commitments = append(next.Commitments, Commitment{Req: req, Plan: plan})
	return next, Transition{Kind: KindAccommodate, From: s.Now, To: s.Now, Computation: req.Name}, nil
}

// Leave applies the computation leave rule: (Θ, ρ, t) → (Θ, ρ \
// ρ(Λ,s,d), t), defined only while t < s — "a computation which has
// already started in the system is not allowed to leave".
func Leave(s State, name string) (State, Transition, error) {
	idx := -1
	for i, c := range s.Commitments {
		if c.Name() == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return State{}, Transition{}, fmt.Errorf("%w: %s", ErrUnknownComputation, name)
	}
	if s.Now >= s.Commitments[idx].Req.Window.Start {
		return State{}, Transition{}, ErrAlreadyStarted
	}
	next := s.Clone()
	next.Commitments = append(next.Commitments[:idx], next.Commitments[idx+1:]...)
	return next, Transition{Kind: KindLeave, From: s.Now, To: s.Now, Computation: name}, nil
}

// Tick applies the general transition rule over (t, t+dt): every
// commitment consumes its planned allocations for the step, unconsumed
// availability within the step expires, and the clock advances. The
// returned transition is classified as sequential, concurrent, expire,
// general or idle depending on what actually happened — the paper's
// specific rules are the special cases of this one.
//
// Violations are returned (not silently dropped) when a commitment's
// planned consumption is no longer available; this can only happen when
// resources reneged after admission (failure injection in the simulator).
func Tick(s State, dt interval.Time) (State, Transition, []Violation) {
	if dt <= 0 {
		dt = 1
	}
	step := interval.New(s.Now, s.Now+dt)
	next := s.Clone()
	tr := Transition{From: s.Now, To: s.Now + dt}
	var violations []Violation

	for _, c := range next.Commitments {
		for _, alloc := range c.Plan.Allocs {
			span := alloc.Term.Span.Intersect(step)
			if span.Empty() {
				continue
			}
			if err := next.Theta.Consume(alloc.Term.Type, span, alloc.Term.Rate); err != nil {
				violations = append(violations, Violation{
					Computation: c.Name(),
					Actor:       alloc.Actor,
					Type:        alloc.Term.Type,
					At:          s.Now,
					Phase:       alloc.Phase,
					Missed:      resource.Quantity(alloc.Term.Rate) * resource.Quantity(span.Len()),
				})
				continue
			}
			tr.Consumptions = append(tr.Consumptions, Consumption{
				Actor: alloc.Actor,
				Type:  alloc.Term.Type,
				Rate:  alloc.Term.Rate,
			})
		}
	}
	sort.Slice(tr.Consumptions, func(i, j int) bool {
		a, b := tr.Consumptions[i], tr.Consumptions[j]
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		return a.Type.String() < b.Type.String()
	})

	// Whatever availability remains inside the step expires unused.
	tr.Expired = next.Theta.TrimBefore(s.Now + dt)
	next.Now = s.Now + dt

	// Completed commitments leave ρ.
	var live []Commitment
	for _, c := range next.Commitments {
		if c.Done(next.Now) {
			tr.Completed = append(tr.Completed, c.Name())
		} else {
			live = append(live, c)
		}
	}
	next.Commitments = live

	switch {
	case len(tr.Consumptions) == 0 && tr.Expired.Empty():
		tr.Kind = KindIdle
	case len(tr.Consumptions) == 0:
		tr.Kind = KindExpire
	case tr.Expired.Empty() && len(tr.Consumptions) == 1:
		tr.Kind = KindSequential
	case tr.Expired.Empty():
		tr.Kind = KindConcurrent
	default:
		tr.Kind = KindGeneral
	}
	return next, tr, violations
}
