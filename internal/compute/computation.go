package compute

import (
	"fmt"
	"strings"

	"repro/internal/interval"
	"repro/internal/resource"
)

// Step is one action of an actor computation together with the resources
// Φ says it requires. Steps are the unit of sequential ordering: a step
// is a "possible action" (Definition 1) only when every earlier step has
// completed.
type Step struct {
	Action  Action
	Amounts resource.Amounts
}

// TotalQty returns the summed required quantity across types.
func (s Step) TotalQty() resource.Quantity {
	return s.Amounts.Total()
}

// Computation is a sequential actor computation Γ: the actions one actor
// will take, in order, each reified as its resource requirements.
type Computation struct {
	Actor ActorName
	Steps []Step
}

// NewComputation builds a computation after validating every action
// belongs to the named actor.
func NewComputation(actor ActorName, steps ...Step) (Computation, error) {
	for i, st := range steps {
		if err := st.Action.Validate(); err != nil {
			return Computation{}, fmt.Errorf("compute: step %d: %w", i, err)
		}
		if st.Action.Actor != actor {
			return Computation{}, fmt.Errorf("compute: step %d belongs to %s, not %s",
				i, st.Action.Actor, actor)
		}
	}
	return Computation{Actor: actor, Steps: steps}, nil
}

// Empty reports whether the computation has no steps.
func (c Computation) Empty() bool {
	return len(c.Steps) == 0
}

// TotalAmounts sums required amounts over all steps (order-insensitive
// aggregate — what the NaiveTotal baseline reasons with).
func (c Computation) TotalAmounts() resource.Amounts {
	out := make(resource.Amounts)
	for _, st := range c.Steps {
		out.Merge(st.Amounts)
	}
	return out
}

// Phases groups maximal runs of consecutive steps whose requirements use
// one identical located type, following §IV-B2: "a sequence of actions
// which require the same single type of resource need not be broken down
// into multiple subcomputations". Steps needing several types (e.g.
// migrate) form single-step phases. The result is the subcomputation
// sequence Γ1, Γ2, …, Γm of the complex resource requirement.
func (c Computation) Phases() []Phase {
	var phases []Phase
	for _, st := range c.Steps {
		if st.Amounts.Empty() {
			continue // a free action imposes no requirement
		}
		lt, single := st.Amounts.SingleType()
		if n := len(phases); single && n > 0 {
			if prevLT, prevSingle := phases[n-1].Amounts.SingleType(); prevSingle && prevLT == lt {
				phases[n-1].Amounts.Merge(st.Amounts)
				phases[n-1].Steps = append(phases[n-1].Steps, st)
				continue
			}
		}
		phases = append(phases, Phase{
			Amounts: st.Amounts.Clone(),
			Steps:   []Step{st},
		})
	}
	return phases
}

// String renders the computation as "Γ(a1): send; evaluate; …".
func (c Computation) String() string {
	names := make([]string, len(c.Steps))
	for i, st := range c.Steps {
		names[i] = st.Action.Op.String()
	}
	return fmt.Sprintf("Γ(%s): %s", c.Actor, strings.Join(names, "; "))
}

// Phase is one subcomputation Γi of a complex requirement: a consecutive
// group of steps with its aggregate required amounts. The phase must
// receive its amounts within whatever subinterval the schedule assigns it,
// after all earlier phases have completed.
type Phase struct {
	Amounts resource.Amounts
	Steps   []Step
}

// Distributed is the paper's computation triple (Λ, s, d): a set of
// independent concurrent actor computations, an earliest start time and a
// deadline. "The computation does not seek to begin before s and seeks to
// be completed before d."
type Distributed struct {
	Name     string
	Actors   []Computation
	Start    interval.Time
	Deadline interval.Time
}

// NewDistributed validates and builds a distributed computation.
func NewDistributed(name string, start, deadline interval.Time, actors ...Computation) (Distributed, error) {
	if deadline <= start {
		return Distributed{}, fmt.Errorf("compute: %s has empty execution window (%d, %d)", name, start, deadline)
	}
	seen := make(map[ActorName]bool, len(actors))
	for _, a := range actors {
		if seen[a.Actor] {
			return Distributed{}, fmt.Errorf("compute: %s has duplicate actor %s", name, a.Actor)
		}
		seen[a.Actor] = true
	}
	return Distributed{Name: name, Actors: actors, Start: start, Deadline: deadline}, nil
}

// Window returns the execution window (s, d).
func (d Distributed) Window() interval.Interval {
	return interval.New(d.Start, d.Deadline)
}

// TotalAmounts aggregates requirements across all actors.
func (d Distributed) TotalAmounts() resource.Amounts {
	out := make(resource.Amounts)
	for _, a := range d.Actors {
		out.Merge(a.TotalAmounts())
	}
	return out
}

// NumSteps returns the total number of steps across actors.
func (d Distributed) NumSteps() int {
	n := 0
	for _, a := range d.Actors {
		n += len(a.Steps)
	}
	return n
}

// String renders "(Λ name: 2 actors, s=0, d=20)".
func (d Distributed) String() string {
	return fmt.Sprintf("(Λ %s: %d actors, s=%d, d=%d)", d.Name, len(d.Actors), d.Start, d.Deadline)
}
