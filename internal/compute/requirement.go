package compute

import (
	"fmt"
	"strings"

	"repro/internal/interval"
	"repro/internal/resource"
)

// Simple is the paper's simple resource requirement ρ(γ, s, d) =
// [Φ(a,γ)]^(s,d): a total amount of resources required at any time within
// a window. It carries no ordering constraint — that is what Complex adds.
type Simple struct {
	Amounts resource.Amounts
	Window  interval.Interval
}

// SimpleOf builds the simple requirement of a single action over a
// window.
func SimpleOf(step Step, window interval.Interval) Simple {
	return Simple{Amounts: step.Amounts.Clone(), Window: window}
}

// Satisfied implements the paper's boolean function f(Θ, ρ(γ, s, d)):
// true when the union of all resources in Θ existing within the window
// provides at least the required quantity of every required located type.
//
// Per the paper this is an aggregate-quantity test: for a single action
// (or a single-type run of actions) having enough total quantity within
// the window guarantees completion, because the action can consume at
// whatever rate is available.
func (r Simple) Satisfied(theta resource.Set) bool {
	if r.Window.Empty() {
		return r.Amounts.Empty()
	}
	for lt, need := range r.Amounts {
		if theta.QuantityWithin(lt, r.Window) < need {
			return false
		}
	}
	return true
}

// Empty reports whether nothing is required.
func (r Simple) Empty() bool {
	return r.Amounts.Empty()
}

// String renders "ρ{[8]⟨cpu,l1⟩}(0,5)".
func (r Simple) String() string {
	return "ρ" + r.Amounts.String() + r.Window.String()
}

// Complex is the paper's complex resource requirement ρ(Γ, s, d): an
// ordered sequence of subcomputation requirements that must be satisfied
// in consecutive subintervals of the window. The break points t1 … t_{m-1}
// are not fixed here; Theorem 2 asks whether any choice of break points
// works, and the scheduler searches for one.
type Complex struct {
	Actor  ActorName
	Phases []Phase
	Window interval.Interval
}

// ComplexOf derives the complex requirement of an actor computation over
// the window (s, d).
func ComplexOf(c Computation, window interval.Interval) Complex {
	return Complex{Actor: c.Actor, Phases: c.Phases(), Window: window}
}

// Empty reports whether no phase requires anything.
func (r Complex) Empty() bool {
	return len(r.Phases) == 0
}

// TotalAmounts aggregates over phases.
func (r Complex) TotalAmounts() resource.Amounts {
	out := make(resource.Amounts)
	for _, ph := range r.Phases {
		out.Merge(ph.Amounts)
	}
	return out
}

// SatisfiedWithBreaks checks the specific break points t1 … t_{m-1}
// proposed for the phases: it partitions the window at those points and
// tests every phase's simple requirement on its subinterval (Theorem 2's
// "so that the system can satisfy the simple resource requirements for
// each subinterval").
//
// Note the test is per-subinterval aggregate quantity — valid because
// subintervals are disjoint, so quantity available in one cannot be
// double-counted in another.
func (r Complex) SatisfiedWithBreaks(theta resource.Set, breaks []interval.Time) error {
	if len(breaks) != len(r.Phases)-1 && !(len(r.Phases) == 0 && len(breaks) == 0) {
		return fmt.Errorf("compute: %d phases need %d break points, got %d",
			len(r.Phases), len(r.Phases)-1, len(breaks))
	}
	prev := r.Window.Start
	for i, ph := range r.Phases {
		end := r.Window.End
		if i < len(breaks) {
			end = breaks[i]
		}
		if end < prev || end > r.Window.End {
			return fmt.Errorf("compute: break points not monotone within window: %v", breaks)
		}
		sub := Simple{Amounts: ph.Amounts, Window: interval.New(prev, end)}
		if !sub.Satisfied(theta) {
			return fmt.Errorf("compute: phase %d of %s unsatisfied on %v", i, r.Actor, sub.Window)
		}
		prev = end
	}
	return nil
}

// String renders "ρ(Γ a1: 3 phases)(0,10)".
func (r Complex) String() string {
	return fmt.Sprintf("ρ(Γ %s: %d phases)%s", r.Actor, len(r.Phases), r.Window)
}

// Concurrent is the requirement ρ(Λ, s, d) of a distributed computation:
// the complex requirements of its actors, all over the same window, to be
// satisfied simultaneously from shared resources.
type Concurrent struct {
	Name   string
	Actors []Complex
	Window interval.Interval
}

// ConcurrentOf derives the requirement of a distributed computation.
func ConcurrentOf(d Distributed) Concurrent {
	actors := make([]Complex, 0, len(d.Actors))
	for _, a := range d.Actors {
		actors = append(actors, ComplexOf(a, d.Window()))
	}
	return Concurrent{Name: d.Name, Actors: actors, Window: d.Window()}
}

// Empty reports whether no actor requires anything.
func (r Concurrent) Empty() bool {
	for _, a := range r.Actors {
		if !a.Empty() {
			return false
		}
	}
	return true
}

// TotalAmounts aggregates across actors.
func (r Concurrent) TotalAmounts() resource.Amounts {
	out := make(resource.Amounts)
	for _, a := range r.Actors {
		out.Merge(a.TotalAmounts())
	}
	return out
}

// String renders the requirement with its actor list.
func (r Concurrent) String() string {
	parts := make([]string, len(r.Actors))
	for i, a := range r.Actors {
		parts[i] = string(a.Actor)
	}
	return fmt.Sprintf("ρ(Λ %s: {%s})%s", r.Name, strings.Join(parts, ","), r.Window)
}
