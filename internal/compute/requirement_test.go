package compute

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/resource"
)

func u(n int64) resource.Rate { return resource.FromUnits(n) }

func TestSimpleSatisfied(t *testing.T) {
	theta := resource.NewSet(
		resource.NewTerm(u(5), cpuL1, interval.New(0, 4)),  // 20 units
		resource.NewTerm(u(2), netL12, interval.New(2, 6)), // 8 units
	)
	tests := []struct {
		name string
		req  Simple
		want bool
	}{
		{
			"cpu fits",
			Simple{Amounts: resource.NewAmounts(resource.AmountOf(20, cpuL1)), Window: interval.New(0, 4)},
			true,
		},
		{
			"cpu too much",
			Simple{Amounts: resource.NewAmounts(resource.AmountOf(21, cpuL1)), Window: interval.New(0, 4)},
			false,
		},
		{
			"window clips availability",
			Simple{Amounts: resource.NewAmounts(resource.AmountOf(20, cpuL1)), Window: interval.New(2, 6)},
			false, // only 10 units of cpu inside (2,6)
		},
		{
			"multi type",
			Simple{
				Amounts: resource.NewAmounts(resource.AmountOf(10, cpuL1), resource.AmountOf(8, netL12)),
				Window:  interval.New(0, 6),
			},
			true,
		},
		{
			"absent type",
			Simple{Amounts: resource.NewAmounts(resource.AmountOf(1, cpuL2)), Window: interval.New(0, 6)},
			false,
		},
		{
			"empty requirement always satisfied",
			Simple{Amounts: resource.NewAmounts(), Window: interval.New(0, 1)},
			true,
		},
		{
			"empty window with demands",
			Simple{Amounts: resource.NewAmounts(resource.AmountOf(1, cpuL1)), Window: interval.Interval{}},
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.req.Satisfied(theta); got != tt.want {
				t.Errorf("Satisfied = %v, want %v", got, tt.want)
			}
		})
	}
}

func buildSeqComputation(t *testing.T) Computation {
	t.Helper()
	c, err := NewComputation("a1",
		step(OpEvaluate, amt(8, cpuL1)), // phase 0: cpu 8
		step(OpSend, amt(4, netL12)),    // phase 1: net 4
		step(OpEvaluate, amt(6, cpuL1)), // phase 2: cpu 6
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestComplexSatisfiedWithBreaks(t *testing.T) {
	c := buildSeqComputation(t)
	req := ComplexOf(c, interval.New(0, 12))
	if len(req.Phases) != 3 {
		t.Fatalf("phases = %d", len(req.Phases))
	}
	// cpu available early and late, network only in the middle: order
	// matters and these breaks respect it.
	theta := resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 4)),  // 8 cpu
		resource.NewTerm(u(2), netL12, interval.New(4, 6)), // 4 net
		resource.NewTerm(u(2), cpuL1, interval.New(6, 9)),  // 6 cpu
	)
	if err := req.SatisfiedWithBreaks(theta, []interval.Time{4, 6}); err != nil {
		t.Errorf("good breaks rejected: %v", err)
	}
	// Breaks that put the network phase where there is no network fail.
	if err := req.SatisfiedWithBreaks(theta, []interval.Time{2, 4}); err == nil {
		t.Error("bad breaks accepted")
	}
	// Wrong break count.
	if err := req.SatisfiedWithBreaks(theta, []interval.Time{4}); err == nil {
		t.Error("wrong break count accepted")
	}
	// Non-monotone breaks.
	if err := req.SatisfiedWithBreaks(theta, []interval.Time{6, 4}); err == nil {
		t.Error("non-monotone breaks accepted")
	}
	// Breaks escaping the window.
	if err := req.SatisfiedWithBreaks(theta, []interval.Time{4, 20}); err == nil {
		t.Error("break past deadline accepted")
	}
}

func TestComplexTotals(t *testing.T) {
	c := buildSeqComputation(t)
	req := ComplexOf(c, interval.New(0, 12))
	if req.Empty() {
		t.Error("requirement should not be empty")
	}
	total := req.TotalAmounts()
	if total[cpuL1] != resource.QuantityFromUnits(14) || total[netL12] != resource.QuantityFromUnits(4) {
		t.Errorf("TotalAmounts = %v", total)
	}
	if req.String() == "" {
		t.Error("String empty")
	}
}

func TestConcurrentOf(t *testing.T) {
	c1 := buildSeqComputation(t)
	raw := step(OpEvaluate, amt(3, cpuL2))
	raw.Action.Actor = "a2"
	c2, err := NewComputation("a2", raw)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDistributed("job", 0, 12, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	req := ConcurrentOf(d)
	if len(req.Actors) != 2 {
		t.Fatalf("actors = %d", len(req.Actors))
	}
	if req.Empty() {
		t.Error("should not be empty")
	}
	total := req.TotalAmounts()
	if total[cpuL1] != resource.QuantityFromUnits(14) ||
		total[netL12] != resource.QuantityFromUnits(4) ||
		total[cpuL2] != resource.QuantityFromUnits(3) {
		t.Errorf("TotalAmounts = %v", total)
	}
	if req.String() == "" {
		t.Error("String empty")
	}

	// A distributed computation with only free steps is Empty.
	freeStep := step(OpReady, resource.NewAmounts())
	freeStep.Action.Actor = "a9"
	cFree, err := NewComputation("a9", freeStep)
	if err != nil {
		t.Fatal(err)
	}
	dFree, err := NewDistributed("free", 0, 5, cFree)
	if err != nil {
		t.Fatal(err)
	}
	if !ConcurrentOf(dFree).Empty() {
		t.Error("free computation should yield empty requirement")
	}
}
