package compute

import (
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/resource"
)

func wfSeg(t *testing.T, a ActorName, units int64) Computation {
	t.Helper()
	st := Step{
		Action:  Evaluate(a, "l1", 1),
		Amounts: resource.NewAmounts(resource.AmountOf(units, cpuL1)),
	}
	c, err := NewComputation(a, st)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWorkflowConstructionAndAccessors(t *testing.T) {
	a := Segmented{Actor: "a", Segments: []Computation{wfSeg(t, "a", 4), wfSeg(t, "a", 2)}}
	b := Segmented{Actor: "b", Segments: []Computation{wfSeg(t, "b", 6)}}
	edge := WaitEdge{
		From: SegmentRef{Actor: "a", Segment: 0},
		To:   SegmentRef{Actor: "b", Segment: 0},
	}
	w, err := NewWorkflow("wf", 2, 20, []Segmented{a, b}, []WaitEdge{edge})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Window().Equal(interval.New(2, 20)) {
		t.Errorf("Window = %v", w.Window())
	}
	if w.NumSegments() != 3 {
		t.Errorf("NumSegments = %d", w.NumSegments())
	}
	if got := w.TotalAmounts()[cpuL1]; got != resource.QuantityFromUnits(12) {
		t.Errorf("TotalAmounts = %d", got)
	}
	if !strings.Contains(w.String(), "3 segments") || !strings.Contains(w.String(), "1 waits") {
		t.Errorf("String = %q", w.String())
	}
	if got := edge.From.String(); got != "a/0" {
		t.Errorf("SegmentRef String = %q", got)
	}

	// Segment lookup.
	if seg, ok := w.Segment(SegmentRef{Actor: "a", Segment: 1}); !ok || seg.Actor != "a" {
		t.Error("Segment lookup failed")
	}
	if _, ok := w.Segment(SegmentRef{Actor: "a", Segment: 9}); ok {
		t.Error("out-of-range segment found")
	}
	if _, ok := w.Segment(SegmentRef{Actor: "zz", Segment: 0}); ok {
		t.Error("unknown actor segment found")
	}

	// Dependencies: b/0 waits on a/0; a/1 follows a/0 implicitly.
	deps := w.Dependencies(SegmentRef{Actor: "b", Segment: 0})
	if len(deps) != 1 || deps[0] != (SegmentRef{Actor: "a", Segment: 0}) {
		t.Errorf("deps of b/0 = %v", deps)
	}
	deps = w.Dependencies(SegmentRef{Actor: "a", Segment: 1})
	if len(deps) != 1 || deps[0] != (SegmentRef{Actor: "a", Segment: 0}) {
		t.Errorf("deps of a/1 = %v", deps)
	}
	if got := w.Dependencies(SegmentRef{Actor: "a", Segment: 0}); len(got) != 0 {
		t.Errorf("deps of a/0 = %v", got)
	}

	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != (SegmentRef{Actor: "a", Segment: 0}) {
		t.Errorf("TopoOrder = %v", order)
	}
}

func TestIndependentLifting(t *testing.T) {
	c1 := wfSeg(t, "a", 4)
	c2raw := Step{Action: Evaluate("b", "l1", 1), Amounts: resource.NewAmounts(resource.AmountOf(2, cpuL1))}
	c2, err := NewComputation("b", c2raw)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDistributed("job", 1, 9, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	w := Independent(d)
	if w.Name != "job" || w.Start != 1 || w.Deadline != 9 {
		t.Errorf("Independent header = %+v", w)
	}
	if w.NumSegments() != 2 || len(w.Edges) != 0 {
		t.Errorf("Independent shape: %d segments, %d edges", w.NumSegments(), len(w.Edges))
	}
	if w.TotalAmounts()[cpuL1] != d.TotalAmounts()[cpuL1] {
		t.Error("Independent changed totals")
	}
}

func TestStepAndRequirementHelpers(t *testing.T) {
	st := Step{
		Action: Evaluate("a", "l1", 1),
		Amounts: resource.NewAmounts(
			resource.AmountOf(3, cpuL1),
			resource.AmountOf(2, netL12),
		),
	}
	if st.TotalQty() != resource.QuantityFromUnits(5) {
		t.Errorf("TotalQty = %d", st.TotalQty())
	}
	simple := SimpleOf(st, interval.New(0, 5))
	if simple.Empty() {
		t.Error("simple requirement should not be empty")
	}
	if !strings.Contains(simple.String(), "ρ{") {
		t.Errorf("Simple String = %q", simple.String())
	}
	// SimpleOf clones: mutating the requirement must not touch the step.
	simple.Amounts.Add(resource.AmountOf(100, cpuL1))
	if st.Amounts[cpuL1] != resource.QuantityFromUnits(3) {
		t.Error("SimpleOf aliases the step's amounts")
	}

	empty := Simple{Amounts: resource.NewAmounts(), Window: interval.New(0, 5)}
	if !empty.Empty() {
		t.Error("empty requirement misreported")
	}

	comp, err := NewComputation("a", st)
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.String(); !strings.Contains(got, "Γ(a)") || !strings.Contains(got, "evaluate") {
		t.Errorf("Computation String = %q", got)
	}
}
