// Package compute implements ROTA's representation of computations (§IV
// of the paper): actor actions, sequential actor computations Γ,
// distributed computations (Λ, s, d), and the simple and complex resource
// requirements ρ derived from them.
//
// Following the paper, a computation is represented purely by the
// resources it requires — "which resources, when and how much of them do
// computations consume, rather than what the computations do".
package compute

import (
	"fmt"

	"repro/internal/resource"
)

// ActorName uniquely identifies an actor ("actors have globally unique
// names").
type ActorName string

// Op is one of the five primitive actor actions of §IV-A.
type Op uint8

// The actor primitives. An actor's behaviour is a sequence of these.
const (
	OpSend     Op = iota + 1 // send a message to another actor
	OpEvaluate               // evaluate an expression
	OpCreate                 // create a new actor
	OpReady                  // change state, become ready for next message
	OpMigrate                // move to another location
)

var opNames = map[Op]string{
	OpSend:     "send",
	OpEvaluate: "evaluate",
	OpCreate:   "create",
	OpReady:    "ready",
	OpMigrate:  "migrate",
}

// String returns the primitive's name.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Valid reports whether o is one of the five primitives.
func (o Op) Valid() bool {
	return o >= OpSend && o <= OpMigrate
}

// Action is a single actor action γ with the parameters Φ needs to cost
// it. Loc is the actor's location when the action executes (the paper's
// l(a)); Dest is the message destination's location for send, or the
// target location for migrate. Size scales the work: message size in
// units for send, expression weight for evaluate, state size for migrate.
type Action struct {
	Op     Op
	Actor  ActorName
	Target ActorName         // send: recipient; create: the new actor
	Loc    resource.Location // where the actor is when acting
	Dest   resource.Location // send: recipient's location; migrate: destination
	Size   int64             // work scale; 1 for unit actions
}

// Send builds a send action: actor at loc sends a size-unit message to
// target at dest.
func Send(actor ActorName, loc resource.Location, target ActorName, dest resource.Location, size int64) Action {
	return Action{Op: OpSend, Actor: actor, Target: target, Loc: loc, Dest: dest, Size: size}
}

// Evaluate builds an expression-evaluation action of the given weight.
func Evaluate(actor ActorName, loc resource.Location, weight int64) Action {
	return Action{Op: OpEvaluate, Actor: actor, Loc: loc, Size: weight}
}

// Create builds an actor-creation action.
func Create(actor ActorName, loc resource.Location, child ActorName) Action {
	return Action{Op: OpCreate, Actor: actor, Target: child, Loc: loc, Size: 1}
}

// Ready builds a become-ready action.
func Ready(actor ActorName, loc resource.Location) Action {
	return Action{Op: OpReady, Actor: actor, Loc: loc, Size: 1}
}

// Migrate builds a migration action moving size units of actor state from
// loc to dest.
func Migrate(actor ActorName, loc, dest resource.Location, size int64) Action {
	return Action{Op: OpMigrate, Actor: actor, Loc: loc, Dest: dest, Size: size}
}

// String renders the action, e.g. "a1.send(a2)@l1→l2".
func (a Action) String() string {
	switch a.Op {
	case OpSend:
		return fmt.Sprintf("%s.send(%s)@%s→%s", a.Actor, a.Target, a.Loc, a.Dest)
	case OpCreate:
		return fmt.Sprintf("%s.create(%s)@%s", a.Actor, a.Target, a.Loc)
	case OpMigrate:
		return fmt.Sprintf("%s.migrate(%s→%s)", a.Actor, a.Loc, a.Dest)
	default:
		return fmt.Sprintf("%s.%s@%s", a.Actor, a.Op, a.Loc)
	}
}

// Validate checks that the action's parameters are complete for its op.
func (a Action) Validate() error {
	if !a.Op.Valid() {
		return fmt.Errorf("compute: invalid op %v", a.Op)
	}
	if a.Actor == "" {
		return fmt.Errorf("compute: action %v has no actor", a.Op)
	}
	if a.Loc == "" {
		return fmt.Errorf("compute: action %v of %s has no location", a.Op, a.Actor)
	}
	if a.Size < 0 {
		return fmt.Errorf("compute: action %v of %s has negative size", a.Op, a.Actor)
	}
	switch a.Op {
	case OpSend:
		if a.Target == "" || a.Dest == "" {
			return fmt.Errorf("compute: send of %s missing target or destination", a.Actor)
		}
	case OpCreate:
		if a.Target == "" {
			return fmt.Errorf("compute: create of %s missing child name", a.Actor)
		}
	case OpMigrate:
		if a.Dest == "" {
			return fmt.Errorf("compute: migrate of %s missing destination", a.Actor)
		}
	}
	return nil
}
