package compute

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/resource"
)

// The paper's §IV model restricts concurrent computations to independent
// actors ("actors never have to wait for messages from other actors") and
// §VI sketches the extension: "break down an actor's computation into
// sequences of independent computations separated by states in which it
// is waiting to hear back from a blocking operation."
//
// Workflow implements that extension. Each actor's computation is split
// into segments — independent sequential runs of steps — and wait edges
// couple segments across actors: a segment cannot start until all
// segments it waits for have completed. A send followed by a wait edge is
// exactly the blocking request/response pattern §VI describes.

// SegmentRef identifies one segment of one actor within a workflow.
type SegmentRef struct {
	Actor   ActorName
	Segment int
}

// String renders "a1/2".
func (r SegmentRef) String() string {
	return fmt.Sprintf("%s/%d", r.Actor, r.Segment)
}

// WaitEdge says To cannot begin before From completes — typically because
// To's first action processes a message From's last action sent.
type WaitEdge struct {
	From, To SegmentRef
}

// Segmented is one actor's computation split into segments executed in
// order, with possible waits between them.
type Segmented struct {
	Actor    ActorName
	Segments []Computation
}

// Workflow is a deadline-constrained computation whose actors interact.
type Workflow struct {
	Name     string
	Start    interval.Time
	Deadline interval.Time
	Actors   []Segmented
	Edges    []WaitEdge
}

// NewWorkflow validates and builds a workflow: the window must be
// non-empty, actor names unique, segments owned by their actor, edge
// references in range, and the dependency graph (wait edges plus implicit
// intra-actor ordering) acyclic.
func NewWorkflow(name string, start, deadline interval.Time, actors []Segmented, edges []WaitEdge) (Workflow, error) {
	if deadline <= start {
		return Workflow{}, fmt.Errorf("compute: workflow %s has empty window (%d, %d)", name, start, deadline)
	}
	seen := make(map[ActorName]int, len(actors))
	for _, a := range actors {
		if _, dup := seen[a.Actor]; dup {
			return Workflow{}, fmt.Errorf("compute: workflow %s has duplicate actor %s", name, a.Actor)
		}
		if len(a.Segments) == 0 {
			return Workflow{}, fmt.Errorf("compute: workflow %s actor %s has no segments", name, a.Actor)
		}
		for i, seg := range a.Segments {
			if seg.Actor != a.Actor {
				return Workflow{}, fmt.Errorf("compute: workflow %s: segment %s/%d belongs to %s",
					name, a.Actor, i, seg.Actor)
			}
		}
		seen[a.Actor] = len(a.Segments)
	}
	w := Workflow{Name: name, Start: start, Deadline: deadline, Actors: actors, Edges: edges}
	for _, e := range edges {
		for _, ref := range []SegmentRef{e.From, e.To} {
			n, ok := seen[ref.Actor]
			if !ok {
				return Workflow{}, fmt.Errorf("compute: workflow %s: edge references unknown actor %s", name, ref.Actor)
			}
			if ref.Segment < 0 || ref.Segment >= n {
				return Workflow{}, fmt.Errorf("compute: workflow %s: edge references %v out of range", name, ref)
			}
		}
		if e.From == e.To {
			return Workflow{}, fmt.Errorf("compute: workflow %s: self edge on %v", name, e.From)
		}
	}
	if _, err := w.TopoOrder(); err != nil {
		return Workflow{}, err
	}
	return w, nil
}

// Window returns the execution window (s, d).
func (w Workflow) Window() interval.Interval {
	return interval.New(w.Start, w.Deadline)
}

// Segment returns the computation of a segment reference.
func (w Workflow) Segment(ref SegmentRef) (Computation, bool) {
	for _, a := range w.Actors {
		if a.Actor == ref.Actor {
			if ref.Segment < 0 || ref.Segment >= len(a.Segments) {
				return Computation{}, false
			}
			return a.Segments[ref.Segment], true
		}
	}
	return Computation{}, false
}

// Dependencies returns every predecessor of ref: its intra-actor
// predecessor (if any) plus all wait-edge sources.
func (w Workflow) Dependencies(ref SegmentRef) []SegmentRef {
	var deps []SegmentRef
	if ref.Segment > 0 {
		deps = append(deps, SegmentRef{Actor: ref.Actor, Segment: ref.Segment - 1})
	}
	for _, e := range w.Edges {
		if e.To == ref {
			deps = append(deps, e.From)
		}
	}
	return deps
}

// TopoOrder returns every segment in an order compatible with all
// dependencies, or an error if the graph has a cycle.
func (w Workflow) TopoOrder() ([]SegmentRef, error) {
	var all []SegmentRef
	for _, a := range w.Actors {
		for i := range a.Segments {
			all = append(all, SegmentRef{Actor: a.Actor, Segment: i})
		}
	}
	indeg := make(map[SegmentRef]int, len(all))
	succs := make(map[SegmentRef][]SegmentRef, len(all))
	for _, ref := range all {
		for _, dep := range w.Dependencies(ref) {
			indeg[ref]++
			succs[dep] = append(succs[dep], ref)
		}
	}
	var ready []SegmentRef
	for _, ref := range all {
		if indeg[ref] == 0 {
			ready = append(ready, ref)
		}
	}
	out := make([]SegmentRef, 0, len(all))
	for len(ready) > 0 {
		ref := ready[0]
		ready = ready[1:]
		out = append(out, ref)
		for _, next := range succs[ref] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	if len(out) != len(all) {
		return nil, fmt.Errorf("compute: workflow %s has a dependency cycle", w.Name)
	}
	return out, nil
}

// TotalAmounts aggregates requirements across all segments.
func (w Workflow) TotalAmounts() resource.Amounts {
	out := make(resource.Amounts)
	for _, a := range w.Actors {
		for _, seg := range a.Segments {
			out.Merge(seg.TotalAmounts())
		}
	}
	return out
}

// NumSegments returns the total segment count.
func (w Workflow) NumSegments() int {
	n := 0
	for _, a := range w.Actors {
		n += len(a.Segments)
	}
	return n
}

// Independent converts a plain distributed computation into the
// degenerate workflow with one segment per actor and no edges — the §IV
// special case.
func Independent(d Distributed) Workflow {
	actors := make([]Segmented, 0, len(d.Actors))
	for _, a := range d.Actors {
		actors = append(actors, Segmented{Actor: a.Actor, Segments: []Computation{a}})
	}
	return Workflow{
		Name:     d.Name,
		Start:    d.Start,
		Deadline: d.Deadline,
		Actors:   actors,
	}
}

// String renders "(W name: 3 actors, 5 segments, 2 waits, s=0, d=20)".
func (w Workflow) String() string {
	return fmt.Sprintf("(W %s: %d actors, %d segments, %d waits, s=%d, d=%d)",
		w.Name, len(w.Actors), w.NumSegments(), len(w.Edges), w.Start, w.Deadline)
}
