package compute

import (
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/resource"
)

var (
	cpuL1  = resource.CPUAt("l1")
	cpuL2  = resource.CPUAt("l2")
	netL12 = resource.Link("l1", "l2")
)

func amt(units int64, lt resource.LocatedType) resource.Amounts {
	return resource.NewAmounts(resource.AmountOf(units, lt))
}

func step(op Op, amounts resource.Amounts) Step {
	a := Action{Op: op, Actor: "a1", Loc: "l1", Size: 1}
	switch op {
	case OpSend:
		a.Target, a.Dest = "a2", "l2"
	case OpCreate:
		a.Target = "b"
	case OpMigrate:
		a.Dest = "l2"
	}
	return Step{Action: a, Amounts: amounts}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpSend: "send", OpEvaluate: "evaluate", OpCreate: "create",
		OpReady: "ready", OpMigrate: "migrate",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op %d String = %q, want %q", op, got, want)
		}
	}
	if Op(0).Valid() || Op(9).Valid() {
		t.Error("invalid ops reported valid")
	}
	if got := Op(9).String(); got != "Op(9)" {
		t.Errorf("invalid op String = %q", got)
	}
}

func TestActionConstructorsAndValidate(t *testing.T) {
	good := []Action{
		Send("a1", "l1", "a2", "l2", 4),
		Evaluate("a1", "l1", 8),
		Create("a1", "l1", "b"),
		Ready("a1", "l1"),
		Migrate("a1", "l1", "l2", 16),
	}
	for _, a := range good {
		if err := a.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", a, err)
		}
	}
	bad := []Action{
		{},
		{Op: OpSend, Actor: "a1", Loc: "l1"}, // no target
		{Op: OpSend, Actor: "a1", Loc: "l1", Target: "a2"}, // no dest
		{Op: OpEvaluate, Loc: "l1"},                        // no actor
		{Op: OpEvaluate, Actor: "a1"},                      // no location
		{Op: OpCreate, Actor: "a1", Loc: "l1"},             // no child
		{Op: OpMigrate, Actor: "a1", Loc: "l1"},            // no destination
		{Op: OpEvaluate, Actor: "a1", Loc: "l1", Size: -1}, // negative size
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", a)
		}
	}
}

func TestActionString(t *testing.T) {
	tests := []struct {
		a    Action
		want string
	}{
		{Send("a1", "l1", "a2", "l2", 1), "a1.send(a2)@l1→l2"},
		{Evaluate("a1", "l1", 1), "a1.evaluate@l1"},
		{Create("a1", "l1", "b"), "a1.create(b)@l1"},
		{Migrate("a1", "l1", "l2", 1), "a1.migrate(l1→l2)"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestNewComputationValidates(t *testing.T) {
	ok := step(OpEvaluate, amt(8, cpuL1))
	if _, err := NewComputation("a1", ok); err != nil {
		t.Fatalf("valid computation rejected: %v", err)
	}
	// Wrong owner.
	stranger := ok
	stranger.Action.Actor = "zz"
	if _, err := NewComputation("a1", stranger); err == nil {
		t.Error("foreign step should be rejected")
	}
	// Invalid action.
	if _, err := NewComputation("a1", Step{Action: Action{}}); err == nil {
		t.Error("invalid action should be rejected")
	}
	empty, err := NewComputation("a1")
	if err != nil || !empty.Empty() {
		t.Errorf("empty computation: %v, %v", empty, err)
	}
}

func TestTotalAmounts(t *testing.T) {
	c, err := NewComputation("a1",
		step(OpEvaluate, amt(8, cpuL1)),
		step(OpSend, amt(4, netL12)),
		step(OpEvaluate, amt(2, cpuL1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	total := c.TotalAmounts()
	if total[cpuL1] != resource.QuantityFromUnits(10) {
		t.Errorf("cpu total = %d", total[cpuL1])
	}
	if total[netL12] != resource.QuantityFromUnits(4) {
		t.Errorf("net total = %d", total[netL12])
	}
}

func TestPhasesGroupsSameTypeRuns(t *testing.T) {
	// evaluate;evaluate (cpu) | send (net) | evaluate (cpu) ⇒ 3 phases.
	c, err := NewComputation("a1",
		step(OpEvaluate, amt(8, cpuL1)),
		step(OpEvaluate, amt(5, cpuL1)),
		step(OpSend, amt(4, netL12)),
		step(OpEvaluate, amt(2, cpuL1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	phases := c.Phases()
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3: %+v", len(phases), phases)
	}
	if got := phases[0].Amounts[cpuL1]; got != resource.QuantityFromUnits(13) {
		t.Errorf("phase 0 cpu = %d, want 13 units", got)
	}
	if len(phases[0].Steps) != 2 {
		t.Errorf("phase 0 has %d steps", len(phases[0].Steps))
	}
	if got := phases[1].Amounts[netL12]; got != resource.QuantityFromUnits(4) {
		t.Errorf("phase 1 net = %d", got)
	}
	if got := phases[2].Amounts[cpuL1]; got != resource.QuantityFromUnits(2) {
		t.Errorf("phase 2 cpu = %d", got)
	}
}

func TestPhasesMultiTypeStepStandsAlone(t *testing.T) {
	multi := resource.NewAmounts(
		resource.AmountOf(3, cpuL1),
		resource.AmountOf(2, netL12),
		resource.AmountOf(3, cpuL2),
	)
	c, err := NewComputation("a1",
		step(OpEvaluate, amt(8, cpuL1)),
		step(OpMigrate, multi),
		step(OpEvaluate, amt(2, cpuL1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	phases := c.Phases()
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	if _, single := phases[1].Amounts.SingleType(); single {
		t.Error("migrate phase should be multi-type")
	}
}

func TestPhasesSkipsFreeSteps(t *testing.T) {
	c, err := NewComputation("a1",
		step(OpEvaluate, amt(8, cpuL1)),
		step(OpReady, resource.NewAmounts()), // free
		step(OpEvaluate, amt(2, cpuL1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Free step between two same-type runs: the runs merge.
	phases := c.Phases()
	if len(phases) != 1 {
		t.Fatalf("got %d phases, want 1", len(phases))
	}
	if got := phases[0].Amounts[cpuL1]; got != resource.QuantityFromUnits(10) {
		t.Errorf("merged cpu = %d", got)
	}
}

func TestNewDistributed(t *testing.T) {
	c1, _ := NewComputation("a1", step(OpEvaluate, amt(8, cpuL1)))
	c2raw := step(OpEvaluate, amt(8, cpuL1))
	c2raw.Action.Actor = "a2"
	c2, _ := NewComputation("a2", c2raw)

	d, err := NewDistributed("job", 0, 20, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Window().Equal(interval.New(0, 20)) {
		t.Errorf("Window = %v", d.Window())
	}
	if d.NumSteps() != 2 {
		t.Errorf("NumSteps = %d", d.NumSteps())
	}
	if got := d.TotalAmounts()[cpuL1]; got != resource.QuantityFromUnits(16) {
		t.Errorf("TotalAmounts cpu = %d", got)
	}
	if !strings.Contains(d.String(), "job") {
		t.Errorf("String = %q", d.String())
	}
	if _, err := NewDistributed("bad", 5, 5, c1); err == nil {
		t.Error("empty window should be rejected")
	}
	if _, err := NewDistributed("dup", 0, 10, c1, c1); err == nil {
		t.Error("duplicate actor should be rejected")
	}
}
