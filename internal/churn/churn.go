// Package churn generates resource join/leave traffic for open-system
// experiments. In ROTA resources join carrying their departure time —
// "the time of leaving must be explicitly specified at the time of
// joining" — so a join is simply a resource set whose intervals end when
// the resource departs. Failure injection breaks that promise: a reneging
// resource withdraws before its advertised departure, which is the one
// way an admitted computation can be violated.
package churn

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/interval"
	"repro/internal/resource"
)

// Config parameterizes a churn trace.
type Config struct {
	// Seed fixes the random stream.
	Seed int64
	// Locations are the nodes contributing resources.
	Locations []resource.Location
	// Horizon is the trace length in ticks.
	Horizon interval.Time
	// MeanInterarrival is the mean gap between joins (exponential).
	MeanInterarrival float64
	// LeaseMin/Max bound how long a joining resource stays.
	LeaseMin, LeaseMax interval.Time
	// RateMin/Max bound the offered rate in whole units per tick.
	RateMin, RateMax int64
	// LinkProb is the probability a join is a network link rather than
	// node CPU (needs ≥ 2 locations).
	LinkProb float64
	// RenegeProb is the probability a join withdraws early — at a
	// uniformly random point of its lease — violating its advertisement.
	RenegeProb float64
	// Base is availability present for the whole horizon before any
	// churn (whole units per tick of CPU at every location); 0 for none.
	Base int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Locations) == 0 {
		return fmt.Errorf("churn: no locations")
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("churn: non-positive horizon")
	}
	if c.MeanInterarrival <= 0 {
		return fmt.Errorf("churn: non-positive interarrival")
	}
	if c.LeaseMin < 1 || c.LeaseMax < c.LeaseMin {
		return fmt.Errorf("churn: bad lease bounds [%d,%d]", c.LeaseMin, c.LeaseMax)
	}
	if c.RateMin < 1 || c.RateMax < c.RateMin {
		return fmt.Errorf("churn: bad rate bounds [%d,%d]", c.RateMin, c.RateMax)
	}
	if c.LinkProb < 0 || c.LinkProb > 1 || c.RenegeProb < 0 || c.RenegeProb > 1 {
		return fmt.Errorf("churn: probabilities out of range")
	}
	return nil
}

// Join is one resource-acquisition event: at time At, Terms become known
// to the system (their intervals carry the advertised departure). If the
// resource reneges, Withdrawn is the availability it takes back and
// RenegeAt the time it does so.
type Join struct {
	At        interval.Time
	Terms     resource.Set
	RenegeAt  interval.Time
	Withdrawn resource.Set
}

// Reneges reports whether this join withdraws early.
func (j Join) Reneges() bool {
	return !j.Withdrawn.Empty()
}

// Trace is a churn trace: joins ordered by arrival time.
type Trace struct {
	Joins []Join
	// Base is the static availability configured, if any.
	Base resource.Set
}

// Generate produces a reproducible churn trace.
func Generate(cfg Config) (Trace, error) {
	if err := cfg.Validate(); err != nil {
		return Trace{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var tr Trace
	if cfg.Base > 0 {
		for _, loc := range cfg.Locations {
			tr.Base.Add(resource.NewTerm(
				resource.FromUnits(cfg.Base),
				resource.CPUAt(loc),
				interval.New(0, cfg.Horizon)))
		}
	}
	clock := 0.0
	for {
		clock += rng.ExpFloat64() * cfg.MeanInterarrival
		at := interval.Time(clock)
		if at >= cfg.Horizon {
			break
		}
		lease := cfg.LeaseMin + interval.Time(rng.Int63n(int64(cfg.LeaseMax-cfg.LeaseMin+1)))
		end := at + lease
		if end > cfg.Horizon {
			end = cfg.Horizon
		}
		rate := resource.FromUnits(cfg.RateMin + rng.Int63n(cfg.RateMax-cfg.RateMin+1))
		var lt resource.LocatedType
		if rng.Float64() < cfg.LinkProb && len(cfg.Locations) > 1 {
			src := cfg.Locations[rng.Intn(len(cfg.Locations))]
			dst := src
			for dst == src {
				dst = cfg.Locations[rng.Intn(len(cfg.Locations))]
			}
			lt = resource.Link(src, dst)
		} else {
			lt = resource.CPUAt(cfg.Locations[rng.Intn(len(cfg.Locations))])
		}
		term := resource.NewTerm(rate, lt, interval.New(at, end))
		if term.Null() {
			continue
		}
		join := Join{At: at, Terms: resource.NewSet(term)}
		if rng.Float64() < cfg.RenegeProb && end-at >= 2 {
			renegeAt := at + 1 + interval.Time(rng.Int63n(int64(end-at-1)))
			join.RenegeAt = renegeAt
			join.Withdrawn = resource.NewSet(resource.NewTerm(rate, lt, interval.New(renegeAt, end)))
		}
		tr.Joins = append(tr.Joins, join)
	}
	sort.SliceStable(tr.Joins, func(i, j int) bool { return tr.Joins[i].At < tr.Joins[j].At })
	return tr, nil
}

// TotalOffered integrates every join's advertised capacity (before
// reneging) plus the base.
func (t Trace) TotalOffered(window interval.Interval) resource.Quantity {
	var total resource.Quantity
	for _, q := range t.Base.TotalQuantity(window) {
		total += q
	}
	for _, j := range t.Joins {
		for _, term := range j.Terms.Terms() {
			total += term.QuantityWithin(window)
		}
	}
	return total
}
