package churn

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/resource"
)

func baseConfig() Config {
	return Config{
		Seed:             5,
		Locations:        []resource.Location{"l1", "l2"},
		Horizon:          200,
		MeanInterarrival: 4,
		LeaseMin:         5,
		LeaseMax:         30,
		RateMin:          1,
		RateMax:          4,
		LinkProb:         0.3,
		RenegeProb:       0,
		Base:             0,
	}
}

func TestGenerateDeterministicAndOrdered(t *testing.T) {
	a, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Joins) == 0 {
		t.Fatal("no joins generated")
	}
	if len(a.Joins) != len(b.Joins) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Joins), len(b.Joins))
	}
	var prev interval.Time = -1
	for i := range a.Joins {
		if !a.Joins[i].Terms.Equal(b.Joins[i].Terms) || a.Joins[i].At != b.Joins[i].At {
			t.Fatalf("join %d differs between identical seeds", i)
		}
		if a.Joins[i].At < prev {
			t.Fatalf("join %d out of order", i)
		}
		prev = a.Joins[i].At
	}
}

func TestJoinsRespectHorizonAndLease(t *testing.T) {
	cfg := baseConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range tr.Joins {
		if j.At < 0 || j.At >= cfg.Horizon {
			t.Errorf("join %d at %d outside horizon", i, j.At)
		}
		for _, term := range j.Terms.Terms() {
			if term.Span.Start != j.At {
				t.Errorf("join %d term starts at %d, not %d", i, term.Span.Start, j.At)
			}
			if term.Span.End > cfg.Horizon {
				t.Errorf("join %d term outlives horizon", i)
			}
			if lease := term.Span.Len(); lease > cfg.LeaseMax {
				t.Errorf("join %d lease %d exceeds max", i, lease)
			}
			units := term.Rate.Units()
			if units < cfg.RateMin || units > cfg.RateMax {
				t.Errorf("join %d rate %d outside bounds", i, units)
			}
		}
		if j.Reneges() {
			t.Errorf("join %d reneges with RenegeProb=0", i)
		}
	}
}

func TestRenegeInjection(t *testing.T) {
	cfg := baseConfig()
	cfg.RenegeProb = 1
	cfg.LeaseMin = 4 // long enough that every join can renege
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reneges := 0
	for i, j := range tr.Joins {
		if !j.Reneges() {
			continue
		}
		reneges++
		if j.RenegeAt <= j.At {
			t.Errorf("join %d reneges at %d, before it joined at %d", i, j.RenegeAt, j.At)
		}
		// The withdrawn set must be a suffix of what was advertised.
		for _, w := range j.Withdrawn.Terms() {
			if w.Span.Start != j.RenegeAt {
				t.Errorf("join %d withdrawal starts at %d, not renege time %d", i, w.Span.Start, j.RenegeAt)
			}
			if !j.Terms.Covers(w) {
				t.Errorf("join %d withdraws %v it never advertised", i, w)
			}
		}
	}
	if reneges == 0 {
		t.Error("RenegeProb=1 produced no reneges")
	}
}

func TestBaseResources(t *testing.T) {
	cfg := baseConfig()
	cfg.Base = 3
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range cfg.Locations {
		if got := tr.Base.RateAt(resource.CPUAt(loc), 100); got != resource.FromUnits(3) {
			t.Errorf("base rate at %s = %d", loc, got)
		}
	}
	if tr.TotalOffered(interval.New(0, cfg.Horizon)) <= 0 {
		t.Error("TotalOffered should be positive")
	}
	// Base contributes horizon × rate × locations at minimum.
	minBase := resource.QuantityFromUnits(3 * int64(cfg.Horizon) * 2)
	if got := tr.TotalOffered(interval.New(0, cfg.Horizon)); got < minBase {
		t.Errorf("TotalOffered %d below base-only %d", got, minBase)
	}
}

func TestLinkJoins(t *testing.T) {
	cfg := baseConfig()
	cfg.LinkProb = 1
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	links := 0
	for _, j := range tr.Joins {
		for _, term := range j.Terms.Terms() {
			if term.Type.IsLink() {
				links++
				if term.Type.Loc == term.Type.Dst {
					t.Errorf("self-link %v", term.Type)
				}
			}
		}
	}
	if links == 0 {
		t.Error("LinkProb=1 produced no link joins")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Locations = nil },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.MeanInterarrival = 0 },
		func(c *Config) { c.LeaseMin = 0 },
		func(c *Config) { c.LeaseMax = 1; c.LeaseMin = 2 },
		func(c *Config) { c.RateMin = 0 },
		func(c *Config) { c.RateMax = 0 },
		func(c *Config) { c.LinkProb = 1.5 },
		func(c *Config) { c.RenegeProb = -0.2 },
	}
	for i, mutate := range bad {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
