package server

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/interval"
	"repro/internal/query"
	"repro/internal/resource"
)

// loadedQueryServer builds a daemon whose ledger carries n live
// commitments — the E14 setup, measuring query latency as a function of
// ledger size. Jobs are staggered so every one admits.
func loadedQueryServer(b *testing.B, n int) *Server {
	b.Helper()
	horizon := interval.Time(10*n + 1000)
	theta := cpuTheta(int64(64), horizon, "l1", "l2", "l3", "l4")
	srv, err := New(Config{Theta: theta})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	locs := []resource.Location{"l1", "l2", "l3", "l4"}
	for i := 0; i < n; i++ {
		start := interval.Time(i * 10)
		job := cpuJob(b, fmt.Sprintf("bench-%d", i), locs[i%len(locs)], start, start+1000)
		dec, err := srv.Ledger().Admit(srv.cfg.Policy, job)
		if err != nil || !dec.Admit {
			b.Fatalf("preload admit %d: admit=%v err=%v", i, dec.Admit, err)
		}
	}
	return srv
}

func BenchmarkQueryParse(b *testing.B) {
	const src = "holds(l1, cpu>=5, always, next 30) and feasible(bench-1, before deadline)"
	for i := 0; i < b.N; i++ {
		if _, err := query.ParseText(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryLoadedLedger evaluates one-shot queries against ledgers
// preloaded with 10, 100 and 1000 live commitments: the availability
// form walks one location's free profile, the feasibility form resolves
// a named commitment's remaining demand first.
func BenchmarkQueryLoadedLedger(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		srv := loadedQueryServer(b, n)
		holds := mustParse(b, "holds(l1, cpu>=1, eventually, next 100)")
		feasible := mustParse(b, fmt.Sprintf("feasible(bench-%d)", n/2))
		b.Run(fmt.Sprintf("holds/commitments=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := srv.EvalQuery(holds); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("feasible/commitments=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := srv.EvalQuery(feasible); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustParse(b *testing.B, src string) *query.Compiled {
	b.Helper()
	c, err := query.ParseText(src)
	if err != nil {
		b.Fatal(err)
	}
	return c
}
