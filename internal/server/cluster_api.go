package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/resource"
)

// The /v1/cluster/* surface: the node-local half of the federation
// protocol. These handlers operate on this node's ledger only; the
// coordinator logic that strings them into a two-phase admission lives
// in internal/cluster.

// maxClusterIDLen bounds the key and name fields of cluster requests so
// a peer cannot make the ledger index arbitrarily wide per entry.
const maxClusterIDLen = 256

// PrepareRequest asks this node to hold a job's local sub-plan under a
// TTL lease. Demand is a compact resource-set literal (resource.ParseSet
// syntax); Expiry is on the receiving node's ledger clock.
type PrepareRequest struct {
	Key      string        `json:"key"`
	Name     string        `json:"name"`
	Demand   string        `json:"demand"`
	Finish   interval.Time `json:"finish"`
	Deadline interval.Time `json:"deadline"`
	Expiry   interval.Time `json:"lease_expiry"`
}

// PrepareResponse reports the hold verdict. Held=false with a Reason is
// a capacity rejection — the protocol's analogue of admit=false — while
// transport-level and validation failures use HTTP error statuses.
type PrepareResponse struct {
	Key    string `json:"key"`
	Held   bool   `json:"held"`
	Reason string `json:"reason,omitempty"`
}

// FinishRequest names a prepared key to commit or abort.
type FinishRequest struct {
	Key string `json:"key"`
}

// FreeResponse is the owner's free-availability view of some of its
// locations, used by coordinators to plan federated admissions.
type FreeResponse struct {
	Now  interval.Time `json:"now"`
	Free string        `json:"free"`
}

// DecodePrepareRequest decodes and validates one prepare body, returning
// the parsed demand set alongside the wire struct. Exported so the fuzz
// harness exercises exactly the peer-facing wire path.
func DecodePrepareRequest(body []byte) (PrepareRequest, resource.Set, error) {
	var req PrepareRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return PrepareRequest{}, resource.Set{}, fmt.Errorf("server: bad prepare body: %w", err)
	}
	if req.Key == "" || len(req.Key) > maxClusterIDLen {
		return PrepareRequest{}, resource.Set{}, fmt.Errorf("server: prepare key must be 1..%d bytes", maxClusterIDLen)
	}
	if req.Name == "" || len(req.Name) > maxClusterIDLen {
		return PrepareRequest{}, resource.Set{}, fmt.Errorf("server: prepare name must be 1..%d bytes", maxClusterIDLen)
	}
	if req.Finish <= 0 || req.Deadline <= 0 || req.Expiry <= 0 {
		return PrepareRequest{}, resource.Set{}, fmt.Errorf("server: prepare %s needs positive finish, deadline and lease_expiry", req.Key)
	}
	if req.Finish > req.Deadline {
		return PrepareRequest{}, resource.Set{}, fmt.Errorf("server: prepare %s finishes at %d, after its deadline %d", req.Key, req.Finish, req.Deadline)
	}
	demand, err := resource.ParseSet(req.Demand)
	if err != nil {
		return PrepareRequest{}, resource.Set{}, fmt.Errorf("server: prepare %s demand: %w", req.Key, err)
	}
	if demand.Empty() {
		return PrepareRequest{}, resource.Set{}, fmt.Errorf("server: prepare %s holds nothing", req.Key)
	}
	return req, demand, nil
}

// DecodeFinishRequest decodes and validates one commit/abort body.
func DecodeFinishRequest(body []byte) (FinishRequest, error) {
	var req FinishRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return FinishRequest{}, fmt.Errorf("server: bad commit/abort body: %w", err)
	}
	if req.Key == "" || len(req.Key) > maxClusterIDLen {
		return FinishRequest{}, fmt.Errorf("server: commit/abort key must be 1..%d bytes", maxClusterIDLen)
	}
	return req, nil
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	// The participant-side span parents onto the coordinator's RPC span
	// via the X-Rota-Span header (lifted into the context by Instrument).
	_, sp := s.cfg.Spans.Start(r.Context(), span.KindPrepare)
	defer sp.End()
	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		s.errored.Add(1)
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req, demand, err := DecodePrepareRequest(body)
	if err != nil {
		s.errored.Add(1)
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sp.Attr("job", req.Name)
	sp.Attr("key", req.Key)
	err = s.ledger.Prepare(req.Key, req.Name, demand, req.Finish, req.Deadline, req.Expiry)
	sp.Attr("held", err == nil)
	s.obs.Log("twophase.prepare",
		"trace", obs.Trace(r.Context()), "key", req.Key, "job", req.Name,
		"held", err == nil, "lease_expiry", req.Expiry)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, PrepareResponse{Key: req.Key, Held: true})
	case errors.Is(err, ErrOvercommit):
		// Capacity rejection: a well-formed verdict, not an error.
		sp.SetStatus(span.StatusReject)
		sp.SetProvenance(span.Classify(err.Error()))
		writeJSON(w, http.StatusOK, PrepareResponse{Key: req.Key, Held: false, Reason: err.Error()})
	case errors.Is(err, ErrNotOwned):
		s.errored.Add(1)
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusUnprocessableEntity, err)
	case errors.Is(err, ErrDuplicate):
		s.errored.Add(1)
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusConflict, err)
	case errors.Is(err, ErrLeaseExpired):
		s.errored.Add(1)
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusBadRequest, err)
	default:
		s.errored.Add(1)
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	_, sp := s.cfg.Spans.Start(r.Context(), span.KindCommit)
	defer sp.End()
	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req, err := DecodeFinishRequest(body)
	if err != nil {
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sp.Attr("key", req.Key)
	err = s.ledger.Commit(req.Key)
	s.obs.Log("twophase.commit",
		"trace", obs.Trace(r.Context()), "key", req.Key, "ok", err == nil)
	if err != nil {
		sp.SetStatus(span.StatusError)
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]any{"committed": req.Key})
	case errors.Is(err, ErrUnknownHold):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrLeaseExpired):
		httpError(w, http.StatusGone, err)
	default:
		s.errored.Add(1)
		httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleAbort(w http.ResponseWriter, r *http.Request) {
	_, sp := s.cfg.Spans.Start(r.Context(), span.KindAbort)
	defer sp.End()
	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req, err := DecodeFinishRequest(body)
	if err != nil {
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sp.Attr("key", req.Key)
	err = s.ledger.Abort(req.Key)
	s.obs.Log("twophase.abort",
		"trace", obs.Trace(r.Context()), "key", req.Key, "ok", err == nil)
	if err != nil {
		s.errored.Add(1)
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"aborted": req.Key})
}

func (s *Server) handleFree(w http.ResponseWriter, r *http.Request) {
	_, sp := s.cfg.Spans.Start(r.Context(), span.KindFreeView)
	defer sp.End()
	raw := r.URL.Query().Get("locs")
	if raw == "" {
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusBadRequest, errors.New("server: free view needs ?locs=l1,l2"))
		return
	}
	var locs []resource.Location
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			locs = append(locs, resource.Location(part))
		}
	}
	free, now, err := s.ledger.FreeView(locs)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotOwned) {
			status = http.StatusUnprocessableEntity
		}
		sp.SetStatus(span.StatusError)
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, FreeResponse{Now: now, Free: free.Compact()})
}
