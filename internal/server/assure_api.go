package server

import (
	"errors"
	"net/http"
	"runtime/debug"
	"sync"

	"repro/internal/obs/assure"
	"repro/internal/obs/flightrec"
)

// BuildInfo identifies the running binary on /v1/stats.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module_path"`
	Version   string `json:"module_version"`
}

var (
	buildOnce   sync.Once
	buildCached BuildInfo
)

// buildInfo reads the binary's embedded build metadata once. Binaries
// built outside a module (go test in odd setups) report what they can.
func buildInfo() BuildInfo {
	buildOnce.Do(func() {
		buildCached = BuildInfo{Version: "(devel)"}
		if bi, ok := debug.ReadBuildInfo(); ok {
			buildCached.GoVersion = bi.GoVersion
			buildCached.Module = bi.Main.Path
			if bi.Main.Version != "" {
				buildCached.Version = bi.Main.Version
			}
		}
	})
	return buildCached
}

// AssureJobResponse is the per-job shape of GET /v1/assure?job=NAME.
type AssureJobResponse struct {
	Job     string         `json:"job"`
	Found   bool           `json:"found"`
	Promise assure.Promise `json:"promise,omitempty"`
}

// handleAssure serves GET /v1/assure: the node's promise-ledger report,
// or — with ?job=NAME — the current view of one job's promise.
func (s *Server) handleAssure(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Assure == nil {
		httpError(w, http.StatusNotFound, errors.New("server: promise ledger disabled (start with -assure)"))
		return
	}
	if job := r.URL.Query().Get("job"); job != "" {
		p, ok := s.cfg.Assure.Lookup(job)
		writeJSON(w, http.StatusOK, AssureJobResponse{Job: job, Found: ok, Promise: p})
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Assure.Report())
}

// FlightRecIndex is the GET /debug/rota/flightrec payload: every held
// snapshot, oldest first. rotadoctor fetches this from each node and
// merges the snapshots into one incident.
type FlightRecIndex struct {
	Node      string               `json:"node,omitempty"`
	Stats     flightrec.Stats      `json:"stats"`
	Snapshots []flightrec.Snapshot `json:"snapshots"`
}

func (s *Server) handleFlightRecIndex(w http.ResponseWriter, r *http.Request) {
	if s.cfg.FlightRec == nil {
		httpError(w, http.StatusNotFound, errors.New("server: flight recorder disabled (start with -flightrec-size)"))
		return
	}
	snaps := s.cfg.FlightRec.Snapshots()
	if snaps == nil {
		snaps = []flightrec.Snapshot{}
	}
	node := ""
	if len(snaps) > 0 {
		node = snaps[0].Node
	}
	writeJSON(w, http.StatusOK, FlightRecIndex{
		Node: node, Stats: s.cfg.FlightRec.Stats(), Snapshots: snaps})
}

func (s *Server) handleFlightRecGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.FlightRec == nil {
		httpError(w, http.StatusNotFound, errors.New("server: flight recorder disabled (start with -flightrec-size)"))
		return
	}
	id := r.PathValue("id")
	if id == "" || len(id) > 128 {
		httpError(w, http.StatusBadRequest, errors.New("server: snapshot id must be 1..128 bytes"))
		return
	}
	snap, ok := s.cfg.FlightRec.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("server: no such flight-recorder snapshot: "+id))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}
