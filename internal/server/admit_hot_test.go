package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/admission"
	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/workload"
)

// triJob builds a job with one evaluating actor per location — a
// footprint spanning len(locs) shards (sends only touch their source
// shard, so multi-shard coverage needs multiple evaluation sites).
func triJob(tb testing.TB, name string, locs []resource.Location, start, deadline interval.Time) workload.Job {
	tb.Helper()
	cs := make([]compute.Computation, 0, len(locs))
	for i, loc := range locs {
		actor := compute.ActorName(fmt.Sprintf("%s.a%d", name, i))
		c, err := cost.Realize(cost.Paper(), actor, compute.Evaluate(actor, loc, 1))
		if err != nil {
			tb.Fatal(err)
		}
		cs = append(cs, c)
	}
	d, err := compute.NewDistributed(name, start, deadline, cs...)
	if err != nil {
		tb.Fatal(err)
	}
	return workload.Job{Dist: d, Arrival: start}
}

// Two admits racing a 2PC hold on the same name must both lose — the
// held-name guard is a map lookup now, and the -race run proves the
// index is maintained consistently. (Satellite: the old guard scanned
// l.holds linearly under the global mutex.)
func TestAdmitRacingHeldNameBothLose(t *testing.T) {
	l := NewLedger(cpuTheta(4, 1000, "l1"), 0)
	var demand resource.Set
	demand.Add(resource.NewTerm(u(1), resource.CPUAt("l1"), interval.New(0, 8)))
	if err := l.Prepare("k1", "contested", demand, 8, 100, 50); err != nil {
		t.Fatal(err)
	}

	policy := &admission.Rota{}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = l.Admit(policy, cpuJob(t, "contested", "l1", 0, 100))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrDuplicate) {
			t.Errorf("racing admit %d of a held name: err = %v, want ErrDuplicate", i, err)
		}
	}
	mustAudit(t, l)

	// After the hold is aborted the name is free again.
	if err := l.Abort("k1"); err != nil {
		t.Fatal(err)
	}
	if dec, err := l.Admit(policy, cpuJob(t, "contested", "l1", 0, 100)); err != nil || !dec.Admit {
		t.Fatalf("admit after abort: %v %+v", err, dec)
	}
	mustAudit(t, l)
}

// Two racing admits of the same (new) name: exactly one wins.
func TestAdmitRacingSameNameOneWins(t *testing.T) {
	l := NewLedger(cpuTheta(4, 1000, "l1"), 0)
	policy := &admission.Rota{}
	var wg sync.WaitGroup
	var admitted, dup atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec, err := l.Admit(policy, cpuJob(t, "solo", "l1", 0, 100))
			switch {
			case err == nil && dec.Admit:
				admitted.Add(1)
			case errors.Is(err, ErrDuplicate):
				dup.Add(1)
			default:
				t.Errorf("unexpected outcome: %v %+v", err, dec)
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != 1 || dup.Load() != 7 {
		t.Fatalf("admitted=%d dup=%d, want 1/7", admitted.Load(), dup.Load())
	}
	mustAudit(t, l)
}

// 64-way concurrent admits to one shard with capacity for exactly 8:
// batched admission must admit exactly 8 and keep the no-overcommit
// invariant (Audit clean). Run under -race in CI.
func TestBatchedAdmitNoOvercommit(t *testing.T) {
	// 64 cpu units on one shard; each job needs 8 → capacity for 8.
	l := NewLedger(cpuTheta(1, 64, "l1"), 0)
	policy := &admission.Rota{}
	var wg sync.WaitGroup
	var admitted, rejected atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dec, err := l.Admit(policy, cpuJob(t, fmt.Sprintf("j%d", i), "l1", 0, 64))
			if err != nil {
				t.Errorf("j%d: %v", i, err)
				return
			}
			if dec.Admit {
				admitted.Add(1)
			} else {
				rejected.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if admitted.Load() != 8 || rejected.Load() != 56 {
		t.Fatalf("admitted=%d rejected=%d, want 8/56", admitted.Load(), rejected.Load())
	}
	mustAudit(t, l)
	hot := l.AdmitHot()
	if hot.BatchedJobs != 64 {
		t.Errorf("batched jobs = %d, want 64", hot.BatchedJobs)
	}
	if hot.Batches == 0 || hot.Batches > 64 {
		t.Errorf("batches = %d, want in [1,64]", hot.Batches)
	}
}

// The same 64-way squeeze through the pessimistic (plan-under-locks)
// baseline must reach the same verdict counts — the two paths are
// semantically interchangeable.
func TestPessimisticAdmitSameVerdicts(t *testing.T) {
	l := NewLedger(cpuTheta(1, 64, "l1"), 0)
	l.SetAdmitTuning(0, false, true)
	policy := &admission.Rota{}
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dec, err := l.Admit(policy, cpuJob(t, fmt.Sprintf("j%d", i), "l1", 0, 64))
			if err != nil {
				t.Errorf("j%d: %v", i, err)
				return
			}
			if dec.Admit {
				admitted.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if admitted.Load() != 8 {
		t.Fatalf("admitted=%d, want 8", admitted.Load())
	}
	mustAudit(t, l)
}

// A snapshot conflict — capacity mutated between plan and validate so
// the plan no longer fits — must retry and replan, not overcommit and
// not spuriously reject. The hook reserves the window the first plan
// was placed in; the replan lands the job later in its deadline window.
func TestOptimisticConflictRetriesAndReplans(t *testing.T) {
	l := NewLedger(cpuTheta(1, 100, "l1"), 0)
	policy := &admission.Rota{}

	var synthetic resource.Set
	synthetic.Add(resource.NewTerm(u(1), resource.CPUAt("l1"), interval.New(0, 16)))
	var fired atomic.Bool
	l.testPostPlanHook = func() {
		if !fired.CompareAndSwap(false, true) {
			return
		}
		sh := l.shardFor("l1")
		sh.mu.Lock()
		sh.applyReserve(synthetic)
		sh.mu.Unlock()
	}

	dec, err := l.Admit(policy, cpuJob(t, "j1", "l1", 0, 40))
	if err != nil || !dec.Admit {
		t.Fatalf("admit after conflict: %v %+v", err, dec)
	}
	if !fired.Load() {
		t.Fatal("test hook never fired")
	}
	hot := l.AdmitHot()
	if hot.PlanRetries == 0 {
		t.Errorf("plan retries = 0, want >= 1 (the snapshot was invalidated)")
	}
	if dec.Plan.Finish <= 16 {
		t.Errorf("replanned finish = %d, want > 16 (the first window was taken)", dec.Plan.Finish)
	}

	// Return the synthetic reservation so the audit's commitment
	// accounting balances, then verify the ledger is consistent.
	l.testPostPlanHook = nil
	sh := l.shardFor("l1")
	sh.mu.Lock()
	relErr := sh.applyRelease(synthetic)
	sh.mu.Unlock()
	if relErr != nil {
		t.Fatal(relErr)
	}
	mustAudit(t, l)
}

// checkPatchedFreeViews verifies, on every shard whose cached free view
// is live, that the incrementally patched cache equals a from-scratch
// θ ∖ reserved recompute. Returns how many live caches were checked.
func checkPatchedFreeViews(t *testing.T, l *Ledger) int {
	t.Helper()
	l.mu.Lock()
	shards := make([]*shard, 0, len(l.shards))
	for _, sh := range l.shards {
		shards = append(shards, sh)
	}
	l.mu.Unlock()
	checked := 0
	for _, sh := range shards {
		sh.mu.Lock()
		if !sh.freeOK {
			sh.mu.Unlock()
			continue
		}
		checked++
		want, err := sh.theta.Subtract(sh.reserved)
		ok := err == nil && sh.free.Equal(want)
		got, loc := sh.free, sh.loc
		sh.mu.Unlock()
		if err != nil {
			t.Fatalf("shard %s: recompute: %v", loc, err)
		}
		if !ok {
			t.Fatalf("shard %s: patched free view %s != recomputed %s", loc, got, want.Compact())
		}
	}
	return checked
}

// Seeded property test: after randomized admit / release / prepare /
// abort / acquire / advance (incl. lease-expiry sweeps), the delta-
// patched free-view caches must agree with a from-scratch recompute,
// and the full ledger audit must stay clean at every step.
func TestFreeViewPatchingMatchesRecompute(t *testing.T) {
	locs := []resource.Location{"l1", "l2"}
	for _, seed := range []int64{1, 7, 42, 1234} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			l := NewLedger(cpuTheta(3, 4096, locs...), 0)
			policy := &admission.Rota{}
			live := []string{}
			keys := []string{}
			names, preps := 0, 0
			checkedCaches := 0

			for step := 0; step < 300; step++ {
				now := l.Now()
				switch rng.Intn(7) {
				case 0, 1: // admit (the most common mutation)
					names++
					name := fmt.Sprintf("job%d", names)
					var job workload.Job
					if rng.Intn(3) == 0 {
						job = triJob(t, name, locs, now, now+16+interval.Time(rng.Intn(32)))
					} else {
						job = cpuJob(t, name, locs[rng.Intn(len(locs))], now, now+16+interval.Time(rng.Intn(32)))
					}
					if dec, err := l.Admit(policy, job); err == nil && dec.Admit {
						live = append(live, name)
					}
				case 2: // release a live commitment
					if len(live) > 0 {
						i := rng.Intn(len(live))
						if err := l.Release(live[i]); err != nil && !errors.Is(err, ErrUnknown) {
							t.Fatalf("release %s: %v", live[i], err)
						}
						live = append(live[:i], live[i+1:]...)
					}
				case 3: // prepare a leased hold
					preps++
					var demand resource.Set
					loc := locs[rng.Intn(len(locs))]
					demand.Add(resource.NewTerm(u(1), resource.CPUAt(loc),
						interval.New(now+1, now+5+interval.Time(rng.Intn(8)))))
					key := fmt.Sprintf("key%d", preps)
					err := l.Prepare(key, fmt.Sprintf("held%d", preps), demand,
						now+16, now+32, now+2+interval.Time(rng.Intn(8)))
					if err == nil {
						keys = append(keys, key)
					} else if !errors.Is(err, ErrOvercommit) {
						t.Fatalf("prepare %s: %v", key, err)
					}
				case 4: // abort a hold (possibly already swept: a no-op)
					if len(keys) > 0 {
						i := rng.Intn(len(keys))
						if err := l.Abort(keys[i]); err != nil {
							t.Fatalf("abort %s: %v", keys[i], err)
						}
						keys = append(keys[:i], keys[i+1:]...)
					}
				case 5: // acquire fresh availability
					var extra resource.Set
					extra.Add(resource.NewTerm(u(1), resource.CPUAt(locs[rng.Intn(len(locs))]),
						interval.New(now, now+32)))
					l.Acquire(extra)
				case 6: // advance the clock (trims + sweeps expired leases)
					done, err := l.Advance(now + interval.Time(rng.Intn(4)))
					if err != nil {
						t.Fatalf("advance: %v", err)
					}
					for _, name := range done {
						for i, n := range live {
							if n == name {
								live = append(live[:i], live[i+1:]...)
								break
							}
						}
					}
				}
				checkedCaches += checkPatchedFreeViews(t, l)
				mustAudit(t, l)
			}
			if checkedCaches == 0 {
				t.Fatal("no live free-view cache was ever checked; the test exercised nothing")
			}
		})
	}
}

// The single-location free-view fetch must not allocate once the cache
// is warm — the common-case admission footprint reads the cached set
// directly instead of cloning it through Union. (Satellite bugfix +
// acceptance criterion.)
func TestFreeViewSingleLocationZeroAlloc(t *testing.T) {
	l := NewLedger(cpuTheta(4, 1000, "l1", "l2"), 0)
	policy := &admission.Rota{}
	if dec, err := l.Admit(policy, cpuJob(t, "warm", "l1", 0, 100)); err != nil || !dec.Admit {
		t.Fatalf("warm-up admit: %v %+v", err, dec)
	}
	locs := []resource.Location{"l1"}
	if _, _, err := l.FreeView(locs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := l.FreeView(locs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("single-location FreeView allocates %.1f per call, want 0", allocs)
	}
}

// Rejections decided against a snapshot are delivered immediately; the
// decision must carry the infeasibility reason exactly as before.
func TestBatchedRejectKeepsReason(t *testing.T) {
	l := NewLedger(cpuTheta(1, 8, "l1"), 0) // 8 units: one job fills it
	policy := &admission.Rota{}
	if dec, err := l.Admit(policy, cpuJob(t, "fits", "l1", 0, 8)); err != nil || !dec.Admit {
		t.Fatalf("first admit: %v %+v", err, dec)
	}
	dec, err := l.Admit(policy, cpuJob(t, "squeezed", "l1", 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admit || dec.Reason == "" {
		t.Fatalf("second admit = %+v, want a reasoned rejection", dec)
	}
	// The rejected name is free for a retry (the claim was abandoned).
	if _, err := l.Admit(policy, cpuJob(t, "squeezed", "l1", 0, 8)); err != nil {
		t.Fatalf("retry of a rejected name: %v", err)
	}
	mustAudit(t, l)
}

// Disabling batching must not change verdicts, only grouping.
func TestNoBatchTuning(t *testing.T) {
	l := NewLedger(cpuTheta(1, 64, "l1"), 0)
	l.SetAdmitTuning(1, true, false)
	policy := &admission.Rota{}
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dec, err := l.Admit(policy, cpuJob(t, fmt.Sprintf("j%d", i), "l1", 0, 64))
			if err != nil {
				t.Errorf("j%d: %v", i, err)
				return
			}
			if dec.Admit {
				admitted.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if admitted.Load() != 8 {
		t.Fatalf("admitted=%d, want 8", admitted.Load())
	}
	mustAudit(t, l)
}
