package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"repro/internal/admission"
	"repro/internal/interval"
	"repro/internal/obs/assure"
	"repro/internal/resource"
	"repro/internal/workload"
)

// benchAdmitLedger builds a ledger over nLocs shards, pre-loaded with
// `commits` live commitments whose windows are staggered so the shard
// profiles carry many segments — the loaded-ledger shape the admit hot
// path has to stay fast on.
func benchAdmitLedger(b *testing.B, nLocs, commits int) (*Ledger, []resource.Location) {
	b.Helper()
	locs := make([]resource.Location, nLocs)
	for i := range locs {
		locs[i] = resource.Location(fmt.Sprintf("l%d", i+1))
	}
	// Plenty of headroom: the benchmark measures decide+reserve cost,
	// not rejection churn. The promise ledger stays attached — the
	// numbers the bench gate compares are the shipping configuration.
	l := NewLedger(cpuTheta(512, 1<<20, locs...), 0)
	l.SetAssure(assure.New("bench"))
	policy := &admission.Rota{}
	for k := 0; k < commits; k++ {
		start := interval.Time((k * 8) % 4096)
		job := cpuJob(b, fmt.Sprintf("pre%d", k), locs[k%nLocs], start, start+128)
		if dec, err := l.Admit(policy, job); err != nil || !dec.Admit {
			b.Fatalf("preload %d: %v %+v", k, err, dec)
		}
	}
	return l, locs
}

// benchAdmitLoop drives conc goroutines through admit+release pairs of
// a job footprinting fpLocs shards, b.N admissions total.
func benchAdmitLoop(b *testing.B, l *Ledger, fpLocs []resource.Location, conc int) {
	b.Helper()
	policy := &admission.Rota{}
	jobs := make([]workload.Job, conc)
	for g := range jobs {
		name := fmt.Sprintf("bench-g%d", g)
		if len(fpLocs) == 1 {
			jobs[g] = cpuJob(b, name, fpLocs[0], 0, 1<<20)
		} else {
			jobs[g] = triJob(b, name, fpLocs, 0, 1<<20)
		}
	}
	// Pin the heap at a production-shaped size. The loaded-ledger cells
	// allocate close to 1 MB per decision against ~1 MB of live data, so
	// at the runtime's small default heap goal the collector runs every
	// couple of milliseconds and takes ~40% of the wall clock — at which
	// point the numbers measure how a few hundred KB of live bookkeeping
	// shifts the GC duty cycle, not what the hot path costs. A real
	// daemon's heap sits far above the floor, where that sensitivity
	// vanishes; the ballast (pointer-free, so marking it is free) puts
	// the benchmark in the same regime. Settle setup garbage before
	// timing so the cells start from the same debt.
	ballast := make([]byte, 64<<20)
	defer runtime.KeepAlive(ballast)
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := b.N / conc
			if g < b.N%conc {
				n++
			}
			job := jobs[g]
			for i := 0; i < n; i++ {
				dec, err := l.Admit(policy, job)
				if err != nil {
					b.Errorf("admit: %v", err)
					return
				}
				if dec.Admit {
					if err := l.Release(job.Dist.Name); err != nil {
						b.Errorf("release: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	if err := l.Audit(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAdmitHot measures the admission decide+reserve loop:
// mode=locked is the pre-PR pessimistic plan-under-shard-locks path,
// mode=hot the optimistic batched path. The acceptance bar is hot ≥ 2×
// locked throughput at conc=64 on a single shard.
func BenchmarkAdmitHot(b *testing.B) {
	type cell struct{ locs, commits, conc int }
	cells := []cell{
		{1, 100, 1}, {1, 100, 8}, {1, 100, 64},
		{3, 100, 1}, {3, 100, 8}, {3, 100, 64},
		{1, 10, 64}, {1, 1000, 64},
	}
	for _, mode := range []string{"locked", "hot"} {
		for _, c := range cells {
			name := fmt.Sprintf("mode=%s/locs=%d/commits=%d/conc=%d", mode, c.locs, c.commits, c.conc)
			b.Run(name, func(b *testing.B) {
				l, locs := benchAdmitLedger(b, c.locs, c.commits)
				if mode == "locked" {
					// The pre-PR baseline: plan under the shard locks with
					// dirty-on-mutation free views (recomputed and cloned
					// on every admission).
					l.SetAdmitTuning(0, false, true)
					l.noPatch.Store(true)
				}
				fp := locs
				if c.locs == 1 {
					fp = locs[:1]
				}
				benchAdmitLoop(b, l, fp, c.conc)
			})
		}
	}
}

// BenchmarkAssureOverhead isolates the promise-ledger cost on the
// admit+release hot loop: identical cells with the assure ledger
// detached (off) and attached (on). The acceptance bar is on within 5%
// of off. Two things keep it there: per admission the ledger does one
// map insert and one histogram observation off the shard locks, and
// open promises are stored as compact inline map values so a loaded
// node's thousand live promises add almost nothing to the GC mark
// cycle (see the comment on assure.Ledger.active).
func BenchmarkAssureOverhead(b *testing.B) {
	type cell struct{ locs, commits, conc int }
	cells := []cell{{1, 100, 1}, {1, 100, 64}, {1, 1000, 64}, {3, 100, 64}}
	for _, mode := range []string{"off", "on"} {
		for _, c := range cells {
			name := fmt.Sprintf("assure=%s/locs=%d/commits=%d/conc=%d", mode, c.locs, c.commits, c.conc)
			b.Run(name, func(b *testing.B) {
				l, locs := benchAdmitLedger(b, c.locs, c.commits)
				if mode == "off" {
					l.SetAssure(nil)
				}
				fp := locs
				if c.locs == 1 {
					fp = locs[:1]
				}
				benchAdmitLoop(b, l, fp, c.conc)
			})
		}
	}
}

// BenchmarkRotaloadSaturation drives the full HTTP stack (rotaload's
// loop against an in-process daemon) at high client concurrency and
// reports the client-observed admit latency tail — the saturation
// p50/p99 rows of the perf ledger.
func BenchmarkRotaloadSaturation(b *testing.B) {
	locs := []resource.Location{"l1", "l2", "l3", "l4"}
	jobs, err := workload.Generate(workload.Config{
		Seed: 42, Locations: locs, NumJobs: 256,
		MeanInterarrival: 4, ActorsMin: 1, ActorsMax: 2,
		StepsMin: 1, StepsMax: 2, EvalWeightMax: 2, SlackFactor: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	var p50, p99 float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := New(Config{Theta: cpuTheta(64, 1<<20, locs...), Workers: 8})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		b.StartTimer()
		report, err := RunLoad(context.Background(), LoadConfig{
			BaseURL:         ts.URL,
			Jobs:            jobs,
			Requests:        512,
			Clients:         64,
			ReleaseAdmitted: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if report.Errors > 0 {
			b.Fatalf("saturation run errored: %+v", report)
		}
		p50, p99 = report.P50US, report.P99US
		if err := srv.ledger.Audit(); err != nil {
			b.Fatal(err)
		}
		ts.Close()
		_ = srv.Shutdown(context.Background())
		b.StartTimer()
	}
	b.ReportMetric(p50, "p50-us")
	b.ReportMetric(p99, "p99-us")
}
