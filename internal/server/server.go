package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/assure"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/span"
	"repro/internal/query"
	"repro/internal/resource"
	"repro/internal/workload"
)

// Config parameterizes the daemon.
type Config struct {
	// Policy makes admission decisions. It must be plan-producing (rota
	// or rota-exhaustive): the live ledger reserves witness plans, and a
	// policy that admits without one cannot be held to Theorem 4.
	Policy admission.Policy
	// Theta is the initial availability.
	Theta resource.Set
	// Now is the initial ledger clock.
	Now interval.Time
	// Workers bounds concurrent admission decisions; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds decisions waiting for a worker; default
	// 4×Workers. When the queue is full, admits block (backpressure)
	// until their deadline.
	QueueDepth int
	// DecisionTimeout is the per-request deadline covering queue wait
	// plus decision time; default 2s.
	DecisionTimeout time.Duration
	// MaxBodyBytes bounds request bodies; default 1 MiB.
	MaxBodyBytes int64
	// Owned restricts the ledger to these locations (cluster mode):
	// admissions and prepares naming any other location are rejected
	// with ErrNotOwned. Nil means standalone — own everything. A
	// non-nil empty slice means "own nothing yet": a node joining a
	// cluster starts that way and gains locations via handoff.
	Owned []resource.Location
	// Obs is the observability sink: structured event logging, trace
	// correlation and the slow-decision tracer. Nil disables event
	// logging; the /metrics exposition is always served.
	Obs *obs.Observer
	// Spans is the hierarchical span store: every admission phase is
	// recorded as a span and served by GET /debug/rota/trace/{id}. Nil
	// disables span tracing.
	Spans *span.Store
	// AdmitRetries bounds the optimistic plan/validate attempts on the
	// admission hot path before falling back to planning under the shard
	// locks; ≤0 keeps the ledger default (3).
	AdmitRetries int
	// Assure is the deadline-assurance promise ledger: every admitted
	// job's promised window is tracked to a terminal outcome and served
	// on GET /v1/assure. Nil disables promise tracking.
	Assure *assure.Ledger
	// FlightRec is the anomaly flight recorder: recent events and spans
	// frozen into snapshots when a trigger fires, served under
	// GET /debug/rota/flightrec. Nil disables snapshot capture.
	FlightRec *flightrec.Recorder
	// NoAdmitBatch disables the per-footprint batching of concurrent
	// admissions (each admit still runs the optimistic path alone).
	NoAdmitBatch bool
	// PessimisticAdmit restores the legacy plan-under-locks admission
	// path — the benchmark baseline, not for production use.
	PessimisticAdmit bool
}

func (c *Config) fill() error {
	if c.Policy == nil {
		c.Policy = &admission.Rota{}
	}
	switch c.Policy.(type) {
	case *admission.Rota:
	default:
		return fmt.Errorf("server: policy %s is not plan-producing; rotad requires rota", c.Policy.Name())
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DecisionTimeout <= 0 {
		c.DecisionTimeout = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return nil
}

// decideTask is one admission decision in flight through the worker pool.
type decideTask struct {
	ctx      context.Context
	job      workload.Job
	done     chan decideResult
	trace    string
	enqueued time.Time
	// claimed settles the race between a worker delivering a verdict and
	// the handler giving up on a timed-out request: whoever wins the CAS
	// owns the outcome. A worker that loses rolls back any reservation it
	// just made, so a client told "timed out" never silently holds
	// resources.
	claimed atomic.Bool
}

// claim attempts to take ownership of the task's outcome.
func (t *decideTask) claim() bool {
	return t.claimed.CompareAndSwap(false, true)
}

type decideResult struct {
	dec admission.Decision
	err error
}

// Server is the rotad daemon core: ledger + worker pool + HTTP handler.
// Create with New, serve via the http.Handler interface, stop with
// Shutdown.
type Server struct {
	cfg    Config
	ledger *Ledger
	mux    *http.ServeMux

	queue    chan *decideTask
	workerWg sync.WaitGroup

	// drainMu serializes the draining flag against task enqueues: admits
	// hold it shared for check-and-enqueue, Shutdown exclusively to flip
	// the flag, so no task can slip in after the drain begins.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	started       time.Time
	admitted      atomic.Uint64
	rejected      atomic.Uint64
	errored       atomic.Uint64
	timedOut      atomic.Uint64
	released      atomic.Uint64
	lateDecisions atomic.Uint64
	inflightDecs  atomic.Int64
	latencyUS     *metrics.Histogram

	obs       *obs.Observer
	httpStats map[string]*obs.EndpointStats

	// queries is the temporal-query subscription manager: standing
	// queries re-evaluated on every ledger epoch bump. watchEval holds
	// an optional query.Evaluator override (the cluster layer's
	// ownership-aware evaluator) consulted by managerEval.
	watchEval      atomic.Value
	queries        *query.Manager
	queryCount     atomic.Uint64
	queryLatencyUS *metrics.Histogram
	webhookMu      sync.Mutex
	webhooks       map[uint64]*query.Subscription

	// testDecideHook, when non-nil, runs in the worker between the
	// queue-drop check and the ledger admission — test instrumentation
	// for provoking the late-decision race deterministically.
	testDecideHook func(job workload.Job)
}

// New builds and starts a daemon core (worker pool running, no listener —
// the caller attaches it to an http.Server or httptest).
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:            cfg,
		ledger:         NewLedger(cfg.Theta, cfg.Now),
		queue:          make(chan *decideTask, cfg.QueueDepth),
		started:        time.Now(),
		latencyUS:      metrics.NewHistogram(),
		queryLatencyUS: metrics.NewHistogram(),
		obs:            cfg.Obs,
		httpStats:      make(map[string]*obs.EndpointStats),
		webhooks:       make(map[uint64]*query.Subscription),
	}
	if cfg.Owned != nil {
		s.ledger.RestrictOwned(cfg.Owned)
	}
	s.ledger.SetAdmitTuning(cfg.AdmitRetries, cfg.NoAdmitBatch, cfg.PessimisticAdmit)
	s.ledger.SetObserver(cfg.Obs)
	s.ledger.SetSpanStore(cfg.Spans)
	s.ledger.SetAssure(cfg.Assure)
	s.ledger.SetFlightRecorder(cfg.FlightRec)
	s.queries = query.NewManager(s.managerEval, s.queryLog())
	s.ledger.SetEpochNotifier(s.queries.Bump)
	s.mux = http.NewServeMux()
	s.route("POST /v1/admit", "admit", s.handleAdmit)
	s.route("POST /v1/release", "release", s.handleRelease)
	s.route("POST /v1/acquire", "acquire", s.handleAcquire)
	s.route("POST /v1/advance", "advance", s.handleAdvance)
	s.route("GET /v1/ledger", "ledger", s.handleLedger)
	s.route("GET /v1/query", "query", s.handleQuery)
	s.route("POST /v1/query", "query.eval", s.handleQueryPost)
	s.route("GET /v1/watch", "watch", s.handleWatch)
	s.route("POST /v1/watch", "watch.hook", s.handleWatchHook)
	s.route("DELETE /v1/watch", "watch.drop", s.handleWatchDrop)
	s.route("GET /v1/stats", "stats", s.handleStats)
	s.route("GET /v1/assure", "assure", s.handleAssure)
	s.route("GET /healthz", "healthz", s.handleHealth)
	s.route("GET /debug/rota/trace/{id}", "trace", s.handleTraceDump)
	s.route("GET /debug/rota/flightrec", "flightrec", s.handleFlightRecIndex)
	s.route("GET /debug/rota/flightrec/{id}", "flightrec.get", s.handleFlightRecGet)
	s.mux.HandleFunc("GET /metrics", obs.Handler(s))
	// The node-local half of the federation protocol (internal/cluster
	// drives these on peers).
	s.route("POST /v1/cluster/prepare", "cluster.prepare", s.handlePrepare)
	s.route("POST /v1/cluster/commit", "cluster.commit", s.handleCommit)
	s.route("POST /v1/cluster/abort", "cluster.abort", s.handleAbort)
	s.route("GET /v1/cluster/free", "cluster.free", s.handleFree)
	for i := 0; i < cfg.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker()
	}
	return s, nil
}

// route registers an instrumented handler: per-endpoint request/latency
// /status counters plus trace-ID minting and propagation.
func (s *Server) route(pattern, endpoint string, h http.HandlerFunc) {
	es := obs.NewEndpointStats(endpoint)
	s.httpStats[endpoint] = es
	s.mux.HandleFunc(pattern, obs.Instrument(es, h))
}

// Ledger exposes the live ledger (selftest and tests).
func (s *Server) Ledger() *Ledger {
	return s.ledger
}

// Assure exposes the promise ledger (nil when disabled). The cluster
// layer reaches it here so promises survive jobs changing owners.
func (s *Server) Assure() *assure.Ledger {
	return s.cfg.Assure
}

// FlightRecorder exposes the anomaly flight recorder (nil when
// disabled). The cluster layer fires membership triggers through it.
func (s *Server) FlightRecorder() *flightrec.Recorder {
	return s.cfg.FlightRec
}

// queryLog returns the structured-event sink handed to the query
// manager. With a flight recorder attached, a watch-queue overflow
// (the manager dropping a notification) freezes a snapshot: a consumer
// that missed a verdict flip is an anomaly someone will ask about.
func (s *Server) queryLog() func(event string, kv ...any) {
	if s.cfg.FlightRec == nil {
		return s.obs.Log
	}
	return func(event string, kv ...any) {
		if event == "query.drop" {
			s.cfg.FlightRec.Trigger(flightrec.TriggerWatchDrop, fmt.Sprint(kv...))
		}
		s.obs.Log(event, kv...)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// worker drains the decision queue. The pool bounds how many Theorem-4
// searches run at once regardless of how many requests are in flight.
func (s *Server) worker() {
	defer s.workerWg.Done()
	for task := range s.queue {
		if task.ctx.Err() != nil {
			// The requester gave up while the task sat in the queue.
			s.inflight.Done()
			continue
		}
		if s.testDecideHook != nil {
			s.testDecideHook(task.job)
		}
		s.inflightDecs.Add(1)
		start := time.Now()
		span.FromContext(task.ctx).Attr("queue_wait_us", start.Sub(task.enqueued).Microseconds())
		dec, err := s.ledger.AdmitCtx(task.ctx, s.cfg.Policy, task.job)
		decided := time.Since(start)
		s.inflightDecs.Add(-1)
		if err == nil {
			// Only genuine verdicts feed the decision-latency histogram;
			// duplicate names and internal errors never reach a verdict.
			s.latencyUS.Observe(float64(decided.Microseconds()))
		}
		if err == nil && dec.Admit {
			s.obs.Log("ledger.reserve",
				"trace", task.trace,
				"job", task.job.Dist.Name,
				"finish", dec.Plan.Finish,
				"deadline", task.job.Dist.Deadline)
		}
		if task.claim() {
			task.done <- decideResult{dec: dec, err: err}
		} else {
			// The handler already told the client "timed out". A verdict
			// delivered now would be a silent resource leak: roll back the
			// reservation the client will never learn about.
			s.lateDecisions.Add(1)
			rolledBack := false
			if err == nil && dec.Admit {
				// The admission is being unwound, not honored: drop the
				// promise before the release so it isn't counted kept.
				s.cfg.Assure.Drop(task.job.Dist.Name)
				rolledBack = s.ledger.Release(task.job.Dist.Name) == nil
			}
			s.obs.Log("admit.late_decision",
				"trace", task.trace,
				"job", task.job.Dist.Name,
				"admit", err == nil && dec.Admit,
				"rolled_back", rolledBack,
				"decision_us", decided.Microseconds(),
				"queue_wait_us", start.Sub(task.enqueued).Microseconds())
		}
		if thr := s.obs.SlowThreshold(); thr > 0 && decided >= thr {
			s.traceSlowDecision(task, dec, err, start.Sub(task.enqueued), decided)
		}
		s.inflight.Done()
	}
}

// traceSlowDecision logs a decision that exceeded the slow threshold:
// the job, its resource footprint, and per-phase timings (queue wait vs
// ledger lock + policy search).
func (s *Server) traceSlowDecision(task *decideTask, dec admission.Decision, err error, queued, decided time.Duration) {
	locs := footprint(core.ConcurrentAt(task.job.Dist, s.ledger.Now()))
	parts := make([]string, len(locs))
	for i, loc := range locs {
		parts[i] = string(loc)
	}
	s.obs.Log("admit.slow_decision",
		"trace", task.trace,
		"job", task.job.Dist.Name,
		"footprint", strings.Join(parts, ","),
		"admit", err == nil && dec.Admit,
		"queue_wait_us", queued.Microseconds(),
		"decision_us", decided.Microseconds(),
		"total_us", (queued + decided).Microseconds(),
		"policy_us", dec.Elapsed.Microseconds())
}

// Shutdown gracefully stops the daemon: new admissions are rejected
// immediately, queued and running decisions finish (bounded by ctx), then
// the worker pool exits. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if already {
		return nil
	}
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
	close(s.queue)
	s.workerWg.Wait()
	s.queries.Close()
	return nil
}

// submit enqueues a decision unless the daemon is draining. It returns
// false when draining.
func (s *Server) submit(task *decideTask) bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	select {
	case s.queue <- task:
		return true
	case <-task.ctx.Done():
		s.inflight.Done()
		return true // enqueued-or-expired; caller sees the ctx error
	}
}

// API request/response bodies.

// AdmitResponse is the verdict returned by POST /v1/admit.
type AdmitResponse struct {
	Job    string `json:"job"`
	Admit  bool   `json:"admit"`
	Reason string `json:"reason,omitempty"`
	// Provenance is the structured decision provenance of a rejection:
	// which pipeline stage, constraint, resource term and window failed.
	Provenance *span.Provenance `json:"provenance,omitempty"`
	// Finish is the witness plan's completion time (admitted only).
	Finish interval.Time `json:"finish,omitempty"`
	// Deadline echoes the job's deadline.
	Deadline interval.Time `json:"deadline"`
	// ElapsedUS is the policy decision cost in microseconds, measured
	// uniformly by admission.Decide.
	ElapsedUS int64 `json:"elapsed_us"`
}

type releaseRequest struct {
	Name string `json:"name"`
}

type acquireRequest struct {
	// Theta is a compact resource-set literal, e.g. "5:cpu@l1:(0,100)".
	Theta string `json:"theta"`
}

type advanceRequest struct {
	Now interval.Time `json:"now"`
}

// StatsResponse is the digest returned by GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Build identifies the running binary so dashboards can detect
	// restarts and version skew across a cluster.
	Build BuildInfo `json:"build"`
	Now   int64     `json:"now"`
	// LedgerEpoch is the ledger's mutation epoch (also under query.epoch;
	// surfaced at the top level so restart detection needs one field).
	LedgerEpoch uint64 `json:"ledger_epoch"`
	Shards      int    `json:"shards"`
	Commitments int    `json:"commitments"`

	// Decisions = Admitted + Rejected, always.
	Decisions uint64 `json:"decisions"`
	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	Released  uint64 `json:"released"`
	Errors    uint64 `json:"errors"`
	TimedOut  uint64 `json:"timed_out"`
	// LateDecisions counts decisions that completed after their requester
	// had already been told "timed out"; admitted ones are rolled back.
	LateDecisions uint64 `json:"late_decisions"`

	// QueueDepth and InFlight are point-in-time gauges of the worker
	// pool: decisions waiting for a worker and decisions mid-search.
	QueueDepth int64 `json:"queue_depth"`
	InFlight   int64 `json:"in_flight"`

	// Holds counts live leased two-phase holds; TwoPhase digests the
	// federation traffic this node served as a participant.
	Holds    int              `json:"holds"`
	TwoPhase TwoPhaseCounters `json:"two_phase"`

	// AdmitHot digests the admission hot path: batching, optimistic
	// retries and fallbacks, and free-view cache patches vs recomputes.
	AdmitHot AdmitHotCounters `json:"admit_hot"`

	// DecisionLatencyUS digests worker-side decision service time
	// (ledger lock + policy) in microseconds.
	DecisionLatencyUS LatencyStats `json:"decision_latency_us"`

	// Spans digests the span store: ring-buffer bound, live records, and
	// the recorded/evicted totals that prove the store stays bounded.
	Spans span.Stats `json:"spans"`

	// Query digests the temporal-query layer: one-shot evaluations,
	// ledger epoch, subscription traffic and query latency.
	Query QueryStats `json:"query"`

	// Assure digests the deadline-assurance promise ledger: per-outcome
	// promise counts, SLO attainment, violation burn rate and slack
	// histograms. Zero when promise tracking is disabled.
	Assure assure.Stats `json:"assure"`

	// FlightRec digests the anomaly flight recorder: snapshots held,
	// triggers fired/deduped, ring occupancy. Zero when disabled.
	FlightRec flightrec.Stats `json:"flightrec"`
}

// QueryStats digests the temporal-query layer for /v1/stats.
type QueryStats struct {
	// Queries counts one-shot query evaluations served.
	Queries uint64 `json:"queries"`
	// Epoch is the ledger's mutation epoch; every bump re-evaluates the
	// standing queries.
	Epoch uint64 `json:"epoch"`
	// Subs digests the subscription manager.
	Subs query.ManagerStats `json:"subscriptions"`
	// LatencyUS digests one-shot query evaluation time in microseconds.
	LatencyUS LatencyStats `json:"query_latency_us"`
}

// LatencyStats is the JSON shape of a histogram summary.
type LatencyStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func latencyStats(s metrics.HistogramSummary) LatencyStats {
	return LatencyStats{Count: s.Count, Mean: s.Mean, Min: s.Min, Max: s.Max, P50: s.P50, P90: s.P90, P99: s.P99}
}

// DecodeAdmitRequest decodes and validates one job from an admit body.
// Exported so the fuzz harness exercises exactly the wire path.
func DecodeAdmitRequest(body []byte) (workload.Job, error) {
	var job workload.Job
	if err := json.Unmarshal(body, &job); err != nil {
		return workload.Job{}, fmt.Errorf("server: bad admit body: %w", err)
	}
	if err := workload.ValidateJob(job); err != nil {
		return workload.Job{}, fmt.Errorf("server: bad admit body: %w", err)
	}
	return job, nil
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	// The admit span is this request's terminal span: every phase —
	// validation, plan search, reservation — nests underneath it, and a
	// reject's provenance lands on it.
	sctx, adSpan := s.cfg.Spans.Start(r.Context(), span.KindAdmit)
	defer adSpan.End()

	_, vSpan := s.cfg.Spans.Start(sctx, span.KindValidate)
	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err == nil {
		var job workload.Job
		job, err = DecodeAdmitRequest(body)
		if err == nil {
			vSpan.Attr("job", job.Dist.Name)
			vSpan.End()
			s.admitDecide(w, sctx, adSpan, job)
			return
		}
	}
	vSpan.Attr("error", err)
	vSpan.SetStatus(span.StatusError)
	vSpan.End()
	adSpan.SetStatus(span.StatusError)
	s.errored.Add(1)
	httpError(w, http.StatusBadRequest, err)
}

// admitDecide runs a validated job through the worker pool and writes
// the verdict. sctx carries the request's admit span.
func (s *Server) admitDecide(w http.ResponseWriter, sctx context.Context, adSpan *span.Span, job workload.Job) {
	adSpan.Attr("job", job.Dist.Name)
	adSpan.Attr("deadline", job.Dist.Deadline)

	ctx, cancel := context.WithTimeout(sctx, s.cfg.DecisionTimeout)
	defer cancel()
	trace := obs.Trace(sctx)
	task := &decideTask{ctx: ctx, job: job, done: make(chan decideResult, 1),
		trace: trace, enqueued: time.Now()}
	if !s.submit(task) {
		adSpan.SetStatus(span.StatusError)
		httpError(w, http.StatusServiceUnavailable, errors.New("server: draining, not accepting new admissions"))
		return
	}

	deliver := func(res decideResult) {
		if res.err != nil {
			status := http.StatusInternalServerError
			if errors.Is(res.err, ErrDuplicate) {
				status = http.StatusConflict
			}
			s.errored.Add(1)
			s.obs.Log("admit.error", "trace", trace, "job", job.Dist.Name, "error", res.err)
			adSpan.SetStatus(span.StatusError)
			adSpan.Attr("error", res.err)
			httpError(w, status, res.err)
			return
		}
		if res.dec.Admit {
			s.admitted.Add(1)
		} else {
			s.rejected.Add(1)
		}
		s.obs.Log("admit.decision",
			"trace", trace,
			"job", job.Dist.Name,
			"admit", res.dec.Admit,
			"reason", res.dec.Reason,
			"deadline", job.Dist.Deadline,
			"decision_us", res.dec.Elapsed.Microseconds())
		resp := AdmitResponse{
			Job:       job.Dist.Name,
			Admit:     res.dec.Admit,
			Reason:    res.dec.Reason,
			Deadline:  job.Dist.Deadline,
			ElapsedUS: res.dec.Elapsed.Microseconds(),
		}
		adSpan.Attr("admit", res.dec.Admit)
		if res.dec.Admit {
			if res.dec.Plan != nil {
				resp.Finish = res.dec.Plan.Finish
				adSpan.Attr("finish", res.dec.Plan.Finish)
			}
		} else {
			resp.Provenance = span.Classify(res.dec.Reason)
			adSpan.SetStatus(span.StatusReject)
			adSpan.SetProvenance(resp.Provenance)
		}
		writeJSON(w, http.StatusOK, resp)
	}

	select {
	case res := <-task.done:
		deliver(res)
	case <-ctx.Done():
		if !task.claim() {
			// A worker won the race and is delivering (or has delivered)
			// a verdict; honour it rather than reporting a timeout for a
			// decision that was actually made.
			deliver(<-task.done)
			return
		}
		// The claim guarantees the worker sees the abandonment and rolls
		// back any reservation it completes late.
		s.timedOut.Add(1)
		adSpan.SetStatus(span.StatusError)
		adSpan.Attr("error", "decision timeout")
		s.obs.Log("admit.timeout", "trace", trace, "job", job.Dist.Name,
			"timeout_ms", s.cfg.DecisionTimeout.Milliseconds())
		httpError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server: decision for %s exceeded %v", job.Dist.Name, s.cfg.DecisionTimeout))
	}
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := decodeInto(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, errors.New("server: release needs a name"))
		return
	}
	if err := s.ledger.Release(req.Name); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrUnknown) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	s.released.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"released": req.Name})
}

func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	if err := decodeInto(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	set, err := resource.ParseSet(req.Theta)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.ledger.Acquire(set)
	writeJSON(w, http.StatusOK, map[string]any{"acquired": set.Compact()})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req advanceRequest
	if err := decodeInto(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	completed, err := s.ledger.Advance(req.Now)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClockBackward) {
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	if completed == nil {
		completed = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"now": s.ledger.Now(), "completed": completed})
}

func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ledger.Snapshot())
}

// Stats returns the daemon's counters and latency digest.
func (s *Server) Stats() StatsResponse {
	return StatsResponse{
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Build:             buildInfo(),
		Now:               s.ledger.Now(),
		LedgerEpoch:       s.ledger.Epoch(),
		Shards:            s.ledger.NumShards(),
		Commitments:       s.ledger.NumCommitments(),
		Decisions:         s.admitted.Load() + s.rejected.Load(),
		Admitted:          s.admitted.Load(),
		Rejected:          s.rejected.Load(),
		Released:          s.released.Load(),
		Errors:            s.errored.Load(),
		TimedOut:          s.timedOut.Load(),
		LateDecisions:     s.lateDecisions.Load(),
		QueueDepth:        int64(len(s.queue)),
		InFlight:          s.inflightDecs.Load(),
		Holds:             s.ledger.NumHolds(),
		TwoPhase:          s.ledger.TwoPhase(),
		AdmitHot:          s.ledger.AdmitHot(),
		DecisionLatencyUS: latencyStats(s.latencyUS.Summary()),
		Spans:             s.cfg.Spans.Stats(),
		Query: QueryStats{
			Queries:   s.queryCount.Load(),
			Epoch:     s.ledger.Epoch(),
			Subs:      s.queries.Stats(),
			LatencyUS: latencyStats(s.queryLatencyUS.Summary()),
		},
		Assure:    s.cfg.Assure.Stats(),
		FlightRec: s.cfg.FlightRec.Stats(),
	}
}

// handleTraceDump serves GET /debug/rota/trace/{id}: every span this
// node recorded for the trace, as a span.Dump. A node that saw nothing
// of the trace returns an empty span list, so cross-node collectors can
// fetch from every node and merge without special cases.
func (s *Server) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Spans == nil {
		httpError(w, http.StatusNotFound, errors.New("server: span store disabled (start with -span-store)"))
		return
	}
	id := r.PathValue("id")
	if id == "" || len(id) > 128 {
		httpError(w, http.StatusBadRequest, errors.New("server: trace id must be 1..128 bytes"))
		return
	}
	recs := s.cfg.Spans.Trace(id)
	if recs == nil {
		recs = []span.Record{}
	}
	writeJSON(w, http.StatusOK, span.Dump{Trace: id, Spans: recs})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// HTTP helpers.

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("server: body exceeds %d bytes", limit)
		}
		return nil, err
	}
	return body, nil
}

func decodeInto(w http.ResponseWriter, r *http.Request, limit int64, dst any) error {
	body, err := readBody(w, r, limit)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
