package server

import (
	"fmt"
	"sort"

	"repro/internal/interval"
	"repro/internal/resource"
)

// Ledger export/import: the state-shipping half of ownership handoff
// and warm-standby failover. ExportLocations serializes everything one
// location's shard implies (its availability, clock, and each
// commitment's and hold's slice of demand on it); ImportLocations
// installs such an export on a new owner, merging with what the
// receiver already has (a spanning job may already be committed there
// under the same name or 2PC key); DropLocations atomically strips the
// exported locations from the old owner. The cluster layer sequences
// these make-before-break — install on the new owner completes before
// the old owner drops — which is the paper's migrate rule applied to a
// whole shard instead of a single computation.

// ExportCommitment is one commitment's slice of demand on an exported
// location.
type ExportCommitment struct {
	Name     string        `json:"name"`
	Demand   string        `json:"demand"`
	Finish   interval.Time `json:"finish"`
	Deadline interval.Time `json:"deadline"`
	Admitted interval.Time `json:"admitted"`
}

// ExportHold is one leased two-phase hold's slice of demand on an
// exported location. The original key and expiry travel with it so the
// coordinator's commit/abort (forwarded by the old owner) still
// resolves, and an orphaned lease still expires on schedule.
type ExportHold struct {
	Key      string        `json:"key"`
	Name     string        `json:"name"`
	Demand   string        `json:"demand"`
	Finish   interval.Time `json:"finish"`
	Deadline interval.Time `json:"deadline"`
	Expiry   interval.Time `json:"lease_expiry"`
}

// LocationExport is one location's complete ledger state, ready to ship
// to a new owner.
type LocationExport struct {
	Loc         resource.Location  `json:"loc"`
	Now         interval.Time      `json:"now"`
	Theta       string             `json:"theta,omitempty"`
	Commitments []ExportCommitment `json:"commitments,omitempty"`
	Holds       []ExportHold       `json:"holds,omitempty"`
}

// restrictToLoc filters a demand set to the terms one location's shard
// owns, clamped to the not-yet-consumed window.
func restrictToLoc(demand resource.Set, loc resource.Location, now interval.Time) resource.Set {
	var out resource.Set
	for _, t := range demand.Terms() {
		if shardOf(t.Type) == loc {
			out.Add(t)
		}
	}
	return out.Clamp(interval.New(now, interval.Infinity))
}

// ExportLocations serializes the given locations' shards. Read-only;
// the caller (the cluster layer's handoff or shadow shipping) is
// responsible for freezing admissions if it needs the export and a
// subsequent drop to be atomic.
func (l *Ledger) ExportLocations(locs []resource.Location) []LocationExport {
	l.mu.Lock()
	commits := make([]*commitment, 0, len(l.commits))
	for _, c := range l.commits {
		if !c.pending {
			commits = append(commits, c)
		}
	}
	holds := make([]*hold, 0, len(l.holds))
	for _, h := range l.holds {
		if !h.pending {
			holds = append(holds, h)
		}
	}
	shardsByLoc := make(map[resource.Location]*shard, len(locs))
	for _, loc := range locs {
		if sh, ok := l.shards[loc]; ok {
			shardsByLoc[loc] = sh
		}
	}
	l.mu.Unlock()

	out := make([]LocationExport, 0, len(locs))
	for _, loc := range locs {
		exp := LocationExport{Loc: loc, Now: l.Now()}
		if sh, ok := shardsByLoc[loc]; ok {
			sh.mu.Lock()
			exp.Now = sh.now
			exp.Theta = sh.theta.Compact()
			sh.mu.Unlock()
		}
		for _, c := range commits {
			part := restrictToLoc(c.plan.Demand(), loc, exp.Now)
			if part.Empty() {
				continue
			}
			exp.Commitments = append(exp.Commitments, ExportCommitment{
				Name:     c.name,
				Demand:   part.Compact(),
				Finish:   c.plan.Finish,
				Deadline: c.deadline,
				Admitted: c.admitted,
			})
		}
		for _, h := range holds {
			part := restrictToLoc(h.demand, loc, exp.Now)
			if part.Empty() {
				continue
			}
			exp.Holds = append(exp.Holds, ExportHold{
				Key:      h.key,
				Name:     h.name,
				Demand:   part.Compact(),
				Finish:   h.finish,
				Deadline: h.deadline,
				Expiry:   h.expiry,
			})
		}
		sort.Slice(exp.Commitments, func(i, j int) bool { return exp.Commitments[i].Name < exp.Commitments[j].Name })
		sort.Slice(exp.Holds, func(i, j int) bool { return exp.Holds[i].Key < exp.Holds[j].Key })
		out = append(out, exp)
	}
	return out
}

// subtractLoc removes every term owned by loc from a demand set.
func subtractLoc(demand resource.Set, loc resource.Location) resource.Set {
	var out resource.Set
	for _, t := range demand.Terms() {
		if shardOf(t.Type) != loc {
			out.Add(t)
		}
	}
	return out
}

// DropLocations atomically strips the given locations from this ledger:
// their shards disappear, every commitment and hold loses its slice of
// demand on them (entries left empty are removed entirely), and the
// locations leave the owned set so later requests get ErrNotOwned. It
// returns the keys of live holds that lost demand — the cluster layer
// must forward their eventual commit/abort to the new owner.
func (l *Ledger) DropLocations(locs []resource.Location) []string {
	// Shard locks first (the canonical order: l.mu is never held while a
	// shard lock is acquired), then l.mu for the maps. Holding both
	// serializes the drop against in-flight admissions and prepares,
	// whose post-lock ownership re-check sees the shrunken owned set.
	_, unlock := l.lockedShards(locs)
	defer unlock()
	dropped := make(map[resource.Location]bool, len(locs))
	for _, loc := range locs {
		dropped[loc] = true
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	for _, loc := range locs {
		delete(l.shards, loc)
		if l.owned != nil {
			delete(l.owned, loc)
		}
	}
	for name, c := range l.commits {
		if c.pending {
			continue
		}
		touched := false
		for _, loc := range c.locs {
			if dropped[loc] {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		remaining := c.plan.Demand()
		var keptLocs []resource.Location
		for _, loc := range c.locs {
			if dropped[loc] {
				remaining = subtractLoc(remaining, loc)
			} else {
				keptLocs = append(keptLocs, loc)
			}
		}
		if remaining.Empty() {
			delete(l.commits, name)
			// The whole commitment left with the handoff: the receiving
			// node adopts the promise on import, this node stops counting
			// it. Partial drops keep the promise active here — some of the
			// footprint is still this node's to honor.
			l.assure.Transfer(name)
			continue
		}
		c.locs = keptLocs
		c.plan = planFromSet(c.name, remaining, c.plan.Finish)
	}
	var movedKeys []string
	for key, h := range l.holds {
		if h.pending {
			continue
		}
		touched := false
		for _, loc := range h.locs {
			if dropped[loc] {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		movedKeys = append(movedKeys, key)
		remaining := h.demand
		var keptLocs []resource.Location
		for _, loc := range h.locs {
			if dropped[loc] {
				remaining = subtractLoc(remaining, loc)
			} else {
				keptLocs = append(keptLocs, loc)
			}
		}
		if remaining.Empty() {
			delete(l.holds, key)
			if l.heldNames[h.name] == key {
				delete(l.heldNames, h.name)
			}
			continue
		}
		h.demand = remaining
		h.locs = keptLocs
	}
	sort.Strings(movedKeys)
	// bumpEpoch takes no locks and the notifier is non-blocking, so the
	// bump is safe under l.mu and the drop publishes atomically with it.
	l.bumpEpoch("handoff")
	return movedKeys
}

// ImportLocations installs exported location state on this ledger: the
// shard appears with the exporter's clock and availability, and each
// shipped commitment and hold lands — merged into an existing entry of
// the same name/key when this node already carried another slice of the
// same federated job. The caller should extend the owned set (AddOwned)
// first so concurrent requests for the location are accepted.
func (l *Ledger) ImportLocations(exports []LocationExport) error {
	for _, exp := range exports {
		theta, err := resource.ParseSet(exp.Theta)
		if err != nil {
			return fmt.Errorf("server: import %s: bad theta: %w", exp.Loc, err)
		}
		type impCommit struct {
			ExportCommitment
			demand resource.Set
		}
		type impHold struct {
			ExportHold
			demand resource.Set
		}
		commits := make([]impCommit, 0, len(exp.Commitments))
		for _, c := range exp.Commitments {
			d, err := resource.ParseSet(c.Demand)
			if err != nil {
				return fmt.Errorf("server: import %s: commitment %s demand: %w", exp.Loc, c.Name, err)
			}
			commits = append(commits, impCommit{c, d})
		}
		holds := make([]impHold, 0, len(exp.Holds))
		for _, h := range exp.Holds {
			d, err := resource.ParseSet(h.Demand)
			if err != nil {
				return fmt.Errorf("server: import %s: hold %s demand: %w", exp.Loc, h.Key, err)
			}
			holds = append(holds, impHold{h, d})
		}

		shards, unlock := l.lockedShards([]resource.Location{exp.Loc})
		sh := shards[0]
		if exp.Now > sh.now {
			sh.now = exp.Now
			sh.theta.TrimBefore(sh.now)
			sh.reserved.TrimBefore(sh.now)
		}
		window := interval.New(sh.now, interval.Infinity)
		sh.theta = sh.theta.Union(theta.Clamp(window))
		var reserved resource.Set
		for _, c := range commits {
			reserved = reserved.Union(c.demand.Clamp(window))
		}
		for _, h := range holds {
			reserved = reserved.Union(h.demand.Clamp(window))
		}
		sh.reserved = sh.reserved.Union(reserved)
		sh.dirty()
		dominated := sh.theta.Dominates(sh.reserved)
		shNow := sh.now
		unlock()
		if !dominated {
			return fmt.Errorf("server: import %s would overcommit the shard", exp.Loc)
		}

		l.mu.Lock()
		for _, c := range commits {
			demand := c.demand.Clamp(interval.New(shNow, interval.Infinity))
			if demand.Empty() {
				continue
			}
			if prev, ok := l.commits[c.Name]; ok && !prev.pending {
				// Another slice of the same federated job already lives
				// here: merge the demands into one plan.
				merged := prev.plan.Demand().Union(demand)
				finish := prev.plan.Finish
				if c.Finish > finish {
					finish = c.Finish
				}
				prev.plan = planFromSet(prev.name, merged, finish)
				prev.locs = demandFootprint(merged)
				l.assure.Adopt(c.Name, c.Admitted, finish, c.Deadline,
					l.epoch.Load(), prev.locs)
				continue
			}
			newC := &commitment{
				name:     c.Name,
				locs:     demandFootprint(demand),
				plan:     planFromSet(c.Name, demand, c.Finish),
				deadline: c.Deadline,
				admitted: c.Admitted,
			}
			l.commits[c.Name] = newC
			// The promise crosses the wire with the commitment: a handoff
			// import or standby promotion adopts the original deadline
			// window, so outcomes keep being counted after the owner died.
			l.assure.Adopt(c.Name, c.Admitted, c.Finish, c.Deadline,
				l.epoch.Load(), newC.locs)
		}
		for _, h := range holds {
			demand := h.demand.Clamp(interval.New(shNow, interval.Infinity))
			if demand.Empty() {
				continue
			}
			if prev, ok := l.holds[h.Key]; ok && !prev.pending {
				merged := prev.demand.Union(demand)
				prev.demand = merged
				prev.locs = demandFootprint(merged)
				if h.Expiry < prev.expiry {
					prev.expiry = h.Expiry
				}
				if h.Finish > prev.finish {
					prev.finish = h.Finish
				}
				continue
			}
			l.holds[h.Key] = &hold{
				key:      h.Key,
				name:     h.Name,
				demand:   demand,
				locs:     demandFootprint(demand),
				finish:   h.Finish,
				deadline: h.Deadline,
				expiry:   h.Expiry,
			}
			l.heldNames[h.Name] = h.Key
		}
		l.mu.Unlock()
	}
	l.bumpEpoch("handoff")
	return nil
}
