package server

import (
	"fmt"
	"sort"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/schedule"
)

// Two-phase cross-node reservation. A federated admission splits one
// witness plan across the nodes owning its footprint: the coordinator
// sends each owner a Prepare holding that node's sub-plan under a TTL
// lease, then Commit promotes the hold to a commitment or Abort (or
// lease expiry, when the coordinator crashed) releases it. Because
// Prepare re-checks the shard invariant under the shard locks, the
// Theorem-4 no-overcommitment property holds per node at every step of
// the protocol, whatever the coordinator does afterwards.

// hold is one prepared-but-uncommitted reservation: a per-node slice of
// a federated admission's witness plan, held under a lease that expires
// at 'expiry' on the ledger clock.
type hold struct {
	key      string
	name     string
	demand   resource.Set
	locs     []resource.Location // sorted demand footprint
	finish   interval.Time
	deadline interval.Time
	expiry   interval.Time
	pending  bool // claimed but mid-reservation
}

// RestrictOwned limits the ledger to the given locations: admissions and
// prepares naming any other location are rejected with ErrNotOwned.
// Intended to be called once, before the ledger serves traffic.
func (l *Ledger) RestrictOwned(locs []resource.Location) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.owned = make(map[resource.Location]bool, len(locs))
	for _, loc := range locs {
		l.owned[loc] = true
	}
}

// planFromSet reconstructs a witness plan from a demand set received
// over the wire: one allocation per term, finishing at finish. Demand()
// of the result is exactly the input set, which is all the ledger needs
// to reserve, release, and audit it.
func planFromSet(name string, demand resource.Set, finish interval.Time) schedule.Plan {
	plan := schedule.Plan{Finish: finish}
	for _, t := range demand.Terms() {
		plan.Allocs = append(plan.Allocs, schedule.Allocation{
			Actor: compute.ActorName(name),
			Term:  t,
		})
	}
	return plan
}

// demandFootprint returns the sorted locations a demand set touches.
func demandFootprint(demand resource.Set) []resource.Location {
	seen := make(map[resource.Location]bool)
	for _, t := range demand.Terms() {
		seen[shardOf(t.Type)] = true
	}
	locs := make([]resource.Location, 0, len(seen))
	for loc := range seen {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// Prepare places a leased hold for the named job's local sub-plan.
// Idempotent on key: re-preparing a held or already-committed key
// succeeds without reserving twice, so a coordinator may safely retry.
// Returns ErrNotOwned for demand outside this node's locations,
// ErrDuplicate when the name is already admitted or held under a
// different key, and ErrOvercommit when the demand does not fit the free
// availability (a capacity rejection, not a fault).
func (l *Ledger) Prepare(key, name string, demand resource.Set, finish, deadline, expiry interval.Time) error {
	now := l.Now()
	if expiry <= now {
		return fmt.Errorf("%w: lease expiry t=%d is not after now t=%d", ErrLeaseExpired, expiry, now)
	}
	trimmed := demand.Clone()
	trimmed.TrimBefore(now)
	if trimmed.Empty() {
		return fmt.Errorf("server: prepare %s for %s has no demand at or after t=%d", key, name, now)
	}
	locs := demandFootprint(trimmed)
	if err := l.checkOwned(locs); err != nil {
		return fmt.Errorf("prepare %s for %s: %w", key, name, err)
	}

	// Claim the key (and implicitly the name) before touching shards, so
	// a racing duplicate cannot double-reserve.
	h := &hold{key: key, name: name, demand: trimmed, locs: locs,
		finish: finish, deadline: deadline, expiry: expiry, pending: true}
	l.mu.Lock()
	if _, done := l.committedKeys[key]; done {
		l.mu.Unlock()
		return nil // retried after a successful commit
	}
	if prev, held := l.holds[key]; held {
		l.mu.Unlock()
		if prev.pending {
			return fmt.Errorf("server: prepare %s still in flight", key)
		}
		return nil // retried after a successful prepare
	}
	if _, exists := l.commits[name]; exists {
		l.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	if otherKey, held := l.heldNames[name]; held {
		l.mu.Unlock()
		return fmt.Errorf("%w: %s (held by prepare %s)", ErrDuplicate, name, otherKey)
	}
	l.holds[key] = h
	l.heldNames[name] = key
	l.mu.Unlock()
	abandon := func() {
		l.mu.Lock()
		delete(l.holds, key)
		if l.heldNames[name] == key {
			delete(l.heldNames, name)
		}
		l.mu.Unlock()
	}

	shards, unlock := l.lockedShards(locs)
	// Re-check ownership under the shard locks: a concurrent handoff may
	// have dropped a location since the first check, and a hold placed on
	// a dropped shard would never be committed or swept here.
	if err := l.checkOwned(locs); err != nil {
		unlock()
		abandon()
		return fmt.Errorf("prepare %s for %s: %w", key, name, err)
	}
	parts := splitByShard(trimmed)
	// Check every shard before touching any, so a rejection leaves the
	// ledger exactly as it was. The fit check runs against the cached
	// free view (free dominates part ⟺ θ dominates reserved ∪ part), so
	// a loaded shard pays an incremental patch, not a full recompute.
	for _, sh := range shards {
		part, ok := parts[sh.loc]
		if !ok {
			continue
		}
		free, err := sh.freeView()
		if err != nil {
			unlock()
			abandon()
			return fmt.Errorf("server: shard %s invariant broken: %w", sh.loc, err)
		}
		if !free.Dominates(part) {
			unlock()
			abandon()
			return fmt.Errorf("%w: shard %s cannot hold prepare %s for %s", ErrOvercommit, sh.loc, key, name)
		}
	}
	for _, sh := range shards {
		if part, ok := parts[sh.loc]; ok {
			sh.applyReserve(part)
		}
	}
	unlock()

	l.mu.Lock()
	h.pending = false
	l.mu.Unlock()
	l.prepares.Add(1)
	l.bumpEpoch("prepare")
	return nil
}

// Commit promotes a prepared hold into a live commitment. Idempotent on
// key. Returns ErrUnknownHold for a key never prepared (or already
// swept) and ErrLeaseExpired when the lease ran out first — in either
// case the coordinator must treat the admission as failed and abort the
// other participants.
func (l *Ledger) Commit(key string) error {
	now := l.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, done := l.committedKeys[key]; done {
		return nil
	}
	h, ok := l.holds[key]
	if !ok || h.pending {
		return fmt.Errorf("%w: %s", ErrUnknownHold, key)
	}
	if h.expiry <= now {
		return fmt.Errorf("%w: %s expired at t=%d, now t=%d", ErrLeaseExpired, key, h.expiry, now)
	}
	delete(l.holds, key)
	if l.heldNames[h.name] == key {
		delete(l.heldNames, h.name)
	}
	l.commits[h.name] = &commitment{
		name:     h.name,
		locs:     h.locs,
		plan:     planFromSet(h.name, h.demand, h.finish),
		deadline: h.deadline,
		admitted: now,
		key:      key,
	}
	l.committedKeys[key] = h.name
	l.commitCount.Add(1)
	// The hold's demand stays reserved, but feasible/Allen atoms can now
	// resolve the commitment by name: still a verdict-relevant change.
	l.bumpEpoch("commit")
	// The promise is adopted, not reserved: for a coordinated admission
	// this participant holds its share of a promise made cluster-wide,
	// and for a migration commit the promise predates this node entirely.
	l.assure.Adopt(h.name, now, h.finish, h.deadline, l.epoch.Load(), h.locs)
	return nil
}

// Abort releases a prepared hold — or rolls back an already-committed
// one, which is how a coordinator undoes partial commits after a lease
// expired elsewhere. Unknown keys are a success: abort is the idempotent
// "make sure nothing is held" operation, safe to retry and safe to send
// after a sweep already reclaimed the lease.
func (l *Ledger) Abort(key string) error {
	l.mu.Lock()
	if name, done := l.committedKeys[key]; done {
		l.mu.Unlock()
		// Rolling back a committed key unwinds the admission itself: the
		// promise is dropped, not kept — the job never really ran here.
		l.assure.Drop(name)
		if err := l.Release(name); err != nil {
			return fmt.Errorf("server: abort %s rolling back commitment %s: %w", key, name, err)
		}
		l.aborts.Add(1)
		return nil
	}
	h, ok := l.holds[key]
	if !ok || h.pending {
		// Never prepared here, already swept, or the prepare is still in
		// flight (its lease will reclaim it): nothing to release.
		l.mu.Unlock()
		return nil
	}
	delete(l.holds, key)
	if l.heldNames[h.name] == key {
		delete(l.heldNames, h.name)
	}
	l.mu.Unlock()
	if err := l.releaseDemand(h.locs, h.demand); err != nil {
		return fmt.Errorf("server: aborting %s: %w", key, err)
	}
	l.aborts.Add(1)
	l.bumpEpoch("abort")
	return nil
}

// FreeView returns the merged free availability (Θ minus reservations
// and holds) of the given owned locations, together with the ledger
// clock the view was taken at. Coordinators plan against this view; the
// subsequent Prepare re-checks, so staleness costs a rejection, never an
// overcommit.
// The returned set must be treated as read-only: single-location
// requests (the common case) return the shard's cached free view
// directly — no clone, no allocation on the warm path — and multi-
// location requests share the untouched shards' profiles.
func (l *Ledger) FreeView(locs []resource.Location) (resource.Set, interval.Time, error) {
	if err := l.checkOwned(locs); err != nil {
		return resource.Set{}, 0, err
	}
	if len(locs) == 1 {
		sh := l.shardFor(locs[0])
		sh.mu.Lock()
		part, err := sh.freeView()
		sh.mu.Unlock()
		if err != nil {
			return resource.Set{}, 0, fmt.Errorf("server: shard %s invariant broken: %w", locs[0], err)
		}
		return part, l.Now(), nil
	}
	shards, unlock := l.lockedShards(locs)
	defer unlock()
	var free resource.Set
	for _, sh := range shards {
		part, err := sh.freeView()
		if err != nil {
			return resource.Set{}, 0, fmt.Errorf("server: shard %s invariant broken: %w", sh.loc, err)
		}
		free = free.PatchUnion(part)
	}
	return free, l.Now(), nil
}

// RemainingDemand returns a live commitment's not-yet-consumed demand
// and its info — the portion a migration re-homes elsewhere.
func (l *Ledger) RemainingDemand(name string) (resource.Set, CommitmentInfo, error) {
	now := l.Now()
	l.mu.Lock()
	c, ok := l.commits[name]
	if !ok || c.pending {
		l.mu.Unlock()
		return resource.Set{}, CommitmentInfo{}, fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	demand := c.plan.Demand().Clamp(interval.New(now, interval.Infinity))
	locs := make([]string, len(c.locs))
	for i, loc := range c.locs {
		locs[i] = string(loc)
	}
	info := CommitmentInfo{Name: c.name, Admitted: c.admitted, Deadline: c.deadline,
		Finish: c.plan.Finish, Locations: locs, Demand: demand.Compact()}
	l.mu.Unlock()
	return demand, info, nil
}

// NumHolds returns the number of live (non-pending) leased holds.
func (l *Ledger) NumHolds() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, h := range l.holds {
		if !h.pending {
			n++
		}
	}
	return n
}

// TwoPhaseCounters is the ledger's federation traffic digest.
type TwoPhaseCounters struct {
	Prepares        uint64 `json:"prepares"`
	Commits         uint64 `json:"commits"`
	Aborts          uint64 `json:"aborts"`
	LeasesExpired   uint64 `json:"leases_expired"`
	NotOwnedRejects uint64 `json:"not_owned_rejects"`
}

// TwoPhase returns the federation traffic counters.
func (l *Ledger) TwoPhase() TwoPhaseCounters {
	return TwoPhaseCounters{
		Prepares:        l.prepares.Load(),
		Commits:         l.commitCount.Load(),
		Aborts:          l.aborts.Load(),
		LeasesExpired:   l.leasesExpired.Load(),
		NotOwnedRejects: l.notOwned.Load(),
	}
}
