// Package server implements rotad, the ROTA admission-control daemon: a
// live resource ledger sharded by location, a bounded worker pool that
// runs Theorem-4 admission decisions against it, and an HTTP JSON API
// (admit / release / acquire / advance / query / stats).
//
// The ledger realizes the paper's committed path online: every admitted
// computation's witness plan is reserved against the shard(s) whose
// located types it consumes, so FreeResources-style reasoning — Θ minus
// the demand already spoken for — is a per-shard subtraction instead of a
// global scan. Admissions whose resource footprints touch disjoint
// location sets proceed concurrently; overlapping footprints serialize on
// the shards they share, locked in a canonical order so concurrent
// admissions cannot deadlock.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/obs/assure"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// shardOf maps a located type to the shard that owns it. Node-local
// resources live on their node's shard; directed links are owned by their
// source, matching how the cost model charges sends and migrations.
func shardOf(lt resource.LocatedType) resource.Location {
	return lt.Loc
}

// splitByShard partitions a resource set into per-shard subsets. Located
// types are disjoint across shards, so the split is exact: the union of
// the parts is the original set.
func splitByShard(s resource.Set) map[resource.Location]resource.Set {
	out := make(map[resource.Location]resource.Set)
	for _, term := range s.Terms() {
		loc := shardOf(term.Type)
		part := out[loc]
		part.Add(term)
		out[loc] = part
	}
	return out
}

// shard is one location's slice of the live ledger. Both sets are kept
// trimmed to ≥ now: theta is the raw future availability, reserved the
// union of the remaining demands of every commitment touching this shard.
// The shard invariant — theta dominates reserved — is exactly "the sum of
// reserved plans never exceeds Θ", and holding it is what makes every
// admitted deadline assured on the committed path.
type shard struct {
	mu       sync.Mutex
	loc      resource.Location
	theta    resource.Set
	reserved resource.Set
	now      interval.Time
	// free caches theta \ reserved between mutations: every query (and
	// every standing-watch re-evaluation after an epoch bump) needs the
	// free view, and recomputing the subtraction per evaluation dominates
	// query cost on a loaded shard. Valid iff freeOK; any write to theta,
	// reserved or now must go through an apply* helper (which patches the
	// cache incrementally) or call dirty. Shared read-only — callers
	// treat the returned set as immutable (patch ops share its profiles).
	free   resource.Set
	freeOK bool
	// ver counts mutations of theta/reserved/now. The optimistic admit
	// path snapshots (free, ver) under the lock, plans outside it, and
	// revalidates ver before reserving: an unchanged ver proves the free
	// view the plan was decided against is still current.
	ver uint64
	// hot points at the ledger's shared hot-path counters.
	hot *hotCounters
	// noPatch points at the ledger's legacy-mode flag: when set, every
	// mutation drops the cached free view (the pre-incremental behavior)
	// instead of patching it. Benchmark baseline only.
	noPatch *atomic.Bool
}

// freeView returns the shard's free availability (θ minus reserved),
// computing and caching it on the first call after a mutation. The
// caller must hold sh.mu and must not mutate the returned set in place.
func (sh *shard) freeView() (resource.Set, error) {
	if sh.freeOK {
		return sh.free, nil
	}
	part, err := sh.theta.Subtract(sh.reserved)
	if err != nil {
		return resource.Set{}, err
	}
	sh.free, sh.freeOK = part, true
	if sh.hot != nil {
		sh.hot.freeRecomputes.Add(1)
	}
	return part, nil
}

// dirty drops the cached free view and bumps the mutation version. The
// caller must hold sh.mu. The rare cold paths (import) still use it; the
// hot paths patch the cache through the apply* helpers instead.
func (sh *shard) dirty() {
	sh.free, sh.freeOK = resource.Set{}, false
	sh.ver++
}

// legacyDirty drops the cache instead of patching when the ledger runs
// in the pre-incremental recompute mode (the benchmark baseline), and
// reports whether it did. The caller must hold sh.mu and must not have
// bumped ver yet (dirty does).
func (sh *shard) legacyDirty() bool {
	if sh.noPatch == nil || !sh.noPatch.Load() {
		return false
	}
	sh.dirty()
	return true
}

// patched records an incremental free-view patch (counter only).
func (sh *shard) patched() {
	if sh.hot != nil {
		sh.hot.freePatches.Add(1)
	}
}

// applyReserve adds part to the shard's reservations, patching the
// cached free view instead of dropping it: free′ = free ∖ part, exact
// because the profiles are pointwise-linear. The caller must hold sh.mu
// and must already have verified the part fits (free dominates part), so
// the subtraction is defined; a failed patch falls back to a recompute
// rather than ever serving a wrong cache.
func (sh *shard) applyReserve(part resource.Set) {
	sh.reserved.AddSet(part)
	if sh.legacyDirty() {
		return
	}
	sh.ver++
	if !sh.freeOK {
		return
	}
	f, err := sh.free.PatchSubtract(part)
	if err != nil {
		sh.dirty()
		return
	}
	sh.free = f
	sh.patched()
}

// applyRelease removes part from the shard's reservations, patching the
// cached free view (free′ = free ∪ part). The caller must hold sh.mu;
// part must be dominated by reserved or the shard is inconsistent.
func (sh *shard) applyRelease(part resource.Set) error {
	freed, err := sh.reserved.PatchSubtract(part)
	if err != nil {
		return err
	}
	sh.reserved = freed
	if sh.legacyDirty() {
		return nil
	}
	sh.ver++
	if sh.freeOK {
		sh.free = sh.free.PatchUnion(part)
		sh.patched()
	}
	return nil
}

// applyAcquire merges newly joined availability into θ, patching the
// cached free view (free′ = free ∪ part). The caller must hold sh.mu.
func (sh *shard) applyAcquire(part resource.Set) {
	sh.theta.AddSet(part)
	if sh.legacyDirty() {
		return
	}
	sh.ver++
	if sh.freeOK {
		sh.free = sh.free.PatchUnion(part)
		sh.patched()
	}
}

// applyTrim advances the shard clock, trimming θ, reserved and the
// cached free view ((θ∖r) clamped = θ clamped ∖ r clamped, pointwise).
// The caller must hold sh.mu.
func (sh *shard) applyTrim(to interval.Time) {
	if to <= sh.now {
		return
	}
	sh.theta.TrimBefore(to)
	sh.reserved.TrimBefore(to)
	sh.now = to
	if sh.legacyDirty() {
		return
	}
	sh.ver++
	if sh.freeOK {
		sh.free = sh.free.TrimmedBefore(to)
		sh.patched()
	}
}

// commitment is one admitted computation in the live ledger.
type commitment struct {
	name     string
	locs     []resource.Location // sorted resource footprint
	plan     schedule.Plan
	deadline interval.Time
	admitted interval.Time
	pending  bool   // claimed but mid-decision
	key      string // two-phase idempotency key, "" for direct admits
}

// Ledger is the daemon's live state: location shards plus an index of
// admitted commitments and leased two-phase holds. All methods are safe
// for concurrent use.
type Ledger struct {
	mu      sync.Mutex // guards shards/commits/holds maps (not shard contents)
	shards  map[resource.Location]*shard
	commits map[string]*commitment
	// holds are prepared-but-uncommitted reservations keyed by their
	// idempotency key; committedKeys remembers which keys were promoted
	// so a retried commit is a no-op. heldNames indexes hold names →
	// prepare key so the duplicate-name guard on every admit is a map
	// lookup, not an O(holds) scan under the global mutex; it is
	// maintained at every point a hold is created or removed.
	holds         map[string]*hold
	committedKeys map[string]string // key -> commitment name
	heldNames     map[string]string // hold name -> prepare key
	// owned restricts this ledger to a subset of locations (cluster
	// mode); nil means the node owns every location it hears about.
	owned map[resource.Location]bool
	now   atomic.Int64
	// obs receives ledger-level events (lease expiry) that have no
	// originating request to log under; nil-safe.
	obs *obs.Observer
	// spans records per-phase admission spans (plan search, reservation);
	// nil-safe — a nil store disables span tracing.
	spans *span.Store
	// assure tracks the deadline promise behind every admitted job from
	// reservation to terminal outcome; nil-safe — nil disables tracking.
	assure *assure.Ledger
	// flight freezes a forensic snapshot when an anomaly trigger fires
	// (promise violation, audit mismatch); nil-safe.
	flight *flightrec.Recorder

	// Two-phase traffic counters, surfaced in /v1/stats.
	prepares      atomic.Uint64
	commitCount   atomic.Uint64
	aborts        atomic.Uint64
	leasesExpired atomic.Uint64
	notOwned      atomic.Uint64

	// epoch counts ledger state changes that can flip a query verdict:
	// reservations landing and leaving (admit, release, acquire,
	// prepare, commit, abort) and clock advances (which also sweep
	// expired leases). The epoch notifier fans a bump out to the
	// standing-query manager.
	epoch  atomic.Uint64
	notify atomic.Value // func(epoch uint64, reason string)

	// hot counts hot-path events (batches, optimistic retries, free-view
	// patches vs recomputes), surfaced in /v1/stats.
	hot hotCounters

	// Admission hot-path tuning (SetAdmitTuning, set before traffic):
	// admitRetries bounds the optimistic plan/validate attempts before
	// falling back to planning under the shard locks; noBatch disables
	// the per-footprint combining stage; pessimistic routes every admit
	// through the legacy plan-under-locks path (the benchmark baseline).
	admitRetries int
	noBatch      bool
	pessimistic  bool
	// noPatch restores the pre-incremental free-view behavior (every
	// mutation drops the cache; admission re-derives and clones the
	// free view like the legacy path did). Benchmark baseline only —
	// combined with pessimistic it reproduces the pre-PR admit path.
	noPatch atomic.Bool

	// groups are the per-footprint admission batching queues (see
	// admit_hot.go); batchMu guards the map and every group's members.
	batchMu sync.Mutex
	groups  map[string]*admitGroup

	// testPostPlanHook, when non-nil, runs between the optimistic plan
	// phase and validation — tests inject a conflicting mutation here to
	// exercise the retry path deterministically. Never set in production.
	testPostPlanHook func()
}

// NewLedger builds a ledger from the initial availability Θ at time now.
func NewLedger(theta resource.Set, now interval.Time) *Ledger {
	l := &Ledger{
		shards:        make(map[resource.Location]*shard),
		commits:       make(map[string]*commitment),
		holds:         make(map[string]*hold),
		committedKeys: make(map[string]string),
		heldNames:     make(map[string]string),
		groups:        make(map[string]*admitGroup),
		admitRetries:  defaultAdmitRetries,
	}
	l.now.Store(now)
	trimmed := theta.Clone()
	trimmed.TrimBefore(now)
	for loc, part := range splitByShard(trimmed) {
		l.shards[loc] = &shard{loc: loc, theta: part, now: now, hot: &l.hot, noPatch: &l.noPatch}
	}
	return l
}

// SetAdmitTuning configures the admission hot path: retries bounds the
// optimistic plan/validate attempts (≤0 keeps the default), noBatch
// disables per-footprint batching, and pessimistic restores the legacy
// plan-under-locks path (the benchmark baseline). Intended to be called
// once, before the ledger serves traffic.
func (l *Ledger) SetAdmitTuning(retries int, noBatch, pessimistic bool) {
	if retries > 0 {
		l.admitRetries = retries
	}
	l.noBatch = noBatch
	l.pessimistic = pessimistic
}

// SetObserver attaches the observability sink for ledger-level events.
// Intended to be called once, before the ledger serves traffic.
func (l *Ledger) SetObserver(o *obs.Observer) {
	l.obs = o
}

// SetSpanStore attaches the span store for per-phase admission spans.
// Intended to be called once, before the ledger serves traffic.
func (l *Ledger) SetSpanStore(st *span.Store) {
	l.spans = st
}

// SetEpochNotifier attaches the callback invoked after every epoch
// bump. Intended to be called once, before the ledger serves traffic.
// The callback must not block: it runs on the mutating goroutine.
func (l *Ledger) SetEpochNotifier(fn func(epoch uint64, reason string)) {
	l.notify.Store(fn)
}

// SetAssure attaches the deadline-assurance promise ledger. Intended to
// be called once, before the ledger serves traffic; nil disables
// promise tracking.
func (l *Ledger) SetAssure(a *assure.Ledger) {
	l.assure = a
}

// SetFlightRecorder attaches the anomaly flight recorder. Intended to
// be called once, before the ledger serves traffic; nil disables
// snapshot capture.
func (l *Ledger) SetFlightRecorder(r *flightrec.Recorder) {
	l.flight = r
}

// Epoch returns the ledger's change epoch. Two reads returning the same
// value bracket a window with no verdict-relevant state change.
func (l *Ledger) Epoch() uint64 {
	return l.epoch.Load()
}

// bumpEpoch advances the epoch after a verdict-relevant state change
// and notifies the standing-query manager, tagging the bump with the
// mutation kind (reserve, release, acquire, advance, prepare, commit,
// abort).
func (l *Ledger) bumpEpoch(reason string) {
	e := l.epoch.Add(1)
	if fn, ok := l.notify.Load().(func(uint64, string)); ok && fn != nil {
		fn(e, reason)
	}
}

// Now returns the ledger clock.
func (l *Ledger) Now() interval.Time {
	return l.now.Load()
}

// NumShards returns the number of location shards.
func (l *Ledger) NumShards() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.shards)
}

// NumCommitments returns the number of live (non-pending) commitments.
func (l *Ledger) NumCommitments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, c := range l.commits {
		if !c.pending {
			n++
		}
	}
	return n
}

// lockedShards returns the shards for the given locations, creating any
// that do not exist yet, locked in canonical (sorted) order. The caller
// must call the returned unlock exactly once.
func (l *Ledger) lockedShards(locs []resource.Location) ([]*shard, func()) {
	sorted := append([]resource.Location(nil), locs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	l.mu.Lock()
	shards := make([]*shard, 0, len(sorted))
	var prev resource.Location
	for i, loc := range sorted {
		if i > 0 && loc == prev {
			continue
		}
		prev = loc
		sh, ok := l.shards[loc]
		if !ok {
			sh = &shard{loc: loc, now: l.now.Load(), hot: &l.hot, noPatch: &l.noPatch}
			l.shards[loc] = sh
		}
		shards = append(shards, sh)
	}
	l.mu.Unlock()
	for _, sh := range shards {
		sh.mu.Lock()
	}
	return shards, func() {
		for i := len(shards) - 1; i >= 0; i-- {
			shards[i].mu.Unlock()
		}
	}
}

// shardFor returns loc's shard, creating it if absent. Unlike
// lockedShards it does not lock the shard and allocates nothing on the
// hit path — the single-location fast path of the free-view fetch.
func (l *Ledger) shardFor(loc resource.Location) *shard {
	l.mu.Lock()
	sh, ok := l.shards[loc]
	if !ok {
		sh = &shard{loc: loc, now: l.now.Load(), hot: &l.hot, noPatch: &l.noPatch}
		l.shards[loc] = sh
	}
	l.mu.Unlock()
	return sh
}

// footprint returns the sorted locations a requirement consumes from.
func footprint(req compute.Concurrent) []resource.Location {
	seen := make(map[resource.Location]bool)
	for _, actor := range req.Actors {
		for _, ph := range actor.Phases {
			for lt := range ph.Amounts {
				seen[shardOf(lt)] = true
			}
		}
	}
	locs := make([]resource.Location, 0, len(seen))
	for loc := range seen {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// Ledger errors surfaced to API callers.
var (
	// ErrDuplicate is returned for an admit of a name already admitted
	// (or currently being decided).
	ErrDuplicate = errors.New("server: computation already admitted")
	// ErrUnknown is returned for a release of a name not in the ledger.
	ErrUnknown = errors.New("server: unknown computation")
	// ErrPlanless is returned when a policy admits without a witness
	// plan; the live ledger cannot reserve what was never planned.
	ErrPlanless = errors.New("server: policy admitted without a witness plan; rotad requires a plan-producing policy")
	// ErrClockBackward is returned by Advance for a non-monotonic clock.
	ErrClockBackward = errors.New("server: clock may not move backward")
	// ErrNotOwned is returned when a request names a location this node
	// does not own (cluster mode only).
	ErrNotOwned = errors.New("server: location not owned by this node")
	// ErrOvercommit is returned by Prepare when holding the demand would
	// break the shard invariant — a capacity rejection, not a fault.
	ErrOvercommit = errors.New("server: demand exceeds free availability")
	// ErrUnknownHold is returned by Commit for a key never prepared here
	// (or already swept by lease expiry).
	ErrUnknownHold = errors.New("server: unknown or expired prepare key")
	// ErrLeaseExpired is returned by Commit when the hold's lease ran out
	// before the commit arrived; the sweep will reclaim it.
	ErrLeaseExpired = errors.New("server: prepare lease expired")
)

// checkOwned verifies every location is owned by this node, counting
// rejections. A nil owned set (standalone mode) accepts everything. The
// owned set mutates at runtime (ownership handoff, standby promotion),
// so reads go under l.mu.
func (l *Ledger) checkOwned(locs []resource.Location) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkOwnedLocked(locs)
}

// checkOwnedLocked is checkOwned for callers already holding l.mu.
func (l *Ledger) checkOwnedLocked(locs []resource.Location) error {
	if l.owned == nil {
		return nil
	}
	for _, loc := range locs {
		if !l.owned[loc] {
			l.notOwned.Add(1)
			return fmt.Errorf("%w: %s", ErrNotOwned, loc)
		}
	}
	return nil
}

// AddOwned extends the owned set at runtime (ownership handoff in). A
// no-op in standalone mode (nil owned accepts everything already).
func (l *Ledger) AddOwned(locs []resource.Location) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owned == nil {
		return
	}
	for _, loc := range locs {
		l.owned[loc] = true
	}
}

// Owned reports whether this node currently owns loc.
func (l *Ledger) Owned(loc resource.Location) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.owned == nil || l.owned[loc]
}

// OwnedLocations lists the locations this node currently owns, sorted.
// Nil in standalone mode (ownership is unrestricted there).
func (l *Ledger) OwnedLocations() []resource.Location {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owned == nil {
		return nil
	}
	out := make([]resource.Location, 0, len(l.owned))
	for loc := range l.owned {
		out = append(out, loc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Admit claims the job's name, locks the shards of its resource
// footprint, runs the policy against the merged free availability, and on
// admission reserves the witness plan shard by shard. The returned
// Decision has Elapsed stamped by admission.Decide (the uniform
// measurement point). A non-nil error means the request never reached a
// verdict (duplicate name, plan-less policy); rejections are not errors.
func (l *Ledger) Admit(policy admission.Policy, job workload.Job) (admission.Decision, error) {
	return l.AdmitCtx(context.Background(), policy, job)
}

// AdmitCtx is Admit with span tracing: the witness-plan search and the
// reservation run as child spans of whatever span the context carries
// (the server's admit span), so per-phase latency is attributable.
//
// The decision itself runs on the optimistic hot path (admit_hot.go):
// the plan search happens against an immutable free-view snapshot taken
// outside the shard locks, concurrent admits sharing a footprint are
// batched, and the reservation revalidates the snapshot version (or the
// plan's fit) before committing — so plan search never serializes a
// shard. SetAdmitTuning(pessimistic) restores the legacy
// plan-under-locks path.
func (l *Ledger) AdmitCtx(ctx context.Context, policy admission.Policy, job workload.Job) (admission.Decision, error) {
	now := l.Now()
	if now >= job.Dist.Deadline {
		return admission.Decision{Reason: fmt.Sprintf("deadline %d already passed at t=%d", job.Dist.Deadline, now)}, nil
	}

	// Claim the name before deciding so two racing admits of the same
	// computation cannot both reserve. Held (mid-2PC) names are indexed
	// in heldNames, so the guard is two map lookups, not a scan.
	claim := &commitment{name: job.Dist.Name, pending: true}
	l.mu.Lock()
	if _, exists := l.commits[job.Dist.Name]; exists {
		l.mu.Unlock()
		return admission.Decision{}, fmt.Errorf("%w: %s", ErrDuplicate, job.Dist.Name)
	}
	if key, held := l.heldNames[job.Dist.Name]; held {
		l.mu.Unlock()
		return admission.Decision{}, fmt.Errorf("%w: %s (held by prepare %s)", ErrDuplicate, job.Dist.Name, key)
	}
	l.commits[job.Dist.Name] = claim
	l.mu.Unlock()

	locs := footprint(core.ConcurrentAt(job.Dist, now))
	if err := l.checkOwned(locs); err != nil {
		l.mu.Lock()
		delete(l.commits, job.Dist.Name)
		l.mu.Unlock()
		return admission.Decision{}, err
	}
	return l.admitHot(ctx, policy, job, now, locs, claim)
}

// Release removes a commitment and returns its not-yet-consumed demand to
// the free pool (completion, cancellation, or an executor-side abort).
func (l *Ledger) Release(name string) error {
	return l.release(name, false)
}

// ReleaseTransferred removes a commitment whose ownership moved to
// another node (migration): the local demand is freed like Release, but
// the deadline promise is marked transferred — the receiving node now
// reports its outcome — instead of kept.
func (l *Ledger) ReleaseTransferred(name string) error {
	return l.release(name, true)
}

func (l *Ledger) release(name string, transferred bool) error {
	l.mu.Lock()
	c, ok := l.commits[name]
	if !ok || c.pending {
		l.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	delete(l.commits, name)
	if c.key != "" {
		delete(l.committedKeys, c.key)
	}
	locs, plan := c.locs, c.plan
	l.mu.Unlock()

	if err := l.releaseDemand(locs, plan.Demand()); err != nil {
		return fmt.Errorf("server: releasing %s: %w", name, err)
	}
	l.bumpEpoch("release")
	if transferred {
		l.assure.Transfer(name)
	} else if state := l.assure.Release(name, l.Now()); state == assure.StateViolated {
		l.noteViolations([]string{name})
	}
	return nil
}

// noteViolations records the forensic trail of promise violations: a
// KindAssure span on the timeline and a flight-recorder freeze. Healthy
// paths cannot reach it (admission bounds every plan finish by its
// deadline), so firing here always marks a bug or unmodeled failure.
func (l *Ledger) noteViolations(violated []string) {
	if len(violated) == 0 {
		return
	}
	_, sp := l.spans.Start(context.Background(), span.KindAssure)
	sp.Attr("violated", len(violated))
	if len(violated) == 1 {
		sp.Attr("job", violated[0])
	}
	sp.SetStatus("violated")
	sp.End()
	l.obs.Log("assure.violated", "jobs", strings.Join(violated, ","))
	l.flight.Trigger(flightrec.TriggerViolation, strings.Join(violated, ","))
}

// releaseDemand returns a reservation's not-yet-consumed portion to the
// free pool, shard by shard. Only the un-elapsed part is still reserved;
// the consumed prefix was trimmed away as the clock advanced.
func (l *Ledger) releaseDemand(locs []resource.Location, demand resource.Set) error {
	shards, unlock := l.lockedShards(locs)
	defer unlock()
	parts := splitByShard(demand)
	for _, sh := range shards {
		part, ok := parts[sh.loc]
		if !ok {
			continue
		}
		remaining := part.Clamp(interval.New(sh.now, interval.Infinity))
		if err := sh.applyRelease(remaining); err != nil {
			return fmt.Errorf("server: shard %s reservation inconsistent: %w", sh.loc, err)
		}
	}
	return nil
}

// Acquire merges newly joined availability into the ledger (the paper's
// resource acquisition rule). Availability before the current time is
// discarded.
func (l *Ledger) Acquire(theta resource.Set) {
	now := l.Now()
	usable := theta.Clone()
	usable.TrimBefore(now)
	for loc, part := range splitByShard(usable) {
		shards, unlock := l.lockedShards([]resource.Location{loc})
		sh := shards[0]
		part.TrimBefore(sh.now) // the shard clock may have advanced since the read above
		sh.applyAcquire(part)
		unlock()
	}
	l.bumpEpoch("acquire")
}

// Advance moves the ledger clock to 'to', expiring availability and
// reservation prefixes behind it and completing commitments whose plans
// have finished. It returns the names of completed commitments.
func (l *Ledger) Advance(to interval.Time) ([]string, error) {
	for {
		cur := l.now.Load()
		if to < cur {
			return nil, fmt.Errorf("%w: at t=%d, asked for t=%d", ErrClockBackward, cur, to)
		}
		if l.now.CompareAndSwap(cur, to) {
			break
		}
	}

	l.mu.Lock()
	shards := make([]*shard, 0, len(l.shards))
	for _, sh := range l.shards {
		shards = append(shards, sh)
	}
	var done []string
	for name, c := range l.commits {
		if !c.pending && c.plan.Finish <= to {
			done = append(done, name)
			delete(l.commits, name)
			if c.key != "" {
				delete(l.committedKeys, c.key)
			}
		}
	}
	// Lease-expiry sweep: prepares whose lease ran out without a commit
	// or abort (a crashed coordinator) are reclaimed here, so no lease
	// outlives its TTL past this Advance.
	var expired []*hold
	for key, h := range l.holds {
		if !h.pending && h.expiry <= to {
			expired = append(expired, h)
			delete(l.holds, key)
			if l.heldNames[h.name] == key {
				delete(l.heldNames, h.name)
			}
		}
	}
	// Snapshot the still-live commitment names for the promise sweep
	// below: a promise whose deadline passed is `violated` when its job
	// is still in this set and `orphaned` when nobody holds it.
	var liveJobs map[string]bool
	if l.assure != nil {
		liveJobs = make(map[string]bool, len(l.commits))
		for name := range l.commits {
			liveJobs[name] = true
		}
	}
	l.mu.Unlock()

	for _, sh := range shards {
		sh.mu.Lock()
		sh.applyTrim(to)
		sh.mu.Unlock()
	}
	for _, h := range expired {
		if err := l.releaseDemand(h.locs, h.demand); err != nil {
			return nil, fmt.Errorf("server: sweeping expired lease %s: %w", h.key, err)
		}
		l.leasesExpired.Add(1)
		l.obs.Log("ledger.lease_expired",
			"key", h.key, "job", h.name, "expiry", h.expiry, "now", to)
	}
	// One bump covers the whole advance: the trim, the completions, and
	// the lease sweep land in the same epoch.
	l.bumpEpoch("advance")
	sort.Strings(done)
	if l.assure != nil {
		// Completions first — a commitment finishing inside this advance
		// kept its promise even if its deadline is also behind `to`.
		for _, name := range done {
			l.assure.Complete(name, to)
		}
		violated, orphaned := l.assure.Sweep(to, func(job string) bool { return liveJobs[job] })
		if len(orphaned) > 0 {
			_, sp := l.spans.Start(context.Background(), span.KindAssure)
			sp.Attr("orphaned", len(orphaned))
			sp.SetStatus("orphaned")
			sp.End()
			l.obs.Log("assure.orphaned", "jobs", strings.Join(orphaned, ","), "now", to)
		}
		l.noteViolations(violated)
	}
	return done, nil
}

// ShardInfo is one shard's slice of a ledger snapshot.
type ShardInfo struct {
	Location resource.Location `json:"location"`
	// Theta and Reserved are the compact text renderings of the shard's
	// availability and live reservations.
	Theta        string `json:"theta"`
	Reserved     string `json:"reserved"`
	ThetaTerms   int    `json:"theta_terms"`
	ReservedTerm int    `json:"reserved_terms"`
}

// CommitmentInfo is one commitment's slice of a ledger snapshot. Demand
// is the compact rendering of the not-yet-consumed reserved demand —
// what a feasible() query would have to re-place, and what a cluster
// peer needs to resolve a named query ref remotely.
type CommitmentInfo struct {
	Name      string        `json:"name"`
	Admitted  interval.Time `json:"admitted"`
	Deadline  interval.Time `json:"deadline"`
	Finish    interval.Time `json:"finish"`
	Locations []string      `json:"locations"`
	Demand    string        `json:"demand,omitempty"`
}

// HoldInfo is one leased two-phase hold in a ledger snapshot.
type HoldInfo struct {
	Key      string        `json:"key"`
	Name     string        `json:"name"`
	Expiry   interval.Time `json:"lease_expiry"`
	Finish   interval.Time `json:"finish"`
	Demand   string        `json:"demand"`
	Location []string      `json:"locations"`
}

// Snapshot is a consistent-enough view of the ledger for the query API:
// each shard is read under its own lock.
type Snapshot struct {
	Now         interval.Time    `json:"now"`
	Shards      []ShardInfo      `json:"shards"`
	Commitments []CommitmentInfo `json:"commitments"`
	Holds       []HoldInfo       `json:"holds,omitempty"`
}

// Snapshot renders the ledger state.
func (l *Ledger) Snapshot() Snapshot {
	snap := Snapshot{Now: l.Now()}
	l.mu.Lock()
	shards := make([]*shard, 0, len(l.shards))
	for _, sh := range l.shards {
		shards = append(shards, sh)
	}
	for _, h := range l.holds {
		if h.pending {
			continue
		}
		locs := make([]string, len(h.locs))
		for i, loc := range h.locs {
			locs[i] = string(loc)
		}
		snap.Holds = append(snap.Holds, HoldInfo{
			Key:      h.key,
			Name:     h.name,
			Expiry:   h.expiry,
			Finish:   h.finish,
			Demand:   h.demand.Compact(),
			Location: locs,
		})
	}
	for _, c := range l.commits {
		if c.pending {
			continue
		}
		locs := make([]string, len(c.locs))
		for i, loc := range c.locs {
			locs[i] = string(loc)
		}
		snap.Commitments = append(snap.Commitments, CommitmentInfo{
			Name:      c.name,
			Admitted:  c.admitted,
			Deadline:  c.deadline,
			Finish:    c.plan.Finish,
			Locations: locs,
		})
	}
	l.mu.Unlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].loc < shards[j].loc })
	for _, sh := range shards {
		sh.mu.Lock()
		snap.Shards = append(snap.Shards, ShardInfo{
			Location:     sh.loc,
			Theta:        sh.theta.Compact(),
			Reserved:     sh.reserved.Compact(),
			ThetaTerms:   sh.theta.NumTerms(),
			ReservedTerm: sh.reserved.NumTerms(),
		})
		sh.mu.Unlock()
	}
	sort.Slice(snap.Commitments, func(i, j int) bool { return snap.Commitments[i].Name < snap.Commitments[j].Name })
	sort.Slice(snap.Holds, func(i, j int) bool { return snap.Holds[i].Key < snap.Holds[j].Key })
	return snap
}

// Commitment reports a live commitment by name.
func (l *Ledger) Commitment(name string) (CommitmentInfo, bool) {
	now := l.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.commits[name]
	if !ok || c.pending {
		return CommitmentInfo{}, false
	}
	locs := make([]string, len(c.locs))
	for i, loc := range c.locs {
		locs[i] = string(loc)
	}
	remaining := c.plan.Demand().Clamp(interval.New(now, interval.Infinity))
	return CommitmentInfo{
		Name:      c.name,
		Admitted:  c.admitted,
		Deadline:  c.deadline,
		Finish:    c.plan.Finish,
		Locations: locs,
		Demand:    remaining.Compact(),
	}, true
}

// Audit verifies the ledger invariants, intended for tests and debugging
// on a quiescent ledger: on every shard, (1) the recorded reservation
// equals the union of the live commitments' remaining demands plus the
// leased (prepared) holds' demands, (2) Θ dominates it — no shard is
// overcommitted even counting uncommitted holds — and (3) no hold's
// lease has already expired (Advance must have swept it). A failed
// audit freezes a flight-recorder snapshot: the invariant break is the
// anomaly whose run-up evidence must not scroll away.
func (l *Ledger) Audit() error {
	err := l.audit()
	if err != nil {
		l.obs.Log("assure.audit_mismatch", "error", err.Error())
		l.flight.Trigger(flightrec.TriggerAudit, err.Error())
	}
	return err
}

func (l *Ledger) audit() error {
	now := l.Now()
	l.mu.Lock()
	commits := make([]*commitment, 0, len(l.commits))
	for _, c := range l.commits {
		if !c.pending {
			commits = append(commits, c)
		}
	}
	holds := make([]*hold, 0, len(l.holds))
	for _, h := range l.holds {
		if !h.pending {
			holds = append(holds, h)
		}
	}
	shards := make([]*shard, 0, len(l.shards))
	for _, sh := range l.shards {
		shards = append(shards, sh)
	}
	l.mu.Unlock()

	expected := make(map[resource.Location]resource.Set)
	for _, c := range commits {
		for loc, part := range splitByShard(c.plan.Demand()) {
			expected[loc] = expected[loc].Union(part)
		}
	}
	for _, h := range holds {
		if h.expiry <= now {
			return fmt.Errorf("server: hold %s (%s) outlived its lease: expired at t=%d, now t=%d",
				h.key, h.name, h.expiry, now)
		}
		for loc, part := range splitByShard(h.demand) {
			expected[loc] = expected[loc].Union(part)
		}
	}
	for _, sh := range shards {
		sh.mu.Lock()
		want := expected[sh.loc].Clamp(interval.New(sh.now, interval.Infinity))
		ok := sh.reserved.Equal(want)
		dominated := sh.theta.Dominates(sh.reserved)
		theta, reserved := sh.theta.Compact(), sh.reserved.Compact()
		sh.mu.Unlock()
		if !ok {
			return fmt.Errorf("server: shard %s reservation drift: ledger %q, commitments %q", sh.loc, reserved, want.Compact())
		}
		if !dominated {
			return fmt.Errorf("server: shard %s overcommitted: theta %q does not dominate reserved %q", sh.loc, theta, reserved)
		}
	}
	return nil
}
