package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/workload"
)

// LoadConfig parameterizes a load run against a live rotad instance.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BaseURLs, when set, spreads requests round-robin across several
	// daemons (a cluster's nodes); BaseURL is ignored. Each admitted
	// job is released through the same node that admitted it.
	BaseURLs []string
	// Jobs is the synthetic admission stream. When Requests exceeds
	// len(Jobs), jobs are replayed with fresh unique names.
	Jobs []workload.Job
	// Requests is the total number of admit requests; default len(Jobs).
	Requests int
	// Clients is the number of concurrent clients; default 4.
	Clients int
	// ReleaseAdmitted, when true (the load generator's default path),
	// releases every admitted job right away so the ledger reaches a
	// steady state instead of filling once and rejecting forever.
	ReleaseAdmitted bool
	// Timeout bounds each HTTP request; default 10s.
	Timeout time.Duration
	// SlowLog, when positive, keeps the N slowest admit requests with
	// their server-assigned trace IDs in LoadReport.Slow — the handle a
	// client needs to pull the span tree behind a tail-latency outlier.
	SlowLog int
	// QueryFrac, in [0,1], replaces that fraction of the request stream
	// with one-shot temporal queries (alternating holds over the job's
	// footprint and feasible over its name) — mixed admit/query traffic
	// against the same ledger.
	QueryFrac float64
}

// SlowRequest is one entry of the client-side slow log: enough to go
// from "this request was slow" to `rotatrace -spans -trace <id>`.
type SlowRequest struct {
	Trace     string
	Job       string
	Admit     bool
	LatencyUS int64
	// SlackAtAdmit is deadline minus witness-plan finish in ledger ticks
	// (admitted requests only): how close to the wire the Theorem-4 check
	// let this job in.
	SlackAtAdmit int64
}

// LoadReport aggregates a load run. Latencies are client-observed
// (network + queue + decision) in microseconds.
type LoadReport struct {
	Requests int
	Admitted int
	Rejected int
	Errors   int
	Released int
	// Queries counts the requests served as one-shot temporal queries
	// (QueryFrac of the stream); QueryHolds of them held.
	Queries    int
	QueryHolds int
	// Redirects counts 421 ownership redirects followed: the location a
	// request targeted had moved since the client last looked. Each one
	// is a retry within the same request, so the Admitted + Rejected +
	// Errors + Queries = Requests accounting is unaffected.
	Redirects int
	// ReleaseErrors counts admitted jobs whose follow-up release failed.
	// Kept apart from Errors: the admission itself succeeded and is
	// already counted, so folding these into Errors would double-count
	// the request (Admitted + Rejected + Errors + Queries == Requests
	// must hold exactly).
	ReleaseErrors int
	// FirstError is the first failure observed — a request failure or a
	// failed release — kept as a sample to diagnose what the counts are
	// hiding. Empty only when Errors and ReleaseErrors are both zero.
	FirstError string

	Duration   time.Duration
	Throughput float64 // requests per second

	MeanUS float64
	P50US  float64
	P90US  float64
	P99US  float64
	MaxUS  float64

	// Query latency digest, client-observed, microseconds.
	QueryMeanUS float64
	QueryP50US  float64
	QueryP99US  float64

	// Slow is the slow log: the SlowLog slowest requests, slowest first.
	Slow []SlowRequest
	// UnexplainedRejects counts rejections that arrived without a
	// provenance object — each one is a daemon-side observability bug.
	UnexplainedRejects int
}

// RunLoad drives the admission stream at the daemon from Clients
// concurrent clients and reports throughput and latency percentiles.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	urls := cfg.BaseURLs
	if len(urls) == 0 && cfg.BaseURL != "" {
		urls = []string{cfg.BaseURL}
	}
	if len(urls) == 0 {
		return LoadReport{}, fmt.Errorf("server: load needs a base URL")
	}
	if len(cfg.Jobs) == 0 {
		return LoadReport{}, fmt.Errorf("server: load needs jobs")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = len(cfg.Jobs)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}

	client := &http.Client{Timeout: cfg.Timeout}
	hist := metrics.NewHistogram()
	qhist := metrics.NewHistogram()
	var next, admitted, rejected, errs, released, releaseErrs, unexplained, queries, queryHolds, redirects atomic.Int64
	// firstErr keeps the first failure as a plain string: atomic.Value
	// panics when concurrent CompareAndSwap calls race with different
	// concrete error types, and under fault injection they do.
	var firstErr atomic.Value
	// owners caches ownership learned from 421 redirects (location ->
	// base URL), shared by all clients so one redirect reroutes the
	// whole run after a rebalance.
	var owners sync.Map
	// Deterministic admit/query interleaving: request i is a query iff
	// i mod 100 falls below the rounded percentage, so reruns mix
	// identically and the accounting stays exact.
	queryPct := int(cfg.QueryFrac*100 + 0.5)

	// The slow log is a bounded slice kept sorted slowest-first; with
	// SlowLog entries at most, re-sorting per insert is cheap.
	var slowMu sync.Mutex
	var slow []SlowRequest
	noteSlow := func(sr SlowRequest) {
		if cfg.SlowLog <= 0 {
			return
		}
		slowMu.Lock()
		defer slowMu.Unlock()
		if len(slow) >= cfg.SlowLog && sr.LatencyUS <= slow[len(slow)-1].LatencyUS {
			return
		}
		slow = append(slow, sr)
		sort.Slice(slow, func(i, j int) bool { return slow[i].LatencyUS > slow[j].LatencyUS })
		if len(slow) > cfg.SlowLog {
			slow = slow[:cfg.SlowLog]
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests || ctx.Err() != nil {
					return
				}
				job := cfg.Jobs[i%len(cfg.Jobs)]
				if i >= len(cfg.Jobs) {
					// Replay round: fresh name, same shape.
					job.Dist.Name = fmt.Sprintf("%s#r%d", job.Dist.Name, i/len(cfg.Jobs))
				}
				url := urls[i%len(urls)]
				if queryPct > 0 && i%100 < queryPct {
					q := loadQuery(i, job)
					reqStart := time.Now()
					qr, err := getQueryText(ctx, client, url, q)
					qhist.Observe(float64(time.Since(reqStart).Microseconds()))
					if err != nil {
						errs.Add(1)
						firstErr.CompareAndSwap(nil, err.Error())
						continue
					}
					queries.Add(1)
					if qr.Holds {
						queryHolds.Add(1)
					}
					continue
				}
				reqStart := time.Now()
				resp, trace, admitURL, err := admitFollowingRedirects(ctx, client, url, job, &owners, &redirects)
				latencyUS := time.Since(reqStart).Microseconds()
				hist.Observe(float64(latencyUS))
				if err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, err.Error())
					continue
				}
				var slackAtAdmit int64
				if resp.Admit {
					slackAtAdmit = int64(resp.Deadline - resp.Finish)
				}
				noteSlow(SlowRequest{Trace: trace, Job: job.Dist.Name, Admit: resp.Admit,
					LatencyUS: latencyUS, SlackAtAdmit: slackAtAdmit})
				if !resp.Admit {
					rejected.Add(1)
					if resp.Provenance == nil {
						unexplained.Add(1)
					}
					continue
				}
				admitted.Add(1)
				if cfg.ReleaseAdmitted {
					if err := releaseFollowingRedirects(ctx, client, admitURL, job, &owners, &redirects); err != nil {
						releaseErrs.Add(1)
						firstErr.CompareAndSwap(nil, err.Error())
					} else {
						released.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := hist.Summary()
	qsum := qhist.Summary()
	report := LoadReport{
		Requests:      cfg.Requests,
		Admitted:      int(admitted.Load()),
		Rejected:      int(rejected.Load()),
		Errors:        int(errs.Load()),
		Released:      int(released.Load()),
		ReleaseErrors: int(releaseErrs.Load()),
		Queries:       int(queries.Load()),
		QueryHolds:    int(queryHolds.Load()),
		Redirects:     int(redirects.Load()),
		Duration:      elapsed,
		MeanUS:        sum.Mean,
		P50US:         sum.P50,
		P90US:         sum.P90,
		P99US:         sum.P99,
		MaxUS:         sum.Max,

		QueryMeanUS: qsum.Mean,
		QueryP50US:  qsum.P50,
		QueryP99US:  qsum.P99,

		Slow:               slow,
		UnexplainedRejects: int(unexplained.Load()),
	}
	if elapsed > 0 {
		report.Throughput = float64(cfg.Requests) / elapsed.Seconds()
	}
	if msg, ok := firstErr.Load().(string); ok {
		report.FirstError = msg
	}
	if err := ctx.Err(); err != nil {
		return report, err
	}
	if report.Admitted+report.Rejected+report.Errors+report.Queries != report.Requests {
		return report, fmt.Errorf("server: load accounting off: %d+%d+%d+%d != %d",
			report.Admitted, report.Rejected, report.Errors, report.Queries, report.Requests)
	}
	if msg, ok := firstErr.Load().(string); ok && report.Admitted+report.Rejected+report.Queries == 0 {
		// Nothing got through at all; surface why.
		return report, fmt.Errorf("server: load failed entirely: %s", msg)
	}
	return report, nil
}

// loadQuery derives a one-shot query from the job that would otherwise
// have been admitted: half probe the free view at the job's first
// footprint location, half ask whether a (possibly live) job of that
// name remains feasible.
func loadQuery(i int, job workload.Job) string {
	loc := "l1"
	if locs := footprint(core.ConcurrentAt(job.Dist, 0)); len(locs) > 0 {
		loc = string(locs[0])
	}
	if i%2 == 0 {
		return fmt.Sprintf("holds(%s, cpu>=1, next 50)", loc)
	}
	return fmt.Sprintf("feasible(%s)", job.Dist.Name)
}

// getQueryText evaluates one compact-form query via GET /v1/query?q=.
func getQueryText(ctx context.Context, client *http.Client, base, q string) (QueryResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/query?q="+neturl.QueryEscape(q), nil)
	if err != nil {
		return QueryResponse{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return QueryResponse{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return QueryResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return QueryResponse{}, fmt.Errorf("server: query %q returned %d: %s", q, resp.StatusCode, bytes.TrimSpace(data))
	}
	var out QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return QueryResponse{}, fmt.Errorf("server: query %q returned unparsable body: %w", q, err)
	}
	return out, nil
}

// redirectError carries a 421 Misdirected Request body up to the load
// loop: the location a request targeted has a new owner.
type redirectError struct {
	resp membership.RedirectResponse
}

func (e *redirectError) Error() string {
	return fmt.Sprintf("server: ownership moved to %s (%s, epoch %d)", e.resp.OwnerID, e.resp.OwnerURL, e.resp.Epoch)
}

// maxRedirectHops bounds redirect-chasing per request: one rebalance
// moves ownership once, so more than a couple of hops means the
// cluster's tables disagree and the error should surface.
const maxRedirectHops = 3

// admitFollowingRedirects posts the admit, consulting and refreshing
// the learned ownership cache: a 421 updates the cache for every
// location the redirect names and retries at the new owner. Returns
// the node that finally answered so the release can go to the same
// place.
func admitFollowingRedirects(ctx context.Context, client *http.Client, base string, job workload.Job,
	owners *sync.Map, redirects *atomic.Int64) (AdmitResponse, string, string, error) {
	loc := firstFootprintLoc(job)
	if loc != "" {
		if v, ok := owners.Load(loc); ok {
			base = v.(string)
		}
	}
	for hop := 0; ; hop++ {
		resp, trace, err := postAdmit(ctx, client, base, job)
		var rd *redirectError
		if err == nil || !errors.As(err, &rd) || hop >= maxRedirectHops {
			return resp, trace, base, err
		}
		redirects.Add(1)
		base = strings.TrimSuffix(rd.resp.OwnerURL, "/")
		locs := rd.resp.Locs
		if len(locs) == 0 && loc != "" {
			locs = []resource.Location{loc}
		}
		for _, l := range locs {
			owners.Store(l, base)
		}
	}
}

// firstFootprintLoc is the cache key for a job's learned owner: the
// first location of its initial concurrent step (same choice loadQuery
// makes), empty when the job has no footprint.
func firstFootprintLoc(job workload.Job) resource.Location {
	if locs := footprint(core.ConcurrentAt(job.Dist, 0)); len(locs) > 0 {
		return locs[0]
	}
	return ""
}

// postAdmit submits one job and returns the verdict plus the trace ID
// the daemon stamped on the response — the correlation handle for the
// slow log.
func postAdmit(ctx context.Context, client *http.Client, base string, job workload.Job) (AdmitResponse, string, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return AdmitResponse{}, "", err
	}
	var out AdmitResponse
	trace, err := postJSONTraced(ctx, client, base+"/v1/admit", body, &out)
	if err != nil {
		return AdmitResponse{}, "", err
	}
	return out, trace, nil
}

func postRelease(ctx context.Context, client *http.Client, base string, name string) error {
	body, err := json.Marshal(releaseRequest{Name: name})
	if err != nil {
		return err
	}
	return postJSON(ctx, client, base+"/v1/release", body, nil)
}

// releaseFollowingRedirects releases a commitment at the node that
// admitted it, chasing 421s if an ownership handoff moved the
// reservation between the admit and the release (the commitment moves
// with its location, so the new owner honors the release).
func releaseFollowingRedirects(ctx context.Context, client *http.Client, base string, job workload.Job,
	owners *sync.Map, redirects *atomic.Int64) error {
	for hop := 0; ; hop++ {
		err := postRelease(ctx, client, base, job.Dist.Name)
		var rd *redirectError
		if err == nil || !errors.As(err, &rd) || hop >= maxRedirectHops {
			return err
		}
		redirects.Add(1)
		base = strings.TrimSuffix(rd.resp.OwnerURL, "/")
		for _, l := range rd.resp.Locs {
			owners.Store(l, base)
		}
	}
}

func postJSON(ctx context.Context, client *http.Client, url string, body []byte, out any) error {
	_, err := postJSONTraced(ctx, client, url, body, out)
	return err
}

func postJSONTraced(ctx context.Context, client *http.Client, url string, body []byte, out any) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	trace := resp.Header.Get(obs.HeaderTraceID)
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return trace, err
	}
	if resp.StatusCode == http.StatusMisdirectedRequest {
		if rd, derr := membership.DecodeRedirect(data); derr == nil {
			return trace, &redirectError{resp: rd}
		}
	}
	if resp.StatusCode != http.StatusOK {
		return trace, fmt.Errorf("server: %s returned %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return trace, fmt.Errorf("server: %s returned unparsable body: %w", url, err)
		}
	}
	return trace, nil
}

// FetchStats reads the daemon's /v1/stats endpoint.
func FetchStats(ctx context.Context, baseURL string) (StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/stats", nil)
	if err != nil {
		return StatsResponse{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return StatsResponse{}, err
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return StatsResponse{}, err
	}
	return out, nil
}
