package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestAdmitTimeoutRollsBackLateDecision is the regression test for the
// admit-timeout reservation leak: a decision that completes after its
// requester was told "timed out" must be rolled back, not left as a
// live commitment nobody knows about.
func TestAdmitTimeoutRollsBackLateDecision(t *testing.T) {
	srv, err := New(Config{Theta: cpuTheta(4, 1000, "l1"), Workers: 1, DecisionTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	srv.testDecideHook = func(job workload.Job) {
		if job.Dist.Name == "slow" {
			<-block // hold the worker until the requester has timed out
		}
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})

	resp, body := postBody(t, ts.URL+"/v1/admit", admitBody(t, cpuJob(t, "slow", "l1", 0, 1000)))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("blocked admit returned %d (%s), want 503 timeout", resp.StatusCode, body)
	}
	close(block) // let the worker finish its now-abandoned decision

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().LateDecisions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("late decision never recorded: %+v", srv.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := srv.Stats()
	if st.TimedOut != 1 {
		t.Fatalf("timed_out = %d, want 1", st.TimedOut)
	}
	if st.Commitments != 0 {
		t.Fatalf("late-admitted reservation leaked: %d live commitments", st.Commitments)
	}
	if err := srv.Ledger().Audit(); err != nil {
		t.Fatal(err)
	}

	// The name is free again: the same job admits cleanly, which it
	// could not if the abandoned reservation were still on the ledger.
	resp, body = postBody(t, ts.URL+"/v1/admit", admitBody(t, cpuJob(t, "slow", "l1", 0, 1000)))
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"admit":true`) {
		t.Fatalf("re-admit after rollback: %d %s", resp.StatusCode, body)
	}
}

// TestServerMetricsEndpoint scrapes a live server's /metrics and checks
// the exposition parses and carries the core families with live values.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, cpuTheta(2, 64, "l1"))

	resp, body := postBody(t, ts.URL+"/v1/admit", admitBody(t, cpuJob(t, "m1", "l1", 0, 64)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit: %d %s", resp.StatusCode, body)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if mr.StatusCode != http.StatusOK || !strings.HasPrefix(mr.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("GET /metrics: %d %q", mr.StatusCode, mr.Header.Get("Content-Type"))
	}
	m, err := obs.ParseMetrics(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"rota_admitted_total":       1,
		"rota_decisions_total":      1,
		"rota_ledger_commitments":   1,
		"rota_ledger_shards":        1,
		"rota_late_decisions_total": 0,
	} {
		if got, ok := m[key]; !ok || got != want {
			t.Errorf("scraped %s = %v, %v; want %v", key, got, ok, want)
		}
	}
	if v, ok := m[`rota_decision_latency_us_count`]; !ok || v != 1 {
		t.Errorf("decision latency count = %v, %v", v, ok)
	}
	if _, ok := m[`rota_http_requests_total{layer="server",endpoint="admit",class="2xx"}`]; !ok {
		t.Errorf("per-endpoint family missing; scraped keys: %d", len(m))
	}
}

// TestServerEventLog drives one admit and one lease expiry through a
// server wired to a buffer sink and checks the structured events land
// with their trace IDs.
func TestServerEventLog(t *testing.T) {
	var buf bytes.Buffer
	srv, err := New(Config{
		Theta: cpuTheta(2, 64, "l1"),
		Obs:   obs.New(obs.Options{Log: &buf}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/admit",
		strings.NewReader(admitBody(t, cpuJob(t, "ev1", "l1", 0, 64))))
	req.Header.Set(obs.HeaderTraceID, "evtrace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.HeaderTraceID); got != "evtrace-1" {
		t.Fatalf("response trace header = %q", got)
	}

	// A prepared hold left to expire logs through the sweep. Free the
	// admitted job's reservation first so the hold surely fits.
	if err := srv.Ledger().Release("ev1"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Ledger().Prepare("k-exp", "j-exp", cpuTheta(1, 10, "l1"), 10, 10, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Ledger().Advance(20); err != nil {
		t.Fatal(err)
	}

	log := buf.String()
	for _, want := range []string{
		"event=admit.decision", "trace=evtrace-1", "event=ledger.reserve",
		"event=ledger.lease_expired", "key=k-exp",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %q:\n%s", want, log)
		}
	}
}
