package server

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/resource"
)

// installCommitment plants a committed reservation through the public
// two-phase path (Prepare + Commit), the same way a handoff source
// acquired it.
func installCommitment(tb testing.TB, l *Ledger, key, name, demand string) {
	tb.Helper()
	if err := l.Prepare(key, name, mustSet(tb, demand), 10, 20, 1000); err != nil {
		tb.Fatalf("prepare %s: %v", key, err)
	}
	if err := l.Commit(key); err != nil {
		tb.Fatalf("commit %s: %v", key, err)
	}
}

func TestExportImportRoundTripMovesEverything(t *testing.T) {
	src := NewLedger(cpuTheta(4, 100, "l1", "l2"), 0)
	src.RestrictOwned([]resource.Location{"l1", "l2"})
	installCommitment(t, src, "k1", "j1", "2:cpu@l1:(0,10)")
	installCommitment(t, src, "k2", "j2", "1:cpu@l1:(5,15),1:cpu@l2:(5,15)")
	if err := src.Prepare("k3", "j3", mustSet(t, "1:cpu@l1:(20,30)"), 30, 40, 500); err != nil {
		t.Fatal(err)
	}
	mustAudit(t, src)

	exports := src.ExportLocations([]resource.Location{"l1"})
	if len(exports) != 1 || exports[0].Loc != "l1" {
		t.Fatalf("exports = %+v", exports)
	}
	exp := exports[0]
	if len(exp.Commitments) != 2 || len(exp.Holds) != 1 {
		t.Fatalf("export carries %d commitments, %d holds", len(exp.Commitments), len(exp.Holds))
	}

	dst := NewLedger(resource.Set{}, 0)
	dst.RestrictOwned([]resource.Location{})
	dst.AddOwned([]resource.Location{"l1"})
	if err := dst.ImportLocations(exports); err != nil {
		t.Fatal(err)
	}
	moved := src.DropLocations([]resource.Location{"l1"})
	if len(moved) != 1 || moved[0] != "k3" {
		t.Fatalf("moved keys = %v, want [k3]", moved)
	}
	mustAudit(t, src)
	mustAudit(t, dst)

	// j1 lived entirely on l1: gone from src, live on dst.
	if _, ok := src.Commitment("j1"); ok {
		t.Fatal("j1 survived the drop on the source")
	}
	if _, ok := dst.Commitment("j1"); !ok {
		t.Fatal("j1 missing on the new owner")
	}
	// j2 spanned l1+l2: split across both ledgers, demand partitioned.
	srcJ2, ok := src.Commitment("j2")
	if !ok || len(srcJ2.Locations) != 1 || srcJ2.Locations[0] != "l2" {
		t.Fatalf("source j2 = %+v", srcJ2)
	}
	dstJ2, ok := dst.Commitment("j2")
	if !ok || len(dstJ2.Locations) != 1 || dstJ2.Locations[0] != "l1" {
		t.Fatalf("dest j2 = %+v", dstJ2)
	}
	// The moved hold commits on the new owner under its original key.
	if err := dst.Commit("k3"); err != nil {
		t.Fatalf("committing moved hold: %v", err)
	}
	if _, ok := dst.Commitment("j3"); !ok {
		t.Fatal("j3 missing after committing the moved hold")
	}
	mustAudit(t, dst)

	// The source no longer owns l1.
	if err := src.Prepare("k9", "j9", mustSet(t, "1:cpu@l1:(0,5)"), 5, 9, 100); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("prepare on dropped location: %v, want ErrNotOwned", err)
	}
}

func TestImportMergesSpanningJobSlices(t *testing.T) {
	// The receiver already holds j-span's slice on l2 under the same 2PC
	// key; importing l1's slice must merge, not duplicate.
	dst := NewLedger(cpuTheta(4, 100, "l2"), 0)
	dst.RestrictOwned([]resource.Location{"l2"})
	installCommitment(t, dst, "kspan", "j-span", "1:cpu@l2:(0,10)")

	src := NewLedger(cpuTheta(4, 100, "l1"), 0)
	src.RestrictOwned([]resource.Location{"l1"})
	installCommitment(t, src, "kspan", "j-span", "1:cpu@l1:(0,10)")

	dst.AddOwned([]resource.Location{"l1"})
	if err := dst.ImportLocations(src.ExportLocations([]resource.Location{"l1"})); err != nil {
		t.Fatal(err)
	}
	src.DropLocations([]resource.Location{"l1"})
	mustAudit(t, dst)
	c, ok := dst.Commitment("j-span")
	if !ok {
		t.Fatal("merged commitment missing")
	}
	if len(c.Locations) != 2 {
		t.Fatalf("merged commitment spans %v, want both locations", c.Locations)
	}
	// One release returns both slices.
	if err := dst.Release("j-span"); err != nil {
		t.Fatal(err)
	}
	mustAudit(t, dst)
}

func TestImportRefusesOvercommit(t *testing.T) {
	dst := NewLedger(resource.Set{}, 0)
	exports := []LocationExport{{
		Loc:   "l1",
		Theta: "1:cpu@l1:(0,10)",
		Commitments: []ExportCommitment{
			{Name: "too-big", Demand: "5:cpu@l1:(0,10)", Finish: 10, Deadline: 20},
		},
	}}
	if err := dst.ImportLocations(exports); err == nil {
		t.Fatal("import that breaks the shard invariant must fail")
	}
}

func TestDropUnknownLocationIsHarmless(t *testing.T) {
	l := NewLedger(cpuTheta(2, 100, "l1"), 0)
	l.RestrictOwned([]resource.Location{"l1"})
	if moved := l.DropLocations([]resource.Location{"ghost"}); len(moved) != 0 {
		t.Fatalf("moved = %v", moved)
	}
	mustAudit(t, l)
}

// BenchmarkLedgerHandoff measures the full ownership-handoff round trip
// (export one loaded location, install it on a fresh owner, drop it
// from the source) at increasing ledger sizes — the hot cost of
// rebalancing under load (EXPERIMENTS.md E15, BENCH_PR7.json).
func BenchmarkLedgerHandoff(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("commitments=%d", n), func(b *testing.B) {
			src := NewLedger(cpuTheta(int64(n)+8, 1<<30, "l1", "l2"), 0)
			src.RestrictOwned([]resource.Location{"l1", "l2"})
			for i := 0; i < n; i++ {
				installCommitment(b, src, fmt.Sprintf("k%d", i), fmt.Sprintf("j%d", i),
					fmt.Sprintf("1:cpu@l1:(%d,%d)", i, i+10))
			}
			exports := src.ExportLocations([]resource.Location{"l1"})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst := NewLedger(resource.Set{}, 0)
				dst.RestrictOwned([]resource.Location{})
				dst.AddOwned([]resource.Location{"l1"})
				if err := dst.ImportLocations(exports); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
