package server

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/workload"
)

// The admission hot path: optimistic epoch-validated planning plus
// per-footprint batching of the reserve phase.
//
// The legacy path ran the Theorem-4 witness-plan search while holding
// every footprint shard's lock, so concurrent admits to one location
// serialized on the (expensive) plan search. Here each admission:
//
//  1. snapshots — locks the footprint shards just long enough to read
//     the cached free view and each shard's mutation version;
//  2. plans — runs admission.Decide against the snapshot outside any
//     lock, so plan searches for the same shard proceed in parallel;
//  3. validates and reserves — re-locks the shards and applies the plan
//     if the snapshot versions are unchanged (the plan fits by
//     construction: the planner only emits plans that fit the view it
//     searched) or, when a concurrent mutation moved the versions, if
//     the plan's demand still fits the current free view. A miss
//     replans from a fresh snapshot, bounded by admitRetries, before a
//     final attempt that plans under the locks (the legacy path, which
//     cannot conflict).
//
// Soundness is unchanged from the lock-holding path: a reservation is
// only ever applied after a fit check (version-unchanged or explicit
// dominance) made under the shard locks, so Θ dominates reserved at
// every step — Theorem 4's no-overcommitment invariant is enforced at
// reserve time exactly as before; optimism only moves the *search*
// outside the critical section, and a stale plan costs a retry, never
// an overcommit.
//
// Batching: concurrent admissions whose footprints name the same
// location set combine their validate-and-reserve phases — the first
// becomes the batch leader, drains the group queue, and validates the
// whole batch under one lock acquisition with one epoch bump, handing
// leadership to the oldest waiter when it finishes. Decisions stay
// per-job; members whose plans no longer fit are conflicted out
// individually and replan.

// defaultAdmitRetries bounds the optimistic attempts before the
// plan-under-locks fallback.
const defaultAdmitRetries = 3

// hotCounters counts admission hot-path events. All fields are atomic;
// the struct lives on the Ledger and is shared with every shard.
type hotCounters struct {
	batches        atomic.Uint64 // validate-and-reserve batches executed
	batchedJobs    atomic.Uint64 // jobs decided through the hot path
	planRetries    atomic.Uint64 // plans re-run after a validation conflict
	planFallbacks  atomic.Uint64 // jobs that fell back to planning under locks
	freePatches    atomic.Uint64 // incremental free-view patches applied
	freeRecomputes atomic.Uint64 // full θ∖reserved recomputes
}

// AdmitHotCounters is the JSON shape of the hot-path counters for
// /v1/stats.
type AdmitHotCounters struct {
	Batches        uint64 `json:"batches"`
	BatchedJobs    uint64 `json:"batched_jobs"`
	PlanRetries    uint64 `json:"plan_retries"`
	PlanFallbacks  uint64 `json:"plan_fallbacks"`
	FreePatches    uint64 `json:"free_patches"`
	FreeRecomputes uint64 `json:"free_recomputes"`
}

// AdmitHot returns the admission hot-path counters.
func (l *Ledger) AdmitHot() AdmitHotCounters {
	return AdmitHotCounters{
		Batches:        l.hot.batches.Load(),
		BatchedJobs:    l.hot.batchedJobs.Load(),
		PlanRetries:    l.hot.planRetries.Load(),
		PlanFallbacks:  l.hot.planFallbacks.Load(),
		FreePatches:    l.hot.freePatches.Load(),
		FreeRecomputes: l.hot.freeRecomputes.Load(),
	}
}

// admitOutcome is one admission's result from a validate batch: a
// terminal decision/error, or retry — the member's plan no longer fits
// and it must replan.
type admitOutcome struct {
	dec   admission.Decision
	err   error
	retry bool
}

// admitWork is one admission in flight through the hot path. The claim
// was placed in l.commits by AdmitCtx before the work entered the
// pipeline; whoever reaches a terminal outcome either finalizes or
// abandons it.
type admitWork struct {
	ctx    context.Context
	policy admission.Policy
	job    workload.Job
	now    interval.Time
	claim  *commitment
	done   chan admitOutcome // buffered(1); one write per validate round
	lead   chan struct{}     // buffered(1); leadership handoff signal

	// Plan state for the current attempt, set by planOne before the
	// work enters a validate batch.
	dec    admission.Decision
	demand resource.Set
	parts  map[resource.Location]resource.Set // nil for single-shard footprints
	vers   []uint64                           // shard versions the plan was decided against
}

// partFor returns the work's demand on one shard. Single-shard
// footprints return the whole demand without ever having split it.
func (w *admitWork) partFor(loc resource.Location) (resource.Set, bool) {
	if w.parts == nil {
		return w.demand, true
	}
	p, ok := w.parts[loc]
	return p, ok
}

// admitGroup is the combining queue for one footprint signature: works
// with a plan in hand waiting for a validate-and-reserve batch.
type admitGroup struct {
	locs    []resource.Location
	members []*admitWork // waiting, not yet drained into a batch
	leading bool         // a leader is validating (or handing off)
}

// locsKey builds the footprint signature grouping concurrent admits.
// Footprints are sorted, so equal location sets map to equal keys.
func locsKey(locs []resource.Location) string {
	if len(locs) == 1 {
		return string(locs[0])
	}
	var b strings.Builder
	for i, loc := range locs {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(string(loc))
	}
	return b.String()
}

// admitHot routes one claimed admission through the hot path and blocks
// until its outcome is decided. Like the legacy path it does not abort
// on ctx cancellation mid-decision — the server's worker claim CAS
// rolls back late outcomes — so every admission is always decided.
func (l *Ledger) admitHot(ctx context.Context, policy admission.Policy, job workload.Job, now interval.Time, locs []resource.Location, claim *commitment) (admission.Decision, error) {
	w := &admitWork{
		ctx:    ctx,
		policy: policy,
		job:    job,
		now:    now,
		claim:  claim,
		done:   make(chan admitOutcome, 1),
		lead:   make(chan struct{}, 1),
	}
	l.hot.batchedJobs.Add(1)
	if l.pessimistic {
		l.runLocked(locs, w)
		out := <-w.done
		return out.dec, out.err
	}

	for attempt := 0; attempt <= l.admitRetries; attempt++ {
		free, vers, err := l.snapshotFree(locs)
		if err != nil {
			l.settle(w, admission.Decision{}, err)
			return admission.Decision{}, err
		}
		if !l.planOne(w, locs, free, vers, attempt) {
			// Rejected (or plan-less): settled against the snapshot, a
			// legitimate linearization point — admission control promises
			// no-overcommit, not admit-whenever-possible.
			out := <-w.done
			return out.dec, out.err
		}
		if l.testPostPlanHook != nil {
			l.testPostPlanHook()
		}
		var out admitOutcome
		if l.noBatch {
			l.validateBatch(locs, []*admitWork{w}, attempt)
			out = <-w.done
		} else {
			out = l.submitToGroup(locs, w, attempt)
		}
		if !out.retry {
			return out.dec, out.err
		}
		l.hot.planRetries.Add(1)
	}

	// Bounded optimism exhausted: decide under the shard locks, which
	// cannot conflict. Persistent exhaustion is the replan-livelock smell
	// the flight recorder wants evidence of.
	l.hot.planFallbacks.Add(1)
	l.flight.Trigger(flightrec.TriggerReplan, w.job.Dist.Name)
	l.runLocked(locs, w)
	out := <-w.done
	return out.dec, out.err
}

// submitToGroup enqueues a planned work into its footprint's combining
// group and blocks until a validate batch decides it. The first work to
// find the group idle leads: it drains the queue, validates the batch,
// then hands leadership to the oldest waiter (or retires). Followers
// just wait — their plan is validated by whichever leader drains them.
func (l *Ledger) submitToGroup(locs []resource.Location, w *admitWork, attempt int) admitOutcome {
	sig := locsKey(locs)
	l.batchMu.Lock()
	g := l.groups[sig]
	if g == nil {
		g = &admitGroup{locs: locs}
		l.groups[sig] = g
	}
	g.members = append(g.members, w)
	if g.leading {
		l.batchMu.Unlock()
		select {
		case out := <-w.done:
			return out
		case <-w.lead: // inherit leadership
		}
		l.batchMu.Lock()
	} else {
		g.leading = true
	}

	// Leader: drain everything queued (including w), validate as one
	// batch, then pass the baton or retire.
	batch := g.members
	g.members = nil
	l.batchMu.Unlock()
	l.validateBatch(g.locs, batch, attempt)
	l.batchMu.Lock()
	if len(g.members) > 0 {
		g.members[0].lead <- struct{}{}
	} else {
		g.leading = false
		delete(l.groups, sig)
	}
	l.batchMu.Unlock()
	return <-w.done
}

// snapshotFree reads the merged free view of the footprint plus each
// shard's mutation version, holding the shard locks only for the reads.
// The returned set shares the shards' cached profiles and must be
// treated as read-only (admission.Decide and schedule.Concurrent clone
// before mutating). Single-location footprints return the cached set
// directly — no clone, no allocation.
func (l *Ledger) snapshotFree(locs []resource.Location) (resource.Set, []uint64, error) {
	if len(locs) == 1 {
		sh := l.shardFor(locs[0])
		sh.mu.Lock()
		part, err := sh.freeView()
		ver := sh.ver
		sh.mu.Unlock()
		if err != nil {
			return resource.Set{}, nil, fmt.Errorf("server: shard %s invariant broken: %w", locs[0], err)
		}
		return part, []uint64{ver}, nil
	}
	shards, unlock := l.lockedShards(locs)
	var free resource.Set
	vers := make([]uint64, len(shards))
	for i, sh := range shards {
		part, err := sh.freeView()
		if err != nil {
			unlock()
			return resource.Set{}, nil, fmt.Errorf("server: shard %s invariant broken: %w", sh.loc, err)
		}
		vers[i] = sh.ver
		free = free.PatchUnion(part)
	}
	unlock()
	return free, vers, nil
}

// planOne runs the witness-plan search for one work against a free-view
// snapshot, outside any lock. Returns true when the work holds an
// accepted plan ready for validation; rejections and internal errors
// are settled (claim abandoned, outcome delivered) and return false.
func (l *Ledger) planOne(w *admitWork, locs []resource.Location, free resource.Set, vers []uint64, attempt int) bool {
	// The transient state presents the free snapshot as Θ with no
	// commitments, so State.FreeResources sees exactly the free
	// capacity; reservations are already subtracted out.
	state := core.State{Theta: free, Now: w.now}
	view := admission.View{Now: w.now, Theta: free, State: &state}
	_, planSpan := l.spans.Start(w.ctx, span.KindPlan)
	planSpan.Attr("job", w.job.Dist.Name)
	planSpan.Attr("actors", len(w.job.Dist.Actors))
	if attempt > 0 {
		planSpan.Attr("attempt", attempt)
	}
	dec := admission.Decide(w.policy, view, w.job.Dist)
	if !dec.Admit {
		planSpan.SetStatus(span.StatusReject)
		planSpan.Attr("error", dec.Reason)
		planSpan.SetProvenance(span.Classify(dec.Reason))
		planSpan.End()
		l.settle(w, dec, nil)
		return false
	}
	planSpan.End()
	if dec.Plan == nil {
		l.settle(w, admission.Decision{}, ErrPlanless)
		return false
	}
	demand := dec.Plan.Demand()
	if err := splitDemand(w, locs, demand); err != nil {
		l.settle(w, admission.Decision{}, err)
		return false
	}
	w.dec = dec
	w.vers = vers
	return true
}

// splitDemand validates a plan's demand stays inside the footprint it
// was decided against and records the per-shard split on the work.
// Single-shard footprints skip the split entirely.
func splitDemand(w *admitWork, locs []resource.Location, demand resource.Set) error {
	if len(locs) == 1 {
		loc := locs[0]
		outside := false
		demand.EachTypeUntil(func(lt resource.LocatedType) bool {
			if shardOf(lt) != loc {
				outside = true
				return false
			}
			return true
		})
		if outside {
			return fmt.Errorf("server: plan for %s consumes outside its footprint (shard %s)", w.job.Dist.Name, loc)
		}
		w.demand, w.parts = demand, nil
		return nil
	}
	parts := splitByShard(demand)
	for loc := range parts {
		in := false
		for _, fl := range locs {
			if fl == loc {
				in = true
				break
			}
		}
		if !in {
			return fmt.Errorf("server: plan for %s consumes outside its footprint (shard %s)", w.job.Dist.Name, loc)
		}
	}
	w.demand, w.parts = demand, parts
	return nil
}

// validateBatch re-locks the footprint once for a whole batch of
// planned works and applies each plan that is still valid: either no
// shard's version moved since that work's snapshot (the plan fits by
// construction), or its demand still fits the current free view. Works
// whose plans no longer fit receive a retry outcome and replan; the
// rest are reserved and finalized under one epoch bump.
func (l *Ledger) validateBatch(locs []resource.Location, batch []*admitWork, attempt int) {
	l.hot.batches.Add(1)
	spans := l.startReserveSpans(batch, len(locs), attempt)
	shards, unlock := l.lockedShards(locs)
	// Ownership can shrink between the claim and this point (a
	// concurrent handoff): re-check under the shard locks, as the
	// legacy path did.
	if err := l.checkOwned(locs); err != nil {
		unlock()
		l.endReserveSpans(spans, span.StatusError)
		for _, w := range batch {
			l.settle(w, admission.Decision{}, err)
		}
		return
	}
	admitted := batch[:0:0]
	var conflicted []*admitWork
	for i, w := range batch {
		fits, err := l.fitsLocked(shards, w)
		if err != nil {
			unlock()
			l.endReserveSpans(spans[i:], span.StatusError)
			l.endReserveSpans(spans[:i], "")
			for _, cw := range conflicted {
				cw.done <- admitOutcome{retry: true}
			}
			l.finalizeBatch(locs, admitted)
			l.settle(w, admission.Decision{}, err)
			for _, rest := range batch[i+1:] {
				rest.done <- admitOutcome{retry: true}
			}
			return
		}
		if !fits {
			spans[i].SetStatus(span.StatusReject)
			conflicted = append(conflicted, w)
			continue
		}
		for _, sh := range shards {
			if part, ok := w.partFor(sh.loc); ok {
				sh.applyReserve(part)
			}
		}
		admitted = append(admitted, w)
	}
	unlock()
	l.endReserveSpans(spans, "")
	for _, w := range conflicted {
		w.done <- admitOutcome{retry: true}
	}
	l.finalizeBatch(locs, admitted)
}

// fitsLocked reports whether a planned work still fits. Fast path: if
// no shard's version moved since the work's snapshot, the plan fits by
// construction (the planner only emits plans fitting the view it was
// given) — no dominance check needed. Otherwise every touched shard's
// current free view must dominate the work's demand part. The caller
// holds the shard locks; shards is in lockedShards order, matching the
// order snapshotFree recorded versions in.
func (l *Ledger) fitsLocked(shards []*shard, w *admitWork) (bool, error) {
	unchanged := len(w.vers) == len(shards)
	if unchanged {
		for i, sh := range shards {
			if sh.ver != w.vers[i] {
				unchanged = false
				break
			}
		}
	}
	if unchanged {
		return true, nil
	}
	for _, sh := range shards {
		part, ok := w.partFor(sh.loc)
		if !ok {
			continue
		}
		free, err := sh.freeView()
		if err != nil {
			return false, fmt.Errorf("server: shard %s invariant broken: %w", sh.loc, err)
		}
		if !free.Dominates(part) {
			return false, nil
		}
	}
	return true, nil
}

// startReserveSpans opens one KindReserve span per work, covering the
// validate-and-reserve critical section.
func (l *Ledger) startReserveSpans(batch []*admitWork, shards, attempt int) []*span.Span {
	out := make([]*span.Span, len(batch))
	for i, w := range batch {
		_, rs := l.spans.Start(w.ctx, span.KindReserve)
		rs.Attr("job", w.job.Dist.Name)
		rs.Attr("shards", shards)
		if len(batch) > 1 {
			rs.Attr("batch", len(batch))
		}
		if attempt > 0 {
			rs.Attr("attempt", attempt)
		}
		out[i] = rs
	}
	return out
}

// endReserveSpans closes the reserve spans; a non-empty status
// overrides per-span statuses already set (reject = conflict, retried).
func (l *Ledger) endReserveSpans(spans []*span.Span, status string) {
	for _, rs := range spans {
		if status != "" {
			rs.SetStatus(status)
		}
		rs.End()
	}
}

// runLocked is the pessimistic path: plan while holding the shard
// locks, exactly like the pre-optimistic ledger. It decides the work
// unconditionally — the view cannot move under the locks, so there is
// nothing to conflict with. Used as the bounded-retry fallback and, via
// SetAdmitTuning(pessimistic), as the benchmark baseline.
func (l *Ledger) runLocked(locs []resource.Location, w *admitWork) {
	l.hot.batches.Add(1)
	shards, unlock := l.lockedShards(locs)
	if err := l.checkOwned(locs); err != nil {
		unlock()
		l.settle(w, admission.Decision{}, err)
		return
	}
	var free resource.Set
	for _, sh := range shards {
		part, err := sh.freeView()
		if err != nil {
			unlock()
			l.settle(w, admission.Decision{}, fmt.Errorf("server: shard %s invariant broken: %w", sh.loc, err))
			return
		}
		if len(shards) == 1 && !l.noPatch.Load() {
			free = part // read-only share of the cached view; no clone
		} else {
			free = free.PatchUnion(part)
		}
	}
	if l.noPatch.Load() {
		// Legacy-baseline fidelity: the pre-incremental path cloned the
		// merged view (Union) and Decide re-derived free capacity from
		// the transient state on every admission. Re-pay that cost here
		// so benchmarks compare against what the old path actually did.
		st := core.State{Theta: free, Now: w.now}
		if refree, err := st.FreeResources(); err == nil {
			free = refree
		}
	}
	if !l.planOne(w, locs, free, nil, 0) {
		unlock()
		return
	}
	spans := l.startReserveSpans([]*admitWork{w}, len(shards), 0)
	for _, sh := range shards {
		if part, ok := w.partFor(sh.loc); ok {
			sh.applyReserve(part)
		}
	}
	unlock()
	l.endReserveSpans(spans, "")
	l.finalizeBatch(locs, []*admitWork{w})
}

// finalizeBatch promotes the admitted claims to live commitments under
// one l.mu hold, bumps the epoch once for the whole batch, and delivers
// the verdicts.
func (l *Ledger) finalizeBatch(locs []resource.Location, admitted []*admitWork) {
	if len(admitted) == 0 {
		return
	}
	l.mu.Lock()
	for _, w := range admitted {
		w.claim.locs = locs
		w.claim.plan = *w.dec.Plan
		w.claim.deadline = w.job.Dist.Deadline
		w.claim.admitted = w.now
		w.claim.pending = false
	}
	l.mu.Unlock()
	l.bumpEpoch("reserve")
	if l.assure != nil {
		// Every admission path (optimistic batch and locked fallback) ends
		// here, so this is the single point where the deadline promise is
		// made: the witness plan finishes at dec.Plan.Finish ≤ deadline.
		epoch := l.epoch.Load()
		for _, w := range admitted {
			l.assure.Reserve(w.job.Dist.Name, w.now, w.dec.Plan.Finish,
				w.job.Dist.Deadline, epoch, locs)
		}
	}
	for _, w := range admitted {
		w.done <- admitOutcome{dec: w.dec}
	}
}

// settle abandons a work's claim and delivers its terminal outcome
// (rejection or error).
func (l *Ledger) settle(w *admitWork, dec admission.Decision, err error) {
	l.mu.Lock()
	delete(l.commits, w.job.Dist.Name)
	l.mu.Unlock()
	w.done <- admitOutcome{dec: dec, err: err}
}
