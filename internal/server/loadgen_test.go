package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/interval"
	"repro/internal/membership"
	"repro/internal/resource"
	"repro/internal/workload"
)

// TestLoadFollowsOwnershipRedirect: a 421 from a stale owner must not
// count as an error — the load generator follows it to the new owner,
// learns the mapping, and routes the rest of the run there directly.
func TestLoadFollowsOwnershipRedirect(t *testing.T) {
	locs := []resource.Location{"l1", "l2"}
	_, fresh := newTestServer(t, cpuTheta(4, 4096, locs...))

	// The stale owner answers every admit with "l1 and l2 moved"; the
	// redirect cache means it should only ever be asked once.
	var staleHits atomic.Int64
	stale := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		staleHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(membership.RedirectResponse{
			OwnerID: "n2", OwnerURL: fresh.URL, Epoch: 2, Locs: locs,
		})
	}))
	t.Cleanup(stale.Close)

	jobs, err := workload.Generate(workload.Config{
		Seed: 7, Locations: locs, NumJobs: 40,
		MeanInterarrival: 8, ActorsMin: 1, ActorsMax: 1,
		StepsMin: 1, StepsMax: 2, EvalWeightMax: 2, SlackFactor: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:         stale.URL,
		Jobs:            jobs,
		Requests:        40,
		Clients:         1, // deterministic: the first redirect reroutes everyone after
		ReleaseAdmitted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("redirects surfaced as errors: %+v", report)
	}
	if report.Redirects != 1 {
		t.Fatalf("followed %d redirects, want exactly 1 (then cached): %+v", report.Redirects, report)
	}
	if got := staleHits.Load(); got != 1 {
		t.Fatalf("stale owner was asked %d times, want 1", got)
	}
	if report.Admitted+report.Rejected != report.Requests {
		t.Fatalf("accounting off after redirect: %+v", report)
	}
	if report.Admitted == 0 {
		t.Fatalf("nothing admitted through the redirect target: %+v", report)
	}
}

// TestLoadRedirectLoopSurfaces: a redirect chain that never lands (two
// stale owners pointing at each other) must give up after the hop
// bound and count an error instead of spinning.
func TestLoadRedirectLoopSurfaces(t *testing.T) {
	var aURL, bURL string
	mk := func(peer *string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			_ = json.NewEncoder(w).Encode(membership.RedirectResponse{
				OwnerID: "nx", OwnerURL: *peer, Epoch: 2, Locs: []resource.Location{"l1"},
			})
		}
	}
	a := httptest.NewServer(mk(&bURL))
	b := httptest.NewServer(mk(&aURL))
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	aURL, bURL = a.URL, b.URL

	jobs, err := workload.Generate(workload.Config{
		Seed: 7, Locations: []resource.Location{"l1"}, NumJobs: 2,
		MeanInterarrival: 8, ActorsMin: 1, ActorsMax: 1,
		StepsMin: 1, StepsMax: 1, EvalWeightMax: 2, SlackFactor: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: a.URL,
		Jobs:    jobs[:1],
		Clients: 1,
	})
	// Every request died chasing redirects, so RunLoad itself reports
	// the failure — with the redirect as the underlying cause.
	if err == nil || !strings.Contains(err.Error(), "ownership moved") {
		t.Fatalf("want a load failure naming the redirect, got err=%v report=%+v", err, report)
	}
	if report.Errors != 1 {
		t.Fatalf("redirect loop should surface as one error: %+v", report)
	}
	if report.Redirects != maxRedirectHops {
		t.Fatalf("chased %d hops, want the %d bound: %+v", report.Redirects, maxRedirectHops, report)
	}
}

var _ = interval.New
