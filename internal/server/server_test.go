package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/workload"
)

func newTestServer(t *testing.T, theta resource.Set) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Theta: theta, Workers: 4, DecisionTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	return srv, ts
}

func postBody(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

func admitBody(t *testing.T, job workload.Job) string {
	t.Helper()
	b, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestServerEndToEnd(t *testing.T) {
	theta := cpuTheta(2, 64, "l1", "l2")
	srv, ts := newTestServer(t, theta)

	// Admit a feasible job.
	resp, body := postBody(t, ts.URL+"/v1/admit", admitBody(t, cpuJob(t, "e2e-1", "l1", 0, 64)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit: %d %s", resp.StatusCode, body)
	}
	var ar AdmitResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Admit || ar.Finish <= 0 || ar.Job != "e2e-1" {
		t.Fatalf("admit response = %+v", ar)
	}

	// The commitment is queryable.
	qr, err := http.Get(ts.URL + "/v1/query?name=e2e-1")
	if err != nil || qr.StatusCode != http.StatusOK {
		t.Fatalf("query: %v %d", err, qr.StatusCode)
	}
	qr.Body.Close()

	// An infeasible job is rejected, not errored.
	resp, body = postBody(t, ts.URL+"/v1/admit", admitBody(t, cpuJob(t, "e2e-big", "l1", 0, 2)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reject admit: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Admit || ar.Reason == "" {
		t.Fatalf("infeasible job: %+v", ar)
	}

	// Duplicate names conflict.
	resp, _ = postBody(t, ts.URL+"/v1/admit", admitBody(t, cpuJob(t, "e2e-1", "l1", 0, 64)))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate admit: %d", resp.StatusCode)
	}

	// Acquire opens capacity on a brand-new shard.
	resp, body = postBody(t, ts.URL+"/v1/acquire", `{"theta":"2000:cpu@l9:(0,64)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acquire: %d %s", resp.StatusCode, body)
	}
	resp, body = postBody(t, ts.URL+"/v1/admit", admitBody(t, cpuJob(t, "e2e-l9", "l9", 0, 64)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit on acquired shard: %d %s", resp.StatusCode, body)
	}

	// Release frees e2e-1.
	resp, _ = postBody(t, ts.URL+"/v1/release", `{"name":"e2e-1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release: %d", resp.StatusCode)
	}
	resp, _ = postBody(t, ts.URL+"/v1/release", `{"name":"e2e-1"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double release: %d", resp.StatusCode)
	}

	// Advance completes e2e-l9 eventually.
	resp, body = postBody(t, ts.URL+"/v1/advance", `{"now":64}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: %d %s", resp.StatusCode, body)
	}
	resp, _ = postBody(t, ts.URL+"/v1/advance", `{"now":3}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("backward advance: %d", resp.StatusCode)
	}

	// Stats are consistent: decisions == admitted + rejected.
	st := srv.Stats()
	if st.Decisions != st.Admitted+st.Rejected {
		t.Fatalf("stats accounting: %+v", st)
	}
	if st.Admitted != 2 || st.Rejected != 1 {
		t.Fatalf("admitted/rejected = %d/%d, want 2/1", st.Admitted, st.Rejected)
	}
	if st.DecisionLatencyUS.Count != 3 {
		t.Fatalf("latency count = %d", st.DecisionLatencyUS.Count)
	}
	mustAudit(t, srv.Ledger())

	// The stats endpoint serves the same digest.
	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil || sr.StatusCode != http.StatusOK {
		t.Fatalf("stats endpoint: %v", err)
	}
	var wire StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if wire.Decisions != st.Decisions || wire.Admitted != st.Admitted {
		t.Fatalf("wire stats %+v != %+v", wire, st)
	}
}

func TestServerRejectsMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, cpuTheta(2, 64, "l1"))
	cases := []struct {
		path, body string
	}{
		{"/v1/admit", `not json`},
		{"/v1/admit", `{"Dist":{"Name":"","Start":0,"Deadline":5},"Arrival":0}`},
		{"/v1/admit", `{"Dist":{"Name":"j","Start":9,"Deadline":5},"Arrival":0}`},
		{"/v1/release", `not json`},
		{"/v1/release", `{}`},
		{"/v1/acquire", `{"theta":"garbage::("}`},
		{"/v1/advance", `not json`},
	}
	for _, tc := range cases {
		resp, body := postBody(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %q: status %d body %s", tc.path, tc.body, resp.StatusCode, body)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/admit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/admit = %d", resp.StatusCode)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	srv, err := New(Config{Theta: cpuTheta(2, 64, "l1"), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := postBody(t, ts.URL+"/v1/admit", admitBody(t, cpuJob(t, "pre", "l1", 0, 64)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown admit: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// New admissions are refused; health reports draining.
	resp, _ = postBody(t, ts.URL+"/v1/admit", admitBody(t, cpuJob(t, "post", "l1", 0, 64)))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown admit: %d", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: %d", hr.StatusCode)
	}
	// Idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServerConcurrentLoad drives >100 concurrent admit/release requests
// through the real HTTP stack (run under -race) and audits the ledger.
func TestServerConcurrentLoad(t *testing.T) {
	locs := []resource.Location{"l1", "l2", "l3", "l4"}
	theta := cpuTheta(4, 4096, locs...)
	for _, src := range locs {
		for _, dst := range locs {
			if src != dst {
				theta.Add(resource.NewTerm(u(1), resource.Link(src, dst), interval.New(0, 4096)))
			}
		}
	}
	srv, ts := newTestServer(t, theta)

	jobs, err := workload.Generate(workload.Config{
		Seed: 11, Locations: locs, NumJobs: 150,
		MeanInterarrival: 8, ActorsMin: 1, ActorsMax: 2,
		StepsMin: 1, StepsMax: 3, SendProb: 0.25, MigrateProb: 0.05,
		EvalWeightMax: 2, SlackFactor: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:         ts.URL,
		Jobs:            jobs,
		Requests:        150,
		Clients:         8,
		ReleaseAdmitted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Admitted == 0 {
		t.Fatal("nothing admitted under load")
	}
	if report.Errors > 0 {
		t.Fatalf("load errors: %+v", report)
	}
	st := srv.Stats()
	if st.Decisions != st.Admitted+st.Rejected {
		t.Fatalf("stats accounting under load: %+v", st)
	}
	if int(st.Decisions) != report.Requests {
		t.Fatalf("server saw %d decisions for %d requests", st.Decisions, report.Requests)
	}
	if st.DecisionLatencyUS.P99 <= 0 {
		t.Fatalf("p99 latency not recorded: %+v", st.DecisionLatencyUS)
	}
	mustAudit(t, srv.Ledger())
}
