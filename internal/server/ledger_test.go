package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/admission"
	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/workload"
)

func u(n int64) resource.Rate { return resource.FromUnits(n) }

// cpuJob builds a one-actor job evaluating at loc (8 cpu under the paper
// cost model) with window (start, deadline).
func cpuJob(tb testing.TB, name string, loc resource.Location, start, deadline interval.Time) workload.Job {
	tb.Helper()
	actor := compute.ActorName(name + ".a")
	c, err := cost.Realize(cost.Paper(), actor, compute.Evaluate(actor, loc, 1))
	if err != nil {
		tb.Fatal(err)
	}
	d, err := compute.NewDistributed(name, start, deadline, c)
	if err != nil {
		tb.Fatal(err)
	}
	return workload.Job{Dist: d, Arrival: start}
}

// sendJob builds a job whose actor computes at src then sends to dst,
// touching two shards (cpu@src and network@src>dst).
func sendJob(tb testing.TB, name string, src, dst resource.Location, start, deadline interval.Time) workload.Job {
	tb.Helper()
	actor := compute.ActorName(name + ".a")
	c, err := cost.Realize(cost.Paper(), actor,
		compute.Evaluate(actor, src, 1),
		compute.Send(actor, src, "peer", dst, 1),
	)
	if err != nil {
		tb.Fatal(err)
	}
	d, err := compute.NewDistributed(name, start, deadline, c)
	if err != nil {
		tb.Fatal(err)
	}
	return workload.Job{Dist: d, Arrival: start}
}

func cpuTheta(rate int64, horizon interval.Time, locs ...resource.Location) resource.Set {
	var s resource.Set
	for _, loc := range locs {
		s.Add(resource.NewTerm(u(rate), resource.CPUAt(loc), interval.New(0, horizon)))
	}
	return s
}

func mustAudit(tb testing.TB, l *Ledger) {
	tb.Helper()
	if err := l.Audit(); err != nil {
		tb.Fatal(err)
	}
}

func TestLedgerShardsByLocation(t *testing.T) {
	theta := cpuTheta(2, 100, "l1", "l2", "l3")
	theta.Add(resource.NewTerm(u(1), resource.Link("l1", "l2"), interval.New(0, 100)))
	l := NewLedger(theta, 0)
	if got := l.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d, want 3 (link l1>l2 belongs to shard l1)", got)
	}
	snap := l.Snapshot()
	if len(snap.Shards) != 3 {
		t.Fatalf("snapshot shards = %d", len(snap.Shards))
	}
	if snap.Shards[0].Location != "l1" || snap.Shards[0].ThetaTerms != 2 {
		t.Errorf("shard l1 = %+v, want cpu and link terms", snap.Shards[0])
	}
}

func TestAdmitReservesReleaseFrees(t *testing.T) {
	l := NewLedger(cpuTheta(1, 16, "l1"), 0) // 16 cpu units total
	policy := &admission.Rota{}

	dec, err := l.Admit(policy, cpuJob(t, "j1", "l1", 0, 16))
	if err != nil || !dec.Admit {
		t.Fatalf("j1: %v %+v", err, dec)
	}
	mustAudit(t, l)
	if n := l.NumCommitments(); n != 1 {
		t.Fatalf("commitments = %d", n)
	}

	// 8 of 16 units are reserved; a second 8-cpu job with the full
	// window still fits, a third cannot.
	if dec, err = l.Admit(policy, cpuJob(t, "j2", "l1", 0, 16)); err != nil || !dec.Admit {
		t.Fatalf("j2: %v %+v", err, dec)
	}
	if dec, err = l.Admit(policy, cpuJob(t, "j3", "l1", 0, 16)); err != nil || dec.Admit {
		t.Fatalf("j3 should be rejected: %v %+v", err, dec)
	}
	mustAudit(t, l)

	// Releasing j1 frees its reservation; j3 now fits.
	if err := l.Release("j1"); err != nil {
		t.Fatal(err)
	}
	mustAudit(t, l)
	if dec, err = l.Admit(policy, cpuJob(t, "j3", "l1", 0, 16)); err != nil || !dec.Admit {
		t.Fatalf("j3 after release: %v %+v", err, dec)
	}
	mustAudit(t, l)

	if err := l.Release("nope"); err == nil {
		t.Fatal("released an unknown commitment")
	}
}

func TestAdmitDuplicateName(t *testing.T) {
	l := NewLedger(cpuTheta(4, 64, "l1"), 0)
	policy := &admission.Rota{}
	if _, err := l.Admit(policy, cpuJob(t, "dup", "l1", 0, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Admit(policy, cpuJob(t, "dup", "l1", 0, 64)); err == nil {
		t.Fatal("second admit of the same name succeeded")
	}
}

func TestAdmitPastDeadline(t *testing.T) {
	l := NewLedger(cpuTheta(4, 64, "l1"), 10)
	dec, err := l.Admit(&admission.Rota{}, cpuJob(t, "late", "l1", 0, 10))
	if err != nil || dec.Admit {
		t.Fatalf("deadline-passed job admitted: %v %+v", err, dec)
	}
}

func TestMultiShardAdmission(t *testing.T) {
	theta := cpuTheta(2, 32, "l1", "l2")
	theta.Add(resource.NewTerm(u(1), resource.Link("l1", "l2"), interval.New(0, 32)))
	l := NewLedger(theta, 0)
	dec, err := l.Admit(&admission.Rota{}, sendJob(t, "cross", "l1", "l2", 0, 32))
	if err != nil || !dec.Admit {
		t.Fatalf("cross-shard job: %v %+v", err, dec)
	}
	mustAudit(t, l)
	info, ok := l.Commitment("cross")
	if !ok {
		t.Fatal("commitment missing")
	}
	if len(info.Locations) != 1 || info.Locations[0] != "l1" {
		// evaluate@l1 + send l1→l2 both charge shard l1 (cpu@l1,
		// network@l1>l2): one-shard footprint by construction.
		t.Errorf("footprint = %v", info.Locations)
	}
}

func TestAdvanceExpiresAndCompletes(t *testing.T) {
	l := NewLedger(cpuTheta(2, 32, "l1"), 0)
	policy := &admission.Rota{}
	dec, err := l.Admit(policy, cpuJob(t, "j1", "l1", 0, 8))
	if err != nil || !dec.Admit {
		t.Fatalf("%v %+v", err, dec)
	}
	finish := dec.Plan.Finish // 8 cpu at rate 2 → finishes at t=4

	if _, err := l.Advance(finish - 1); err != nil {
		t.Fatal(err)
	}
	if n := l.NumCommitments(); n != 1 {
		t.Fatalf("commitment completed early (n=%d)", n)
	}
	mustAudit(t, l)

	done, err := l.Advance(finish)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[0] != "j1" {
		t.Fatalf("completed = %v", done)
	}
	if n := l.NumCommitments(); n != 0 {
		t.Fatalf("commitments = %d after completion", n)
	}
	mustAudit(t, l)

	if _, err := l.Advance(finish - 2); err == nil {
		t.Fatal("clock moved backward")
	}
}

func TestAcquireOpensCapacity(t *testing.T) {
	l := NewLedger(resource.Set{}, 0)
	policy := &admission.Rota{}
	if dec, err := l.Admit(policy, cpuJob(t, "j1", "l1", 0, 8)); err != nil || dec.Admit {
		t.Fatalf("admitted on an empty ledger: %v %+v", err, dec)
	}
	l.Acquire(cpuTheta(2, 8, "l1"))
	if dec, err := l.Admit(policy, cpuJob(t, "j1", "l1", 0, 8)); err != nil || !dec.Admit {
		t.Fatalf("after acquire: %v %+v", err, dec)
	}
	mustAudit(t, l)
}

// TestLedgerNoOvercommitUnderRace fires ≥100 concurrent admit/release
// pairs at the ledger (run under -race) and then audits every shard: the
// sum of reserved plans must never exceed Θ.
func TestLedgerNoOvercommitUnderRace(t *testing.T) {
	locs := []resource.Location{"l1", "l2", "l3", "l4"}
	theta := cpuTheta(3, 512, locs...)
	for _, src := range locs {
		for _, dst := range locs {
			if src != dst {
				theta.Add(resource.NewTerm(u(1), resource.Link(src, dst), interval.New(0, 512)))
			}
		}
	}
	l := NewLedger(theta, 0)
	policy := &admission.Rota{}

	const workers = 16
	const perWorker = 8 // 128 admits, each followed by a release attempt
	var wg sync.WaitGroup
	var admitted, rejected, releaseFail int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("w%d-j%d", w, i)
				src := locs[rng.Intn(len(locs))]
				dst := locs[(rng.Intn(len(locs)-1)+1+indexOf(locs, src))%len(locs)]
				var job workload.Job
				if rng.Intn(2) == 0 {
					job = cpuJob(t, name, src, 0, 512)
				} else {
					job = sendJob(t, name, src, dst, 0, 512)
				}
				dec, err := l.Admit(policy, job)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					continue
				}
				mu.Lock()
				if dec.Admit {
					admitted++
				} else {
					rejected++
				}
				mu.Unlock()
				// Release roughly half of what we admit, concurrently
				// with other workers' admissions.
				if dec.Admit && rng.Intn(2) == 0 {
					if err := l.Release(name); err != nil {
						mu.Lock()
						releaseFail++
						mu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if admitted+rejected != workers*perWorker {
		t.Fatalf("accounting off: %d+%d != %d", admitted, rejected, workers*perWorker)
	}
	if releaseFail > 0 {
		t.Fatalf("%d releases of admitted jobs failed", releaseFail)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted; the race test exercised nothing")
	}
	mustAudit(t, l)
}

func indexOf(locs []resource.Location, loc resource.Location) int {
	for i, l := range locs {
		if l == loc {
			return i
		}
	}
	return 0
}
