package server

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/assure"
)

// Prometheus exposition for the daemon core. Every exported field of
// StatsResponse (and the TwoPhaseCounters it embeds) has a counterpart
// family here; the obs metrics-lint test enforces the mapping, so a
// stat added to /v1/stats without an exposition line fails CI.

// CollectMetrics implements obs.Collector: it appends the daemon's
// families to the exposition. The cluster layer calls this too, so in
// cluster mode one scrape covers both layers.
func (s *Server) CollectMetrics(e *obs.Exposition) {
	st := s.Stats()

	e.Gauge("rota_uptime_seconds", "Seconds since the daemon started.", nil, time.Since(s.started).Seconds())
	bi := st.Build
	e.Gauge("rota_build_info", "Build metadata as labels; the value is always 1.",
		obs.L("go_version", bi.GoVersion).With("module", bi.Module).With("version", bi.Version), 1)
	e.Gauge("rota_ledger_now", "The ledger clock, in ticks.", nil, float64(st.Now))
	e.Gauge("rota_ledger_shards", "Location shards in the live ledger.", nil, float64(st.Shards))
	e.Gauge("rota_ledger_commitments", "Live admitted commitments.", nil, float64(st.Commitments))
	e.Gauge("rota_ledger_holds", "Live leased two-phase holds.", nil, float64(st.Holds))

	e.Counter("rota_decisions_total", "Admission verdicts reached (admitted + rejected).", nil, float64(st.Decisions))
	e.Counter("rota_admitted_total", "Jobs admitted with a reserved witness plan.", nil, float64(st.Admitted))
	e.Counter("rota_rejected_total", "Jobs refused by the Theorem-4 check.", nil, float64(st.Rejected))
	e.Counter("rota_released_total", "Commitments released via the API.", nil, float64(st.Released))
	e.Counter("rota_errors_total", "Requests that failed before a verdict.", nil, float64(st.Errors))
	e.Counter("rota_timeouts_total", "Admissions that exceeded the decision deadline.", nil, float64(st.TimedOut))
	e.Counter("rota_late_decisions_total", "Decisions completed after their requester timed out (admits rolled back).", nil, float64(st.LateDecisions))

	e.Gauge("rota_queue_depth", "Decisions waiting for a worker.", nil, float64(st.QueueDepth))
	e.Gauge("rota_queue_capacity", "Decision queue capacity.", nil, float64(cap(s.queue)))
	e.Gauge("rota_inflight_decisions", "Decisions currently mid-search in the worker pool.", nil, float64(st.InFlight))
	e.Gauge("rota_workers", "Decision worker pool size.", nil, float64(s.cfg.Workers))

	tp := st.TwoPhase
	e.Counter("rota_twophase_total", "Two-phase participant operations served, by op.", obs.L("op", "prepare"), float64(tp.Prepares))
	e.Counter("rota_twophase_total", "", obs.L("op", "commit"), float64(tp.Commits))
	e.Counter("rota_twophase_total", "", obs.L("op", "abort"), float64(tp.Aborts))
	e.Counter("rota_leases_expired_total", "Prepared holds reclaimed by the lease-expiry sweep.", nil, float64(tp.LeasesExpired))
	e.Counter("rota_not_owned_rejects_total", "Requests naming locations this node does not own.", nil, float64(tp.NotOwnedRejects))

	ah := st.AdmitHot
	e.Counter("rota_admit_batches_total", "Admission batches executed on the hot path.", nil, float64(ah.Batches))
	e.Counter("rota_admit_batched_jobs_total", "Jobs decided through the admission batch path.", nil, float64(ah.BatchedJobs))
	e.Counter("rota_admit_plan_retries_total", "Optimistic plans re-run after a validation conflict.", nil, float64(ah.PlanRetries))
	e.Counter("rota_admit_plan_fallbacks_total", "Jobs that exhausted optimistic retries and planned under the shard locks.", nil, float64(ah.PlanFallbacks))
	e.Counter("rota_free_view_patches_total", "Incremental free-view cache patches applied.", nil, float64(ah.FreePatches))
	e.Counter("rota_free_view_recomputes_total", "Full free-view recomputes (theta minus reserved).", nil, float64(ah.FreeRecomputes))

	e.Summary("rota_decision_latency_us", "Worker-side decision service time (ledger lock + policy) in microseconds.", nil, s.latencyUS.Summary())

	q := st.Query
	e.Counter("rota_queries_total", "One-shot temporal queries evaluated.", nil, float64(q.Queries))
	e.Gauge("rota_ledger_epoch", "Ledger mutation epoch; every bump re-evaluates the standing queries.", nil, float64(q.Epoch))
	e.Gauge("rota_query_subscriptions", "Active standing-query subscriptions.", nil, float64(q.Subs.Active))
	e.Counter("rota_query_evals_total", "Standing-query re-evaluations run by the sweep loop.", nil, float64(q.Subs.Evals))
	e.Counter("rota_query_eval_errors_total", "Standing-query re-evaluations that errored (previous verdict kept).", nil, float64(q.Subs.EvalErrors))
	e.Counter("rota_query_flips_total", "Verdict flips detected across all standing queries.", nil, float64(q.Subs.Flips))
	e.Counter("rota_query_events_delivered_total", "Verdict events delivered to subscriber queues.", nil, float64(q.Subs.Delivered))
	e.Counter("rota_query_drops_total", "Verdict events dropped on full subscriber queues.", nil, float64(q.Subs.Drops))
	e.Counter("rota_query_webhook_errors_total", "Webhook verdict deliveries that failed.", nil, float64(q.Subs.WebhookErrors))
	e.Summary("rota_query_latency_us", "One-shot query evaluation time in microseconds.", nil, s.queryLatencyUS.Summary())

	sp := st.Spans
	e.Gauge("rota_span_store_capacity", "Span ring-buffer bound (0 when span tracing is off).", nil, float64(sp.Capacity))
	e.Gauge("rota_spans_live", "Finished spans currently held in the ring buffer.", nil, float64(sp.Live))
	e.Counter("rota_spans_recorded_total", "Spans recorded since start.", nil, float64(sp.Recorded))
	e.Counter("rota_spans_evicted_total", "Spans overwritten to keep the store within its bound.", nil, float64(sp.Evicted))

	as := st.Assure
	e.Gauge("rota_assure_active_promises", "Admitted jobs whose deadline window is still open here.", nil, float64(as.Active))
	e.Counter("rota_assure_promises_total", "Promise dispositions reached, by terminal state.", obs.L("state", "kept"), float64(as.Kept))
	e.Counter("rota_assure_promises_total", "", obs.L("state", "violated"), float64(as.Violated))
	e.Counter("rota_assure_promises_total", "", obs.L("state", "orphaned"), float64(as.Orphaned))
	e.Counter("rota_assure_promises_total", "", obs.L("state", "evicted-with-job"), float64(as.EvictedWithJob))
	e.Counter("rota_assure_promises_total", "", obs.L("state", "transferred"), float64(as.Transferred))
	e.Gauge("rota_assure_attainment", "Kept promises over terminal outcomes (1.0 before any outcome).", nil, as.Attainment)
	e.Gauge("rota_assure_burn_rate", "Promise violations per minute over the trailing 60s.", nil, as.BurnRate)
	e.Summary("rota_assure_slack_at_admit_ticks", "Deadline minus witness-plan finish at admission, in ticks.", nil, s.cfg.Assure.SlackAtAdmit())
	e.Summary("rota_assure_slack_at_completion_ticks", "Deadline minus completion time at resolution, in ticks.", nil, s.cfg.Assure.SlackAtCompletion())
	for _, lo := range sortedLocationOutcomes(s.cfg.Assure.Locations()) {
		e.Counter("rota_assure_location_promises_total", "Promise outcomes per footprint location.",
			obs.L("loc", lo.loc).With("state", "kept"), float64(lo.out.Kept))
		e.Counter("rota_assure_location_promises_total", "",
			obs.L("loc", lo.loc).With("state", "violated"), float64(lo.out.Violated))
		e.Gauge("rota_assure_location_attainment", "Per-location SLO attainment.",
			obs.L("loc", lo.loc), lo.out.Attainment)
	}

	fr := st.FlightRec
	e.Gauge("rota_flightrec_snapshots", "Flight-recorder snapshots currently held.", nil, float64(fr.Snapshots))
	e.Gauge("rota_flightrec_snapshot_capacity", "Flight-recorder snapshot ring bound.", nil, float64(fr.SnapshotCapacity))
	e.Counter("rota_flightrec_triggers_total", "Anomaly triggers fired (including deduplicated ones).", nil, float64(fr.Triggers))
	e.Counter("rota_flightrec_triggers_deduped_total", "Triggers suppressed by the per-kind dedup window.", nil, float64(fr.Deduped))
	e.Counter("rota_flightrec_snapshots_evicted_total", "Snapshots evicted to keep the ring within its bound.", nil, float64(fr.Evicted))
	e.Gauge("rota_flightrec_events_buffered", "Log lines currently in the flight-recorder ring.", nil, float64(fr.Events))
	e.Gauge("rota_flightrec_event_capacity", "Flight-recorder event ring bound.", nil, float64(fr.EventCapacity))

	for _, es := range obs.SortedEndpoints(s.httpStats) {
		es.Collect(e, obs.L("layer", "server"))
	}
}

// sortedLocationOutcomes orders the per-location assure table so the
// exposition is deterministic.
func sortedLocationOutcomes(m map[string]assure.LocationOutcomes) []locOutcome {
	if len(m) == 0 {
		return nil
	}
	out := make([]locOutcome, 0, len(m))
	for loc, lo := range m {
		out = append(out, locOutcome{loc: loc, out: lo})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].loc < out[j].loc })
	return out
}

type locOutcome struct {
	loc string
	out assure.LocationOutcomes
}
