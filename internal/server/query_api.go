package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/query"
	"repro/internal/resource"
)

// The rotaquery surface: one-shot temporal queries (GET/POST /v1/query)
// and continuous feasibility subscriptions (/v1/watch) whose verdicts
// are re-evaluated on every ledger epoch change and streamed as
// verdict-flip events over SSE, or POSTed to a webhook.

// QueryRequest is the POST /v1/query body: exactly one of the compact
// text form or the JSON AST.
type QueryRequest struct {
	Query string          `json:"query,omitempty"`
	AST   json.RawMessage `json:"ast,omitempty"`
}

// QueryResponse is a one-shot query verdict.
type QueryResponse struct {
	// Query is the canonical text rendering of what was evaluated.
	Query string `json:"query"`
	Holds bool   `json:"holds"`
	// Formula is the core formula the query compiled to, paper notation.
	Formula string `json:"formula"`
	// Now and Epoch identify the ledger state the verdict was taken
	// against.
	Now       interval.Time `json:"now"`
	Epoch     uint64        `json:"epoch"`
	ElapsedUS int64         `json:"elapsed_us"`
}

// DecodeQueryRequest decodes and compiles one query body. Exported so
// the fuzz harness exercises exactly the wire path.
func DecodeQueryRequest(body []byte) (*query.Compiled, error) {
	var req QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("server: bad query body: %w", err)
	}
	switch {
	case req.Query != "" && req.AST != nil:
		return nil, errors.New("server: query body needs query or ast, not both")
	case req.Query != "":
		return query.ParseText(req.Query)
	case req.AST != nil:
		return query.ParseJSON(req.AST)
	default:
		return nil, errors.New("server: query body needs query or ast")
	}
}

// evalQuery resolves the query's named refs and footprint against the
// ledger, snapshots the free view and evaluates. The epoch is read
// before the free view: a mutation racing the snapshot lands a later
// epoch, so the subscription manager's next sweep re-checks — verdicts
// are never stale across a quiet epoch.
func (s *Server) evalQuery(c *query.Compiled) (query.Result, query.Snapshot, error) {
	epoch := s.ledger.Epoch()
	comms := make(map[string]query.Commitment)
	for _, name := range c.Names() {
		info, ok := s.ledger.Commitment(name)
		if !ok {
			continue // absent refs evaluate to false, not errors
		}
		demand, err := resource.ParseSet(info.Demand)
		if err != nil {
			return query.Result{}, query.Snapshot{}, fmt.Errorf("server: commitment %s demand: %w", name, err)
		}
		locs := make([]resource.Location, len(info.Locations))
		for i, loc := range info.Locations {
			locs[i] = resource.Location(loc)
		}
		comms[name] = query.Commitment{
			Name:      info.Name,
			Admitted:  info.Admitted,
			Finish:    info.Finish,
			Deadline:  info.Deadline,
			Locations: locs,
			Demand:    demand,
		}
	}
	var (
		free resource.Set
		now  interval.Time
	)
	if locs := c.Footprint(comms); len(locs) > 0 {
		var err error
		free, now, err = s.ledger.FreeView(locs)
		if err != nil {
			return query.Result{}, query.Snapshot{}, err
		}
	} else {
		now = s.ledger.Now()
	}
	snap := query.Snapshot{Now: now, Epoch: epoch, Free: free, Commitments: comms}
	res, err := c.Evaluate(snap)
	return res, snap, err
}

// managerEval adapts evalQuery for the subscription manager. An
// installed override (SetWatchEvaluator) takes precedence: the cluster
// layer injects one that fans footprints spanning other owners out to
// the live ownership table, so a standing watch keeps evaluating
// correctly after the locations it names change hands.
func (s *Server) managerEval(c *query.Compiled) (query.Verdict, error) {
	if fn, ok := s.watchEval.Load().(query.Evaluator); ok && fn != nil {
		return fn(c)
	}
	return s.LocalEval(c)
}

// LocalEval evaluates a compiled query against this node's ledger only
// — the building block a cluster-aware watch evaluator falls back to
// for all-local footprints.
func (s *Server) LocalEval(c *query.Compiled) (query.Verdict, error) {
	res, snap, err := s.evalQuery(c)
	if err != nil {
		return query.Verdict{}, err
	}
	return query.Verdict{Holds: res.Holds, Epoch: snap.Epoch, Now: snap.Now}, nil
}

// SetWatchEvaluator overrides the evaluator standing watches re-run on
// every ledger epoch. Intended to be called once, before the server
// accepts subscriptions.
func (s *Server) SetWatchEvaluator(fn query.Evaluator) {
	s.watchEval.Store(fn)
}

// Queries exposes the subscription manager (selftest and tests).
func (s *Server) Queries() *query.Manager {
	return s.queries
}

// EvalQuery runs a compiled query against the live ledger (cluster
// fan-out delegates single-owner queries here, and the selftest uses it
// for merged-view equivalence checks).
func (s *Server) EvalQuery(c *query.Compiled) (QueryResponse, error) {
	start := time.Now()
	res, snap, err := s.evalQuery(c)
	if err != nil {
		return QueryResponse{}, err
	}
	s.queryCount.Add(1)
	elapsed := time.Since(start).Microseconds()
	s.queryLatencyUS.Observe(float64(elapsed))
	return QueryResponse{
		Query:     c.Source(),
		Holds:     res.Holds,
		Formula:   res.Formula,
		Now:       snap.Now,
		Epoch:     snap.Epoch,
		ElapsedUS: elapsed,
	}, nil
}

// handleQuery serves GET /v1/query. ?name= is the commitment lookup the
// endpoint has always answered; ?q= evaluates a one-shot temporal
// query in the compact text form.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("name"); name != "" {
		info, ok := s.ledger.Commitment(name)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknown, name))
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, errors.New("server: query needs ?name= or ?q="))
		return
	}
	c, err := query.ParseText(q)
	if err != nil {
		s.errored.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.serveQuery(w, r, c)
}

// handleQueryPost serves POST /v1/query: the text or JSON-AST wire form.
func (s *Server) handleQueryPost(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		s.errored.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	c, err := DecodeQueryRequest(body)
	if err != nil {
		s.errored.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.serveQuery(w, r, c)
}

// serveQuery evaluates a compiled one-shot query and writes the verdict.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, c *query.Compiled) {
	_, sp := s.cfg.Spans.Start(r.Context(), span.KindQuery)
	defer sp.End()
	sp.Attr("query", c.Source())
	resp, err := s.EvalQuery(c)
	if err != nil {
		s.errored.Add(1)
		sp.SetStatus(span.StatusError)
		sp.Attr("error", err)
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotOwned) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, err)
		return
	}
	sp.Attr("holds", resp.Holds)
	sp.Attr("epoch", resp.Epoch)
	s.obs.Log("query.oneshot",
		"trace", obs.Trace(r.Context()), "query", resp.Query,
		"holds", resp.Holds, "epoch", resp.Epoch, "elapsed_us", resp.ElapsedUS)
	writeJSON(w, http.StatusOK, resp)
}

// watchQueueLen parses the optional ?queue= bound on the subscriber's
// event queue.
func watchQueueLen(r *http.Request) int {
	if raw := r.URL.Query().Get("queue"); raw != "" {
		if n, err := strconv.Atoi(raw); err == nil {
			return n
		}
	}
	return 16
}

// handleWatch serves GET /v1/watch?q=: a standing query delivered as
// server-sent events. The first event is the current verdict; every
// subsequent one is a verdict flip tagged with the epoch and mutation
// kind that caused it. The stream ends when the client disconnects or
// the daemon shuts down.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, errors.New("server: watch needs ?q="))
		return
	}
	c, err := query.ParseText(q)
	if err != nil {
		s.errored.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("server: response writer cannot stream"))
		return
	}
	_, sp := s.cfg.Spans.Start(r.Context(), span.KindWatch)
	defer sp.End()
	sp.Attr("query", c.Source())
	sub, err := s.queries.Subscribe(c, watchQueueLen(r))
	if err != nil {
		s.errored.Add(1)
		sp.SetStatus(span.StatusError)
		sp.Attr("error", err)
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotOwned) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, err)
		return
	}
	defer sub.Close()
	sp.Attr("sub", sub.ID())

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	delivered := 0
	defer func() { sp.Attr("events", delivered) }()
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				return // manager shut down
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: verdict\ndata: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
			delivered++
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// webhookRequest registers a standing query delivered by POSTing each
// verdict event as JSON to URL.
type webhookRequest struct {
	Query string `json:"query"`
	URL   string `json:"url"`
}

// handleWatchHook serves POST /v1/watch: webhook-delivered standing
// queries. Returns the subscription id; DELETE /v1/watch?id= removes it.
func (s *Server) handleWatchHook(w http.ResponseWriter, r *http.Request) {
	var req webhookRequest
	if err := decodeInto(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" || req.URL == "" {
		httpError(w, http.StatusBadRequest, errors.New("server: watch hook needs query and url"))
		return
	}
	c, err := query.ParseText(req.Query)
	if err != nil {
		s.errored.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sub, err := s.queries.SubscribeWebhook(c, req.URL, nil, watchQueueLen(r))
	if err != nil {
		s.errored.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotOwned) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, err)
		return
	}
	s.webhookMu.Lock()
	s.webhooks[sub.ID()] = sub
	s.webhookMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sub": sub.ID(), "query": sub.Query()})
}

// handleWatchDrop serves DELETE /v1/watch?id=: removes a webhook
// subscription.
func (s *Server) handleWatchDrop(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, errors.New("server: watch delete needs ?id="))
		return
	}
	s.webhookMu.Lock()
	sub, ok := s.webhooks[id]
	delete(s.webhooks, id)
	s.webhookMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("server: unknown watch subscription %d", id))
		return
	}
	sub.Close()
	writeJSON(w, http.StatusOK, map[string]any{"removed": id})
}
