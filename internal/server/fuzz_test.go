package server

import (
	"encoding/json"
	"testing"

	"repro/internal/admission"
	"repro/internal/resource"
	"repro/internal/workload"
)

// FuzzDecodeAdmitRequest throws arbitrary bytes at the admit wire path —
// decode, validate, and (when a job survives validation) a full ledger
// admission — asserting none of it panics. Seeds cover the interesting
// malformed shapes: bad resource terms, overlapping intervals, huge
// rates, negative amounts.
func FuzzDecodeAdmitRequest(f *testing.F) {
	// A well-formed job as produced by the workload generator.
	jobs, err := workload.Generate(workload.Config{
		Seed: 3, Locations: []resource.Location{"l1", "l2"}, NumJobs: 1,
		ActorsMin: 1, ActorsMax: 2, StepsMin: 1, StepsMax: 3,
		SendProb: 0.5, EvalWeightMax: 2, SlackFactor: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	if seed, err := json.Marshal(jobs[0]); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"Dist":{"Name":"j","Start":0,"Deadline":9223372036854775807},"Arrival":0}`))
	f.Add([]byte(`{"Dist":{"Name":"j","Start":0,"Deadline":8,"Actors":[
		{"Actor":"a","Steps":[{"Action":{"Op":2,"Actor":"a","Loc":"l1","Size":1},"Amounts":{"cpu@l1":9223372036854775807}}]}
	]},"Arrival":0}`))
	f.Add([]byte(`{"Dist":{"Name":"j","Start":0,"Deadline":8,"Actors":[
		{"Actor":"a","Steps":[{"Action":{"Op":2,"Actor":"a","Loc":"l1","Size":1},"Amounts":{"cpu@l1":-1}}]}
	]},"Arrival":0}`))
	f.Add([]byte(`{"Dist":{"Name":"j","Start":5,"Deadline":3},"Arrival":-9}`))
	f.Add([]byte(`{"Dist":{"Name":"j","Start":0,"Deadline":8,"Actors":[
		{"Actor":"a","Steps":[{"Action":{"Op":1,"Actor":"a","Loc":"l1","Dest":"l1>l2>l3","Target":"b","Size":1},"Amounts":{"network@l1>l2>l3":5}}]}
	]},"Arrival":0}`))

	policy := &admission.Rota{}
	f.Fuzz(func(t *testing.T, data []byte) {
		job, err := DecodeAdmitRequest(data)
		if err != nil {
			return
		}
		// Whatever decodes cleanly must also be admissible or rejectable
		// without panicking, and must leave the ledger invariant intact.
		l := NewLedger(cpuTheta(2, 64, "l1", "l2"), 0)
		if _, err := l.Admit(policy, job); err == nil {
			if err := l.Audit(); err != nil {
				t.Fatalf("invariant broken by %q: %v", data, err)
			}
		}
	})
}

// FuzzDecodePrepareRequest throws arbitrary bytes at the federation wire
// path — decode, validate, and (when a prepare survives validation) a
// full prepare/commit/abort cycle — asserting none of it panics and the
// ledger invariant survives whatever a malicious peer sends.
func FuzzDecodePrepareRequest(f *testing.F) {
	f.Add([]byte(`{"key":"n1.2pc.1","name":"j1","demand":"2:cpu@l1:(0,10)","finish":10,"deadline":20,"lease_expiry":50}`))
	f.Add([]byte(`{"key":"k","name":"j","demand":"1:cpu@l1:(0,5),1:network@l1>l2:(2,4)","finish":5,"deadline":8,"lease_expiry":9}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"key":"k","name":"j","demand":"","finish":1,"deadline":1,"lease_expiry":1}`))
	f.Add([]byte(`{"key":"k","name":"j","demand":"9223372036854775807:cpu@l1:(0,9223372036854775807)","finish":3,"deadline":2,"lease_expiry":1}`))
	f.Add([]byte(`{"key":"k","name":"j","demand":"-1:cpu@l1:(0,3)","finish":3,"deadline":4,"lease_expiry":5}`))
	f.Add([]byte(`{"key":"k","name":"j","demand":"2:cpu@l9:(0,3)","finish":3,"deadline":4,"lease_expiry":5}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, demand, err := DecodePrepareRequest(data)
		if err != nil {
			return
		}
		l := NewLedger(cpuTheta(2, 64, "l1", "l2"), 0)
		l.RestrictOwned([]resource.Location{"l1", "l2"})
		if err := l.Prepare(req.Key, req.Name, demand, req.Finish, req.Deadline, req.Expiry); err == nil {
			if err := l.Audit(); err != nil {
				t.Fatalf("invariant broken by prepare %q: %v", data, err)
			}
			if err := l.Commit(req.Key); err == nil {
				if err := l.Abort(req.Key); err != nil {
					t.Fatalf("rollback of %q failed: %v", data, err)
				}
			}
			if err := l.Audit(); err != nil {
				t.Fatalf("invariant broken after cycle %q: %v", data, err)
			}
		}
	})
}

// FuzzDecodeFinishRequest fuzzes the commit/abort decoder: whatever
// decodes must be safe to commit (unknown) and abort (no-op) cold.
func FuzzDecodeFinishRequest(f *testing.F) {
	f.Add([]byte(`{"key":"n1.2pc.1"}`))
	f.Add([]byte(`{"key":""}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeFinishRequest(data)
		if err != nil {
			return
		}
		l := NewLedger(cpuTheta(2, 64, "l1"), 0)
		if err := l.Commit(req.Key); err == nil {
			t.Fatalf("cold commit of %q succeeded", req.Key)
		}
		if err := l.Abort(req.Key); err != nil {
			t.Fatalf("cold abort of %q failed: %v", req.Key, err)
		}
	})
}

// FuzzParseAcquireTheta fuzzes the acquire endpoint's resource-set
// literal parser (malformed terms, nested parens, huge rates).
func FuzzParseAcquireTheta(f *testing.F) {
	f.Add("2:cpu@l1:(0,10)")
	f.Add("2:cpu@l1:(0,10),1:network@l1>l2:(5,9)")
	f.Add("9223372036854775807:cpu@l1:(0,9223372036854775807)")
	f.Add("2:cpu@l1:(10,0)")
	f.Add(":::,,,(((")
	f.Add("-5:cpu@l1:(0,3)")
	f.Fuzz(func(t *testing.T, text string) {
		set, err := resource.ParseSet(text)
		if err != nil {
			return
		}
		// A parsed set must round-trip through its compact form.
		if _, err := resource.ParseSet(set.Compact()); err != nil {
			t.Fatalf("compact form of %q does not re-parse: %v", text, err)
		}
	})
}
