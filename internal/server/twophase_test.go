package server

import (
	"errors"
	"testing"

	"repro/internal/resource"
)

func mustSet(tb testing.TB, text string) resource.Set {
	tb.Helper()
	s, err := resource.ParseSet(text)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestPrepareCommitLifecycle(t *testing.T) {
	l := NewLedger(cpuTheta(2, 100, "l1", "l2"), 0)
	demand := mustSet(t, "2:cpu@l1:(0,10)")
	if err := l.Prepare("k1", "j1", demand, 10, 20, 50); err != nil {
		t.Fatal(err)
	}
	if got := l.NumHolds(); got != 1 {
		t.Fatalf("NumHolds = %d, want 1", got)
	}
	mustAudit(t, l) // leased holds must be dominated by Θ too
	if err := l.Commit("k1"); err != nil {
		t.Fatal(err)
	}
	if got := l.NumHolds(); got != 0 {
		t.Fatalf("NumHolds after commit = %d, want 0", got)
	}
	if got := l.NumCommitments(); got != 1 {
		t.Fatalf("NumCommitments = %d, want 1", got)
	}
	// Commit is idempotent on its key.
	if err := l.Commit("k1"); err != nil {
		t.Fatalf("idempotent commit: %v", err)
	}
	if got := l.NumCommitments(); got != 1 {
		t.Fatalf("idempotent commit duplicated: %d commitments", got)
	}
	mustAudit(t, l)
	if err := l.Release("j1"); err != nil {
		t.Fatal(err)
	}
	mustAudit(t, l)
	c := l.TwoPhase()
	if c.Prepares != 1 || c.Commits != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPrepareIdempotencyAndDuplicates(t *testing.T) {
	l := NewLedger(cpuTheta(2, 100, "l1"), 0)
	demand := mustSet(t, "2:cpu@l1:(0,10)") // fills the shard over (0,10)
	if err := l.Prepare("k1", "j1", demand, 10, 20, 50); err != nil {
		t.Fatal(err)
	}
	// Retrying the same key must not double-reserve.
	if err := l.Prepare("k1", "j1", demand, 10, 20, 50); err != nil {
		t.Fatalf("retried prepare: %v", err)
	}
	if got := l.NumHolds(); got != 1 {
		t.Fatalf("NumHolds = %d, want 1", got)
	}
	mustAudit(t, l)
	// A different key wanting the same capacity is a capacity rejection.
	if err := l.Prepare("k2", "j2", demand, 10, 20, 50); !errors.Is(err, ErrOvercommit) {
		t.Fatalf("overcommitting prepare: %v, want ErrOvercommit", err)
	}
	// A different key re-using the held name is a duplicate.
	later := mustSet(t, "1:cpu@l1:(20,30)")
	if err := l.Prepare("k3", "j1", later, 30, 40, 50); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("name-stealing prepare: %v, want ErrDuplicate", err)
	}
	// Re-preparing a committed key also succeeds without reserving again.
	if err := l.Commit("k1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Prepare("k1", "j1", demand, 10, 20, 50); err != nil {
		t.Fatalf("prepare after commit: %v", err)
	}
	if got := l.NumHolds(); got != 0 {
		t.Fatalf("NumHolds = %d, want 0 (no hold recreated after commit)", got)
	}
	mustAudit(t, l)
}

func TestPrepareRejectionsLeaveLedgerUntouched(t *testing.T) {
	l := NewLedger(cpuTheta(2, 100, "l1", "l2"), 0)
	before, _, err := l.FreeView([]resource.Location{"l1", "l2"})
	if err != nil {
		t.Fatal(err)
	}
	// Demands more than Θ offers on l1.
	demand := mustSet(t, "3:cpu@l1:(0,10)")
	if err := l.Prepare("k1", "j1", demand, 10, 20, 50); !errors.Is(err, ErrOvercommit) {
		t.Fatalf("err = %v, want ErrOvercommit", err)
	}
	// Expiry not in the future.
	ok := mustSet(t, "1:cpu@l1:(0,10)")
	if err := l.Prepare("k2", "j2", ok, 10, 20, 0); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("err = %v, want ErrLeaseExpired", err)
	}
	after, _, err := l.FreeView([]resource.Location{"l1", "l2"})
	if err != nil {
		t.Fatal(err)
	}
	if before.Compact() != after.Compact() {
		t.Fatalf("rejected prepares changed the free view: %s -> %s", before.Compact(), after.Compact())
	}
	if got := l.NumHolds(); got != 0 {
		t.Fatalf("NumHolds = %d, want 0", got)
	}
	mustAudit(t, l)
}

func TestPrepareNotOwned(t *testing.T) {
	l := NewLedger(cpuTheta(2, 100, "l1", "l2"), 0)
	l.RestrictOwned([]resource.Location{"l1"})
	demand := mustSet(t, "1:cpu@l2:(0,10)")
	if err := l.Prepare("k1", "j1", demand, 10, 20, 50); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("err = %v, want ErrNotOwned", err)
	}
	if got := l.TwoPhase().NotOwnedRejects; got != 1 {
		t.Fatalf("NotOwnedRejects = %d, want 1", got)
	}
	if _, _, err := l.FreeView([]resource.Location{"l2"}); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("free view of unowned location: %v, want ErrNotOwned", err)
	}
}

func TestLeaseExpirySweep(t *testing.T) {
	l := NewLedger(cpuTheta(2, 100, "l1"), 0)
	demand := mustSet(t, "2:cpu@l1:(0,50)")
	if err := l.Prepare("k1", "j1", demand, 50, 60, 10); err != nil {
		t.Fatal(err)
	}
	// Before expiry the hold pins its capacity.
	if _, err := l.Advance(5); err != nil {
		t.Fatal(err)
	}
	if got := l.NumHolds(); got != 1 {
		t.Fatalf("NumHolds at t=5 = %d, want 1", got)
	}
	if err := l.Prepare("k2", "j2", mustSet(t, "2:cpu@l1:(6,20)"), 20, 30, 40); !errors.Is(err, ErrOvercommit) {
		t.Fatalf("held capacity should reject new prepare, got %v", err)
	}
	mustAudit(t, l)
	// Past expiry the sweep reclaims it.
	if _, err := l.Advance(11); err != nil {
		t.Fatal(err)
	}
	if got := l.NumHolds(); got != 0 {
		t.Fatalf("NumHolds after sweep = %d, want 0", got)
	}
	if got := l.TwoPhase().LeasesExpired; got != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", got)
	}
	mustAudit(t, l)
	// The reclaimed capacity is usable again.
	if err := l.Prepare("k3", "j3", mustSet(t, "2:cpu@l1:(12,20)"), 20, 30, 40); err != nil {
		t.Fatalf("prepare after sweep: %v", err)
	}
	mustAudit(t, l)
	// The swept key is gone: commit finds nothing.
	if err := l.Commit("k1"); !errors.Is(err, ErrUnknownHold) {
		t.Fatalf("commit of swept key: %v, want ErrUnknownHold", err)
	}
}

func TestAbortReleasesHoldAndRollsBackCommit(t *testing.T) {
	l := NewLedger(cpuTheta(2, 100, "l1"), 0)
	demand := mustSet(t, "2:cpu@l1:(0,10)")
	if err := l.Prepare("k1", "j1", demand, 10, 20, 50); err != nil {
		t.Fatal(err)
	}
	if err := l.Abort("k1"); err != nil {
		t.Fatal(err)
	}
	if got := l.NumHolds(); got != 0 {
		t.Fatalf("NumHolds after abort = %d, want 0", got)
	}
	// Abort is idempotent, and unknown keys are a no-op success.
	if err := l.Abort("k1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Abort("never-prepared"); err != nil {
		t.Fatal(err)
	}
	// The capacity is free again.
	if err := l.Prepare("k2", "j2", demand, 10, 20, 50); err != nil {
		t.Fatal(err)
	}
	// Abort after commit rolls the commitment back — how a coordinator
	// undoes a partial commit.
	if err := l.Commit("k2"); err != nil {
		t.Fatal(err)
	}
	if err := l.Abort("k2"); err != nil {
		t.Fatal(err)
	}
	if got := l.NumCommitments(); got != 0 {
		t.Fatalf("NumCommitments after rollback = %d, want 0", got)
	}
	mustAudit(t, l)
}

func TestSnapshotListsHolds(t *testing.T) {
	l := NewLedger(cpuTheta(4, 100, "l1"), 0)
	if err := l.Prepare("kb", "jb", mustSet(t, "1:cpu@l1:(0,10)"), 10, 20, 30); err != nil {
		t.Fatal(err)
	}
	if err := l.Prepare("ka", "ja", mustSet(t, "1:cpu@l1:(0,10)"), 10, 20, 30); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	if len(snap.Holds) != 2 || snap.Holds[0].Key != "ka" || snap.Holds[1].Key != "kb" {
		t.Fatalf("snapshot holds = %+v, want ka then kb", snap.Holds)
	}
}
