package formula

import (
	"testing"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

func jobsMap(t testing.TB) map[string]compute.Distributed {
	t.Helper()
	comp, err := cost.Realize(cost.Paper(), "a1", compute.Evaluate("a1", "l1", 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := compute.NewDistributed("job1", 0, 10, comp)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]compute.Distributed{"job1": d}
}

func TestParseBasicForms(t *testing.T) {
	jobs := jobsMap(t)
	tests := []struct {
		in   string
		want string // rendered via core.Formula.String()
	}{
		{"true", "true"},
		{"false", "false"},
		{"!true", "¬true"},
		{"<> true", "◇true"},
		{"[] false", "□false"},
		{"true & false", "(true ∧ false)"},
		{"true | false", "(true ∨ false)"},
		{"true & false | true", "((true ∧ false) ∨ true)"},
		{"true & (false | true)", "(true ∧ (false ∨ true))"},
		{"!<>![]true", "¬◇¬□true"},
		{"satisfy{8:cpu@l1}(0,20)", "satisfy(ρ{[8]⟨cpu,l1⟩}(0,20))"},
		{"satisfy{8:cpu@l1, 4:network@l1>l2}(0,20)",
			"satisfy(ρ{[8]⟨cpu,l1⟩, [4]⟨network,l1→l2⟩}(0,20))"},
		{"satisfy{2.5:cpu@l1}(0,5)", "satisfy(ρ{[2.500]⟨cpu,l1⟩}(0,5))"},
		{"<> satisfy(job1) & true", "(◇satisfy(ρ(Λ job1: {a1})(0,10)) ∧ true)"},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			f, err := Parse(tt.in, jobs)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.in, err)
			}
			if got := f.String(); got != tt.want {
				t.Errorf("Parse(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestParsePrecedence(t *testing.T) {
	// ! binds tighter than &, & tighter than |.
	f, err := Parse("!true & false | true", nil)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := f.(core.Or)
	if !ok {
		t.Fatalf("top is %T, want Or", f)
	}
	and, ok := or.L.(core.And)
	if !ok {
		t.Fatalf("left is %T, want And", or.L)
	}
	if _, ok := and.L.(core.Not); !ok {
		t.Fatalf("left-left is %T, want Not", and.L)
	}
}

func TestParseErrors(t *testing.T) {
	jobs := jobsMap(t)
	bad := []string{
		"",
		"tru",
		"true false",
		"true &",
		"| true",
		"(true",
		"()",
		"!",
		"<>",
		"satisfy",
		"satisfy{}(0,5)",
		"satisfy{x:cpu@l1}(0,5)",
		"satisfy{-3:cpu@l1}(0,5)",
		"satisfy{8 cpu@l1}(0,5)",
		"satisfy{8:cpu}(0,5)",
		"satisfy{8:cpu@l1}(0 5)",
		"satisfy{8:cpu@l1}(0,5",
		"satisfy{8:cpu@l1}(0.5,5)",
		"satisfy{8:cpu@l1>}(0,5)",
		"satisfy(ghost)",
		"satisfy(job1",
		"satisfy[job1]",
		"true $",
		"satisfy{8:cpu@l1}",
	}
	for _, in := range bad {
		if _, err := Parse(in, jobs); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParsedFormulaEvaluates(t *testing.T) {
	// End-to-end: parse a formula and evaluate it on a real path.
	theta := resource.NewSet(resource.NewTerm(resource.FromUnits(2), resource.CPUAt("l1"), interval.New(0, 10)))
	state := core.NewState(theta, 0)
	res := core.Run(state, 10, 1)

	jobs := jobsMap(t)
	for _, tt := range []struct {
		in   string
		want bool
	}{
		{"satisfy{20:cpu@l1}(0,10)", true},
		{"satisfy{21:cpu@l1}(0,10)", false},
		{"<> !satisfy{20:cpu@l1}(0,10)", true},
		{"[] satisfy{20:cpu@l1}(0,10)", false},
		{"satisfy(job1)", true}, // 8 cpu within (0,10) fits easily
		{"satisfy(job1) & !satisfy{21:cpu@l1}(0,10)", true},
	} {
		f, err := Parse(tt.in, jobs)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.in, err)
		}
		got, err := core.Eval(res.Path, 0, f)
		if err != nil {
			t.Fatalf("Eval(%q): %v", tt.in, err)
		}
		if got != tt.want {
			t.Errorf("Eval(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseNumericLocations(t *testing.T) {
	// Locations that look numeric are accepted.
	f, err := Parse("satisfy{1:cpu@42}(0,5)", nil)
	if err != nil {
		t.Fatal(err)
	}
	atom, ok := f.(core.SatisfySimple)
	if !ok {
		t.Fatalf("got %T", f)
	}
	if _, ok := atom.Req.Amounts[resource.At("cpu", "42")]; !ok {
		t.Errorf("amounts = %v", atom.Req.Amounts)
	}
}

func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"true", "!<>[]false", "satisfy{8:cpu@l1}(0,20)",
		"satisfy{8:cpu@l1, 4:network@l1>l2}(0,20) & true",
		"((true | false) & !true)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 512 {
			return
		}
		parsed, err := Parse(input, nil)
		if err != nil {
			return
		}
		// A successfully parsed formula must render and re-parse to the
		// same rendering when the rendering uses ASCII-expressible
		// operators only... our String uses unicode symbols, so instead
		// check the parse is deterministic and rendering is non-empty.
		if parsed.String() == "" {
			t.Fatalf("parsed %q renders empty", input)
		}
		again, err := Parse(input, nil)
		if err != nil {
			t.Fatalf("non-deterministic parse of %q: %v", input, err)
		}
		if again.String() != parsed.String() {
			t.Fatalf("non-deterministic parse of %q", input)
		}
	})
}
