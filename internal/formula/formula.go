// Package formula parses a text syntax for ROTA well-formed formulas
// into core.Formula values, so the CLI tools can evaluate temporal
// queries against computation paths.
//
// Grammar (ASCII-friendly; the paper's symbols in comments):
//
//	formula  := or
//	or       := and { "|" and }                     ∨ (extension)
//	and      := unary { "&" unary }                 ∧ (extension)
//	unary    := "!" unary                           ¬
//	          | "<>" unary                          ◇ eventually
//	          | "[]" unary                          □ always
//	          | primary
//	primary  := "true" | "false"
//	          | "(" formula ")"
//	          | atom
//	atom     := "satisfy" "{" amounts "}" "(" t1 "," t2 ")"   simple ρ(γ,s,d)
//	          | "satisfy" "(" ident ")"                       ρ(Λ,s,d) of a named job
//	amounts  := amount { "," amount }
//	amount   := qty ":" kind "@" loc [ ">" loc ]
//
// Examples:
//
//	satisfy{8:cpu@l1}(0,20)
//	<> satisfy{8:cpu@l1, 4:network@l1>l2}(0,20)
//	[] !satisfy(job1)
//	(satisfy(j1) & !satisfy(j2)) | false
//
// Named-job atoms are resolved through the Jobs map supplied at parse
// time (typically the jobs of a scenario file).
package formula

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/resource"
)

// Parse parses a formula. jobs resolves satisfy(<name>) atoms; it may be
// nil when the formula uses only simple atoms.
func Parse(input string, jobs map[string]compute.Distributed) (core.Formula, error) {
	p := &parser{input: input, jobs: jobs}
	p.next()
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q after formula", p.tok.text)
	}
	return f, nil
}

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokColon
	tokAt
	tokGT
	tokBang
	tokAmp
	tokPipe
	tokDiamond // <>
	tokBox     // []
	tokInvalid // stray byte
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type parser struct {
	input string
	pos   int
	tok   token
	jobs  map[string]compute.Distributed
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("formula: position %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

// next advances to the next token.
func (p *parser) next() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.input[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{tokLParen, "(", start}
	case c == ')':
		p.pos++
		p.tok = token{tokRParen, ")", start}
	case c == '{':
		p.pos++
		p.tok = token{tokLBrace, "{", start}
	case c == '}':
		p.pos++
		p.tok = token{tokRBrace, "}", start}
	case c == ',':
		p.pos++
		p.tok = token{tokComma, ",", start}
	case c == ':':
		p.pos++
		p.tok = token{tokColon, ":", start}
	case c == '@':
		p.pos++
		p.tok = token{tokAt, "@", start}
	case c == '!':
		p.pos++
		p.tok = token{tokBang, "!", start}
	case c == '&':
		p.pos++
		p.tok = token{tokAmp, "&", start}
	case c == '|':
		p.pos++
		p.tok = token{tokPipe, "|", start}
	case c == '<' && p.pos+1 < len(p.input) && p.input[p.pos+1] == '>':
		p.pos += 2
		p.tok = token{tokDiamond, "<>", start}
	case c == '[' && p.pos+1 < len(p.input) && p.input[p.pos+1] == ']':
		p.pos += 2
		p.tok = token{tokBox, "[]", start}
	case c == '>':
		p.pos++
		p.tok = token{tokGT, ">", start}
	case c == '-' || c >= '0' && c <= '9':
		end := p.pos + 1
		for end < len(p.input) && (p.input[end] >= '0' && p.input[end] <= '9' || p.input[end] == '.') {
			end++
		}
		p.tok = token{tokNumber, p.input[p.pos:end], start}
		p.pos = end
	case isIdentByte(c):
		end := p.pos
		for end < len(p.input) && isIdentByte(p.input[end]) {
			end++
		}
		p.tok = token{tokIdent, p.input[p.pos:end], start}
		p.pos = end
	default:
		p.tok = token{tokInvalid, string(c), start}
		p.pos = len(p.input) // force termination; errors report the stray byte
	}
}

// isIdentByte accepts letters, digits, underscore and dot (hyphens are
// excluded so they read as part of negative numbers, not names).
func isIdentByte(c byte) bool {
	return c == '_' || c == '.' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *parser) expect(kind tokenKind, what string) error {
	if p.tok.kind != kind {
		return p.errorf("expected %s, found %q", what, p.tok.text)
	}
	p.next()
	return nil
}

func (p *parser) parseOr() (core.Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPipe {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = core.Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (core.Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAmp {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = core.And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (core.Formula, error) {
	switch p.tok.kind {
	case tokBang:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return core.Not{F: inner}, nil
	case tokDiamond:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return core.Eventually{F: inner}, nil
	case tokBox:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return core.Always{F: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (core.Formula, error) {
	switch p.tok.kind {
	case tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, `")"`); err != nil {
			return nil, err
		}
		return inner, nil
	case tokIdent:
		switch p.tok.text {
		case "true":
			p.next()
			return core.True{}, nil
		case "false":
			p.next()
			return core.False{}, nil
		case "satisfy":
			p.next()
			return p.parseSatisfy()
		}
		return nil, p.errorf("unknown identifier %q", p.tok.text)
	}
	return nil, p.errorf("expected a formula, found %q", p.tok.text)
}

// parseSatisfy parses the two atom forms after the "satisfy" keyword.
func (p *parser) parseSatisfy() (core.Formula, error) {
	switch p.tok.kind {
	case tokLBrace:
		p.next()
		amounts, err := p.parseAmounts()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBrace, `"}"`); err != nil {
			return nil, err
		}
		window, err := p.parseWindow()
		if err != nil {
			return nil, err
		}
		return core.SatisfySimple{Req: compute.Simple{Amounts: amounts, Window: window}}, nil
	case tokLParen:
		p.next()
		if p.tok.kind != tokIdent && p.tok.kind != tokNumber {
			return nil, p.errorf("expected a job name, found %q", p.tok.text)
		}
		name := p.tok.text
		p.next()
		if err := p.expect(tokRParen, `")"`); err != nil {
			return nil, err
		}
		job, ok := p.jobs[name]
		if !ok {
			return nil, p.errorf("unknown job %q", name)
		}
		return core.SatisfyConcurrent{Req: compute.ConcurrentOf(job)}, nil
	}
	return nil, p.errorf(`expected "{" or "(" after satisfy, found %q`, p.tok.text)
}

func (p *parser) parseAmounts() (resource.Amounts, error) {
	amounts := make(resource.Amounts)
	for {
		if p.tok.kind != tokNumber {
			return nil, p.errorf("expected a quantity, found %q", p.tok.text)
		}
		qty, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil || qty < 0 {
			return nil, p.errorf("bad quantity %q", p.tok.text)
		}
		p.next()
		if err := p.expect(tokColon, `":"`); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected a resource kind, found %q", p.tok.text)
		}
		kind := p.tok.text
		p.next()
		if err := p.expect(tokAt, `"@"`); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent && p.tok.kind != tokNumber {
			return nil, p.errorf("expected a location, found %q", p.tok.text)
		}
		loc := p.tok.text
		p.next()
		lt := resource.At(resource.Kind(kind), resource.Location(loc))
		if p.tok.kind == tokGT {
			p.next()
			if p.tok.kind != tokIdent && p.tok.kind != tokNumber {
				return nil, p.errorf("expected a destination, found %q", p.tok.text)
			}
			lt = resource.LocatedType{Kind: resource.Kind(kind), Loc: resource.Location(loc), Dst: resource.Location(p.tok.text)}
			p.next()
		}
		amounts.Add(resource.Amount{
			Qty:  resource.Quantity(qty * float64(resource.Unit)),
			Type: lt,
		})
		if p.tok.kind != tokComma {
			return amounts, nil
		}
		p.next()
	}
}

func (p *parser) parseWindow() (interval.Interval, error) {
	if err := p.expect(tokLParen, `"("`); err != nil {
		return interval.Interval{}, err
	}
	start, err := p.parseTime()
	if err != nil {
		return interval.Interval{}, err
	}
	if err := p.expect(tokComma, `","`); err != nil {
		return interval.Interval{}, err
	}
	end, err := p.parseTime()
	if err != nil {
		return interval.Interval{}, err
	}
	if err := p.expect(tokRParen, `")"`); err != nil {
		return interval.Interval{}, err
	}
	return interval.New(start, end), nil
}

func (p *parser) parseTime() (interval.Time, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errorf("expected a time, found %q", p.tok.text)
	}
	if strings.Contains(p.tok.text, ".") {
		return 0, p.errorf("times must be integer ticks, found %q", p.tok.text)
	}
	v, err := strconv.ParseInt(p.tok.text, 10, 64)
	if err != nil {
		return 0, p.errorf("bad time %q", p.tok.text)
	}
	p.next()
	return v, nil
}
