package resource

import (
	"testing"
)

func FuzzParseTerm(f *testing.F) {
	for _, seed := range []string{
		"5:cpu@l1:(0,3)",
		"2.5:network@l1>l2:(4,12)",
		"1:gpu@node-7:(-2,9)",
		"0:cpu@l1:(0,0)",
		"::",
		"9999999999:cpu@x:(0,1)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 256 {
			return
		}
		term, err := ParseTerm(input)
		if err != nil {
			return
		}
		if term.Null() {
			return // null terms render as "0", which is not term syntax
		}
		// A parsed term must round-trip through Compact exactly.
		back, err := ParseTerm(term.Compact())
		if err != nil {
			t.Fatalf("Compact(%q) = %q does not re-parse: %v", input, term.Compact(), err)
		}
		if back != term {
			t.Fatalf("round trip changed term: %v -> %q -> %v", term, term.Compact(), back)
		}
		// Parsed terms are never negative-rate (the paper forbids it).
		if term.Rate < 0 {
			t.Fatalf("negative rate survived parsing: %v", term)
		}
	})
}

func FuzzParseSet(f *testing.F) {
	for _, seed := range []string{
		"",
		"5:cpu@l1:(0,3)",
		"5:cpu@l1:(0,3),2:network@l1>l2:(1,4)",
		"5:cpu@l1:(0,3),5:cpu@l1:(2,8)",
		",,,",
		"5:cpu@l1:(0,3),(",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 512 {
			return
		}
		s, err := ParseSet(input)
		if err != nil {
			return
		}
		// Round trip: Compact must re-parse to an equal set.
		back, err := ParseSet(s.Compact())
		if err != nil {
			t.Fatalf("Compact of parsed set does not re-parse: %q: %v", s.Compact(), err)
		}
		if !back.Equal(s) {
			t.Fatalf("round trip changed set: %v -> %q -> %v", s, s.Compact(), back)
		}
		// Normalization invariants on every profile.
		terms := s.Terms()
		for i := 1; i < len(terms); i++ {
			if terms[i].Type == terms[i-1].Type {
				prev, cur := terms[i-1], terms[i]
				if cur.Span.Start < prev.Span.End {
					t.Fatalf("overlapping normalized terms: %v then %v", prev, cur)
				}
				if cur.Span.Start == prev.Span.End && cur.Rate == prev.Rate {
					t.Fatalf("unmerged adjacent equal-rate terms: %v then %v", prev, cur)
				}
			}
		}
	})
}
