package resource

import (
	"fmt"

	"repro/internal/interval"
)

// Text marshaling uses the compact scenario-file syntax, which makes the
// resource types directly embeddable in JSON documents and traces:
// a Term renders as "5:cpu@l1:(0,3)", a Set as a comma-separated term
// list, and a LocatedType as "cpu@l1" / "network@l1>l2".

// MarshalText implements encoding.TextMarshaler.
func (lt LocatedType) MarshalText() ([]byte, error) {
	if lt.Zero() {
		return nil, nil
	}
	return []byte(lt.compact()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (lt *LocatedType) UnmarshalText(text []byte) error {
	if len(text) == 0 {
		*lt = LocatedType{}
		return nil
	}
	parsed, err := ParseLocatedType(string(text))
	if err != nil {
		return err
	}
	*lt = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (t Term) MarshalText() ([]byte, error) {
	if t.Null() {
		return []byte("0"), nil
	}
	return []byte(t.Compact()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *Term) UnmarshalText(text []byte) error {
	if string(text) == "0" {
		*t = Term{}
		return nil
	}
	parsed, err := ParseTerm(string(text))
	if err != nil {
		return err
	}
	*t = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (s Set) MarshalText() ([]byte, error) {
	return []byte(s.Compact()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Set) UnmarshalText(text []byte) error {
	parsed, err := ParseSet(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Interval marshaling lives here rather than in the interval package so
// the compact forms stay defined in one place.

// MarshalInterval renders an interval in "(s,e)" form (exported for
// tooling; interval.Interval itself is a plain struct and marshals as
// JSON numbers by default).
func MarshalInterval(iv interval.Interval) string {
	return iv.String()
}

// UnmarshalInterval parses the "(s,e)" form.
func UnmarshalInterval(s string) (interval.Interval, error) {
	iv, err := interval.Parse(s)
	if err != nil {
		return interval.Interval{}, fmt.Errorf("resource: %w", err)
	}
	return iv, nil
}
