package resource

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/interval"
)

var (
	cpuL1  = CPUAt("l1")
	netL12 = Link("l1", "l2")
)

func u(n int64) Rate { return FromUnits(n) }

func TestPaperWorkedExampleDifferentTypes(t *testing.T) {
	// §III: {[5]cpu(0,3)} ∪ {[5]net l1→l2 (0,5)} keeps both terms — no
	// simplification across located types.
	s := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 3)),
		NewTerm(u(5), netL12, interval.New(0, 5)),
	)
	terms := s.Terms()
	if len(terms) != 2 {
		t.Fatalf("got %d terms: %v", len(terms), s)
	}
	if s.RateAt(cpuL1, 2) != u(5) || s.RateAt(netL12, 4) != u(5) {
		t.Error("rates wrong")
	}
	if s.RateAt(cpuL1, 4) != 0 {
		t.Error("cpu should be gone at t=4")
	}
}

func TestPaperWorkedExampleOverlapSimplification(t *testing.T) {
	// §III: {[5]cpu(0,3)} ∪ {[5]cpu(0,5)} = {[10]cpu(0,3), [5]cpu(3,5)}.
	s := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 3)),
		NewTerm(u(5), cpuL1, interval.New(0, 5)),
	)
	want := NewSet(
		NewTerm(u(10), cpuL1, interval.New(0, 3)),
		NewTerm(u(5), cpuL1, interval.New(3, 5)),
	)
	if !s.Equal(want) {
		t.Errorf("got %v, want %v", s, want)
	}
	if s.NumTerms() != 2 {
		t.Errorf("NumTerms = %d", s.NumTerms())
	}
}

func TestPaperWorkedExampleComplement(t *testing.T) {
	// §III: {[5]cpu(0,3)} \ {[3]cpu(1,2)} = {[5](0,1), [2](1,2), [5](2,3)}.
	s := NewSet(NewTerm(u(5), cpuL1, interval.New(0, 3)))
	req := NewSet(NewTerm(u(3), cpuL1, interval.New(1, 2)))
	got, err := s.Subtract(req)
	if err != nil {
		t.Fatal(err)
	}
	want := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 1)),
		NewTerm(u(2), cpuL1, interval.New(1, 2)),
		NewTerm(u(5), cpuL1, interval.New(2, 3)),
	)
	if !got.Equal(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMergeEqualRatesThatMeet(t *testing.T) {
	// §III: terms reduce in number if identical rates have meeting
	// intervals.
	s := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 3)),
		NewTerm(u(5), cpuL1, interval.New(3, 7)),
	)
	if s.NumTerms() != 1 {
		t.Fatalf("meeting equal-rate terms should merge: %v", s)
	}
	if got := s.Terms()[0]; got != NewTerm(u(5), cpuL1, interval.New(0, 7)) {
		t.Errorf("merged term = %v", got)
	}
}

func TestSubtractInsufficient(t *testing.T) {
	s := NewSet(NewTerm(u(5), cpuL1, interval.New(0, 3)))
	cases := []Set{
		NewSet(NewTerm(u(6), cpuL1, interval.New(0, 3))),       // rate too high
		NewSet(NewTerm(u(5), cpuL1, interval.New(0, 4))),       // extends past availability
		NewSet(NewTerm(u(1), netL12, interval.New(0, 1))),      // absent type
		NewSet(NewTerm(u(1), CPUAt("l2"), interval.New(0, 1))), // absent location
	}
	for i, req := range cases {
		if _, err := s.Subtract(req); !errors.Is(err, ErrInsufficient) {
			t.Errorf("case %d: want ErrInsufficient, got %v", i, err)
		}
	}
	// But coverage assembled from two simplified terms is fine.
	stacked := NewSet(
		NewTerm(u(3), cpuL1, interval.New(0, 4)),
		NewTerm(u(3), cpuL1, interval.New(0, 4)),
	)
	if _, err := stacked.Subtract(NewSet(NewTerm(u(6), cpuL1, interval.New(0, 4)))); err != nil {
		t.Errorf("simplified coverage should satisfy: %v", err)
	}
}

func TestCoversAndMinRate(t *testing.T) {
	s := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 4)),
		NewTerm(u(2), cpuL1, interval.New(4, 8)),
	)
	if !s.Covers(NewTerm(u(2), cpuL1, interval.New(0, 8))) {
		t.Error("should cover rate 2 throughout")
	}
	if s.Covers(NewTerm(u(3), cpuL1, interval.New(0, 8))) {
		t.Error("rate 3 unavailable after t=4")
	}
	if !s.Covers(Term{}) {
		t.Error("null term always covered")
	}
	if got := s.MinRate(cpuL1, interval.New(0, 8)); got != u(2) {
		t.Errorf("MinRate = %d", got)
	}
	if got := s.MinRate(cpuL1, interval.New(0, 9)); got != 0 {
		t.Errorf("MinRate over gap = %d, want 0", got)
	}
	if got := s.MinRate(cpuL1, interval.New(0, 4)); got != u(5) {
		t.Errorf("MinRate = %d", got)
	}
}

func TestQuantityWithin(t *testing.T) {
	s := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 4)),
		NewTerm(u(2), cpuL1, interval.New(4, 8)),
		NewTerm(u(7), netL12, interval.New(2, 6)),
	)
	if got := s.QuantityWithin(cpuL1, interval.New(0, 8)); got != QuantityFromUnits(28) {
		t.Errorf("cpu quantity = %d", got)
	}
	if got := s.QuantityWithin(cpuL1, interval.New(3, 5)); got != QuantityFromUnits(7) {
		t.Errorf("cpu window quantity = %d", got)
	}
	total := s.TotalQuantity(interval.New(0, 8))
	if total[cpuL1] != QuantityFromUnits(28) || total[netL12] != QuantityFromUnits(28) {
		t.Errorf("TotalQuantity = %v", total)
	}
}

func TestConsume(t *testing.T) {
	s := NewSet(NewTerm(u(5), cpuL1, interval.New(0, 10)))
	if err := s.Consume(cpuL1, interval.New(0, 4), u(3)); err != nil {
		t.Fatal(err)
	}
	if got := s.RateAt(cpuL1, 2); got != u(2) {
		t.Errorf("after consume rate = %d", got)
	}
	if got := s.RateAt(cpuL1, 6); got != u(5) {
		t.Errorf("untouched region rate = %d", got)
	}
	if err := s.Consume(cpuL1, interval.New(0, 4), u(3)); !errors.Is(err, ErrInsufficient) {
		t.Errorf("over-consume should fail, got %v", err)
	}
	// Failed consume must not mutate.
	if got := s.RateAt(cpuL1, 2); got != u(2) {
		t.Errorf("failed consume mutated set: rate = %d", got)
	}
	// No-op consumes.
	if err := s.Consume(cpuL1, interval.Interval{}, u(3)); err != nil {
		t.Errorf("empty-span consume: %v", err)
	}
	if err := s.Consume(cpuL1, interval.New(0, 1), 0); err != nil {
		t.Errorf("zero-rate consume: %v", err)
	}
}

func TestTrimBefore(t *testing.T) {
	s := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 10)),
		NewTerm(u(3), netL12, interval.New(0, 4)),
	)
	expired := s.TrimBefore(4)
	if got := s.RateAt(cpuL1, 5); got != u(5) {
		t.Errorf("future cpu rate = %d", got)
	}
	if got := s.RateAt(cpuL1, 3); got != 0 {
		t.Errorf("past cpu rate = %d, want 0", got)
	}
	if !s.Support(netL12).Empty() {
		t.Error("network should be fully expired")
	}
	wantExpired := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 4)),
		NewTerm(u(3), netL12, interval.New(0, 4)),
	)
	if !expired.Equal(wantExpired) {
		t.Errorf("expired = %v, want %v", expired, wantExpired)
	}
}

func TestSetMisc(t *testing.T) {
	var zero Set
	if !zero.Empty() {
		t.Error("zero set should be empty")
	}
	if zero.String() != "{}" {
		t.Errorf("zero String = %q", zero.String())
	}
	if got := zero.Hull(); !got.Empty() {
		t.Errorf("zero hull = %v", got)
	}
	zero.Add(Term{}) // adding null term keeps it empty and must not panic
	if !zero.Empty() {
		t.Error("null add changed set")
	}

	s := NewSet(
		NewTerm(u(5), cpuL1, interval.New(2, 6)),
		NewTerm(u(3), netL12, interval.New(0, 4)),
	)
	if got := s.Hull(); !got.Equal(interval.New(0, 6)) {
		t.Errorf("Hull = %v", got)
	}
	types := s.Types()
	if len(types) != 2 || types[0] != cpuL1 || types[1] != netL12 {
		t.Errorf("Types = %v", types)
	}
	clamped := s.Clamp(interval.New(3, 5))
	if !clamped.Equal(NewSet(
		NewTerm(u(5), cpuL1, interval.New(3, 5)),
		NewTerm(u(3), netL12, interval.New(3, 4)),
	)) {
		t.Errorf("Clamp = %v", clamped)
	}
	// Clone independence.
	c := s.Clone()
	if err := c.Consume(cpuL1, interval.New(2, 6), u(5)); err != nil {
		t.Fatal(err)
	}
	if got := s.RateAt(cpuL1, 3); got != u(5) {
		t.Error("Clone shares storage with original")
	}
}

func TestSetCompactRoundTrip(t *testing.T) {
	s := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 3)),
		NewTerm(u(7), netL12, interval.New(2, 9)),
		NewTerm(u(1), MemoryAt("l3"), interval.New(1, 2)),
	)
	back, err := ParseSet(s.Compact())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Errorf("round trip: %v -> %q -> %v", s, s.Compact(), back)
	}
	empty, err := ParseSet("  ")
	if err != nil || !empty.Empty() {
		t.Errorf("empty parse = %v, %v", empty, err)
	}
	if _, err := ParseSet("nonsense"); err == nil {
		t.Error("bad set text should fail")
	}
}

func randTermFor(rng *rand.Rand, lt LocatedType) Term {
	start := interval.Time(rng.Intn(12))
	return NewTerm(FromUnits(int64(1+rng.Intn(8))), lt, interval.New(start, start+1+interval.Time(rng.Intn(8))))
}

func TestPropertySetUnionPointwise(t *testing.T) {
	// Union of sets must equal point-wise rate addition, for all types and
	// ticks — this is the paper's simplification rule stated as an
	// invariant.
	rng := rand.New(rand.NewSource(17))
	types := []LocatedType{cpuL1, netL12, CPUAt("l2")}
	for iter := 0; iter < 800; iter++ {
		var a, b Set
		for i := 0; i < rng.Intn(4); i++ {
			a.Add(randTermFor(rng, types[rng.Intn(len(types))]))
		}
		for i := 0; i < rng.Intn(4); i++ {
			b.Add(randTermFor(rng, types[rng.Intn(len(types))]))
		}
		un := a.Union(b)
		for _, lt := range types {
			for tick := interval.Time(0); tick < 22; tick++ {
				want := a.RateAt(lt, tick) + b.RateAt(lt, tick)
				if got := un.RateAt(lt, tick); got != want {
					t.Fatalf("iter %d: union rate at %v/%d = %d, want %d (a=%v b=%v)",
						iter, lt, tick, got, want, a, b)
				}
			}
		}
		if !un.Equal(b.Union(a)) {
			t.Fatalf("union not commutative")
		}
	}
}

func TestPropertySubtractRestoresWithUnion(t *testing.T) {
	// Whenever Θ1 \ Θ2 is defined, (Θ1 \ Θ2) ∪ Θ2 = Θ1 point-wise.
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 800; iter++ {
		var full Set
		for i := 0; i < 1+rng.Intn(4); i++ {
			full.Add(randTermFor(rng, cpuL1))
		}
		// Build a requirement that is guaranteed dominated: a sub-rate of
		// one normalized term.
		terms := full.Terms()
		if len(terms) == 0 {
			continue
		}
		pick := terms[rng.Intn(len(terms))]
		req := NewSet(NewTerm(pick.Rate/2, pick.Type, pick.Span))
		if req.Empty() {
			continue
		}
		rest, err := full.Subtract(req)
		if err != nil {
			t.Fatalf("iter %d: unexpected %v", iter, err)
		}
		if !rest.Union(req).Equal(full) {
			t.Fatalf("iter %d: (Θ1\\Θ2)∪Θ2 != Θ1: full=%v req=%v rest=%v",
				iter, full, req, rest)
		}
	}
}

func TestPropertyDominatesIffSubtractDefined(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 800; iter++ {
		var a, b Set
		for i := 0; i < 1+rng.Intn(3); i++ {
			a.Add(randTermFor(rng, cpuL1))
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			b.Add(randTermFor(rng, cpuL1))
		}
		_, err := a.Subtract(b)
		if dom := a.Dominates(b); dom != (err == nil) {
			t.Fatalf("iter %d: Dominates=%v but Subtract err=%v", iter, dom, err)
		}
	}
}

func BenchmarkSetUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	sets := make([]Set, 16)
	for i := range sets {
		var s Set
		for j := 0; j < 16; j++ {
			s.Add(randTermFor(rng, cpuL1))
		}
		sets[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sets[i%16].Union(sets[(i+1)%16])
	}
}

func BenchmarkSetConsume(b *testing.B) {
	base := NewSet(NewTerm(u(1000000), cpuL1, interval.New(0, 1<<40)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span := interval.New(interval.Time(i), interval.Time(i)+1)
		if err := base.Consume(cpuL1, span, u(1)); err != nil {
			b.Fatal(err)
		}
	}
}
