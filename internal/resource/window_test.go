package resource

import (
	"math/rand"
	"testing"

	"repro/internal/interval"
)

func TestEarliestWindow(t *testing.T) {
	s := NewSet(
		NewTerm(u(1), cpuL1, interval.New(0, 4)),
		NewTerm(u(3), cpuL1, interval.New(4, 8)),
		NewTerm(u(2), cpuL1, interval.New(8, 12)),
		NewTerm(u(3), cpuL1, interval.New(14, 20)), // after a gap
	)
	tests := []struct {
		name     string
		rate     Rate
		duration interval.Time
		within   interval.Interval
		want     interval.Interval
		ok       bool
	}{
		{"rate 1 anywhere", u(1), 3, interval.New(0, 20), interval.New(0, 3), true},
		{"rate 2 starts at 4", u(2), 3, interval.New(0, 20), interval.New(4, 7), true},
		{"rate 2 spans segments", u(2), 8, interval.New(0, 20), interval.New(4, 12), true},
		{"rate 3 cannot span the dip", u(3), 5, interval.New(0, 20), interval.New(14, 19), true},
		{"rate 3 too long", u(3), 7, interval.New(0, 20), interval.Interval{}, false},
		{"bounded search window", u(1), 3, interval.New(9, 20), interval.New(9, 12), true},
		{"gap breaks runs", u(1), 9, interval.New(4, 20), interval.New(4, 13), false},
		{"rate too high", u(4), 1, interval.New(0, 20), interval.Interval{}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := s.EarliestWindow(cpuL1, tc.rate, tc.duration, tc.within)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v (got %v)", ok, tc.ok, got)
			}
			if ok && !got.Equal(tc.want) {
				t.Errorf("window = %v, want %v", got, tc.want)
			}
		})
	}
	// Degenerate durations succeed trivially inside a non-empty bound.
	if _, ok := s.EarliestWindow(cpuL1, u(1), 0, interval.New(5, 6)); !ok {
		t.Error("zero duration should trivially fit")
	}
	if _, ok := s.EarliestWindow(cpuL1, u(1), 0, interval.Interval{}); ok {
		t.Error("empty bound cannot fit anything")
	}
	// Absent type never fits.
	if _, ok := s.EarliestWindow(netL12, u(1), 1, interval.New(0, 20)); ok {
		t.Error("absent type reported available")
	}
}

func TestPropertyEarliestWindowIsEarliestAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 600; iter++ {
		var s Set
		for i := 0; i < 1+rng.Intn(5); i++ {
			s.Add(randTermFor(rng, cpuL1))
		}
		rate := FromUnits(int64(1 + rng.Intn(5)))
		duration := interval.Time(1 + rng.Intn(6))
		within := interval.New(0, 24)
		got, ok := s.EarliestWindow(cpuL1, rate, duration, within)

		// Brute force: slide a window over every start tick.
		covers := func(start interval.Time) bool {
			return s.MinRate(cpuL1, interval.New(start, start+duration)) >= rate
		}
		bruteOK := false
		var bruteStart interval.Time
		for start := within.Start; start+duration <= within.End; start++ {
			if covers(start) {
				bruteOK = true
				bruteStart = start
				break
			}
		}
		if ok != bruteOK {
			t.Fatalf("iter %d: ok=%v brute=%v (set %v, rate %d, dur %d)",
				iter, ok, bruteOK, s, rate, duration)
		}
		if ok {
			if got.Start != bruteStart || got.Len() != duration {
				t.Fatalf("iter %d: got %v, brute start %d (set %v)", iter, got, bruteStart, s)
			}
			if s.MinRate(cpuL1, got) < rate {
				t.Fatalf("iter %d: window %v not actually covered", iter, got)
			}
		}
	}
}
