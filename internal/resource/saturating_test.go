package resource

import (
	"math/rand"
	"testing"

	"repro/internal/interval"
)

func TestSubtractSaturatingBasics(t *testing.T) {
	s := NewSet(NewTerm(u(5), cpuL1, interval.New(0, 10)))

	// Partial overlap, partial rate.
	got := s.SubtractSaturating(NewSet(NewTerm(u(2), cpuL1, interval.New(4, 8))))
	want := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 4)),
		NewTerm(u(3), cpuL1, interval.New(4, 8)),
		NewTerm(u(5), cpuL1, interval.New(8, 10)),
	)
	if !got.Equal(want) {
		t.Errorf("got %v, want %v", got, want)
	}

	// Over-withdrawal clamps at zero instead of failing.
	got = s.SubtractSaturating(NewSet(NewTerm(u(50), cpuL1, interval.New(2, 6))))
	want = NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 2)),
		NewTerm(u(5), cpuL1, interval.New(6, 10)),
	)
	if !got.Equal(want) {
		t.Errorf("over-withdrawal: got %v, want %v", got, want)
	}

	// Absent type is a no-op.
	got = s.SubtractSaturating(NewSet(NewTerm(u(3), netL12, interval.New(0, 5))))
	if !got.Equal(s) {
		t.Errorf("absent type changed set: %v", got)
	}

	// Receiver unchanged (pure operation).
	if s.RateAt(cpuL1, 5) != u(5) {
		t.Error("SubtractSaturating mutated receiver")
	}
}

func TestPropertySubtractSaturatingPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 600; iter++ {
		var a, b Set
		for i := 0; i < 1+rng.Intn(4); i++ {
			a.Add(randTermFor(rng, cpuL1))
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			b.Add(randTermFor(rng, cpuL1))
		}
		got := a.SubtractSaturating(b)
		for tick := interval.Time(0); tick < 24; tick++ {
			want := a.RateAt(cpuL1, tick) - b.RateAt(cpuL1, tick)
			if want < 0 {
				want = 0
			}
			if have := got.RateAt(cpuL1, tick); have != want {
				t.Fatalf("iter %d tick %d: got %d want %d (a=%v b=%v)",
					iter, tick, have, want, a, b)
			}
		}
	}
}

func TestSubtractSaturatingAgreesWithSubtractWhenDefined(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 400; iter++ {
		var a Set
		for i := 0; i < 1+rng.Intn(4); i++ {
			a.Add(randTermFor(rng, cpuL1))
		}
		terms := a.Terms()
		if len(terms) == 0 {
			continue
		}
		pick := terms[rng.Intn(len(terms))]
		b := NewSet(NewTerm(pick.Rate/2, pick.Type, pick.Span))
		exact, err := a.Subtract(b)
		if err != nil {
			continue
		}
		if got := a.SubtractSaturating(b); !got.Equal(exact) {
			t.Fatalf("iter %d: saturating %v != exact %v", iter, got, exact)
		}
	}
}
