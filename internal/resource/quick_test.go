package resource

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/interval"
)

// Generate implements quick.Generator so testing/quick can synthesize
// random (valid, non-null) resource terms directly.
func (Term) Generate(rng *rand.Rand, size int) reflect.Value {
	if size < 2 {
		size = 2
	}
	locs := []Location{"l1", "l2", "l3"}
	var lt LocatedType
	if rng.Intn(3) == 0 {
		src := locs[rng.Intn(len(locs))]
		dst := src
		for dst == src {
			dst = locs[rng.Intn(len(locs))]
		}
		lt = Link(src, dst)
	} else {
		lt = CPUAt(locs[rng.Intn(len(locs))])
	}
	start := interval.Time(rng.Intn(size))
	length := 1 + interval.Time(rng.Intn(size))
	rate := FromUnits(1 + rng.Int63n(int64(size)))
	return reflect.ValueOf(NewTerm(rate, lt, interval.New(start, start+length)))
}

func TestQuickUnionCommutesAndAssociates(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	commutes := func(a, b, c Term) bool {
		x := NewSet(a, b, c)
		y := NewSet(c, a, b)
		return x.Equal(y)
	}
	if err := quick.Check(commutes, cfg); err != nil {
		t.Error(err)
	}
	associates := func(a, b, c, d Term) bool {
		left := NewSet(a, b).Union(NewSet(c, d))
		right := NewSet(a).Union(NewSet(b, c).Union(NewSet(d)))
		return left.Equal(right)
	}
	if err := quick.Check(associates, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionMonotoneInQuantity(t *testing.T) {
	f := func(a, b Term, windowStart uint8) bool {
		w := interval.New(interval.Time(windowStart), interval.Time(windowStart)+16)
		s := NewSet(a)
		u := s.Union(NewSet(b))
		// Union can only add capacity.
		return u.QuantityWithin(a.Type, w) >= s.QuantityWithin(a.Type, w) &&
			u.QuantityWithin(b.Type, w) >= NewSet(b).QuantityWithin(b.Type, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickDominanceImpliesCoverage(t *testing.T) {
	// Term dominance (the paper's >) implies set coverage, and subtracting
	// the dominated term succeeds.
	f := func(big Term, rateCut, spanCut uint8) bool {
		if big.Null() || big.Span.Len() < 2 {
			return true
		}
		small := NewTerm(
			big.Rate-Rate(rateCut)%big.Rate,
			big.Type,
			interval.New(big.Span.Start, big.Span.End-interval.Time(spanCut%uint8(big.Span.Len()))),
		)
		if small.Null() {
			return true
		}
		if !big.Dominates(small) {
			return false
		}
		s := NewSet(big)
		if !s.Covers(small) {
			return false
		}
		_, err := s.SubtractTerm(small)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickTrimPartitionsQuantity(t *testing.T) {
	// TrimBefore splits total quantity exactly: expired + remaining = all.
	f := func(a, b Term, cutRaw uint8) bool {
		s := NewSet(a, b)
		window := interval.New(interval.NegInfinity/2, interval.Infinity/2)
		totalBefore := Quantity(0)
		for _, q := range s.TotalQuantity(window) {
			totalBefore += q
		}
		cut := interval.Time(cutRaw % 32)
		expired := s.TrimBefore(cut)
		totalAfter := Quantity(0)
		for _, q := range s.TotalQuantity(window) {
			totalAfter += q
		}
		totalExpired := Quantity(0)
		for _, q := range expired.TotalQuantity(window) {
			totalExpired += q
		}
		return totalBefore == totalAfter+totalExpired
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
