package resource

import (
	"sort"

	"repro/internal/interval"
)

// segment is one step of a rate step-function: a constant positive rate
// over a non-empty interval.
type segment struct {
	span interval.Interval
	rate Rate
}

// profile is a normalized step function of availability rate over time for
// a single located type: segments are sorted, disjoint, carry positive
// rates, and adjacent segments with equal rates are merged. The zero value
// is the everywhere-zero profile.
type profile struct {
	segs []segment
}

// normalizeSegments sorts, splits and merges raw segments (which may
// overlap — overlapping rates add, per the paper's simplification rule)
// into normalized form.
func normalizeSegments(raw []segment) profile {
	// Event sweep: +rate at each segment start, −rate at each end; walk
	// boundaries in order, emitting a segment for every stretch with a
	// positive running rate.
	type event struct {
		t     interval.Time
		delta Rate
	}
	events := make([]event, 0, 2*len(raw))
	for _, s := range raw {
		if !s.span.Empty() && s.rate != 0 {
			events = append(events,
				event{t: s.span.Start, delta: s.rate},
				event{t: s.span.End, delta: -s.rate})
		}
	}
	if len(events) == 0 {
		return profile{}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	var out []segment
	var running Rate
	prev := events[0].t
	for i := 0; i < len(events); {
		t := events[i].t
		if t > prev && running != 0 {
			if n := len(out); n > 0 && out[n-1].rate == running && out[n-1].span.End == prev {
				out[n-1].span.End = t
			} else {
				out = append(out, segment{span: interval.New(prev, t), rate: running})
			}
		}
		for i < len(events) && events[i].t == t {
			running += events[i].delta
			i++
		}
		prev = t
	}
	return profile{segs: out}
}

// clone returns a deep copy.
func (p profile) clone() profile {
	if len(p.segs) == 0 {
		return profile{}
	}
	return profile{segs: append([]segment(nil), p.segs...)}
}

// empty reports whether the profile is zero everywhere.
func (p profile) empty() bool {
	return len(p.segs) == 0
}

// rateAt returns the rate available at tick t.
func (p profile) rateAt(t interval.Time) Rate {
	i := sort.Search(len(p.segs), func(i int) bool { return p.segs[i].span.End > t })
	if i < len(p.segs) && p.segs[i].span.Contains(t) {
		return p.segs[i].rate
	}
	return 0
}

// add merges another step (span, rate) into the profile, summing rates
// where they overlap. Negative rates are rejected by callers; add itself
// assumes rate > 0.
func (p profile) add(span interval.Interval, rate Rate) profile {
	if span.Empty() || rate == 0 {
		return p.clone()
	}
	raw := append(append([]segment(nil), p.segs...), segment{span: span, rate: rate})
	return normalizeSegments(raw)
}

// merge returns the point-wise sum of two profiles (resource-set union
// restricted to one located type).
func (p profile) merge(q profile) profile {
	if q.empty() {
		return p.clone()
	}
	raw := append(append([]segment(nil), p.segs...), q.segs...)
	return normalizeSegments(raw)
}

// quantity integrates the profile over the window.
func (p profile) quantity(window interval.Interval) Quantity {
	var total Quantity
	for _, s := range p.segs {
		if s.span.Start >= window.End {
			break
		}
		ov := s.span.Intersect(window)
		total += Quantity(s.rate) * Quantity(ov.Len())
	}
	return total
}

// minRate returns the minimum rate over every tick of the window; a gap in
// coverage yields zero. An empty window yields zero.
func (p profile) minRate(window interval.Interval) Rate {
	if window.Empty() {
		return 0
	}
	var minSeen Rate
	first := true
	cursor := window.Start
	for _, s := range p.segs {
		if s.span.End <= cursor {
			continue
		}
		if s.span.Start >= window.End {
			break
		}
		if s.span.Start > cursor {
			return 0 // gap inside the window
		}
		if first || s.rate < minSeen {
			minSeen = s.rate
			first = false
		}
		cursor = s.span.End
		if cursor >= window.End {
			return minSeen
		}
	}
	return 0 // window extends past the last segment
}

// covers reports whether the profile provides at least rate at every tick
// of span.
func (p profile) covers(span interval.Interval, rate Rate) bool {
	if span.Empty() || rate <= 0 {
		return true
	}
	return p.minRate(span) >= rate
}

// subtract removes (span, rate) from the profile. The caller must have
// verified covers(span, rate); subtract panics otherwise, because a
// negative resource term is meaningless in the algebra (§III).
func (p profile) subtract(span interval.Interval, rate Rate) profile {
	if span.Empty() || rate == 0 {
		return p.clone()
	}
	if !p.covers(span, rate) {
		panic("resource: subtract without coverage (negative resource term)")
	}
	raw := make([]segment, 0, len(p.segs)+2)
	for _, s := range p.segs {
		ov := s.span.Intersect(span)
		if ov.Empty() {
			raw = append(raw, s)
			continue
		}
		for _, rest := range s.span.Subtract(span) {
			raw = append(raw, segment{span: rest, rate: s.rate})
		}
		if remain := s.rate - rate; remain > 0 {
			raw = append(raw, segment{span: ov, rate: remain})
		}
	}
	return normalizeSegments(raw)
}

// subtractSaturating removes up to rate over span, clamping each
// segment's remainder at zero rather than requiring coverage.
func (p profile) subtractSaturating(span interval.Interval, rate Rate) profile {
	if span.Empty() || rate <= 0 {
		return p.clone()
	}
	raw := make([]segment, 0, len(p.segs)+2)
	for _, s := range p.segs {
		ov := s.span.Intersect(span)
		if ov.Empty() {
			raw = append(raw, s)
			continue
		}
		for _, rest := range s.span.Subtract(span) {
			raw = append(raw, segment{span: rest, rate: s.rate})
		}
		if remain := s.rate - rate; remain > 0 {
			raw = append(raw, segment{span: ov, rate: remain})
		}
	}
	return normalizeSegments(raw)
}

// clamp restricts the profile to a window.
func (p profile) clamp(window interval.Interval) profile {
	var raw []segment
	for _, s := range p.segs {
		ov := s.span.Intersect(window)
		if !ov.Empty() {
			raw = append(raw, segment{span: ov, rate: s.rate})
		}
	}
	return profile{segs: raw}
}

// support returns the set of ticks where the profile is positive.
func (p profile) support() interval.Set {
	ivs := make([]interval.Interval, len(p.segs))
	for i, s := range p.segs {
		ivs[i] = s.span
	}
	return interval.NewSet(ivs...)
}

// hull returns the smallest interval containing all segments.
func (p profile) hull() interval.Interval {
	if len(p.segs) == 0 {
		return interval.Interval{}
	}
	return interval.New(p.segs[0].span.Start, p.segs[len(p.segs)-1].span.End)
}

// equal reports point-wise equality (normalized forms are canonical).
func (p profile) equal(q profile) bool {
	if len(p.segs) != len(q.segs) {
		return false
	}
	for i := range p.segs {
		if p.segs[i] != q.segs[i] {
			return false
		}
	}
	return true
}
