// Package resource implements ROTA's resource representation (§III of the
// paper): located resource types, resource terms [r]_ξ^τ pairing a rate of
// availability with a located type and a time interval, and resource sets
// with the union, simplification and relative-complement operations the
// logic's transition rules are built on.
//
// Resource sets are kept normalized as per-located-type step functions:
// for each located type, a sorted list of disjoint (interval, rate)
// segments. Normalization realizes the paper's "simplification" process
// canonically — identical located types available simultaneously have
// their rates added — and makes dominance checks and quantity integrals
// linear in the number of segments.
package resource

import (
	"fmt"
	"strings"
)

// Kind is the kind of computational resource (the "type" half of the
// paper's located type ξ).
type Kind string

// The kinds used throughout the paper. Custom kinds (e.g. "disk", "gpu")
// are equally valid: the algebra is kind-agnostic.
const (
	CPU     Kind = "cpu"
	Network Kind = "network"
	Memory  Kind = "memory"
	Disk    Kind = "disk"
)

// Location names a node in the distributed system.
type Location string

// LocatedType is the paper's ξ: a resource kind plus the spatial
// information identifying where it resides. For node-local resources only
// Loc is set; for network resources the pair (Loc, Dst) identifies the
// directed link, as in ⟨network, l1 → l2⟩.
type LocatedType struct {
	Kind Kind
	Loc  Location
	Dst  Location // set only for link resources
}

// CPUAt returns the located type ⟨cpu, loc⟩.
func CPUAt(loc Location) LocatedType {
	return LocatedType{Kind: CPU, Loc: loc}
}

// MemoryAt returns the located type ⟨memory, loc⟩.
func MemoryAt(loc Location) LocatedType {
	return LocatedType{Kind: Memory, Loc: loc}
}

// Link returns the located type ⟨network, src → dst⟩.
func Link(src, dst Location) LocatedType {
	return LocatedType{Kind: Network, Loc: src, Dst: dst}
}

// At returns an arbitrary-kind node-local located type.
func At(kind Kind, loc Location) LocatedType {
	return LocatedType{Kind: kind, Loc: loc}
}

// IsLink reports whether the type identifies a directed link.
func (lt LocatedType) IsLink() bool {
	return lt.Dst != ""
}

// Zero reports whether lt is the zero value.
func (lt LocatedType) Zero() bool {
	return lt == LocatedType{}
}

// String renders the located type in the paper's ⟨type, location⟩
// notation.
func (lt LocatedType) String() string {
	if lt.IsLink() {
		return fmt.Sprintf("⟨%s,%s→%s⟩", lt.Kind, lt.Loc, lt.Dst)
	}
	return fmt.Sprintf("⟨%s,%s⟩", lt.Kind, lt.Loc)
}

// compact renders the located type for the scenario-file syntax:
// "cpu@l1" or "network@l1>l2".
func (lt LocatedType) compact() string {
	if lt.IsLink() {
		return fmt.Sprintf("%s@%s>%s", lt.Kind, lt.Loc, lt.Dst)
	}
	return fmt.Sprintf("%s@%s", lt.Kind, lt.Loc)
}

// ParseLocatedType parses the compact "kind@loc" / "kind@src>dst" syntax.
func ParseLocatedType(s string) (LocatedType, error) {
	kindPart, locPart, ok := strings.Cut(s, "@")
	if !ok || kindPart == "" || locPart == "" {
		return LocatedType{}, fmt.Errorf("resource: malformed located type %q (want kind@loc)", s)
	}
	src, dst, isLink := strings.Cut(locPart, ">")
	if src == "" {
		return LocatedType{}, fmt.Errorf("resource: malformed located type %q (empty location)", s)
	}
	lt := LocatedType{Kind: Kind(kindPart), Loc: Location(src)}
	if isLink {
		if dst == "" {
			return LocatedType{}, fmt.Errorf("resource: malformed located type %q (empty link destination)", s)
		}
		lt.Dst = Location(dst)
	}
	return lt, nil
}

// less gives a stable total order over located types, used to keep
// rendered resource sets deterministic.
func (lt LocatedType) less(other LocatedType) bool {
	if lt.Kind != other.Kind {
		return lt.Kind < other.Kind
	}
	if lt.Loc != other.Loc {
		return lt.Loc < other.Loc
	}
	return lt.Dst < other.Dst
}
