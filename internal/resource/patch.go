package resource

import "repro/internal/interval"

// Patch operations: the allocation-light counterparts of Union, Subtract
// and TrimBefore used on the admission hot path. A "patched" set shares
// the untouched per-type profiles with its source — safe because every
// profile operation (add, subtract, merge, clamp) builds fresh segment
// slices instead of mutating the receiver — so patching a cached free
// view after a reservation costs O(types touched), not O(whole set).
//
// The sharing contract: a Set produced by a Patch* method (and the Set it
// was produced from) must be treated as immutable by callers that hold
// both; the in-place mutators (Add, AddSet, Consume, TrimBefore) may only
// be applied to sets the caller exclusively owns.

// AddSet merges other into s in place (Θ ← Θ ∪ other with
// simplification). The receiver must be exclusively owned by the caller;
// other is not mutated or retained.
func (s *Set) AddSet(other Set) {
	if len(other.profiles) == 0 {
		return
	}
	if s.profiles == nil {
		s.profiles = make(map[LocatedType]profile, len(other.profiles))
	}
	for lt, p := range other.profiles {
		s.profiles[lt] = s.profiles[lt].merge(p)
	}
}

// PatchUnion returns Θ ∪ other, sharing every profile of s that other
// does not touch. Neither input is mutated.
func (s Set) PatchUnion(other Set) Set {
	if len(other.profiles) == 0 {
		return s
	}
	out := Set{profiles: make(map[LocatedType]profile, len(s.profiles)+len(other.profiles))}
	for lt, p := range s.profiles {
		out.profiles[lt] = p
	}
	for lt, q := range other.profiles {
		out.profiles[lt] = out.profiles[lt].merge(q)
	}
	return out
}

// PatchSubtract returns Θ ∖ other, sharing every profile of s that other
// does not touch, or ErrInsufficient when the complement is undefined.
// Neither input is mutated.
func (s Set) PatchSubtract(other Set) (Set, error) {
	if len(other.profiles) == 0 {
		return s, nil
	}
	if !s.Dominates(other) {
		return Set{}, ErrInsufficient
	}
	out := Set{profiles: make(map[LocatedType]profile, len(s.profiles))}
	for lt, p := range s.profiles {
		out.profiles[lt] = p
	}
	for lt, q := range other.profiles {
		p := out.profiles[lt]
		for _, seg := range q.segs {
			p = p.subtract(seg.span, seg.rate)
		}
		if p.empty() {
			delete(out.profiles, lt)
		} else {
			out.profiles[lt] = p
		}
	}
	return out, nil
}

// TrimmedBefore returns the availability at or after t as a new set,
// sharing every profile that has nothing to trim. Unlike TrimBefore it
// does not mutate the receiver and does not report the expired portion.
func (s Set) TrimmedBefore(t interval.Time) Set {
	out := Set{}
	for lt, p := range s.profiles {
		if len(p.segs) > 0 && p.segs[0].span.Start >= t {
			// Nothing before t: share the profile as-is.
			if out.profiles == nil {
				out.profiles = make(map[LocatedType]profile, len(s.profiles))
			}
			out.profiles[lt] = p
			continue
		}
		future := p.clamp(interval.New(t, interval.Infinity))
		if !future.empty() {
			if out.profiles == nil {
				out.profiles = make(map[LocatedType]profile, len(s.profiles))
			}
			out.profiles[lt] = future
		}
	}
	return out
}

// EachTypeUntil calls fn for every located type with non-empty
// availability, stopping early when fn returns false. Iteration order is
// unspecified. Allocation-free — the hot-path alternative to Types().
func (s Set) EachTypeUntil(fn func(LocatedType) bool) {
	for lt, p := range s.profiles {
		if p.empty() {
			continue
		}
		if !fn(lt) {
			return
		}
	}
}
