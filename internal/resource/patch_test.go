package resource

import (
	"math/rand"
	"testing"

	"repro/internal/interval"
)

func patchTerm(units int64, lt LocatedType, start, end interval.Time) Term {
	return NewTerm(FromUnits(units), lt, interval.New(start, end))
}

// randomPatchSet builds a small random set over a few located types.
func randomPatchSet(rng *rand.Rand, locs []Location) Set {
	var s Set
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		loc := locs[rng.Intn(len(locs))]
		lt := CPUAt(loc)
		if rng.Intn(2) == 0 {
			lt = MemoryAt(loc)
		}
		start := interval.Time(rng.Intn(50))
		end := start + 1 + interval.Time(rng.Intn(40))
		s.Add(patchTerm(int64(1+rng.Intn(8)), lt, start, end))
	}
	return s
}

func TestPatchUnionMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	locs := []Location{"l1", "l2"}
	for i := 0; i < 200; i++ {
		a := randomPatchSet(rng, locs)
		b := randomPatchSet(rng, locs)
		aBefore, bBefore := a.Clone(), b.Clone()
		got := a.PatchUnion(b)
		want := a.Union(b)
		if !got.Equal(want) {
			t.Fatalf("iter %d: PatchUnion %s != Union %s", i, got, want)
		}
		if !a.Equal(aBefore) || !b.Equal(bBefore) {
			t.Fatalf("iter %d: PatchUnion mutated an input", i)
		}
	}
}

func TestPatchSubtractMatchesSubtract(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	locs := []Location{"l1", "l2"}
	for i := 0; i < 200; i++ {
		part := randomPatchSet(rng, locs)
		base := part.Union(randomPatchSet(rng, locs)) // guarantees dominance
		baseBefore, partBefore := base.Clone(), part.Clone()
		got, err := base.PatchSubtract(part)
		if err != nil {
			t.Fatalf("iter %d: PatchSubtract of dominated part: %v", i, err)
		}
		want, err := base.Subtract(part)
		if err != nil {
			t.Fatalf("iter %d: Subtract: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("iter %d: PatchSubtract %s != Subtract %s", i, got, want)
		}
		if !base.Equal(baseBefore) || !part.Equal(partBefore) {
			t.Fatalf("iter %d: PatchSubtract mutated an input", i)
		}
	}
}

func TestPatchSubtractInsufficient(t *testing.T) {
	var a, b Set
	a.Add(patchTerm(2, CPUAt("l1"), 0, 10))
	b.Add(patchTerm(3, CPUAt("l1"), 0, 10))
	if _, err := a.PatchSubtract(b); err == nil {
		t.Fatal("PatchSubtract of a dominating subtrahend must fail")
	}
}

func TestAddSetMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	locs := []Location{"l1", "l2", "l3"}
	for i := 0; i < 200; i++ {
		a := randomPatchSet(rng, locs)
		b := randomPatchSet(rng, locs)
		bBefore := b.Clone()
		want := a.Union(b)
		a.AddSet(b)
		if !a.Equal(want) {
			t.Fatalf("iter %d: AddSet %s != Union %s", i, a, want)
		}
		if !b.Equal(bBefore) {
			t.Fatalf("iter %d: AddSet mutated its argument", i)
		}
	}
	// The zero value grows in place too.
	var zero Set
	var one Set
	one.Add(patchTerm(1, CPUAt("l1"), 0, 5))
	zero.AddSet(one)
	if !zero.Equal(one) {
		t.Fatalf("AddSet into zero set = %s, want %s", zero, one)
	}
}

func TestTrimmedBeforeMatchesTrimBefore(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	locs := []Location{"l1", "l2"}
	for i := 0; i < 200; i++ {
		s := randomPatchSet(rng, locs)
		cut := interval.Time(rng.Intn(60))
		before := s.Clone()
		got := s.TrimmedBefore(cut)
		want := s.Clone()
		want.TrimBefore(cut)
		if !got.Equal(want) {
			t.Fatalf("iter %d: TrimmedBefore(%d) %s != TrimBefore %s", i, cut, got, want)
		}
		if !s.Equal(before) {
			t.Fatalf("iter %d: TrimmedBefore mutated the receiver", i)
		}
	}
}

// The sharing contract: mutating a set derived by a patch op (via the
// documented owner-only mutators applied to a *fresh clone*) must never
// be observable through the source — and, critically, profile-level ops
// on the derived set never write into shared segment storage.
func TestPatchSharingIsCopyOnWrite(t *testing.T) {
	var base Set
	base.Add(patchTerm(4, CPUAt("l1"), 0, 20))
	base.Add(patchTerm(4, MemoryAt("l2"), 0, 20))
	var part Set
	part.Add(patchTerm(1, CPUAt("l1"), 0, 10))

	free, err := base.PatchSubtract(part)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := free.Clone()

	// Further patches on top of the derived set (the ledger's pattern:
	// reserve, release, trim) must leave the earlier snapshot intact.
	free2, err := free.PatchSubtract(part)
	if err != nil {
		t.Fatal(err)
	}
	free3 := free2.PatchUnion(part)
	_ = free3.TrimmedBefore(5)
	if !free.Equal(snapshot) {
		t.Fatalf("patching on top of a derived set changed it: %s != %s", free, snapshot)
	}
	if !free3.Equal(free) {
		t.Fatalf("subtract-then-union did not round-trip: %s != %s", free3, free)
	}
}

func TestEachTypeUntil(t *testing.T) {
	var s Set
	s.Add(patchTerm(1, CPUAt("l1"), 0, 5))
	s.Add(patchTerm(1, MemoryAt("l1"), 0, 5))
	s.Add(patchTerm(1, CPUAt("l2"), 0, 5))
	seen := map[LocatedType]bool{}
	s.EachTypeUntil(func(lt LocatedType) bool {
		seen[lt] = true
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("visited %d types, want 3", len(seen))
	}
	calls := 0
	s.EachTypeUntil(func(LocatedType) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop made %d calls, want 1", calls)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.EachTypeUntil(func(LocatedType) bool { return true })
	})
	if allocs != 0 {
		t.Fatalf("EachTypeUntil allocates %.1f per run, want 0", allocs)
	}
}
