package resource

import (
	"testing"

	"repro/internal/interval"
)

func TestAmountBasics(t *testing.T) {
	a := AmountOf(4, cpuL1)
	if a.Zero() {
		t.Error("4 units is not zero")
	}
	if (Amount{}).Zero() == false {
		t.Error("zero amount misreported")
	}
	if got := a.String(); got != "[4]⟨cpu,l1⟩" {
		t.Errorf("String = %q", got)
	}
	frac := Amount{Qty: 2500, Type: cpuL1}
	if got := frac.String(); got != "[2.500]⟨cpu,l1⟩" {
		t.Errorf("fractional String = %q", got)
	}
}

func TestAmountsAccumulation(t *testing.T) {
	m := NewAmounts(
		AmountOf(3, cpuL1),
		AmountOf(2, netL12),
		AmountOf(5, cpuL1), // accumulates with the first
		Amount{},           // ignored
	)
	if m.Empty() {
		t.Fatal("non-empty amounts misreported")
	}
	if m[cpuL1] != QuantityFromUnits(8) || m[netL12] != QuantityFromUnits(2) {
		t.Errorf("accumulation wrong: %v", m)
	}
	if m.Total() != QuantityFromUnits(10) {
		t.Errorf("Total = %d", m.Total())
	}
	types := m.Types()
	if len(types) != 2 || types[0] != cpuL1 || types[1] != netL12 {
		t.Errorf("Types = %v", types)
	}
	if got := m.String(); got != "{[8]⟨cpu,l1⟩, [2]⟨network,l1→l2⟩}" {
		t.Errorf("String = %q", got)
	}
	if got := NewAmounts().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestAmountsNegativeEntriesVanish(t *testing.T) {
	m := NewAmounts(AmountOf(3, cpuL1))
	m.Add(Amount{Qty: -QuantityFromUnits(3), Type: cpuL1})
	if !m.Empty() {
		t.Errorf("cancelled entry survived: %v", m)
	}
	// Merging negative beyond zero deletes too.
	m = NewAmounts(AmountOf(1, cpuL1))
	other := Amounts{cpuL1: -QuantityFromUnits(5)}
	m.Merge(other)
	if _, present := m[cpuL1]; present {
		t.Errorf("over-cancelled entry survived: %v", m)
	}
}

func TestAmountsCloneIndependence(t *testing.T) {
	m := NewAmounts(AmountOf(3, cpuL1))
	c := m.Clone()
	c.Add(AmountOf(9, cpuL1))
	if m[cpuL1] != QuantityFromUnits(3) {
		t.Error("Clone shares storage")
	}
}

func TestAmountsSingleType(t *testing.T) {
	m := NewAmounts(AmountOf(3, cpuL1))
	if lt, ok := m.SingleType(); !ok || lt != cpuL1 {
		t.Errorf("SingleType = %v, %v", lt, ok)
	}
	m.Add(AmountOf(1, netL12))
	if _, ok := m.SingleType(); ok {
		t.Error("two-type amounts reported single")
	}
	if _, ok := NewAmounts().SingleType(); ok {
		t.Error("empty amounts reported single")
	}
}

func TestSubtractTermConvenience(t *testing.T) {
	s := NewSet(NewTerm(u(5), cpuL1, interval.New(0, 4)))
	rest, err := s.SubtractTerm(NewTerm(u(2), cpuL1, interval.New(1, 3)))
	if err != nil {
		t.Fatal(err)
	}
	want := NewSet(
		NewTerm(u(5), cpuL1, interval.New(0, 1)),
		NewTerm(u(3), cpuL1, interval.New(1, 3)),
		NewTerm(u(5), cpuL1, interval.New(3, 4)),
	)
	if !rest.Equal(want) {
		t.Errorf("SubtractTerm = %v, want %v", rest, want)
	}
	if _, err := s.SubtractTerm(NewTerm(u(9), cpuL1, interval.New(0, 4))); err == nil {
		t.Error("oversubtraction accepted")
	}
}

func TestLocatedTypeOrdering(t *testing.T) {
	// less drives deterministic rendering: kind, then loc, then dst.
	ordered := []LocatedType{
		CPUAt("a"),
		CPUAt("b"),
		Link("a", "b"),
		Link("a", "c"),
		Link("b", "a"),
	}
	for i := 0; i+1 < len(ordered); i++ {
		if !ordered[i].less(ordered[i+1]) {
			t.Errorf("%v should sort before %v", ordered[i], ordered[i+1])
		}
		if ordered[i+1].less(ordered[i]) {
			t.Errorf("ordering not antisymmetric at %d", i)
		}
	}
}
