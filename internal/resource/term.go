package resource

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/interval"
)

// Rate is a resource availability or consumption rate in milli-units per
// tick. The paper uses natural numbers; fixed-point milli-units keep the
// algebra exact while allowing fractional rates from noisy cost
// estimators. Use Units/FromUnits to convert.
type Rate int64

// Unit is the fixed-point scale: one whole resource unit per tick.
const Unit Rate = 1000

// FromUnits converts whole units per tick to a Rate.
func FromUnits(u int64) Rate {
	return Rate(u) * Unit
}

// Units returns the whole-unit part of the rate (truncating).
func (r Rate) Units() int64 {
	return int64(r / Unit)
}

// Quantity is an amount of resource: Rate integrated over ticks
// (milli-unit-ticks). The product τ × ξ in the paper's footnote — rate
// times interval length — is a Quantity.
type Quantity int64

// QuantityFromUnits converts whole resource units to a Quantity.
func QuantityFromUnits(u int64) Quantity {
	return Quantity(u) * Quantity(Unit)
}

// Units returns the whole-unit part of the quantity (truncating).
func (q Quantity) Units() int64 {
	return int64(q / Quantity(Unit))
}

// Term is the paper's resource term [r]_ξ^τ: resource of located type ξ
// available at rate r throughout time interval τ. A term with an empty
// interval or a zero rate is null (§III: "resources are only defined
// during non-empty time intervals"). Rates cannot be negative.
type Term struct {
	Rate Rate
	Type LocatedType
	Span interval.Interval
}

// NewTerm builds a term, normalizing null terms to the zero Term.
func NewTerm(rate Rate, lt LocatedType, span interval.Interval) Term {
	if rate <= 0 || span.Empty() {
		return Term{}
	}
	return Term{Rate: rate, Type: lt, Span: span}
}

// Null reports whether the term denotes no resource.
func (t Term) Null() bool {
	return t.Rate <= 0 || t.Span.Empty()
}

// Quantity returns the total amount of resource the term provides over
// its whole interval (the paper's τ × ξ product).
func (t Term) Quantity() Quantity {
	if t.Null() {
		return 0
	}
	return Quantity(t.Rate) * Quantity(t.Span.Len())
}

// QuantityWithin returns the amount provided inside the given window.
func (t Term) QuantityWithin(window interval.Interval) Quantity {
	if t.Null() {
		return 0
	}
	ov := t.Span.Intersect(window)
	return Quantity(t.Rate) * Quantity(ov.Len())
}

// Dominates implements the paper's term inequality: t > other holds when a
// computation that requires other can use t instead, with some to spare.
// Formally: same located type, t.Rate ≥ other.Rate, and other's interval
// lies within t's (T2 ∈ T1 in the paper, broadened to ⊆ so that equal
// intervals qualify).
//
// Deviation from the paper: the paper states r1 > r2 strictly, but strict
// dominance would make [5] \ [5] undefined even though consuming exactly
// everything is meaningful; we use ≥ and document it. Use
// StrictlyDominates for the paper's literal relation.
func (t Term) Dominates(other Term) bool {
	if other.Null() {
		return true
	}
	if t.Null() {
		return false
	}
	return t.Type == other.Type &&
		t.Rate >= other.Rate &&
		t.Span.ContainsInterval(other.Span)
}

// StrictlyDominates is the paper's literal > with a strict rate
// inequality.
func (t Term) StrictlyDominates(other Term) bool {
	return t.Dominates(other) && !other.Null() && t.Rate > other.Rate
}

// Subtract computes t − other per §III: the remainder outside other's
// interval keeps rate t.Rate, and the overlap keeps rate t.Rate −
// other.Rate. It returns ok=false (and no terms) unless t dominates
// other.
func (t Term) Subtract(other Term) ([]Term, bool) {
	if other.Null() {
		if t.Null() {
			return nil, true
		}
		return []Term{t}, true
	}
	if !t.Dominates(other) {
		return nil, false
	}
	var out []Term
	for _, rest := range t.Span.Subtract(other.Span) {
		out = append(out, Term{Rate: t.Rate, Type: t.Type, Span: rest})
	}
	if remain := t.Rate - other.Rate; remain > 0 {
		out = append(out, Term{Rate: remain, Type: t.Type, Span: other.Span})
	}
	return out, true
}

// String renders the term in the paper's [rate]_type^interval notation,
// e.g. "[5]⟨cpu,l1⟩(0,3)". Rates print in whole units when exact.
func (t Term) String() string {
	if t.Null() {
		return "[0]"
	}
	return "[" + formatRate(t.Rate) + "]" + t.Type.String() + t.Span.String()
}

func formatRate(r Rate) string {
	if r%Unit == 0 {
		return strconv.FormatInt(int64(r/Unit), 10)
	}
	return strconv.FormatFloat(float64(r)/float64(Unit), 'f', -1, 64)
}

// Compact renders the term in the scenario-file syntax
// "rate:kind@loc:(start,end)", e.g. "5:cpu@l1:(0,3)".
func (t Term) Compact() string {
	if t.Null() {
		return "0"
	}
	return fmt.Sprintf("%s:%s:%s", formatRate(t.Rate), t.Type.compact(), t.Span.String())
}

// ParseTerm parses the compact scenario-file syntax produced by Compact.
func ParseTerm(s string) (Term, error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return Term{}, fmt.Errorf("resource: malformed term %q (want rate:kind@loc:(s,e))", s)
	}
	rate, err := parseRate(parts[0])
	if err != nil {
		return Term{}, fmt.Errorf("resource: bad rate in %q: %w", s, err)
	}
	lt, err := ParseLocatedType(parts[1])
	if err != nil {
		return Term{}, fmt.Errorf("resource: bad located type in %q: %w", s, err)
	}
	span, err := interval.Parse(parts[2])
	if err != nil {
		return Term{}, fmt.Errorf("resource: bad interval in %q: %w", s, err)
	}
	if rate < 0 {
		return Term{}, fmt.Errorf("resource: negative rate in %q (resource terms cannot be negative)", s)
	}
	return NewTerm(rate, lt, span), nil
}

func parseRate(s string) (Rate, error) {
	if whole, err := strconv.ParseInt(s, 10, 64); err == nil {
		return FromUnits(whole), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return Rate(f * float64(Unit)), nil
}
