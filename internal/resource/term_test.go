package resource

import (
	"testing"

	"repro/internal/interval"
)

func TestLocatedTypeString(t *testing.T) {
	tests := []struct {
		lt   LocatedType
		want string
	}{
		{CPUAt("l1"), "⟨cpu,l1⟩"},
		{Link("l1", "l2"), "⟨network,l1→l2⟩"},
		{MemoryAt("n3"), "⟨memory,n3⟩"},
		{At("gpu", "l9"), "⟨gpu,l9⟩"},
	}
	for _, tt := range tests {
		if got := tt.lt.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if !Link("a", "b").IsLink() || CPUAt("a").IsLink() {
		t.Error("IsLink misclassifies")
	}
	if !(LocatedType{}).Zero() || CPUAt("l1").Zero() {
		t.Error("Zero misclassifies")
	}
}

func TestParseLocatedType(t *testing.T) {
	good := []struct {
		in   string
		want LocatedType
	}{
		{"cpu@l1", CPUAt("l1")},
		{"network@l1>l2", Link("l1", "l2")},
		{"gpu@node-7", At("gpu", "node-7")},
	}
	for _, tt := range good {
		got, err := ParseLocatedType(tt.in)
		if err != nil {
			t.Fatalf("ParseLocatedType(%q): %v", tt.in, err)
		}
		if got != tt.want {
			t.Errorf("ParseLocatedType(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	for _, bad := range []string{"", "cpu", "@l1", "cpu@", "cpu@l1>", "cpu@>l2"} {
		if _, err := ParseLocatedType(bad); err == nil {
			t.Errorf("ParseLocatedType(%q) should fail", bad)
		}
	}
}

func TestLocatedTypeRoundTrip(t *testing.T) {
	for _, lt := range []LocatedType{CPUAt("l1"), Link("a", "b"), At("disk", "x")} {
		got, err := ParseLocatedType(lt.compact())
		if err != nil || got != lt {
			t.Errorf("round trip %v -> %q -> %v (%v)", lt, lt.compact(), got, err)
		}
	}
}

func TestRateAndQuantityConversions(t *testing.T) {
	if FromUnits(5) != 5000 {
		t.Errorf("FromUnits(5) = %d", FromUnits(5))
	}
	if FromUnits(5).Units() != 5 {
		t.Errorf("Units round trip failed")
	}
	if Rate(5500).Units() != 5 {
		t.Errorf("truncation wrong: %d", Rate(5500).Units())
	}
	if QuantityFromUnits(3).Units() != 3 {
		t.Errorf("quantity round trip failed")
	}
}

func TestTermNullAndQuantity(t *testing.T) {
	cpu := CPUAt("l1")
	tests := []struct {
		name     string
		term     Term
		wantNull bool
		wantQty  Quantity
	}{
		{"normal", NewTerm(FromUnits(5), cpu, interval.New(0, 3)), false, QuantityFromUnits(15)},
		{"empty interval", NewTerm(FromUnits(5), cpu, interval.New(3, 3)), true, 0},
		{"zero rate", NewTerm(0, cpu, interval.New(0, 3)), true, 0},
		{"negative rate", NewTerm(-1, cpu, interval.New(0, 3)), true, 0},
		{"zero value", Term{}, true, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.term.Null(); got != tt.wantNull {
				t.Errorf("Null() = %v, want %v", got, tt.wantNull)
			}
			if got := tt.term.Quantity(); got != tt.wantQty {
				t.Errorf("Quantity() = %d, want %d", got, tt.wantQty)
			}
		})
	}
}

func TestTermQuantityWithin(t *testing.T) {
	term := NewTerm(FromUnits(4), CPUAt("l1"), interval.New(2, 8))
	tests := []struct {
		window interval.Interval
		want   Quantity
	}{
		{interval.New(0, 10), QuantityFromUnits(24)},
		{interval.New(4, 6), QuantityFromUnits(8)},
		{interval.New(0, 2), 0},
		{interval.New(8, 12), 0},
		{interval.New(7, 9), QuantityFromUnits(4)},
	}
	for _, tt := range tests {
		if got := term.QuantityWithin(tt.window); got != tt.want {
			t.Errorf("QuantityWithin(%v) = %d, want %d", tt.window, got, tt.want)
		}
	}
}

func TestTermDominates(t *testing.T) {
	cpu := CPUAt("l1")
	big := NewTerm(FromUnits(5), cpu, interval.New(0, 10))
	tests := []struct {
		name  string
		small Term
		want  bool
	}{
		{"smaller inside", NewTerm(FromUnits(3), cpu, interval.New(2, 5)), true},
		{"equal", big, true},
		{"higher rate", NewTerm(FromUnits(6), cpu, interval.New(2, 5)), false},
		{"interval escapes", NewTerm(FromUnits(3), cpu, interval.New(5, 12)), false},
		{"different type", NewTerm(FromUnits(3), CPUAt("l2"), interval.New(2, 5)), false},
		{"different kind", NewTerm(FromUnits(3), Link("l1", "l2"), interval.New(2, 5)), false},
		{"null other", Term{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := big.Dominates(tt.small); got != tt.want {
				t.Errorf("Dominates = %v, want %v", got, tt.want)
			}
		})
	}
	if (Term{}).Dominates(big) {
		t.Error("null term cannot dominate a real term")
	}
	// The paper's strict variant.
	if !big.StrictlyDominates(NewTerm(FromUnits(3), cpu, interval.New(2, 5))) {
		t.Error("strict dominance should hold for smaller rate")
	}
	if big.StrictlyDominates(big) {
		t.Error("strict dominance must fail on equal rates")
	}
}

func TestTermSubtract(t *testing.T) {
	cpu := CPUAt("l1")
	// §III worked example: [5]cpu(0,3) − [3]cpu(1,2)
	// = {[5](0,1), [2](1,2), [5](2,3)}.
	minuend := NewTerm(FromUnits(5), cpu, interval.New(0, 3))
	subtrahend := NewTerm(FromUnits(3), cpu, interval.New(1, 2))
	got, ok := minuend.Subtract(subtrahend)
	if !ok {
		t.Fatal("Subtract should be defined")
	}
	want := NewSet(
		NewTerm(FromUnits(5), cpu, interval.New(0, 1)),
		NewTerm(FromUnits(2), cpu, interval.New(1, 2)),
		NewTerm(FromUnits(5), cpu, interval.New(2, 3)),
	)
	if !NewSet(got...).Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	// Undefined when not dominating.
	if _, ok := subtrahend.Subtract(minuend); ok {
		t.Error("Subtract without dominance should be undefined")
	}
	// Exact consumption leaves nothing.
	if rest, ok := minuend.Subtract(minuend); !ok || len(rest) != 0 {
		t.Errorf("t − t = %v, %v; want empty, true", rest, ok)
	}
	// Subtracting null is identity.
	if rest, ok := minuend.Subtract(Term{}); !ok || len(rest) != 1 || rest[0] != minuend {
		t.Errorf("t − null = %v, %v", rest, ok)
	}
}

func TestTermStringAndParse(t *testing.T) {
	term := NewTerm(FromUnits(5), CPUAt("l1"), interval.New(0, 3))
	if got := term.String(); got != "[5]⟨cpu,l1⟩(0,3)" {
		t.Errorf("String = %q", got)
	}
	if got := (Term{}).String(); got != "[0]" {
		t.Errorf("null String = %q", got)
	}
	frac := NewTerm(2500, CPUAt("l1"), interval.New(0, 3))
	if got := frac.String(); got != "[2.5]⟨cpu,l1⟩(0,3)" {
		t.Errorf("fractional String = %q", got)
	}

	for _, tt := range []Term{term, frac, NewTerm(FromUnits(7), Link("a", "b"), interval.New(-2, 9))} {
		back, err := ParseTerm(tt.Compact())
		if err != nil {
			t.Fatalf("ParseTerm(%q): %v", tt.Compact(), err)
		}
		if back != tt {
			t.Errorf("round trip %v -> %q -> %v", tt, tt.Compact(), back)
		}
	}
	for _, bad := range []string{"", "5", "5:cpu@l1", "x:cpu@l1:(0,3)", "5:cpu:(0,3)", "5:cpu@l1:(0", "-5:cpu@l1:(0,3)"} {
		if _, err := ParseTerm(bad); err == nil {
			t.Errorf("ParseTerm(%q) should fail", bad)
		}
	}
}
