package resource

import (
	"fmt"
	"sort"
	"strings"
)

// Amount is a required quantity of a located resource type — the paper's
// [q]_ξ notation for the value of Φ: "q is the quantity of resource
// required, ξ is the located type". Unlike a Term, an Amount has no time
// interval of its own; the interval comes from the requirement that wraps
// it (§IV).
type Amount struct {
	Qty  Quantity
	Type LocatedType
}

// AmountOf builds an Amount from whole units.
func AmountOf(units int64, lt LocatedType) Amount {
	return Amount{Qty: QuantityFromUnits(units), Type: lt}
}

// Zero reports whether the amount requires nothing.
func (a Amount) Zero() bool {
	return a.Qty <= 0
}

// String renders "[4]⟨network,l1→l2⟩".
func (a Amount) String() string {
	if a.Qty%Quantity(Unit) == 0 {
		return fmt.Sprintf("[%d]%s", a.Qty.Units(), a.Type)
	}
	return fmt.Sprintf("[%.3f]%s", float64(a.Qty)/float64(Unit), a.Type)
}

// Amounts is a multiset of required amounts, one entry per located type.
type Amounts map[LocatedType]Quantity

// NewAmounts sums a list of Amount values into canonical form, dropping
// zero entries.
func NewAmounts(list ...Amount) Amounts {
	out := make(Amounts)
	for _, a := range list {
		out.Add(a)
	}
	return out
}

// Add accumulates one amount. A negative quantity subtracts; entries
// never go below zero (a requirement cannot be negative) — they are
// removed instead.
func (m Amounts) Add(a Amount) {
	if a.Qty == 0 {
		return
	}
	m[a.Type] += a.Qty
	if m[a.Type] <= 0 {
		delete(m, a.Type)
	}
}

// Merge accumulates all entries of other into m.
func (m Amounts) Merge(other Amounts) {
	for lt, q := range other {
		m.Add(Amount{Qty: q, Type: lt})
	}
}

// Clone returns a deep copy.
func (m Amounts) Clone() Amounts {
	out := make(Amounts, len(m))
	for lt, q := range m {
		out[lt] = q
	}
	return out
}

// Empty reports whether nothing is required.
func (m Amounts) Empty() bool {
	return len(m) == 0
}

// Types returns the located types in deterministic order.
func (m Amounts) Types() []LocatedType {
	out := make([]LocatedType, 0, len(m))
	for lt := range m {
		out = append(out, lt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Total returns the summed quantity across all types (useful for
// aggregate baselines, not for feasibility).
func (m Amounts) Total() Quantity {
	var total Quantity
	for _, q := range m {
		total += q
	}
	return total
}

// SingleType reports whether all required quantity is of one located
// type, returning it if so. The paper uses this to decide when a sequence
// of actions need not be broken into subcomputations.
func (m Amounts) SingleType() (LocatedType, bool) {
	if len(m) != 1 {
		return LocatedType{}, false
	}
	for lt := range m {
		return lt, true
	}
	return LocatedType{}, false
}

// String renders the amounts deterministically: "{[8]⟨cpu,l1⟩, ...}".
func (m Amounts) String() string {
	if len(m) == 0 {
		return "{}"
	}
	parts := make([]string, 0, len(m))
	for _, lt := range m.Types() {
		parts = append(parts, Amount{Qty: m[lt], Type: lt}.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
