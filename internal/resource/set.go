package resource

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/interval"
)

// ErrInsufficient is returned by Subtract when the subtrahend is not
// dominated by the receiver — the paper defines relative complement only
// when every required term has a dominating available term, because
// negative resource terms are meaningless.
var ErrInsufficient = errors.New("resource: relative complement undefined (insufficient resources)")

// Set is the paper's resource set Θ: a collection of resource terms kept
// in simplified (normalized) form — for each located type, a step function
// of total available rate over time. Simultaneously-available identical
// located types have their rates summed, exactly as §III's simplification
// rule prescribes.
//
// The zero value is the empty set, ready for use. Pure operations (Union,
// Subtract, Clamp, ...) return new sets; mutating operations (Add,
// Consume, TrimBefore) are documented as such.
type Set struct {
	profiles map[LocatedType]profile
}

// NewSet builds a normalized set from terms.
func NewSet(terms ...Term) Set {
	var s Set
	for _, t := range terms {
		s.Add(t)
	}
	return s
}

// Clone returns a deep copy.
func (s Set) Clone() Set {
	if len(s.profiles) == 0 {
		return Set{}
	}
	out := Set{profiles: make(map[LocatedType]profile, len(s.profiles))}
	for lt, p := range s.profiles {
		out.profiles[lt] = p.clone()
	}
	return out
}

// Add merges a term into the set in place (Θ ∪ {t} with simplification).
// Null terms are ignored.
func (s *Set) Add(t Term) {
	if t.Null() {
		return
	}
	if s.profiles == nil {
		s.profiles = make(map[LocatedType]profile)
	}
	s.profiles[t.Type] = s.profiles[t.Type].add(t.Span, t.Rate)
}

// Union returns Θ1 ∪ Θ2 as a new set.
func (s Set) Union(other Set) Set {
	out := s.Clone()
	for lt, p := range other.profiles {
		if out.profiles == nil {
			out.profiles = make(map[LocatedType]profile)
		}
		out.profiles[lt] = out.profiles[lt].merge(p)
	}
	return out
}

// Empty reports whether the set provides no resource at all.
func (s Set) Empty() bool {
	for _, p := range s.profiles {
		if !p.empty() {
			return false
		}
	}
	return true
}

// Types returns the located types present, in deterministic order.
func (s Set) Types() []LocatedType {
	out := make([]LocatedType, 0, len(s.profiles))
	for lt, p := range s.profiles {
		if !p.empty() {
			out = append(out, lt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Terms returns the normalized terms of the set in deterministic order:
// by located type, then by interval start.
func (s Set) Terms() []Term {
	var out []Term
	for _, lt := range s.Types() {
		for _, seg := range s.profiles[lt].segs {
			out = append(out, Term{Rate: seg.rate, Type: lt, Span: seg.span})
		}
	}
	return out
}

// NumTerms returns the number of normalized terms.
func (s Set) NumTerms() int {
	n := 0
	for _, p := range s.profiles {
		n += len(p.segs)
	}
	return n
}

// RateAt returns the available rate of lt at tick t.
func (s Set) RateAt(lt LocatedType, t interval.Time) Rate {
	return s.profiles[lt].rateAt(t)
}

// MinRate returns the minimum rate of lt over the window (zero if any
// tick is uncovered).
func (s Set) MinRate(lt LocatedType, window interval.Interval) Rate {
	return s.profiles[lt].minRate(window)
}

// QuantityWithin integrates availability of lt over the window. This is
// the ∪ₛᵈ Θ aggregate used by the paper's satisfy function f.
func (s Set) QuantityWithin(lt LocatedType, window interval.Interval) Quantity {
	return s.profiles[lt].quantity(window)
}

// TotalQuantity integrates availability of every type over the window.
func (s Set) TotalQuantity(window interval.Interval) map[LocatedType]Quantity {
	out := make(map[LocatedType]Quantity, len(s.profiles))
	for lt, p := range s.profiles {
		if q := p.quantity(window); q > 0 {
			out[lt] = q
		}
	}
	return out
}

// Covers reports whether the set provides at least term.Rate of
// term.Type at every tick of term.Span — the set-level generalization of
// term dominance (a single dominating term implies coverage, but coverage
// may also be assembled from simplification of several terms).
func (s Set) Covers(term Term) bool {
	if term.Null() {
		return true
	}
	return s.profiles[term.Type].covers(term.Span, term.Rate)
}

// Dominates reports whether Θ1 \ Θ2 is defined: availability in s meets
// or exceeds other at every tick for every located type.
func (s Set) Dominates(other Set) bool {
	for lt, q := range other.profiles {
		p := s.profiles[lt]
		for _, seg := range q.segs {
			if !p.covers(seg.span, seg.rate) {
				return false
			}
		}
	}
	return true
}

// Subtract returns Θ1 \ Θ2 per §III, or ErrInsufficient when the
// complement is undefined.
func (s Set) Subtract(other Set) (Set, error) {
	if !s.Dominates(other) {
		return Set{}, ErrInsufficient
	}
	out := s.Clone()
	for lt, q := range other.profiles {
		p := out.profiles[lt]
		for _, seg := range q.segs {
			p = p.subtract(seg.span, seg.rate)
		}
		out.profiles[lt] = p
	}
	return out, nil
}

// SubtractTerm returns Θ \ {t}.
func (s Set) SubtractTerm(t Term) (Set, error) {
	return s.Subtract(NewSet(t))
}

// SubtractSaturating removes as much of other as is present, clamping at
// zero instead of failing — the removal semantics of a resource that
// reneges on its advertised availability: whatever overlap exists
// disappears, regardless of whether something was counting on it.
func (s Set) SubtractSaturating(other Set) Set {
	out := s.Clone()
	for lt, q := range other.profiles {
		p, ok := out.profiles[lt]
		if !ok {
			continue
		}
		for _, seg := range q.segs {
			p = p.subtractSaturating(seg.span, seg.rate)
		}
		if p.empty() {
			delete(out.profiles, lt)
		} else {
			out.profiles[lt] = p
		}
	}
	return out
}

// Consume removes rate×span of lt from the set in place. It returns
// ErrInsufficient (leaving the set unchanged) when coverage is lacking.
// This is the mutation the transition rules apply each Δt.
func (s *Set) Consume(lt LocatedType, span interval.Interval, rate Rate) error {
	if span.Empty() || rate <= 0 {
		return nil
	}
	p := s.profiles[lt]
	if !p.covers(span, rate) {
		return ErrInsufficient
	}
	s.profiles[lt] = p.subtract(span, rate)
	return nil
}

// TrimBefore discards all availability before tick t in place, modeling
// expiration of resources as the clock advances (the paper's resource
// expiration rules). It returns the expired portion as a new set.
func (s *Set) TrimBefore(t interval.Time) Set {
	expired := Set{}
	for lt, p := range s.profiles {
		past := p.clamp(interval.New(interval.NegInfinity, t))
		if !past.empty() {
			if expired.profiles == nil {
				expired.profiles = make(map[LocatedType]profile)
			}
			expired.profiles[lt] = past
		}
		future := p.clamp(interval.New(t, interval.Infinity))
		if future.empty() {
			delete(s.profiles, lt)
		} else {
			s.profiles[lt] = future
		}
	}
	return expired
}

// Clamp returns the subset of availability inside the window.
func (s Set) Clamp(window interval.Interval) Set {
	out := Set{}
	for lt, p := range s.profiles {
		c := p.clamp(window)
		if !c.empty() {
			if out.profiles == nil {
				out.profiles = make(map[LocatedType]profile)
			}
			out.profiles[lt] = c
		}
	}
	return out
}

// EarliestWindow finds the earliest interval of the given duration,
// within the given bounds, throughout which lt is available at rate or
// better — the query a planner asks when placing a constant-rate
// reservation. It returns ok=false when no such window exists.
func (s Set) EarliestWindow(lt LocatedType, rate Rate, duration interval.Time, within interval.Interval) (interval.Interval, bool) {
	if duration <= 0 || rate <= 0 {
		return interval.New(within.Start, within.Start), !within.Empty()
	}
	p := s.profiles[lt].clamp(within)
	runStart := interval.Time(0)
	runEnd := interval.Time(0)
	inRun := false
	for _, seg := range p.segs {
		if seg.rate < rate {
			inRun = false
			continue
		}
		if inRun && seg.span.Start == runEnd {
			runEnd = seg.span.End
		} else {
			runStart, runEnd = seg.span.Start, seg.span.End
			inRun = true
		}
		if runEnd-runStart >= duration {
			return interval.New(runStart, runStart+duration), true
		}
	}
	return interval.Interval{}, false
}

// Support returns the ticks during which lt is available at all.
func (s Set) Support(lt LocatedType) interval.Set {
	return s.profiles[lt].support()
}

// Hull returns the smallest interval covering all availability of every
// type.
func (s Set) Hull() interval.Interval {
	var hull interval.Interval
	for _, p := range s.profiles {
		hull = hull.Hull(p.hull())
	}
	return hull
}

// Equal reports point-wise equality of two sets.
func (s Set) Equal(other Set) bool {
	for lt, p := range s.profiles {
		if !p.equal(other.profiles[lt]) {
			return false
		}
	}
	for lt, p := range other.profiles {
		if _, seen := s.profiles[lt]; !seen && !p.empty() {
			return false
		}
	}
	return true
}

// String renders the set as "{[5]⟨cpu,l1⟩(0,3), ...}" in deterministic
// order; the empty set renders as "{}".
func (s Set) String() string {
	terms := s.Terms()
	if len(terms) == 0 {
		return "{}"
	}
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Compact renders the set in scenario-file syntax: comma-separated
// compact terms.
func (s Set) Compact() string {
	terms := s.Terms()
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.Compact()
	}
	return strings.Join(parts, ",")
}

// ParseSet parses the comma-separated compact syntax produced by Compact.
// An empty string yields the empty set.
func ParseSet(str string) (Set, error) {
	str = strings.TrimSpace(str)
	if str == "" {
		return Set{}, nil
	}
	var s Set
	for _, field := range splitTopLevel(str) {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		t, err := ParseTerm(field)
		if err != nil {
			return Set{}, fmt.Errorf("resource: parse set: %w", err)
		}
		s.Add(t)
	}
	return s, nil
}

// splitTopLevel splits on commas that are not inside parentheses, so that
// interval notation "(0,3)" survives inside a term.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
