package resource

import (
	"encoding/json"
	"testing"

	"repro/internal/interval"
)

func TestLocatedTypeJSONRoundTrip(t *testing.T) {
	for _, lt := range []LocatedType{CPUAt("l1"), Link("a", "b"), At("disk", "n9"), {}} {
		data, err := json.Marshal(lt)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", lt, err)
		}
		var back LocatedType
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("Unmarshal(%s): %v", data, err)
		}
		if back != lt {
			t.Errorf("round trip %v -> %s -> %v", lt, data, back)
		}
	}
	var bad LocatedType
	if err := json.Unmarshal([]byte(`"nonsense"`), &bad); err == nil {
		t.Error("malformed located type accepted")
	}
}

func TestTermJSONRoundTrip(t *testing.T) {
	terms := []Term{
		NewTerm(u(5), cpuL1, interval.New(0, 3)),
		NewTerm(2500, netL12, interval.New(-4, 9)),
		{}, // null term renders as "0"
	}
	for _, term := range terms {
		data, err := json.Marshal(term)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", term, err)
		}
		var back Term
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("Unmarshal(%s): %v", data, err)
		}
		if back != term {
			t.Errorf("round trip %v -> %s -> %v", term, data, back)
		}
	}
	var bad Term
	if err := json.Unmarshal([]byte(`"xx"`), &bad); err == nil {
		t.Error("malformed term accepted")
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	sets := []Set{
		{},
		NewSet(NewTerm(u(5), cpuL1, interval.New(0, 3))),
		NewSet(
			NewTerm(u(5), cpuL1, interval.New(0, 3)),
			NewTerm(u(2), netL12, interval.New(1, 8)),
			NewTerm(u(5), cpuL1, interval.New(2, 6)), // forces simplification
		),
	}
	for _, s := range sets {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", s, err)
		}
		var back Set
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("Unmarshal(%s): %v", data, err)
		}
		if !back.Equal(s) {
			t.Errorf("round trip %v -> %s -> %v", s, data, back)
		}
	}
	var bad Set
	if err := json.Unmarshal([]byte(`"zzz"`), &bad); err == nil {
		t.Error("malformed set accepted")
	}
}

func TestSetJSONInsideStruct(t *testing.T) {
	type snapshot struct {
		Now   int64 `json:"now"`
		Theta Set   `json:"theta"`
	}
	in := snapshot{
		Now:   7,
		Theta: NewSet(NewTerm(u(3), cpuL1, interval.New(7, 20))),
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out snapshot
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Now != 7 || !out.Theta.Equal(in.Theta) {
		t.Errorf("round trip: %+v -> %s -> %+v", in, data, out)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := interval.New(3, 9)
	back, err := UnmarshalInterval(MarshalInterval(iv))
	if err != nil || !back.Equal(iv) {
		t.Errorf("interval helpers: %v, %v", back, err)
	}
	if _, err := UnmarshalInterval("junk"); err == nil {
		t.Error("malformed interval accepted")
	}
}
