// Package metrics provides the small statistics and tabular-output
// helpers the experiment harness uses to print paper-style tables and
// figure series.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1), or 0 when n < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank, or 0
// for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Table accumulates rows and renders them with aligned columns, suitable
// for experiment output that mirrors a paper table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int {
	return len(t.rows)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "%s\n", t.title)
	}
	var sep strings.Builder
	for i := range t.headers {
		if i > 0 {
			sep.WriteString("-+-")
		}
		sep.WriteString(strings.Repeat("-", widths[i]))
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, " | ")
			}
			// Rows may carry more cells than there are headers; cells
			// beyond the last header render unpadded instead of panicking.
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(w, "%-*s", width, cell)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.headers)
	fmt.Fprintln(w, sep.String())
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, note := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", note)
	}
}

// RenderCSV writes the table as CSV (headers then rows).
func (t *Table) RenderCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.rows {
		out := make([]string, len(row))
		for i, c := range row {
			out[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
}
