package metrics

import (
	"sync/atomic"
	"time"
)

// RPCStats aggregates one peer's RPC traffic: a latency histogram over
// completed calls plus outcome counters. All methods are safe for
// concurrent use; the zero value is not usable — use NewRPCStats.
type RPCStats struct {
	latencyUS *Histogram
	ok        atomic.Uint64
	errors    atomic.Uint64
	timeouts  atomic.Uint64
	retries   atomic.Uint64
}

// NewRPCStats builds an empty per-peer recorder.
func NewRPCStats() *RPCStats {
	return &RPCStats{latencyUS: NewHistogram()}
}

// Observe records one logical call: its total duration (across all
// attempts), its outcome, and how many retries it took. Timeouts are
// counted separately from other errors because they are the signal that
// a peer is slow rather than broken.
func (r *RPCStats) Observe(d time.Duration, ok, timedOut bool, retries int) {
	r.latencyUS.Observe(float64(d.Microseconds()))
	switch {
	case ok:
		r.ok.Add(1)
	case timedOut:
		r.timeouts.Add(1)
	default:
		r.errors.Add(1)
	}
	if retries > 0 {
		r.retries.Add(uint64(retries))
	}
}

// LatencySummary digests the latency histogram alone, for consumers
// (the Prometheus exposition) that want the full quantile set rather
// than the wire-shaped RPCSummary.
func (r *RPCStats) LatencySummary() HistogramSummary {
	return r.latencyUS.Summary()
}

// RPCSummary is the JSON shape of a peer's RPC digest.
type RPCSummary struct {
	Calls    uint64  `json:"calls"`
	OK       uint64  `json:"ok"`
	Errors   uint64  `json:"errors"`
	Timeouts uint64  `json:"timeouts"`
	Retries  uint64  `json:"retries"`
	MeanUS   float64 `json:"latency_mean_us"`
	P50US    float64 `json:"latency_p50_us"`
	P99US    float64 `json:"latency_p99_us"`
	MaxUS    float64 `json:"latency_max_us"`
}

// Summary digests the recorder.
func (r *RPCStats) Summary() RPCSummary {
	ok, errs, timeouts := r.ok.Load(), r.errors.Load(), r.timeouts.Load()
	lat := r.latencyUS.Summary()
	return RPCSummary{
		Calls:    ok + errs + timeouts,
		OK:       ok,
		Errors:   errs,
		Timeouts: timeouts,
		Retries:  r.retries.Load(),
		MeanUS:   lat.Mean,
		P50US:    lat.P50,
		P99US:    lat.P99,
		MaxUS:    lat.Max,
	}
}
