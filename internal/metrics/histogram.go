package metrics

import (
	"math"
	"sync"
)

// Histogram is a concurrency-safe log-linear histogram for latency-style
// measurements: 64 power-of-two major buckets, each split into 16 linear
// minor buckets, so quantile estimates carry at most ~6% relative error
// while the whole structure stays a fixed 8 KiB. Observe is safe to call
// from many goroutines; the zero value is not usable — use NewHistogram.
type Histogram struct {
	mu      sync.Mutex
	buckets []uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

const (
	histMinors  = 16
	histMajors  = 64
	histBuckets = histMajors * histMinors
)

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, histBuckets)}
}

// bucketIndex maps a value to its log-linear bucket. Values below 1 land
// in bucket 0; the unit is the caller's choice (the server records
// microseconds).
func bucketIndex(v float64) int {
	if v < 1 {
		return 0
	}
	major := int(math.Floor(math.Log2(v)))
	if major >= histMajors {
		return histBuckets - 1
	}
	scale := math.Ldexp(1, major) // 2^major
	minor := int((v/scale - 1) * histMinors)
	if minor < 0 {
		minor = 0
	}
	if minor >= histMinors {
		minor = histMinors - 1
	}
	return major*histMinors + minor
}

// bucketValue is the representative (midpoint) value of a bucket.
func bucketValue(idx int) float64 {
	major := idx / histMinors
	minor := idx % histMinors
	scale := math.Ldexp(1, major)
	return scale * (1 + (float64(minor)+0.5)/histMinors)
}

// Observe records one measurement. Negative, NaN and -Inf values are
// clamped into the smallest bucket; +Inf is clamped to the largest
// bucket's representative value so a single stray observation cannot
// poison sum (and with it Mean) into a permanent +Inf.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 { // v < 0 also catches -Inf
		v = 0
	}
	if math.IsInf(v, 1) {
		v = bucketValue(histBuckets - 1)
	}
	idx := bucketIndex(v)
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistogramSummary is a point-in-time digest of a histogram.
type HistogramSummary struct {
	Count         uint64
	Mean          float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summary digests the histogram under one lock acquisition.
func (h *Histogram) Summary() HistogramSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSummary{Count: h.count, Min: h.min, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.count)
	s.P50 = h.quantileLocked(50)
	s.P90 = h.quantileLocked(90)
	s.P99 = h.quantileLocked(99)
	return s
}

// Quantile estimates the p-th percentile (0..100) of the observations,
// or 0 when empty.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(p)
}

func (h *Histogram) quantileLocked(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for idx, n := range h.buckets {
		cum += n
		if cum >= rank {
			v := bucketValue(idx)
			// The estimate cannot exceed the observed extremes.
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}
