package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %f", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %f", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %f", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %f, want ≈2.138", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	tests := []struct {
		p    float64
		want float64
	}{{0, 1}, {50, 5}, {90, 9}, {100, 10}, {-5, 1}, {120, 10}}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%f) = %f, want %f", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %f", got)
	}
	// Input must not be reordered.
	if xs[0] != 9 {
		t.Error("Percentile mutated its input")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("E0: demo", "policy", "miss-rate", "n")
	tb.AddRow("rota", 0.0, 10)
	tb.AddRow("always-admit", 0.4567, 10)
	tb.AddRow("x", float32(123.456), 1)
	tb.AddNote("seed=%d", 7)
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"E0: demo", "policy", "miss-rate", "rota", "always-admit", "0.457", "123.5", "note: seed=7", "-+-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Integral floats print without decimals.
	if !strings.Contains(out, " 0 ") && !strings.Contains(out, " 0 |") && !strings.Contains(out, "| 0") {
		t.Errorf("integral float not compacted:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(`comma,here`, `quote"here`)
	tb.AddRow(1, 2)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"comma,here","quote""here"` {
		t.Errorf("escaped row = %q", lines[1])
	}
	if lines[2] != "1,2" {
		t.Errorf("plain row = %q", lines[2])
	}
}

func TestTableRenderRaggedRows(t *testing.T) {
	tb := NewTable("ragged", "a", "b")
	tb.AddRow(1, 2, 3, 4) // more cells than headers must not panic
	tb.AddRow(5)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"1", "2", "3", "4", "5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	tb.RenderCSV(&csv)
	if !strings.Contains(csv.String(), "1,2,3,4") {
		t.Errorf("CSV dropped extra cells:\n%s", csv.String())
	}
}
