package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatal("fresh histogram not empty")
	}
	s := h.Summary()
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..10000: quantiles are known, log-linear buckets promise
	// ~6% relative error.
	for v := 1; v <= 10000; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ p, want float64 }{
		{50, 5000}, {90, 9000}, {99, 9900},
	} {
		got := h.Quantile(tc.p)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.07 {
			t.Errorf("p%v = %v, want within 7%% of %v", tc.p, got, tc.want)
		}
	}
	s := h.Summary()
	if s.Min != 1 || s.Max != 10000 || s.Count != 10000 {
		t.Errorf("summary extremes wrong: %+v", s)
	}
	if math.Abs(s.Mean-5000.5) > 0.5 {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestHistogramClampsJunk(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	h.Observe(math.NaN())
	h.Observe(0.25)
	h.Observe(math.MaxFloat64) // far beyond the top bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(100); q != math.MaxFloat64 {
		t.Errorf("max quantile = %v", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestHistogramInfDoesNotPoisonSum(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	s := h.Summary()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.IsInf(s.Mean, 0) || math.IsNaN(s.Mean) {
		t.Fatalf("mean poisoned by infinite observation: %v", s.Mean)
	}
	if math.IsInf(s.Max, 0) {
		t.Fatalf("max poisoned: %v", s.Max)
	}
	if s.Min != 0 {
		t.Fatalf("-Inf not clamped to smallest bucket: min = %v", s.Min)
	}
}
