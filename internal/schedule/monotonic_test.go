package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
)

// randSingleActorReq builds a random single-actor complex requirement.
func randSingleActorReq(rng *rand.Rand, name compute.ActorName, deadline interval.Time) compute.Complex {
	types := []resource.LocatedType{cpuL1, cpuL2, netL12}
	nSteps := 1 + rng.Intn(4)
	steps := make([]compute.Step, 0, nSteps)
	for i := 0; i < nSteps; i++ {
		lt := types[rng.Intn(len(types))]
		steps = append(steps, compute.Step{
			Action: compute.Evaluate(name, "l1", 1),
			Amounts: resource.NewAmounts(resource.Amount{
				Qty:  resource.QuantityFromUnits(int64(1 + rng.Intn(6))),
				Type: lt,
			}),
		})
	}
	comp, err := compute.NewComputation(name, steps...)
	if err != nil {
		panic(err)
	}
	return compute.ComplexOf(comp, interval.New(0, deadline))
}

func randSupply(rng *rand.Rand, n int) resource.Set {
	types := []resource.LocatedType{cpuL1, cpuL2, netL12}
	var theta resource.Set
	for i := 0; i < n; i++ {
		start := interval.Time(rng.Intn(10))
		theta.Add(resource.NewTerm(
			resource.FromUnits(int64(1+rng.Intn(4))),
			types[rng.Intn(len(types))],
			interval.New(start, start+1+interval.Time(rng.Intn(10)))))
	}
	return theta
}

// TestPropertyMoreResourcesPreserveFeasibility: if a schedule exists in
// Θ, one exists in Θ ∪ Θ' for any Θ'. The single-actor procedure is
// exact, so this must hold unconditionally there.
func TestPropertyMoreResourcesPreserveFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 500; iter++ {
		req := randSingleActorReq(rng, "a1", 8+interval.Time(rng.Intn(16)))
		theta := randSupply(rng, 2+rng.Intn(4))
		if _, err := Single(theta, req); err != nil {
			continue
		}
		bigger := theta.Union(randSupply(rng, 1+rng.Intn(3)))
		if _, err := Single(bigger, req); err != nil {
			t.Fatalf("iter %d: adding resources broke feasibility\nreq=%v\ntheta=%v\nbigger=%v",
				iter, req, theta, bigger)
		}
	}
}

// TestPropertyLongerDeadlinePreservesFeasibility: extending the window's
// end can only help a single actor.
func TestPropertyLongerDeadlinePreservesFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for iter := 0; iter < 500; iter++ {
		deadline := 6 + interval.Time(rng.Intn(14))
		req := randSingleActorReq(rng, "a1", deadline)
		theta := randSupply(rng, 2+rng.Intn(4))
		if _, err := Single(theta, req); err != nil {
			continue
		}
		relaxed := compute.Complex{
			Actor:  req.Actor,
			Phases: req.Phases,
			Window: interval.New(req.Window.Start, req.Window.End+1+interval.Time(rng.Intn(8))),
		}
		if _, err := Single(theta, relaxed); err != nil {
			t.Fatalf("iter %d: longer deadline broke feasibility\nreq=%v\ntheta=%v", iter, req, theta)
		}
	}
}

// TestPropertySingleMatchesBruteForce cross-validates the greedy
// single-actor procedure against exhaustive enumeration of break points
// on small instances: greedy must agree exactly on feasibility (Theorem 2
// quantifies over all break-point choices).
func TestPropertySingleMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 400; iter++ {
		deadline := 3 + interval.Time(rng.Intn(8)) // small windows keep brute force cheap
		req := randSingleActorReq(rng, "a1", deadline)
		theta := randSupply(rng, 1+rng.Intn(3))

		_, greedyErr := Single(theta, req)
		brute := bruteForceFeasible(theta, req)
		if (greedyErr == nil) != brute {
			t.Fatalf("iter %d: greedy=%v brute=%v\nreq=%+v\ntheta=%v",
				iter, greedyErr == nil, brute, req, theta)
		}
	}
}

// bruteForceFeasible enumerates every monotone assignment of break points
// on the integer grid and tests the per-subinterval aggregate condition
// of Theorem 2 directly.
func bruteForceFeasible(theta resource.Set, req compute.Complex) bool {
	m := len(req.Phases)
	if m == 0 {
		return true
	}
	var rec func(breaks []interval.Time, from interval.Time) bool
	rec = func(breaks []interval.Time, from interval.Time) bool {
		if len(breaks) == m-1 {
			return req.SatisfiedWithBreaks(theta, breaks) == nil
		}
		for t := from; t <= req.Window.End; t++ {
			if rec(append(breaks, t), t) {
				return true
			}
		}
		return false
	}
	return rec(nil, req.Window.Start)
}
