// Package schedule implements the constructive decision procedures behind
// the paper's theorems: given available resources Θ and the resource
// requirements of a computation, it searches for the break points
// t1 … t_{m-1} whose existence Theorem 2 quantifies over, and for
// concurrent computations the per-actor consumption schedules whose
// combination Theorem 4's path-composition argument relies on.
//
// The procedures are constructive: success returns a Plan — a concrete
// witness assigning every phase a set of resource-term allocations — that
// can be independently verified against Θ and then executed by the
// simulator. This is what lets experiment E3 validate checker soundness
// against ground truth.
package schedule

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
)

// ErrInfeasible is returned when no schedule exists (or none was found,
// for the heuristic multi-actor search; see Concurrent).
var ErrInfeasible = errors.New("schedule: infeasible")

// Allocation is one planned consumption: the given actor's phase consumes
// Term.Rate of Term.Type throughout Term.Span.
type Allocation struct {
	Actor compute.ActorName
	Phase int
	Term  resource.Term
}

// Plan is a witness schedule for a computation's requirements.
type Plan struct {
	// Allocs lists every planned consumption, ordered by actor then
	// phase.
	Allocs []Allocation
	// Breaks maps each actor to its phase completion times (the paper's
	// t1 … t_{m-1} plus the final completion time t_m).
	Breaks map[compute.ActorName][]interval.Time
	// Finish is the time by which every actor completes.
	Finish interval.Time
}

// Demand returns the total planned consumption as a resource set. A valid
// plan's demand is dominated by the available resources.
func (p Plan) Demand() resource.Set {
	var s resource.Set
	for _, a := range p.Allocs {
		s.Add(a.Term)
	}
	return s
}

// Empty reports whether the plan consumes nothing.
func (p Plan) Empty() bool {
	return len(p.Allocs) == 0
}

// Single decides Theorems 1 and 2 for one actor: can the sequential
// computation with complex requirement req be completed within its window
// using Θ alone? On success it returns the earliest-finish witness plan.
//
// The procedure is exact for a single actor: each phase greedily consumes
// all remaining availability of its required types as early as possible,
// and since phases are strictly ordered and consumption is not
// rate-capped, finishing each phase earliest can only enlarge the
// feasible region of its successors.
func Single(theta resource.Set, req compute.Complex) (Plan, error) {
	plan := Plan{Breaks: map[compute.ActorName][]interval.Time{}}
	working := theta.Clone()
	if err := scheduleActor(&working, req, &plan); err != nil {
		return Plan{}, err
	}
	for _, breaks := range plan.Breaks {
		if n := len(breaks); n > 0 && breaks[n-1] > plan.Finish {
			plan.Finish = breaks[n-1]
		}
	}
	return plan, nil
}

// config controls the multi-actor search.
type config struct {
	exhaustive      bool
	maxPermutations int
}

// Option configures Concurrent.
type Option func(*config)

// WithExhaustive makes Concurrent try actor orderings until one succeeds
// (bounded by WithMaxPermutations) instead of the single
// largest-demand-first heuristic order. The greedy pass is sound but not
// complete under contention; exhaustive search restores completeness at
// factorial cost.
func WithExhaustive() Option {
	return func(c *config) { c.exhaustive = true }
}

// WithMaxPermutations bounds the orderings the exhaustive search visits.
// The default is 720 (6!).
func WithMaxPermutations(n int) Option {
	return func(c *config) { c.maxPermutations = n }
}

// Concurrent decides accommodation for a multi-actor computation against
// Θ: it schedules actors one at a time — the paper's "try to accommodate
// one more computation at a time" — subtracting each actor's planned
// consumption before scheduling the next.
//
// A returned plan is always a genuine witness (sound). When the default
// greedy ordering fails, callers may retry with WithExhaustive, which
// searches actor orderings; failure of the exhaustive search within its
// permutation budget still returns ErrInfeasible, so an infeasibility
// verdict from this function is definitive only for single-actor inputs
// or an unexhausted permutation budget.
func Concurrent(theta resource.Set, req compute.Concurrent, opts ...Option) (Plan, error) {
	cfg := config{maxPermutations: 720}
	for _, o := range opts {
		o(&cfg)
	}
	actors := make([]compute.Complex, len(req.Actors))
	copy(actors, req.Actors)
	// Heuristic order: largest total demand first, so the bulkiest actor
	// gets first pick of scarce capacity.
	sort.SliceStable(actors, func(i, j int) bool {
		return actors[i].TotalAmounts().Total() > actors[j].TotalAmounts().Total()
	})

	if plan, err := tryOrder(theta, actors); err == nil {
		return plan, nil
	} else if !cfg.exhaustive {
		return Plan{}, err
	}
	var found *Plan
	tried := 0
	permute(actors, func(order []compute.Complex) bool {
		tried++
		if tried > cfg.maxPermutations {
			return false
		}
		if plan, err := tryOrder(theta, order); err == nil {
			found = &plan
			return false
		}
		return true
	})
	if found == nil {
		return Plan{}, fmt.Errorf("%w: no actor ordering of %d tried succeeded", ErrInfeasible, tried)
	}
	return *found, nil
}

// tryOrder schedules the actors in the given order against a working copy
// of Θ.
func tryOrder(theta resource.Set, order []compute.Complex) (Plan, error) {
	plan := Plan{Breaks: map[compute.ActorName][]interval.Time{}}
	working := theta.Clone()
	for _, actor := range order {
		if err := scheduleActor(&working, actor, &plan); err != nil {
			return Plan{}, err
		}
	}
	for _, breaks := range plan.Breaks {
		if n := len(breaks); n > 0 && breaks[n-1] > plan.Finish {
			plan.Finish = breaks[n-1]
		}
	}
	return plan, nil
}

// permute visits permutations of actors until visit returns false.
func permute(actors []compute.Complex, visit func([]compute.Complex) bool) {
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(actors) {
			return visit(actors)
		}
		for i := k; i < len(actors); i++ {
			actors[k], actors[i] = actors[i], actors[k]
			cont := rec(k + 1)
			actors[k], actors[i] = actors[i], actors[k]
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
}

// scheduleActor plans one actor's phases against the working set,
// consuming what it allocates. The actor's phases run back to back: phase
// i begins the moment phase i−1 completes.
func scheduleActor(working *resource.Set, req compute.Complex, plan *Plan) error {
	cursor := req.Window.Start
	var breaks []interval.Time
	for phaseIdx, phase := range req.Phases {
		completion := cursor
		// Allocate each required type independently from the cursor; the
		// phase completes when its slowest type is fully delivered.
		for _, lt := range phase.Amounts.Types() {
			need := phase.Amounts[lt]
			allocs, doneAt, err := earliestAllocations(*working, lt, need, interval.New(cursor, req.Window.End))
			if err != nil {
				return fmt.Errorf("%w: actor %s phase %d needs %v of %v in %v",
					ErrInfeasible, req.Actor, phaseIdx, need, lt, interval.New(cursor, req.Window.End))
			}
			for _, term := range allocs {
				if consumeErr := working.Consume(term.Type, term.Span, term.Rate); consumeErr != nil {
					return fmt.Errorf("schedule: internal: allocation exceeds availability: %v", consumeErr)
				}
				plan.Allocs = append(plan.Allocs, Allocation{Actor: req.Actor, Phase: phaseIdx, Term: term})
			}
			if doneAt > completion {
				completion = doneAt
			}
		}
		cursor = completion
		breaks = append(breaks, cursor)
	}
	plan.Breaks[req.Actor] = breaks
	return nil
}

// earliestAllocations greedily accumulates need units of lt starting at
// window.Start, consuming the full available rate of every tick until the
// final tick, which consumes only the remainder. It returns the
// allocation terms and the completion time (the tick after the last
// consumption).
func earliestAllocations(theta resource.Set, lt resource.LocatedType, need resource.Quantity, window interval.Interval) ([]resource.Term, interval.Time, error) {
	if need <= 0 {
		return nil, window.Start, nil
	}
	if window.Empty() {
		return nil, 0, ErrInfeasible
	}
	var out []resource.Term
	remaining := need
	for _, term := range theta.Clamp(window).Terms() {
		if term.Type != lt {
			continue
		}
		capacity := term.Quantity()
		switch {
		case capacity < resource.Quantity(term.Rate):
			continue // defensive; normalized terms always span ≥ 1 tick
		case remaining > capacity:
			out = append(out, term)
			remaining -= capacity
		default:
			// Final segment: take whole ticks at full rate, then the
			// remainder in one partial-rate tick.
			wholeTicks := interval.Time(remaining / resource.Quantity(term.Rate))
			if wholeTicks > 0 {
				span := interval.New(term.Span.Start, term.Span.Start+wholeTicks)
				out = append(out, resource.NewTerm(term.Rate, lt, span))
				remaining -= resource.Quantity(term.Rate) * resource.Quantity(wholeTicks)
			}
			doneAt := term.Span.Start + wholeTicks
			if remaining > 0 {
				span := interval.New(doneAt, doneAt+1)
				out = append(out, resource.NewTerm(resource.Rate(remaining), lt, span))
				doneAt++
				remaining = 0
			}
			return out, doneAt, nil
		}
	}
	return nil, 0, ErrInfeasible
}

// Verify independently checks a plan against the resources and the
// requirement it claims to witness. It confirms that (1) Θ dominates the
// plan's total demand, (2) every actor's allocations respect its window
// and phase order, and (3) every phase receives its full required
// amounts. A nil error means the plan is a valid Theorem-2/Theorem-4
// witness.
func Verify(theta resource.Set, req compute.Concurrent, plan Plan) error {
	if !theta.Dominates(plan.Demand()) {
		return errors.New("schedule: plan demand exceeds available resources")
	}
	byActor := make(map[compute.ActorName][]Allocation)
	for _, a := range plan.Allocs {
		byActor[a.Actor] = append(byActor[a.Actor], a)
	}
	for _, actor := range req.Actors {
		breaks := plan.Breaks[actor.Actor]
		if len(actor.Phases) == 0 {
			continue
		}
		if len(breaks) != len(actor.Phases) {
			return fmt.Errorf("schedule: actor %s has %d breaks for %d phases",
				actor.Actor, len(breaks), len(actor.Phases))
		}
		prev := actor.Window.Start
		for i, phase := range actor.Phases {
			end := breaks[i]
			if end < prev || end > actor.Window.End {
				return fmt.Errorf("schedule: actor %s phase %d boundary %d outside (%d,%d)",
					actor.Actor, i, end, prev, actor.Window.End)
			}
			got := make(resource.Amounts)
			for _, a := range byActor[actor.Actor] {
				if a.Phase != i {
					continue
				}
				if !interval.New(prev, end).ContainsInterval(a.Term.Span) {
					return fmt.Errorf("schedule: actor %s phase %d allocation %v escapes subinterval (%d,%d)",
						actor.Actor, i, a.Term, prev, end)
				}
				got.Add(resource.Amount{Qty: a.Term.Quantity(), Type: a.Term.Type})
			}
			for lt, needQ := range phase.Amounts {
				if got[lt] < needQ {
					return fmt.Errorf("schedule: actor %s phase %d got %v of %v, needs %v",
						actor.Actor, i, got[lt], lt, needQ)
				}
			}
			prev = end
		}
	}
	return nil
}
