package schedule

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
)

// WorkflowPlan is the witness schedule for a workflow: allocations tagged
// by segment, each segment's start and completion time, and the overall
// finish.
type WorkflowPlan struct {
	Allocs []WorkflowAllocation
	// StartAt and DoneAt give each segment's scheduled window.
	StartAt map[compute.SegmentRef]interval.Time
	DoneAt  map[compute.SegmentRef]interval.Time
	Finish  interval.Time
}

// WorkflowAllocation is one planned consumption for a segment phase.
type WorkflowAllocation struct {
	Ref   compute.SegmentRef
	Phase int
	Term  resource.Term
}

// Demand returns the total planned consumption.
func (p WorkflowPlan) Demand() resource.Set {
	var s resource.Set
	for _, a := range p.Allocs {
		s.Add(a.Term)
	}
	return s
}

// FeasibleWorkflow searches for a witness schedule for a workflow with
// wait edges (the §VI extension): segments are scheduled in dependency
// order, each starting no earlier than the completion of everything it
// waits for, consuming from a working copy of Θ. A returned plan is a
// genuine witness (sound); as with Concurrent, failure under contention
// is not a proof of infeasibility because segment interleavings are not
// searched exhaustively.
func FeasibleWorkflow(theta resource.Set, w compute.Workflow) (WorkflowPlan, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return WorkflowPlan{}, err
	}
	plan := WorkflowPlan{
		StartAt: make(map[compute.SegmentRef]interval.Time, len(order)),
		DoneAt:  make(map[compute.SegmentRef]interval.Time, len(order)),
	}
	working := theta.Clone()
	for _, ref := range order {
		seg, ok := w.Segment(ref)
		if !ok {
			return WorkflowPlan{}, fmt.Errorf("schedule: dangling segment %v", ref)
		}
		start := w.Start
		for _, dep := range w.Dependencies(ref) {
			if done := plan.DoneAt[dep]; done > start {
				start = done
			}
		}
		plan.StartAt[ref] = start
		cursor := start
		for phaseIdx, phase := range seg.Phases() {
			completion := cursor
			for _, lt := range phase.Amounts.Types() {
				need := phase.Amounts[lt]
				allocs, doneAt, err := earliestAllocations(working, lt, need, interval.New(cursor, w.Deadline))
				if err != nil {
					return WorkflowPlan{}, fmt.Errorf("%w: segment %v phase %d needs %v of %v in (%d,%d)",
						ErrInfeasible, ref, phaseIdx, need, lt, cursor, w.Deadline)
				}
				for _, term := range allocs {
					if consumeErr := working.Consume(term.Type, term.Span, term.Rate); consumeErr != nil {
						return WorkflowPlan{}, fmt.Errorf("schedule: internal: workflow allocation exceeds availability: %v", consumeErr)
					}
					plan.Allocs = append(plan.Allocs, WorkflowAllocation{Ref: ref, Phase: phaseIdx, Term: term})
				}
				if doneAt > completion {
					completion = doneAt
				}
			}
			cursor = completion
		}
		plan.DoneAt[ref] = cursor
		if cursor > plan.Finish {
			plan.Finish = cursor
		}
	}
	return plan, nil
}

// VerifyWorkflow independently checks a workflow plan: Θ dominance,
// window containment, precedence between segment windows, and per-phase
// delivery. A nil error means the plan is a valid witness that the
// workflow can meet its deadline.
func VerifyWorkflow(theta resource.Set, w compute.Workflow, plan WorkflowPlan) error {
	if !theta.Dominates(plan.Demand()) {
		return fmt.Errorf("schedule: workflow plan demand exceeds available resources")
	}
	if plan.Finish > w.Deadline {
		return fmt.Errorf("schedule: workflow finishes at %d, after deadline %d", plan.Finish, w.Deadline)
	}
	order, err := w.TopoOrder()
	if err != nil {
		return err
	}
	byRef := make(map[compute.SegmentRef][]WorkflowAllocation)
	for _, a := range plan.Allocs {
		byRef[a.Ref] = append(byRef[a.Ref], a)
	}
	for _, ref := range order {
		seg, _ := w.Segment(ref)
		start, okS := plan.StartAt[ref]
		done, okD := plan.DoneAt[ref]
		if !okS || !okD {
			return fmt.Errorf("schedule: segment %v missing from plan", ref)
		}
		if start < w.Start || done > w.Deadline || done < start {
			return fmt.Errorf("schedule: segment %v window (%d,%d) escapes workflow window", ref, start, done)
		}
		for _, dep := range w.Dependencies(ref) {
			if plan.DoneAt[dep] > start {
				return fmt.Errorf("schedule: segment %v starts at %d before dependency %v completes at %d",
					ref, start, dep, plan.DoneAt[dep])
			}
		}
		window := interval.New(start, done)
		got := make(resource.Amounts)
		for _, a := range byRef[ref] {
			if !window.ContainsInterval(a.Term.Span) && !a.Term.Span.Empty() {
				return fmt.Errorf("schedule: segment %v allocation %v escapes window (%d,%d)",
					ref, a.Term, start, done)
			}
			got.Add(resource.Amount{Qty: a.Term.Quantity(), Type: a.Term.Type})
		}
		for lt, need := range seg.TotalAmounts() {
			if got[lt] < need {
				return fmt.Errorf("schedule: segment %v got %v of %v, needs %v", ref, got[lt], lt, need)
			}
		}
	}
	return nil
}
