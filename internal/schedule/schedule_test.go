package schedule

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

var (
	cpuL1  = resource.CPUAt("l1")
	cpuL2  = resource.CPUAt("l2")
	netL12 = resource.Link("l1", "l2")
)

func u(n int64) resource.Rate { return resource.FromUnits(n) }

// seqActor builds the canonical evaluate→send→evaluate actor used across
// the tests: 8 cpu, then 4 network, then 6 cpu (paper constants except
// the final weight).
func seqActor(t testing.TB, name compute.ActorName) compute.Computation {
	t.Helper()
	c, err := cost.Realize(cost.Paper(), name,
		compute.Evaluate(name, "l1", 1),
		compute.Send(name, "l1", "a2", "l2", 1),
		compute.Evaluate(name, "l1", 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Adjust the final evaluate to 6 units for asymmetry.
	c.Steps[2].Amounts = resource.NewAmounts(resource.AmountOf(6, cpuL1))
	return c
}

func TestSingleActionAccommodation(t *testing.T) {
	// Theorem 1: a single action fits iff its amounts fit in the window.
	c, err := cost.Realize(cost.Paper(), "a1", compute.Evaluate("a1", "l1", 1)) // 8 cpu
	if err != nil {
		t.Fatal(err)
	}
	req := compute.ComplexOf(c, interval.New(0, 4))

	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 4))) // 8 units
	plan, err := Single(theta, req)
	if err != nil {
		t.Fatalf("feasible single action rejected: %v", err)
	}
	if plan.Finish != 4 {
		t.Errorf("Finish = %d, want 4", plan.Finish)
	}
	if err := Verify(theta, compute.Concurrent{Actors: []compute.Complex{req}, Window: req.Window}, plan); err != nil {
		t.Errorf("Verify: %v", err)
	}

	starved := resource.NewSet(resource.NewTerm(u(1), cpuL1, interval.New(0, 4))) // only 4 units
	if _, err := Single(starved, req); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestSingleSequentialOrderMatters(t *testing.T) {
	// The §III caveat: total quantity is not enough — the right resources
	// must exist at the right time. cpu-then-network-then-cpu cannot run
	// if all network precedes all cpu.
	req := compute.ComplexOf(seqActor(t, "a1"), interval.New(0, 12))

	ordered := resource.NewSet(
		resource.NewTerm(u(4), cpuL1, interval.New(0, 2)),  // 8 cpu early
		resource.NewTerm(u(2), netL12, interval.New(2, 4)), // 4 net middle
		resource.NewTerm(u(3), cpuL1, interval.New(4, 6)),  // 6 cpu late
	)
	plan, err := Single(ordered, req)
	if err != nil {
		t.Fatalf("well-ordered resources rejected: %v", err)
	}
	breaks := plan.Breaks["a1"]
	if len(breaks) != 3 {
		t.Fatalf("breaks = %v", breaks)
	}
	if breaks[0] != 2 || breaks[1] != 4 || breaks[2] != 6 {
		t.Errorf("breaks = %v, want [2 4 6]", breaks)
	}

	// Same totals, network first: infeasible for the same computation.
	inverted := resource.NewSet(
		resource.NewTerm(u(2), netL12, interval.New(0, 2)),
		resource.NewTerm(u(4), cpuL1, interval.New(2, 4)),
		resource.NewTerm(u(3), cpuL1, interval.New(4, 6)),
	)
	if _, err := Single(inverted, req); !errors.Is(err, ErrInfeasible) {
		t.Errorf("order-violating resources accepted: %v", err)
	}
}

func TestSinglePartialTickConsumption(t *testing.T) {
	// 8 cpu needed from a rate-3 supply: 2 full ticks (6) + 2 units in
	// the third tick; completion is tick 3.
	c, err := cost.Realize(cost.Paper(), "a1", compute.Evaluate("a1", "l1", 1))
	if err != nil {
		t.Fatal(err)
	}
	req := compute.ComplexOf(c, interval.New(0, 10))
	theta := resource.NewSet(resource.NewTerm(u(3), cpuL1, interval.New(0, 10)))
	plan, err := Single(theta, req)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Finish != 3 {
		t.Errorf("Finish = %d, want 3", plan.Finish)
	}
	demand := plan.Demand()
	if got := demand.QuantityWithin(cpuL1, interval.New(0, 10)); got != resource.QuantityFromUnits(8) {
		t.Errorf("plan consumes %d, want exactly 8 units", got)
	}
	if err := Verify(theta, compute.Concurrent{Actors: []compute.Complex{req}, Window: req.Window}, plan); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSingleMultiTypePhaseParallelDelivery(t *testing.T) {
	// A migrate phase needs cpu@l1, net and cpu@l2 simultaneously; the
	// phase completes when the slowest type is delivered.
	c, err := cost.Realize(cost.Paper(), "a1", compute.Migrate("a1", "l1", "l2", 6))
	if err != nil {
		t.Fatal(err)
	}
	req := compute.ComplexOf(c, interval.New(0, 10))
	theta := resource.NewSet(
		resource.NewTerm(u(3), cpuL1, interval.New(0, 10)),  // 3 cpu: done t=1
		resource.NewTerm(u(1), netL12, interval.New(0, 10)), // 6 net at rate 1: done t=6
		resource.NewTerm(u(3), cpuL2, interval.New(0, 10)),  // done t=1
	)
	plan, err := Single(theta, req)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Finish != 6 {
		t.Errorf("Finish = %d, want 6 (slowest type)", plan.Finish)
	}
}

func TestSingleRespectsEarliestStart(t *testing.T) {
	c, err := cost.Realize(cost.Paper(), "a1", compute.Evaluate("a1", "l1", 1))
	if err != nil {
		t.Fatal(err)
	}
	// Resources exist mostly before the window opens; the pre-window
	// portion must not count (8 cpu needed, only ticks 5 of a rate-1
	// supply usable).
	req := compute.ComplexOf(c, interval.New(5, 10))
	theta := resource.NewSet(resource.NewTerm(u(1), cpuL1, interval.New(0, 6))) // 1 usable unit
	if _, err := Single(theta, req); !errors.Is(err, ErrInfeasible) {
		t.Errorf("resources before start must not count, got %v", err)
	}
	enough := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 9))) // ticks 5..8 usable = 8 units
	plan, err := Single(enough, req)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Finish != 9 {
		t.Errorf("Finish = %d, want 9", plan.Finish)
	}
	for _, a := range plan.Allocs {
		if a.Term.Span.Start < 5 {
			t.Errorf("allocation %v starts before the window", a.Term)
		}
	}
}

func TestSingleEmptyRequirement(t *testing.T) {
	req := compute.Complex{Actor: "a1", Window: interval.New(0, 5)}
	plan, err := Single(resource.Set{}, req)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Empty() {
		t.Errorf("empty requirement should yield empty plan: %+v", plan)
	}
}

func TestConcurrentSharesResources(t *testing.T) {
	// Two identical actors share one cpu supply that fits both.
	a1 := seqActor(t, "a1")
	a2 := seqActor(t, "a2")
	d, err := compute.NewDistributed("job", 0, 24, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	req := compute.ConcurrentOf(d)
	theta := resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 16)),  // 32 cpu ≥ 2×14
		resource.NewTerm(u(1), netL12, interval.New(0, 16)), // 16 net ≥ 2×4
	)
	plan, err := Concurrent(theta, req)
	if err != nil {
		t.Fatalf("feasible pair rejected: %v", err)
	}
	if err := Verify(theta, req, plan); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if plan.Finish > 24 {
		t.Errorf("Finish %d exceeds deadline", plan.Finish)
	}

	// Halving the cpu makes the pair infeasible.
	tight := resource.NewSet(
		resource.NewTerm(u(1), cpuL1, interval.New(0, 16)),
		resource.NewTerm(u(1), netL12, interval.New(0, 16)),
	)
	if _, err := Concurrent(tight, req); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible pair accepted: %v", err)
	}
}

func TestConcurrentDistinctLocations(t *testing.T) {
	// Actors at different locations do not contend.
	c1, err := cost.Realize(cost.Paper(), "a1", compute.Evaluate("a1", "l1", 1))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cost.Realize(cost.Paper(), "a2", compute.Evaluate("a2", "l2", 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := compute.NewDistributed("job", 0, 4, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	theta := resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 4)),
		resource.NewTerm(u(2), cpuL2, interval.New(0, 4)),
	)
	plan, err := Concurrent(theta, compute.ConcurrentOf(d))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(theta, compute.ConcurrentOf(d), plan); err != nil {
		t.Error(err)
	}
}

func TestVerifyRejectsCorruptPlans(t *testing.T) {
	req := compute.ComplexOf(seqActor(t, "a1"), interval.New(0, 12))
	conc := compute.Concurrent{Actors: []compute.Complex{req}, Window: req.Window}
	theta := resource.NewSet(
		resource.NewTerm(u(4), cpuL1, interval.New(0, 12)),
		resource.NewTerm(u(2), netL12, interval.New(0, 12)),
	)
	plan, err := Single(theta, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(theta, conc, plan); err != nil {
		t.Fatalf("genuine plan rejected: %v", err)
	}

	// Demand beyond availability.
	greedy := plan
	greedy.Allocs = append([]Allocation(nil), plan.Allocs...)
	greedy.Allocs = append(greedy.Allocs, Allocation{
		Actor: "a1", Phase: 0,
		Term: resource.NewTerm(u(100), cpuL1, interval.New(0, 2)),
	})
	if err := Verify(theta, conc, greedy); err == nil {
		t.Error("over-demand plan accepted")
	}

	// Missing breaks.
	noBreaks := plan
	noBreaks.Breaks = map[compute.ActorName][]interval.Time{}
	if err := Verify(theta, conc, noBreaks); err == nil {
		t.Error("plan without breaks accepted")
	}

	// Allocation escaping its phase subinterval.
	shifted := Plan{Breaks: map[compute.ActorName][]interval.Time{"a1": {1, 2, 3}}}
	shifted.Allocs = []Allocation{{
		Actor: "a1", Phase: 0,
		Term: resource.NewTerm(u(8), cpuL1, interval.New(4, 5)), // after break 1
	}}
	if err := Verify(theta, conc, shifted); err == nil {
		t.Error("escaping allocation accepted")
	}

	// Underfed phase.
	hungry := Plan{Breaks: map[compute.ActorName][]interval.Time{"a1": {4, 8, 12}}}
	hungry.Allocs = []Allocation{{
		Actor: "a1", Phase: 0,
		Term: resource.NewTerm(u(1), cpuL1, interval.New(0, 2)), // 2 of 8 needed
	}}
	if err := Verify(theta, conc, hungry); err == nil {
		t.Error("underfed plan accepted")
	}
}

func TestConcurrentExhaustiveFindsOrderDependentSchedules(t *testing.T) {
	// Craft contention where scheduling the big actor first fails but
	// small-first succeeds: a2 (small) must use the early cpu because its
	// deadline is early... Since all actors share one window here, build
	// asymmetry through resource shape instead: a1 needs cpu then net,
	// a2 needs net then cpu; supplies are two alternating slots each.
	mk := func(name compute.ActorName, first, second resource.LocatedType, q1, q2 int64) compute.Computation {
		s1 := compute.Step{
			Action:  compute.Evaluate(name, "l1", 1),
			Amounts: resource.NewAmounts(resource.Amount{Qty: resource.QuantityFromUnits(q1), Type: first}),
		}
		s2 := compute.Step{
			Action:  compute.Evaluate(name, "l1", 1),
			Amounts: resource.NewAmounts(resource.Amount{Qty: resource.QuantityFromUnits(q2), Type: second}),
		}
		c, err := compute.NewComputation(name, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a1 := mk("a1", cpuL1, netL12, 4, 4)
	a2 := mk("a2", netL12, cpuL1, 2, 2)
	d, err := compute.NewDistributed("mix", 0, 8, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	theta := resource.NewSet(
		resource.NewTerm(u(1), cpuL1, interval.New(0, 6)),
		resource.NewTerm(u(1), netL12, interval.New(0, 8)),
	)
	req := compute.ConcurrentOf(d)
	plan, err := Concurrent(theta, req, WithExhaustive())
	if err != nil {
		t.Fatalf("exhaustive search failed: %v", err)
	}
	if err := Verify(theta, req, plan); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestPropertyPlansAlwaysVerify(t *testing.T) {
	// Soundness: whatever the scheduler returns must pass independent
	// verification, over randomized workloads and supplies.
	rng := rand.New(rand.NewSource(61))
	types := []resource.LocatedType{cpuL1, cpuL2, netL12}
	for iter := 0; iter < 400; iter++ {
		nActors := 1 + rng.Intn(3)
		var comps []compute.Computation
		for ai := 0; ai < nActors; ai++ {
			name := compute.ActorName(string(rune('a' + ai)))
			nSteps := 1 + rng.Intn(4)
			steps := make([]compute.Step, 0, nSteps)
			for si := 0; si < nSteps; si++ {
				lt := types[rng.Intn(len(types))]
				steps = append(steps, compute.Step{
					Action:  compute.Evaluate(name, "l1", 1),
					Amounts: resource.NewAmounts(resource.Amount{Qty: resource.QuantityFromUnits(int64(1 + rng.Intn(6))), Type: lt}),
				})
			}
			c, err := compute.NewComputation(name, steps...)
			if err != nil {
				t.Fatal(err)
			}
			comps = append(comps, c)
		}
		d, err := compute.NewDistributed("rand", 0, interval.Time(6+rng.Intn(20)), comps...)
		if err != nil {
			t.Fatal(err)
		}
		var theta resource.Set
		for i := 0; i < 2+rng.Intn(5); i++ {
			start := interval.Time(rng.Intn(12))
			theta.Add(resource.NewTerm(
				resource.FromUnits(int64(1+rng.Intn(4))),
				types[rng.Intn(len(types))],
				interval.New(start, start+1+interval.Time(rng.Intn(10)))))
		}
		req := compute.ConcurrentOf(d)
		plan, err := Concurrent(theta, req)
		if err != nil {
			continue // infeasible is fine; we check soundness of successes
		}
		if verr := Verify(theta, req, plan); verr != nil {
			t.Fatalf("iter %d: plan fails verification: %v\nreq=%v\ntheta=%v\nplan=%+v",
				iter, verr, req, theta, plan)
		}
		if plan.Finish > d.Deadline {
			t.Fatalf("iter %d: plan finishes at %d past deadline %d", iter, plan.Finish, d.Deadline)
		}
	}
}

func TestConcurrentMaxPermutationsBudget(t *testing.T) {
	// Seven actors, impossible demands: the exhaustive search must stop
	// at the permutation budget rather than exploring 7! orders.
	var comps []compute.Computation
	for i := 0; i < 7; i++ {
		name := compute.ActorName(string(rune('a' + i)))
		st := compute.Step{
			Action:  compute.Evaluate(name, "l1", 1),
			Amounts: resource.NewAmounts(resource.AmountOf(100, cpuL1)),
		}
		c, err := compute.NewComputation(name, st)
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, c)
	}
	d, err := compute.NewDistributed("impossible", 0, 10, comps...)
	if err != nil {
		t.Fatal(err)
	}
	theta := resource.NewSet(resource.NewTerm(u(1), cpuL1, interval.New(0, 10)))
	_, err = Concurrent(theta, compute.ConcurrentOf(d), WithExhaustive(), WithMaxPermutations(10))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestConcurrentExhaustiveEqualsGreedyWhenGreedyWorks(t *testing.T) {
	// When the heuristic order succeeds, exhaustive mode returns the same
	// verdict without extra search.
	a1 := seqActor(t, "a1")
	d, err := compute.NewDistributed("easy", 0, 24, a1)
	if err != nil {
		t.Fatal(err)
	}
	theta := resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 16)),
		resource.NewTerm(u(1), netL12, interval.New(0, 16)),
	)
	req := compute.ConcurrentOf(d)
	greedy, gerr := Concurrent(theta, req)
	exhaustive, eerr := Concurrent(theta, req, WithExhaustive())
	if gerr != nil || eerr != nil {
		t.Fatal(gerr, eerr)
	}
	if greedy.Finish != exhaustive.Finish {
		t.Errorf("Finish differs: %d vs %d", greedy.Finish, exhaustive.Finish)
	}
}
