package schedule

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

// seg builds a one-evaluate segment with the given cpu units at loc.
func seg(t testing.TB, a compute.ActorName, loc resource.Location, units int64) compute.Computation {
	t.Helper()
	c, err := cost.Realize(cost.Paper(), a, compute.Evaluate(a, loc, 1))
	if err != nil {
		t.Fatal(err)
	}
	c.Steps[0].Amounts = resource.NewAmounts(resource.AmountOf(units, resource.CPUAt(loc)))
	return c
}

// pipelineWorkflow: producer (two segments at l1) feeds consumer (one
// segment at l2) — consumer waits for producer's first segment.
func pipelineWorkflow(t testing.TB, deadline interval.Time) compute.Workflow {
	t.Helper()
	producer := compute.Segmented{
		Actor:    "prod",
		Segments: []compute.Computation{seg(t, "prod", "l1", 4), seg(t, "prod", "l1", 4)},
	}
	consumer := compute.Segmented{
		Actor:    "cons",
		Segments: []compute.Computation{seg(t, "cons", "l2", 6)},
	}
	w, err := compute.NewWorkflow("pipe", 0, deadline,
		[]compute.Segmented{producer, consumer},
		[]compute.WaitEdge{{
			From: compute.SegmentRef{Actor: "prod", Segment: 0},
			To:   compute.SegmentRef{Actor: "cons", Segment: 0},
		}})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorkflowValidation(t *testing.T) {
	good := pipelineWorkflow(t, 20)
	if good.NumSegments() != 3 {
		t.Errorf("segments = %d", good.NumSegments())
	}
	if good.String() == "" {
		t.Error("empty String")
	}

	s1 := seg(t, "a", "l1", 2)
	mk := func(edges []compute.WaitEdge) error {
		_, err := compute.NewWorkflow("w", 0, 10,
			[]compute.Segmented{{Actor: "a", Segments: []compute.Computation{s1, s1}}}, edges)
		return err
	}
	if err := mk(nil); err != nil {
		t.Errorf("plain workflow rejected: %v", err)
	}
	// Bad references.
	if err := mk([]compute.WaitEdge{{
		From: compute.SegmentRef{Actor: "zz", Segment: 0},
		To:   compute.SegmentRef{Actor: "a", Segment: 0},
	}}); err == nil {
		t.Error("unknown actor accepted")
	}
	if err := mk([]compute.WaitEdge{{
		From: compute.SegmentRef{Actor: "a", Segment: 9},
		To:   compute.SegmentRef{Actor: "a", Segment: 0},
	}}); err == nil {
		t.Error("out-of-range segment accepted")
	}
	if err := mk([]compute.WaitEdge{{
		From: compute.SegmentRef{Actor: "a", Segment: 0},
		To:   compute.SegmentRef{Actor: "a", Segment: 0},
	}}); err == nil {
		t.Error("self edge accepted")
	}
	// Cycle: segment 1 waits for... segment 1 comes after 0 implicitly;
	// add edge 1→0 to close the loop.
	if err := mk([]compute.WaitEdge{{
		From: compute.SegmentRef{Actor: "a", Segment: 1},
		To:   compute.SegmentRef{Actor: "a", Segment: 0},
	}}); err == nil {
		t.Error("cyclic workflow accepted")
	}
	// Empty window.
	if _, err := compute.NewWorkflow("w", 5, 5,
		[]compute.Segmented{{Actor: "a", Segments: []compute.Computation{s1}}}, nil); err == nil {
		t.Error("empty window accepted")
	}
	// No segments.
	if _, err := compute.NewWorkflow("w", 0, 5,
		[]compute.Segmented{{Actor: "a"}}, nil); err == nil {
		t.Error("segmentless actor accepted")
	}
	// Foreign segment.
	if _, err := compute.NewWorkflow("w", 0, 5,
		[]compute.Segmented{{Actor: "b", Segments: []compute.Computation{s1}}}, nil); err == nil {
		t.Error("foreign segment accepted")
	}
	// Duplicate actor.
	if _, err := compute.NewWorkflow("w", 0, 5,
		[]compute.Segmented{
			{Actor: "a", Segments: []compute.Computation{s1}},
			{Actor: "a", Segments: []compute.Computation{s1}},
		}, nil); err == nil {
		t.Error("duplicate actor accepted")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	w := pipelineWorkflow(t, 20)
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[compute.SegmentRef]int, len(order))
	for i, ref := range order {
		pos[ref] = i
	}
	prod0 := compute.SegmentRef{Actor: "prod", Segment: 0}
	prod1 := compute.SegmentRef{Actor: "prod", Segment: 1}
	cons0 := compute.SegmentRef{Actor: "cons", Segment: 0}
	if pos[prod0] > pos[prod1] {
		t.Error("intra-actor order violated")
	}
	if pos[prod0] > pos[cons0] {
		t.Error("wait edge order violated")
	}
}

func TestFeasibleWorkflowPipeline(t *testing.T) {
	w := pipelineWorkflow(t, 20)
	theta := resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 20)),
		resource.NewTerm(u(2), cpuL2, interval.New(0, 20)),
	)
	plan, err := FeasibleWorkflow(theta, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyWorkflow(theta, w, plan); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	prod0 := compute.SegmentRef{Actor: "prod", Segment: 0}
	cons0 := compute.SegmentRef{Actor: "cons", Segment: 0}
	// prod/0: 4 units at rate 2 → done t=2. cons/0 starts at 2 (not 0!)
	// even though l2 cpu was free from the start.
	if got := plan.DoneAt[prod0]; got != 2 {
		t.Errorf("prod/0 done at %d", got)
	}
	if got := plan.StartAt[cons0]; got != 2 {
		t.Errorf("cons/0 starts at %d, want 2 (must wait)", got)
	}
	if got := plan.DoneAt[cons0]; got != 5 { // 6 units at rate 2
		t.Errorf("cons/0 done at %d", got)
	}
	if plan.Finish != 5 {
		t.Errorf("Finish = %d", plan.Finish)
	}
}

func TestFeasibleWorkflowDeadlineBitesThroughDependency(t *testing.T) {
	// The chain prod/0 (2 ticks) → cons/0 (3 ticks) needs ≥ 5 ticks; a
	// 4-tick deadline is infeasible even though each segment alone fits.
	w := pipelineWorkflow(t, 4)
	theta := resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 4)),
		resource.NewTerm(u(2), cpuL2, interval.New(0, 4)),
	)
	if _, err := FeasibleWorkflow(theta, w); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestIndependentDegenerateWorkflow(t *testing.T) {
	// The §IV special case: Independent(d) schedules like Concurrent.
	c1 := seg(t, "a1", "l1", 8)
	c2 := seg(t, "a2", "l1", 8)
	d, err := compute.NewDistributed("job", 0, 8, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8)))
	w := compute.Independent(d)
	plan, err := FeasibleWorkflow(theta, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyWorkflow(theta, w, plan); err != nil {
		t.Fatal(err)
	}
	if plan.Finish != 8 {
		t.Errorf("Finish = %d, want 8 (16 units at rate 2)", plan.Finish)
	}
	// And the totals agree with the distributed view.
	if w.TotalAmounts()[cpuL1] != d.TotalAmounts()[cpuL1] {
		t.Error("Independent changed total amounts")
	}
}

func TestVerifyWorkflowRejectsCorruption(t *testing.T) {
	w := pipelineWorkflow(t, 20)
	theta := resource.NewSet(
		resource.NewTerm(u(2), cpuL1, interval.New(0, 20)),
		resource.NewTerm(u(2), cpuL2, interval.New(0, 20)),
	)
	plan, err := FeasibleWorkflow(theta, w)
	if err != nil {
		t.Fatal(err)
	}
	cons0 := compute.SegmentRef{Actor: "cons", Segment: 0}

	// Precedence violation: pretend the consumer started at 0.
	broken := clonePlan(plan)
	broken.StartAt[cons0] = 0
	if err := VerifyWorkflow(theta, w, broken); err == nil {
		t.Error("precedence violation accepted")
	}
	// Missing segment.
	broken = clonePlan(plan)
	delete(broken.DoneAt, cons0)
	if err := VerifyWorkflow(theta, w, broken); err == nil {
		t.Error("missing segment accepted")
	}
	// Over-demand.
	broken = clonePlan(plan)
	broken.Allocs = append(broken.Allocs, WorkflowAllocation{
		Ref:  cons0,
		Term: resource.NewTerm(u(100), cpuL2, interval.New(0, 20)),
	})
	if err := VerifyWorkflow(theta, w, broken); err == nil {
		t.Error("over-demand accepted")
	}
	// Late finish.
	broken = clonePlan(plan)
	broken.Finish = 99
	if err := VerifyWorkflow(theta, w, broken); err == nil {
		t.Error("late finish accepted")
	}
	// Underfed segment.
	broken = clonePlan(plan)
	var trimmed []WorkflowAllocation
	for _, a := range broken.Allocs {
		if a.Ref != cons0 {
			trimmed = append(trimmed, a)
		}
	}
	broken.Allocs = trimmed
	if err := VerifyWorkflow(theta, w, broken); err == nil {
		t.Error("underfed segment accepted")
	}
}

func clonePlan(p WorkflowPlan) WorkflowPlan {
	out := WorkflowPlan{
		Allocs:  append([]WorkflowAllocation(nil), p.Allocs...),
		StartAt: make(map[compute.SegmentRef]interval.Time, len(p.StartAt)),
		DoneAt:  make(map[compute.SegmentRef]interval.Time, len(p.DoneAt)),
		Finish:  p.Finish,
	}
	for k, v := range p.StartAt {
		out.StartAt[k] = v
	}
	for k, v := range p.DoneAt {
		out.DoneAt[k] = v
	}
	return out
}

func TestPropertyWorkflowPlansVerify(t *testing.T) {
	// Random DAG workflows: every plan the scheduler emits must verify.
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 200; iter++ {
		nActors := 1 + rng.Intn(3)
		var actors []compute.Segmented
		var refs []compute.SegmentRef
		for ai := 0; ai < nActors; ai++ {
			name := compute.ActorName(string(rune('a' + ai)))
			nSegs := 1 + rng.Intn(3)
			var segs []compute.Computation
			for si := 0; si < nSegs; si++ {
				segs = append(segs, seg(t, name, "l1", int64(1+rng.Intn(5))))
				refs = append(refs, compute.SegmentRef{Actor: name, Segment: si})
			}
			actors = append(actors, compute.Segmented{Actor: name, Segments: segs})
		}
		// Random forward edges (acyclic by construction: only from earlier
		// refs to later refs in the flattened order across actors).
		var edges []compute.WaitEdge
		for i := 0; i < rng.Intn(4); i++ {
			a, b := rng.Intn(len(refs)), rng.Intn(len(refs))
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if refs[a].Actor == refs[b].Actor {
				continue // intra-actor order already implied
			}
			edges = append(edges, compute.WaitEdge{From: refs[a], To: refs[b]})
		}
		w, err := compute.NewWorkflow("rand", 0, interval.Time(10+rng.Intn(30)), actors, edges)
		if err != nil {
			t.Fatal(err)
		}
		theta := resource.NewSet(resource.NewTerm(
			resource.FromUnits(int64(1+rng.Intn(3))), cpuL1,
			interval.New(0, interval.Time(8+rng.Intn(40)))))
		plan, err := FeasibleWorkflow(theta, w)
		if err != nil {
			continue
		}
		if verr := VerifyWorkflow(theta, w, plan); verr != nil {
			t.Fatalf("iter %d: %v\nworkflow=%v\ntheta=%v", iter, verr, w, theta)
		}
	}
}
