package admission

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/resource"
)

// loadedState builds a ROTA state whose ledger already carries n admitted
// commitments, so FreeResources must subtract a realistic committed
// demand before the candidate can be scheduled.
func loadedState(tb testing.TB, n int) *core.State {
	tb.Helper()
	horizon := interval.Time(16 * (n + 4))
	theta := resource.NewSet(
		resource.NewTerm(u(4), cpuL1, interval.New(0, horizon)),
		resource.NewTerm(u(2), netL12, interval.New(0, horizon)),
	)
	st := core.NewState(theta, 0)
	p := &Rota{}
	for i := 0; i < n; i++ {
		job := evalJob(tb, fmt.Sprintf("bg-%d", i), "a1", 0, horizon)
		v := View{Now: st.Now, Theta: st.Theta, State: &st}
		dec := p.Decide(v, job)
		if !dec.Admit {
			tb.Fatalf("background job %d rejected: %s", i, dec.Reason)
		}
		next, _, err := core.Accommodate(st, core.ConcurrentAt(job, st.Now), *dec.Plan)
		if err != nil {
			tb.Fatal(err)
		}
		st = next
	}
	return &st
}

// BenchmarkRotaDecideLoadedLedger measures rota decision latency against
// ledgers of increasing commitment counts — the hot path of the rotad
// admission daemon.
func BenchmarkRotaDecideLoadedLedger(b *testing.B) {
	for _, n := range []int{0, 10, 50, 200} {
		b.Run(fmt.Sprintf("commitments=%d", n), func(b *testing.B) {
			st := loadedState(b, n)
			p := &Rota{}
			job := evalJob(b, "candidate", "a1", 0, st.Theta.Hull().End)
			v := View{Now: st.Now, Theta: st.Theta, State: st}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dec := p.Decide(v, job); !dec.Admit {
					b.Fatalf("candidate rejected: %s", dec.Reason)
				}
			}
		})
	}
}

func TestDecideStampsElapsedUniformly(t *testing.T) {
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8)))
	v, _ := viewFor(theta, 0)
	policies := []Policy{&Rota{}, NewNaiveTotal(), NewEDFFeasible(), AlwaysAdmit{}}
	for _, p := range policies {
		// Policies themselves no longer measure latency...
		if dec := p.Decide(v, evalJob(t, "raw-"+p.Name(), "a1", 0, 8)); dec.Elapsed != 0 {
			t.Errorf("%s: policy filled Elapsed itself (%v)", p.Name(), dec.Elapsed)
		}
		// ...the caller-side wrapper does, for admits and rejects alike.
		if dec := Decide(p, v, evalJob(t, "ok-"+p.Name(), "a1", 0, 8)); dec.Elapsed <= 0 {
			t.Errorf("%s: wrapper left Elapsed at %v", p.Name(), dec.Elapsed)
		}
	}
	rejecting := &Rota{}
	if dec := Decide(rejecting, View{Now: 0, Theta: theta}, evalJob(t, "stateless", "a1", 0, 8)); dec.Admit || dec.Elapsed <= 0 {
		t.Errorf("reject path not timed: %+v", dec)
	}
}
