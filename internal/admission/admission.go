// Package admission implements deadline-assurance admission control
// policies: the ROTA policy built on the paper's Theorem 4, and the
// baselines its argument is directed against — aggregate total-quantity
// reasoning (which ignores the ordering the §III inequality discussion
// shows is essential) and unconditional admission.
//
// A Policy sees the system's future availability and decides whether a
// newly arrived distributed computation can be admitted with its deadline
// assured. Policies are stateful per simulation run.
package admission

import (
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/schedule"
)

// View is what a policy may inspect when deciding: the current time and
// the system's raw future availability Θ (not discounted for prior
// commitments — tracking those is each policy's own job, which is
// precisely where the baselines are weaker than ROTA).
type View struct {
	Now interval.Time
	// Theta is the future availability (already trimmed to ≥ Now).
	Theta resource.Set
	// State is the full ROTA state when the simulation maintains one
	// (planned execution); nil under greedy execution.
	State *core.State
}

// Decision is a policy's verdict on one job.
type Decision struct {
	Admit bool
	// Plan is the consumption witness, present only for plan-producing
	// policies (ROTA). Executors reserve exactly this.
	Plan *schedule.Plan
	// Reason documents rejections.
	Reason string
	// Elapsed is the wall-clock cost of making the decision.
	Elapsed time.Duration
}

// Policy decides admission and observes lifecycle events to maintain its
// own bookkeeping.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Decide returns the verdict for a job arriving now. Implementations
	// do not fill Decision.Elapsed; callers that care about decision
	// latency go through the package-level Decide, which measures it
	// uniformly for every policy.
	Decide(v View, job compute.Distributed) Decision
	// OnComplete tells the policy a previously admitted job finished.
	OnComplete(name string)
	// Reset clears state for a new run.
	Reset()
}

// Decide invokes the policy and stamps Decision.Elapsed with the
// wall-clock cost of the call. This is the single place decision latency
// is measured, so admit and reject paths of every policy are timed
// identically.
func Decide(p Policy, v View, job compute.Distributed) Decision {
	start := time.Now()
	dec := p.Decide(v, job)
	dec.Elapsed = time.Since(start)
	return dec
}

// Rota is the paper's admission control: Theorem 4 decided constructively
// against the state's free (expiring) resources. It requires a simulation
// that maintains the ROTA state, and its admissions come with witness
// plans.
type Rota struct {
	// Exhaustive enables the actor-permutation search when the greedy
	// ordering fails (restores completeness at factorial cost).
	Exhaustive bool
}

var _ Policy = (*Rota)(nil)

// Name implements Policy.
func (p *Rota) Name() string {
	if p.Exhaustive {
		return "rota-exhaustive"
	}
	return "rota"
}

// Decide implements Policy via Theorem 4.
func (p *Rota) Decide(v View, job compute.Distributed) Decision {
	if v.State == nil {
		return Decision{Reason: "rota requires a stateful (planned) simulation"}
	}
	// With no commitments Θ_free is Θ itself: skip the subtraction (which
	// clones even for an empty committed demand). This is the server hot
	// path — the ledger presents its already-subtracted free view as a
	// commitment-free state — and schedule.Concurrent never mutates the
	// availability it searches, so sharing Θ here is safe.
	var free resource.Set
	if len(v.State.Commitments) == 0 {
		free = v.State.Theta
	} else {
		var err error
		free, err = v.State.FreeResources()
		if err != nil {
			return Decision{Reason: err.Error()}
		}
	}
	req := core.ConcurrentAt(job, v.Now)
	var opts []schedule.Option
	if p.Exhaustive {
		opts = append(opts, schedule.WithExhaustive())
	}
	plan, err := schedule.Concurrent(free, req, opts...)
	if err != nil {
		return Decision{Reason: fmt.Sprintf("no witness schedule: %v", err)}
	}
	return Decision{Admit: true, Plan: &plan}
}

// OnComplete implements Policy (the ROTA state tracks commitments
// itself).
func (p *Rota) OnComplete(string) {}

// Reset implements Policy.
func (p *Rota) Reset() {}

// NaiveTotal is the aggregate-quantity baseline: it admits a job when,
// for every located type, the total quantity available within the job's
// window minus the remaining totals of previously admitted jobs with
// overlapping windows covers the job's total need. This is exactly the
// reasoning the paper's §III inequality discussion warns about: "it is
// not necessarily enough for the total amount of resource available over
// the course of an interval to be greater" — ordering between phases is
// ignored, so it over-admits order-sensitive workloads.
type NaiveTotal struct {
	ledger map[string]ledgerEntry
}

type ledgerEntry struct {
	window  interval.Interval
	amounts resource.Amounts
}

var _ Policy = (*NaiveTotal)(nil)

// NewNaiveTotal builds the baseline.
func NewNaiveTotal() *NaiveTotal {
	return &NaiveTotal{ledger: make(map[string]ledgerEntry)}
}

// Name implements Policy.
func (p *NaiveTotal) Name() string { return "naive-total" }

// Decide implements Policy.
func (p *NaiveTotal) Decide(v View, job compute.Distributed) Decision {
	window := job.Window()
	if v.Now > window.Start {
		window = interval.New(v.Now, window.End)
	}
	if window.Empty() {
		return Decision{Reason: "deadline passed"}
	}
	need := job.TotalAmounts()
	for lt, q := range need {
		available := v.Theta.QuantityWithin(lt, window)
		for _, e := range p.ledger {
			if e.window.Overlaps(window) {
				available -= e.amounts[lt]
			}
		}
		if available < q {
			return Decision{Reason: fmt.Sprintf("aggregate shortfall of %v", lt)}
		}
	}
	p.ledger[job.Name] = ledgerEntry{window: window, amounts: need}
	return Decision{Admit: true}
}

// OnComplete implements Policy.
func (p *NaiveTotal) OnComplete(name string) {
	delete(p.ledger, name)
}

// Reset implements Policy.
func (p *NaiveTotal) Reset() {
	p.ledger = make(map[string]ledgerEntry)
}

// AlwaysAdmit accepts everything — the no-reasoning floor.
type AlwaysAdmit struct{}

var _ Policy = AlwaysAdmit{}

// Name implements Policy.
func (AlwaysAdmit) Name() string { return "always-admit" }

// Decide implements Policy.
func (AlwaysAdmit) Decide(View, compute.Distributed) Decision {
	return Decision{Admit: true}
}

// OnComplete implements Policy.
func (AlwaysAdmit) OnComplete(string) {}

// Reset implements Policy.
func (AlwaysAdmit) Reset() {}

// EDFFeasible is a stronger classical baseline: it keeps its own list of
// admitted jobs and admits a new one iff a fast EDF forward-simulation of
// all unfinished admitted jobs plus the candidate meets every deadline.
// Unlike ROTA it reasons about aggregate rate per located type tick by
// tick, but it knows nothing about future resource expiry structure
// beyond what the availability set exposes, and its simulation assumes
// EDF execution rather than a reserved plan.
type EDFFeasible struct {
	admitted map[string]compute.Distributed
}

var _ Policy = (*EDFFeasible)(nil)

// NewEDFFeasible builds the baseline.
func NewEDFFeasible() *EDFFeasible {
	return &EDFFeasible{admitted: make(map[string]compute.Distributed)}
}

// Name implements Policy.
func (p *EDFFeasible) Name() string { return "edf-feasible" }

// Decide implements Policy.
func (p *EDFFeasible) Decide(v View, job compute.Distributed) Decision {
	trial := make([]compute.Distributed, 0, len(p.admitted)+1)
	for _, d := range p.admitted {
		trial = append(trial, d)
	}
	trial = append(trial, job)
	if !edfMeetsAll(v.Theta, v.Now, trial) {
		return Decision{Reason: "EDF forward simulation misses a deadline"}
	}
	p.admitted[job.Name] = job
	return Decision{Admit: true}
}

// OnComplete implements Policy.
func (p *EDFFeasible) OnComplete(name string) {
	delete(p.admitted, name)
}

// Reset implements Policy.
func (p *EDFFeasible) Reset() {
	p.admitted = make(map[string]compute.Distributed)
}
