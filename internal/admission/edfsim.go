package admission

import (
	"repro/internal/actor"
	"repro/internal/compute"
	"repro/internal/interval"
	"repro/internal/resource"
)

// edfMeetsAll forward-simulates the given jobs under EDF sharing of theta
// from time now and reports whether every job completes by its deadline.
//
// The trial is conservative for jobs that already made progress: it
// re-simulates their full remaining scripts from scratch (the policy
// does not track per-step progress), so it can under-admit but never
// over-admits relative to its own execution model.
func edfMeetsAll(theta resource.Set, now interval.Time, jobs []compute.Distributed) bool {
	rt := actor.NewRuntime(now)
	avail := theta.Clone()
	avail.TrimBefore(now)

	latest := now
	deadlines := make(map[string]interval.Time, len(jobs))
	for _, d := range jobs {
		deadlines[d.Name] = d.Deadline
		if d.Deadline > latest {
			latest = d.Deadline
		}
		for _, comp := range d.Actors {
			if err := rt.Spawn(actor.NewTask(d.Name, comp, d.Deadline)); err != nil {
				return false
			}
		}
	}
	for rt.Now() < latest && len(rt.Live()) > 0 {
		rt.TickEDF(&avail)
	}
	for _, t := range rt.Tasks() {
		if !t.Done() || t.DoneAt() > deadlines[t.Job] {
			return false
		}
	}
	return true
}
