package admission

import (
	"testing"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

var (
	cpuL1  = resource.CPUAt("l1")
	netL12 = resource.Link("l1", "l2")
)

func u(n int64) resource.Rate { return resource.FromUnits(n) }

func evalJob(t testing.TB, name string, a compute.ActorName, start, deadline interval.Time) compute.Distributed {
	t.Helper()
	c, err := cost.Realize(cost.Paper(), a, compute.Evaluate(a, "l1", 1)) // 8 cpu
	if err != nil {
		t.Fatal(err)
	}
	d, err := compute.NewDistributed(name, start, deadline, c)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// orderJob builds cpu→net→cpu, the order-sensitive workload.
func orderJob(t testing.TB, name string, a compute.ActorName, start, deadline interval.Time) compute.Distributed {
	t.Helper()
	c, err := cost.Realize(cost.Paper(), a,
		compute.Evaluate(a, "l1", 1),
		compute.Send(a, "l1", "x", "l2", 1),
		compute.Evaluate(a, "l1", 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	d, err := compute.NewDistributed(name, start, deadline, c)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func viewFor(theta resource.Set, now interval.Time) (View, *core.State) {
	st := core.NewState(theta, now)
	return View{Now: now, Theta: st.Theta, State: &st}, &st
}

func TestRotaAdmitsFeasibleAndRejectsInfeasible(t *testing.T) {
	p := &Rota{}
	if p.Name() != "rota" {
		t.Errorf("Name = %q", p.Name())
	}
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8)))
	v, _ := viewFor(theta, 0)

	dec := p.Decide(v, evalJob(t, "ok", "a1", 0, 8))
	if !dec.Admit || dec.Plan == nil {
		t.Fatalf("feasible job rejected: %+v", dec)
	}
	dec = p.Decide(v, evalJob(t, "big", "a1", 0, 2)) // 8 cpu in 2 ticks at rate 2
	if dec.Admit {
		t.Fatal("infeasible job admitted")
	}
	if dec.Reason == "" {
		t.Error("rejection without reason")
	}
	// Without a state, rota cannot decide.
	dec = p.Decide(View{Now: 0, Theta: theta}, evalJob(t, "x", "a1", 0, 8))
	if dec.Admit {
		t.Error("rota admitted without a state")
	}
	p.OnComplete("ok") // no-op, must not panic
	p.Reset()
}

func TestRotaExhaustiveName(t *testing.T) {
	p := &Rota{Exhaustive: true}
	if p.Name() != "rota-exhaustive" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestNaiveTotalIgnoresOrdering(t *testing.T) {
	// Supply with network strictly before cpu: order-sensitive job cannot
	// actually run, but aggregate totals look fine — NaiveTotal admits,
	// Rota refuses. This is the §III caveat made executable.
	theta := resource.NewSet(
		resource.NewTerm(u(2), netL12, interval.New(0, 2)), // 4 net first
		resource.NewTerm(u(4), cpuL1, interval.New(2, 6)),  // 16 cpu after
	)
	job := orderJob(t, "ordered", "a1", 0, 6)

	naive := NewNaiveTotal()
	v, _ := viewFor(theta, 0)
	if dec := naive.Decide(v, job); !dec.Admit {
		t.Fatalf("naive-total should admit on aggregates: %+v", dec)
	}
	rota := &Rota{}
	if dec := rota.Decide(v, job); dec.Admit {
		t.Fatal("rota must reject: cpu phase precedes network availability")
	}
}

func TestNaiveTotalLedger(t *testing.T) {
	p := NewNaiveTotal()
	if p.Name() != "naive-total" {
		t.Errorf("Name = %q", p.Name())
	}
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8))) // 16 units
	v, _ := viewFor(theta, 0)

	// Two 8-unit jobs fit; the third exceeds the aggregate.
	if dec := p.Decide(v, evalJob(t, "j1", "a1", 0, 8)); !dec.Admit {
		t.Fatalf("j1 rejected: %+v", dec)
	}
	if dec := p.Decide(v, evalJob(t, "j2", "a2", 0, 8)); !dec.Admit {
		t.Fatalf("j2 rejected: %+v", dec)
	}
	if dec := p.Decide(v, evalJob(t, "j3", "a3", 0, 8)); dec.Admit {
		t.Fatal("j3 admitted beyond aggregate capacity")
	}
	// After j1 completes, capacity frees up in the ledger.
	p.OnComplete("j1")
	if dec := p.Decide(v, evalJob(t, "j4", "a4", 0, 8)); !dec.Admit {
		t.Fatalf("j4 rejected after completion freed ledger: %+v", dec)
	}
	// Reset clears everything.
	p.Reset()
	if dec := p.Decide(v, evalJob(t, "j5", "a5", 0, 8)); !dec.Admit {
		t.Fatal("post-reset admission failed")
	}
	// Deadline in the past.
	vLate, _ := viewFor(theta, 9)
	if dec := p.Decide(vLate, evalJob(t, "j6", "a6", 0, 8)); dec.Admit {
		t.Fatal("expired-deadline job admitted")
	}
}

func TestNaiveTotalDisjointWindowsDontInterfere(t *testing.T) {
	p := NewNaiveTotal()
	theta := resource.NewSet(resource.NewTerm(u(1), cpuL1, interval.New(0, 40)))
	v, _ := viewFor(theta, 0)
	if dec := p.Decide(v, evalJob(t, "early", "a1", 0, 10)); !dec.Admit {
		t.Fatalf("early rejected: %+v", dec)
	}
	// (20,30) does not overlap (0,10): ledger must not charge it.
	if dec := p.Decide(v, evalJob(t, "late", "a2", 20, 30)); !dec.Admit {
		t.Fatalf("disjoint-window job rejected: %+v", dec)
	}
}

func TestAlwaysAdmit(t *testing.T) {
	p := AlwaysAdmit{}
	if p.Name() != "always-admit" {
		t.Errorf("Name = %q", p.Name())
	}
	dec := p.Decide(View{}, compute.Distributed{})
	if !dec.Admit {
		t.Fatal("AlwaysAdmit rejected")
	}
	p.OnComplete("x")
	p.Reset()
}

func TestEDFFeasible(t *testing.T) {
	p := NewEDFFeasible()
	if p.Name() != "edf-feasible" {
		t.Errorf("Name = %q", p.Name())
	}
	theta := resource.NewSet(resource.NewTerm(u(2), cpuL1, interval.New(0, 8))) // 16 units
	v := View{Now: 0, Theta: theta}

	if dec := p.Decide(v, evalJob(t, "j1", "a1", 0, 8)); !dec.Admit {
		t.Fatalf("j1 rejected: %+v", dec)
	}
	if dec := p.Decide(v, evalJob(t, "j2", "a2", 0, 8)); !dec.Admit {
		t.Fatalf("j2 rejected: %+v", dec)
	}
	// Third 8-unit job cannot meet an 8-tick deadline at aggregate 16.
	if dec := p.Decide(v, evalJob(t, "j3", "a3", 0, 8)); dec.Admit {
		t.Fatal("j3 admitted beyond EDF feasibility")
	}
	p.OnComplete("j1")
	p.OnComplete("j2")
	if dec := p.Decide(v, evalJob(t, "j4", "a4", 0, 8)); !dec.Admit {
		t.Fatal("post-completion admission failed")
	}
	p.Reset()
	// Duplicate actor names across jobs make the trial unbuildable →
	// reject rather than panic.
	if dec := p.Decide(v, evalJob(t, "dup1", "same", 0, 8)); !dec.Admit {
		t.Fatal("dup1 rejected")
	}
	if dec := p.Decide(v, evalJob(t, "dup2", "same", 0, 8)); dec.Admit {
		t.Fatal("conflicting actor name admitted")
	}
}

func TestEDFFeasibleRespectsOrderingBetterThanNaive(t *testing.T) {
	// The same order-sensitive scenario NaiveTotal gets wrong. The job's
	// phases are cpu(8) → net(4) → cpu(6); network capacity exists only
	// during (0,2) but the first cpu phase cannot complete before t=4, so
	// the send phase can never be fed. EDF forward simulation discovers
	// this where aggregate reasoning does not.
	theta := resource.NewSet(
		resource.NewTerm(u(2), netL12, interval.New(0, 2)),
		resource.NewTerm(u(4), cpuL1, interval.New(2, 6)),
	)
	job := orderJob(t, "ordered", "a1", 0, 6)
	p := NewEDFFeasible()
	if dec := p.Decide(View{Now: 0, Theta: theta}, job); dec.Admit {
		t.Fatal("EDF-feasible admitted a job whose send phase can never be fed")
	}
}
