package scenario

import (
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("resources 5:cpu@l1:(0,3)\n")
	f.Add("job j 0 9\nactor a l1\neval 1\nsend b l2 1\nmigrate l2 3\ncreate k\nready\n")
	f.Add("# only a comment\n")
	f.Add("job j 0 9\nactor a l1\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 4096 {
			return
		}
		sc, err := Parse(strings.NewReader(input), nil)
		if err != nil {
			return
		}
		// Every parsed job is internally consistent.
		for _, job := range sc.Jobs {
			if job.Deadline <= job.Start {
				t.Fatalf("job %s has empty window", job.Name)
			}
			if len(job.Actors) == 0 {
				t.Fatalf("job %s has no actors", job.Name)
			}
			for _, a := range job.Actors {
				for i, st := range a.Steps {
					if err := st.Action.Validate(); err != nil {
						t.Fatalf("job %s actor %s step %d invalid: %v", job.Name, a.Actor, i, err)
					}
					if st.Action.Actor != a.Actor {
						t.Fatalf("job %s: foreign step", job.Name)
					}
				}
			}
		}
	})
}
