package scenario

import (
	"strings"
	"testing"

	"repro/internal/compute"
	"repro/internal/resource"
)

const sample = `
# A two-job scenario.
resources 5:cpu@l1:(0,20),2:network@l1>l2:(4,12)
resources 3:cpu@l2:(0,20)

job j1 0 20
actor a1 l1
eval 2
send a2 l2 1
migrate l2 4
eval 1          # costed at l2 after the migrate
actor a2 l2
ready
create kid

job j2 5 30
actor b1 l1
eval 1
`

func TestParseSample(t *testing.T) {
	sc, err := Parse(strings.NewReader(sample), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Resources union across lines.
	if got := sc.Resources.RateAt(resource.CPUAt("l1"), 5); got != resource.FromUnits(5) {
		t.Errorf("cpu@l1 rate = %d", got)
	}
	if got := sc.Resources.RateAt(resource.CPUAt("l2"), 5); got != resource.FromUnits(3) {
		t.Errorf("cpu@l2 rate = %d", got)
	}
	if len(sc.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(sc.Jobs))
	}
	j1 := sc.Jobs[0]
	if j1.Name != "j1" || j1.Start != 0 || j1.Deadline != 20 {
		t.Errorf("j1 = %v", j1)
	}
	if len(j1.Actors) != 2 {
		t.Fatalf("j1 actors = %d", len(j1.Actors))
	}
	a1 := j1.Actors[0]
	if len(a1.Steps) != 4 {
		t.Fatalf("a1 steps = %d", len(a1.Steps))
	}
	// The eval after migrate is costed at l2.
	last := a1.Steps[3]
	if last.Action.Op != compute.OpEvaluate || last.Action.Loc != "l2" {
		t.Errorf("post-migrate eval = %+v", last.Action)
	}
	if _, ok := last.Amounts[resource.CPUAt("l2")]; !ok {
		t.Errorf("post-migrate eval costed at wrong location: %v", last.Amounts)
	}
	if sc.Jobs[1].Name != "j2" || sc.Jobs[1].Start != 5 {
		t.Errorf("j2 = %v", sc.Jobs[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unknown directive", "bogus 1 2"},
		{"action outside actor", "eval 1"},
		{"actor outside job", "actor a1 l1"},
		{"resources arity", "resources"},
		{"resources bad set", "resources nonsense"},
		{"job arity", "job j1 0"},
		{"job bad time", "job j1 zero 20"},
		{"job empty window", "job j1 20 20\nactor a1 l1\neval 1"},
		{"job without actors", "job j1 0 10\njob j2 0 10\nactor a l1\neval 1"},
		{"actor arity", "job j 0 9\nactor a1"},
		{"eval arity", "job j 0 9\nactor a1 l1\neval"},
		{"eval bad weight", "job j 0 9\nactor a1 l1\neval x"},
		{"send arity", "job j 0 9\nactor a1 l1\nsend a2 l2"},
		{"send bad size", "job j 0 9\nactor a1 l1\nsend a2 l2 x"},
		{"create arity", "job j 0 9\nactor a1 l1\ncreate"},
		{"ready arity", "job j 0 9\nactor a1 l1\nready now"},
		{"migrate arity", "job j 0 9\nactor a1 l1\nmigrate l2"},
		{"migrate bad size", "job j 0 9\nactor a1 l1\nmigrate l2 x"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.in), nil); err == nil {
				t.Errorf("accepted %q", tc.in)
			}
		})
	}
}

func TestParseEmptyIsEmptyScenario(t *testing.T) {
	sc, err := Parse(strings.NewReader("# nothing\n\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Resources.Empty() || len(sc.Jobs) != 0 {
		t.Errorf("empty input produced %v", sc)
	}
}

const workflowSample = `
resources 2:cpu@c0:(0,40),3:cpu@w1:(0,40),2:network@c0>w1:(0,40),2:network@w1>c0:(0,40)

job pipe 0 30
actor coord c0
send m1 w1 1
segment
eval 1
wait m1 0
actor m1 w1
eval 2
send coord c0 1
wait coord 0

job plain 0 10
actor solo c0
eval 1
`

func TestParseWorkflowDirectives(t *testing.T) {
	sc, err := Parse(strings.NewReader(workflowSample), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Workflows) != 1 || len(sc.Jobs) != 1 {
		t.Fatalf("workflows=%d jobs=%d", len(sc.Workflows), len(sc.Jobs))
	}
	w := sc.Workflows[0]
	if w.Name != "pipe" || w.NumSegments() != 3 {
		t.Fatalf("workflow = %v", w)
	}
	if len(w.Edges) != 2 {
		t.Fatalf("edges = %v", w.Edges)
	}
	// coord has two segments; m1 (plain single-segment within the
	// workflow job) has one.
	coord1 := compute.SegmentRef{Actor: "coord", Segment: 1}
	deps := w.Dependencies(coord1)
	foundWait := false
	for _, d := range deps {
		if d == (compute.SegmentRef{Actor: "m1", Segment: 0}) {
			foundWait = true
		}
	}
	if !foundWait {
		t.Errorf("coord/1 deps = %v, missing wait on m1/0", deps)
	}
	// The plain job is unaffected.
	if sc.Jobs[0].Name != "plain" {
		t.Errorf("plain job = %v", sc.Jobs[0])
	}
}

func TestParseWorkflowErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"segment outside actor", "job j 0 9\nsegment"},
		{"segment arity", "job j 0 9\nactor a l1\nsegment now"},
		{"wait arity", "job j 0 9\nactor a l1\nwait m1"},
		{"wait bad index", "job j 0 9\nactor a l1\nwait m1 x"},
		{"wait negative index", "job j 0 9\nactor a l1\nwait m1 -1"},
		{"wait unknown actor", "job j 0 9\nactor a l1\neval 1\nwait ghost 0"},
		{"wait cycle", "job j 0 9\nactor a l1\neval 1\nwait b 0\nactor b l1\neval 1\nwait a 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.in), nil); err == nil {
				t.Errorf("accepted %q", tc.in)
			}
		})
	}
}
