// Package scenario parses the line-oriented scenario files used by the
// CLI tools: a resource declaration plus deadline-constrained jobs with
// per-actor action scripts.
//
// Syntax (one directive per line, '#' starts a comment):
//
//	resources 5:cpu@l1:(0,20),2:network@l1>l2:(4,12)
//	job j1 0 20              # name, earliest start, deadline
//	actor a1 l1              # actor name, initial location
//	eval 2                   # evaluate with weight 2
//	send a2 l2 1             # message to a2 at l2, size 1
//	create b                 # create child actor b
//	ready
//	migrate l2 4             # move to l2 carrying 4 state units
//	actor a2 l2              # next actor of the same job
//	eval 1
//	job j2 5 30              # next job
//	...
//
// Interacting actors (the §VI extension) use two more directives:
//
//	actor coord c0
//	send m1 w1 1
//	segment                  # starts the actor's next segment
//	eval 1                   # (this work happens after the waits below)
//	wait m1 0                # current segment waits for m1's segment 0
//
// A job with any segment or wait directives is a workflow; plain jobs are
// the degenerate single-segment case. Multiple `resources` lines union.
// Costs come from the Φ model supplied at parse time.
package scenario

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/resource"
)

// Scenario is a parsed scenario file.
type Scenario struct {
	Resources resource.Set
	Jobs      []compute.Distributed
	// Workflows holds jobs that used segment/wait directives; their
	// names never appear in Jobs.
	Workflows []compute.Workflow
}

// parseState carries the in-progress job/actor while scanning.
type parseState struct {
	model cost.Model

	sc        Scenario
	jobName   string
	jobStart  interval.Time
	jobDead   interval.Time
	actors    []compute.Computation
	actorName compute.ActorName
	actorLoc  resource.Location
	actions   []compute.Action

	// Workflow state: non-nil segment bookkeeping marks the job as a
	// workflow.
	isWorkflow bool
	segActors  []compute.Segmented
	segments   []compute.Computation // completed segments of the current actor
	edges      []compute.WaitEdge
}

// Parse reads a scenario from r, costing actions with model (cost.Paper()
// when nil).
func Parse(r io.Reader, model cost.Model) (Scenario, error) {
	if model == nil {
		model = cost.Paper()
	}
	ps := &parseState{model: model}
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := ps.directive(fields); err != nil {
			return Scenario{}, fmt.Errorf("scenario: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	if err := ps.flushJob(); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	return ps.sc, nil
}

func (ps *parseState) directive(fields []string) error {
	switch fields[0] {
	case "resources":
		if len(fields) != 2 {
			return fmt.Errorf("resources needs one compact-set argument")
		}
		set, err := resource.ParseSet(fields[1])
		if err != nil {
			return err
		}
		ps.sc.Resources = ps.sc.Resources.Union(set)
		return nil
	case "job":
		if err := ps.flushJob(); err != nil {
			return err
		}
		if len(fields) != 4 {
			return fmt.Errorf("job needs name, start, deadline")
		}
		start, err1 := strconv.ParseInt(fields[2], 10, 64)
		dead, err2 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("job times must be integers")
		}
		ps.jobName, ps.jobStart, ps.jobDead = fields[1], start, dead
		return nil
	case "actor":
		if ps.jobName == "" {
			return fmt.Errorf("actor outside a job")
		}
		if err := ps.flushActor(); err != nil {
			return err
		}
		if len(fields) != 3 {
			return fmt.Errorf("actor needs name and location")
		}
		ps.actorName = compute.ActorName(fields[1])
		ps.actorLoc = resource.Location(fields[2])
		return nil
	}
	// Action directives require a current actor.
	if ps.actorName == "" {
		return fmt.Errorf("action %q outside an actor", fields[0])
	}
	switch fields[0] {
	case "segment":
		if len(fields) != 1 {
			return fmt.Errorf("segment takes no arguments")
		}
		ps.isWorkflow = true
		return ps.flushSegment()
	case "wait":
		if len(fields) != 3 {
			return fmt.Errorf("wait needs an actor name and a segment index")
		}
		idx, err := strconv.Atoi(fields[2])
		if err != nil || idx < 0 {
			return fmt.Errorf("wait segment index must be a non-negative integer")
		}
		ps.isWorkflow = true
		ps.edges = append(ps.edges, compute.WaitEdge{
			From: compute.SegmentRef{Actor: compute.ActorName(fields[1]), Segment: idx},
			To:   compute.SegmentRef{Actor: ps.actorName, Segment: len(ps.segments)},
		})
		return nil
	}
	switch fields[0] {
	case "eval":
		if len(fields) != 2 {
			return fmt.Errorf("eval needs a weight")
		}
		w, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("eval weight: %v", err)
		}
		ps.actions = append(ps.actions, compute.Evaluate(ps.actorName, ps.actorLoc, w))
	case "send":
		if len(fields) != 4 {
			return fmt.Errorf("send needs target, destination, size")
		}
		size, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return fmt.Errorf("send size: %v", err)
		}
		ps.actions = append(ps.actions, compute.Send(ps.actorName, ps.actorLoc,
			compute.ActorName(fields[1]), resource.Location(fields[2]), size))
	case "create":
		if len(fields) != 2 {
			return fmt.Errorf("create needs a child name")
		}
		ps.actions = append(ps.actions, compute.Create(ps.actorName, ps.actorLoc, compute.ActorName(fields[1])))
	case "ready":
		if len(fields) != 1 {
			return fmt.Errorf("ready takes no arguments")
		}
		ps.actions = append(ps.actions, compute.Ready(ps.actorName, ps.actorLoc))
	case "migrate":
		if len(fields) != 3 {
			return fmt.Errorf("migrate needs destination and state size")
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("migrate size: %v", err)
		}
		dest := resource.Location(fields[1])
		ps.actions = append(ps.actions, compute.Migrate(ps.actorName, ps.actorLoc, dest, size))
		ps.actorLoc = dest // later actions execute at the new location
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

// flushSegment closes the current segment and opens the next.
func (ps *parseState) flushSegment() error {
	comp, err := cost.Realize(ps.model, ps.actorName, ps.actions...)
	if err != nil {
		return fmt.Errorf("actor %s segment %d: %w", ps.actorName, len(ps.segments), err)
	}
	ps.segments = append(ps.segments, comp)
	ps.actions = nil
	return nil
}

func (ps *parseState) flushActor() error {
	if ps.actorName == "" {
		return nil
	}
	if ps.isWorkflow {
		if err := ps.flushSegment(); err != nil {
			return err
		}
		ps.segActors = append(ps.segActors, compute.Segmented{
			Actor:    ps.actorName,
			Segments: ps.segments,
		})
		ps.segments = nil
		ps.actorName, ps.actorLoc, ps.actions = "", "", nil
		return nil
	}
	comp, err := cost.Realize(ps.model, ps.actorName, ps.actions...)
	if err != nil {
		return fmt.Errorf("actor %s: %w", ps.actorName, err)
	}
	ps.actors = append(ps.actors, comp)
	ps.actorName, ps.actorLoc, ps.actions = "", "", nil
	return nil
}

func (ps *parseState) flushJob() error {
	if err := ps.flushActor(); err != nil {
		return err
	}
	if ps.jobName == "" {
		return nil
	}
	if ps.isWorkflow {
		// A workflow may mix plain actors with segmented ones: lift the
		// plain ones to single-segment actors.
		actors := ps.segActors
		for _, a := range ps.actors {
			actors = append(actors, compute.Segmented{
				Actor:    a.Actor,
				Segments: []compute.Computation{a},
			})
		}
		if len(actors) == 0 {
			return fmt.Errorf("job %s has no actors", ps.jobName)
		}
		w, err := compute.NewWorkflow(ps.jobName, ps.jobStart, ps.jobDead, actors, ps.edges)
		if err != nil {
			return err
		}
		ps.sc.Workflows = append(ps.sc.Workflows, w)
		ps.jobName, ps.actors = "", nil
		ps.isWorkflow, ps.segActors, ps.edges = false, nil, nil
		return nil
	}
	if len(ps.actors) == 0 {
		return fmt.Errorf("job %s has no actors", ps.jobName)
	}
	dist, err := compute.NewDistributed(ps.jobName, ps.jobStart, ps.jobDead, ps.actors...)
	if err != nil {
		return err
	}
	ps.sc.Jobs = append(ps.sc.Jobs, dist)
	ps.jobName, ps.actors = "", nil
	return nil
}
