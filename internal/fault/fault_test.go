package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testTarget is an httptest server that counts requests and echoes the
// body length.
func testTarget(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func clientVia(n *Network, src string) *http.Client {
	return &http.Client{Transport: n.Transport(src, nil), Timeout: 5 * time.Second}
}

func TestDropRule(t *testing.T) {
	srv, hits := testTarget(t)
	n := NewNetwork(1)
	n.Register("n2", srv.URL)
	n.SetRule("n1", "n2", Rule{Drop: 1})

	_, err := clientVia(n, "n1").Get(srv.URL)
	if err == nil {
		t.Fatal("dropped request succeeded")
	}
	var de *DropError
	if !errors.As(err, &de) || de.Partition {
		t.Fatalf("want DropError{Partition:false} in chain, got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests through a full drop", hits.Load())
	}
	c := n.Counters()
	if c.Dropped != 1 || c.Passed != 0 {
		t.Fatalf("counters %+v, want 1 drop 0 passed", c)
	}

	// Clearing the rule restores the wire.
	n.SetRule("n1", "n2", Rule{})
	if _, err := clientVia(n, "n1").Get(srv.URL); err != nil {
		t.Fatalf("clean wire failed: %v", err)
	}
	if hits.Load() != 1 || n.Counters().Passed != 1 {
		t.Fatalf("clean request did not pass (hits=%d, %+v)", hits.Load(), n.Counters())
	}
}

func TestPartitionIsBidirectionalAndHeals(t *testing.T) {
	srvA, hitsA := testTarget(t)
	srvB, hitsB := testTarget(t)
	n := NewNetwork(1)
	n.Register("a", srvA.URL)
	n.Register("b", srvB.URL)
	n.Partition([]string{"b"}) // b vs everyone

	if _, err := clientVia(n, "a").Get(srvB.URL); err == nil {
		t.Fatal("a→b crossed the partition")
	}
	var de *DropError
	if _, err := clientVia(n, "b").Get(srvA.URL); err == nil {
		t.Fatal("b→a crossed the partition")
	} else if !errors.As(err, &de) || !de.Partition {
		t.Fatalf("want DropError{Partition:true}, got %v", err)
	}
	// Same-side traffic (a ↔ a's group) is untouched.
	if _, err := clientVia(n, "c").Get(srvA.URL); err != nil {
		t.Fatalf("same-side call failed: %v", err)
	}
	if !n.Partitioned("a", "b") || n.Partitioned("a", "c") {
		t.Fatal("Partitioned() disagrees with the plan")
	}

	n.Heal()
	if _, err := clientVia(n, "a").Get(srvB.URL); err != nil {
		t.Fatalf("healed wire failed: %v", err)
	}
	if hitsA.Load() != 1 || hitsB.Load() != 1 {
		t.Fatalf("hits A=%d B=%d, want 1 each", hitsA.Load(), hitsB.Load())
	}
	if n.Counters().Partition != 2 {
		t.Fatalf("partition counter %d, want 2", n.Counters().Partition)
	}
}

func TestDelayRule(t *testing.T) {
	srv, _ := testTarget(t)
	n := NewNetwork(1)
	n.Register("n2", srv.URL)
	n.SetRule(Wildcard, "n2", Rule{Delay: 60 * time.Millisecond})

	start := time.Now()
	if _, err := clientVia(n, "n1").Get(srv.URL); err != nil {
		t.Fatal(err)
	}
	// Jitter is ±50%, so 30ms is the floor.
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed call took %s, want ≥ 30ms", d)
	}
	if n.Counters().Delayed != 1 {
		t.Fatalf("delayed counter %d", n.Counters().Delayed)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	srv, hits := testTarget(t)
	n := NewNetwork(1)
	n.Register("n2", srv.URL)
	n.SetRule("n1", "n2", Rule{Duplicate: 1})

	resp, err := clientVia(n, "n1").Post(srv.URL, "application/json", bytes.NewReader([]byte(`{"x":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2", hits.Load())
	}
	if n.Counters().Duplicated != 1 {
		t.Fatalf("duplicated counter %d, want 1", n.Counters().Duplicated)
	}
}

func TestRulePrecedence(t *testing.T) {
	srv, hits := testTarget(t)
	n := NewNetwork(1)
	n.Register("n2", srv.URL)
	// Wildcard drops everything, but the specific pair is clean-ish
	// (tiny delay only) and must win.
	n.SetRule(Wildcard, Wildcard, Rule{Drop: 1})
	n.SetRule("n1", "n2", Rule{Delay: time.Millisecond})

	if _, err := clientVia(n, "n1").Get(srv.URL); err != nil {
		t.Fatalf("specific rule did not override wildcard: %v", err)
	}
	if _, err := clientVia(n, "nX").Get(srv.URL); err == nil {
		t.Fatal("wildcard drop did not apply to other sources")
	}
	if hits.Load() != 1 {
		t.Fatalf("hits=%d, want 1", hits.Load())
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// Two networks with the same seed must make identical drop choices.
	run := func(seed int64) []bool {
		srv, _ := testTarget(t)
		n := NewNetwork(seed)
		n.Register("n2", srv.URL)
		n.SetRule("n1", "n2", Rule{Drop: 0.5})
		cl := clientVia(n, "n1")
		out := make([]bool, 40)
		for i := range out {
			_, err := cl.Get(srv.URL)
			out[i] = err == nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
}

func TestUnregisteredHostPassesThrough(t *testing.T) {
	srv, hits := testTarget(t)
	n := NewNetwork(1)
	n.SetRule("n1", "n2", Rule{Drop: 1}) // names nobody we call
	if _, err := clientVia(n, "n1").Get(srv.URL); err != nil {
		t.Fatalf("unmatched traffic shaped: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatal("request did not arrive")
	}
}

func TestHooks(t *testing.T) {
	h := NewHooks()
	var got []string
	h.Arm("prepared", func(key string) { got = append(got, key) })
	gate := h.Gate()
	gate("prepared", "k1")
	gate("other", "k2") // unarmed stage: no-op
	h.Disarm("prepared")
	gate("prepared", "k3")
	if len(got) != 1 || got[0] != "k1" {
		t.Fatalf("hook fired %v, want [k1]", got)
	}
}

func TestConcurrentTrafficAndReplanning(t *testing.T) {
	srv, _ := testTarget(t)
	n := NewNetwork(7)
	n.Register("n2", srv.URL)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // replanner
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				n.SetRule("n1", "n2", Rule{Drop: 0.3})
			case 1:
				n.Partition([]string{"n2"})
			case 2:
				n.Heal()
				n.ClearRules()
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := clientVia(n, "n1")
			for i := 0; i < 50; i++ {
				resp, err := cl.Get(srv.URL)
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
