// Package fault is a deterministic fault-injection layer for the
// cluster's peer RPC path. A shared Network holds the fault plan —
// per-peer-pair drop/delay/duplicate rules and named partitions — and
// hands each node an http.RoundTripper that applies the plan to that
// node's outbound calls. Because injection happens at the transport, the
// whole retry/backoff/idempotency stack above it is exercised exactly as
// a flaky wire would exercise it, and the same binary runs clean when no
// Network is wired in (the zero cost of an absent transport).
//
// The paper's stance is that an open system must keep its promises under
// inputs it does not control; this package is the machinery that
// manufactures those inputs on demand, reproducibly (seeded RNG), so the
// detection → eviction → repair pipeline is continuously testable
// instead of hand-probed.
package fault

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Rule shapes traffic from one peer to another. Zero value = clean wire.
type Rule struct {
	// Drop is the probability [0,1] that a request vanishes: the caller
	// sees a transport error, the receiver never sees the request.
	Drop float64
	// Delay is added before the request is sent, up to ±50% jitter.
	Delay time.Duration
	// Duplicate is the probability [0,1] that the request is delivered
	// twice (the second response is discarded) — the classic at-least-
	// once hazard that idempotency keys must absorb.
	Duplicate float64
}

func (r Rule) clean() bool { return r.Drop == 0 && r.Delay == 0 && r.Duplicate == 0 }

// Wildcard matches any peer in a rule key.
const Wildcard = "*"

// Counters is a snapshot of what the network has done so far.
type Counters struct {
	Passed     int64 `json:"passed"`
	Dropped    int64 `json:"dropped"`
	Delayed    int64 `json:"delayed"`
	Duplicated int64 `json:"duplicated"`
	Partition  int64 `json:"partitioned"` // drops due to a partition
}

// DropError is the transport error surfaced for an injected drop or
// partition; it unwraps to nothing and is retryable by design.
type DropError struct {
	Src, Dst  string
	Partition bool
}

func (e *DropError) Error() string {
	kind := "drop"
	if e.Partition {
		kind = "partition"
	}
	return fmt.Sprintf("fault: injected %s %s→%s", kind, e.Src, e.Dst)
}

type pair struct{ src, dst string }

// Network is the shared fault plan. One Network spans the whole test
// cluster; each node derives its transport from it. Safe for concurrent
// use; rule changes apply to in-flight traffic on the next request.
type Network struct {
	mu    sync.Mutex
	rng   *rand.Rand
	hosts map[string]string // "host:port" → node ID
	rules map[pair]Rule
	side  map[string]int // partition group per node; absent = group 0
	epoch int            // bumped on Heal so tests can await it

	passed, dropped, delayed, duplicated, partitioned atomic.Int64
}

// NewNetwork builds a fault plan with a deterministic RNG stream.
func NewNetwork(seed int64) *Network {
	return &Network{
		rng:   rand.New(rand.NewSource(seed)),
		hosts: make(map[string]string),
		rules: make(map[pair]Rule),
		side:  make(map[string]int),
	}
}

// Register maps a node's URL (or bare host:port) to its ID so rules can
// be written in terms of peer IDs rather than ephemeral ports.
func (n *Network) Register(id, nodeURL string) {
	host := nodeURL
	if u, err := url.Parse(nodeURL); err == nil && u.Host != "" {
		host = u.Host
	}
	n.mu.Lock()
	n.hosts[host] = id
	n.mu.Unlock()
}

// SetRule installs traffic shaping from src to dst (either may be
// Wildcard). A clean rule deletes the entry. Precedence at lookup:
// (src,dst) > (src,*) > (*,dst) > (*,*).
func (n *Network) SetRule(src, dst string, r Rule) {
	n.mu.Lock()
	if r.clean() {
		delete(n.rules, pair{src, dst})
	} else {
		n.rules[pair{src, dst}] = r
	}
	n.mu.Unlock()
}

// ClearRules removes all traffic-shaping rules (partitions persist).
func (n *Network) ClearRules() {
	n.mu.Lock()
	n.rules = make(map[pair]Rule)
	n.mu.Unlock()
}

// Partition splits the cluster into groups; traffic between different
// groups is dropped in both directions. Nodes not named stay in group 0,
// so Partition([]string{"n3"}) isolates n3 from everyone else.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	n.side = make(map[string]int)
	for i, g := range groups {
		for _, id := range g {
			n.side[id] = i + 1
		}
	}
	n.mu.Unlock()
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	n.side = make(map[string]int)
	n.epoch++
	n.mu.Unlock()
}

// Partitioned reports whether src and dst are currently on different
// sides of a partition.
func (n *Network) Partitioned(src, dst string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.side[src] != n.side[dst]
}

// Counters returns the running injection totals.
func (n *Network) Counters() Counters {
	return Counters{
		Passed:     n.passed.Load(),
		Dropped:    n.dropped.Load(),
		Delayed:    n.delayed.Load(),
		Duplicated: n.duplicated.Load(),
		Partition:  n.partitioned.Load(),
	}
}

// Rules returns a deterministic description of the active rules, for
// logging a chaos schedule.
func (n *Network) Rules() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.rules))
	for p, r := range n.rules {
		out = append(out, fmt.Sprintf("%s→%s drop=%.2f delay=%s dup=%.2f", p.src, p.dst, r.Drop, r.Delay, r.Duplicate))
	}
	sort.Strings(out)
	return out
}

// plan resolves what should happen to one request: the effective rule
// and whether a partition blocks it outright.
func (n *Network) plan(src, dstHost string) (r Rule, dst string, cut bool, drop, dup float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	dst, ok := n.hosts[dstHost]
	if !ok {
		dst = dstHost // unregistered target: rules may still match by host
	}
	// Partitions only cut traffic between registered nodes. An
	// unregistered destination would implicitly land in group 0, and a
	// node assigned to any other group would then drop ALL traffic to
	// endpoints outside the cluster wire, not just to its peers.
	if ok && n.side[src] != n.side[dst] {
		return Rule{}, dst, true, 0, 0
	}
	for _, k := range [4]pair{{src, dst}, {src, Wildcard}, {Wildcard, dst}, {Wildcard, Wildcard}} {
		if rule, ok := n.rules[k]; ok {
			r = rule
			break
		}
	}
	if r.Drop > 0 {
		drop = n.rng.Float64()
	}
	if r.Duplicate > 0 {
		dup = n.rng.Float64()
	}
	return r, dst, false, drop, dup
}

// jitter returns d ± 50%, from the shared deterministic stream.
func (n *Network) jitter(d time.Duration) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return d/2 + time.Duration(n.rng.Int63n(int64(d)))
}

// Transport returns the fault-injecting RoundTripper for node src,
// wrapping base (nil base = http.DefaultTransport).
func (n *Network) Transport(src string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{net: n, src: src, base: base}
}

type transport struct {
	net  *Network
	src  string
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	rule, dst, cut, drop, dup := t.net.plan(t.src, req.URL.Host)
	if cut {
		t.net.partitioned.Add(1)
		return nil, &DropError{Src: t.src, Dst: dst, Partition: true}
	}
	if rule.Drop > 0 && drop < rule.Drop {
		t.net.dropped.Add(1)
		return nil, &DropError{Src: t.src, Dst: dst}
	}
	if rule.Delay > 0 {
		t.net.delayed.Add(1)
		select {
		case <-time.After(t.net.jitter(rule.Delay)):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if rule.Duplicate > 0 && dup < rule.Duplicate {
		// Deliver the request twice; the duplicate's response is
		// discarded. GetBody (set by net/http for buffered bodies)
		// replays the payload for the second delivery.
		if req.Body == nil || req.GetBody != nil {
			shadow := req.Clone(req.Context())
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err == nil {
					shadow.Body = body
					t.deliver(shadow)
					t.net.duplicated.Add(1)
				}
			} else {
				t.deliver(shadow)
				t.net.duplicated.Add(1)
			}
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, err
				}
				req.Body = body
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err == nil {
		t.net.passed.Add(1)
	}
	return resp, err
}

// deliver sends the duplicate and discards its response.
func (t *transport) deliver(req *http.Request) {
	if resp, err := t.base.RoundTrip(req); err == nil {
		resp.Body.Close()
	}
}

// Hooks is a tiny crash/pause-point registry for choreography stages
// (2PC prepare, handoff, join announce, …). The cluster's gate hook
// fires every stage crossing; tests Arm a callback on the one stage they
// want to perturb. Composable with Network: a hook can flip rules or
// partitions at an exact protocol instant.
type Hooks struct {
	mu  sync.Mutex
	fns map[string]func(key string)
}

// NewHooks returns an empty registry.
func NewHooks() *Hooks { return &Hooks{fns: make(map[string]func(string))} }

// Arm installs fn to run (synchronously, on the protocol goroutine) each
// time stage is crossed. Arming nil disarms.
func (h *Hooks) Arm(stage string, fn func(key string)) {
	h.mu.Lock()
	if fn == nil {
		delete(h.fns, stage)
	} else {
		h.fns[stage] = fn
	}
	h.mu.Unlock()
}

// Disarm removes the hook for stage.
func (h *Hooks) Disarm(stage string) { h.Arm(stage, nil) }

// Fire runs the armed hook for stage, if any.
func (h *Hooks) Fire(stage, key string) {
	h.mu.Lock()
	fn := h.fns[stage]
	h.mu.Unlock()
	if fn != nil {
		fn(key)
	}
}

// Gate adapts the registry to the cluster's gate signature.
func (h *Hooks) Gate() func(stage, key string) { return h.Fire }
