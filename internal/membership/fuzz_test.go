package membership

import (
	"encoding/json"
	"testing"
)

// The wire decoders sit on the cluster's open membership surface
// (/v1/cluster/join|leave|handoff and table broadcasts), so they get
// the same fuzz treatment as the prepare/finish decoders in
// internal/server: no panic on arbitrary bytes, and everything that
// decodes cleanly must survive a marshal→decode round trip.

func FuzzDecodeJoinRequest(f *testing.F) {
	f.Add([]byte(`{"id":"n4","url":"http://127.0.0.1:9","pins":["l1","l2"]}`))
	f.Add([]byte(`{"id":"","url":""}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeJoinRequest(body)
		if err != nil {
			return
		}
		again, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-marshal of valid join failed: %v", err)
		}
		if _, err := DecodeJoinRequest(again); err != nil {
			t.Fatalf("round trip of valid join rejected: %v", err)
		}
	})
}

func FuzzDecodeLeaveRequest(f *testing.F) {
	f.Add([]byte(`{"id":"n2","force":true}`))
	f.Add([]byte(`{"id":"n2"}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeLeaveRequest(body)
		if err != nil {
			return
		}
		again, _ := json.Marshal(req)
		if _, err := DecodeLeaveRequest(again); err != nil {
			t.Fatalf("round trip of valid leave rejected: %v", err)
		}
	})
}

func FuzzDecodeHandoffRequest(f *testing.F) {
	f.Add([]byte(`{"epoch":2,"locs":["l1"],"to":"n4","to_url":"http://127.0.0.1:9"}`))
	f.Add([]byte(`{"epoch":0,"locs":[],"to":""}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeHandoffRequest(body)
		if err != nil {
			return
		}
		again, _ := json.Marshal(req)
		if _, err := DecodeHandoffRequest(again); err != nil {
			t.Fatalf("round trip of valid handoff rejected: %v", err)
		}
	})
}

func FuzzDecodeTable(f *testing.F) {
	seed, _ := json.Marshal(seedTable().ToWire())
	f.Add(seed)
	f.Add([]byte(`{"epoch":1,"members":[],"owners":{}}`))
	f.Add([]byte(`{"epoch":1,"members":[{"id":"a","url":"u"}],"owners":{"l1":"b"}}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		tab, err := DecodeTable(body)
		if err != nil {
			return
		}
		if err := tab.Validate(); err != nil {
			t.Fatalf("decoded table fails its own validation: %v", err)
		}
		again, _ := json.Marshal(tab.ToWire())
		back, err := DecodeTable(again)
		if err != nil {
			t.Fatalf("round trip of valid table rejected: %v", err)
		}
		if back.Epoch != tab.Epoch || len(back.Owners) != len(tab.Owners) {
			t.Fatal("round trip changed the table")
		}
	})
}

func FuzzDecodeRedirect(f *testing.F) {
	f.Add([]byte(`{"owner_id":"n2","owner_url":"http://127.0.0.1:9","epoch":3}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := DecodeRedirect(body)
		if err != nil {
			return
		}
		again, _ := json.Marshal(resp)
		if _, err := DecodeRedirect(again); err != nil {
			t.Fatalf("round trip of valid redirect rejected: %v", err)
		}
	})
}
