package membership

import (
	"encoding/json"
	"fmt"
)

// Intent is the steward's crash-safety journal entry for one membership
// choreography. A join or leave is a multi-step plan — announce the
// roster change, execute the implied handoffs/promotions, commit the
// final table — and a steward that dies partway leaves the cluster
// between epochs: the announce table is live but ownership never moved
// (or moved only partly). The steward therefore records its full plan as
// an Intent the moment the choreography starts, broadcasts it, and keeps
// gossiping it until the final table lands. Any survivor that still sees
// an open intent from a dead steward can repair deterministically:
// probe each move's target for what actually arrived, finish or exclude
// each move accordingly, and publish the final table itself.
//
// Epochs make repair idempotent and fencing-safe: an intent whose
// TargetEpoch the registry has already reached is finished by
// definition (the forward-only CAS means nobody can re-run it), so
// receivers drop it on sight.
type Intent struct {
	// Steward is the node that owns this choreography.
	Steward string `json:"steward"`
	// Kind is IntentJoin or IntentLeave.
	Kind string `json:"kind"`
	// Member is the node joining or leaving.
	Member Member `json:"member"`
	// Force marks a leave of a presumed-dead member (promotions instead
	// of handoffs).
	Force bool `json:"force,omitempty"`
	// AnnounceEpoch is the epoch of the roster-change announcement: the
	// table the choreography started from, plus one, for a join; the
	// current table's epoch for a leave (leaves announce nothing — the
	// intent itself is the announcement).
	AnnounceEpoch uint64 `json:"announce_epoch"`
	// TargetEpoch is the epoch the final table will publish as. The
	// intent is closed everywhere once the registry reaches it.
	TargetEpoch uint64 `json:"target_epoch"`
	// Moves is the planned ownership rebalance.
	Moves []Move `json:"moves,omitempty"`
	// Pins are the join request's pinned locations (join only).
	Pins []string `json:"pins,omitempty"`
	// Stage is the last checkpoint the steward reached: StageAnnounced
	// before any data moved, StageMoving once handoffs started.
	Stage string `json:"stage"`
}

// Intent kinds.
const (
	IntentJoin  = "join"
	IntentLeave = "leave"
)

// Intent stages.
const (
	// StageAnnounced: the plan is recorded (and, for joins, the roster
	// announcement applied) but no ownership has moved yet.
	StageAnnounced = "announced"
	// StageMoving: at least one handoff/promotion may have started;
	// repair must probe targets to learn which completed.
	StageMoving = "moving"
)

// Validate checks an intent's wire form.
func (it *Intent) Validate() error {
	if err := checkID("intent steward", it.Steward); err != nil {
		return err
	}
	if it.Kind != IntentJoin && it.Kind != IntentLeave {
		return fmt.Errorf("membership: unknown intent kind %q", it.Kind)
	}
	if err := checkID("intent member", it.Member.ID); err != nil {
		return err
	}
	if it.Kind == IntentJoin && (it.Member.URL == "" || len(it.Member.URL) > maxURLLen) {
		return fmt.Errorf("membership: join intent needs a member url no longer than %d bytes", maxURLLen)
	}
	if it.TargetEpoch == 0 || it.TargetEpoch < it.AnnounceEpoch {
		return fmt.Errorf("membership: intent epochs invalid (announce %d, target %d)", it.AnnounceEpoch, it.TargetEpoch)
	}
	if it.Stage != StageAnnounced && it.Stage != StageMoving {
		return fmt.Errorf("membership: unknown intent stage %q", it.Stage)
	}
	if len(it.Moves) > maxLocs {
		return fmt.Errorf("membership: intent plans %d moves (max %d)", len(it.Moves), maxLocs)
	}
	for _, mv := range it.Moves {
		if err := checkID("intent move location", string(mv.Loc)); err != nil {
			return err
		}
		if err := checkID("intent move source", mv.From); err != nil {
			return err
		}
		if err := checkID("intent move target", mv.To); err != nil {
			return err
		}
	}
	if len(it.Pins) > maxLocs {
		return fmt.Errorf("membership: intent pins %d locations (max %d)", len(it.Pins), maxLocs)
	}
	return nil
}

// DecodeIntent parses and validates an intent body.
func DecodeIntent(body []byte) (*Intent, error) {
	var it Intent
	if err := json.Unmarshal(body, &it); err != nil {
		return nil, fmt.Errorf("membership: bad intent body: %w", err)
	}
	if err := it.Validate(); err != nil {
		return nil, err
	}
	return &it, nil
}

// Clone returns a deep copy (intents are gossiped while mutating).
func (it *Intent) Clone() *Intent {
	if it == nil {
		return nil
	}
	cp := *it
	cp.Moves = append([]Move(nil), it.Moves...)
	cp.Pins = append([]string(nil), it.Pins...)
	return &cp
}
